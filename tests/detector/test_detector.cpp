// Tests for the detector work models: the 80/20 stage split, the Fig. 2
// proposal->latency slopes, and the one-stage/two-stage contrast of Fig. 1.

#include <gtest/gtest.h>

#include <cmath>

#include "detector/model.hpp"
#include "platform/presets.hpp"

namespace lotus::detector {
namespace {

struct Throughputs {
    double cpu;
    double gpu;
    double mem;
};

Throughputs orin_max() {
    const auto spec = platform::orin_nano_spec();
    return {spec.cpu.opp.max_freq() * spec.cpu.ops_per_cycle,
            spec.gpu.opp.max_freq() * spec.gpu.ops_per_cycle, spec.mem_bandwidth};
}

double stage1_ms(const DetectorModel& m, const Throughputs& t, double res = 1.0) {
    return latency_seconds(m.stage1_total(res, 1.0), t.cpu, t.gpu, t.mem) * 1e3;
}

double stage2_ms(const DetectorModel& m, const Throughputs& t, int proposals) {
    return latency_seconds(m.stage2_total(proposals), t.cpu, t.gpu, t.mem) * 1e3;
}

TEST(WorkItem, Arithmetic) {
    WorkItem a{1, 2, 3};
    WorkItem b{10, 20, 30};
    const auto c = a + b;
    EXPECT_DOUBLE_EQ(c.cpu_ops, 11);
    EXPECT_DOUBLE_EQ(c.gpu_ops, 22);
    EXPECT_DOUBLE_EQ(c.mem_bytes, 33);
    const auto d = a.scaled(2.0);
    EXPECT_DOUBLE_EQ(d.gpu_ops, 4);
    EXPECT_TRUE(WorkItem{}.empty());
    EXPECT_FALSE(a.empty());
}

TEST(WorkItem, LatencyRoofline) {
    WorkItem w{100, 1000, 500};
    EXPECT_DOUBLE_EQ(latency_seconds(w, 10, 100, 50), 10.0 + 10.0 + 10.0);
    // Memory term ignores compute throughput (no scaling with f).
    EXPECT_DOUBLE_EQ(latency_seconds(w, 10, 1e18, 50), 10.0 + 10.0 + 1e-15);
}

TEST(DetectorZoo, KindsAndNames) {
    EXPECT_EQ(faster_rcnn_r50().kind(), DetectorKind::faster_rcnn);
    EXPECT_EQ(mask_rcnn_r50().kind(), DetectorKind::mask_rcnn);
    EXPECT_EQ(yolov5s().kind(), DetectorKind::yolo_v5);
    EXPECT_TRUE(faster_rcnn_r50().is_two_stage());
    EXPECT_TRUE(mask_rcnn_r50().is_two_stage());
    EXPECT_FALSE(yolov5s().is_two_stage());
    EXPECT_STREQ(to_string(DetectorKind::faster_rcnn), "FasterRCNN");
    EXPECT_STREQ(to_string(DetectorKind::mask_rcnn), "MaskRCNN");
    EXPECT_STREQ(to_string(DetectorKind::yolo_v5), "YOLOv5");
}

TEST(DetectorZoo, MakeDetectorDispatch) {
    for (const auto kind : {DetectorKind::faster_rcnn, DetectorKind::mask_rcnn,
                            DetectorKind::yolo_v5}) {
        EXPECT_EQ(make_detector(kind).kind(), kind);
    }
}

TEST(DetectorModel, ProposalClamp) {
    const auto m = faster_rcnn_r50();
    EXPECT_EQ(m.clamp_proposals(-5), 0);
    EXPECT_EQ(m.clamp_proposals(100), 100);
    EXPECT_EQ(m.clamp_proposals(10000), m.max_proposals());
}

TEST(DetectorModel, Stage1ScalesWithResolution) {
    const auto m = faster_rcnn_r50();
    const auto t = orin_max();
    const double base = stage1_ms(m, t, 1.0);
    const double hires = stage1_ms(m, t, 1.55);
    EXPECT_NEAR(hires / base, 1.55, 0.01);
}

TEST(DetectorModel, Stage1ScalesWithComplexity) {
    const auto m = faster_rcnn_r50();
    const auto t = orin_max();
    const double lo = latency_seconds(m.stage1_total(1.0, 0.9), t.cpu, t.gpu, t.mem);
    const double hi = latency_seconds(m.stage1_total(1.0, 1.1), t.cpu, t.gpu, t.mem);
    EXPECT_GT(hi, lo);
}

TEST(DetectorModel, InvalidResolutionThrows) {
    const auto m = faster_rcnn_r50();
    EXPECT_THROW((void)m.stage1_components(0.0, 1.0), std::invalid_argument);
}

TEST(PaperCalibration, Stage1CarriesAbout80Percent) {
    // Sec. 4.2: "the latency of the first stage ... takes about 80% of the
    // entire model latency" at fixed frequency.
    const auto t = orin_max();
    for (const auto kind : {DetectorKind::faster_rcnn, DetectorKind::mask_rcnn}) {
        const auto m = make_detector(kind);
        const double s1 = stage1_ms(m, t);
        const double s2 = stage2_ms(m, t, 120); // typical KITTI proposal count
        const double share = s1 / (s1 + s2);
        EXPECT_GT(share, 0.70) << m.name();
        EXPECT_LT(share, 0.92) << m.name();
    }
}

TEST(PaperCalibration, Stage2AffineInProposals) {
    const auto t = orin_max();
    const auto m = faster_rcnn_r50();
    const double at0 = stage2_ms(m, t, 0);
    const double at200 = stage2_ms(m, t, 200);
    const double at400 = stage2_ms(m, t, 400);
    // Equal increments -> equal latency deltas (affine model).
    EXPECT_NEAR(at400 - at200, at200 - at0, 1e-9);
    EXPECT_GT(at200, at0);
}

TEST(PaperCalibration, Fig2FasterRcnnRange) {
    // Fig. 2 (FasterRCNN): second-stage latency grows from ~20 ms to
    // ~100 ms over 0..600 proposals at a fixed frequency.
    const auto t = orin_max();
    const auto m = faster_rcnn_r50();
    EXPECT_GT(stage2_ms(m, t, 0), 5.0);
    EXPECT_LT(stage2_ms(m, t, 0), 40.0);
    EXPECT_GT(stage2_ms(m, t, 600), 80.0);
    EXPECT_LT(stage2_ms(m, t, 600), 160.0);
}

TEST(PaperCalibration, Fig2MaskRcnnSteeperSlope) {
    // Fig. 2 (MaskRCNN): ~200 ms at 300 proposals -- the per-proposal mask
    // head makes the slope several times FasterRCNN's.
    const auto t = orin_max();
    const auto fr = faster_rcnn_r50();
    const auto mr = mask_rcnn_r50();
    const double slope_fr = (stage2_ms(fr, t, 300) - stage2_ms(fr, t, 0)) / 300.0;
    const double slope_mr = (stage2_ms(mr, t, 300) - stage2_ms(mr, t, 0)) / 300.0;
    EXPECT_GT(slope_mr / slope_fr, 2.5);
    EXPECT_GT(stage2_ms(mr, t, 300), 120.0);
    EXPECT_LT(stage2_ms(mr, t, 300), 260.0);
}

TEST(PaperCalibration, MaskRcnnCapsProposalsAt300) {
    // Fig. 2's MaskRCNN x-axis tops out at 300.
    EXPECT_EQ(mask_rcnn_r50().max_proposals(), 300);
    EXPECT_GE(faster_rcnn_r50().max_proposals(), 600);
}

TEST(PaperCalibration, AbsoluteLatencyScaleOrinKitti) {
    // Table 1's KITTI FasterRCNN column is ~340-440 ms; at max frequency the
    // un-throttled model should come in somewhat below that band.
    const auto t = orin_max();
    const auto m = faster_rcnn_r50();
    const double total = stage1_ms(m, t) + stage2_ms(m, t, 120);
    EXPECT_GT(total, 250.0);
    EXPECT_LT(total, 380.0);
}

TEST(PaperCalibration, YoloFasterThanTwoStage) {
    const auto t = orin_max();
    const double yolo = stage1_ms(yolov5s(), t) + stage2_ms(yolov5s(), t, 0);
    const double frcnn = stage1_ms(faster_rcnn_r50(), t) +
                         stage2_ms(faster_rcnn_r50(), t, 120);
    EXPECT_LT(yolo * 1.8, frcnn);
}

TEST(PaperCalibration, YoloWorkIndependentOfProposals) {
    // One-stage detectors have a static anchor grid (Sec. 3): the "proposal"
    // value must not change the work.
    const auto m = yolov5s();
    const auto w0 = m.stage2_total(0);
    const auto w600 = m.stage2_total(600);
    EXPECT_DOUBLE_EQ(w0.cpu_ops, w600.cpu_ops);
    EXPECT_DOUBLE_EQ(w0.gpu_ops, w600.gpu_ops);
    EXPECT_DOUBLE_EQ(w0.mem_bytes, w600.mem_bytes);
}

TEST(DetectorModel, ComponentsSumToTotals) {
    const auto m = mask_rcnn_r50();
    WorkItem sum;
    for (const auto& c : m.stage1_components(1.2, 1.05)) sum += c;
    const auto total = m.stage1_total(1.2, 1.05);
    EXPECT_NEAR(sum.gpu_ops, total.gpu_ops, 1e-6);
    EXPECT_NEAR(sum.cpu_ops, total.cpu_ops, 1e-6);
    EXPECT_NEAR(sum.mem_bytes, total.mem_bytes, 1e-6);
}

TEST(DetectorModel, FrequencyScalingConvexity) {
    // Lowering GPU frequency must increase latency sublinearly (memory
    // floor): halving f should less-than-double the stage-1 latency.
    const auto m = faster_rcnn_r50();
    const auto t = orin_max();
    const double fast = stage1_ms(m, t);
    Throughputs half = t;
    half.gpu /= 2.0;
    const double slow = stage1_ms(m, half);
    EXPECT_GT(slow, fast * 1.4);
    EXPECT_LT(slow, fast * 2.0);
}

class DetectorParamSuite : public ::testing::TestWithParam<DetectorKind> {};

TEST_P(DetectorParamSuite, AllWorkNonNegative) {
    const auto m = make_detector(GetParam());
    for (const auto& c : m.stage1_components(1.0, 1.0)) {
        EXPECT_GE(c.cpu_ops, 0.0);
        EXPECT_GE(c.gpu_ops, 0.0);
        EXPECT_GE(c.mem_bytes, 0.0);
    }
    for (const auto& c : m.stage2_components(100)) {
        EXPECT_GE(c.cpu_ops, 0.0);
        EXPECT_GE(c.gpu_ops, 0.0);
        EXPECT_GE(c.mem_bytes, 0.0);
    }
}

TEST_P(DetectorParamSuite, Stage2MonotoneInProposals) {
    const auto m = make_detector(GetParam());
    const auto t = orin_max();
    double prev = -1.0;
    for (const int p : {0, 50, 100, 200, 300}) {
        const double ms = stage2_ms(m, t, p);
        ASSERT_GE(ms, prev) << "proposals " << p;
        prev = ms;
    }
}

INSTANTIATE_TEST_SUITE_P(AllDetectors, DetectorParamSuite,
                         ::testing::Values(DetectorKind::faster_rcnn,
                                           DetectorKind::mask_rcnn,
                                           DetectorKind::yolo_v5));

} // namespace
} // namespace lotus::detector
