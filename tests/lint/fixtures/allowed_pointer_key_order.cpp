// Fixture: stable-id keys must NOT trip [pointer-key-order], and the escape
// hatch must silence a flagged site.
#include <map>
#include <string>

struct Device;

std::string first_device_name_ok(const std::map<int, std::string>& names_by_id) {
    return names_by_id.empty() ? std::string{} : names_by_id.begin()->second;
}

bool contains_excused(const std::map<Device*, bool>& live, // lotus-lint: allow(pointer-key-order)
                      Device* d) {
    return live.count(d) != 0;
}
