// Fixture: default-constructed util::Rng locals must trip [unseeded-rng].
// (Member declarations with trailing-underscore names are exempt; they are
// re-seeded in their owner's constructor.)
namespace util {
class Rng {
public:
    Rng() = default;
    explicit Rng(unsigned long long seed);
    double uniform();
};
} // namespace util

double sample_broken() {
    util::Rng rng;
    return rng.uniform();
}

double sample_temporary_broken() { return util::Rng().uniform(); }
