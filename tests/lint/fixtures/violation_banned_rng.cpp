// Fixture: nondeterministic entropy must trip [banned-rng].
#include <cstdlib>
#include <random>

unsigned long entropy_broken() {
    std::random_device rd;
    return rd();
}

int legacy_broken() { return std::rand(); }
