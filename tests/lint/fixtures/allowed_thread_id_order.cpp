// Fixture: the inline escape hatch must silence [thread-id-order].
#include <thread>

bool is_owner_thread(const void* owner_tag) {
    // Debug-only ownership assertion; never feeds an artifact.
    static thread_local const void* tag = nullptr;
    (void)std::this_thread::get_id(); // lotus-lint: allow(thread-id-order)
    return tag == owner_tag;
}
