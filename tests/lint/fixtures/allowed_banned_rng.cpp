// Fixture: the inline escape hatch must silence [banned-rng].
#include <random>

unsigned long entropy_allowed() {
    std::random_device rd; // lotus-lint: allow(banned-rng)
    return rd();
}
