// Fixture: iterating an unordered container must trip [unordered-iter] --
// the order changes run to run, so anything it feeds (JSON, CSV, report
// rows, merge order) goes nondeterministic with it.
#include <string>
#include <unordered_map>

std::string render_broken(const std::unordered_map<std::string, int>& counts) {
    std::string out;
    for (const auto& [name, value] : counts) {
        out += name + "=" + std::to_string(value) + "\n";
    }
    return out;
}
