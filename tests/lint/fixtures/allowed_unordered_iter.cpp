// Fixture: lookups (no iteration) must NOT trip [unordered-iter], and the
// escape hatch must silence an order-insensitive fold.
#include <string>
#include <unordered_map>

int lookup_ok(const std::unordered_map<std::string, int>& counts,
              const std::string& key) {
    const auto it = counts.find(key);
    return it == counts.end() ? 0 : it->second;
}

int sum_excused(const std::unordered_map<std::string, int>& counts) {
    int total = 0;
    // Addition is order-insensitive, so the fold is deterministic.
    for (const auto& [name, value] : counts) { // lotus-lint: allow(unordered-iter)
        total += value;
    }
    return total;
}
