// Fixture: <random> engines must trip [std-engine] (streams are neither
// portable across standard libraries nor forkable; util::Rng is the law).
#include <random>

double draw_broken() {
    std::mt19937 gen(12345);
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(gen);
}
