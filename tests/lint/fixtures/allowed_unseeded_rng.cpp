// Fixture: seeded construction and member declarations must NOT trip
// [unseeded-rng], and the escape hatch must silence a flagged site.
namespace util {
class Rng {
public:
    Rng() = default;
    explicit Rng(unsigned long long seed);
    double uniform();
};
} // namespace util

class Governor {
    util::Rng rng_; // member: re-seeded in the constructor, exempt
};

double sample_seeded(unsigned long long episode_seed) {
    util::Rng rng(episode_seed);
    return rng.uniform();
}

double sample_excused() {
    util::Rng rng; // lotus-lint: allow(unseeded-rng)
    return rng.uniform();
}
