// Fixture: pointer-keyed ordered containers must trip [pointer-key-order]
// (iteration order = allocation order under ASLR, different every run).
#include <map>
#include <string>

struct Device;

std::string first_device_name_broken(const std::map<Device*, std::string>& names) {
    return names.empty() ? std::string{} : names.begin()->second;
}
