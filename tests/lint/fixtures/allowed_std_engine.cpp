// Fixture: the inline escape hatch must silence [std-engine].
#include <random>

double draw_allowed() {
    // Cross-checking util::Rng against a reference engine in a test is the
    // one legitimate use.
    std::mt19937 gen(12345); // lotus-lint: allow(std-engine)
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(gen);
}
