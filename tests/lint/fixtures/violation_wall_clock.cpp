// Fixture: wall-clock reads outside src/prof/ must trip [wall-clock].
// Not compiled -- linted only (tests/lint via lotus_lint.py --self-test).
#include <chrono>
#include <ctime>

double sim_now_broken() {
    const auto t = std::chrono::steady_clock::now();
    return static_cast<double>(t.time_since_epoch().count());
}

long stamp_broken() { return time(nullptr); }
