// Fixture: the inline escape hatch must silence [wall-clock].
#include <chrono>

double coarse_watchdog_deadline() {
    // A host-side watchdog genuinely needs host time and never feeds an
    // artifact; the allow marker documents that at the site.
    const auto t = std::chrono::steady_clock::now(); // lotus-lint: allow(wall-clock)
    return static_cast<double>(t.time_since_epoch().count());
}

// Marker-on-previous-line form:
// lotus-lint: allow(wall-clock)
long stamp_allowed() { return time(nullptr); }
