// Fixture: thread-identity-derived ordering must trip [thread-id-order].
#include <map>
#include <thread>

int worker_slot_broken(const std::map<std::thread::id, int>& slots) {
    const auto it = slots.find(std::this_thread::get_id());
    return it == slots.end() ? -1 : it->second;
}
