// Integration tests: full stack (platform + detector + workload + governor +
// runtime) exercised end to end. These validate the causal structure behind
// the paper's results rather than exact numbers: throttling hurts the naive
// governor, the learning agents respect the thermal envelope, LOTUS's
// post-RPN decision reduces latency variation, and agents adapt across
// environment changes.

#include <gtest/gtest.h>

#include <cmath>

#include "governors/linux_governors.hpp"
#include "governors/ztt.hpp"
#include "lotus/agent.hpp"
#include "platform/presets.hpp"
#include "runtime/runner.hpp"
#include "workload/presets.hpp"

namespace lotus {
namespace {

using detector::DetectorKind;

runtime::ExperimentConfig orin_config(std::size_t iterations, std::size_t pretrain,
                                      const std::string& dataset = "KITTI") {
    return runtime::static_experiment(platform::orin_nano_spec(),
                                      DetectorKind::faster_rcnn, dataset, iterations,
                                      pretrain, /*seed=*/2024);
}

core::LotusConfig lotus_config() {
    core::LotusConfig cfg;
    cfg.reward.t_thres_celsius =
        platform::reward_threshold_celsius(platform::orin_nano_spec());
    cfg.seed = 31;
    return cfg;
}

TEST(EndToEnd, MaxFrequencyEventuallyThrottles) {
    // Pinning both domains at max must heat-soak the Orin into its trip
    // point -- the premise of the whole paper.
    runtime::ExperimentRunner runner(orin_config(1200, 0));
    governors::FixedGovernor gov(7, 5);
    const auto trace = runner.run(gov);
    const auto s = trace.summary();
    EXPECT_GT(s.throttled_fraction, 0.3);
    EXPECT_GT(s.max_device_temp, 75.0);
    // Once throttling starts, latency degrades vs the cold phase.
    const auto cold = trace.summary(0, 200);
    const auto hot = trace.summary(800, 1200);
    EXPECT_GT(hot.mean_latency_s, cold.mean_latency_s * 1.1);
    EXPECT_GT(hot.std_latency_s, cold.std_latency_s * 1.5);
}

TEST(EndToEnd, MidLadderNeverThrottles) {
    runtime::ExperimentRunner runner(orin_config(1200, 0));
    governors::FixedGovernor gov(5, 3); // DESIGN.md's sustainable point
    const auto trace = runner.run(gov);
    const auto s = trace.summary();
    EXPECT_LT(s.throttled_fraction, 0.01);
    EXPECT_LT(s.max_device_temp, platform::throttle_bound_celsius(
                                     platform::orin_nano_spec()));
}

TEST(EndToEnd, DefaultGovernorShowsThermalOscillation) {
    runtime::ExperimentRunner runner(orin_config(1500, 0));
    auto gov = governors::DefaultGovernor::orin_nano();
    const auto trace = runner.run(gov);
    const auto hot = trace.summary(700, 1500);
    EXPECT_GT(hot.throttled_fraction, 0.4);
    // The trip/clamp limit cycle inflates variance in the hot phase.
    const auto cold = trace.summary(0, 300);
    EXPECT_GT(hot.std_latency_s, cold.std_latency_s * 1.5);
}

TEST(EndToEnd, LotusRespectsThermalEnvelope) {
    auto cfg = orin_config(1000, 2500);
    runtime::ExperimentRunner runner(cfg);
    core::LotusAgent agent(8, 6, lotus_config());
    const auto trace = runner.run(agent);
    const auto s = trace.summary();
    // A trained agent should essentially never trip the hardware throttler.
    EXPECT_LT(s.throttled_fraction, 0.10);
    EXPECT_LT(s.mean_device_temp, platform::throttle_bound_celsius(
                                      platform::orin_nano_spec()));
    // And still meet the constraint most of the time.
    EXPECT_GT(s.satisfaction_rate, 0.7);
}

TEST(EndToEnd, LotusBeatsDefaultOnVarianceAndSatisfaction) {
    // The headline claim (Table 1), tested at reduced scale: lower sigma_l
    // and higher R_L than the stock governors.
    auto cfg = orin_config(1200, 2500);
    runtime::ExperimentRunner runner(cfg);

    auto default_gov = governors::DefaultGovernor::orin_nano();
    const auto trace_default = runner.run(default_gov);

    core::LotusAgent agent(8, 6, lotus_config());
    const auto trace_lotus = runner.run(agent);

    const auto sd = trace_default.summary();
    const auto sl = trace_lotus.summary();
    EXPECT_LT(sl.std_latency_s, sd.std_latency_s);
    EXPECT_GT(sl.satisfaction_rate, sd.satisfaction_rate);
    EXPECT_LE(sl.mean_latency_s, sd.mean_latency_s * 1.05);
}

TEST(EndToEnd, PostRpnDecisionReducesVariance) {
    // Ablation of the paper's core design claim (Sec. 4.2): the two-decision
    // agent achieves lower latency variance than the same agent restricted
    // to the frame-start decision, because only the former can compensate
    // the proposal count.
    auto cfg = orin_config(1200, 3000, "VisDrone2019");
    runtime::ExperimentRunner runner(cfg);

    core::LotusAgent both(8, 6, lotus_config());
    const auto trace_both = runner.run(both);

    auto fs_cfg = lotus_config();
    fs_cfg.decision_mode = core::DecisionMode::frame_start_only;
    core::LotusAgent frame_start_only(8, 6, fs_cfg);
    const auto trace_fs = runner.run(frame_start_only);

    EXPECT_LT(trace_both.summary().std_latency_s,
              trace_fs.summary().std_latency_s * 1.1);
}

TEST(EndToEnd, ZttLandsBetweenDefaultAndLotus) {
    auto cfg = orin_config(1200, 2500);
    runtime::ExperimentRunner runner(cfg);

    auto default_gov = governors::DefaultGovernor::orin_nano();
    const auto sd = runner.run(default_gov).summary();

    governors::ZttConfig zc;
    zc.t_thres_celsius =
        platform::reward_threshold_celsius(platform::orin_nano_spec());
    governors::ZttGovernor ztt(8, 6, zc);
    const auto sz = runner.run(ztt).summary();

    core::LotusAgent agent(8, 6, lotus_config());
    const auto sl = runner.run(agent).summary();

    // Satisfaction-rate ordering of Tables 1-2: LOTUS >= zTT >= default.
    EXPECT_GE(sl.satisfaction_rate + 0.03, sz.satisfaction_rate);
    EXPECT_GE(sz.satisfaction_rate + 0.03, sd.satisfaction_rate);
    // Variance ordering: LOTUS lowest.
    EXPECT_LT(sl.std_latency_s, sd.std_latency_s);
}

TEST(EndToEnd, AmbientDropCoolsDevice) {
    // Fig. 7a mechanism: moving to the cold zone must lower device
    // temperature under an unchanged governor. The windows are placed a full
    // board time constant after each change so the comparison is between
    // near-equilibrated phases.
    auto cfg = orin_config(1400, 0);
    cfg.ambient = workload::AmbientProfile::zones({{0, 25.0}, {700, 0.0}});
    runtime::ExperimentRunner runner(cfg);
    governors::FixedGovernor gov(5, 3);
    const auto trace = runner.run(gov);
    const auto warm = trace.summary(600, 700);
    const auto cold = trace.summary(1250, 1400);
    EXPECT_LT(cold.mean_device_temp, warm.mean_device_temp - 10.0);
}

TEST(EndToEnd, DomainSwitchRaisesLatency) {
    // Fig. 7b mechanism: KITTI -> VisDrone switch increases work sharply.
    auto cfg = orin_config(600, 0);
    cfg.schedule = workload::DomainSchedule::segments({
        {0, "KITTI", 0.45},
        {300, "VisDrone2019", 0.56},
    });
    runtime::ExperimentRunner runner(cfg);
    governors::FixedGovernor gov(7, 5);
    const auto trace = runner.run(gov);
    const auto kitti = trace.summary(100, 300);
    const auto visdrone = trace.summary(300, 500);
    EXPECT_GT(visdrone.mean_latency_s, kitti.mean_latency_s * 1.25);
}

TEST(EndToEnd, Mi11RunsSlowerAndCooler) {
    // Table 2 vs Table 1: the phone is ~3-4x slower; Fig. 6 vs Fig. 4: it
    // operates in a much lower temperature band.
    auto orin_cfg = orin_config(150, 0);
    runtime::ExperimentRunner orin_runner(orin_cfg);
    governors::FixedGovernor orin_gov(7, 5);
    const auto orin_s = orin_runner.run(orin_gov).summary();

    auto mi11_cfg = runtime::static_experiment(platform::mi11_lite_spec(),
                                               DetectorKind::faster_rcnn, "KITTI",
                                               150, 0, 2024);
    runtime::ExperimentRunner mi11_runner(mi11_cfg);
    governors::FixedGovernor mi11_gov(7, 7);
    const auto mi11_s = mi11_runner.run(mi11_gov).summary();

    EXPECT_GT(mi11_s.mean_latency_s / orin_s.mean_latency_s, 2.5);
    EXPECT_LT(mi11_s.mean_latency_s / orin_s.mean_latency_s, 6.0);
    EXPECT_LT(mi11_s.max_device_temp, 50.0);
}

TEST(EndToEnd, MaskRcnnSlowerThanFasterRcnn) {
    auto cfg = orin_config(150, 0);
    runtime::ExperimentRunner fr_runner(cfg);
    governors::FixedGovernor g1(7, 5);
    const auto fr = fr_runner.run(g1).summary();

    auto mr_cfg = runtime::static_experiment(platform::orin_nano_spec(),
                                             DetectorKind::mask_rcnn, "KITTI", 150, 0,
                                             2024);
    runtime::ExperimentRunner mr_runner(mr_cfg);
    governors::FixedGovernor g2(7, 5);
    const auto mr = mr_runner.run(g2).summary();
    EXPECT_GT(mr.mean_latency_s, fr.mean_latency_s * 1.1);
}

TEST(EndToEnd, YoloHasNegligibleVariance) {
    // Fig. 1: one-stage detectors show tiny latency variation at fixed
    // frequency compared to two-stage models.
    auto yolo_cfg = runtime::static_experiment(platform::orin_nano_spec(),
                                               DetectorKind::yolo_v5, "KITTI", 200, 0,
                                               2024);
    runtime::ExperimentRunner yolo_runner(yolo_cfg);
    governors::FixedGovernor g1(5, 3);
    const auto yolo = yolo_runner.run(g1).summary();

    auto fr_cfg = orin_config(200, 0);
    runtime::ExperimentRunner fr_runner(fr_cfg);
    governors::FixedGovernor g2(5, 3);
    const auto fr = fr_runner.run(g2).summary();

    const double yolo_cv = yolo.std_latency_s / yolo.mean_latency_s;
    const double fr_cv = fr.std_latency_s / fr.mean_latency_s;
    // At fixed frequency the two-stage model's proposal-driven variance must
    // clearly exceed the common OS/scene noise floor that both models share.
    // (Fig. 1's much larger contrast additionally includes thermal cycling;
    // bench_fig1_motivation reproduces that setting.)
    EXPECT_LT(yolo_cv * 1.4, fr_cv);
}

} // namespace
} // namespace lotus
