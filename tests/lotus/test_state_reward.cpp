// Tests for the LOTUS state encoding (Sec. 4.3.2), action codec (4.3.1) and
// reward (4.3.3, Eqs. (2)-(3)).

#include <gtest/gtest.h>

#include <cmath>

#include "lotus/reward.hpp"
#include "lotus/state.hpp"

namespace lotus::core {
namespace {

governors::Observation base_obs() {
    governors::Observation o;
    o.cpu_temp = 60.0;
    o.gpu_temp = 70.0;
    o.cpu_level = 4;
    o.gpu_level = 3;
    o.cpu_levels = 8;
    o.gpu_levels = 6;
    o.latency_constraint_s = 0.45;
    o.last_frame_latency_s = 0.40;
    return o;
}

TEST(ActionCodec, RoundTripsAllActions) {
    ActionCodec codec(8, 6);
    EXPECT_EQ(codec.num_actions(), 48u);
    for (std::size_t c = 0; c < 8; ++c) {
        for (std::size_t g = 0; g < 6; ++g) {
            const int a = codec.encode(c, g);
            const auto [c2, g2] = codec.decode(a);
            ASSERT_EQ(c2, c);
            ASSERT_EQ(g2, g);
        }
    }
}

TEST(ActionCodec, ActionsAreUnique) {
    ActionCodec codec(5, 7);
    std::set<int> seen;
    for (std::size_t c = 0; c < 5; ++c) {
        for (std::size_t g = 0; g < 7; ++g) seen.insert(codec.encode(c, g));
    }
    EXPECT_EQ(seen.size(), 35u);
}

TEST(ActionCodec, BoundsChecked) {
    ActionCodec codec(4, 4);
    EXPECT_THROW((void)codec.encode(4, 0), std::out_of_range);
    EXPECT_THROW((void)codec.encode(0, 4), std::out_of_range);
    EXPECT_THROW((void)codec.decode(-1), std::out_of_range);
    EXPECT_THROW((void)codec.decode(16), std::out_of_range);
    EXPECT_THROW(ActionCodec(0, 4), std::invalid_argument);
}

StateEncoderConfig encoder_config() {
    StateEncoderConfig cfg;
    cfg.temp_ref_celsius = 80.0; // the agent wires this to T_thres
    return cfg;
}

TEST(StateEncoder, EvenStateLayout) {
    StateEncoder enc(8, 6, encoder_config());
    const auto s = enc.encode_even(base_obs());
    ASSERT_EQ(s.size(), kStateDim);
    EXPECT_DOUBLE_EQ(s[0], 0.0);                     // stage flag
    EXPECT_DOUBLE_EQ(s[1], (60.0 - 80.0) / 15.0);    // T_cpu vs threshold
    EXPECT_DOUBLE_EQ(s[2], (70.0 - 80.0) / 15.0);    // T_gpu vs threshold
    EXPECT_DOUBLE_EQ(s[3], 4.0 / 7.0);               // cpu level norm
    EXPECT_DOUBLE_EQ(s[4], 3.0 / 5.0);               // gpu level norm
    EXPECT_NEAR(s[5], (0.45 - 0.40) / 0.45, 1e-12);  // previous slack / L
    EXPECT_DOUBLE_EQ(s[6], 0.0);                     // proposal slot empty
}

TEST(StateEncoder, TemperatureEncodingResolvesThresholdBand) {
    // The hot/safe boundary must land at the same encoded value on both
    // device classes -- the property the threshold-relative encoding exists
    // for (a fixed /100 scale would squash the phone's band).
    StateEncoderConfig orin_cfg;
    orin_cfg.temp_ref_celsius = 83.0;
    StateEncoderConfig mi11_cfg;
    mi11_cfg.temp_ref_celsius = 41.0;
    StateEncoder orin(8, 6, orin_cfg);
    StateEncoder mi11(8, 8, mi11_cfg);

    auto orin_obs = base_obs();
    orin_obs.cpu_temp = 83.0; // exactly at threshold
    auto mi11_obs = base_obs();
    mi11_obs.cpu_temp = 41.0;
    EXPECT_DOUBLE_EQ(orin.encode_even(orin_obs)[1], 0.0);
    EXPECT_DOUBLE_EQ(mi11.encode_even(mi11_obs)[1], 0.0);
    // 3 K over threshold encodes identically on both devices.
    orin_obs.cpu_temp = 86.0;
    mi11_obs.cpu_temp = 44.0;
    EXPECT_DOUBLE_EQ(orin.encode_even(orin_obs)[1], mi11.encode_even(mi11_obs)[1]);
}

TEST(StateEncoder, EvenStateFirstFrameUsesFullBudget) {
    StateEncoder enc(8, 6, encoder_config());
    auto obs = base_obs();
    obs.last_frame_latency_s = 0.0; // no history yet
    const auto s = enc.encode_even(obs);
    EXPECT_DOUBLE_EQ(s[5], 1.0); // DeltaL = L -> normalised to 1
}

TEST(StateEncoder, OddStateLayout) {
    StateEncoder enc(8, 6, encoder_config());
    auto obs = base_obs();
    obs.proposals = 325;
    obs.elapsed_in_frame_s = 0.30;
    const auto s = enc.encode_odd(obs);
    ASSERT_EQ(s.size(), kStateDim);
    EXPECT_DOUBLE_EQ(s[0], 1.0); // stage flag
    EXPECT_NEAR(s[5], (0.45 - 0.30) / 0.45, 1e-12); // remaining budget / L
    EXPECT_DOUBLE_EQ(s[6], 325.0 / 650.0);
}

TEST(StateEncoder, OddStateRequiresProposals) {
    StateEncoder enc(8, 6, encoder_config());
    auto obs = base_obs();
    obs.proposals = -1;
    EXPECT_THROW((void)enc.encode_odd(obs), std::invalid_argument);
}

TEST(StateEncoder, DeltaLClamped) {
    StateEncoderConfig cfg;
    cfg.delta_l_clamp = 2.0;
    StateEncoder enc(8, 6, cfg);
    auto obs = base_obs();
    obs.last_frame_latency_s = 10.0; // hugely over budget
    EXPECT_DOUBLE_EQ(enc.encode_even(obs)[5], -2.0);
}

TEST(StateEncoder, ProposalNormCapped) {
    StateEncoder enc(8, 6, encoder_config());
    auto obs = base_obs();
    obs.proposals = 100000;
    obs.elapsed_in_frame_s = 0.1;
    EXPECT_DOUBLE_EQ(enc.encode_odd(obs)[6], 2.0);
}

TEST(StateEncoder, Validation) {
    EXPECT_THROW(StateEncoder(1, 6), std::invalid_argument);
    StateEncoderConfig bad;
    bad.proposal_norm = 0.0;
    EXPECT_THROW(StateEncoder(8, 6, bad), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Reward (Eqs. (2)-(3)).
// ---------------------------------------------------------------------------

RewardConfig reward_config() {
    RewardConfig cfg;
    cfg.penalty_p = 5.0;
    cfg.lambda_temp = 0.5;
    cfg.sigma_window = 10;
    cfg.t_thres_celsius = 80.0;
    return cfg;
}

TEST(LotusReward, RTimePositiveBranch) {
    LotusReward r(reward_config());
    // r_time = tanh(x) + 1/(1+sigma)
    EXPECT_NEAR(r.r_time(0.5, 0.0), std::tanh(0.5) + 1.0, 1e-12);
    EXPECT_NEAR(r.r_time(0.5, 1.0), std::tanh(0.5) + 0.5, 1e-12);
}

TEST(LotusReward, RTimeViolationBranch) {
    LotusReward r(reward_config());
    // Violation: p * DeltaL (negative).
    EXPECT_NEAR(r.r_time(-0.2, 0.0), -1.0, 1e-12);
    EXPECT_NEAR(r.r_time(-1.0, 5.0), -5.0, 1e-12);
}

TEST(LotusReward, VarianceTermRewardsStability) {
    // Identical mean slack, different dispersion: the stable stream must
    // accumulate more reward -- this is the sigma_n term of Eq. (2).
    LotusReward stable(reward_config());
    LotusReward jumpy(reward_config());
    double stable_sum = 0.0;
    double jumpy_sum = 0.0;
    for (int i = 0; i < 40; ++i) {
        stable_sum += stable.evaluate(0.35, 0.45, 60, 60).r_time;
        const double lat = (i % 2 == 0) ? 0.25 : 0.45 - 1e-9;
        jumpy_sum += jumpy.evaluate(lat, 0.45, 60, 60).r_time;
    }
    EXPECT_GT(stable_sum, jumpy_sum);
}

TEST(LotusReward, RTempBinary) {
    LotusReward r(reward_config());
    EXPECT_DOUBLE_EQ(r.r_temp(70, 70), 1.0);
    EXPECT_DOUBLE_EQ(r.r_temp(80, 80), 1.0); // <= threshold is fine
    EXPECT_DOUBLE_EQ(r.r_temp(81, 70), -5.0);
    EXPECT_DOUBLE_EQ(r.r_temp(70, 81), -5.0);
}

TEST(LotusReward, TotalCombinesWithLambda) {
    LotusReward r(reward_config());
    const auto b = r.evaluate(0.35, 0.45, 60, 60);
    EXPECT_NEAR(b.total, b.r_time + 0.5 * b.r_temp, 1e-12);
    EXPECT_NEAR(b.delta_l_norm, (0.45 - 0.35) / 0.45, 1e-12);
}

TEST(LotusReward, SigmaWindowTracksRecentFrames) {
    LotusReward r(reward_config());
    // Constant latency -> sigma 0.
    for (int i = 0; i < 15; ++i) (void)r.evaluate(0.35, 0.45, 60, 60);
    EXPECT_NEAR(r.current_sigma(), 0.0, 1e-12);
    // A latency jump raises sigma.
    (void)r.evaluate(0.10, 0.45, 60, 60);
    EXPECT_GT(r.current_sigma(), 0.01);
}

TEST(LotusReward, ViolationDominatesVarianceBonus) {
    LotusReward r(reward_config());
    const auto good = r.evaluate(0.40, 0.45, 60, 60);
    const auto bad = r.evaluate(0.60, 0.45, 60, 60);
    EXPECT_GT(good.total, 0.0);
    EXPECT_LT(bad.total, 0.0);
}

TEST(LotusReward, OverheatPenaltyDominates) {
    LotusReward r(reward_config());
    const auto hot = r.evaluate(0.30, 0.45, 90, 60);
    const auto cool = r.evaluate(0.30, 0.45, 60, 60);
    EXPECT_LT(hot.total, cool.total - 2.0);
}

TEST(LotusReward, ResetClearsWindow) {
    LotusReward r(reward_config());
    for (int i = 0; i < 5; ++i) (void)r.evaluate(0.1 * i + 0.1, 0.45, 60, 60);
    r.reset();
    EXPECT_EQ(r.current_sigma(), 0.0);
}

TEST(LotusReward, Validation) {
    auto cfg = reward_config();
    cfg.penalty_p = 0.0;
    EXPECT_THROW(LotusReward{cfg}, std::invalid_argument);
    cfg = reward_config();
    cfg.lambda_temp = -1.0;
    EXPECT_THROW(LotusReward{cfg}, std::invalid_argument);
    LotusReward ok(reward_config());
    EXPECT_THROW((void)ok.evaluate(0.4, 0.0, 60, 60), std::invalid_argument);
}

} // namespace
} // namespace lotus::core
