// Tests for the LOTUS agent: two decisions per frame, dual replay buffers
// with cross-width transitions, epsilon_t cool-down, and the ablation modes.

#include <gtest/gtest.h>

#include <cmath>

#include "lotus/agent.hpp"

namespace lotus::core {
namespace {

LotusConfig test_config() {
    LotusConfig cfg;
    cfg.hidden = {32, 32, 32};
    cfg.min_replay = 4;
    cfg.batch_size = 4;
    cfg.reward.t_thres_celsius = 80.0;
    cfg.seed = 99;
    return cfg;
}

governors::Observation obs_start(double cpu_temp = 60, double gpu_temp = 70) {
    governors::Observation o;
    o.cpu_temp = cpu_temp;
    o.gpu_temp = gpu_temp;
    o.cpu_level = 5;
    o.gpu_level = 3;
    o.cpu_levels = 8;
    o.gpu_levels = 6;
    o.latency_constraint_s = 0.45;
    o.last_frame_latency_s = 0.40;
    return o;
}

governors::Observation obs_rpn(int proposals = 200, double cpu_temp = 60,
                               double gpu_temp = 70) {
    auto o = obs_start(cpu_temp, gpu_temp);
    o.proposals = proposals;
    o.elapsed_in_frame_s = 0.30;
    return o;
}

governors::FrameOutcome outcome_ok() {
    governors::FrameOutcome f;
    f.latency_s = 0.40;
    f.stage1_latency_s = 0.32;
    f.stage2_latency_s = 0.08;
    f.proposals = 200;
    f.cpu_temp = 60;
    f.gpu_temp = 70;
    f.latency_constraint_s = 0.45;
    return f;
}

/// Run n full frames through the agent's hook sequence.
void run_frames(LotusAgent& agent, int n) {
    for (int i = 0; i < n; ++i) {
        (void)agent.on_frame_start(obs_start());
        (void)agent.on_post_rpn(obs_rpn());
        agent.on_frame_end(outcome_ok());
    }
}

TEST(LotusAgent, TwoDecisionsPerFrame) {
    LotusAgent agent(8, 6, test_config());
    const auto r1 = agent.on_frame_start(obs_start());
    EXPECT_TRUE(r1.has_request);
    const auto r2 = agent.on_post_rpn(obs_rpn());
    EXPECT_TRUE(r2.has_request);
    agent.on_frame_end(outcome_ok());
    EXPECT_EQ(agent.decisions_made(), 2u);
    EXPECT_EQ(agent.frames_seen(), 1u);
}

TEST(LotusAgent, RequestsWithinLadder) {
    LotusAgent agent(8, 6, test_config());
    for (int i = 0; i < 50; ++i) {
        const auto r1 = agent.on_frame_start(obs_start());
        ASSERT_LT(r1.cpu, 8u);
        ASSERT_LT(r1.gpu, 6u);
        const auto r2 = agent.on_post_rpn(obs_rpn());
        ASSERT_LT(r2.cpu, 8u);
        ASSERT_LT(r2.gpu, 6u);
        agent.on_frame_end(outcome_ok());
    }
}

TEST(LotusAgent, DualBuffersFillSeparately) {
    auto cfg = test_config();
    cfg.train_online = false;
    LotusAgent agent(8, 6, cfg);
    run_frames(agent, 10);
    // Even transitions complete at frame end (10 of them); odd transitions
    // complete at the *next* frame start (9 of them).
    EXPECT_EQ(agent.even_buffer().size(), 10u);
    EXPECT_EQ(agent.odd_buffer().size(), 9u);
}

TEST(LotusAgent, EvenTransitionsCarryCrossWidths) {
    auto cfg = test_config();
    cfg.train_online = false;
    LotusAgent agent(8, 6, cfg);
    run_frames(agent, 5);
    for (std::size_t i = 0; i < agent.even_buffer().size(); ++i) {
        const auto& t = agent.even_buffer()[i];
        ASSERT_DOUBLE_EQ(t.width_state, 0.75);
        ASSERT_DOUBLE_EQ(t.width_next, 1.0);
        // Even state: stage flag 0, proposal slot 0; next (odd) state: flag 1.
        ASSERT_DOUBLE_EQ(t.state[0], 0.0);
        ASSERT_DOUBLE_EQ(t.state[6], 0.0);
        ASSERT_DOUBLE_EQ(t.next_state[0], 1.0);
        ASSERT_GT(t.next_state[6], 0.0);
    }
}

TEST(LotusAgent, OddTransitionsCarryCrossWidths) {
    auto cfg = test_config();
    cfg.train_online = false;
    LotusAgent agent(8, 6, cfg);
    run_frames(agent, 5);
    for (std::size_t i = 0; i < agent.odd_buffer().size(); ++i) {
        const auto& t = agent.odd_buffer()[i];
        ASSERT_DOUBLE_EQ(t.width_state, 1.0);
        ASSERT_DOUBLE_EQ(t.width_next, 0.75);
        ASSERT_DOUBLE_EQ(t.state[0], 1.0);      // odd state
        ASSERT_DOUBLE_EQ(t.next_state[0], 0.0); // next frame's even state
    }
}

TEST(LotusAgent, SharedNetworkByDefault) {
    LotusAgent agent(8, 6, test_config());
    EXPECT_EQ(&agent.even_net(), &agent.odd_net());
}

TEST(LotusAgent, EpsilonDecaysPerDecision) {
    LotusAgent agent(8, 6, test_config());
    const double e0 = agent.epsilon();
    run_frames(agent, 100);
    EXPECT_LT(agent.epsilon(), e0);
}

TEST(LotusAgent, TrainsOnlineOncePerFrame) {
    LotusAgent agent(8, 6, test_config());
    run_frames(agent, 12);
    // After min_replay is reached both nets receive updates.
    EXPECT_GT(agent.even_net().updates(), 0u);
}

TEST(LotusAgent, CooldownFiresOnlyWhenHot) {
    LotusAgent agent(8, 6, test_config());
    run_frames(agent, 5);
    EXPECT_EQ(agent.cooldown_activations(), 0u);
    // Hot frame: epsilon_t starts at 1.0, so the first hot decision must
    // trigger the cool-down.
    const auto req = agent.on_frame_start(obs_start(85, 85));
    ASSERT_TRUE(req.has_request);
    EXPECT_LT(req.cpu, 5u); // strictly below the current levels
    EXPECT_LT(req.gpu, 3u);
    EXPECT_EQ(agent.cooldown_activations(), 1u);
}

TEST(LotusAgent, EpsilonTDecaysPerTrigger) {
    auto cfg = test_config();
    cfg.eps_t_triggers = 10;
    LotusAgent agent(8, 6, cfg);
    const double t0 = agent.epsilon_t();
    EXPECT_DOUBLE_EQ(t0, 1.0);
    // Each hot decision triggers the sinusoidal decay.
    (void)agent.on_frame_start(obs_start(85, 85));
    EXPECT_LT(agent.epsilon_t(), t0);
    const double t1 = agent.epsilon_t();
    (void)agent.on_post_rpn(obs_rpn(200, 85, 85));
    EXPECT_LT(agent.epsilon_t(), t1);
}

TEST(LotusAgent, EpsilonTEventuallyYieldsToPolicy) {
    auto cfg = test_config();
    cfg.eps_t_triggers = 5;
    cfg.eps_t_floor = 0.0;
    LotusAgent agent(8, 6, cfg);
    // Exhaust the cool-down budget.
    for (int i = 0; i < 30; ++i) {
        (void)agent.on_frame_start(obs_start(85, 85));
        (void)agent.on_post_rpn(obs_rpn(200, 85, 85));
        agent.on_frame_end(outcome_ok());
    }
    EXPECT_NEAR(agent.epsilon_t(), 0.0, 1e-9);
    const auto before = agent.cooldown_activations();
    // With epsilon_t = 0 the agent uses the Q-network even when hot.
    for (int i = 0; i < 20; ++i) (void)agent.on_frame_start(obs_start(85, 85));
    EXPECT_EQ(agent.cooldown_activations(), before);
}

TEST(LotusAgent, ZttStyleCooldownNeverDecays) {
    auto cfg = test_config();
    cfg.ztt_style_cooldown = true;
    LotusAgent agent(8, 6, cfg);
    for (int i = 0; i < 25; ++i) {
        const auto req = agent.on_frame_start(obs_start(85, 85));
        ASSERT_LT(req.cpu, 5u);
    }
    EXPECT_EQ(agent.cooldown_activations(), 25u);
    EXPECT_EQ(agent.name(), "Lotus(ztt-cooldown)");
}

TEST(LotusAgent, FrameStartOnlyModeSkipsPostRpn) {
    auto cfg = test_config();
    cfg.decision_mode = DecisionMode::frame_start_only;
    cfg.train_online = false;
    LotusAgent agent(8, 6, cfg);
    for (int i = 0; i < 8; ++i) {
        EXPECT_TRUE(agent.on_frame_start(obs_start()).has_request);
        EXPECT_FALSE(agent.on_post_rpn(obs_rpn()).has_request);
        agent.on_frame_end(outcome_ok());
    }
    EXPECT_EQ(agent.decisions_made(), 8u);
    // Even->even chained transitions: 7 completed.
    EXPECT_EQ(agent.even_buffer().size(), 7u);
    EXPECT_EQ(agent.odd_buffer().size(), 0u);
}

TEST(LotusAgent, PostRpnOnlyModeSkipsFrameStart) {
    auto cfg = test_config();
    cfg.decision_mode = DecisionMode::post_rpn_only;
    cfg.train_online = false;
    LotusAgent agent(8, 6, cfg);
    for (int i = 0; i < 8; ++i) {
        EXPECT_FALSE(agent.on_frame_start(obs_start()).has_request);
        EXPECT_TRUE(agent.on_post_rpn(obs_rpn()).has_request);
        agent.on_frame_end(outcome_ok());
    }
    EXPECT_EQ(agent.decisions_made(), 8u);
    EXPECT_EQ(agent.even_buffer().size(), 0u);
    EXPECT_EQ(agent.odd_buffer().size(), 7u);
}

TEST(LotusAgent, TwoNetworkAblationUsesSeparateNets) {
    auto cfg = test_config();
    cfg.use_two_networks = true;
    LotusAgent agent(8, 6, cfg);
    EXPECT_NE(&agent.even_net(), &agent.odd_net());
    EXPECT_EQ(agent.name(), "Lotus(two-networks)");
    run_frames(agent, 10);
    EXPECT_GT(agent.even_net().updates(), 0u);
    EXPECT_GT(agent.odd_net().updates(), 0u);
}

TEST(LotusAgent, TwoNetworkTransitionsAreFullWidth) {
    auto cfg = test_config();
    cfg.use_two_networks = true;
    cfg.train_online = false;
    LotusAgent agent(8, 6, cfg);
    run_frames(agent, 5);
    for (std::size_t i = 0; i < agent.even_buffer().size(); ++i) {
        ASSERT_DOUBLE_EQ(agent.even_buffer()[i].width_state, 1.0);
    }
}

TEST(LotusAgent, OneStageFrameDropsEvenTransition) {
    // If the engine never calls on_post_rpn (one-stage detector), the even
    // transition has no successor state and must be dropped, not corrupted.
    auto cfg = test_config();
    cfg.train_online = false;
    LotusAgent agent(8, 6, cfg);
    (void)agent.on_frame_start(obs_start());
    agent.on_frame_end(outcome_ok()); // no post-RPN call
    EXPECT_EQ(agent.even_buffer().size(), 0u);
    (void)agent.on_frame_start(obs_start());
    (void)agent.on_post_rpn(obs_rpn());
    agent.on_frame_end(outcome_ok());
    EXPECT_EQ(agent.even_buffer().size(), 1u);
}

TEST(LotusAgent, RewardTracksOutcome) {
    LotusAgent agent(8, 6, test_config());
    (void)agent.on_frame_start(obs_start());
    (void)agent.on_post_rpn(obs_rpn());
    auto good = outcome_ok();
    agent.on_frame_end(good);
    const double r_good = agent.last_reward();

    auto bad = outcome_ok();
    bad.latency_s = 0.80; // violates 0.45 constraint
    (void)agent.on_frame_start(obs_start());
    (void)agent.on_post_rpn(obs_rpn());
    agent.on_frame_end(bad);
    EXPECT_LT(agent.last_reward(), r_good);
    EXPECT_LT(agent.last_reward(), 0.0);
}

TEST(LotusAgent, DeterministicForSeed) {
    LotusAgent a(8, 6, test_config());
    LotusAgent b(8, 6, test_config());
    for (int i = 0; i < 30; ++i) {
        const auto ra = a.on_frame_start(obs_start());
        const auto rb = b.on_frame_start(obs_start());
        ASSERT_EQ(ra.cpu, rb.cpu);
        ASSERT_EQ(ra.gpu, rb.gpu);
        const auto sa = a.on_post_rpn(obs_rpn());
        const auto sb = b.on_post_rpn(obs_rpn());
        ASSERT_EQ(sa.cpu, sb.cpu);
        ASSERT_EQ(sa.gpu, sb.gpu);
        a.on_frame_end(outcome_ok());
        b.on_frame_end(outcome_ok());
    }
}

TEST(LotusAgent, DecisionOverheadMatchesPaper) {
    // Sec. 4.4.2: 8.52 ms per inference across two decisions.
    LotusAgent agent(8, 6, LotusConfig{});
    EXPECT_NEAR(2.0 * agent.decision_overhead_s(), 0.00852, 1e-5);
}

TEST(LotusAgent, ConfigValidation) {
    auto cfg = test_config();
    cfg.reduced_width = 0.0;
    EXPECT_THROW(LotusAgent(8, 6, cfg), std::invalid_argument);
    cfg = test_config();
    cfg.reduced_width = 1.5;
    EXPECT_THROW(LotusAgent(8, 6, cfg), std::invalid_argument);
}

} // namespace
} // namespace lotus::core
