// Tests for Q-network checkpointing.

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "rl/optimizer.hpp"
#include "rl/serialize.hpp"

namespace lotus::rl {
namespace {

MlpConfig net_config(std::uint64_t seed = 3) {
    MlpConfig cfg;
    cfg.dims = {7, 24, 24, 12};
    cfg.slim_input = true;
    cfg.seed = seed;
    return cfg;
}

TEST(Serialize, RoundTripIsBitExact) {
    SlimmableMlp net(net_config());
    std::stringstream buffer;
    save_mlp(net, buffer);
    const auto restored = load_mlp(buffer);

    const std::vector<double> x(7, 0.37);
    for (const double width : {0.75, 1.0}) {
        const auto a = net.forward(x, width);
        const auto b = restored.forward(x, width);
        ASSERT_EQ(a, b) << "width " << width;
    }
    EXPECT_EQ(restored.config().dims, net.config().dims);
    EXPECT_EQ(restored.config().slim_input, net.config().slim_input);
}

TEST(Serialize, FileRoundTrip) {
    const auto path =
        (std::filesystem::temp_directory_path() / "lotus_mlp_test.ckpt").string();
    SlimmableMlp net(net_config(7));
    save_mlp(net, path);
    const auto restored = load_mlp(path);
    const std::vector<double> x(7, -0.2);
    EXPECT_EQ(net.forward(x, 1.0), restored.forward(x, 1.0));
    std::filesystem::remove(path);
}

TEST(Serialize, LoadIntoExistingNetwork) {
    SlimmableMlp source(net_config(11));
    SlimmableMlp target(net_config(99)); // different init, same topology
    const std::vector<double> x(7, 0.5);
    ASSERT_NE(source.forward(x, 1.0), target.forward(x, 1.0));

    std::stringstream buffer;
    save_mlp(source, buffer);
    load_mlp_into(target, buffer);
    EXPECT_EQ(source.forward(x, 1.0), target.forward(x, 1.0));
}

TEST(Serialize, TopologyMismatchRejected) {
    SlimmableMlp source(net_config());
    std::stringstream buffer;
    save_mlp(source, buffer);

    MlpConfig other = net_config();
    other.dims = {7, 16, 12};
    SlimmableMlp target(other);
    EXPECT_THROW(load_mlp_into(target, buffer), std::runtime_error);
}

TEST(Serialize, CorruptInputsRejected) {
    std::stringstream garbage("garbage");
    EXPECT_THROW((void)load_mlp(garbage), std::runtime_error);
    std::stringstream truncated("lotus-mlp v1\ndims 3 7 16 4\nslim_input 1\n"
                                "slim_output 0\nlayer 0\nw 1.0 2.0");
    EXPECT_THROW((void)load_mlp(truncated), std::runtime_error);
    std::stringstream bad_magic("lotus-mlp v9\ndims 2 2 2\n");
    EXPECT_THROW((void)load_mlp(bad_magic), std::runtime_error);
}

TEST(Serialize, MissingFileRejected) {
    EXPECT_THROW((void)load_mlp("/nonexistent/dir/net.ckpt"), std::runtime_error);
    SlimmableMlp net(net_config());
    EXPECT_THROW(save_mlp(net, "/nonexistent/dir/net.ckpt"), std::runtime_error);
}

TEST(Serialize, TrainedWeightsSurviveRoundTrip) {
    // Checkpoint a partially trained network, not just an initialized one.
    SlimmableMlp net(net_config(13));
    Adam adam(net, {});
    const std::vector<double> x(7, 0.4);
    for (int i = 0; i < 20; ++i) {
        ForwardCache cache;
        net.forward_cached(x, 0.75, cache);
        std::vector<double> dout(net.output_dim(), 0.2);
        net.backward(cache, dout);
        adam.step(net);
    }
    std::stringstream buffer;
    save_mlp(net, buffer);
    const auto restored = load_mlp(buffer);
    EXPECT_EQ(net.forward(x, 0.75), restored.forward(x, 0.75));
}

} // namespace
} // namespace lotus::rl
