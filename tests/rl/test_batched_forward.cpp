// Byte-identity tests for the batched/blocked RL math (the hot-path perf
// layer): Matrix::slice_matmul versus slice_matvec, the scratch-buffer and
// batched SlimmableMlp forwards versus the per-sample path, and full
// DqnCore::train_batch equivalence -- identical losses, Q-values and
// post-training parameters between DqnMath::scalar and DqnMath::batched
// across widths, batch sizes and slimmable active dims (including ragged
// out_active < out_ via slim_output). "Identical" here means bitwise: the
// batched kernels restructure the loops but never the per-element reduction
// order, so every double must match exactly, not approximately.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "rl/dqn.hpp"
#include "rl/layers.hpp"
#include "rl/matrix.hpp"
#include "rl/mlp.hpp"
#include "rl/replay.hpp"
#include "util/rng.hpp"

namespace lotus::rl {
namespace {

[[nodiscard]] Matrix random_matrix(std::size_t rows, std::size_t cols, util::Rng& rng) {
    Matrix m(rows, cols);
    for (auto& v : m.flat()) v = rng.uniform(-1.0, 1.0);
    return m;
}

[[nodiscard]] std::vector<double> random_vector(std::size_t n, util::Rng& rng) {
    std::vector<double> v(n);
    for (auto& x : v) x = rng.uniform(-1.0, 1.0);
    return v;
}

void expect_bitwise_eq(std::span<const double> a, std::span<const double> b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(double)), 0)
            << "element " << i << ": " << a[i] << " vs " << b[i];
    }
}

TEST(SliceMatmul, BitIdenticalToMatvecAcrossShapes) {
    util::Rng rng(7);
    // Shapes chosen to hit every tail path of the 2x4 register blocking:
    // batch in {1,2,3,5,8}, out in {1,3,4,6,48}, plus oversized X/Y columns.
    const struct {
        std::size_t out, in, batch;
    } shapes[] = {{1, 1, 1}, {3, 5, 2},  {4, 7, 3},   {6, 6, 5},
                  {48, 7, 8}, {5, 128, 4}, {128, 96, 2}, {9, 13, 7}};
    for (const auto& s : shapes) {
        const Matrix a = random_matrix(s.out, s.in + 2, rng); // wider than `in`
        const Matrix x = random_matrix(s.batch, s.in + 1, rng);
        const auto b = random_vector(s.out, rng);
        Matrix y_batched(s.batch, s.out + 1, -99.0); // oversized, poisoned
        Matrix::slice_matmul(a, x, b, y_batched, s.out, s.in, s.batch);

        std::vector<double> y_ref(s.out);
        for (std::size_t k = 0; k < s.batch; ++k) {
            Matrix::slice_matvec(a, x.row(k), b, y_ref, s.out, s.in);
            expect_bitwise_eq(y_ref, y_batched.row(k).first(s.out));
            // Columns beyond `out` stay untouched.
            EXPECT_EQ(y_batched(k, s.out), -99.0);
        }
    }
}

TEST(MlpScratchForward, BitIdenticalToVectorForward) {
    for (const bool slim_output : {false, true}) {
        MlpConfig cfg;
        cfg.dims = {7, 19, 13, 48};
        cfg.slim_output = slim_output;
        cfg.seed = 11;
        const SlimmableMlp net(cfg);
        util::Rng rng(3);
        MlpScratch scratch;
        std::vector<double> out(net.output_dim(), 0.0);
        for (const double width : {0.5, 0.75, 1.0}) {
            for (int rep = 0; rep < 4; ++rep) {
                const auto x = random_vector(7, rng);
                const auto ref = net.forward(x, width);
                net.forward(x, width, out, scratch);
                expect_bitwise_eq(ref, out);
            }
        }
    }
}

TEST(MlpForwardBatch, BitIdenticalToPerSampleForward) {
    for (const bool slim_output : {false, true}) {
        MlpConfig cfg;
        cfg.dims = {7, 33, 17, 48};
        cfg.slim_output = slim_output; // ragged out_active < out_ when true
        cfg.seed = 23;
        const SlimmableMlp net(cfg);
        util::Rng rng(5);
        BatchCache cache; // reused across widths: resize paths exercised
        for (const double width : {0.6, 0.75, 1.0}) {
            for (const std::size_t batch : {std::size_t{1}, std::size_t{2},
                                            std::size_t{5}, std::size_t{32}}) {
                Matrix x = random_matrix(batch, 7, rng);
                net.forward_batch(x, batch, width, cache);
                ASSERT_EQ(cache.batch, batch);
                for (std::size_t k = 0; k < batch; ++k) {
                    const auto ref = net.forward(x.row(k), width);
                    expect_bitwise_eq(ref, cache.output.row(k));
                }
            }
        }
    }
}

TEST(MlpBackwardRow, BitIdenticalGradsToPerSampleBackward) {
    MlpConfig cfg;
    cfg.dims = {7, 21, 48};
    cfg.seed = 31;
    SlimmableMlp scalar_net(cfg);
    SlimmableMlp batched_net(cfg); // same seed -> same init
    util::Rng rng(13);
    const std::size_t batch = 6;
    const double width = 0.75;

    Matrix x = random_matrix(batch, 7, rng);
    std::vector<std::vector<double>> douts;
    for (std::size_t k = 0; k < batch; ++k) {
        douts.push_back(random_vector(scalar_net.output_dim(), rng));
    }

    ForwardCache fc;
    for (std::size_t k = 0; k < batch; ++k) {
        scalar_net.forward_cached(x.row(k), width, fc);
        scalar_net.backward(fc, douts[k]);
    }

    BatchCache bc;
    MlpScratch scratch;
    batched_net.forward_batch(x, batch, width, bc);
    for (std::size_t k = 0; k < batch; ++k) {
        batched_net.backward_row(bc, k, douts[k], scratch);
    }

    for (std::size_t l = 0; l < scalar_net.num_layers(); ++l) {
        auto& sl = scalar_net.layers()[l];
        auto& bl = batched_net.layers()[l];
        expect_bitwise_eq(sl.grad_weights().flat(), bl.grad_weights().flat());
        expect_bitwise_eq(sl.grad_bias(), bl.grad_bias());
        const auto sm = sl.weight_mask();
        const auto bm = bl.weight_mask();
        ASSERT_EQ(sm.size(), bm.size());
        EXPECT_EQ(std::memcmp(sm.data(), bm.data(), sm.size()), 0);
    }
}

// The mask high-water-mark optimisation must mark exactly the union of the
// leading spans touched across a batch of mixed widths.
TEST(SlimmableLinearMask, PrefixMarkingMatchesBruteForce) {
    util::Rng rng(17);
    SlimmableLinear layer(8, 6, rng);
    std::vector<double> dx(8, 0.0);
    const auto x = random_vector(8, rng);
    const auto dy = random_vector(6, rng);

    // Narrow, wide, then narrow again: the second narrow call must not
    // unmark anything, the wide call must extend every row span.
    const struct {
        std::size_t in_active, out_active;
    } calls[] = {{4, 3}, {8, 6}, {4, 3}, {6, 5}};
    std::vector<std::uint8_t> expect_w(8 * 6, 0);
    std::vector<std::uint8_t> expect_b(6, 0);
    for (const auto& call : calls) {
        layer.backward(x, std::span<const double>(dy).first(call.out_active),
                       std::span<double>(dx).first(call.in_active), call.in_active,
                       call.out_active);
        for (std::size_t r = 0; r < call.out_active; ++r) {
            expect_b[r] = 1;
            for (std::size_t c = 0; c < call.in_active; ++c) expect_w[r * 8 + c] = 1;
        }
    }
    const auto mw = layer.weight_mask();
    const auto mb = layer.bias_mask();
    EXPECT_EQ(std::memcmp(mw.data(), expect_w.data(), expect_w.size()), 0);
    EXPECT_EQ(std::memcmp(mb.data(), expect_b.data(), expect_b.size()), 0);

    // zero_grad resets the high-water marks too: a narrow backward after it
    // must mark the narrow prefix again from scratch.
    layer.zero_grad();
    for (const auto m : layer.weight_mask()) ASSERT_EQ(m, 0);
    layer.backward(x, std::span<const double>(dy).first(2),
                   std::span<double>(dx).first(3), 3, 2);
    for (std::size_t r = 0; r < 6; ++r) {
        for (std::size_t c = 0; c < 8; ++c) {
            EXPECT_EQ(layer.weight_mask()[r * 8 + c], (r < 2 && c < 3) ? 1 : 0);
        }
    }
}

[[nodiscard]] Transition make_transition(util::Rng& rng, std::size_t state_dim,
                                         std::size_t actions, double width_state,
                                         double width_next, bool terminal) {
    Transition t;
    t.state = random_vector(state_dim, rng);
    t.next_state = random_vector(state_dim, rng);
    t.action = static_cast<int>(rng.uniform_int(0, static_cast<std::int64_t>(actions) - 1));
    t.reward = rng.uniform(-1.0, 1.0);
    t.terminal = terminal;
    t.width_state = width_state;
    t.width_next = width_next;
    return t;
}

struct DqnCase {
    bool double_dqn;
    bool slim_output;
    std::size_t batch_size;
};

class DqnMathEquivalence : public ::testing::TestWithParam<DqnCase> {};

// The full gate: scalar and batched DqnCores fed identical transition
// streams must agree bitwise on every loss, every Q-value and every
// parameter after several optimizer steps (including a target-net sync).
TEST_P(DqnMathEquivalence, TrainBatchBitIdentical) {
    const auto param = GetParam();
    MlpConfig net;
    net.dims = {7, 24, 16, 48};
    net.slim_output = param.slim_output;
    net.seed = 41;

    DqnConfig cfg;
    cfg.gamma = 0.9;
    cfg.target_sync_every = 3; // force a sync mid-test
    cfg.double_dqn = param.double_dqn;

    cfg.math = DqnMath::scalar;
    DqnCore scalar_core(net, cfg);
    cfg.math = DqnMath::batched;
    DqnCore batched_core(net, cfg);

    util::Rng rng(97);
    // Mixed widths alternating like LOTUS' even/odd steps, plus terminals
    // and a lone off-grid width to force a third bucket.
    std::vector<Transition> pool;
    for (std::size_t i = 0; i < 64; ++i) {
        const double ws = (i % 2 == 0) ? 1.0 : 0.75;
        const double wn = (i % 2 == 0) ? 0.75 : 1.0;
        pool.push_back(make_transition(rng, 7, 48, i % 7 == 3 ? 0.5 : ws, wn,
                                       i % 5 == 0));
    }

    std::size_t cursor = 0;
    for (int step = 0; step < 8; ++step) {
        std::vector<const Transition*> batch;
        for (std::size_t i = 0; i < param.batch_size; ++i) {
            batch.push_back(&pool[cursor]);
            cursor = (cursor + 1) % pool.size();
        }
        const double scalar_loss = scalar_core.train_batch(batch);
        const double batched_loss = batched_core.train_batch(batch);
        EXPECT_EQ(std::memcmp(&scalar_loss, &batched_loss, sizeof(double)), 0)
            << "step " << step << ": " << scalar_loss << " vs " << batched_loss;
    }

    for (std::size_t l = 0; l < scalar_core.online().num_layers(); ++l) {
        const auto& sl = scalar_core.online().layers()[l];
        const auto& bl = batched_core.online().layers()[l];
        expect_bitwise_eq(sl.weights().flat(), bl.weights().flat());
        expect_bitwise_eq(sl.bias(), bl.bias());
        const auto& st = scalar_core.target().layers()[l];
        const auto& bt = batched_core.target().layers()[l];
        expect_bitwise_eq(st.weights().flat(), bt.weights().flat());
    }

    const auto probe = random_vector(7, rng);
    for (const double width : {0.75, 1.0}) {
        expect_bitwise_eq(scalar_core.q_values(probe, width),
                          batched_core.q_values(probe, width));
    }
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndBatchSizes, DqnMathEquivalence,
    ::testing::Values(DqnCase{false, false, 32}, DqnCase{true, false, 32},
                      DqnCase{false, true, 32}, DqnCase{true, true, 7},
                      DqnCase{false, false, 1}, DqnCase{true, false, 5}),
    [](const ::testing::TestParamInfo<DqnCase>& info) {
        const auto& c = info.param;
        return std::string(c.double_dqn ? "double" : "vanilla") +
               (c.slim_output ? "_ragged" : "_fullout") + "_b" +
               std::to_string(c.batch_size);
    });

// force_dqn_math overrides the config at construction time only.
TEST(DqnMathOverride, ForcedModeAppliesAtConstruction) {
    MlpConfig net;
    net.dims = {4, 8, 6};
    net.seed = 1;
    DqnConfig cfg;
    cfg.math = DqnMath::batched;

    force_dqn_math(DqnMath::scalar);
    ASSERT_TRUE(forced_dqn_math().has_value());
    DqnCore forced(net, cfg);
    force_dqn_math(std::nullopt);
    ASSERT_FALSE(forced_dqn_math().has_value());

    // No direct accessor for the resolved mode; equivalence above proves both
    // behave identically, so here we only check the override is sticky per
    // core: training still works after the global reset.
    util::Rng rng(2);
    std::vector<Transition> ts{make_transition(rng, 4, 6, 1.0, 1.0, false)};
    std::vector<const Transition*> batch{&ts[0]};
    EXPECT_GE(forced.train_batch(batch), 0.0);
}

} // namespace
} // namespace lotus::rl
