// Tests for the slimmable MLP: width arithmetic (including the paper's
// "ceil(0.75 * 7) = 6 drops the proposal input" property), forward/backward
// correctness, and the masked-update semantics.

#include <gtest/gtest.h>

#include <cmath>

#include "rl/mlp.hpp"

namespace lotus::rl {
namespace {

MlpConfig small_config() {
    MlpConfig cfg;
    cfg.dims = {7, 16, 16, 16, 12};
    cfg.slim_input = true;
    cfg.slim_output = false;
    cfg.seed = 99;
    return cfg;
}

TEST(SlimmableMlp, RejectsDegenerateTopology) {
    MlpConfig cfg;
    cfg.dims = {4};
    EXPECT_THROW(SlimmableMlp{cfg}, std::invalid_argument);
    cfg.dims = {4, 0, 2};
    EXPECT_THROW(SlimmableMlp{cfg}, std::invalid_argument);
}

TEST(SlimmableMlp, ActiveUnitsPaperProperty) {
    // The design observation of Sec. 4.3.4: at width 0.75 the 7-feature input
    // layer activates exactly 6 units -- dropping the proposal count.
    SlimmableMlp net(small_config());
    EXPECT_EQ(net.active_units(0, 0.75), 6u);
    EXPECT_EQ(net.active_units(0, 1.0), 7u);
}

TEST(SlimmableMlp, HiddenLayersScaleByCeil) {
    SlimmableMlp net(small_config());
    EXPECT_EQ(net.active_units(1, 0.75), 12u); // ceil(0.75*16)
    EXPECT_EQ(net.active_units(1, 0.5), 8u);
    EXPECT_EQ(net.active_units(1, 1.0), 16u);
}

TEST(SlimmableMlp, OutputLayerAlwaysFull) {
    SlimmableMlp net(small_config());
    EXPECT_EQ(net.active_units(4, 0.75), 12u);
    EXPECT_EQ(net.active_units(4, 0.25), 12u);
}

TEST(SlimmableMlp, NonSlimInputKeepsFullWidth) {
    auto cfg = small_config();
    cfg.slim_input = false;
    SlimmableMlp net(cfg);
    EXPECT_EQ(net.active_units(0, 0.75), 7u);
}

TEST(SlimmableMlp, WidthValidation) {
    SlimmableMlp net(small_config());
    EXPECT_THROW((void)net.active_units(0, 0.0), std::invalid_argument);
    EXPECT_THROW((void)net.active_units(0, 1.5), std::invalid_argument);
    EXPECT_THROW((void)net.active_units(9, 1.0), std::out_of_range);
}

TEST(SlimmableMlp, ForwardOutputDimIsFull) {
    SlimmableMlp net(small_config());
    const std::vector<double> x(7, 0.5);
    EXPECT_EQ(net.forward(x, 1.0).size(), 12u);
    EXPECT_EQ(net.forward(x, 0.75).size(), 12u);
}

TEST(SlimmableMlp, ReducedWidthIgnoresLastInput) {
    SlimmableMlp net(small_config());
    std::vector<double> x(7, 0.5);
    const auto q1 = net.forward(x, 0.75);
    x[6] = 1e6; // poison the proposal feature
    const auto q2 = net.forward(x, 0.75);
    for (std::size_t i = 0; i < q1.size(); ++i) {
        ASSERT_DOUBLE_EQ(q1[i], q2[i]) << "reduced width read the dropped feature";
    }
    // The full width MUST see it.
    const auto q3 = net.forward(x, 1.0);
    x[6] = 0.5;
    const auto q4 = net.forward(x, 1.0);
    bool any_diff = false;
    for (std::size_t i = 0; i < q3.size(); ++i) {
        if (q3[i] != q4[i]) any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(SlimmableMlp, WidthsShareLeadingParameters) {
    // Zeroing a leading weight changes BOTH widths' outputs: the two widths
    // are one network, not two (Sec. 4.3.4 "share major parameters").
    SlimmableMlp net(small_config());
    const std::vector<double> x(7, 0.3);
    const auto a_full = net.forward(x, 1.0);
    const auto a_red = net.forward(x, 0.75);
    net.layers()[0].weights()(0, 0) += 5.0;
    const auto b_full = net.forward(x, 1.0);
    const auto b_red = net.forward(x, 0.75);
    EXPECT_NE(a_full[0], b_full[0]);
    EXPECT_NE(a_red[0], b_red[0]);
}

TEST(SlimmableMlp, InputTooShortThrows) {
    SlimmableMlp net(small_config());
    const std::vector<double> x(5, 0.0); // needs 6 at width 0.75
    EXPECT_THROW((void)net.forward(x, 0.75), std::invalid_argument);
}

TEST(SlimmableMlp, DeterministicForSeed) {
    SlimmableMlp a(small_config());
    SlimmableMlp b(small_config());
    const std::vector<double> x(7, 0.1);
    EXPECT_EQ(a.forward(x, 1.0), b.forward(x, 1.0));
}

TEST(SlimmableMlp, CopyParametersMakesNetsAgree) {
    auto cfg = small_config();
    SlimmableMlp a(cfg);
    cfg.seed = 12345;
    SlimmableMlp b(cfg);
    const std::vector<double> x(7, 0.2);
    EXPECT_NE(a.forward(x, 1.0), b.forward(x, 1.0));
    b.copy_parameters_from(a);
    EXPECT_EQ(a.forward(x, 1.0), b.forward(x, 1.0));
}

TEST(SlimmableMlp, ParameterCount) {
    MlpConfig cfg;
    cfg.dims = {3, 5, 2};
    SlimmableMlp net(cfg);
    // (3*5 + 5) + (5*2 + 2) = 20 + 12
    EXPECT_EQ(net.parameter_count(), 32u);
}

/// End-to-end finite-difference gradient check through the whole MLP.
void gradcheck_mlp(double width, std::uint64_t seed) {
    MlpConfig cfg;
    cfg.dims = {7, 9, 8, 6};
    cfg.seed = seed;
    SlimmableMlp net(cfg);

    std::vector<double> x(7);
    util::Rng rng(seed + 1);
    for (auto& v : x) v = rng.uniform(-1, 1);

    // Loss: Q[2] (single-action TD-style gradient).
    std::vector<double> dout(net.output_dim(), 0.0);
    dout[2] = 1.0;

    ForwardCache cache;
    net.forward_cached(x, width, cache);
    net.zero_grad();
    net.backward(cache, dout);

    auto loss = [&] { return net.forward(x, width)[2]; };
    const double eps = 1e-6;
    // Spot-check every layer's first weights and a scattering of others.
    for (std::size_t li = 0; li < net.num_layers(); ++li) {
        auto& layer = net.layers()[li];
        const std::size_t rmax = std::min<std::size_t>(3, layer.out_features());
        const std::size_t cmax = std::min<std::size_t>(3, layer.in_features());
        for (std::size_t r = 0; r < rmax; ++r) {
            for (std::size_t c = 0; c < cmax; ++c) {
                double& w = layer.weights()(r, c);
                const double orig = w;
                w = orig + eps;
                const double lp = loss();
                w = orig - eps;
                const double lm = loss();
                w = orig;
                const double numeric = (lp - lm) / (2 * eps);
                ASSERT_NEAR(layer.grad_weights()(r, c), numeric, 1e-4)
                    << "layer " << li << " w(" << r << "," << c << ") width " << width;
            }
        }
    }
}

TEST(SlimmableMlp, GradCheckFullWidth) {
    gradcheck_mlp(1.0, 7);
}

TEST(SlimmableMlp, GradCheckReducedWidth) {
    gradcheck_mlp(0.75, 8);
}

TEST(SlimmableMlp, GradCheckHalfWidth) {
    gradcheck_mlp(0.5, 9);
}

TEST(SlimmableMlp, ReducedBackwardLeavesTailGradientsZero) {
    SlimmableMlp net(small_config());
    const std::vector<double> x(7, 0.4);
    std::vector<double> dout(net.output_dim(), 1.0);
    ForwardCache cache;
    net.forward_cached(x, 0.75, cache);
    net.zero_grad();
    net.backward(cache, dout);

    // Hidden layer 1 (16 units, 12 active at 0.75): rows >= 12 of layer 1's
    // weight grad must be exactly zero and unmasked.
    auto& l1 = net.layers()[1];
    for (std::size_t r = 12; r < 16; ++r) {
        for (std::size_t c = 0; c < l1.in_features(); ++c) {
            ASSERT_EQ(l1.grad_weights()(r, c), 0.0);
            ASSERT_EQ(l1.weight_mask()[r * l1.in_features() + c], 0);
        }
    }
}

// Parameterized width sweep: forward must be finite and stable across widths.
class MlpWidthSweep : public ::testing::TestWithParam<double> {};

TEST_P(MlpWidthSweep, ForwardFiniteAtAllWidths) {
    SlimmableMlp net(small_config());
    const std::vector<double> x(7, 0.9);
    const auto q = net.forward(x, GetParam());
    ASSERT_EQ(q.size(), 12u);
    for (const double v : q) ASSERT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(Widths, MlpWidthSweep,
                         ::testing::Values(0.25, 0.5, 0.625, 0.75, 0.875, 1.0));

} // namespace
} // namespace lotus::rl
