// Tests for the replay buffer, exploration schedules and the DQN core --
// including convergence on a toy MDP and the cross-width bootstrap used by
// LOTUS's dual-buffer training.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>

#include "rl/dqn.hpp"
#include "rl/replay.hpp"
#include "rl/schedule.hpp"

namespace lotus::rl {
namespace {

Transition make_transition(double tag, int action = 0) {
    Transition t;
    t.state = {tag, 0.0};
    t.action = action;
    t.reward = tag;
    t.next_state = {tag + 1.0, 0.0};
    return t;
}

TEST(ReplayBuffer, RejectsZeroCapacity) {
    EXPECT_THROW(ReplayBuffer(0), std::invalid_argument);
}

TEST(ReplayBuffer, FillsThenWraps) {
    ReplayBuffer buf(3);
    for (int i = 0; i < 5; ++i) buf.push(make_transition(i));
    EXPECT_EQ(buf.size(), 3u);
    EXPECT_EQ(buf.total_pushed(), 5u);
    // Oldest two (0,1) were overwritten by 3,4; surviving tags: {3, 4, 2}.
    std::vector<double> tags;
    for (std::size_t i = 0; i < buf.size(); ++i) tags.push_back(buf[i].reward);
    std::sort(tags.begin(), tags.end());
    EXPECT_EQ(tags, (std::vector<double>{2, 3, 4}));
}

TEST(ReplayBuffer, SampleSizeClamped) {
    ReplayBuffer buf(10);
    buf.push(make_transition(1));
    buf.push(make_transition(2));
    util::Rng rng(1);
    EXPECT_EQ(buf.sample(rng, 5).size(), 2u);
    EXPECT_TRUE(buf.sample(rng, 0).empty());
}

TEST(ReplayBuffer, SampleFromEmpty) {
    ReplayBuffer buf(4);
    util::Rng rng(2);
    EXPECT_TRUE(buf.sample(rng, 3).empty());
}

TEST(ReplayBuffer, SampleWithoutReplacement) {
    ReplayBuffer buf(20);
    for (int i = 0; i < 20; ++i) buf.push(make_transition(i));
    util::Rng rng(3);
    for (int trial = 0; trial < 50; ++trial) {
        const auto batch = buf.sample(rng, 10);
        std::vector<const Transition*> unique(batch);
        std::sort(unique.begin(), unique.end());
        ASSERT_EQ(std::unique(unique.begin(), unique.end()), unique.end());
    }
}

TEST(ReplayBuffer, ClearEmpties) {
    ReplayBuffer buf(4);
    buf.push(make_transition(1));
    buf.clear();
    EXPECT_TRUE(buf.empty());
}

TEST(LinearDecay, InterpolatesAndClamps) {
    LinearDecay d(1.0, 0.1, 100);
    EXPECT_DOUBLE_EQ(d.at(0), 1.0);
    EXPECT_NEAR(d.at(50), 0.55, 1e-12);
    EXPECT_DOUBLE_EQ(d.at(100), 0.1);
    EXPECT_DOUBLE_EQ(d.at(500), 0.1);
}

TEST(ExponentialDecay, DecaysTowardFloor) {
    ExponentialDecay d(1.0, 0.05, 0.99);
    EXPECT_DOUBLE_EQ(d.at(0), 1.0);
    EXPECT_GT(d.at(100), 0.05);
    EXPECT_NEAR(d.at(100000), 0.05, 1e-9);
    for (int t = 1; t < 200; ++t) ASSERT_LT(d.at(t), d.at(t - 1));
}

TEST(ScheduleValidation, BadArgsThrow) {
    EXPECT_THROW(LinearDecay(0.1, 0.5, 10), std::invalid_argument);
    EXPECT_THROW(LinearDecay(1.0, 0.1, 0), std::invalid_argument);
    EXPECT_THROW(ExponentialDecay(0.1, 0.5, 0.9), std::invalid_argument);
    EXPECT_THROW(ExponentialDecay(1.0, 0.1, 1.5), std::invalid_argument);
}

TEST(SinusoidalTriggerDecay, StartsAtEps0) {
    SinusoidalTriggerDecay d(0.8, 0.1, 100);
    EXPECT_DOUBLE_EQ(d.value(), 0.8);
}

TEST(SinusoidalTriggerDecay, DecaysPerTriggerNotPerStep) {
    SinusoidalTriggerDecay d(1.0, 0.0, 10);
    const double v0 = d.value();
    // value() alone must not decay.
    EXPECT_DOUBLE_EQ(d.value(), v0);
    d.trigger();
    EXPECT_LT(d.value(), v0);
}

TEST(SinusoidalTriggerDecay, FollowsCosineShape) {
    SinusoidalTriggerDecay d(1.0, 0.0, 4);
    const double expected[] = {1.0, std::cos(std::numbers::pi / 8),
                               std::cos(std::numbers::pi / 4),
                               std::cos(3 * std::numbers::pi / 8), 0.0};
    for (int k = 0; k <= 4; ++k) {
        ASSERT_NEAR(d.value(), expected[k], 1e-12) << "trigger " << k;
        d.trigger();
    }
    // Saturates at the floor.
    d.trigger();
    EXPECT_NEAR(d.value(), 0.0, 1e-12);
}

TEST(SinusoidalTriggerDecay, RespectsFloor) {
    SinusoidalTriggerDecay d(0.9, 0.2, 5);
    for (int i = 0; i < 20; ++i) d.trigger();
    EXPECT_NEAR(d.value(), 0.2, 1e-12);
}

TEST(SinusoidalTriggerDecay, ResetRestoresEps0) {
    SinusoidalTriggerDecay d(0.7, 0.1, 5);
    d.trigger();
    d.trigger();
    d.reset();
    EXPECT_DOUBLE_EQ(d.value(), 0.7);
}

TEST(SinusoidalTriggerDecay, Validation) {
    EXPECT_THROW(SinusoidalTriggerDecay(1.5, 0.0, 10), std::invalid_argument);
    EXPECT_THROW(SinusoidalTriggerDecay(0.5, 0.6, 10), std::invalid_argument);
    EXPECT_THROW(SinusoidalTriggerDecay(0.5, 0.1, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// DQN core.
// ---------------------------------------------------------------------------

MlpConfig toy_net(std::size_t inputs, std::size_t actions, std::uint64_t seed) {
    MlpConfig cfg;
    cfg.dims = {inputs, 24, 24, actions};
    cfg.slim_input = false;
    cfg.seed = seed;
    return cfg;
}

TEST(DqnCore, GreedyActionIsArgmax) {
    DqnCore dqn(toy_net(2, 3, 1), {});
    const std::vector<double> s{0.5, -0.5};
    const auto q = dqn.q_values(s, 1.0);
    const auto best = static_cast<int>(
        std::distance(q.begin(), std::max_element(q.begin(), q.end())));
    EXPECT_EQ(dqn.greedy_action(s, 1.0), best);
}

TEST(DqnCore, EpsilonOneIsUniformRandom) {
    DqnCore dqn(toy_net(2, 4, 2), {});
    util::Rng rng(3);
    const std::vector<double> s{0.1, 0.2};
    int counts[4] = {0};
    for (int i = 0; i < 4000; ++i) counts[dqn.act(s, 1.0, 1.0, rng)]++;
    for (const int c : counts) EXPECT_NEAR(c / 4000.0, 0.25, 0.04);
}

TEST(DqnCore, EpsilonZeroIsGreedy) {
    DqnCore dqn(toy_net(2, 4, 4), {});
    util::Rng rng(5);
    const std::vector<double> s{0.3, 0.4};
    const int g = dqn.greedy_action(s, 1.0);
    for (int i = 0; i < 100; ++i) ASSERT_EQ(dqn.act(s, 1.0, 0.0, rng), g);
}

TEST(DqnCore, TrainStepRequiresMinBuffer) {
    DqnCore dqn(toy_net(2, 2, 6), {});
    ReplayBuffer buf(100);
    util::Rng rng(7);
    buf.push(make_transition(0));
    EXPECT_LT(dqn.train_step(buf, rng, 10), 0.0); // not enough data
    EXPECT_GE(dqn.train_step(buf, rng, 1), 0.0);  // trains with 1
}

/// Two-state bandit: action 0 yields +1, action 1 yields 0 (terminal
/// transitions). The Q-network must learn Q(s,0) > Q(s,1).
TEST(DqnCore, LearnsBanditPreference) {
    DqnConfig cfg;
    cfg.gamma = 0.0;
    cfg.batch_size = 16;
    cfg.target_sync_every = 10;
    cfg.adam.lr = 0.01;
    DqnCore dqn(toy_net(2, 2, 8), cfg);

    ReplayBuffer buf(256);
    const std::vector<double> s{1.0, 0.0};
    for (int i = 0; i < 128; ++i) {
        Transition t;
        t.state = s;
        t.action = i % 2;
        t.reward = (i % 2 == 0) ? 1.0 : 0.0;
        t.next_state = s;
        t.terminal = true;
        buf.push(std::move(t));
    }
    util::Rng rng(9);
    for (int i = 0; i < 300; ++i) dqn.train_step(buf, rng, 1);

    const auto q = dqn.q_values(s, 1.0);
    EXPECT_GT(q[0], q[1]);
    EXPECT_NEAR(q[0], 1.0, 0.15);
    EXPECT_NEAR(q[1], 0.0, 0.15);
}

/// 1-D chain MDP: states 0..4, action 1 moves right (+1 reward at the end),
/// action 0 stays (0 reward). With gamma < 1 the optimal policy is to move
/// right everywhere; a DQN trained on exhaustive transitions should find it.
TEST(DqnCore, LearnsChainPolicy) {
    constexpr int kStates = 5;
    DqnConfig cfg;
    cfg.gamma = 0.9;
    cfg.batch_size = 32;
    cfg.target_sync_every = 25;
    cfg.adam.lr = 0.005;
    DqnCore dqn(toy_net(1, 2, 10), cfg);

    const auto encode = [](int state) {
        return std::vector<double>{static_cast<double>(state) / (kStates - 1)};
    };
    ReplayBuffer buf(1024);
    util::Rng gen(11);
    for (int i = 0; i < 600; ++i) {
        const int s = static_cast<int>(gen.uniform_int(0, kStates - 1));
        const int a = static_cast<int>(gen.uniform_int(0, 1));
        int s2 = s;
        double r = 0.0;
        bool terminal = false;
        if (a == 1) {
            s2 = s + 1;
            if (s2 == kStates - 1) {
                r = 1.0;
                terminal = true;
            }
        }
        Transition t;
        t.state = encode(s);
        t.action = a;
        t.reward = r;
        t.next_state = encode(s2);
        t.terminal = terminal;
        buf.push(std::move(t));
    }

    util::Rng rng(13);
    for (int i = 0; i < 1500; ++i) dqn.train_step(buf, rng, 1);

    for (int s = 0; s < kStates - 1; ++s) {
        EXPECT_EQ(dqn.greedy_action(encode(s), 1.0), 1) << "state " << s;
    }
    // Value should decay with distance from the goal.
    const auto q3 = dqn.q_values(encode(3), 1.0);
    const auto q0 = dqn.q_values(encode(0), 1.0);
    EXPECT_GT(q3[1], q0[1]);
}

TEST(DqnCore, TargetNetworkLagsOnline) {
    DqnConfig cfg;
    cfg.target_sync_every = 1000000; // effectively never
    DqnCore dqn(toy_net(2, 2, 14), cfg);
    ReplayBuffer buf(64);
    for (int i = 0; i < 64; ++i) buf.push(make_transition(i % 4, i % 2));
    util::Rng rng(15);
    const std::vector<double> s{1.0, 0.0};
    const auto before = dqn.target().forward(s, 1.0);
    for (int i = 0; i < 20; ++i) dqn.train_step(buf, rng, 1);
    const auto target_after = dqn.target().forward(s, 1.0);
    EXPECT_EQ(before, target_after) << "target moved without sync";
    const auto online_after = dqn.online().forward(s, 1.0);
    EXPECT_NE(before, online_after) << "online never moved";
    dqn.sync_target();
    EXPECT_EQ(dqn.target().forward(s, 1.0), online_after);
}

TEST(DqnCore, CrossWidthTransitionsTrain) {
    // LOTUS even transitions: evaluate at 0.75x, bootstrap at 1.0x. The
    // slimmable net must accept both in one batch without touching
    // inactive-slice weights.
    MlpConfig net = toy_net(7, 4, 16);
    net.slim_input = true;
    DqnConfig cfg;
    cfg.batch_size = 8;
    DqnCore dqn(std::move(net), cfg);

    ReplayBuffer buf(64);
    for (int i = 0; i < 32; ++i) {
        Transition t;
        t.state = std::vector<double>(7, 0.1 * (i % 5));
        t.action = i % 4;
        t.reward = 0.5;
        t.next_state = std::vector<double>(7, 0.05 * (i % 7));
        t.width_state = 0.75;
        t.width_next = 1.0;
        buf.push(std::move(t));
    }
    util::Rng rng(17);
    const double loss = dqn.train_step(buf, rng, 1);
    EXPECT_GE(loss, 0.0);

    // The proposal-input column (index 6) of layer 0 must be untouched by
    // pure width-0.75 training.
    const auto& l0 = dqn.online().layers()[0];
    // We can't know init values here without recomputing; instead verify via
    // the optimizer-mask invariant: re-run backward manually and check mask.
    // (The Adam masked-update invariant itself is covered in
    // test_optimizer.cpp; here we assert training ran and the net is finite.)
    for (const double w : l0.weights().flat()) ASSERT_TRUE(std::isfinite(w));
}

TEST(DqnCore, ActionOutOfRangeThrows) {
    DqnCore dqn(toy_net(2, 2, 18), {});
    Transition t = make_transition(0, 5); // action 5 of 2
    const Transition* batch[] = {&t};
    EXPECT_THROW((void)dqn.train_batch(batch), std::out_of_range);
}

} // namespace
} // namespace lotus::rl
