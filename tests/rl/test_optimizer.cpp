// Tests for Adam + cosine LR: convergence, masked ("slimmable") updates, and
// gradient clipping.

#include <gtest/gtest.h>

#include <cmath>

#include "rl/mlp.hpp"
#include "rl/optimizer.hpp"

namespace lotus::rl {
namespace {

TEST(CosineLrSchedule, EndpointsAndMonotonicity) {
    CosineLrSchedule lr(0.01, 1e-4, 1000);
    EXPECT_NEAR(lr.at(0), 0.01, 1e-12);
    EXPECT_NEAR(lr.at(1000), 1e-4, 1e-12);
    EXPECT_NEAR(lr.at(500), 1e-4 + 0.5 * (0.01 - 1e-4), 1e-9);
    for (std::size_t t = 1; t <= 1000; ++t) {
        ASSERT_LE(lr.at(t), lr.at(t - 1)) << "not monotone at " << t;
    }
}

TEST(CosineLrSchedule, ClampsPastHorizon) {
    CosineLrSchedule lr(0.01, 1e-4, 100);
    EXPECT_NEAR(lr.at(5000), 1e-4, 1e-12);
}

TEST(CosineLrSchedule, Validation) {
    EXPECT_THROW(CosineLrSchedule(0.0, 0.0, 10), std::invalid_argument);
    EXPECT_THROW(CosineLrSchedule(0.01, 0.02, 10), std::invalid_argument);
    EXPECT_THROW(CosineLrSchedule(0.01, 1e-4, 0), std::invalid_argument);
}

/// Train a tiny MLP to regress a fixed target from a fixed input; Adam
/// should drive the loss close to zero.
TEST(Adam, ConvergesOnRegression) {
    MlpConfig cfg;
    cfg.dims = {2, 16, 1};
    cfg.slim_input = false;
    cfg.seed = 5;
    SlimmableMlp net(cfg);
    AdamConfig acfg;
    acfg.lr = 0.01;
    acfg.lr_min = 0.001;
    acfg.lr_total_steps = 2000;
    Adam adam(net, acfg);

    const std::vector<double> x{0.5, -0.25};
    const double target = 3.0;
    double loss = 0.0;
    for (int step = 0; step < 500; ++step) {
        ForwardCache cache;
        net.forward_cached(x, 1.0, cache);
        const double err = cache.output[0] - target;
        loss = 0.5 * err * err;
        std::vector<double> dout{err};
        net.zero_grad();
        net.backward(cache, dout);
        adam.step(net);
    }
    EXPECT_LT(loss, 1e-4);
    EXPECT_EQ(adam.steps_taken(), 500u);
}

TEST(Adam, MaskedParametersExactlyUntouched) {
    // The paper: "the sampled transitions are used to update the Q-network
    // with alpha-x width, while the remaining weights are not updated."
    MlpConfig cfg;
    cfg.dims = {7, 8, 4};
    cfg.seed = 6;
    SlimmableMlp net(cfg);
    Adam adam(net, {});

    // Snapshot the tail (inactive at width 0.75) weights of layer 0:
    // rows >= ceil(0.75*8)=6 and cols >= ceil(0.75*7)=6.
    auto& l0 = net.layers()[0];
    std::vector<double> before;
    for (std::size_t r = 0; r < 8; ++r) {
        for (std::size_t c = 0; c < 7; ++c) {
            if (r >= 6 || c >= 6) before.push_back(l0.weights()(r, c));
        }
    }

    const std::vector<double> x(7, 0.5);
    for (int i = 0; i < 25; ++i) {
        ForwardCache cache;
        net.forward_cached(x, 0.75, cache);
        std::vector<double> dout(net.output_dim(), 0.1);
        net.backward(cache, dout);
        adam.step(net);
    }

    std::size_t k = 0;
    for (std::size_t r = 0; r < 8; ++r) {
        for (std::size_t c = 0; c < 7; ++c) {
            if (r >= 6 || c >= 6) {
                ASSERT_EQ(l0.weights()(r, c), before[k++])
                    << "inactive weight moved at (" << r << "," << c << ")";
            }
        }
    }
}

TEST(Adam, ActiveParametersDoMove) {
    MlpConfig cfg;
    cfg.dims = {7, 8, 4};
    cfg.seed = 7;
    SlimmableMlp net(cfg);
    Adam adam(net, {});
    auto& l0 = net.layers()[0];
    std::vector<double> before(l0.weights().flat().begin(), l0.weights().flat().end());

    const std::vector<double> x(7, 0.5);
    ForwardCache cache;
    net.forward_cached(x, 0.75, cache);
    std::vector<double> dout(net.output_dim(), 0.5);
    net.backward(cache, dout);
    adam.step(net);

    // At least one active-slice weight must have moved (individual entries
    // can have zero gradient through dead ReLUs).
    std::size_t moved = 0;
    const auto after = l0.weights().flat();
    for (std::size_t i = 0; i < after.size(); ++i) {
        if (after[i] != before[i]) ++moved;
    }
    EXPECT_GT(moved, 0u);
}

TEST(Adam, StepClearsGradientsAndMasks) {
    MlpConfig cfg;
    cfg.dims = {3, 4, 2};
    cfg.slim_input = false;
    SlimmableMlp net(cfg);
    Adam adam(net, {});
    const std::vector<double> x(3, 1.0);
    ForwardCache cache;
    net.forward_cached(x, 1.0, cache);
    std::vector<double> dout(2, 1.0);
    net.backward(cache, dout);
    adam.step(net);
    for (const auto& layer : net.layers()) {
        for (const auto m : layer.weight_mask()) ASSERT_EQ(m, 0);
    }
}

TEST(Adam, GradClipBoundsStepSize) {
    MlpConfig cfg;
    cfg.dims = {2, 2};
    cfg.slim_input = false;
    cfg.seed = 8;
    SlimmableMlp clipped_net(cfg);
    SlimmableMlp free_net(cfg);
    free_net.copy_parameters_from(clipped_net);

    AdamConfig clip_cfg;
    clip_cfg.grad_clip = 0.001; // tiny clip
    AdamConfig free_cfg;
    free_cfg.grad_clip = 0.0; // disabled
    Adam clipped(clipped_net, clip_cfg);
    Adam free(free_net, free_cfg);

    const std::vector<double> x{100.0, -100.0}; // produces huge grads
    auto run = [&](SlimmableMlp& net, Adam& opt) {
        ForwardCache cache;
        net.forward_cached(x, 1.0, cache);
        std::vector<double> dout{1e6, -1e6};
        net.zero_grad();
        net.backward(cache, dout);
        opt.step(net);
    };
    run(clipped_net, clipped);
    run(free_net, free);

    // Both nets update, but neither should produce NaNs; the clipped one is
    // the well-behaved configuration used by the agents.
    for (const double w : clipped_net.layers()[0].weights().flat()) {
        ASSERT_TRUE(std::isfinite(w));
    }
    for (const double w : free_net.layers()[0].weights().flat()) {
        ASSERT_TRUE(std::isfinite(w));
    }
}

TEST(Adam, LrFollowsCosineSchedule) {
    MlpConfig cfg;
    cfg.dims = {2, 2};
    cfg.slim_input = false;
    SlimmableMlp net(cfg);
    AdamConfig acfg;
    acfg.lr = 0.01;
    acfg.lr_min = 1e-4;
    acfg.lr_total_steps = 10;
    Adam adam(net, acfg);

    const std::vector<double> x{1.0, 1.0};
    double last_lr = 1.0;
    for (int i = 0; i < 10; ++i) {
        ForwardCache cache;
        net.forward_cached(x, 1.0, cache);
        std::vector<double> dout{0.1, 0.1};
        net.backward(cache, dout);
        const double lr = adam.step(net);
        ASSERT_LT(lr, last_lr);
        last_lr = lr;
    }
    EXPECT_NEAR(last_lr, 1e-4, 1e-9);
}

} // namespace
} // namespace lotus::rl
