// Tests for the matrix kernels and slimmable layers, including
// finite-difference gradient checks at multiple widths.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rl/layers.hpp"
#include "rl/matrix.hpp"
#include "util/rng.hpp"

namespace lotus::rl {
namespace {

TEST(Matrix, ConstructionAndAccess) {
    Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m.size(), 6u);
    EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
    m.at(0, 1) = 7.0;
    EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(Matrix, ZeroDimensionThrows) {
    EXPECT_THROW(Matrix(0, 3), std::invalid_argument);
    EXPECT_THROW(Matrix(3, 0), std::invalid_argument);
}

TEST(Matrix, AtBoundsChecked) {
    Matrix m(2, 2);
    EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
    EXPECT_THROW((void)m.at(0, 2), std::out_of_range);
}

TEST(Matrix, SliceMatvecFullSize) {
    Matrix a(2, 3);
    // a = [[1,2,3],[4,5,6]]
    double v = 1;
    for (std::size_t r = 0; r < 2; ++r) {
        for (std::size_t c = 0; c < 3; ++c) a(r, c) = v++;
    }
    const std::vector<double> x{1, 0, -1};
    const std::vector<double> b{10, 20};
    std::vector<double> y(2);
    Matrix::slice_matvec(a, x, b, y, 2, 3);
    EXPECT_DOUBLE_EQ(y[0], 10 + 1 - 3);
    EXPECT_DOUBLE_EQ(y[1], 20 + 4 - 6);
}

TEST(Matrix, SliceMatvecPartial) {
    Matrix a(3, 3, 1.0);
    const std::vector<double> x{1, 1, 1};
    const std::vector<double> b{0, 0, 0};
    std::vector<double> y(3, -99);
    Matrix::slice_matvec(a, x, b, y, 2, 2); // only 2x2 corner
    EXPECT_DOUBLE_EQ(y[0], 2.0);
    EXPECT_DOUBLE_EQ(y[1], 2.0);
    EXPECT_DOUBLE_EQ(y[2], -99.0); // untouched
}

TEST(Matrix, TransposedMatvecMatchesManual) {
    Matrix a(2, 3);
    double v = 1;
    for (std::size_t r = 0; r < 2; ++r) {
        for (std::size_t c = 0; c < 3; ++c) a(r, c) = v++;
    }
    const std::vector<double> dy{2, -1};
    std::vector<double> dx(3);
    Matrix::slice_matvec_transposed(a, dy, dx, 2, 3);
    // dx = A^T dy
    EXPECT_DOUBLE_EQ(dx[0], 2 * 1 - 1 * 4);
    EXPECT_DOUBLE_EQ(dx[1], 2 * 2 - 1 * 5);
    EXPECT_DOUBLE_EQ(dx[2], 2 * 3 - 1 * 6);
}

TEST(Matrix, OuterAccumulate) {
    Matrix g(2, 2, 0.0);
    const std::vector<double> dy{1, 2};
    const std::vector<double> x{3, 4};
    Matrix::slice_outer_accumulate(g, dy, x, 2, 2);
    Matrix::slice_outer_accumulate(g, dy, x, 2, 2); // accumulate twice
    EXPECT_DOUBLE_EQ(g(0, 0), 2 * 1 * 3);
    EXPECT_DOUBLE_EQ(g(1, 1), 2 * 2 * 4);
}

TEST(ReluOps, ForwardClampsNegativePrefixOnly) {
    std::vector<double> x{-1, 2, -3, 4};
    relu_inplace(x, 2);
    EXPECT_DOUBLE_EQ(x[0], 0.0);
    EXPECT_DOUBLE_EQ(x[1], 2.0);
    EXPECT_DOUBLE_EQ(x[2], -3.0); // outside active prefix
}

TEST(ReluOps, BackwardMasksByPreActivation) {
    const std::vector<double> pre{-0.5, 0.5, 0.0};
    std::vector<double> dy{1, 1, 1};
    relu_backward(pre, dy, 3);
    EXPECT_DOUBLE_EQ(dy[0], 0.0);
    EXPECT_DOUBLE_EQ(dy[1], 1.0);
    EXPECT_DOUBLE_EQ(dy[2], 0.0); // relu'(0) = 0 by convention here
}

TEST(SlimmableLinear, ForwardMatchesManual) {
    util::Rng rng(1);
    SlimmableLinear layer(3, 2, rng);
    layer.weights()(0, 0) = 1;
    layer.weights()(0, 1) = 2;
    layer.weights()(0, 2) = 3;
    layer.weights()(1, 0) = -1;
    layer.weights()(1, 1) = 0;
    layer.weights()(1, 2) = 1;
    layer.bias()[0] = 0.5;
    layer.bias()[1] = -0.5;

    const std::vector<double> x{1, 1, 1};
    std::vector<double> y(2);
    layer.forward(x, y, 3, 2);
    EXPECT_DOUBLE_EQ(y[0], 6.5);
    EXPECT_DOUBLE_EQ(y[1], -0.5);
}

TEST(SlimmableLinear, ReducedSliceIgnoresTail) {
    util::Rng rng(2);
    SlimmableLinear layer(4, 4, rng);
    const std::vector<double> x{1, 1, 1, 1};
    std::vector<double> y_full(4);
    layer.forward(x, y_full, 4, 4);

    // Poison the tail weights; a 3/3 slice must not see them.
    layer.weights()(0, 3) = 1e9;
    layer.weights()(3, 0) = 1e9;
    std::vector<double> y_slice(3);
    layer.forward(x, y_slice, 3, 3);
    for (int r = 0; r < 3; ++r) {
        ASSERT_LT(std::abs(y_slice[static_cast<std::size_t>(r)]), 1e6)
            << "tail weight leaked into slice";
    }
}

TEST(SlimmableLinear, BackwardMarksOnlyActiveMask) {
    util::Rng rng(3);
    SlimmableLinear layer(4, 4, rng);
    const std::vector<double> x{1, 2, 3, 4};
    const std::vector<double> dy{1, 1, 1};
    std::vector<double> dx(3);
    layer.backward(x, dy, dx, 3, 3);

    const auto mask = layer.weight_mask();
    for (std::size_t r = 0; r < 4; ++r) {
        for (std::size_t c = 0; c < 4; ++c) {
            const bool expected = r < 3 && c < 3;
            ASSERT_EQ(mask[r * 4 + c] != 0, expected) << "r=" << r << " c=" << c;
        }
    }
    const auto bmask = layer.bias_mask();
    EXPECT_TRUE(bmask[0] && bmask[1] && bmask[2]);
    EXPECT_FALSE(bmask[3]);
}

TEST(SlimmableLinear, ZeroGradClears) {
    util::Rng rng(4);
    SlimmableLinear layer(2, 2, rng);
    const std::vector<double> x{1, 1};
    const std::vector<double> dy{1, 1};
    std::vector<double> dx(2);
    layer.backward(x, dy, dx, 2, 2);
    layer.zero_grad();
    for (const double g : layer.grad_weights().flat()) EXPECT_EQ(g, 0.0);
    for (const auto m : layer.weight_mask()) EXPECT_EQ(m, 0);
}

/// Finite-difference gradient check of a single layer at a given slice.
void gradient_check_layer(std::size_t in, std::size_t out, std::size_t in_active,
                          std::size_t out_active, std::uint64_t seed) {
    util::Rng rng(seed);
    SlimmableLinear layer(in, out, rng);
    std::vector<double> x(in_active);
    for (auto& v : x) v = rng.uniform(-1, 1);

    // Loss = sum(y). dL/dy = 1.
    const std::vector<double> dy(out_active, 1.0);
    std::vector<double> dx(in_active);
    layer.zero_grad();
    layer.backward(x, dy, dx, in_active, out_active);

    const double eps = 1e-6;
    auto loss = [&] {
        std::vector<double> y(out_active);
        layer.forward(x, y, in_active, out_active);
        double s = 0;
        for (const double v : y) s += v;
        return s;
    };
    // Check a handful of weight gradients numerically.
    for (std::size_t r = 0; r < out_active; ++r) {
        for (std::size_t c = 0; c < in_active; ++c) {
            double& w = layer.weights()(r, c);
            const double orig = w;
            w = orig + eps;
            const double lp = loss();
            w = orig - eps;
            const double lm = loss();
            w = orig;
            const double numeric = (lp - lm) / (2 * eps);
            ASSERT_NEAR(layer.grad_weights()(r, c), numeric, 1e-5)
                << "weight (" << r << "," << c << ")";
        }
    }
}

TEST(SlimmableLinear, GradCheckFullWidth) {
    gradient_check_layer(5, 4, 5, 4, 10);
}

TEST(SlimmableLinear, GradCheckReducedWidth) {
    gradient_check_layer(5, 4, 4, 3, 11);
}

TEST(SlimmableLinear, GradCheckInputGradient) {
    util::Rng rng(12);
    SlimmableLinear layer(4, 3, rng);
    std::vector<double> x{0.3, -0.2, 0.8, 0.1};
    const std::vector<double> dy{1.0, 1.0, 1.0};
    std::vector<double> dx(4);
    layer.backward(x, dy, dx, 4, 3);

    const double eps = 1e-6;
    for (std::size_t i = 0; i < 4; ++i) {
        auto loss = [&] {
            std::vector<double> y(3);
            layer.forward(x, y, 4, 3);
            return y[0] + y[1] + y[2];
        };
        const double orig = x[i];
        x[i] = orig + eps;
        const double lp = loss();
        x[i] = orig - eps;
        const double lm = loss();
        x[i] = orig;
        ASSERT_NEAR(dx[i], (lp - lm) / (2 * eps), 1e-5) << "input " << i;
    }
}

} // namespace
} // namespace lotus::rl
