// FleetEngine tests: request accounting across the pool, byte-identical
// determinism (repeat runs and --jobs invariance through the harness),
// per-device governor-seed namespacing, thermal_aware routing flipping away
// from an induced hot device, throttle migration, failure holdout, and the
// fleet shapes of the JSON / CSV sinks.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "fleet/engine.hpp"
#include "fleet/router.hpp"
#include "governors/linux_governors.hpp"
#include "serving/engine.hpp"
#include "harness/harness.hpp"
#include "harness/sinks.hpp"
#include "platform/presets.hpp"

namespace lotus::fleet {
namespace {

namespace fs = std::filesystem;

FleetEngine::GovernorFactory fixed_factory(std::size_t cpu, std::size_t gpu) {
    return [cpu, gpu](const platform::DeviceSpec&,
                      std::uint64_t) -> std::unique_ptr<governors::Governor> {
        return std::make_unique<governors::FixedGovernor>(cpu, gpu);
    };
}

/// A small 2-Orin fleet fed by 3 mixed streams.
FleetConfig small_config() {
    FleetConfig cfg;
    const auto orin = platform::orin_nano_spec();
    cfg.devices.push_back(make_device("a", orin));
    cfg.devices.push_back(make_device("b", orin));
    for (int i = 0; i < 3; ++i) {
        serving::StreamSpec s;
        s.name = "cam" + std::to_string(i);
        s.dataset = (i == 2) ? "VisDrone2019" : "KITTI";
        s.slo_s = 0.9;
        s.requests = 8;
        s.arrival.kind = (i == 1) ? serving::ArrivalKind::bursty
                                  : serving::ArrivalKind::poisson;
        s.arrival.rate_hz = 0.8;
        s.arrival.phase_s = 0.4 * i;
        cfg.streams.push_back(std::move(s));
    }
    cfg.scheduler = "edf_admit";
    cfg.router = "least_queue";
    cfg.seed = 77;
    return cfg;
}

void expect_traces_identical(const FleetTrace& a, const FleetTrace& b,
                             const std::string& label) {
    ASSERT_EQ(a.size(), b.size()) << label;
    ASSERT_EQ(a.device_names(), b.device_names()) << label;
    ASSERT_EQ(a.stream_names(), b.stream_names()) << label;
    EXPECT_EQ(a.makespan_s(), b.makespan_s()) << label;
    EXPECT_EQ(a.total_energy_j(), b.total_energy_j()) << label;
    EXPECT_EQ(a.migrations(), b.migrations()) << label;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto& x = a[i];
        const auto& y = b[i];
        ASSERT_EQ(x.row.request_id, y.row.request_id) << label << " row " << i;
        ASSERT_EQ(x.device, y.device) << label << " row " << i;
        ASSERT_EQ(x.migrated, y.migrated) << label << " row " << i;
        ASSERT_EQ(x.row.arrival_s, y.row.arrival_s) << label << " row " << i;
        ASSERT_EQ(x.row.start_s, y.row.start_s) << label << " row " << i;
        ASSERT_EQ(x.row.e2e_s, y.row.e2e_s) << label << " row " << i;
        ASSERT_EQ(x.row.shed, y.row.shed) << label << " row " << i;
        ASSERT_EQ(x.row.missed, y.row.missed) << label << " row " << i;
        ASSERT_EQ(x.row.cpu_temp, y.row.cpu_temp) << label << " row " << i;
        ASSERT_EQ(x.row.energy_j, y.row.energy_j) << label << " row " << i;
    }
}

TEST(FleetEngine, ValidatesTheConfig) {
    auto cfg = small_config();
    cfg.devices.clear();
    EXPECT_THROW((void)FleetEngine(cfg), std::invalid_argument);

    cfg = small_config();
    cfg.devices[1].id = "a"; // duplicate
    EXPECT_THROW((void)FleetEngine(cfg), std::invalid_argument);

    cfg = small_config();
    cfg.router = "warmest_die";
    EXPECT_THROW((void)FleetEngine(cfg), std::invalid_argument);

    cfg = small_config();
    cfg.scheduler = "lifo";
    EXPECT_THROW((void)FleetEngine(cfg), std::invalid_argument);

    cfg = small_config();
    cfg.streams.clear();
    EXPECT_THROW((void)FleetEngine(cfg), std::invalid_argument);
}

TEST(FleetEngine, EveryRequestIsAccountedExactlyOnce) {
    const FleetEngine engine(small_config());
    const auto trace = engine.run(fixed_factory(5, 3), 1);

    const auto requests = engine.build_requests();
    ASSERT_EQ(trace.size(), requests.size());
    std::set<std::size_t> seen;
    for (const auto& r : trace.records()) {
        EXPECT_TRUE(seen.insert(r.row.request_id).second)
            << "request " << r.row.request_id << " recorded twice";
    }

    const auto agg = trace.aggregate();
    EXPECT_EQ(agg.requests, requests.size());
    EXPECT_EQ(agg.served + agg.shed, requests.size());
    // Per-device and per-stream partitions both cover the whole ledger.
    std::size_t by_device = 0;
    for (std::size_t d = 0; d < trace.device_names().size(); ++d) {
        by_device += trace.device_summary(d).requests;
    }
    std::size_t by_stream = 0;
    for (std::size_t s = 0; s < trace.stream_names().size(); ++s) {
        by_stream += trace.stream_summary(s).requests;
    }
    EXPECT_EQ(by_device, requests.size());
    EXPECT_EQ(by_stream, requests.size());
}

TEST(FleetEngine, DispatcherTimelineMatchesServingDerivation) {
    const auto cfg = small_config();
    const auto fleet_requests = FleetEngine(cfg).build_requests();
    const auto serving_requests =
        serving::build_request_timeline(cfg.streams, cfg.seed);
    ASSERT_EQ(fleet_requests.size(), serving_requests.size());
    for (std::size_t i = 0; i < fleet_requests.size(); ++i) {
        EXPECT_EQ(fleet_requests[i].arrival_s, serving_requests[i].arrival_s);
        EXPECT_EQ(fleet_requests[i].stream, serving_requests[i].stream);
    }
}

TEST(FleetEngine, RunRepeatsByteIdentically) {
    const FleetEngine engine(small_config());
    const auto a = engine.run(fixed_factory(5, 3), 9);
    const auto b = engine.run(fixed_factory(5, 3), 9);
    expect_traces_identical(a, b, "repeat");
}

TEST(FleetEngine, GovernorSeedsAreNamespacedPerDevice) {
    auto cfg = small_config();
    const FleetEngine engine(cfg);
    // Two identical device slots must hand their governors different seeds
    // (the fleet/serving seed-collision regression): otherwise twin devices
    // replaying the same streams draw identical randomness.
    EXPECT_NE(engine.governor_seed(7, 0), engine.governor_seed(7, 1));

    std::vector<std::uint64_t> handed;
    const FleetEngine::GovernorFactory capturing =
        [&](const platform::DeviceSpec&,
            std::uint64_t seed) -> std::unique_ptr<governors::Governor> {
        handed.push_back(seed);
        return std::make_unique<governors::FixedGovernor>(5, 3);
    };
    (void)engine.run(capturing, 7);
    ASSERT_EQ(handed.size(), 2u);
    EXPECT_EQ(handed[0], engine.governor_seed(7, 0));
    EXPECT_EQ(handed[1], engine.governor_seed(7, 1));
    EXPECT_NE(handed[0], handed[1]);
}

TEST(FleetEngine, ThermalAwareRoutingFlipsAwayFromAnInducedHotDevice) {
    auto cfg = small_config();
    for (auto& s : cfg.streams) s.requests = 12;
    // Device "a" roasts 4 K under its trip point; "b" sits at a cool 25 C.
    cfg.devices[0].ambient_celsius = 81.0;

    cfg.router = "round_robin";
    const auto blind = FleetEngine(cfg).run(fixed_factory(5, 3), 3);
    cfg.router = "thermal_aware";
    const auto aware = FleetEngine(cfg).run(fixed_factory(5, 3), 3);

    const auto routed_to_hot = [](const FleetTrace& t) {
        std::size_t n = 0;
        for (const auto& r : t.records()) n += r.device == 0 ? 1 : 0;
        return n;
    };
    // Round-robin splits the 36 requests evenly; thermal_aware must flip
    // the bulk of the load onto the cool device.
    EXPECT_EQ(routed_to_hot(blind), blind.size() / 2);
    EXPECT_LT(routed_to_hot(aware), blind.size() / 4);
    // ...and the hot die must end up cooler for it.
    EXPECT_LT(aware.device_stats(0).peak_temp_c, blind.device_stats(0).peak_temp_c);
}

TEST(FleetEngine, ThrottleMigrationDrainsTheHotQueue) {
    auto cfg = small_config();
    for (auto& s : cfg.streams) {
        s.requests = 10;
        s.arrival.kind = serving::ArrivalKind::bursty;
        s.arrival.burst = 10; // everything lands at once
        s.arrival.rate_hz = 2.0;
    }
    // Device "a" starts above its trip point: its first frame throttles
    // while the volley is still queued behind it. Plain EDF (no admission
    // control), or the scheduler sheds the hot backlog before migration
    // gets a chance to rescue it.
    cfg.devices[0].ambient_celsius = 86.0;
    cfg.router = "round_robin";
    cfg.scheduler = "edf";
    cfg.migrate_on_throttle = true;

    const auto trace = FleetEngine(cfg).run(fixed_factory(7, 5), 3);
    EXPECT_GT(trace.migrations(), 0u);
    EXPECT_GT(trace.device_stats(0).migrations_out, 0u);
    std::size_t migrated_rows = 0;
    for (const auto& r : trace.records()) migrated_rows += r.migrated ? 1 : 0;
    EXPECT_GT(migrated_rows, 0u);
    // Migrated requests still land somewhere and are accounted once.
    EXPECT_EQ(trace.aggregate().requests, trace.size());
}

TEST(FleetEngine, FailedDeviceIsWithdrawnAndItsQueueReRoutes) {
    auto cfg = small_config();
    for (auto& s : cfg.streams) s.requests = 12;
    cfg.devices[0].fail_at_s = 4.0;
    const auto trace = FleetEngine(cfg).run(fixed_factory(5, 3), 3);

    EXPECT_TRUE(trace.device_stats(0).failed);
    for (const auto& r : trace.records()) {
        if (r.device != 0) continue;
        // Nothing starts on the failed device after (roughly) the failure
        // instant -- only a frame already in flight may straddle it.
        EXPECT_LE(r.row.start_s, 4.0 + 1.0) << "request " << r.row.request_id;
    }
    // The survivors absorbed the load: every request is still accounted.
    EXPECT_EQ(trace.aggregate().requests, trace.size());
    EXPECT_GT(trace.device_summary(1).served, trace.device_summary(0).served);
}

TEST(FleetEngine, HeterogeneousPoolGetsDeviceSizedGovernors) {
    // Regression: an arm *built* against one device spec must still hand
    // every pool device a governor sized for that device's own ladder and
    // thermal thresholds (ArmSpec::make_for). Pre-fix, a zTT arm built from
    // the Mi 11's 8x8 action space drove the Orin's 8x6 ladder and threw
    // std::out_of_range from EdgeDevice::request_levels mid-run.
    const auto orin = platform::orin_nano_spec();
    const auto mi11 = platform::mi11_lite_spec();
    harness::Scenario scenario(runtime::static_experiment(
        mi11, detector::DetectorKind::faster_rcnn, "KITTI", 1, 0));
    scenario.name = "fleet_hetero_governors";
    scenario.title = scenario.name;
    auto cfg = small_config();
    cfg.devices.clear();
    cfg.devices.push_back(make_device("orin0", orin));
    cfg.devices.push_back(make_device("phone0", mi11));
    for (auto& s : cfg.streams) s.slo_s = 4.0; // room for a phone-served frame
    scenario.fleet = std::move(cfg);
    scenario.arms.push_back(harness::fleet_arm(harness::ztt_arm(mi11), "least_queue"));

    const auto results = harness::ExperimentHarness({.jobs = 1, .seed = 5}).run(scenario);
    ASSERT_TRUE(results[0].fleet_trace.has_value());
    EXPECT_EQ(results[0].fleet_trace->aggregate().requests,
              results[0].fleet_trace->size());
}

TEST(FleetEngine, ParallelHarnessEqualsSerial) {
    const auto spec = platform::orin_nano_spec();
    harness::Scenario scenario(runtime::static_experiment(
        spec, detector::DetectorKind::faster_rcnn, "KITTI", 1, 0));
    scenario.name = "fleet_parallel_vs_serial";
    scenario.title = scenario.name;
    scenario.fleet = small_config();
    scenario.arms.push_back(harness::fleet_arm(harness::fixed_arm(5, 3), "least_queue"));
    scenario.arms.push_back(harness::fleet_arm(harness::default_arm(spec), "round_robin"));
    scenario.arms.push_back(
        harness::fleet_arm(harness::performance_arm(), "lotus_fleet"));

    const auto serial = harness::ExperimentHarness({.jobs = 1, .seed = 7}).run(scenario);
    const auto parallel = harness::ExperimentHarness({.jobs = 4, .seed = 7}).run(scenario);
    ASSERT_EQ(serial.size(), scenario.arms.size());
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].arm, parallel[i].arm);
        EXPECT_EQ(serial[i].episode_seed, parallel[i].episode_seed);
        ASSERT_TRUE(serial[i].fleet_trace.has_value());
        ASSERT_TRUE(parallel[i].fleet_trace.has_value());
        expect_traces_identical(*serial[i].fleet_trace, *parallel[i].fleet_trace,
                                serial[i].arm);
    }
    // The rendered JSON (what CI diffs) is byte-identical too.
    EXPECT_EQ(harness::scenario_json(scenario, serial),
              harness::scenario_json(scenario, parallel));
}

TEST(FleetEngine, FleetTweakAppliesPerArm) {
    const auto spec = platform::orin_nano_spec();
    harness::Scenario scenario(runtime::static_experiment(
        spec, detector::DetectorKind::faster_rcnn, "KITTI", 1, 0));
    scenario.name = "fleet_tweak";
    scenario.title = scenario.name;
    scenario.fleet = small_config();
    scenario.arms.push_back(harness::fleet_arm(harness::fixed_arm(5, 3), "round_robin"));
    scenario.arms.push_back(
        harness::fleet_arm(harness::fixed_arm(5, 3), "thermal_aware", true));

    const auto results = harness::ExperimentHarness({.jobs = 2, .seed = 9}).run(scenario);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].fleet_config->router, "round_robin");
    EXPECT_FALSE(results[0].fleet_config->migrate_on_throttle);
    EXPECT_EQ(results[1].fleet_config->router, "thermal_aware");
    EXPECT_TRUE(results[1].fleet_config->migrate_on_throttle);
    // The tweak applied to a copy: the shared scenario config is intact.
    EXPECT_EQ(scenario.fleet->router, "least_queue");
}

TEST(FleetSinks, JsonDocumentCarriesFleetShape) {
    const auto spec = platform::orin_nano_spec();
    harness::Scenario scenario(runtime::static_experiment(
        spec, detector::DetectorKind::faster_rcnn, "KITTI", 1, 0));
    scenario.name = "fleet_json";
    scenario.title = scenario.name;
    scenario.fleet = small_config();
    scenario.arms.push_back(harness::fleet_arm(harness::fixed_arm(5, 3), "least_queue"));

    const auto results = harness::ExperimentHarness({.jobs = 1, .seed = 4}).run(scenario);
    ASSERT_TRUE(results[0].is_fleet());
    const auto doc = harness::scenario_json(scenario, results);
    EXPECT_NE(doc.find("\"mode\":\"fleet\""), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"router\":\"least_queue\""), std::string::npos);
    EXPECT_NE(doc.find("\"devices_n\":2"), std::string::npos);
    // The satellite columns: top-level peak temperature and shed rate.
    EXPECT_NE(doc.find("\"peak_temp_c\":"), std::string::npos);
    EXPECT_NE(doc.find("\"shed_rate\":"), std::string::npos);
    EXPECT_NE(doc.find("\"load_skew\":"), std::string::npos);
    EXPECT_NE(doc.find("\"migrations\":"), std::string::npos);
    EXPECT_NE(doc.find("\"stream\":\"a\""), std::string::npos); // device summary
    EXPECT_NE(doc.find("\"stream\":\"cam0\""), std::string::npos);
    EXPECT_NE(doc.find("\"failed\":false"), std::string::npos);
}

TEST(FleetSinks, SummaryCsvCarriesPeakTempAndShedRate) {
    const auto spec = platform::orin_nano_spec();
    harness::Scenario scenario(runtime::static_experiment(
        spec, detector::DetectorKind::faster_rcnn, "KITTI", 1, 0));
    scenario.name = "fleet_csv";
    scenario.title = scenario.name;
    scenario.fleet = small_config();
    scenario.arms.push_back(harness::fleet_arm(harness::fixed_arm(5, 3), "round_robin"));

    const auto results = harness::ExperimentHarness({.jobs = 1, .seed = 4}).run(scenario);
    const auto dir = fs::temp_directory_path() / "lotus_fleet_csv_test";
    fs::remove_all(dir);
    harness::write_csv_traces(dir.string(), scenario.name, results, /*announce=*/false);

    std::ifstream in(dir / "fleet_csv_summary.csv");
    ASSERT_TRUE(in.good());
    std::string header;
    std::getline(in, header);
    EXPECT_NE(header.find("peak_temp_c"), std::string::npos) << header;
    EXPECT_NE(header.find("shed_rate"), std::string::npos) << header;
    EXPECT_NE(header.find("load_skew"), std::string::npos) << header;
    // fleet row + one per device + one per stream
    std::size_t rows = 0;
    for (std::string line; std::getline(in, line);) rows += line.empty() ? 0 : 1;
    EXPECT_EQ(rows, 1 + 2 + 3);

    // The per-request ledger carries the device + migration columns.
    std::ifstream ledger(dir / "fleet_csv_fixed_5_3__round_robin.csv");
    ASSERT_TRUE(ledger.good());
    std::string ledger_header;
    std::getline(ledger, ledger_header);
    EXPECT_NE(ledger_header.find("device"), std::string::npos);
    EXPECT_NE(ledger_header.find("migrated"), std::string::npos);
    fs::remove_all(dir);
}

} // namespace
} // namespace lotus::fleet
