// Router policy unit tests: every policy is a deterministic pure function
// of (router state, views, request), ties break on the device index, and
// the thermally-informed policies actually route away from hot dies.

#include <gtest/gtest.h>

#include "fleet/router.hpp"

namespace lotus::fleet {
namespace {

DeviceView view(std::size_t index, double headroom_c, std::size_t depth,
                double expected_service_s = 0.4) {
    DeviceView v;
    v.index = index;
    v.headroom_c = headroom_c;
    v.queue_depth = depth;
    v.expected_service_s = expected_service_s;
    v.backlog_s = static_cast<double>(depth) * expected_service_s;
    return v;
}

serving::Request request() {
    serving::Request r;
    r.arrival_s = 1.0;
    r.slo_s = 0.9;
    return r;
}

TEST(RoundRobinRouter, CyclesThroughThePool) {
    RoundRobinRouter router;
    const std::vector<DeviceView> views = {view(0, 20, 0), view(1, 20, 0), view(2, 20, 0)};
    EXPECT_EQ(router.route(views, request(), 0.0), 0u);
    EXPECT_EQ(router.route(views, request(), 0.0), 1u);
    EXPECT_EQ(router.route(views, request(), 0.0), 2u);
    EXPECT_EQ(router.route(views, request(), 0.0), 0u);
}

TEST(RoundRobinRouter, SkipsUnavailableDevices) {
    RoundRobinRouter router;
    std::vector<DeviceView> views = {view(0, 20, 0), view(1, 20, 0), view(2, 20, 0)};
    views[1].available = false;
    EXPECT_EQ(router.route(views, request(), 0.0), 0u);
    EXPECT_EQ(router.route(views, request(), 0.0), 2u);
    EXPECT_EQ(router.route(views, request(), 0.0), 0u);
}

TEST(RoundRobinRouter, NoAvailableDeviceReturnsNpos) {
    RoundRobinRouter router;
    std::vector<DeviceView> views = {view(0, 20, 0)};
    views[0].available = false;
    EXPECT_EQ(router.route(views, request(), 0.0), Router::npos);
}

TEST(LeastQueueRouter, PicksSmallestBacklog) {
    LeastQueueRouter router;
    const std::vector<DeviceView> views = {view(0, 20, 3), view(1, 20, 1), view(2, 20, 2)};
    EXPECT_EQ(router.route(views, request(), 0.0), 1u);
}

TEST(LeastQueueRouter, BacklogIsSecondsNotDepth) {
    LeastQueueRouter router;
    // 3 requests on a fast device are a shorter wait than 1 on a phone.
    const std::vector<DeviceView> views = {view(0, 20, 3, 0.4), view(1, 20, 1, 1.6)};
    EXPECT_EQ(router.route(views, request(), 0.0), 0u);
}

TEST(LeastQueueRouter, TiesBreakOnIndex) {
    LeastQueueRouter router;
    const std::vector<DeviceView> views = {view(0, 20, 2), view(1, 20, 2), view(2, 20, 2)};
    EXPECT_EQ(router.route(views, request(), 0.0), 0u);
    EXPECT_EQ(router.route(views, request(), 0.0), 0u); // stateless: same answer
}

TEST(ThermalAwareRouter, RoutesAwayFromTheHotDie) {
    ThermalAwareRouter router;
    // Equal queues; device 0 is 3 K from its trip, device 1 has 25 K of
    // headroom. Round-robin would alternate; thermal_aware must flip every
    // pick to the cool die.
    const std::vector<DeviceView> views = {view(0, 3, 2), view(1, 25, 2)};
    EXPECT_EQ(router.route(views, request(), 0.0), 1u);
    EXPECT_EQ(router.route(views, request(), 0.0), 1u);
}

TEST(ThermalAwareRouter, BacklogPenaltyPreventsDrowningTheCoolDie) {
    ThermalAwareRouter router(/*backlog_weight_c_per_s=*/4.0);
    // The cool die is 10 K cooler but already 3 s deeper in backlog:
    // 10 - 4*3 < 0, so the warm-but-idle die wins.
    std::vector<DeviceView> views = {view(0, 10, 0, 1.0), view(1, 20, 3, 1.0)};
    EXPECT_EQ(router.route(views, request(), 0.0), 0u);
    // With only 1 s of extra backlog the cool die keeps the pick.
    views[1] = view(1, 20, 1, 1.0);
    EXPECT_EQ(router.route(views, request(), 0.0), 1u);
}

TEST(LotusFleetRouter, PicksEarliestPredictedCompletion) {
    LotusFleetRouter router;
    // Device 1 has the shorter (backlog + service) horizon; both have
    // ample thermal headroom, so no penalty applies.
    const std::vector<DeviceView> views = {view(0, 30, 3, 0.5), view(1, 30, 2, 0.5)};
    EXPECT_EQ(router.route(views, request(), 0.0), 1u);
}

TEST(LotusFleetRouter, PenalizesDevicesInsideTheSoftMargin) {
    LotusFleetRouter router(/*soft_margin_c=*/5.0, /*penalty_s_per_c=*/0.5);
    // Device 0 is marginally faster but sits 1 K from its trip: 4 K of
    // deficit = 2 s of penalty outweighs the 0.5 s queue advantage.
    const std::vector<DeviceView> views = {view(0, 1, 1, 0.5), view(1, 30, 2, 0.5)};
    EXPECT_EQ(router.route(views, request(), 0.0), 1u);
}

TEST(LotusFleetRouter, ThrottledDevicePaysExtra) {
    LotusFleetRouter router;
    std::vector<DeviceView> views = {view(0, 6, 1, 0.5), view(1, 6, 2, 0.5)};
    EXPECT_EQ(router.route(views, request(), 0.0), 0u);
    views[0].throttled = true;
    EXPECT_EQ(router.route(views, request(), 0.0), 1u);
}

TEST(MakeRouter, KnowsAllPoliciesAndRejectsUnknown) {
    for (const auto& name : router_names()) {
        EXPECT_EQ(make_router(name)->name(), name);
    }
    EXPECT_EQ(make_router("rr")->name(), "round_robin");
    EXPECT_EQ(make_router("jsq")->name(), "least_queue");
    EXPECT_THROW((void)make_router("freshest_die"), std::invalid_argument);
}

} // namespace
} // namespace lotus::fleet
