// Tests for the inference engine: stage structure, decision-point order,
// overhead accounting, governor ticks and throttling interaction.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "governors/linux_governors.hpp"
#include "platform/presets.hpp"
#include "runtime/engine.hpp"
#include "workload/dataset.hpp"

namespace lotus::runtime {
namespace {

workload::FrameSample frame_with(int proposals, double jitter = 1.0,
                                 double resolution = 1.0) {
    workload::FrameSample f;
    f.resolution_scale = resolution;
    f.complexity = 1.0;
    f.proposals = proposals;
    f.jitter = jitter;
    return f;
}

/// Records the engine's calls for structural assertions.
class SpyGovernor final : public governors::Governor {
public:
    [[nodiscard]] std::string name() const override { return "spy"; }

    governors::LevelRequest on_frame_start(const governors::Observation& obs) override {
        start_calls.push_back(obs);
        return start_request;
    }
    governors::LevelRequest on_post_rpn(const governors::Observation& obs) override {
        rpn_calls.push_back(obs);
        return rpn_request;
    }
    void on_frame_end(const governors::FrameOutcome& outcome) override {
        outcomes.push_back(outcome);
    }
    [[nodiscard]] double tick_interval_s() const override { return tick_interval; }
    governors::LevelRequest on_tick(const governors::TickObservation& tick) override {
        ticks.push_back(tick);
        return governors::LevelRequest::none();
    }
    [[nodiscard]] double decision_overhead_s() const override { return overhead; }

    std::vector<governors::Observation> start_calls;
    std::vector<governors::Observation> rpn_calls;
    std::vector<governors::FrameOutcome> outcomes;
    std::vector<governors::TickObservation> ticks;
    governors::LevelRequest start_request = governors::LevelRequest::none();
    governors::LevelRequest rpn_request = governors::LevelRequest::none();
    double tick_interval = 0.0;
    double overhead = 0.0;
};

class EngineTest : public ::testing::Test {
protected:
    EngineTest()
        : device_(platform::orin_nano_spec()),
          engine_(device_),
          model_(detector::faster_rcnn_r50()) {}

    platform::EdgeDevice device_;
    InferenceEngine engine_;
    detector::DetectorModel model_;
};

TEST_F(EngineTest, CallsHooksInOrderForTwoStage) {
    SpyGovernor gov;
    const auto result = engine_.run_frame(model_, frame_with(150), gov, 0.45, 0);
    ASSERT_EQ(gov.start_calls.size(), 1u);
    ASSERT_EQ(gov.rpn_calls.size(), 1u);
    ASSERT_EQ(gov.outcomes.size(), 1u);
    // The frame-start observation must not know the proposal count.
    EXPECT_EQ(gov.start_calls[0].proposals, -1);
    EXPECT_EQ(gov.rpn_calls[0].proposals, 150);
    EXPECT_GT(gov.rpn_calls[0].elapsed_in_frame_s, 0.0);
    EXPECT_EQ(result.proposals_used, 150);
}

TEST_F(EngineTest, SkipsPostRpnForOneStage) {
    SpyGovernor gov;
    const auto yolo = detector::yolov5s();
    engine_.run_frame(yolo, frame_with(100), gov, 0.20, 0);
    EXPECT_EQ(gov.start_calls.size(), 1u);
    EXPECT_TRUE(gov.rpn_calls.empty());
    EXPECT_EQ(gov.outcomes.size(), 1u);
}

TEST_F(EngineTest, LatencyDecomposesIntoStages) {
    SpyGovernor gov;
    const auto r = engine_.run_frame(model_, frame_with(150), gov, 0.45, 0);
    EXPECT_GT(r.stage1_s, 0.0);
    EXPECT_GT(r.stage2_s, 0.0);
    EXPECT_NEAR(r.latency_s, r.stage1_s + r.stage2_s, 1e-9);
    // Stage 1 dominates (~80%, Sec. 4.2).
    EXPECT_GT(r.stage1_s / r.latency_s, 0.7);
}

TEST_F(EngineTest, MoreProposalsMoreStage2Latency) {
    SpyGovernor gov;
    const auto r_low = engine_.run_frame(model_, frame_with(50), gov, 0.45, 0);
    device_.reset();
    engine_.reset();
    const auto r_high = engine_.run_frame(model_, frame_with(500), gov, 0.45, 1);
    EXPECT_GT(r_high.stage2_s, r_low.stage2_s * 1.5);
    // Stage 1 is proposal-independent.
    EXPECT_NEAR(r_high.stage1_s, r_low.stage1_s, r_low.stage1_s * 0.02);
}

TEST_F(EngineTest, LowerFrequencyMeansHigherLatency) {
    SpyGovernor fast;
    fast.start_request = governors::LevelRequest::set(7, 5);
    const auto r_fast = engine_.run_frame(model_, frame_with(150), fast, 0.45, 0);
    device_.reset();
    engine_.reset();
    SpyGovernor slow;
    slow.start_request = governors::LevelRequest::set(1, 1);
    const auto r_slow = engine_.run_frame(model_, frame_with(150), slow, 0.45, 1);
    EXPECT_GT(r_slow.latency_s, r_fast.latency_s * 1.5);
}

TEST_F(EngineTest, PostRpnRequestOnlyAffectsStage2) {
    // Boosting at the post-RPN point must leave stage 1 at the slow levels.
    SpyGovernor gov;
    gov.start_request = governors::LevelRequest::set(2, 2);
    gov.rpn_request = governors::LevelRequest::set(7, 5);
    const auto r = engine_.run_frame(model_, frame_with(300), gov, 0.45, 0);
    EXPECT_EQ(r.cpu_level_stage1, 2u);
    EXPECT_EQ(r.gpu_level_stage1, 2u);
    EXPECT_EQ(r.cpu_level_stage2, 7u);
    EXPECT_EQ(r.gpu_level_stage2, 5u);

    device_.reset();
    engine_.reset();
    SpyGovernor no_boost;
    no_boost.start_request = governors::LevelRequest::set(2, 2);
    no_boost.rpn_request = governors::LevelRequest::set(2, 2);
    const auto r2 = engine_.run_frame(model_, frame_with(300), no_boost, 0.45, 1);
    EXPECT_NEAR(r2.stage1_s, r.stage1_s, r.stage1_s * 0.02);
    EXPECT_GT(r2.stage2_s, r.stage2_s * 1.3);
}

TEST_F(EngineTest, DecisionOverheadChargedPerDecision) {
    SpyGovernor free;
    const auto r_free = engine_.run_frame(model_, frame_with(150), free, 0.45, 0);
    device_.reset();
    engine_.reset();
    SpyGovernor paid;
    paid.overhead = 0.00426;
    const auto r_paid = engine_.run_frame(model_, frame_with(150), paid, 0.45, 1);
    // Two decisions -> ~8.52 ms extra (Sec. 4.4.2), modulo thermal effects.
    EXPECT_NEAR(r_paid.latency_s - r_free.latency_s, 0.00852, 0.004);
}

TEST_F(EngineTest, JitterScalesLatency) {
    SpyGovernor gov;
    const auto r1 = engine_.run_frame(model_, frame_with(150, 1.0), gov, 0.45, 0);
    device_.reset();
    engine_.reset();
    const auto r2 = engine_.run_frame(model_, frame_with(150, 1.10), gov, 0.45, 1);
    EXPECT_NEAR(r2.latency_s / r1.latency_s, 1.10, 0.02);
}

TEST_F(EngineTest, ResolutionScalesStage1) {
    SpyGovernor gov;
    const auto r1 =
        engine_.run_frame(model_, frame_with(150, 1.0, 1.0), gov, 0.45, 0);
    device_.reset();
    engine_.reset();
    const auto r2 =
        engine_.run_frame(model_, frame_with(150, 1.0, 1.55), gov, 0.6, 1);
    EXPECT_NEAR(r2.stage1_s / r1.stage1_s, 1.55, 0.08);
}

TEST_F(EngineTest, TicksFireAtRequestedCadence) {
    SpyGovernor gov;
    gov.tick_interval = 0.02;
    const auto r = engine_.run_frame(model_, frame_with(150), gov, 0.45, 0);
    // Expect roughly latency / interval ticks (minus the first interval).
    const auto expected = static_cast<double>(r.latency_s / 0.02);
    EXPECT_GT(static_cast<double>(gov.ticks.size()), expected * 0.6);
    EXPECT_LT(static_cast<double>(gov.ticks.size()), expected * 1.4);
    // Tick utilizations are phase-dependent but always in [0, 1].
    for (const auto& t : gov.ticks) {
        ASSERT_GE(t.cpu_util, 0.0);
        ASSERT_LE(t.cpu_util, 1.0);
        ASSERT_GE(t.gpu_util, 0.0);
        ASSERT_LE(t.gpu_util, 1.0);
    }
}

TEST_F(EngineTest, NoTicksWhenDisabled) {
    SpyGovernor gov;
    gov.tick_interval = 0.0;
    engine_.run_frame(model_, frame_with(150), gov, 0.45, 0);
    EXPECT_TRUE(gov.ticks.empty());
}

TEST_F(EngineTest, OutcomeMatchesResult) {
    SpyGovernor gov;
    const auto r = engine_.run_frame(model_, frame_with(222), gov, 0.45, 7);
    ASSERT_EQ(gov.outcomes.size(), 1u);
    const auto& o = gov.outcomes[0];
    EXPECT_EQ(o.iteration, 7u);
    EXPECT_DOUBLE_EQ(o.latency_s, r.latency_s);
    EXPECT_DOUBLE_EQ(o.stage1_latency_s, r.stage1_s);
    EXPECT_EQ(o.proposals, 222);
    EXPECT_DOUBLE_EQ(o.latency_constraint_s, 0.45);
    EXPECT_DOUBLE_EQ(o.cpu_temp, r.cpu_temp);
}

TEST_F(EngineTest, LastLatencyPropagatesToNextFrame) {
    SpyGovernor gov;
    const auto r1 = engine_.run_frame(model_, frame_with(150), gov, 0.45, 0);
    const auto r2 = engine_.run_frame(model_, frame_with(150), gov, 0.45, 1);
    ASSERT_EQ(gov.start_calls.size(), 2u);
    EXPECT_DOUBLE_EQ(gov.start_calls[0].last_frame_latency_s, 0.0);
    EXPECT_DOUBLE_EQ(gov.start_calls[1].last_frame_latency_s, r1.latency_s);
    EXPECT_DOUBLE_EQ(engine_.last_frame_latency_s(), r2.latency_s);
}

TEST_F(EngineTest, ResetClearsCrossFrameState) {
    SpyGovernor gov;
    engine_.run_frame(model_, frame_with(150), gov, 0.45, 0);
    engine_.reset();
    engine_.run_frame(model_, frame_with(150), gov, 0.45, 1);
    EXPECT_DOUBLE_EQ(gov.start_calls[1].last_frame_latency_s, 0.0);
}

TEST_F(EngineTest, EnergyAccounted) {
    SpyGovernor gov;
    const auto r = engine_.run_frame(model_, frame_with(150), gov, 0.45, 0);
    EXPECT_GT(r.energy_j, 0.5);
    // Mean power must be within the device's physical range.
    const double watts = r.energy_j / r.latency_s;
    EXPECT_GT(watts, 1.0);
    EXPECT_LT(watts, 40.0);
}

TEST_F(EngineTest, ProposalsClampedByModel) {
    SpyGovernor gov;
    const auto mask = detector::mask_rcnn_r50(); // caps at 300
    const auto r = engine_.run_frame(mask, frame_with(600), gov, 0.6, 0);
    EXPECT_EQ(r.proposals_raw, 600);
    EXPECT_EQ(r.proposals_used, 300);
    EXPECT_EQ(gov.rpn_calls[0].proposals, 300);
}

TEST_F(EngineTest, ThrottleFlagSurfacesDuringHotFrames) {
    SpyGovernor gov;
    gov.start_request = governors::LevelRequest::set(7, 5);
    // Heat-soak the device under sustained max-level load.
    bool saw_throttle = false;
    for (int i = 0; i < 1500 && !saw_throttle; ++i) {
        const auto r =
            engine_.run_frame(model_, frame_with(150), gov, 0.45, static_cast<std::size_t>(i));
        saw_throttle = r.throttled;
    }
    EXPECT_TRUE(saw_throttle);
}

TEST_F(EngineTest, InvalidConstraintThrows) {
    SpyGovernor gov;
    EXPECT_THROW(engine_.run_frame(model_, frame_with(100), gov, 0.0, 0),
                 std::invalid_argument);
}

TEST_F(EngineTest, EngineConfigValidation) {
    EngineConfig bad;
    bad.max_slice_s = 0.0;
    EXPECT_THROW(InferenceEngine(device_, bad), std::invalid_argument);
}

} // namespace
} // namespace lotus::runtime
