// Tests for the unified simulation timeline: EdgeDevice::advance as the
// single time-advance authority. Pins the PR-3 bug class -- throttle events
// inside DVFS transitions or decision-overhead windows were invisible to
// run_frame -- and the kernel-tick delivery guarantees (exact cadence
// across work, idle, DVFS stalls and decision overhead; count invariant to
// the engine's work-slicing granularity).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "detector/model.hpp"
#include "governors/governor.hpp"
#include "platform/presets.hpp"
#include "runtime/engine.hpp"
#include "workload/dataset.hpp"

namespace lotus::runtime {
namespace {

/// Spy that records every hook call; optionally requests levels / charges
/// overhead / runs ticks, like the one in test_engine.cpp.
class SpyGovernor final : public governors::Governor {
public:
    [[nodiscard]] std::string name() const override { return "spy"; }
    governors::LevelRequest on_frame_start(const governors::Observation&) override {
        return start_request;
    }
    governors::LevelRequest on_post_rpn(const governors::Observation&) override {
        return rpn_request;
    }
    [[nodiscard]] double tick_interval_s() const override { return tick_interval; }
    governors::LevelRequest on_tick(const governors::TickObservation& tick) override {
        ticks.push_back(tick);
        return governors::LevelRequest::none();
    }
    [[nodiscard]] double decision_overhead_s() const override { return overhead; }

    std::vector<governors::TickObservation> ticks;
    governors::LevelRequest start_request = governors::LevelRequest::none();
    governors::LevelRequest rpn_request = governors::LevelRequest::none();
    double tick_interval = 0.0;
    double overhead = 0.0;
};

/// A two-level, zero-power device whose thermal nodes decay towards ambient
/// with a 50 ms time constant. Constructed hot (ambient 60 C) and then
/// re-pointed at a 25 C ambient, its dies cross the 35 C trip downwards a
/// few polls into the run: the throttler engages at the 0.05 s poll and
/// fully releases at the 0.10 s poll, i.e. ONLY inside a window shorter
/// than the 0.2 s DVFS transition / decision overhead used below.
platform::DeviceSpec toy_hot_spec() {
    const platform::ThrottleParams throttle{/*trip=*/35.0, /*hysteresis=*/5.0,
                                            /*poll=*/0.05, /*clamp_level=*/0,
                                            /*num_levels=*/2};
    platform::DeviceSpec spec{
        .name = "toy",
        .cpu =
            platform::DomainSpec{
                .opp = platform::OppTable("cpu", {{1.0e9, 0.6}, {2.0e9, 0.9}}),
                .power = platform::PowerParams{}, // c_eff = leak0 = 0: no heat
                .ops_per_cycle = 1.0,
            },
        .gpu =
            platform::DomainSpec{
                .opp = platform::OppTable("gpu", {{1.0e9, 0.6}, {2.0e9, 0.9}}),
                .power = platform::PowerParams{},
                .ops_per_cycle = 1.0,
            },
        .thermal =
            platform::ThermalParams{
                .capacity = {0.05, 0.05, 0.05},
                .g_to_board = {0.0, 0.0, 0.0},
                .g_to_ambient = {1.0, 1.0, 1.0},
                .initial = {25.0, 25.0, 25.0},
                .max_dt = 0.005,
            },
        .cpu_throttle = throttle,
        .gpu_throttle = throttle,
        .mem_bandwidth = 1.0e9,
        .dvfs_latency_s = 0.2,
        .initial_ambient_celsius = 60.0,
    };
    return spec;
}

/// ~4 ms of work on the toy device at its low OPP level.
detector::DetectorModel toy_model() {
    detector::DetectorSpec spec;
    spec.name = "toy-rcnn";
    spec.kind = detector::DetectorKind::faster_rcnn;
    spec.preprocess = {1e6, 0.0, 0.0};
    spec.backbone = {0.0, 2e6, 0.0};
    spec.rpn = {0.0, 0.5e6, 0.0};
    spec.roi_base = {0.0, 0.2e6, 0.0};
    spec.roi_per_proposal = {0.0, 1e3, 0.0};
    spec.post_base = {0.1e6, 0.0, 0.0};
    spec.post_per_kept = {1e2, 0.0, 0.0};
    return detector::DetectorModel(spec);
}

workload::FrameSample toy_frame() {
    workload::FrameSample f;
    f.resolution_scale = 1.0;
    f.complexity = 1.0;
    f.proposals = 100;
    f.jitter = 1.0;
    return f;
}

// ---------------------------------------------------------------------------
// The PR-3 regression: throttle events confined to a DVFS transition or a
// decision-overhead window must surface in FrameResult::throttled. Before
// the single time-advance authority, request_levels() advanced the clock
// behind the engine's back and a trip+release inside one engine-invisible
// window was lost.
// ---------------------------------------------------------------------------

TEST(UnifiedTimeline, ThrottleInsideDvfsTransitionIsObserved) {
    platform::EdgeDevice device(toy_hot_spec());
    device.set_ambient(25.0); // dies start at 60 C and cool from here on
    InferenceEngine engine(device);

    SpyGovernor gov;
    gov.start_request = governors::LevelRequest::set(0, 0); // from (1,1): DVFS stall
    const auto r = engine.run_frame(toy_model(), toy_frame(), gov, 1.0, 0);

    // The trip engaged at t=0.05 and fully released at t=0.10, both inside
    // the 0.2 s transition -- before any work slice ran.
    EXPECT_TRUE(r.throttled);
    EXPECT_FALSE(device.throttled())
        << "engagement should be over by frame end; the flag must pin the transient";
    EXPECT_GT(r.latency_s, 0.2); // the stall is charged to the frame
}

TEST(UnifiedTimeline, ThrottleInsideDecisionOverheadIsObserved) {
    platform::EdgeDevice device(toy_hot_spec());
    device.set_ambient(25.0);
    InferenceEngine engine(device);

    SpyGovernor gov;
    gov.overhead = 0.2; // trip + full release happen inside this idle window
    const auto r = engine.run_frame(toy_model(), toy_frame(), gov, 1.0, 0);

    EXPECT_TRUE(r.throttled);
    EXPECT_FALSE(device.throttled());
}

// ---------------------------------------------------------------------------
// Kernel-tick delivery guarantees.
// ---------------------------------------------------------------------------

TEST(UnifiedTimeline, TicksFireAtExactCadenceAcrossIdle) {
    platform::EdgeDevice device(platform::orin_nano_spec());
    InferenceEngine engine(device);
    SpyGovernor gov;
    gov.tick_interval = 0.02;
    engine.run_idle(1.0, gov);

    ASSERT_EQ(gov.ticks.size(), 50u);
    for (std::size_t k = 0; k < gov.ticks.size(); ++k) {
        EXPECT_NEAR(gov.ticks[k].now_s, 0.02 * static_cast<double>(k + 1), 1e-9);
    }
}

TEST(UnifiedTimeline, TicksKeepFiringDuringDvfsTransition) {
    auto spec = toy_hot_spec();
    spec.initial_ambient_celsius = 25.0; // cool: no throttling noise
    spec.cpu_throttle.trip_celsius = 1000.0;
    spec.gpu_throttle.trip_celsius = 1000.0;
    platform::EdgeDevice device(spec);
    InferenceEngine engine(device);

    SpyGovernor gov;
    gov.tick_interval = 0.03;
    gov.start_request = governors::LevelRequest::set(0, 0); // 0.2 s stall at t=0
    engine.run_frame(toy_model(), toy_frame(), gov, 1.0, 0);

    // Ticks at 0.03 .. 0.18 all land inside the transition window.
    std::size_t in_transition = 0;
    for (const auto& t : gov.ticks) {
        if (t.now_s < 0.2 - 1e-9) {
            ++in_transition;
            EXPECT_NEAR(std::remainder(t.now_s, 0.03), 0.0, 1e-9);
        }
    }
    EXPECT_EQ(in_transition, 6u);
}

TEST(UnifiedTimeline, TicksKeepFiringDuringDecisionOverhead) {
    auto spec = toy_hot_spec();
    spec.initial_ambient_celsius = 25.0;
    spec.cpu_throttle.trip_celsius = 1000.0;
    spec.gpu_throttle.trip_celsius = 1000.0;
    platform::EdgeDevice device(spec);
    InferenceEngine engine(device);

    SpyGovernor gov;
    gov.tick_interval = 0.03;
    gov.overhead = 0.1; // frame-start overhead window [0, 0.1]
    engine.run_frame(toy_model(), toy_frame(), gov, 1.0, 0);

    ASSERT_GE(gov.ticks.size(), 3u);
    EXPECT_NEAR(gov.ticks[0].now_s, 0.03, 1e-9);
    EXPECT_NEAR(gov.ticks[1].now_s, 0.06, 1e-9);
    EXPECT_NEAR(gov.ticks[2].now_s, 0.09, 1e-9);
}

TEST(UnifiedTimeline, TickCountInvariantToWorkSlicing) {
    const auto model = detector::faster_rcnn_r50();
    workload::FrameSample frame;
    frame.resolution_scale = 1.0;
    frame.complexity = 1.0;
    frame.proposals = 150;
    frame.jitter = 1.0;

    auto run_with_slice = [&](double max_slice_s) {
        platform::EdgeDevice device(platform::orin_nano_spec());
        EngineConfig cfg;
        cfg.max_slice_s = max_slice_s;
        InferenceEngine engine(device, cfg);
        SpyGovernor gov;
        gov.tick_interval = 0.02;
        engine.run_frame(model, frame, gov, 0.45, 0);
        engine.run_idle(0.5, gov);
        return gov.ticks;
    };

    const auto fine = run_with_slice(0.004);
    const auto coarse = run_with_slice(0.25);
    ASSERT_EQ(fine.size(), coarse.size());
    for (std::size_t k = 0; k < fine.size(); ++k) {
        EXPECT_NEAR(fine[k].now_s, coarse[k].now_s, 1e-6);
        EXPECT_NEAR(std::remainder(fine[k].now_s, 0.02), 0.0, 1e-9);
    }
}

// ---------------------------------------------------------------------------
// The closed-form stepper must agree with the legacy Euler slicing while
// spending far fewer integration steps.
// ---------------------------------------------------------------------------

TEST(UnifiedTimeline, ClosedFormStepperMatchesEulerSlicing) {
    auto closed_spec = platform::orin_nano_spec();
    closed_spec.thermal_stepping = platform::ThermalStepping::closed_form;
    auto euler_spec = platform::orin_nano_spec();
    euler_spec.thermal_stepping = platform::ThermalStepping::euler_slice;

    platform::EdgeDevice closed(closed_spec);
    platform::EdgeDevice euler(euler_spec);
    // A heat-up / cool-down excursion without throttle interference (stays
    // below trip): pure integrator comparison.
    for (auto* dev : {&closed, &euler}) {
        dev->request_levels(5, 3);
        dev->advance(20.0, 0.4, 0.8);
        dev->advance(10.0, 0.05, 0.0);
    }
    EXPECT_NEAR(closed.cpu_temp(), euler.cpu_temp(), 0.05);
    EXPECT_NEAR(closed.gpu_temp(), euler.gpu_temp(), 0.05);
    EXPECT_NEAR(closed.board_temp(), euler.board_temp(), 0.05);
    EXPECT_NEAR(closed.energy_joules() / euler.energy_joules(), 1.0, 0.005);
    // >= 3x fewer integration steps is the PR's acceptance bar; without
    // governor ticks the event-driven stepper does far better than that.
    EXPECT_GE(static_cast<double>(euler.thermal_steps()),
              3.0 * static_cast<double>(closed.thermal_steps()));
}

} // namespace
} // namespace lotus::runtime
