// Tests for Trace summaries/CSV and the ExperimentRunner harness.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "governors/linux_governors.hpp"
#include "platform/presets.hpp"
#include "runtime/runner.hpp"
#include "workload/presets.hpp"

namespace lotus::runtime {
namespace {

TraceRow make_row(std::size_t i, double latency_ms, double constraint_ms = 450.0,
                  double cpu_temp = 60.0, double gpu_temp = 70.0) {
    TraceRow r;
    r.iteration = i;
    r.latency_s = latency_ms / 1e3;
    r.stage1_s = 0.8 * r.latency_s;
    r.stage2_s = 0.2 * r.latency_s;
    r.proposals = 100 + static_cast<int>(i);
    r.cpu_temp = cpu_temp;
    r.gpu_temp = gpu_temp;
    r.constraint_s = constraint_ms / 1e3;
    r.throttled = (i % 4 == 0);
    r.energy_j = 4.0;
    r.ambient_c = 25.0;
    r.dataset = "KITTI";
    return r;
}

TEST(Trace, SummaryBasics) {
    Trace t;
    t.add(make_row(0, 400));
    t.add(make_row(1, 500));
    t.add(make_row(2, 300));
    const auto s = t.summary();
    EXPECT_EQ(s.frames, 3u);
    EXPECT_NEAR(s.mean_latency_s, 0.4, 1e-12);
    EXPECT_NEAR(s.std_latency_s, 0.1, 1e-12);
    // 400 and 300 beat the 450 ms constraint; 500 does not.
    EXPECT_NEAR(s.satisfaction_rate, 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(s.mean_device_temp, 65.0, 1e-12);
    EXPECT_NEAR(s.mean_proposals, 101.0, 1e-12);
}

TEST(Trace, SummaryRange) {
    Trace t;
    for (std::size_t i = 0; i < 10; ++i) t.add(make_row(i, 300 + 10 * static_cast<double>(i)));
    const auto full = t.summary();
    const auto tail = t.summary(5, 10);
    EXPECT_EQ(tail.frames, 5u);
    EXPECT_GT(tail.mean_latency_s, full.mean_latency_s);
    EXPECT_THROW((void)t.summary(8, 8), std::invalid_argument);
}

TEST(Trace, PerRowConstraints) {
    // Satisfaction uses each row's own constraint (domain switches change L).
    Trace t;
    t.add(make_row(0, 400, 450)); // satisfied
    t.add(make_row(1, 400, 350)); // violated
    EXPECT_NEAR(t.summary().satisfaction_rate, 0.5, 1e-12);
}

TEST(Trace, ExactBoundaryCountsAsSatisfied) {
    // "<= is satisfied": same boundary rule as util::satisfaction_rate and
    // the serving layer's slo_satisfied.
    Trace t;
    t.add(make_row(0, 450, 450)); // exactly on the constraint
    EXPECT_NEAR(t.summary().satisfaction_rate, 1.0, 1e-12);
}

TEST(Trace, ColumnExtraction) {
    Trace t;
    t.add(make_row(0, 400));
    t.add(make_row(1, 500));
    EXPECT_EQ(t.latencies_ms(), (std::vector<double>{400, 500}));
    EXPECT_EQ(t.device_temps(), (std::vector<double>{65, 65}));
    EXPECT_EQ(t.proposals(), (std::vector<double>{100, 101}));
    EXPECT_NEAR(t.stage2_ms()[0], 80.0, 1e-9);
}

TEST(Trace, ThrottledFraction) {
    Trace t;
    for (std::size_t i = 0; i < 8; ++i) t.add(make_row(i, 400));
    EXPECT_NEAR(t.summary().throttled_fraction, 0.25, 1e-12);
}

TEST(Trace, MeanPowerFromEnergy) {
    Trace t;
    t.add(make_row(0, 400)); // 4 J over 0.4 s -> 10 W
    EXPECT_NEAR(t.summary().mean_power_w, 10.0, 1e-9);
}

TEST(Trace, CsvRoundTrip) {
    Trace t;
    t.add(make_row(0, 400));
    t.add(make_row(1, 500));
    const auto path =
        (std::filesystem::temp_directory_path() / "lotus_trace_test.csv").string();
    t.write_csv(path);
    std::ifstream in(path);
    std::string header;
    std::getline(in, header);
    EXPECT_NE(header.find("latency_ms"), std::string::npos);
    std::string row1;
    std::getline(in, row1);
    EXPECT_NE(row1.find("400"), std::string::npos);
    EXPECT_NE(row1.find("KITTI"), std::string::npos);
    int lines = 2;
    std::string rest;
    while (std::getline(in, rest)) ++lines;
    EXPECT_EQ(lines, 3); // header + 2 rows
    std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Runner.
// ---------------------------------------------------------------------------

ExperimentConfig small_config(std::size_t iterations = 30,
                              std::size_t pretrain = 0) {
    return static_experiment(platform::orin_nano_spec(),
                             detector::DetectorKind::faster_rcnn, "KITTI", iterations,
                             pretrain, /*seed=*/123);
}

TEST(Runner, ProducesRequestedIterations) {
    ExperimentRunner runner(small_config(25));
    governors::FixedGovernor gov(7, 5);
    const auto trace = runner.run(gov);
    ASSERT_EQ(trace.size(), 25u);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(trace[i].iteration, i);
        EXPECT_EQ(trace[i].dataset, "KITTI");
        EXPECT_GT(trace[i].latency_s, 0.0);
    }
}

TEST(Runner, DeterministicAcrossRuns) {
    ExperimentRunner runner(small_config(20));
    governors::FixedGovernor g1(7, 5);
    governors::FixedGovernor g2(7, 5);
    const auto t1 = runner.run(g1);
    const auto t2 = runner.run(g2);
    ASSERT_EQ(t1.size(), t2.size());
    for (std::size_t i = 0; i < t1.size(); ++i) {
        ASSERT_DOUBLE_EQ(t1[i].latency_s, t2[i].latency_s);
        ASSERT_EQ(t1[i].proposals, t2[i].proposals);
    }
}

TEST(Runner, SeedChangesWorkload) {
    auto cfg1 = small_config(20);
    auto cfg2 = small_config(20);
    cfg2.seed = 999;
    governors::FixedGovernor g1(7, 5);
    governors::FixedGovernor g2(7, 5);
    const auto t1 = ExperimentRunner(cfg1).run(g1);
    const auto t2 = ExperimentRunner(cfg2).run(g2);
    int same = 0;
    for (std::size_t i = 0; i < t1.size(); ++i) {
        if (t1[i].proposals == t2[i].proposals) ++same;
    }
    EXPECT_LT(same, 10);
}

TEST(Runner, PretrainResetsDeviceButKeepsStreamPosition) {
    // After pre-training, the measured phase starts from a cold device (the
    // first row's temperature must be near ambient).
    auto cfg = small_config(10, /*pretrain=*/20);
    ExperimentRunner runner(cfg);
    governors::FixedGovernor gov(7, 5);
    const auto trace = runner.run(gov);
    ASSERT_EQ(trace.size(), 10u);
    EXPECT_LT(trace[0].cpu_temp, 40.0) << "device was not reset after pretraining";
    EXPECT_DOUBLE_EQ(trace[0].start_time_s, 0.0);
}

TEST(Runner, DomainScheduleSwitchesDataset) {
    auto cfg = small_config(20);
    cfg.schedule = workload::DomainSchedule::segments({
        {0, "KITTI", 0.45},
        {10, "VisDrone2019", 0.56},
    });
    ExperimentRunner runner(cfg);
    governors::FixedGovernor gov(7, 5);
    const auto trace = runner.run(gov);
    EXPECT_EQ(trace[9].dataset, "KITTI");
    EXPECT_EQ(trace[10].dataset, "VisDrone2019");
    EXPECT_DOUBLE_EQ(trace[10].constraint_s, 0.56);
    // VisDrone frames are slower (bigger input).
    EXPECT_GT(trace[15].stage1_s, trace[5].stage1_s * 1.3);
}

TEST(Runner, AmbientProfileApplied) {
    auto cfg = small_config(20);
    cfg.ambient = workload::AmbientProfile::zones({{0, 25.0}, {10, 0.0}});
    ExperimentRunner runner(cfg);
    governors::FixedGovernor gov(7, 5);
    const auto trace = runner.run(gov);
    EXPECT_DOUBLE_EQ(trace[5].ambient_c, 25.0);
    EXPECT_DOUBLE_EQ(trace[15].ambient_c, 0.0);
}

TEST(Runner, StaticExperimentUsesPresetConstraint) {
    const auto cfg = small_config(5);
    const double expected = workload::latency_constraint_s(
        "jetson-orin-nano", detector::DetectorKind::faster_rcnn, "KITTI");
    EXPECT_DOUBLE_EQ(cfg.schedule.at(0).latency_constraint_s, expected);
}

TEST(Runner, ZeroIterationsRejected) {
    auto cfg = small_config(5);
    cfg.iterations = 0;
    EXPECT_THROW(ExperimentRunner{cfg}, std::invalid_argument);
}

} // namespace
} // namespace lotus::runtime
