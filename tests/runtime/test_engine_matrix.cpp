// Property suite: engine invariants over the full (device x detector x GPU
// level) matrix. These are the guarantees every experiment in the bench
// harness silently relies on.

#include <gtest/gtest.h>

#include <tuple>

#include "governors/linux_governors.hpp"
#include "platform/presets.hpp"
#include "runtime/engine.hpp"

namespace lotus::runtime {
namespace {

using detector::DetectorKind;

using MatrixParam = std::tuple<const char*, DetectorKind>;

class EngineMatrix : public ::testing::TestWithParam<MatrixParam> {
protected:
    static platform::DeviceSpec spec() {
        return std::string(std::get<0>(GetParam())) == "orin"
                   ? platform::orin_nano_spec()
                   : platform::mi11_lite_spec();
    }
    static detector::DetectorModel model() {
        return detector::make_detector(std::get<1>(GetParam()));
    }
    static workload::FrameSample frame(int proposals = 150) {
        workload::FrameSample f;
        f.proposals = proposals;
        return f;
    }
};

TEST_P(EngineMatrix, FrameInvariantsHold) {
    auto device_spec = spec();
    platform::EdgeDevice device(device_spec);
    InferenceEngine engine(device);
    const auto m = model();
    governors::FixedGovernor governor(device_spec.cpu.opp.num_levels() - 1,
                                      device_spec.gpu.opp.num_levels() - 1);

    for (std::size_t i = 0; i < 5; ++i) {
        const auto r = engine.run_frame(m, frame(), governor, 10.0, i);
        ASSERT_GT(r.latency_s, 0.0);
        ASSERT_GT(r.stage1_s, 0.0);
        ASSERT_GE(r.stage2_s, 0.0);
        ASSERT_NEAR(r.latency_s, r.stage1_s + r.stage2_s, 1e-9);
        ASSERT_GT(r.energy_j, 0.0);
        ASSERT_GE(r.cpu_temp, device.ambient());
        ASSERT_GE(r.gpu_temp, device.ambient());
        ASSERT_LT(r.latency_s, 20.0) << "frame latency out of any plausible range";
    }
    // Clock and energy are cumulative and consistent.
    EXPECT_GT(device.now(), 0.0);
    EXPECT_GT(device.energy_joules(), 0.0);
}

TEST_P(EngineMatrix, LatencyMonotoneInGpuLevel) {
    auto device_spec = spec();
    const auto m = model();
    double prev = 1e300;
    for (std::size_t gpu_level = 0; gpu_level < device_spec.gpu.opp.num_levels();
         ++gpu_level) {
        platform::EdgeDevice device(device_spec);
        InferenceEngine engine(device);
        governors::FixedGovernor governor(device_spec.cpu.opp.num_levels() - 1, gpu_level);
        const auto r = engine.run_frame(m, frame(), governor, 10.0, 0);
        ASSERT_LT(r.latency_s, prev)
            << "higher GPU level must not be slower (level " << gpu_level << ")";
        prev = r.latency_s;
    }
}

TEST_P(EngineMatrix, LatencyMonotoneInCpuLevel) {
    auto device_spec = spec();
    const auto m = model();
    double prev = 1e300;
    for (std::size_t cpu_level = 0; cpu_level < device_spec.cpu.opp.num_levels();
         ++cpu_level) {
        platform::EdgeDevice device(device_spec);
        InferenceEngine engine(device);
        governors::FixedGovernor governor(cpu_level, device_spec.gpu.opp.num_levels() - 1);
        const auto r = engine.run_frame(m, frame(), governor, 10.0, 0);
        ASSERT_LE(r.latency_s, prev + 1e-9)
            << "higher CPU level must not be slower (level " << cpu_level << ")";
        prev = r.latency_s;
    }
}

TEST_P(EngineMatrix, EnergyMonotoneInGpuLevelPerFrame) {
    // Power rises superlinearly with level while latency falls sublinearly
    // (memory floor), so the top levels must cost more energy per frame than
    // the mid ladder -- the race-to-idle trade-off the agents navigate.
    auto device_spec = spec();
    const auto m = model();
    const auto n = device_spec.gpu.opp.num_levels();
    auto energy_at = [&](std::size_t level) {
        platform::EdgeDevice device(device_spec);
        InferenceEngine engine(device);
        governors::FixedGovernor governor(device_spec.cpu.opp.num_levels() - 1, level);
        return engine.run_frame(m, frame(), governor, 10.0, 0).energy_j;
    };
    EXPECT_GT(energy_at(n - 1), energy_at(n - 3));
}

TEST_P(EngineMatrix, GovernorTicksReceiveSaneUtilization) {
    auto device_spec = spec();
    platform::EdgeDevice device(device_spec);
    InferenceEngine engine(device);
    const auto m = model();
    const bool orin = device_spec.name.find("orin") != std::string::npos;
    auto governor = orin ? governors::DefaultGovernor::orin_nano()
                         : governors::DefaultGovernor::mi11_lite();
    for (std::size_t i = 0; i < 3; ++i) {
        const auto r = engine.run_frame(m, frame(), governor, 10.0, i);
        ASSERT_GT(r.latency_s, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    DeviceDetectorMatrix, EngineMatrix,
    ::testing::Combine(::testing::Values("orin", "mi11"),
                       ::testing::Values(DetectorKind::faster_rcnn,
                                         DetectorKind::mask_rcnn,
                                         DetectorKind::yolo_v5)),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
        return std::string(std::get<0>(info.param)) + "_" +
               detector::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace lotus::runtime
