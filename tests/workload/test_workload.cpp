// Tests for dataset streams, environment profiles, domain schedules, and
// the per-experiment preset tables.

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"
#include "workload/dataset.hpp"
#include "workload/environment.hpp"
#include "workload/presets.hpp"

namespace lotus::workload {
namespace {

TEST(DatasetSpecs, KittiAndVisdroneDiffer) {
    const auto k = kitti();
    const auto v = visdrone2019();
    EXPECT_EQ(k.name, "KITTI");
    EXPECT_EQ(v.name, "VisDrone2019");
    // VisDrone: higher resolution, more proposals (aerial small objects).
    EXPECT_GT(v.resolution_scale, k.resolution_scale);
    EXPECT_GT(v.proposal_log_mean, k.proposal_log_mean);
}

TEST(DatasetSpecs, LookupByName) {
    EXPECT_EQ(dataset_by_name("KITTI").name, "KITTI");
    EXPECT_EQ(dataset_by_name("kitti").name, "KITTI");
    EXPECT_EQ(dataset_by_name("VisDrone2019").name, "VisDrone2019");
    EXPECT_EQ(dataset_by_name("visdrone").name, "VisDrone2019");
    EXPECT_THROW((void)dataset_by_name("COCO"), std::invalid_argument);
}

TEST(FrameStream, DeterministicForSeed) {
    FrameStream a(kitti(), 7);
    FrameStream b(kitti(), 7);
    for (int i = 0; i < 200; ++i) {
        const auto fa = a.next();
        const auto fb = b.next();
        ASSERT_EQ(fa.proposals, fb.proposals);
        ASSERT_DOUBLE_EQ(fa.jitter, fb.jitter);
        ASSERT_DOUBLE_EQ(fa.complexity, fb.complexity);
    }
}

TEST(FrameStream, DifferentSeedsDiffer) {
    FrameStream a(kitti(), 7);
    FrameStream b(kitti(), 8);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next().proposals == b.next().proposals) ++same;
    }
    EXPECT_LT(same, 30);
}

TEST(FrameStream, ProposalsWithinBounds) {
    const auto spec = visdrone2019();
    FrameStream s(spec, 3);
    for (int i = 0; i < 5000; ++i) {
        const auto f = s.next();
        ASSERT_GE(f.proposals, spec.proposal_min);
        ASSERT_LE(f.proposals, spec.proposal_max);
    }
}

TEST(FrameStream, MarginalMeanNearLogNormalMean) {
    const auto spec = kitti();
    FrameStream s(spec, 11);
    util::RunningStats stats;
    for (int i = 0; i < 20000; ++i) stats.add(s.next().proposals);
    // Clamping trims the tail, so allow a tolerant band around the
    // analytical log-normal mean.
    EXPECT_NEAR(stats.mean(), s.expected_proposals(), s.expected_proposals() * 0.15);
}

TEST(FrameStream, VisdroneHasMoreProposalsThanKitti) {
    FrameStream k(kitti(), 5);
    FrameStream v(visdrone2019(), 5);
    util::RunningStats ks;
    util::RunningStats vs;
    for (int i = 0; i < 5000; ++i) {
        ks.add(k.next().proposals);
        vs.add(v.next().proposals);
    }
    EXPECT_GT(vs.mean(), 1.7 * ks.mean());
}

TEST(FrameStream, TemporalCorrelationFromAr1) {
    // Consecutive frames of a video stream must correlate; shuffled frames
    // must not. Pearson on (x_t, x_{t+1}) should be near ar1_rho.
    FrameStream s(kitti(), 13);
    std::vector<double> xs;
    for (int i = 0; i < 8000; ++i) xs.push_back(s.next().proposals);
    std::vector<double> a(xs.begin(), xs.end() - 1);
    std::vector<double> b(xs.begin() + 1, xs.end());
    const double rho = util::pearson(a, b);
    EXPECT_GT(rho, 0.6);
    EXPECT_LT(rho, 0.95);
}

TEST(FrameStream, JitterCentredOnOne) {
    FrameStream s(kitti(), 17);
    util::RunningStats stats;
    for (int i = 0; i < 10000; ++i) stats.add(s.next().jitter);
    EXPECT_NEAR(stats.mean(), 1.0, 0.01);
    EXPECT_GT(stats.stddev(), 0.005);
    EXPECT_LT(stats.stddev(), 0.06);
}

TEST(FrameStream, IndicesIncrement) {
    FrameStream s(kitti(), 19);
    for (std::size_t i = 0; i < 10; ++i) {
        EXPECT_EQ(s.next().index, i);
    }
    EXPECT_EQ(s.frames_emitted(), 10u);
}

TEST(FrameStream, Validation) {
    auto spec = kitti();
    spec.proposal_max = spec.proposal_min;
    EXPECT_THROW(FrameStream(spec, 1), std::invalid_argument);
    spec = kitti();
    spec.ar1_rho = 1.0;
    EXPECT_THROW(FrameStream(spec, 1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Environments.
// ---------------------------------------------------------------------------

TEST(AmbientProfile, Constant) {
    const auto p = AmbientProfile::constant(25.0);
    EXPECT_DOUBLE_EQ(p.at(0), 25.0);
    EXPECT_DOUBLE_EQ(p.at(99999), 25.0);
}

TEST(AmbientProfile, ZonesFollowBreakpoints) {
    // The Fig. 7a profile: warm -> cold -> warm.
    const auto p = AmbientProfile::zones({{0, 25.0}, {1000, 0.0}, {2000, 25.0}});
    EXPECT_DOUBLE_EQ(p.at(0), 25.0);
    EXPECT_DOUBLE_EQ(p.at(999), 25.0);
    EXPECT_DOUBLE_EQ(p.at(1000), 0.0);
    EXPECT_DOUBLE_EQ(p.at(1999), 0.0);
    EXPECT_DOUBLE_EQ(p.at(2000), 25.0);
    EXPECT_DOUBLE_EQ(p.at(5000), 25.0);
}

TEST(AmbientProfile, ZoneValidation) {
    EXPECT_THROW((void)AmbientProfile::zones({}), std::invalid_argument);
    EXPECT_THROW((void)AmbientProfile::zones({{5, 25.0}}), std::invalid_argument);
    EXPECT_THROW((void)AmbientProfile::zones({{0, 25.0}, {0, 0.0}}),
                 std::invalid_argument);
}

TEST(AmbientProfile, CustomFunction) {
    const auto p = AmbientProfile::custom(
        [](std::size_t i) { return 20.0 + static_cast<double>(i % 3); }, "saw");
    EXPECT_DOUBLE_EQ(p.at(0), 20.0);
    EXPECT_DOUBLE_EQ(p.at(4), 21.0);
    EXPECT_EQ(p.description(), "saw");
    EXPECT_THROW((void)AmbientProfile::custom(nullptr, "x"), std::invalid_argument);
}

TEST(DomainSchedule, ConstantSchedule) {
    const auto s = DomainSchedule::constant("KITTI", 0.45);
    EXPECT_EQ(s.at(0).dataset, "KITTI");
    EXPECT_EQ(s.at(12345).dataset, "KITTI");
    EXPECT_DOUBLE_EQ(s.at(0).latency_constraint_s, 0.45);
    EXPECT_FALSE(s.is_switch_point(0));
    EXPECT_FALSE(s.is_switch_point(100));
}

TEST(DomainSchedule, SegmentsSwitch) {
    // The Fig. 7b schedule: KITTI -> VisDrone with a different constraint.
    const auto s = DomainSchedule::segments({
        {0, "KITTI", 0.45},
        {1500, "VisDrone2019", 0.56},
    });
    EXPECT_EQ(s.at(1499).dataset, "KITTI");
    EXPECT_EQ(s.at(1500).dataset, "VisDrone2019");
    EXPECT_DOUBLE_EQ(s.at(2000).latency_constraint_s, 0.56);
    EXPECT_TRUE(s.is_switch_point(1500));
    EXPECT_FALSE(s.is_switch_point(1499));
}

TEST(DomainSchedule, Validation) {
    EXPECT_THROW((void)DomainSchedule::segments({}), std::invalid_argument);
    EXPECT_THROW((void)DomainSchedule::segments({{5, "KITTI", 0.4}}),
                 std::invalid_argument);
    EXPECT_THROW((void)DomainSchedule::constant("KITTI", 0.0), std::invalid_argument);
    EXPECT_THROW((void)DomainSchedule::segments(
                     {{0, "KITTI", 0.4}, {0, "VisDrone2019", 0.5}}),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Presets.
// ---------------------------------------------------------------------------

TEST(Presets, LatencyConstraintsCoverMatrix) {
    using detector::DetectorKind;
    for (const char* device : {"jetson-orin-nano", "mi-11-lite"}) {
        for (const auto kind : {DetectorKind::faster_rcnn, DetectorKind::mask_rcnn,
                                DetectorKind::yolo_v5}) {
            for (const char* ds : {"KITTI", "VisDrone2019"}) {
                const double L = latency_constraint_s(device, kind, ds);
                ASSERT_GT(L, 0.0);
                ASSERT_LT(L, 10.0);
            }
        }
    }
}

TEST(Presets, ConstraintsScaleWithWorkload) {
    using detector::DetectorKind;
    // VisDrone budgets exceed KITTI budgets; Mi 11 budgets exceed Orin's.
    EXPECT_GT(latency_constraint_s("jetson-orin-nano", DetectorKind::faster_rcnn,
                                   "VisDrone2019"),
              latency_constraint_s("jetson-orin-nano", DetectorKind::faster_rcnn,
                                   "KITTI"));
    EXPECT_GT(
        latency_constraint_s("mi-11-lite", DetectorKind::faster_rcnn, "KITTI"),
        latency_constraint_s("jetson-orin-nano", DetectorKind::faster_rcnn, "KITTI"));
    // MaskRCNN gets more budget than FasterRCNN.
    EXPECT_GT(latency_constraint_s("jetson-orin-nano", DetectorKind::mask_rcnn,
                                   "KITTI"),
              latency_constraint_s("jetson-orin-nano", DetectorKind::faster_rcnn,
                                   "KITTI"));
}

TEST(Presets, UnknownDeviceOrDatasetThrows) {
    using detector::DetectorKind;
    EXPECT_THROW((void)latency_constraint_s("pixel-9", DetectorKind::faster_rcnn,
                                            "KITTI"),
                 std::invalid_argument);
    EXPECT_THROW((void)latency_constraint_s("jetson-orin-nano",
                                            DetectorKind::faster_rcnn, "COCO"),
                 std::invalid_argument);
}

TEST(Presets, Map50MatchesPaperOrdering) {
    using detector::DetectorKind;
    for (const char* ds : {"KITTI", "VisDrone2019"}) {
        const double yolo = map50(DetectorKind::yolo_v5, ds);
        const double frcnn = map50(DetectorKind::faster_rcnn, ds);
        const double mrcnn = map50(DetectorKind::mask_rcnn, ds);
        // Fig. 1: two-stage detectors outscore YOLOv5; MaskRCNN leads.
        EXPECT_GT(frcnn, yolo) << ds;
        EXPECT_GT(mrcnn, frcnn) << ds;
    }
    // Small-object aerial imagery is harder for everyone.
    EXPECT_GT(map50(detector::DetectorKind::faster_rcnn, "KITTI"),
              map50(detector::DetectorKind::faster_rcnn, "VisDrone2019"));
}

} // namespace
} // namespace lotus::workload
