// Tests for the extended Linux-governor family (ondemand, conservative,
// KernelGovernor composite, performance/powersave) and the Double-DQN
// extension of the RL core.

#include <gtest/gtest.h>

#include "governors/linux_governors.hpp"
#include "rl/dqn.hpp"

namespace lotus::governors {
namespace {

TickObservation tick(double now, double cpu_util, std::size_t cpu_level,
                     std::size_t gpu_util_pct = 0) {
    TickObservation t;
    t.now_s = now;
    t.dt_s = 0.02;
    t.cpu_util = cpu_util;
    t.gpu_util = static_cast<double>(gpu_util_pct) / 100.0;
    t.cpu_level = cpu_level;
    t.gpu_level = 2;
    t.cpu_levels = 8;
    t.gpu_levels = 6;
    return t;
}

TEST(OndemandPolicy, JumpsToMaxAboveThreshold) {
    OndemandPolicy p;
    EXPECT_EQ(p.decide(tick(0.0, 0.95, 3)), 7u);
}

TEST(OndemandPolicy, HoldsAfterBurstThenScalesDown) {
    OndemandParams params;
    params.sampling_down_factor = 3;
    OndemandPolicy p(params);
    ASSERT_EQ(p.decide(tick(0.00, 0.95, 3)), 7u);
    // Three hold ticks at low load before scaling down.
    EXPECT_EQ(p.decide(tick(0.02, 0.1, 7)), 7u);
    EXPECT_EQ(p.decide(tick(0.04, 0.1, 7)), 7u);
    EXPECT_EQ(p.decide(tick(0.06, 0.1, 7)), 7u);
    const auto after_hold = p.decide(tick(0.08, 0.1, 7));
    EXPECT_LT(after_hold, 7u);
}

TEST(OndemandPolicy, ProportionalScaleDown) {
    OndemandPolicy p;
    // util 0.4 against 0.8 threshold -> half the ladder.
    const auto level = p.decide(tick(0.0, 0.4, 7));
    EXPECT_GE(level, 3u);
    EXPECT_LE(level, 4u);
}

TEST(ConservativePolicy, MovesOneStepAtATime) {
    ConservativePolicy p;
    auto level = p.decide(tick(0.0, 0.95, 3));
    EXPECT_EQ(level, 4u); // one up
    level = p.decide(tick(0.02, 0.95, level));
    EXPECT_EQ(level, 5u); // one more
    level = p.decide(tick(0.04, 0.05, level));
    EXPECT_EQ(level, 4u); // one down
}

TEST(ConservativePolicy, HoldsInMidBand) {
    ConservativePolicy p;
    const auto l0 = p.decide(tick(0.0, 0.5, 4));
    EXPECT_EQ(l0, 4u);
    EXPECT_EQ(p.decide(tick(0.02, 0.5, l0)), 4u);
}

TEST(ConservativePolicy, SaturatesAtLadderEnds) {
    ConservativePolicy p;
    std::size_t level = 7;
    for (int i = 0; i < 5; ++i) level = p.decide(tick(i * 0.02, 0.99, level));
    EXPECT_EQ(level, 7u);
    ConservativePolicy q;
    level = 0;
    for (int i = 0; i < 5; ++i) level = q.decide(tick(i * 0.02, 0.0, level));
    EXPECT_EQ(level, 0u);
}

class KernelGovernorSuite : public ::testing::TestWithParam<CpuPolicyKind> {};

TEST_P(KernelGovernorSuite, DrivesBothDomainsViaTicks) {
    KernelGovernor gov("test", GetParam(), SimpleOndemandParams{});
    EXPECT_GT(gov.tick_interval_s(), 0.0);
    EXPECT_EQ(gov.decision_overhead_s(), 0.0);
    std::size_t cpu = 2;
    std::size_t gpu = 2;
    for (int i = 0; i < 80; ++i) {
        auto t = tick(i * 0.02, 1.0, cpu, 100);
        t.gpu_level = gpu;
        const auto req = gov.on_tick(t);
        if (req.has_request) {
            cpu = req.cpu;
            gpu = req.gpu;
        }
    }
    EXPECT_EQ(gpu, 5u) << "GPU should reach max under sustained load";
    EXPECT_GE(cpu, 5u) << "CPU should ramp under full utilization";
}

INSTANTIATE_TEST_SUITE_P(AllCpuPolicies, KernelGovernorSuite,
                         ::testing::Values(CpuPolicyKind::schedutil,
                                           CpuPolicyKind::ondemand,
                                           CpuPolicyKind::conservative));

TEST(PerformanceGovernor, PinsTopLevels) {
    PerformanceGovernor gov;
    Observation obs;
    obs.cpu_levels = 8;
    obs.gpu_levels = 6;
    const auto req = gov.on_frame_start(obs);
    ASSERT_TRUE(req.has_request);
    EXPECT_EQ(req.cpu, 7u);
    EXPECT_EQ(req.gpu, 5u);
}

TEST(PowersaveGovernor, PinsBottomLevels) {
    PowersaveGovernor gov;
    Observation obs;
    obs.cpu_levels = 8;
    obs.gpu_levels = 6;
    const auto req = gov.on_frame_start(obs);
    ASSERT_TRUE(req.has_request);
    EXPECT_EQ(req.cpu, 0u);
    EXPECT_EQ(req.gpu, 0u);
}

} // namespace
} // namespace lotus::governors

namespace lotus::rl {
namespace {

MlpConfig toy_net(std::uint64_t seed) {
    MlpConfig cfg;
    cfg.dims = {2, 16, 16, 2};
    cfg.slim_input = false;
    cfg.seed = seed;
    return cfg;
}

TEST(DoubleDqn, ConvergesOnBandit) {
    DqnConfig cfg;
    cfg.gamma = 0.0;
    cfg.double_dqn = true;
    cfg.batch_size = 16;
    DqnCore dqn(toy_net(21), cfg);

    ReplayBuffer buf(128);
    const std::vector<double> s{1.0, 0.0};
    for (int i = 0; i < 128; ++i) {
        Transition t;
        t.state = s;
        t.action = i % 2;
        t.reward = (i % 2 == 0) ? 1.0 : 0.0;
        t.next_state = s;
        t.terminal = true;
        buf.push(std::move(t));
    }
    util::Rng rng(23);
    for (int i = 0; i < 300; ++i) dqn.train_step(buf, rng, 1);
    const auto q = dqn.q_values(s, 1.0);
    EXPECT_GT(q[0], q[1]);
}

TEST(DoubleDqn, TargetsDifferFromVanilla) {
    // With identical seeds/data, double-DQN and vanilla DQN must produce
    // different parameter trajectories (the bootstrap differs whenever the
    // online argmax disagrees with the target argmax).
    ReplayBuffer buf(64);
    util::Rng gen(29);
    for (int i = 0; i < 64; ++i) {
        Transition t;
        t.state = {gen.uniform(), gen.uniform()};
        t.action = static_cast<int>(gen.uniform_int(0, 1));
        t.reward = gen.uniform(-1, 1);
        t.next_state = {gen.uniform(), gen.uniform()};
        buf.push(std::move(t));
    }
    DqnConfig vanilla_cfg;
    DqnConfig double_cfg;
    double_cfg.double_dqn = true;
    DqnCore vanilla(toy_net(31), vanilla_cfg);
    DqnCore doubled(toy_net(31), double_cfg);

    util::Rng r1(37);
    util::Rng r2(37);
    for (int i = 0; i < 60; ++i) {
        vanilla.train_step(buf, r1, 1);
        doubled.train_step(buf, r2, 1);
    }
    const std::vector<double> probe{0.5, 0.5};
    EXPECT_NE(vanilla.q_values(probe, 1.0), doubled.q_values(probe, 1.0));
}

} // namespace
} // namespace lotus::rl
