// Tests for the baseline governor family: Linux kernel policies and zTT.

#include <gtest/gtest.h>

#include <cmath>

#include "governors/linux_governors.hpp"
#include "governors/ztt.hpp"

namespace lotus::governors {
namespace {

TickObservation make_tick(double now, double cpu_util, double gpu_util,
                          std::size_t cpu_level = 4, std::size_t gpu_level = 3) {
    TickObservation t;
    t.now_s = now;
    t.dt_s = 0.02;
    t.cpu_util = cpu_util;
    t.gpu_util = gpu_util;
    t.cpu_temp = 50.0;
    t.gpu_temp = 60.0;
    t.cpu_level = cpu_level;
    t.gpu_level = gpu_level;
    t.cpu_levels = 8;
    t.gpu_levels = 6;
    return t;
}

Observation make_obs(std::size_t cpu_levels = 8, std::size_t gpu_levels = 6) {
    Observation o;
    o.cpu_levels = cpu_levels;
    o.gpu_levels = gpu_levels;
    o.cpu_level = cpu_levels - 1;
    o.gpu_level = gpu_levels - 1;
    o.latency_constraint_s = 0.45;
    o.last_frame_latency_s = 0.40;
    o.cpu_temp = 50.0;
    o.gpu_temp = 60.0;
    return o;
}

TEST(SchedutilPolicy, RampsUpUnderLoad) {
    SchedutilPolicy p;
    std::size_t level = 0;
    for (int i = 0; i < 50; ++i) {
        auto tick = make_tick(i * 0.02, 1.0, 0.0, level);
        level = p.decide(tick);
    }
    EXPECT_EQ(level, 7u) << "full utilization must reach the top level";
}

TEST(SchedutilPolicy, DecaysWhenIdle) {
    SchedutilPolicy p;
    std::size_t level = 7;
    // Load phase to establish a high level.
    for (int i = 0; i < 20; ++i) level = p.decide(make_tick(i * 0.02, 1.0, 0.0, level));
    ASSERT_EQ(level, 7u);
    // Idle for several seconds: the down rate limit allows one step per
    // 100 ms, so after 3 s the level must be far down the ladder.
    for (int i = 0; i < 150; ++i) {
        level = p.decide(make_tick(0.4 + i * 0.02, 0.05, 0.0, level));
    }
    EXPECT_LE(level, 2u);
}

TEST(SchedutilPolicy, DownScalingIsRateLimited) {
    SchedutilPolicy p;
    std::size_t level = 7;
    for (int i = 0; i < 20; ++i) level = p.decide(make_tick(i * 0.02, 1.0, 0.0, level));
    // Two idle ticks 20 ms apart: at most one down-step can happen.
    const auto l1 = p.decide(make_tick(0.42, 0.0, 0.0, level));
    const auto l2 = p.decide(make_tick(0.44, 0.0, 0.0, l1));
    EXPECT_GE(l2 + 1, l1); // dropped at most one level within the window
}

TEST(SchedutilPolicy, HeadroomBiasesUp) {
    // util=0.8 with 1.25 headroom -> target = max level.
    SchedutilPolicy p;
    std::size_t level = 0;
    for (int i = 0; i < 50; ++i) level = p.decide(make_tick(i * 0.02, 0.8, 0.0, level));
    EXPECT_EQ(level, 7u);
}

TEST(SimpleOndemandPolicy, JumpsToMaxAboveThreshold) {
    SimpleOndemandPolicy p;
    std::size_t level = 3;
    for (int i = 0; i < 10; ++i) {
        level = p.decide(make_tick(i * 0.02, 0.0, 1.0, 4, level));
    }
    EXPECT_EQ(level, 5u);
}

TEST(SimpleOndemandPolicy, ScalesDownWhenIdle) {
    SimpleOndemandPolicy p;
    std::size_t level = 5;
    for (int i = 0; i < 50; ++i) {
        level = p.decide(make_tick(i * 0.02, 0.0, 0.05, 4, level));
    }
    EXPECT_LE(level, 1u);
}

TEST(SimpleOndemandPolicy, HoldsInHysteresisBand) {
    SimpleOndemandParams params;
    params.upthreshold = 0.90;
    params.downdifferential = 0.05;
    params.busy_ewma = 1.0; // no smoothing: busy == instantaneous
    SimpleOndemandPolicy p(params);
    // busy = 0.87 sits inside (0.85, 0.90): hold the current level.
    const auto level = p.decide(make_tick(0.0, 0.0, 0.87, 4, 3));
    EXPECT_EQ(level, 3u);
}

TEST(DefaultGovernor, TicksDriveBothDomains) {
    auto gov = DefaultGovernor::orin_nano();
    EXPECT_GT(gov.tick_interval_s(), 0.0);
    EXPECT_EQ(gov.decision_overhead_s(), 0.0) << "kernel governors are free";
    // Sustained GPU load with idle CPU: GPU should head to max, CPU down.
    LevelRequest last;
    std::size_t cpu = 7;
    std::size_t gpu = 0;
    for (int i = 0; i < 100; ++i) {
        auto tick = make_tick(i * 0.02, 0.1, 1.0, cpu, gpu);
        const auto req = gov.on_tick(tick);
        if (req.has_request) {
            cpu = req.cpu;
            gpu = req.gpu;
            last = req;
        }
    }
    EXPECT_EQ(gpu, 5u);
    EXPECT_LE(cpu, 3u);
}

TEST(DefaultGovernor, FrameHooksAreNoOps) {
    auto gov = DefaultGovernor::mi11_lite();
    EXPECT_FALSE(gov.on_frame_start(make_obs()).has_request);
    EXPECT_FALSE(gov.on_post_rpn(make_obs()).has_request);
}

TEST(FixedGovernor, PinsRequestedLevels) {
    FixedGovernor gov(2, 3);
    const auto req = gov.on_frame_start(make_obs());
    ASSERT_TRUE(req.has_request);
    EXPECT_EQ(req.cpu, 2u);
    EXPECT_EQ(req.gpu, 3u);
}

TEST(FixedGovernor, ClampsToLadder) {
    FixedGovernor gov(99, 99);
    const auto req = gov.on_frame_start(make_obs(8, 6));
    EXPECT_EQ(req.cpu, 7u);
    EXPECT_EQ(req.gpu, 5u);
}

TEST(RandomGovernor, CoversActionSpace) {
    RandomGovernor gov(123);
    std::set<std::pair<std::size_t, std::size_t>> seen;
    for (int i = 0; i < 500; ++i) {
        const auto req = gov.on_frame_start(make_obs(4, 3));
        ASSERT_TRUE(req.has_request);
        ASSERT_LT(req.cpu, 4u);
        ASSERT_LT(req.gpu, 3u);
        seen.insert({req.cpu, req.gpu});
    }
    EXPECT_EQ(seen.size(), 12u) << "all 4x3 joint actions should appear";
}

// ---------------------------------------------------------------------------
// zTT.
// ---------------------------------------------------------------------------

ZttConfig test_ztt_config() {
    ZttConfig cfg;
    cfg.t_thres_celsius = 80.0;
    cfg.min_replay = 4;
    cfg.batch_size = 4;
    cfg.seed = 77;
    return cfg;
}

TEST(Ztt, ActsOncePerFrameAtFrameStart) {
    ZttGovernor gov(8, 6, test_ztt_config());
    const auto req = gov.on_frame_start(make_obs());
    EXPECT_TRUE(req.has_request);
    // zTT pre-dates the two-decision design: no post-RPN action.
    EXPECT_FALSE(gov.on_post_rpn(make_obs()).has_request);
    EXPECT_GT(gov.decision_overhead_s(), 0.0);
}

TEST(Ztt, CooldownAlwaysFiresWhenHot) {
    ZttGovernor gov(8, 6, test_ztt_config());
    auto obs = make_obs();
    obs.cpu_temp = 85.0; // above 80 threshold
    obs.cpu_level = 5;
    obs.gpu_level = 4;
    for (int i = 0; i < 50; ++i) {
        const auto req = gov.on_frame_start(obs);
        ASSERT_TRUE(req.has_request);
        // Random *lower* levels, never higher.
        ASSERT_LT(req.cpu, 5u);
        ASSERT_LT(req.gpu, 4u);
    }
    EXPECT_EQ(gov.cooldown_activations(), 50u);
}

TEST(Ztt, CooldownAtLevelZeroStaysZero) {
    ZttGovernor gov(8, 6, test_ztt_config());
    auto obs = make_obs();
    obs.gpu_temp = 90.0;
    obs.cpu_level = 0;
    obs.gpu_level = 0;
    const auto req = gov.on_frame_start(obs);
    EXPECT_EQ(req.cpu, 0u);
    EXPECT_EQ(req.gpu, 0u);
}

TEST(Ztt, RewardPrefersFasterFrames) {
    ZttGovernor gov(8, 6, test_ztt_config());
    const double slow = gov.reward(0.6, 0.45, 50, 60); // misses target
    const double at = gov.reward(0.45, 0.45, 50, 60);
    const double fast = gov.reward(0.30, 0.45, 50, 60);
    EXPECT_GT(at, slow);
    EXPECT_GE(fast, at);
}

TEST(Ztt, RewardPenalizesOverheat) {
    ZttGovernor gov(8, 6, test_ztt_config());
    const double cool = gov.reward(0.4, 0.45, 60, 60);
    const double hot = gov.reward(0.4, 0.45, 85, 60);
    EXPECT_GT(cool, hot);
    EXPECT_LT(hot, 0.5); // the -2 violation term must bite
}

TEST(Ztt, EpsilonDecaysWithFrames) {
    ZttGovernor gov(8, 6, test_ztt_config());
    const double e0 = gov.epsilon();
    FrameOutcome outcome;
    outcome.latency_s = 0.4;
    outcome.latency_constraint_s = 0.45;
    outcome.cpu_temp = 50;
    outcome.gpu_temp = 60;
    for (int i = 0; i < 200; ++i) {
        (void)gov.on_frame_start(make_obs());
        gov.on_frame_end(outcome);
    }
    EXPECT_LT(gov.epsilon(), e0);
    EXPECT_EQ(gov.frames_seen(), 200u);
}

TEST(Ztt, TransitionsAccumulateInReplay) {
    auto cfg = test_ztt_config();
    cfg.train_online = false;
    ZttGovernor gov(8, 6, cfg);
    FrameOutcome outcome;
    outcome.latency_s = 0.4;
    outcome.latency_constraint_s = 0.45;
    outcome.cpu_temp = 50;
    outcome.gpu_temp = 60;
    for (int i = 0; i < 10; ++i) {
        (void)gov.on_frame_start(make_obs());
        gov.on_frame_end(outcome);
    }
    // Transition i completes at frame start i+1: 9 transitions for 10 frames.
    EXPECT_EQ(gov.dqn().updates(), 0u);
}

TEST(Ztt, TrainsOnlineWhenEnabled) {
    auto cfg = test_ztt_config();
    cfg.min_replay = 2;
    ZttGovernor gov(8, 6, cfg);
    FrameOutcome outcome;
    outcome.latency_s = 0.4;
    outcome.latency_constraint_s = 0.45;
    outcome.cpu_temp = 50;
    outcome.gpu_temp = 60;
    for (int i = 0; i < 10; ++i) {
        (void)gov.on_frame_start(make_obs());
        gov.on_frame_end(outcome);
    }
    EXPECT_GT(gov.dqn().updates(), 0u);
}

} // namespace
} // namespace lotus::governors
