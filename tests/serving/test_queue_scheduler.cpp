// Tests for the RequestQueue and the scheduling policies: selection order,
// deterministic tie-breaks, admission-control shedding and the factory.

#include <gtest/gtest.h>

#include <stdexcept>

#include "serving/queue.hpp"
#include "serving/scheduler.hpp"

namespace lotus::serving {
namespace {

Request req(std::size_t id, double arrival_s, double slo_s, std::size_t stream = 0) {
    Request r;
    r.id = id;
    r.stream = stream;
    r.arrival_s = arrival_s;
    r.slo_s = slo_s;
    return r;
}

TEST(RequestQueue, PushTakeAndDepthTracking) {
    RequestQueue q;
    EXPECT_TRUE(q.empty());
    q.push(req(0, 0.0, 1.0));
    q.push(req(1, 0.5, 1.0));
    q.push(req(2, 1.0, 1.0));
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.max_depth(), 3u);

    const auto taken = q.take(1);
    EXPECT_EQ(taken.id, 1u);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.max_depth(), 3u); // high-water mark survives the take
    EXPECT_THROW((void)q.take(2), std::out_of_range);
}

TEST(FifoScheduler, PicksEarliestArrival) {
    RequestQueue q;
    q.push(req(2, 3.0, 1.0));
    q.push(req(0, 1.0, 1.0));
    q.push(req(1, 2.0, 1.0));

    FifoScheduler fifo;
    const auto d = fifo.pick(q, 3.0, 0.4);
    ASSERT_TRUE(d.next.has_value());
    EXPECT_EQ(d.next->id, 0u);
    EXPECT_TRUE(d.shed.empty());
    EXPECT_EQ(q.size(), 2u);
}

TEST(FifoScheduler, TieBreaksOnId) {
    RequestQueue q;
    q.push(req(5, 1.0, 1.0));
    q.push(req(3, 1.0, 1.0));
    FifoScheduler fifo;
    EXPECT_EQ(fifo.pick(q, 1.0, 0.0).next->id, 3u);
}

TEST(EdfScheduler, PicksEarliestDeadline) {
    RequestQueue q;
    q.push(req(0, 0.0, 5.0)); // deadline 5
    q.push(req(1, 1.0, 1.0)); // deadline 2  <- most urgent
    q.push(req(2, 0.5, 3.0)); // deadline 3.5

    EdfScheduler edf;
    const auto d = edf.pick(q, 1.0, 0.4);
    ASSERT_TRUE(d.next.has_value());
    EXPECT_EQ(d.next->id, 1u);
    EXPECT_TRUE(d.shed.empty());
}

TEST(EdfScheduler, NeverSheds) {
    RequestQueue q;
    q.push(req(0, 0.0, 0.1)); // deadline 0.1, hopeless at now=10
    EdfScheduler edf;
    const auto d = edf.pick(q, 10.0, 1.0);
    ASSERT_TRUE(d.next.has_value());
    EXPECT_EQ(d.next->id, 0u);
    EXPECT_TRUE(d.shed.empty());
}

TEST(EdfAdmitScheduler, ShedsExpiredRequests) {
    RequestQueue q;
    q.push(req(0, 0.0, 0.5)); // deadline 0.5 < now -> shed
    q.push(req(1, 0.8, 1.0)); // deadline 1.8 -> feasible

    EdfAdmitScheduler admit;
    const auto d = admit.pick(q, 1.0, 0.0); // no service estimate yet
    ASSERT_TRUE(d.next.has_value());
    EXPECT_EQ(d.next->id, 1u);
    ASSERT_EQ(d.shed.size(), 1u);
    EXPECT_EQ(d.shed[0].id, 0u);
}

TEST(EdfAdmitScheduler, ShedsPredictedMisses) {
    RequestQueue q;
    q.push(req(0, 0.0, 1.2)); // deadline 1.2; now+service = 1.4 -> predicted miss
    q.push(req(1, 0.0, 2.0)); // deadline 2.0 -> feasible

    EdfAdmitScheduler admit;
    const auto d = admit.pick(q, 1.0, 0.4);
    ASSERT_TRUE(d.next.has_value());
    EXPECT_EQ(d.next->id, 1u);
    ASSERT_EQ(d.shed.size(), 1u);
    EXPECT_EQ(d.shed[0].id, 0u);
    EXPECT_TRUE(q.empty());
}

TEST(EdfAdmitScheduler, CanShedEverything) {
    RequestQueue q;
    q.push(req(0, 0.0, 0.1));
    q.push(req(1, 0.0, 0.2));
    EdfAdmitScheduler admit;
    const auto d = admit.pick(q, 5.0, 0.5);
    EXPECT_FALSE(d.next.has_value());
    EXPECT_EQ(d.shed.size(), 2u);
    EXPECT_TRUE(q.empty());
}

TEST(SchedulerFactory, BuildsKnownPolicies) {
    for (const auto& name : scheduler_names()) {
        const auto s = make_scheduler(name);
        EXPECT_EQ(s->name(), name);
    }
    EXPECT_EQ(make_scheduler("edf-admit")->name(), "edf_admit");
    EXPECT_THROW((void)make_scheduler("lifo"), std::invalid_argument);
}

TEST(Schedulers, EmptyQueueYieldsNothing) {
    RequestQueue q;
    for (const auto& name : scheduler_names()) {
        auto s = make_scheduler(name);
        const auto d = s->pick(q, 1.0, 0.5);
        EXPECT_FALSE(d.next.has_value()) << name;
        EXPECT_TRUE(d.shed.empty()) << name;
    }
}

} // namespace
} // namespace lotus::serving
