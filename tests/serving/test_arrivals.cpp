// Tests for the serving arrival processes: determinism in (spec, count,
// seed), ordering, mean-rate preservation and input validation.

#include <gtest/gtest.h>

#include <stdexcept>

#include "serving/arrivals.hpp"

namespace lotus::serving {
namespace {

ArrivalSpec spec_of(ArrivalKind kind, double rate = 2.0) {
    ArrivalSpec s;
    s.kind = kind;
    s.rate_hz = rate;
    return s;
}

const ArrivalKind kAllKinds[] = {ArrivalKind::periodic, ArrivalKind::poisson,
                                 ArrivalKind::bursty, ArrivalKind::diurnal,
                                 ArrivalKind::attack};

TEST(Arrivals, PeriodicIsExact) {
    auto s = spec_of(ArrivalKind::periodic, 4.0);
    s.phase_s = 0.5;
    const auto t = generate_arrivals(s, 5, 1);
    ASSERT_EQ(t.size(), 5u);
    for (std::size_t k = 0; k < t.size(); ++k) {
        EXPECT_DOUBLE_EQ(t[k], 0.5 + static_cast<double>(k) / 4.0);
    }
}

TEST(Arrivals, AllKindsAscendingAndCorrectCount) {
    for (const auto kind : kAllKinds) {
        const auto t = generate_arrivals(spec_of(kind), 200, 7);
        ASSERT_EQ(t.size(), 200u) << to_string(kind);
        for (std::size_t i = 1; i < t.size(); ++i) {
            EXPECT_LE(t[i - 1], t[i]) << to_string(kind) << " index " << i;
        }
        EXPECT_GE(t.front(), 0.0) << to_string(kind);
    }
}

TEST(Arrivals, DeterministicInSeed) {
    for (const auto kind : kAllKinds) {
        const auto a = generate_arrivals(spec_of(kind), 100, 42);
        const auto b = generate_arrivals(spec_of(kind), 100, 42);
        ASSERT_EQ(a, b) << to_string(kind);
    }
}

TEST(Arrivals, SeedChangesStochasticKinds) {
    for (const auto kind : {ArrivalKind::poisson, ArrivalKind::bursty,
                            ArrivalKind::diurnal, ArrivalKind::attack}) {
        const auto a = generate_arrivals(spec_of(kind), 100, 1);
        const auto b = generate_arrivals(spec_of(kind), 100, 2);
        EXPECT_NE(a, b) << to_string(kind);
    }
}

TEST(Arrivals, MeanRatePreserved) {
    // Span of n arrivals at rate r should be ~n/r for every process.
    for (const auto kind : kAllKinds) {
        const auto t = generate_arrivals(spec_of(kind, 2.0), 1000, 3);
        const double span = t.back() - t.front();
        const double expected = 1000.0 / 2.0;
        EXPECT_NEAR(span, expected, 0.35 * expected) << to_string(kind);
    }
}

TEST(Arrivals, BurstyClustersRequests) {
    auto s = spec_of(ArrivalKind::bursty, 1.0);
    s.burst = 5;
    s.burst_spread_s = 0.01;
    const auto t = generate_arrivals(s, 50, 9);
    // Inside a volley consecutive gaps are the tight spread; between
    // volleys they are ~burst/rate. Count tight gaps.
    std::size_t tight = 0;
    for (std::size_t i = 1; i < t.size(); ++i) {
        if (t[i] - t[i - 1] < 0.011) ++tight;
    }
    // 10 volleys of 5 -> 40 intra-volley gaps.
    EXPECT_EQ(tight, 40u);
}

TEST(Arrivals, AttackLeavesQuietGaps) {
    auto s = spec_of(ArrivalKind::attack, 1.0);
    s.burst = 10;
    const auto t = generate_arrivals(s, 100, 11);
    double longest_gap = 0.0;
    for (std::size_t i = 1; i < t.size(); ++i) {
        longest_gap = std::max(longest_gap, t[i] - t[i - 1]);
    }
    // Quiet phases are ~burst/rate = 10 s long (+-30%).
    EXPECT_GT(longest_gap, 5.0);
}

TEST(Arrivals, KindNamesRoundTrip) {
    for (const auto kind : kAllKinds) {
        EXPECT_EQ(arrival_kind_from(to_string(kind)), kind);
    }
    EXPECT_EQ(arrival_kind_from("bursty"), ArrivalKind::bursty);
    EXPECT_THROW((void)arrival_kind_from("sinusoidal"), std::invalid_argument);
}

TEST(Arrivals, RejectsInvalidSpecs) {
    auto bad_rate = spec_of(ArrivalKind::poisson, 0.0);
    EXPECT_THROW((void)generate_arrivals(bad_rate, 10, 1), std::invalid_argument);

    auto bad_burst = spec_of(ArrivalKind::bursty);
    bad_burst.burst = 0;
    EXPECT_THROW((void)generate_arrivals(bad_burst, 10, 1), std::invalid_argument);

    auto bad_floor = spec_of(ArrivalKind::diurnal);
    bad_floor.diurnal_floor = 0.0;
    EXPECT_THROW((void)generate_arrivals(bad_floor, 10, 1), std::invalid_argument);

    auto bad_phase = spec_of(ArrivalKind::periodic);
    bad_phase.phase_s = -1.0;
    EXPECT_THROW((void)generate_arrivals(bad_phase, 10, 1), std::invalid_argument);

    EXPECT_TRUE(generate_arrivals(spec_of(ArrivalKind::periodic), 0, 1).empty());
}

} // namespace
} // namespace lotus::serving
