// SummaryAccumulator edge cases (PR 7 satellite): the streaming summariser
// must stay bit-identical to the ledger-scan arithmetic on the degenerate
// inputs the engine-driven parity tests (test_summary_only.cpp) never hit --
// zero records, all-shed ledgers, and single-sample percentile inputs.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serving/trace.hpp"

namespace lotus::serving {
namespace {

ServingRecord served(std::size_t id, std::size_t stream, double arrival_s,
                     double wait_s, double service_s, double slo_s) {
    ServingRecord r;
    r.request_id = id;
    r.stream = stream;
    r.arrival_s = arrival_s;
    r.start_s = arrival_s + wait_s;
    r.queue_wait_s = wait_s;
    r.service_s = service_s;
    r.e2e_s = wait_s + service_s;
    r.slo_s = slo_s;
    r.missed = !slo_satisfied(r.e2e_s, slo_s);
    r.cpu_temp = 40.0 + static_cast<double>(id);
    r.gpu_temp = 44.0 + static_cast<double>(id);
    r.energy_j = 0.5 + 0.1 * static_cast<double>(id);
    return r;
}

ServingRecord shed(std::size_t id, std::size_t stream, double arrival_s, double wait_s) {
    auto r = served(id, stream, arrival_s, wait_s, 0.0, 0.3);
    r.service_s = 0.0;
    r.e2e_s = wait_s;
    r.shed = true;
    r.missed = true;
    r.energy_j = 0.0;
    return r;
}

TEST(SummaryAccumulator, EmptyStreamSummarisesToZeros) {
    const SummaryAccumulator acc;
    const auto s = acc.summarize("idle_cam", 12.0);
    EXPECT_EQ(s.stream, "idle_cam");
    EXPECT_EQ(s.requests, 0u);
    EXPECT_EQ(s.served, 0u);
    EXPECT_EQ(s.shed, 0u);
    EXPECT_EQ(s.missed, 0u);
    EXPECT_EQ(s.p50_ms, 0.0);
    EXPECT_EQ(s.p99_ms, 0.0);
    EXPECT_EQ(s.miss_rate, 0.0);
    EXPECT_EQ(s.throughput_rps, 0.0);
    EXPECT_EQ(s.energy_per_req_j, 0.0);
    EXPECT_EQ(s.mean_device_temp_c, 0.0);
    EXPECT_EQ(s.peak_device_temp_c, 0.0);
}

TEST(SummaryAccumulator, AllShedLedgerHasNoLatencyButFullMissRate) {
    SummaryAccumulator acc;
    for (std::size_t i = 0; i < 4; ++i) {
        acc.add(shed(i, 0, 0.1 * static_cast<double>(i), 0.2));
    }
    const auto s = acc.summarize("overload", 5.0);
    EXPECT_EQ(s.requests, 4u);
    EXPECT_EQ(s.served, 0u);
    EXPECT_EQ(s.shed, 4u);
    EXPECT_EQ(s.missed, 4u);
    EXPECT_EQ(s.miss_rate, 1.0);
    EXPECT_EQ(s.shed_rate, 1.0);
    // No served sample: percentiles, wait, throughput and energy all stay
    // zero instead of dividing by nothing.
    EXPECT_EQ(s.p50_ms, 0.0);
    EXPECT_EQ(s.p95_ms, 0.0);
    EXPECT_EQ(s.mean_wait_ms, 0.0);
    EXPECT_EQ(s.throughput_rps, 0.0);
    EXPECT_EQ(s.energy_per_req_j, 0.0);
    // Device temperature is still observed at shed time.
    EXPECT_GT(s.mean_device_temp_c, 0.0);
    EXPECT_EQ(s.peak_device_temp_c, 0.5 * ((40.0 + 3) + (44.0 + 3)));
}

TEST(SummaryAccumulator, SingleRequestCollapsesPercentiles) {
    SummaryAccumulator acc;
    acc.add(served(9, 0, 1.0, 0.05, 0.15, 0.9));
    const auto s = acc.summarize("solo", 4.0);
    EXPECT_EQ(s.requests, 1u);
    EXPECT_EQ(s.served, 1u);
    // One sample: every percentile is that sample.
    EXPECT_EQ(s.p50_ms, 200.0);
    EXPECT_EQ(s.p95_ms, 200.0);
    EXPECT_EQ(s.p99_ms, 200.0);
    EXPECT_EQ(s.mean_wait_ms, 50.0);
    EXPECT_EQ(s.miss_rate, 0.0);
    EXPECT_EQ(s.throughput_rps, 0.25);
    EXPECT_EQ(s.energy_per_req_j, 0.5 + 0.9);
}

TEST(SummaryAccumulator, ZeroMakespanYieldsZeroThroughput) {
    SummaryAccumulator acc;
    acc.add(served(1, 0, 0.0, 0.0, 0.1, 0.9));
    EXPECT_EQ(acc.summarize("all", 0.0).throughput_rps, 0.0);
}

TEST(SummaryAccumulator, MatchesLedgerScanOnMixedSyntheticRows) {
    // Hand-crafted rows (out-of-order latencies, a shed, a miss) pushed
    // through both paths of the same ServingTrace shape.
    std::vector<ServingRecord> rows;
    rows.push_back(served(0, 0, 0.0, 0.02, 0.30, 0.9));
    rows.push_back(served(1, 1, 0.1, 0.40, 0.70, 0.9)); // e2e 1.1 > slo: miss
    rows.push_back(shed(2, 0, 0.2, 0.25));
    rows.push_back(served(3, 1, 0.3, 0.00, 0.10, 0.9));
    rows.push_back(served(4, 0, 0.4, 0.05, 0.45, 0.9));

    ServingTrace full({"cam0", "cam1"}, /*capture_rows=*/true);
    ServingTrace fast({"cam0", "cam1"}, /*capture_rows=*/false);
    for (const auto& r : rows) {
        full.add(r);
        fast.add(r);
    }
    for (auto* t : {&full, &fast}) {
        t->set_makespan(2.5);
        t->set_total_energy(7.0);
    }

    const auto full_sums = full.all_summaries();
    const auto fast_sums = fast.all_summaries();
    ASSERT_EQ(full_sums.size(), fast_sums.size());
    for (std::size_t i = 0; i < full_sums.size(); ++i) {
        const auto& a = full_sums[i];
        const auto& b = fast_sums[i];
        EXPECT_EQ(a.stream, b.stream);
        EXPECT_EQ(a.requests, b.requests);
        EXPECT_EQ(a.served, b.served);
        EXPECT_EQ(a.shed, b.shed);
        EXPECT_EQ(a.missed, b.missed);
        // Exact double equality: same arithmetic, same order, same bits.
        EXPECT_EQ(a.p50_ms, b.p50_ms) << a.stream;
        EXPECT_EQ(a.p95_ms, b.p95_ms) << a.stream;
        EXPECT_EQ(a.p99_ms, b.p99_ms) << a.stream;
        EXPECT_EQ(a.mean_wait_ms, b.mean_wait_ms) << a.stream;
        EXPECT_EQ(a.miss_rate, b.miss_rate) << a.stream;
        EXPECT_EQ(a.shed_rate, b.shed_rate) << a.stream;
        EXPECT_EQ(a.throughput_rps, b.throughput_rps) << a.stream;
        EXPECT_EQ(a.energy_per_req_j, b.energy_per_req_j) << a.stream;
        EXPECT_EQ(a.mean_device_temp_c, b.mean_device_temp_c) << a.stream;
        EXPECT_EQ(a.peak_device_temp_c, b.peak_device_temp_c) << a.stream;
    }
}

} // namespace
} // namespace lotus::serving
