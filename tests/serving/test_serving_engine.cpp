// Tests for the ServingEngine: request-timeline construction, conservation
// of requests (served + shed == offered), end-to-end latency accounting
// (queue wait visible to the governor's reward), thermal carry-over across
// interleaved streams, admission-control behaviour under overload, and the
// per-stream/aggregate summaries.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "governors/linux_governors.hpp"
#include "platform/presets.hpp"
#include "serving/engine.hpp"
#include "serving/scheduler.hpp"
#include "util/stats.hpp"

namespace lotus::serving {
namespace {

/// Records every FrameOutcome the engine reports (to observe what a
/// learning governor would see), otherwise pins levels like FixedGovernor.
class OutcomeSpy final : public governors::Governor {
public:
    [[nodiscard]] std::string name() const override { return "spy"; }
    governors::LevelRequest on_frame_start(const governors::Observation& obs) override {
        last_observation = obs;
        return governors::LevelRequest::set(5, 3);
    }
    void on_frame_end(const governors::FrameOutcome& outcome) override {
        outcomes.push_back(outcome);
    }

    std::vector<governors::FrameOutcome> outcomes;
    governors::Observation last_observation;
};

ServingConfig base_config(std::size_t streams, std::size_t requests, double rate_hz,
                          ArrivalKind kind = ArrivalKind::periodic,
                          double slo_s = 2.0) {
    ServingConfig cfg(platform::orin_nano_spec());
    for (std::size_t i = 0; i < streams; ++i) {
        StreamSpec s;
        s.name = "s" + std::to_string(i);
        s.dataset = "KITTI";
        s.slo_s = slo_s;
        s.requests = requests;
        s.arrival.kind = kind;
        s.arrival.rate_hz = rate_hz;
        s.arrival.phase_s = 0.3 * static_cast<double>(i);
        cfg.streams.push_back(std::move(s));
    }
    cfg.scheduler = "edf";
    cfg.seed = 5;
    return cfg;
}

TEST(ServingEngine, ValidatesConfig) {
    ServingConfig empty(platform::orin_nano_spec());
    EXPECT_THROW((void)ServingEngine(empty), std::invalid_argument);

    auto zero_requests = base_config(1, 1, 1.0);
    zero_requests.streams[0].requests = 0;
    EXPECT_THROW((void)ServingEngine(zero_requests), std::invalid_argument);

    auto bad_slo = base_config(1, 1, 1.0);
    bad_slo.streams[0].slo_s = 0.0;
    EXPECT_THROW((void)ServingEngine(bad_slo), std::invalid_argument);

    auto bad_dataset = base_config(1, 1, 1.0);
    bad_dataset.streams[0].dataset = "COCO";
    EXPECT_THROW((void)ServingEngine(bad_dataset), std::invalid_argument);

    auto bad_scheduler = base_config(1, 1, 1.0);
    bad_scheduler.scheduler = "lifo";
    EXPECT_THROW((void)ServingEngine(bad_scheduler), std::invalid_argument);
}

TEST(ServingEngine, BuildsMergedTimeline) {
    const ServingEngine engine(base_config(3, 4, 1.0));
    const auto requests = engine.build_requests();
    ASSERT_EQ(requests.size(), 12u);
    std::size_t per_stream[3] = {0, 0, 0};
    for (std::size_t i = 0; i < requests.size(); ++i) {
        EXPECT_EQ(requests[i].id, i);
        if (i > 0) {
            EXPECT_LE(requests[i - 1].arrival_s, requests[i].arrival_s);
        }
        ASSERT_LT(requests[i].stream, 3u);
        ++per_stream[requests[i].stream];
        EXPECT_DOUBLE_EQ(requests[i].slo_s, 2.0);
    }
    for (const auto n : per_stream) EXPECT_EQ(n, 4u);
}

TEST(ServingEngine, ConservesRequestsAndSummaries) {
    // Overloaded on purpose: 2 streams x 1 Hz against ~0.35 s service.
    auto cfg = base_config(2, 10, 1.0, ArrivalKind::periodic, /*slo=*/0.8);
    cfg.scheduler = "edf_admit";
    const ServingEngine engine(cfg);
    governors::FixedGovernor governor(5, 3);
    const auto trace = engine.run(governor);

    ASSERT_EQ(trace.size(), 20u);
    const auto agg = trace.aggregate();
    EXPECT_EQ(agg.requests, 20u);
    EXPECT_EQ(agg.served + agg.shed, 20u);
    EXPECT_EQ(agg.stream, "all");
    const auto s0 = trace.stream_summary(0);
    const auto s1 = trace.stream_summary(1);
    EXPECT_EQ(s0.requests + s1.requests, 20u);
    EXPECT_GT(trace.makespan_s(), 0.0);
    EXPECT_GT(trace.total_energy_j(), 0.0);
    EXPECT_GE(trace.max_queue_depth(), 1u);

    for (const auto& r : trace.records()) {
        if (r.shed) {
            EXPECT_TRUE(r.missed);
            EXPECT_EQ(r.service_s, 0.0);
        } else {
            EXPECT_NEAR(r.e2e_s, r.queue_wait_s + r.service_s, 1e-12);
            EXPECT_EQ(r.missed, r.e2e_s > r.slo_s);
        }
        EXPECT_GE(r.queue_wait_s, 0.0);
        EXPECT_GE(r.start_s, r.arrival_s - 1e-9);
    }
}

TEST(ServingEngine, LightLoadMeetsEveryDeadline) {
    // 2 streams x 0.2 Hz: the device is idle most of the time.
    const ServingEngine engine(base_config(2, 5, 0.2));
    governors::PerformanceGovernor governor;
    const auto trace = engine.run(governor);
    const auto agg = trace.aggregate();
    EXPECT_EQ(agg.served, 10u);
    EXPECT_EQ(agg.missed, 0u);
    EXPECT_EQ(agg.shed, 0u);
    EXPECT_LT(agg.mean_wait_ms, 50.0);
    EXPECT_GT(agg.p50_ms, 0.0);
    EXPECT_LE(agg.p50_ms, agg.p95_ms);
    EXPECT_LE(agg.p95_ms, agg.p99_ms);
}

TEST(ServingEngine, GovernorSeesEndToEndLatency) {
    // Saturated FIFO queue: later requests wait, and the governor's
    // FrameOutcome must include that wait (queue time burns the deadline).
    auto cfg = base_config(2, 8, 1.0, ArrivalKind::periodic, /*slo=*/0.7);
    cfg.scheduler = "fifo";
    const ServingEngine engine(cfg);
    OutcomeSpy spy;
    const auto trace = engine.run(spy);

    ASSERT_EQ(spy.outcomes.size(), trace.aggregate().served);
    double max_wait = 0.0;
    for (const auto& o : spy.outcomes) {
        EXPECT_NEAR(o.latency_s, o.queue_wait_s + (o.stage1_latency_s + o.stage2_latency_s),
                    0.05 * o.latency_s);
        max_wait = std::max(max_wait, o.queue_wait_s);
    }
    // The overload actually produced queueing, so the property is non-vacuous.
    EXPECT_GT(max_wait, 0.05);
}

TEST(ServingEngine, ThermalStateCarriesAcrossStreams) {
    auto cfg = base_config(4, 6, 0.8);
    const ServingEngine engine(cfg);
    governors::PerformanceGovernor governor;
    const auto trace = engine.run(governor);
    // Back-to-back max-frequency service heats the device well above the
    // 25 C ambient; the later records see the heat the earlier ones left.
    const auto& first = trace.records().front();
    const auto& last = trace.records().back();
    EXPECT_GT(0.5 * (last.cpu_temp + last.gpu_temp),
              0.5 * (first.cpu_temp + first.gpu_temp));
    EXPECT_GT(trace.aggregate().peak_device_temp_c, 30.0);
}

TEST(ServingEngine, AdmissionControlShedsUnderOverloadFifoDoesNot) {
    auto cfg = base_config(3, 10, 1.2, ArrivalKind::bursty, /*slo=*/0.6);
    cfg.scheduler = "fifo";
    governors::FixedGovernor fifo_governor(5, 3);
    const auto fifo_trace = ServingEngine(cfg).run(fifo_governor);
    EXPECT_EQ(fifo_trace.aggregate().shed, 0u);
    EXPECT_GT(fifo_trace.aggregate().missed, 0u);

    cfg.scheduler = "edf_admit";
    governors::FixedGovernor admit_governor(5, 3);
    const auto admit_trace = ServingEngine(cfg).run(admit_governor);
    EXPECT_GT(admit_trace.aggregate().shed, 0u);
    // Shedding must not lose requests: ledger still covers the full load.
    EXPECT_EQ(admit_trace.size(), 30u);
}

TEST(SloBoundary, ExactlyOnSloIsSatisfied) {
    // One boundary rule across the repo: "<= limit is satisfied". The
    // serving ledger (missed = !slo_satisfied) and the experiment tables
    // (util::satisfaction_rate) must agree on the exact-boundary case.
    EXPECT_TRUE(slo_satisfied(2.0, 2.0));
    EXPECT_TRUE(slo_satisfied(1.999, 2.0));
    EXPECT_FALSE(slo_satisfied(std::nextafter(2.0, 3.0), 2.0));
    EXPECT_DOUBLE_EQ(util::satisfaction_rate({2.0}, 2.0), 1.0);
    EXPECT_DOUBLE_EQ(util::satisfaction_rate({std::nextafter(2.0, 3.0)}, 2.0), 0.0);
}

TEST(ServingEngine, ReportsThermalSteps) {
    const ServingEngine engine(base_config(1, 3, 0.5));
    governors::FixedGovernor governor(5, 3);
    const auto trace = engine.run(governor);
    EXPECT_GT(trace.thermal_steps(), 0u);
}

TEST(ServingTrace, RejectsUnknownStreamIndex) {
    ServingTrace trace(std::vector<std::string>{"a"});
    ServingRecord r;
    r.stream = 1;
    EXPECT_THROW(trace.add(std::move(r)), std::out_of_range);
    EXPECT_THROW((void)trace.stream_summary(1), std::out_of_range);
}

} // namespace
} // namespace lotus::serving
