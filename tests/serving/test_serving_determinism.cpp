// Serving determinism (mirrors tests/harness/test_harness_parallel.cpp):
// the same seed and the same --jobs count must produce a byte-identical
// ServingTrace -- and so must *different* jobs counts, because episode seeds
// derive from episode identity, never from scheduling order.

#include <gtest/gtest.h>

#include "governors/linux_governors.hpp"
#include "harness/harness.hpp"
#include "platform/presets.hpp"
#include "serving/engine.hpp"

namespace lotus::serving {
namespace {

ServingConfig small_config() {
    ServingConfig cfg(platform::orin_nano_spec());
    for (int i = 0; i < 3; ++i) {
        StreamSpec s;
        s.name = "cam" + std::to_string(i);
        s.dataset = (i == 2) ? "VisDrone2019" : "KITTI";
        s.slo_s = 0.9;
        s.requests = 8;
        s.arrival.kind = (i == 1) ? ArrivalKind::bursty : ArrivalKind::poisson;
        s.arrival.rate_hz = 0.8;
        s.arrival.phase_s = 0.4 * i;
        cfg.streams.push_back(std::move(s));
    }
    cfg.scheduler = "edf_admit";
    cfg.seed = 77;
    return cfg;
}

harness::Scenario serving_scenario(const std::string& name) {
    const auto spec = platform::orin_nano_spec();
    harness::Scenario s(runtime::static_experiment(
        spec, detector::DetectorKind::faster_rcnn, "KITTI", 1, 0));
    s.name = name;
    s.title = name;
    s.serving = small_config();
    s.arms.push_back(harness::default_arm(spec));
    s.arms.push_back(harness::fixed_arm(5, 3));
    s.arms.push_back(harness::ztt_arm(spec));
    return s;
}

void expect_traces_identical(const ServingTrace& a, const ServingTrace& b,
                             const std::string& label) {
    ASSERT_EQ(a.size(), b.size()) << label;
    ASSERT_EQ(a.stream_names(), b.stream_names()) << label;
    EXPECT_EQ(a.makespan_s(), b.makespan_s()) << label;
    EXPECT_EQ(a.total_energy_j(), b.total_energy_j()) << label;
    EXPECT_EQ(a.max_queue_depth(), b.max_queue_depth()) << label;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto& x = a[i];
        const auto& y = b[i];
        ASSERT_EQ(x.request_id, y.request_id) << label << " row " << i;
        ASSERT_EQ(x.stream, y.stream) << label << " row " << i;
        ASSERT_EQ(x.arrival_s, y.arrival_s) << label << " row " << i;
        ASSERT_EQ(x.start_s, y.start_s) << label << " row " << i;
        ASSERT_EQ(x.queue_wait_s, y.queue_wait_s) << label << " row " << i;
        ASSERT_EQ(x.service_s, y.service_s) << label << " row " << i;
        ASSERT_EQ(x.e2e_s, y.e2e_s) << label << " row " << i;
        ASSERT_EQ(x.slo_s, y.slo_s) << label << " row " << i;
        ASSERT_EQ(x.shed, y.shed) << label << " row " << i;
        ASSERT_EQ(x.missed, y.missed) << label << " row " << i;
        ASSERT_EQ(x.throttled, y.throttled) << label << " row " << i;
        ASSERT_EQ(x.proposals, y.proposals) << label << " row " << i;
        ASSERT_EQ(x.cpu_temp, y.cpu_temp) << label << " row " << i;
        ASSERT_EQ(x.gpu_temp, y.gpu_temp) << label << " row " << i;
        ASSERT_EQ(x.energy_j, y.energy_j) << label << " row " << i;
    }
}

TEST(ServingDeterminism, EngineRepeatsByteIdentically) {
    const ServingEngine engine(small_config());
    governors::FixedGovernor g1(5, 3);
    governors::FixedGovernor g2(5, 3);
    expect_traces_identical(engine.run(g1), engine.run(g2), "repeat");
}

TEST(ServingDeterminism, InstanceNamespaceDecorrelatesIdenticalConfigs) {
    // Seed-collision regression (fleet satellite): two engines replaying the
    // SAME stream configs for DIFFERENT physical devices must not draw
    // identical arrival/frame randomness -- the instance id namespaces every
    // derive_seed call.
    auto cfg = small_config();
    cfg.instance = "dev0";
    const auto dev0 = ServingEngine(cfg).build_requests();
    cfg.instance = "dev1";
    const auto dev1 = ServingEngine(cfg).build_requests();
    ASSERT_EQ(dev0.size(), dev1.size());
    bool arrivals_differ = false;
    bool frames_differ = false;
    for (std::size_t i = 0; i < dev0.size(); ++i) {
        arrivals_differ = arrivals_differ || dev0[i].arrival_s != dev1[i].arrival_s;
        frames_differ = frames_differ || dev0[i].frame.proposals != dev1[i].frame.proposals;
    }
    EXPECT_TRUE(arrivals_differ);
    EXPECT_TRUE(frames_differ);

    // Same instance -> byte-identical timeline; and the empty instance
    // reproduces the historical (pre-namespace) derivation.
    cfg.instance = "dev0";
    const auto again = ServingEngine(cfg).build_requests();
    for (std::size_t i = 0; i < dev0.size(); ++i) {
        ASSERT_EQ(dev0[i].arrival_s, again[i].arrival_s);
    }
    cfg.instance.clear();
    const auto bare = ServingEngine(cfg).build_requests();
    const auto legacy = build_request_timeline(cfg.streams, cfg.seed);
    ASSERT_EQ(bare.size(), legacy.size());
    for (std::size_t i = 0; i < bare.size(); ++i) {
        ASSERT_EQ(bare[i].arrival_s, legacy[i].arrival_s);
    }
}

TEST(ServingDeterminism, SeedChangesTheTimeline) {
    auto cfg = small_config();
    const auto a = ServingEngine(cfg).build_requests();
    cfg.seed = 78;
    const auto b = ServingEngine(cfg).build_requests();
    ASSERT_EQ(a.size(), b.size());
    bool any_different = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        any_different = any_different || a[i].arrival_s != b[i].arrival_s;
    }
    EXPECT_TRUE(any_different);
}

TEST(ServingDeterminism, ParallelHarnessEqualsSerial) {
    const auto scenario = serving_scenario("serving_parallel_vs_serial");
    const auto serial = harness::ExperimentHarness({.jobs = 1, .seed = 7}).run(scenario);
    const auto parallel = harness::ExperimentHarness({.jobs = 4, .seed = 7}).run(scenario);

    ASSERT_EQ(serial.size(), scenario.arms.size());
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].arm, parallel[i].arm);
        EXPECT_EQ(serial[i].episode_seed, parallel[i].episode_seed);
        ASSERT_TRUE(serial[i].serving_trace.has_value());
        ASSERT_TRUE(parallel[i].serving_trace.has_value());
        expect_traces_identical(*serial[i].serving_trace, *parallel[i].serving_trace,
                                serial[i].arm);
    }
}

TEST(ServingDeterminism, HarnessRepeatsAcrossRuns) {
    const auto scenario = serving_scenario("serving_repeat");
    const harness::ExperimentHarness harness({.jobs = 3, .seed = 11});
    const auto first = harness.run(scenario);
    const auto second = harness.run(scenario);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        expect_traces_identical(*first[i].serving_trace, *second[i].serving_trace,
                                first[i].arm);
    }
}

TEST(ServingDeterminism, ServingTweakAppliesPerEpisode) {
    auto scenario = serving_scenario("serving_tweak");
    scenario.arms.clear();
    scenario.arms.push_back(harness::fixed_arm(5, 3));
    auto fifo = harness::fixed_arm(5, 3);
    fifo.name = "fixed+fifo";
    fifo.serving_tweak = [](ServingConfig& cfg) { cfg.scheduler = "fifo"; };
    scenario.arms.push_back(std::move(fifo));

    const auto results = harness::ExperimentHarness({.jobs = 2, .seed = 9}).run(scenario);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].serving_config->scheduler, "edf_admit");
    EXPECT_EQ(results[1].serving_config->scheduler, "fifo");
    // The tweak applied to a copy: the shared scenario config is intact.
    EXPECT_EQ(scenario.serving->scheduler, "edf_admit");
}

} // namespace
} // namespace lotus::serving
