// Edge-case contracts for the arrival processes: zero-count requests,
// extreme rates, and the streaming ArrivalGenerator's equivalence with the
// materialising generate_arrivals.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "serving/arrivals.hpp"

namespace lotus::serving {
namespace {

ArrivalSpec spec_of(ArrivalKind kind, double rate) {
    ArrivalSpec s;
    s.kind = kind;
    s.rate_hz = rate;
    return s;
}

const ArrivalKind kAllKinds[] = {ArrivalKind::periodic, ArrivalKind::poisson,
                                 ArrivalKind::bursty, ArrivalKind::diurnal,
                                 ArrivalKind::attack};

TEST(ArrivalsEdge, ZeroCountYieldsEmptyTimeline) {
    for (const auto kind : kAllKinds) {
        const auto t = generate_arrivals(spec_of(kind, 2.0), 0, 3);
        EXPECT_TRUE(t.empty()) << to_string(kind);
    }
}

TEST(ArrivalsEdge, ExtremeRatesStayAscendingAndFinite) {
    for (const auto kind : kAllKinds) {
        for (const double rate : {1e-6, 1e6, 1e9}) {
            auto s = spec_of(kind, rate);
            s.burst = 16;
            const auto t = generate_arrivals(s, 500, 11);
            ASSERT_EQ(t.size(), 500u) << to_string(kind) << " @ " << rate;
            EXPECT_GE(t.front(), 0.0) << to_string(kind) << " @ " << rate;
            for (std::size_t i = 0; i < t.size(); ++i) {
                ASSERT_TRUE(std::isfinite(t[i]))
                    << to_string(kind) << " @ " << rate << " index " << i;
                if (i > 0) {
                    ASSERT_LE(t[i - 1], t[i])
                        << to_string(kind) << " @ " << rate << " index " << i;
                }
            }
        }
    }
}

TEST(ArrivalsEdge, TinyBurstAndSingleRequest) {
    for (const auto kind : kAllKinds) {
        auto s = spec_of(kind, 0.5);
        s.burst = 1;
        const auto t = generate_arrivals(s, 1, 5);
        ASSERT_EQ(t.size(), 1u) << to_string(kind);
        EXPECT_TRUE(std::isfinite(t[0])) << to_string(kind);
        EXPECT_GE(t[0], 0.0) << to_string(kind);
    }
}

TEST(ArrivalsEdge, LargePhaseOffsetsShiftNotScramble) {
    for (const auto kind : kAllKinds) {
        auto s = spec_of(kind, 2.0);
        s.phase_s = 1e6;
        const auto t = generate_arrivals(s, 100, 9);
        ASSERT_EQ(t.size(), 100u) << to_string(kind);
        EXPECT_GE(t.front(), 0.0) << to_string(kind);
        for (std::size_t i = 1; i < t.size(); ++i) {
            ASSERT_LE(t[i - 1], t[i]) << to_string(kind) << " index " << i;
        }
    }
}

TEST(ArrivalsEdge, GeneratorDrainEqualsGenerateArrivals) {
    // The streaming generator IS the definition of generate_arrivals now;
    // pin the equivalence anyway so a drift in either path is caught.
    for (const auto kind : kAllKinds) {
        for (const double rate : {0.25, 2.0, 50.0}) {
            const auto s = spec_of(kind, rate);
            const auto expected = generate_arrivals(s, 300, 21);
            ArrivalGenerator gen(s, 300, 21);
            for (std::size_t i = 0; i < expected.size(); ++i) {
                EXPECT_DOUBLE_EQ(gen.next(), expected[i])
                    << to_string(kind) << " @ " << rate << " index " << i;
            }
        }
    }
}

TEST(ArrivalsEdge, ValidationStillRejectsBadSpecs) {
    EXPECT_THROW((void)generate_arrivals(spec_of(ArrivalKind::poisson, 0.0), 10, 1),
                 std::invalid_argument);
    EXPECT_THROW((void)generate_arrivals(spec_of(ArrivalKind::poisson, -1.0), 10, 1),
                 std::invalid_argument);
    auto s = spec_of(ArrivalKind::bursty, 1.0);
    s.burst = 0;
    EXPECT_THROW((void)generate_arrivals(s, 10, 1), std::invalid_argument);
}

} // namespace
} // namespace lotus::serving
