// Tests for the result sinks: the JSON document writer (escaping, structure,
// serving vs experiment shapes) and the CSV sink's quoting/collision
// behaviour for scenario and arm names containing commas and quotes.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "harness/harness.hpp"
#include "harness/sinks.hpp"
#include "platform/presets.hpp"

namespace lotus::harness {
namespace {

namespace fs = std::filesystem;

/// Minimal RFC 4180 reader: parses one CSV file into rows of fields,
/// honouring quoted fields with embedded commas, quotes and newlines.
std::vector<std::vector<std::string>> parse_csv(const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> row;
    std::string field;
    bool quoted = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (quoted) {
            if (c == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    field.push_back('"');
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                field.push_back(c);
            }
        } else if (c == '"') {
            quoted = true;
        } else if (c == ',') {
            row.push_back(std::move(field));
            field.clear();
        } else if (c == '\n') {
            row.push_back(std::move(field));
            field.clear();
            rows.push_back(std::move(row));
            row.clear();
        } else {
            field.push_back(c);
        }
    }
    if (!field.empty() || !row.empty()) {
        row.push_back(std::move(field));
        rows.push_back(std::move(row));
    }
    return rows;
}

/// A tiny experiment scenario whose names abuse CSV metacharacters.
Scenario nasty_scenario() {
    const auto spec = platform::orin_nano_spec();
    Scenario s(runtime::static_experiment(spec, detector::DetectorKind::faster_rcnn,
                                          "KITTI", 4, 0));
    s.name = "weird, \"scenario\"";
    s.title = "Weird, “quoted” scenario";
    auto a = fixed_arm(5, 3);
    a.name = "arm,one \"x\"";
    auto b = fixed_arm(5, 3);
    b.name = "arm.one 'x'"; // sanitizes to the same file stem as arm a
    s.arms.push_back(std::move(a));
    s.arms.push_back(std::move(b));
    return s;
}

TEST(CsvSink, QuotesScenarioAndArmNamesInSummary) {
    const auto scenario = nasty_scenario();
    const auto results = ExperimentHarness({.jobs = 1, .seed = 3}).run(scenario);

    const auto dir = fs::temp_directory_path() / "lotus_sink_quoting_test";
    fs::remove_all(dir);
    write_csv_traces(dir.string(), scenario.name, results, /*announce=*/false);

    // The summary CSV must round-trip the metacharacter-laden names exactly.
    const auto rows = parse_csv((dir / "weird___scenario__summary.csv").string());
    ASSERT_EQ(rows.size(), 3u); // header + 2 episodes
    ASSERT_GE(rows[0].size(), 3u);
    EXPECT_EQ(rows[0][0], "scenario");
    EXPECT_EQ(rows[1][0], "weird, \"scenario\"");
    EXPECT_EQ(rows[1][1], "arm,one \"x\"");
    EXPECT_EQ(rows[2][1], "arm.one 'x'");
    // Every row parses back to the header's arity: no field bled into its
    // neighbour through an unquoted comma.
    for (const auto& row : rows) EXPECT_EQ(row.size(), rows[0].size());
    fs::remove_all(dir);
}

TEST(CsvSink, CollidingSanitizedArmNamesGetDistinctFiles) {
    const auto scenario = nasty_scenario();
    const auto results = ExperimentHarness({.jobs = 1, .seed = 3}).run(scenario);

    const auto dir = fs::temp_directory_path() / "lotus_sink_collision_test";
    fs::remove_all(dir);
    write_csv_traces(dir.string(), scenario.name, results, /*announce=*/false);

    std::size_t trace_files = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
        const auto name = entry.path().filename().string();
        if (name.find("_summary") == std::string::npos) ++trace_files;
    }
    // Both arms sanitize to the same stem; the sink must still write two
    // distinct per-episode trace files.
    EXPECT_EQ(trace_files, 2u);
    fs::remove_all(dir);
}

TEST(JsonSink, ExperimentDocumentStructureAndEscaping) {
    const auto scenario = nasty_scenario();
    const auto results = ExperimentHarness({.jobs = 1, .seed = 3}).run(scenario);
    const auto doc = scenario_json(scenario, results);

    // Structure: the metacharacters arrive escaped, the metrics are present.
    EXPECT_NE(doc.find("\"scenario\":\"weird, \\\"scenario\\\"\""), std::string::npos)
        << doc;
    EXPECT_NE(doc.find("\"arm\":\"arm,one \\\"x\\\"\""), std::string::npos);
    EXPECT_NE(doc.find("\"mode\":\"experiment\""), std::string::npos);
    EXPECT_NE(doc.find("\"mean_latency_ms\":"), std::string::npos);
    EXPECT_NE(doc.find("\"satisfaction_rate\":"), std::string::npos);

    // Balance check: braces and brackets pair up outside string literals.
    int depth = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < doc.size(); ++i) {
        const char c = doc[i];
        if (in_string) {
            if (c == '\\') {
                ++i;
            } else if (c == '"') {
                in_string = false;
            }
        } else if (c == '"') {
            in_string = true;
        } else if (c == '{' || c == '[') {
            ++depth;
        } else if (c == '}' || c == ']') {
            --depth;
            EXPECT_GE(depth, 0);
        }
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(in_string);
}

TEST(JsonSink, ServingDocumentCarriesPerStreamSummaries) {
    const auto spec = platform::orin_nano_spec();
    Scenario s(runtime::static_experiment(spec, detector::DetectorKind::faster_rcnn,
                                          "KITTI", 1, 0));
    s.name = "json_serving";
    s.title = "JSON serving test";
    serving::ServingConfig cfg(spec);
    for (int i = 0; i < 2; ++i) {
        serving::StreamSpec stream;
        stream.name = "cam" + std::to_string(i);
        stream.slo_s = 1.5;
        stream.requests = 3;
        stream.arrival.kind = serving::ArrivalKind::periodic;
        stream.arrival.rate_hz = 0.5;
        stream.arrival.phase_s = 0.5 * i;
        cfg.streams.push_back(std::move(stream));
    }
    cfg.scheduler = "edf_admit";
    s.serving = std::move(cfg);
    s.arms.push_back(fixed_arm(5, 3));

    const auto results = ExperimentHarness({.jobs = 1, .seed = 4}).run(s);
    ASSERT_TRUE(results[0].is_serving());
    const auto doc = scenario_json(s, results);
    EXPECT_NE(doc.find("\"mode\":\"serving\""), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"scheduler\":\"edf_admit\""), std::string::npos);
    EXPECT_NE(doc.find("\"aggregate\":"), std::string::npos);
    EXPECT_NE(doc.find("\"stream\":\"cam0\""), std::string::npos);
    EXPECT_NE(doc.find("\"stream\":\"cam1\""), std::string::npos);
    EXPECT_NE(doc.find("\"p99_ms\":"), std::string::npos);
    EXPECT_NE(doc.find("\"miss_rate\":"), std::string::npos);
    EXPECT_NE(doc.find("\"shed_rate\":"), std::string::npos);
}

} // namespace
} // namespace lotus::harness
