// Tests for the ExperimentHarness: parallel execution must reproduce the
// serial run result-for-result, episode seeds must be pure functions of the
// episode identity, and failures must propagate.

#include <gtest/gtest.h>

#include <stdexcept>

#include "harness/harness.hpp"
#include "platform/presets.hpp"
#include "runtime/runner.hpp"
#include "util/rng.hpp"

namespace lotus::harness {
namespace {

/// Small but non-trivial scenario: two kernel governors, one random-walk
/// governor and one learning governor over a short KITTI run.
Scenario small_scenario(const std::string& name, std::size_t iterations = 60) {
    const auto spec = platform::orin_nano_spec();
    Scenario s(runtime::static_experiment(spec, detector::DetectorKind::faster_rcnn,
                                          "KITTI", iterations, /*pretrain=*/40));
    s.name = name;
    s.title = name;
    s.arms.push_back(default_arm(spec));
    s.arms.push_back(fixed_arm(5, 3));
    s.arms.push_back(ztt_arm(spec));
    return s;
}

void expect_traces_equal(const runtime::Trace& a, const runtime::Trace& b,
                         const std::string& label) {
    ASSERT_EQ(a.size(), b.size()) << label;
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].latency_s, b[i].latency_s) << label << " row " << i;
        ASSERT_EQ(a[i].stage1_s, b[i].stage1_s) << label << " row " << i;
        ASSERT_EQ(a[i].stage2_s, b[i].stage2_s) << label << " row " << i;
        ASSERT_EQ(a[i].proposals, b[i].proposals) << label << " row " << i;
        ASSERT_EQ(a[i].cpu_temp, b[i].cpu_temp) << label << " row " << i;
        ASSERT_EQ(a[i].gpu_temp, b[i].gpu_temp) << label << " row " << i;
        ASSERT_EQ(a[i].cpu_level, b[i].cpu_level) << label << " row " << i;
        ASSERT_EQ(a[i].gpu_level, b[i].gpu_level) << label << " row " << i;
        ASSERT_EQ(a[i].energy_j, b[i].energy_j) << label << " row " << i;
        ASSERT_EQ(a[i].throttled, b[i].throttled) << label << " row " << i;
    }
}

TEST(ExperimentHarness, ParallelEqualsSerialResultForResult) {
    const auto scenario = small_scenario("parallel_vs_serial");
    const auto serial = ExperimentHarness({.jobs = 1, .seed = 7}).run(scenario);
    const auto parallel = ExperimentHarness({.jobs = 4, .seed = 7}).run(scenario);

    ASSERT_EQ(serial.size(), scenario.arms.size());
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].arm, parallel[i].arm);
        EXPECT_EQ(serial[i].episode_seed, parallel[i].episode_seed);
        expect_traces_equal(serial[i].trace, parallel[i].trace, serial[i].arm);
    }
}

TEST(ExperimentHarness, DeterministicAcrossRepeatedRuns) {
    const auto scenario = small_scenario("repeat");
    const ExperimentHarness harness({.jobs = 3, .seed = 11});
    const auto first = harness.run(scenario);
    const auto second = harness.run(scenario);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        expect_traces_equal(first[i].trace, second[i].trace, first[i].arm);
    }
}

TEST(ExperimentHarness, BatchPreservesDeclarationOrder) {
    const auto a = small_scenario("batch_a", 30);
    const auto b = small_scenario("batch_b", 30);
    const auto results = ExperimentHarness({.jobs = 4, .seed = 3}).run({&a, &b});
    ASSERT_EQ(results.size(), a.arms.size() + b.arms.size());
    for (std::size_t i = 0; i < a.arms.size(); ++i) {
        EXPECT_EQ(results[i].scenario, "batch_a");
        EXPECT_EQ(results[i].arm, a.arms[i].name);
    }
    for (std::size_t i = 0; i < b.arms.size(); ++i) {
        EXPECT_EQ(results[a.arms.size() + i].scenario, "batch_b");
        EXPECT_EQ(results[a.arms.size() + i].arm, b.arms[i].name);
    }
}

TEST(ExperimentHarness, EpisodeSeedsDeriveFromIdentity) {
    const auto scenario = small_scenario("seeding");
    const auto results = ExperimentHarness({.jobs = 2, .seed = 42}).run(scenario);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].episode_seed, util::derive_seed(42, "seeding", i));
        for (std::size_t j = i + 1; j < results.size(); ++j) {
            EXPECT_NE(results[i].episode_seed, results[j].episode_seed);
        }
    }
}

TEST(ExperimentHarness, RootSeedChangesEveryEpisode) {
    const auto scenario = small_scenario("root_seed");
    const auto a = ExperimentHarness({.jobs = 2, .seed = 1}).run(scenario);
    const auto b = ExperimentHarness({.jobs = 2, .seed = 2}).run(scenario);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_NE(a[i].episode_seed, b[i].episode_seed);
    }
}

TEST(ExperimentHarness, ArmTweaksApplyPerEpisode) {
    const auto spec = platform::orin_nano_spec();
    Scenario s(runtime::static_experiment(spec, detector::DetectorKind::faster_rcnn,
                                          "KITTI", 20, 0));
    auto tight = fixed_arm(5, 3);
    tight.name = "tight";
    tight.tweak = [](runtime::ExperimentConfig& cfg) {
        cfg.schedule = workload::DomainSchedule::constant("KITTI", 0.1);
    };
    s.name = "tweaks";
    s.arms.push_back(fixed_arm(5, 3));
    s.arms.push_back(std::move(tight));

    const auto results = ExperimentHarness({.jobs = 2, .seed = 5}).run(s);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_NE(results[0].trace[0].constraint_s, 0.1);
    EXPECT_EQ(results[1].trace[0].constraint_s, 0.1);
    // The tweak is applied to a copy: the shared scenario config is intact.
    EXPECT_NE(s.config.schedule.at(0).latency_constraint_s, 0.1);
}

TEST(ExperimentHarness, EpisodeFailuresPropagate) {
    const auto spec = platform::orin_nano_spec();
    Scenario s(runtime::static_experiment(spec, detector::DetectorKind::faster_rcnn,
                                          "KITTI", 10, 0));
    s.name = "failing";
    auto bad = fixed_arm(5, 3);
    bad.name = "bad";
    bad.tweak = [](runtime::ExperimentConfig& cfg) { cfg.iterations = 0; };
    s.arms.push_back(fixed_arm(5, 3));
    s.arms.push_back(std::move(bad));

    EXPECT_THROW((void)ExperimentHarness({.jobs = 2, .seed = 5}).run(s),
                 std::invalid_argument);
}

TEST(ExperimentHarness, FrameHookPinsFrames) {
    const auto spec = platform::orin_nano_spec();
    Scenario s(runtime::static_experiment(spec, detector::DetectorKind::faster_rcnn,
                                          "KITTI", 5, 0));
    s.name = "hooked";
    s.config.frame_hook = [](workload::FrameSample& frame, std::size_t) {
        frame.proposals = 123;
        frame.jitter = 1.0;
        frame.complexity = 1.0;
    };
    s.arms.push_back(fixed_arm(5, 3));
    const auto results = ExperimentHarness({.jobs = 1, .seed = 9}).run(s);
    for (const auto& row : results[0].trace.rows()) {
        EXPECT_EQ(row.proposals, 123);
    }
}

} // namespace
} // namespace lotus::harness
