// Summary-only ledger fast path (PR 6): running a serving or fleet episode
// with capture_rows = false must produce bit-identical summaries -- and
// byte-identical rendered JSON through the harness -- while materialising no
// per-request rows. Also pins the failure mode (write_csv throws: there is
// no ledger to dump) and --jobs invariance over the fast path.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "fleet/engine.hpp"
#include "governors/linux_governors.hpp"
#include "harness/harness.hpp"
#include "harness/sinks.hpp"
#include "platform/presets.hpp"
#include "serving/engine.hpp"

namespace lotus::harness {
namespace {

serving::ServingConfig serving_config() {
    serving::ServingConfig cfg(platform::orin_nano_spec());
    for (int i = 0; i < 3; ++i) {
        serving::StreamSpec s;
        s.name = "cam" + std::to_string(i);
        s.dataset = (i == 2) ? "VisDrone2019" : "KITTI";
        s.slo_s = 0.9;
        s.requests = 8;
        s.arrival.kind = (i == 1) ? serving::ArrivalKind::bursty
                                  : serving::ArrivalKind::poisson;
        s.arrival.rate_hz = 0.8;
        s.arrival.phase_s = 0.4 * i;
        cfg.streams.push_back(std::move(s));
    }
    cfg.scheduler = "edf_admit";
    cfg.seed = 77;
    return cfg;
}

fleet::FleetConfig fleet_config() {
    fleet::FleetConfig cfg;
    const auto orin = platform::orin_nano_spec();
    cfg.devices.push_back(fleet::make_device("a", orin));
    cfg.devices.push_back(fleet::make_device("b", orin));
    auto serving = serving_config();
    cfg.streams = std::move(serving.streams);
    cfg.scheduler = "edf_admit";
    cfg.router = "least_queue";
    cfg.seed = 77;
    return cfg;
}

void expect_summary_eq(const serving::ServingSummary& a,
                       const serving::ServingSummary& b, const std::string& label) {
    EXPECT_EQ(a.stream, b.stream) << label;
    EXPECT_EQ(a.requests, b.requests) << label;
    EXPECT_EQ(a.served, b.served) << label;
    EXPECT_EQ(a.shed, b.shed) << label;
    EXPECT_EQ(a.missed, b.missed) << label;
    // EXPECT_EQ on doubles is exact comparison: the fast path must be
    // bit-identical, not merely close.
    EXPECT_EQ(a.p50_ms, b.p50_ms) << label;
    EXPECT_EQ(a.p95_ms, b.p95_ms) << label;
    EXPECT_EQ(a.p99_ms, b.p99_ms) << label;
    EXPECT_EQ(a.mean_wait_ms, b.mean_wait_ms) << label;
    EXPECT_EQ(a.miss_rate, b.miss_rate) << label;
    EXPECT_EQ(a.shed_rate, b.shed_rate) << label;
    EXPECT_EQ(a.throughput_rps, b.throughput_rps) << label;
    EXPECT_EQ(a.energy_per_req_j, b.energy_per_req_j) << label;
    EXPECT_EQ(a.mean_device_temp_c, b.mean_device_temp_c) << label;
    EXPECT_EQ(a.peak_device_temp_c, b.peak_device_temp_c) << label;
}

TEST(SummaryOnly, ServingSummariesAreBitIdenticalToFullLedger) {
    auto cfg = serving_config();
    cfg.capture_rows = true;
    governors::FixedGovernor full_gov(5, 3);
    const auto full = serving::ServingEngine(cfg).run(full_gov);

    cfg.capture_rows = false;
    governors::FixedGovernor fast_gov(5, 3);
    const auto fast = serving::ServingEngine(cfg).run(fast_gov);

    EXPECT_FALSE(full.records().empty());
    EXPECT_TRUE(fast.records().empty()); // no rows materialised
    EXPECT_FALSE(fast.capture_rows());
    EXPECT_EQ(fast.size(), full.size()); // but every request was counted
    EXPECT_EQ(fast.makespan_s(), full.makespan_s());
    EXPECT_EQ(fast.total_energy_j(), full.total_energy_j());

    const auto full_sums = full.all_summaries();
    const auto fast_sums = fast.all_summaries();
    ASSERT_EQ(full_sums.size(), fast_sums.size());
    for (std::size_t i = 0; i < full_sums.size(); ++i) {
        expect_summary_eq(full_sums[i], fast_sums[i], "summary " + std::to_string(i));
    }

    // Row-dependent surfaces are explicitly unavailable, never silently empty
    // CSV files.
    EXPECT_TRUE(fast.e2e_ms().empty());
    EXPECT_TRUE(fast.device_temps().empty());
    EXPECT_THROW(fast.write_csv("/tmp/lotus_summary_only_test.csv"), std::logic_error);
}

TEST(SummaryOnly, FleetSummariesAreBitIdenticalToFullLedger) {
    const auto factory = [](const platform::DeviceSpec&,
                            std::uint64_t) -> std::unique_ptr<governors::Governor> {
        return std::make_unique<governors::FixedGovernor>(5, 3);
    };
    auto cfg = fleet_config();
    cfg.capture_rows = true;
    const auto full = fleet::FleetEngine(cfg).run(factory, 9);
    cfg.capture_rows = false;
    const auto fast = fleet::FleetEngine(cfg).run(factory, 9);

    EXPECT_FALSE(full.records().empty());
    EXPECT_TRUE(fast.records().empty());
    EXPECT_EQ(fast.size(), full.size());
    EXPECT_EQ(fast.makespan_s(), full.makespan_s());
    EXPECT_EQ(fast.migrations(), full.migrations());
    EXPECT_EQ(fast.load_skew(), full.load_skew());

    expect_summary_eq(fast.aggregate(), full.aggregate(), "aggregate");
    for (std::size_t d = 0; d < cfg.devices.size(); ++d) {
        expect_summary_eq(fast.device_summary(d), full.device_summary(d),
                          "device " + std::to_string(d));
        EXPECT_EQ(fast.device_stats(d).peak_temp_c, full.device_stats(d).peak_temp_c);
        EXPECT_EQ(fast.device_stats(d).energy_j, full.device_stats(d).energy_j);
    }
    for (std::size_t s = 0; s < cfg.streams.size(); ++s) {
        expect_summary_eq(fast.stream_summary(s), full.stream_summary(s),
                          "stream " + std::to_string(s));
    }
    EXPECT_THROW(fast.write_csv("/tmp/lotus_summary_only_fleet_test.csv"),
                 std::logic_error);
}

Scenario serving_scenario(const std::string& name) {
    const auto spec = platform::orin_nano_spec();
    Scenario s(runtime::static_experiment(spec, detector::DetectorKind::faster_rcnn,
                                          "KITTI", 1, 0));
    s.name = name;
    s.title = name;
    s.serving = serving_config();
    s.arms.push_back(default_arm(spec));
    s.arms.push_back(fixed_arm(5, 3));
    s.arms.push_back(ztt_arm(spec));
    return s;
}

Scenario fleet_scenario(const std::string& name) {
    const auto spec = platform::orin_nano_spec();
    Scenario s(runtime::static_experiment(spec, detector::DetectorKind::faster_rcnn,
                                          "KITTI", 1, 0));
    s.name = name;
    s.title = name;
    s.fleet = fleet_config();
    s.arms.push_back(fleet_arm(fixed_arm(5, 3), "least_queue"));
    s.arms.push_back(fleet_arm(default_arm(spec), "round_robin"));
    return s;
}

TEST(SummaryOnly, HarnessJsonIsByteIdenticalForServingScenario) {
    const auto scenario = serving_scenario("summary_only_serving_json");
    const auto full = ExperimentHarness({.jobs = 2, .seed = 7}).run(scenario);
    const auto fast =
        ExperimentHarness({.jobs = 2, .seed = 7, .summary_only = true}).run(scenario);
    ASSERT_EQ(fast.size(), full.size());
    for (const auto& r : fast) {
        ASSERT_TRUE(r.serving_trace.has_value());
        EXPECT_TRUE(r.serving_trace->records().empty());
        EXPECT_GT(r.serving_trace->size(), 0u);
    }
    EXPECT_EQ(scenario_json(scenario, fast), scenario_json(scenario, full));
}

TEST(SummaryOnly, HarnessJsonIsByteIdenticalForFleetScenario) {
    const auto scenario = fleet_scenario("summary_only_fleet_json");
    const auto full = ExperimentHarness({.jobs = 2, .seed = 7}).run(scenario);
    const auto fast =
        ExperimentHarness({.jobs = 2, .seed = 7, .summary_only = true}).run(scenario);
    ASSERT_EQ(fast.size(), full.size());
    for (const auto& r : fast) {
        ASSERT_TRUE(r.fleet_trace.has_value());
        EXPECT_TRUE(r.fleet_trace->records().empty());
    }
    EXPECT_EQ(scenario_json(scenario, fast), scenario_json(scenario, full));
}

TEST(SummaryOnly, JobsCountStaysInvisibleOverTheFastPath) {
    const auto scenario = serving_scenario("summary_only_jobs_invariance");
    const auto serial =
        ExperimentHarness({.jobs = 1, .seed = 11, .summary_only = true}).run(scenario);
    const auto parallel =
        ExperimentHarness({.jobs = 4, .seed = 11, .summary_only = true}).run(scenario);
    EXPECT_EQ(scenario_json(scenario, serial), scenario_json(scenario, parallel));
}

} // namespace
} // namespace lotus::harness
