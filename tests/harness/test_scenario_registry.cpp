// Tests for the ScenarioRegistry: the catalog covers every paper
// figure/table, lookups round-trip, and arm specs are well-formed.

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "harness/registry.hpp"

namespace lotus::harness {
namespace {

const ScenarioRegistry& registry() { return ScenarioRegistry::instance(); }

TEST(ScenarioRegistry, CoversEveryPaperFigureAndTable) {
    const char* expected[] = {
        "fig1_kitti",          "fig1_visdrone",
        "fig2_frcnn_sweep",    "fig2_mrcnn_sweep",
        "fig4_visdrone",       "fig4_kitti",
        "fig5_visdrone",       "fig5_kitti",
        "fig6_visdrone",       "fig6_kitti",
        "fig7a_temp_changes",  "fig7b_domain_changes",
        "table1_frcnn_kitti",  "table1_frcnn_visdrone",
        "table1_mrcnn_kitti",  "table1_mrcnn_visdrone",
        "table2_frcnn_kitti",  "table2_frcnn_visdrone",
        "table2_mrcnn_kitti",  "table2_mrcnn_visdrone",
        "ablation_design",
    };
    for (const char* name : expected) {
        EXPECT_NE(registry().find(name), nullptr) << "missing paper scenario " << name;
    }
}

TEST(ScenarioRegistry, HasStressAndExampleScenarios) {
    EXPECT_GE(registry().with_tag("stress").size(), 4u);
    EXPECT_GE(registry().with_tag("example").size(), 3u);
}

TEST(ScenarioRegistry, NamesAreUnique) {
    std::set<std::string> names;
    for (const auto& s : registry().all()) {
        EXPECT_TRUE(names.insert(s.name).second) << "duplicate scenario " << s.name;
    }
}

TEST(ScenarioRegistry, LookupsRoundTrip) {
    for (const auto& s : registry().all()) {
        const auto* found = registry().find(s.name);
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(found, &s);
        EXPECT_EQ(&registry().at(s.name), &s);
    }
}

TEST(ScenarioRegistry, AtThrowsForUnknownName) {
    EXPECT_THROW((void)registry().at("no_such_scenario"), std::out_of_range);
    EXPECT_EQ(registry().find("no_such_scenario"), nullptr);
}

TEST(ScenarioRegistry, ScenariosAreWellFormed) {
    for (const auto& s : registry().all()) {
        EXPECT_FALSE(s.name.empty());
        EXPECT_FALSE(s.title.empty()) << s.name;
        EXPECT_FALSE(s.description.empty()) << s.name;
        EXPECT_FALSE(s.tags.empty()) << s.name;
        EXPECT_GE(s.arms.size(), 1u) << s.name;
        EXPECT_GT(s.config.iterations, 0u) << s.name;
        std::set<std::string> arm_names;
        for (const auto& arm : s.arms) {
            EXPECT_FALSE(arm.name.empty()) << s.name;
            EXPECT_TRUE(arm.make != nullptr) << s.name << "/" << arm.name;
            EXPECT_TRUE(arm_names.insert(arm.name).second)
                << "duplicate arm " << arm.name << " in " << s.name;
        }
    }
}

TEST(ScenarioRegistry, ArmFactoriesProduceGovernors) {
    const auto& s = registry().at("fig4_kitti");
    for (const auto& arm : s.arms) {
        const auto governor = arm.make(/*seed=*/123);
        ASSERT_NE(governor, nullptr);
        EXPECT_FALSE(governor->name().empty());
    }
}

TEST(ScenarioRegistry, Fig1ArmsSweepTheDetector) {
    const auto& s = registry().at("fig1_kitti");
    ASSERT_EQ(s.arms.size(), 3u);
    std::set<detector::DetectorKind> kinds;
    for (const auto& arm : s.arms) {
        ASSERT_TRUE(arm.tweak != nullptr);
        auto cfg = s.config;
        arm.tweak(cfg);
        kinds.insert(cfg.detector);
    }
    EXPECT_EQ(kinds.size(), 3u) << "each Fig. 1 arm must select a distinct detector";
}

TEST(ScenarioRegistry, ConstraintSweepArmsRescaleTheConstraint) {
    const auto& s = registry().at("stress_constraint_sweep");
    ASSERT_GE(s.arms.size(), 2u);
    std::set<double> constraints;
    for (const auto& arm : s.arms) {
        ASSERT_TRUE(arm.tweak != nullptr);
        auto cfg = s.config;
        arm.tweak(cfg);
        constraints.insert(cfg.schedule.at(0).latency_constraint_s);
    }
    EXPECT_EQ(constraints.size(), s.arms.size());
}

TEST(ScenarioRegistry, TagQueriesMatchTagMembership) {
    for (const auto* s : registry().with_tag("paper")) {
        EXPECT_TRUE(s->has_tag("paper"));
    }
    EXPECT_TRUE(registry().with_tag("no_such_tag").empty());
    for (const auto* s : registry().with_prefix("table1_")) {
        EXPECT_EQ(s->name.rfind("table1_", 0), 0u);
    }
    EXPECT_EQ(registry().with_prefix("table1_").size(), 4u);
    EXPECT_EQ(registry().with_prefix("table2_").size(), 4u);
}

} // namespace
} // namespace lotus::harness
