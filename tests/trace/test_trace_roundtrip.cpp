// Contract tests for the .ltrc trace format: Writer -> Reader is lossless
// at the bit level, malformed files fail with clear errors instead of
// crashing, slices reassemble byte-for-byte, and synth_trace streams the
// exact timeline build_request_timeline materialises.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "serving/engine.hpp"
#include "trace/format.hpp"
#include "trace/record.hpp"
#include "util/rng.hpp"

namespace lotus::trace {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test; removed on destruction.
class TempDir {
public:
    explicit TempDir(const std::string& tag)
        : path_(fs::temp_directory_path() / ("lotus_trace_test_" + tag)) {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    [[nodiscard]] std::string file(const std::string& name) const {
        return (path_ / name).string();
    }

private:
    fs::path path_;
};

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

bool same_record(const TraceRecord& a, const TraceRecord& b) {
    return a.id == b.id && a.stream == b.stream && a.proposals == b.proposals &&
           bits(a.arrival_s) == bits(b.arrival_s) && bits(a.slo_s) == bits(b.slo_s) &&
           bits(a.resolution_scale) == bits(b.resolution_scale) &&
           bits(a.complexity) == bits(b.complexity) &&
           bits(a.jitter) == bits(b.jitter) && a.frame_index == b.frame_index;
}

std::vector<StreamInfo> two_streams() {
    return {{"alpha", "KITTI", 0.5, 64}, {"beta", "VisDrone2019", 0.25, 32}};
}

std::vector<serving::StreamSpec> serving_streams(std::size_t requests) {
    std::vector<serving::StreamSpec> streams;
    for (std::size_t i = 0; i < 3; ++i) {
        serving::StreamSpec s;
        s.name = "stream" + std::to_string(i);
        s.dataset = i == 1 ? "VisDrone2019" : "KITTI";
        s.slo_s = 0.5 + 0.1 * static_cast<double>(i);
        s.requests = requests;
        s.arrival.kind = i == 0 ? serving::ArrivalKind::poisson
                                : serving::ArrivalKind::bursty;
        s.arrival.rate_hz = 1.0 + static_cast<double>(i);
        streams.push_back(std::move(s));
    }
    return streams;
}

std::vector<char> read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(TraceFormat, WriterReaderRoundTripIsBitExact) {
    const TempDir dir("roundtrip");
    const auto path = dir.file("t.ltrc");

    // Randomised records, including awkward doubles (denormals, negatives
    // from jitter arithmetic, exact integers).
    util::Rng rng(7);
    std::vector<TraceRecord> records;
    double t = 0.0;
    for (std::uint64_t i = 0; i < 500; ++i) {
        TraceRecord r;
        r.id = i;
        r.stream = static_cast<std::uint32_t>(rng.uniform_int(0, 1));
        r.proposals = static_cast<std::int32_t>(rng.uniform_int(0, 4000));
        t += rng.uniform();
        r.arrival_s = t;
        r.slo_s = r.stream == 0 ? 0.5 : 0.25;
        r.resolution_scale = 1.0 / (1.0 + rng.uniform());
        r.complexity = rng.uniform() * 1e-300; // subnormal territory
        r.jitter = 0.75 + 0.5 * rng.uniform();
        r.frame_index = i / 2;
        records.push_back(r);
    }

    {
        Writer writer(path, two_streams());
        for (const auto& r : records) writer.add(r);
        EXPECT_EQ(writer.records_written(), records.size());
        writer.close();
        writer.close(); // idempotent
    }

    Reader reader(path);
    EXPECT_EQ(reader.info().format_version, kFormatVersion);
    EXPECT_EQ(reader.info().record_count, records.size());
    ASSERT_EQ(reader.info().streams.size(), 2u);
    EXPECT_TRUE(same_streams(reader.info().streams, two_streams()));

    TraceRecord rec;
    for (const auto& expected : records) {
        ASSERT_TRUE(reader.next(rec));
        EXPECT_TRUE(same_record(rec, expected)) << "record " << expected.id;
    }
    EXPECT_FALSE(reader.next(rec));

    // O(1) seek lands on the right record.
    reader.seek(250);
    ASSERT_TRUE(reader.next(rec));
    EXPECT_TRUE(same_record(rec, records[250]));
}

TEST(TraceFormat, RequestConversionRoundTrips) {
    const auto streams = serving_streams(16);
    const auto requests = serving::build_request_timeline(streams, 42);
    for (const auto& req : requests) {
        const auto rec = to_record(req);
        const auto back = to_request(rec);
        EXPECT_EQ(back.id, req.id);
        EXPECT_EQ(back.stream, req.stream);
        EXPECT_EQ(bits(back.arrival_s), bits(req.arrival_s));
        EXPECT_EQ(bits(back.slo_s), bits(req.slo_s));
        EXPECT_EQ(back.frame.index, req.frame.index);
        EXPECT_EQ(bits(back.frame.resolution_scale), bits(req.frame.resolution_scale));
        EXPECT_EQ(bits(back.frame.complexity), bits(req.frame.complexity));
        EXPECT_EQ(back.frame.proposals, req.frame.proposals);
        EXPECT_EQ(bits(back.frame.jitter), bits(req.frame.jitter));
    }
}

TEST(TraceFormat, WriteTraceLoadRequestsIsLossless) {
    const TempDir dir("timeline");
    const auto path = dir.file("t.ltrc");
    const auto streams = serving_streams(32);
    const auto requests = serving::build_request_timeline(streams, 11);
    write_trace(path, streams, requests);

    const auto loaded = load_requests(path, streams);
    ASSERT_EQ(loaded.size(), requests.size());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        EXPECT_TRUE(same_record(to_record(loaded[i]), to_record(requests[i])))
            << "request " << i;
    }
}

TEST(TraceFormat, SynthMatchesWriteTraceByteForByte) {
    const TempDir dir("synth");
    const auto streams = serving_streams(40);
    const auto materialised = dir.file("materialised.ltrc");
    const auto synthed = dir.file("synthed.ltrc");
    write_trace(materialised, streams, serving::build_request_timeline(streams, 123));
    synth_trace(synthed, streams, 123);
    EXPECT_EQ(read_file(materialised), read_file(synthed));
}

TEST(TraceFormat, SliceAndMergeReconstructByteForByte) {
    const TempDir dir("slices");
    const auto full = dir.file("full.ltrc");
    const auto streams = serving_streams(30);
    synth_trace(full, streams, 5);

    Reader in(full);
    const auto n = in.info().record_count;
    ASSERT_GT(n, 10u);
    const auto a = dir.file("a.ltrc");
    const auto b = dir.file("b.ltrc");
    const auto c = dir.file("c.ltrc");
    slice_records(in, a, 0, n / 3);
    slice_records(in, b, n / 3, 2 * n / 3);
    slice_records(in, c, 2 * n / 3, n);

    const auto merged = dir.file("merged.ltrc");
    merge_traces({a, b, c}, merged);
    EXPECT_EQ(read_file(full), read_file(merged));
}

TEST(TraceFormat, SliceTimeSelectsTheArrivalWindow) {
    const TempDir dir("slicetime");
    const auto full = dir.file("full.ltrc");
    synth_trace(full, serving_streams(20), 9);

    Reader in(full);
    TraceRecord first;
    in.seek(0);
    ASSERT_TRUE(in.next(first));
    in.seek(in.info().record_count - 1);
    TraceRecord last;
    ASSERT_TRUE(in.next(last));

    const auto mid = (first.arrival_s + last.arrival_s) / 2.0;
    const auto out = dir.file("window.ltrc");
    slice_time(in, out, first.arrival_s, mid);

    Reader window(out);
    EXPECT_GT(window.info().record_count, 0u);
    EXPECT_LT(window.info().record_count, in.info().record_count);
    TraceRecord rec;
    while (window.next(rec)) {
        EXPECT_GE(rec.arrival_s, first.arrival_s);
        EXPECT_LT(rec.arrival_s, mid);
    }
}

TEST(TraceFormat, SliceRejectsEmptyOrOutOfRangeWindows) {
    const TempDir dir("slicebad");
    const auto full = dir.file("full.ltrc");
    synth_trace(full, serving_streams(5), 3);
    Reader in(full);
    const auto n = in.info().record_count;
    EXPECT_THROW(slice_records(in, dir.file("x.ltrc"), 3, 3), std::invalid_argument);
    EXPECT_THROW(slice_records(in, dir.file("x.ltrc"), 0, n + 1), std::invalid_argument);
    EXPECT_THROW(slice_records(in, dir.file("x.ltrc"), 5, 2), std::invalid_argument);
}

TEST(TraceFormat, MergeRejectsMismatchedStreamTables) {
    const TempDir dir("mergebad");
    const auto a = dir.file("a.ltrc");
    const auto b = dir.file("b.ltrc");
    auto streams = serving_streams(5);
    synth_trace(a, streams, 3);
    streams[0].slo_s += 0.125; // bit-level table difference
    synth_trace(b, streams, 3);
    EXPECT_THROW(merge_traces({a, b}, dir.file("out.ltrc")), std::runtime_error);
}

TEST(TraceFormat, ReaderRejectsMissingFile) {
    const TempDir dir("missing");
    EXPECT_THROW(Reader reader(dir.file("nope.ltrc")), std::runtime_error);
}

TEST(TraceFormat, ReaderRejectsBadMagic) {
    const TempDir dir("badmagic");
    const auto path = dir.file("t.ltrc");
    synth_trace(path, serving_streams(4), 1);
    {
        std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(0);
        f.write("NOTATRCE", 8);
    }
    try {
        Reader reader(path);
        FAIL() << "bad magic accepted";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos) << e.what();
    }
}

TEST(TraceFormat, ReaderRejectsUnknownFormatVersion) {
    const TempDir dir("badversion");
    const auto path = dir.file("t.ltrc");
    synth_trace(path, serving_streams(4), 1);
    {
        std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(8);
        const char bumped[4] = {99, 0, 0, 0};
        f.write(bumped, 4);
    }
    try {
        Reader reader(path);
        FAIL() << "unknown format version accepted";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("version"), std::string::npos) << e.what();
    }
}

TEST(TraceFormat, ReaderRejectsTruncatedFile) {
    const TempDir dir("truncated");
    const auto path = dir.file("t.ltrc");
    synth_trace(path, serving_streams(10), 1);
    fs::resize_file(path, fs::file_size(path) - kRecordBytes / 2);
    try {
        Reader reader(path);
        FAIL() << "truncated trace accepted";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos) << e.what();
    }
}

TEST(TraceFormat, ReaderRejectsAbandonedWriter) {
    const TempDir dir("abandoned");
    const auto path = dir.file("t.ltrc");
    {
        // Write records but "crash" before close(): the header still says 0.
        Writer writer(path, two_streams());
        TraceRecord rec;
        rec.slo_s = 0.5;
        writer.add(rec);
        // Swallow the destructor's close by truncating the count back to 0
        // afterwards; simpler: close properly, then zero the count field.
    }
    {
        std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(56);
        const char zeros[8] = {0, 0, 0, 0, 0, 0, 0, 0};
        f.write(zeros, 8);
    }
    EXPECT_THROW(Reader reader(path), std::runtime_error);
}

TEST(TraceFormat, ReaderRejectsGarbageStreamTable) {
    const TempDir dir("badtable");
    const auto path = dir.file("t.ltrc");
    synth_trace(path, serving_streams(4), 1);
    {
        // Stream table starts right after the fixed header; blow up the
        // first name length.
        std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(static_cast<std::streamoff>(kHeaderBytes));
        const unsigned char huge[4] = {0xff, 0xff, 0xff, 0x7f};
        f.write(reinterpret_cast<const char*>(huge), 4);
    }
    EXPECT_THROW(Reader reader(path), std::runtime_error);
}

TEST(TraceFormat, WriterRejectsOutOfRangeStreamId) {
    const TempDir dir("badstream");
    Writer writer(dir.file("t.ltrc"), two_streams());
    TraceRecord rec;
    rec.stream = 2;
    EXPECT_THROW(writer.add(rec), std::invalid_argument);
}

TEST(TraceFormat, LoadRequestsRejectsMismatchedStreams) {
    const TempDir dir("replaymismatch");
    const auto path = dir.file("t.ltrc");
    auto streams = serving_streams(8);
    synth_trace(path, streams, 2);
    streams[1].requests += 1;
    try {
        (void)load_requests(path, streams);
        FAIL() << "mismatched stream table accepted";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("stream table"), std::string::npos)
            << e.what();
    }
}

TEST(TraceFormat, CaptureScopeRecordsTimelineBuilds) {
    const TempDir dir("capture");
    const auto path = dir.file("captured.ltrc");
    const auto streams = serving_streams(12);
    {
        CaptureScope scope(path);
        ASSERT_NE(capture_path(), nullptr);
        (void)serving::build_request_timeline(streams, 77);
    }
    EXPECT_EQ(capture_path(), nullptr);

    const auto direct = dir.file("direct.ltrc");
    write_trace(direct, streams, serving::build_request_timeline(streams, 77));
    EXPECT_EQ(read_file(path), read_file(direct));
}

TEST(TraceFormat, RecordingAReplayRoundTripsTheFile) {
    const TempDir dir("rerecord");
    const auto original = dir.file("original.ltrc");
    const auto rerecorded = dir.file("rerecorded.ltrc");
    const auto streams = serving_streams(12);
    synth_trace(original, streams, 4);
    {
        CaptureScope scope(rerecorded);
        (void)load_requests(original, streams);
    }
    EXPECT_EQ(read_file(original), read_file(rerecorded));
}

} // namespace
} // namespace lotus::trace
