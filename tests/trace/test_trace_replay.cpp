// Record -> replay byte-identity at the harness level: replaying a
// recorded episode must reproduce the generating run's scenario JSON and
// telemetry artifacts byte-for-byte, for both a serving and a fleet
// scenario, at any --jobs count (the jobs-invariance family extended to
// replayed episodes).

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "harness/harness.hpp"
#include "harness/registry.hpp"
#include "harness/sinks.hpp"
#include "trace/format.hpp"

namespace lotus::harness {
namespace {

namespace fs = std::filesystem;

// The registry sizes its scenarios from LOTUS_BENCH_FAST at construction;
// set it before anything touches the shared instance so these tests run at
// smoke budgets.
const int kFastMode = []() { return ::setenv("LOTUS_BENCH_FAST", "1", 1); }();

class TempDir {
public:
    explicit TempDir(const std::string& tag)
        : path_(fs::temp_directory_path() / ("lotus_replay_test_" + tag)) {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    [[nodiscard]] std::string str() const { return path_.string(); }
    [[nodiscard]] std::string sub(const std::string& name) const {
        return (path_ / name).string();
    }

private:
    fs::path path_;
};

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Relative path -> content for every regular file under `root`.
std::map<std::string, std::string> dir_contents(const std::string& root) {
    std::map<std::string, std::string> out;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (!entry.is_regular_file()) continue;
        out[fs::relative(entry.path(), root).string()] = read_file(entry.path().string());
    }
    return out;
}

HarnessConfig base_config(std::size_t jobs) {
    HarnessConfig cfg;
    cfg.jobs = jobs;
    cfg.summary_only = true;
    cfg.telemetry = true;
    return cfg;
}

std::string run_and_render(const Scenario& scenario, const HarnessConfig& cfg,
                           const std::string& telemetry_dir) {
    const ExperimentHarness harness(cfg);
    auto results = harness.run(scenario);
    TelemetrySink sink(telemetry_dir, /*announce=*/false);
    sink.consume(scenario, results);
    return scenario_json(scenario, results);
}

void expect_replay_identity(const std::string& scenario_name) {
    ASSERT_EQ(kFastMode, 0);
    const auto& scenario = ScenarioRegistry::instance().at(scenario_name);
    const TempDir dir("replay_" + scenario.arms.front().name);

    auto record_cfg = base_config(2);
    record_cfg.trace_dir = dir.sub("traces");
    const auto generated =
        run_and_render(scenario, record_cfg, dir.sub("telemetry_gen"));

    // Every episode left a readable trace behind.
    for (std::size_t arm = 0; arm < scenario.arms.size(); ++arm) {
        const auto path = episode_trace_path(dir.sub("traces"), scenario.name, arm,
                                             scenario.arms[arm].name);
        const trace::Reader reader(path);
        EXPECT_GT(reader.info().record_count, 0u) << path;
    }

    auto replay_cfg = base_config(2);
    replay_cfg.replay_dir = dir.sub("traces");
    const auto replayed =
        run_and_render(scenario, replay_cfg, dir.sub("telemetry_rep"));

    // The whole rendered surface is byte-identical: scenario JSON and the
    // telemetry artifact tree (rollup.json, health.json, ...).
    EXPECT_EQ(generated, replayed);
    const auto gen_files = dir_contents(dir.sub("telemetry_gen"));
    const auto rep_files = dir_contents(dir.sub("telemetry_rep"));
    ASSERT_FALSE(gen_files.empty());
    EXPECT_EQ(gen_files, rep_files);

    // Jobs invariance extends to replay: serial and parallel replays of the
    // same traces render identically.
    auto serial_cfg = base_config(1);
    serial_cfg.replay_dir = dir.sub("traces");
    const auto serial = run_and_render(scenario, serial_cfg, dir.sub("telemetry_serial"));
    auto wide_cfg = base_config(4);
    wide_cfg.replay_dir = dir.sub("traces");
    const auto wide = run_and_render(scenario, wide_cfg, dir.sub("telemetry_wide"));
    EXPECT_EQ(serial, wide);
    EXPECT_EQ(serial, replayed);
}

TEST(TraceReplay, ServingScenarioIsByteIdentical) {
    expect_replay_identity("serve_saturation");
}

TEST(TraceReplay, FleetScenarioIsByteIdentical) {
    expect_replay_identity("serve_fleet_saturation");
}

TEST(TraceReplay, ReplayFromMissingDirectoryFails) {
    ASSERT_EQ(kFastMode, 0);
    const auto& scenario = ScenarioRegistry::instance().at("serve_saturation");
    const TempDir dir("missing");
    auto cfg = base_config(1);
    cfg.replay_dir = dir.sub("nonexistent");
    const ExperimentHarness harness(cfg);
    EXPECT_THROW((void)harness.run(scenario), std::runtime_error);
}

TEST(TraceReplay, RecapturingAReplayReproducesTheTraces) {
    ASSERT_EQ(kFastMode, 0);
    const auto& scenario = ScenarioRegistry::instance().at("serve_saturation");
    const TempDir dir("rerecord");

    auto record_cfg = base_config(2);
    record_cfg.trace_dir = dir.sub("first");
    (void)ExperimentHarness(record_cfg).run(scenario);

    auto rerecord_cfg = base_config(2);
    rerecord_cfg.replay_dir = dir.sub("first");
    rerecord_cfg.trace_dir = dir.sub("second");
    (void)ExperimentHarness(rerecord_cfg).run(scenario);

    EXPECT_EQ(dir_contents(dir.sub("first")), dir_contents(dir.sub("second")));
}

} // namespace
} // namespace lotus::harness
