// Tests for OPP tables and the power model, parameterized over both device
// presets.

#include <gtest/gtest.h>

#include <cmath>

#include "platform/opp.hpp"
#include "platform/power.hpp"
#include "platform/presets.hpp"

namespace lotus::platform {
namespace {

TEST(OppTable, RejectsDegenerateTables) {
    EXPECT_THROW(OppTable("x", {}), std::invalid_argument);
    EXPECT_THROW(OppTable("x", {{1e9, 0.8}}), std::invalid_argument);
    // Non-ascending frequency.
    EXPECT_THROW(OppTable("x", {{2e9, 0.8}, {1e9, 0.9}}), std::invalid_argument);
    // Descending voltage.
    EXPECT_THROW(OppTable("x", {{1e9, 0.9}, {2e9, 0.8}}), std::invalid_argument);
    // Non-positive entries.
    EXPECT_THROW(OppTable("x", {{0.0, 0.8}, {1e9, 0.9}}), std::invalid_argument);
    EXPECT_THROW(OppTable("x", {{1e9, -0.1}, {2e9, 0.9}}), std::invalid_argument);
}

TEST(OppTable, LevelAccess) {
    OppTable t("gpu", {{1e8, 0.6}, {2e8, 0.7}, {3e8, 0.8}});
    EXPECT_EQ(t.num_levels(), 3u);
    EXPECT_DOUBLE_EQ(t.freq(1), 2e8);
    EXPECT_DOUBLE_EQ(t.voltage(2), 0.8);
    EXPECT_DOUBLE_EQ(t.min_freq(), 1e8);
    EXPECT_DOUBLE_EQ(t.max_freq(), 3e8);
    EXPECT_THROW((void)t.level(3), std::out_of_range);
}

TEST(OppTable, LevelForFreqResolution) {
    OppTable t("cpu", {{1e8, 0.6}, {2e8, 0.7}, {3e8, 0.8}});
    EXPECT_EQ(t.level_for_freq(0.5e8), 0u); // below min clamps to 0
    EXPECT_EQ(t.level_for_freq(1e8), 0u);
    EXPECT_EQ(t.level_for_freq(1.5e8), 0u); // highest level <= f
    EXPECT_EQ(t.level_for_freq(2e8), 1u);
    EXPECT_EQ(t.level_for_freq(2.99e8), 1u);
    EXPECT_EQ(t.level_for_freq(3e8), 2u);
    EXPECT_EQ(t.level_for_freq(9e8), 2u); // above max clamps to top
}

TEST(PowerModel, Validation) {
    PowerParams p;
    p.c_eff = -1.0;
    EXPECT_THROW(PowerModel{p}, std::invalid_argument);
    p = {};
    p.idle_fraction = 1.5;
    EXPECT_THROW(PowerModel{p}, std::invalid_argument);
}

TEST(PowerModel, DynamicScalesWithFV2) {
    PowerParams p;
    p.c_eff = 1e-9;
    p.idle_fraction = 0.0;
    PowerModel m(p);
    const double base = m.dynamic_power(1e9, 0.8, 1.0);
    EXPECT_NEAR(m.dynamic_power(2e9, 0.8, 1.0), 2 * base, 1e-12);
    EXPECT_NEAR(m.dynamic_power(1e9, 1.6, 1.0), 4 * base, 1e-12);
    EXPECT_NEAR(m.dynamic_power(1e9, 0.8, 0.5), 0.5 * base, 1e-12);
}

TEST(PowerModel, IdleFloor) {
    PowerParams p;
    p.c_eff = 1e-9;
    p.idle_fraction = 0.1;
    PowerModel m(p);
    const double full = m.dynamic_power(1e9, 1.0, 1.0);
    const double idle = m.dynamic_power(1e9, 1.0, 0.0);
    EXPECT_NEAR(idle, 0.1 * full, 1e-12);
}

TEST(PowerModel, UtilizationClamped) {
    PowerParams p;
    p.c_eff = 1e-9;
    PowerModel m(p);
    EXPECT_DOUBLE_EQ(m.dynamic_power(1e9, 1.0, 2.0), m.dynamic_power(1e9, 1.0, 1.0));
    EXPECT_DOUBLE_EQ(m.dynamic_power(1e9, 1.0, -1.0), m.dynamic_power(1e9, 1.0, 0.0));
}

TEST(PowerModel, LeakageGrowsExponentiallyWithTemp) {
    PowerParams p;
    p.leak0_w_per_v = 0.5;
    p.leak_temp_coeff = 0.02;
    p.t0_celsius = 25.0;
    PowerModel m(p);
    const double at25 = m.leakage(1.0, 25.0);
    EXPECT_NEAR(at25, 0.5, 1e-12);
    EXPECT_NEAR(m.leakage(1.0, 75.0), 0.5 * std::exp(1.0), 1e-9);
    EXPECT_GT(m.leakage(1.0, 85.0), m.leakage(1.0, 75.0));
}

TEST(PowerModel, TotalIsSumOfParts) {
    PowerParams p;
    p.c_eff = 1e-9;
    p.leak0_w_per_v = 0.2;
    PowerModel m(p);
    const double t = m.total(1e9, 0.9, 0.7, 60.0);
    EXPECT_NEAR(t, m.dynamic_power(1e9, 0.9, 0.7) + m.leakage(0.9, 60.0), 1e-12);
}

// ---------------------------------------------------------------------------
// Preset property suite, parameterized over both devices.
// ---------------------------------------------------------------------------

class PresetSuite : public ::testing::TestWithParam<const char*> {
protected:
    static DeviceSpec spec_for(const std::string& name) {
        return name == "orin" ? orin_nano_spec() : mi11_lite_spec();
    }
};

TEST_P(PresetSuite, LaddersAreWellFormed) {
    const auto spec = spec_for(GetParam());
    for (const auto* domain : {&spec.cpu, &spec.gpu}) {
        ASSERT_GE(domain->opp.num_levels(), 6u);
        for (std::size_t i = 1; i < domain->opp.num_levels(); ++i) {
            ASSERT_GT(domain->opp.freq(i), domain->opp.freq(i - 1));
            ASSERT_GE(domain->opp.voltage(i), domain->opp.voltage(i - 1));
        }
    }
}

TEST_P(PresetSuite, PowerMonotoneInLevel) {
    const auto spec = spec_for(GetParam());
    for (const auto* domain : {&spec.cpu, &spec.gpu}) {
        PowerModel m(domain->power);
        double prev = -1.0;
        for (std::size_t i = 0; i < domain->opp.num_levels(); ++i) {
            const double p =
                m.total(domain->opp.freq(i), domain->opp.voltage(i), 1.0, 50.0);
            ASSERT_GT(p, prev) << "level " << i;
            prev = p;
        }
    }
}

TEST_P(PresetSuite, TurboLevelsCarryVoltageCliff) {
    // The top two GPU levels must cost disproportionally more power than the
    // mid ladder (the burst-only regime the throttler polices).
    const auto spec = spec_for(GetParam());
    const auto& opp = spec.gpu.opp;
    PowerModel m(spec.gpu.power);
    const auto n = opp.num_levels();
    const double p_top = m.dynamic_power(opp.freq(n - 1), opp.voltage(n - 1), 1.0);
    const double p_mid = m.dynamic_power(opp.freq(n - 3), opp.voltage(n - 3), 1.0);
    const double freq_ratio = opp.freq(n - 1) / opp.freq(n - 3);
    const double power_ratio = p_top / p_mid;
    EXPECT_GT(power_ratio, freq_ratio * 1.3)
        << "turbo levels should be superlinearly expensive";
}

TEST_P(PresetSuite, ThrottleParamsSane) {
    const auto spec = spec_for(GetParam());
    EXPECT_GT(spec.gpu_throttle.trip_celsius, spec.initial_ambient_celsius);
    EXPECT_GT(spec.gpu_throttle.hysteresis_k, 0.0);
    EXPECT_LT(spec.gpu_throttle.clamp_level, spec.gpu.opp.num_levels());
    EXPECT_GT(reward_threshold_celsius(spec), spec.initial_ambient_celsius);
    EXPECT_LT(reward_threshold_celsius(spec), throttle_bound_celsius(spec));
}

TEST_P(PresetSuite, MemBandwidthAndLatencies) {
    const auto spec = spec_for(GetParam());
    EXPECT_GT(spec.mem_bandwidth, 1e9);
    EXPECT_GT(spec.dvfs_latency_s, 0.0);
    EXPECT_LT(spec.dvfs_latency_s, 1e-3) << "paper: dozens of microseconds";
}

INSTANTIATE_TEST_SUITE_P(Devices, PresetSuite, ::testing::Values("orin", "mi11"));

TEST(Presets, OrinMatchesPaperHardwareSummary) {
    const auto spec = orin_nano_spec();
    EXPECT_EQ(spec.name, "jetson-orin-nano");
    // 1.5 GHz CPU, 625 MHz GPU (Sec. 4.4).
    EXPECT_NEAR(spec.cpu.opp.max_freq(), 1.5104e9, 1e6);
    EXPECT_NEAR(spec.gpu.opp.max_freq(), 624.75e6, 1e4);
    EXPECT_EQ(spec.cpu.opp.num_levels(), 8u);
    EXPECT_EQ(spec.gpu.opp.num_levels(), 6u);
}

TEST(Presets, Mi11MatchesPaperHardwareSummary) {
    const auto spec = mi11_lite_spec();
    EXPECT_EQ(spec.name, "mi-11-lite");
    // 2.4 GHz Kryo 670 prime core ceiling.
    EXPECT_NEAR(spec.cpu.opp.max_freq(), 2.4e9, 1e6);
    EXPECT_EQ(spec.cpu.opp.num_levels(), 8u);
    EXPECT_EQ(spec.gpu.opp.num_levels(), 8u);
    // Phone throttles at skin-level temperatures (Fig. 6's 28-40 C band).
    EXPECT_LT(throttle_bound_celsius(spec), 50.0);
}

TEST(Presets, OrinFasterThanMi11) {
    const auto orin = orin_nano_spec();
    const auto mi11 = mi11_lite_spec();
    const double orin_gpu = orin.gpu.opp.max_freq() * orin.gpu.ops_per_cycle;
    const double mi11_gpu = mi11.gpu.opp.max_freq() * mi11.gpu.ops_per_cycle;
    // Tables 1 vs 2 show a ~3-4x latency gap.
    EXPECT_GT(orin_gpu / mi11_gpu, 3.0);
    EXPECT_LT(orin_gpu / mi11_gpu, 6.0);
}

} // namespace
} // namespace lotus::platform
