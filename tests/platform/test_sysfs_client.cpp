// Tests for the typed sysfs client against a mounted simulated device.

#include <gtest/gtest.h>

#include "platform/device.hpp"
#include "platform/presets.hpp"
#include "platform/sysfs_client.hpp"

namespace lotus::platform {
namespace {

class SysfsClientTest : public ::testing::Test {
protected:
    SysfsClientTest() : dev_(orin_nano_spec()) {
        dev_.mount_sysfs(fs_);
    }
    EdgeDevice dev_;
    SysfsFs fs_;
};

TEST_F(SysfsClientTest, RequiresMountedDevice) {
    SysfsFs empty;
    EXPECT_THROW(SysfsDvfsClient{empty}, std::invalid_argument);
    EXPECT_NO_THROW(SysfsDvfsClient{fs_});
}

TEST_F(SysfsClientTest, ReadsTemperatures) {
    SysfsDvfsClient client(fs_);
    EXPECT_NEAR(client.cpu_temp_celsius(), dev_.cpu_temp(), 0.01);
    EXPECT_NEAR(client.gpu_temp_celsius(), dev_.gpu_temp(), 0.01);
    dev_.advance(30.0, 1.0, 1.0);
    EXPECT_NEAR(client.gpu_temp_celsius(), dev_.gpu_temp(), 0.01);
    EXPECT_GT(client.gpu_temp_celsius(), 30.0);
}

TEST_F(SysfsClientTest, ReadsFrequencies) {
    SysfsDvfsClient client(fs_);
    EXPECT_NEAR(client.cpu_freq_hz(), dev_.cpu_freq(), 1000.0);
    EXPECT_NEAR(client.gpu_freq_hz(), dev_.gpu_freq(), 1.0);
}

TEST_F(SysfsClientTest, LaddersMatchSpec) {
    SysfsDvfsClient client(fs_);
    const auto cpu = client.cpu_available_hz();
    const auto gpu = client.gpu_available_hz();
    ASSERT_EQ(cpu.size(), dev_.cpu_levels());
    ASSERT_EQ(gpu.size(), dev_.gpu_levels());
    for (std::size_t i = 0; i < cpu.size(); ++i) {
        // cpufreq rounds to kHz.
        EXPECT_NEAR(cpu[i], dev_.spec().cpu.opp.freq(i), 1000.0);
    }
    for (std::size_t i = 0; i < gpu.size(); ++i) {
        EXPECT_NEAR(gpu[i], dev_.spec().gpu.opp.freq(i), 1.0);
    }
}

TEST_F(SysfsClientTest, ActuatesFrequenciesThroughSysfs) {
    SysfsDvfsClient client(fs_);
    client.set_cpu_level(2);
    client.set_gpu_level(1);
    EXPECT_EQ(dev_.cpu_level(), 2u);
    EXPECT_EQ(dev_.gpu_level(), 1u);

    client.set_cpu_freq_hz(dev_.spec().cpu.opp.freq(4));
    EXPECT_EQ(dev_.cpu_level(), 4u);

    EXPECT_THROW(client.set_cpu_level(99), std::out_of_range);
    EXPECT_THROW(client.set_gpu_level(99), std::out_of_range);
}

TEST_F(SysfsClientTest, MaxFreqTracksThrottleCap) {
    SysfsDvfsClient client(fs_);
    EXPECT_NEAR(client.gpu_max_freq_hz(), dev_.spec().gpu.opp.max_freq(), 1.0);
    // Heat-soak until the GPU throttles; the advertised ceiling must drop.
    for (int i = 0; i < 400 && !dev_.gpu_throttled(); ++i) dev_.advance(1.0, 0.3, 1.0);
    ASSERT_TRUE(dev_.gpu_throttled());
    EXPECT_LT(client.gpu_max_freq_hz(), dev_.spec().gpu.opp.max_freq());
}

TEST_F(SysfsClientTest, RoundTripControlLoop) {
    // A minimal "agent over sysfs" loop: observe, decide, actuate -- the
    // deployment shape of the paper's client/agent split.
    SysfsDvfsClient client(fs_);
    for (int step = 0; step < 10; ++step) {
        const double t = client.gpu_temp_celsius();
        const auto ladder = client.gpu_available_hz();
        // Naive policy: hot -> bottom, cool -> top.
        client.set_gpu_freq_hz(t > 60.0 ? ladder.front() : ladder.back());
        dev_.advance(5.0, 0.3, 1.0);
    }
    // The loop must have actually controlled the device.
    EXPECT_TRUE(dev_.gpu_level() == 0 || dev_.gpu_level() == dev_.gpu_levels() - 1);
}

} // namespace
} // namespace lotus::platform
