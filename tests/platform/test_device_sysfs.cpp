// Tests for the EdgeDevice facade and the sysfs emulation layer.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "platform/device.hpp"
#include "platform/presets.hpp"

namespace lotus::platform {
namespace {

EdgeDevice make_orin() {
    return EdgeDevice(orin_nano_spec());
}

TEST(EdgeDevice, StartsAtMaxLevelsAndAmbient) {
    auto dev = make_orin();
    EXPECT_EQ(dev.cpu_level(), dev.cpu_levels() - 1);
    EXPECT_EQ(dev.gpu_level(), dev.gpu_levels() - 1);
    EXPECT_NEAR(dev.cpu_temp(), 25.0, 1e-9);
    EXPECT_NEAR(dev.gpu_temp(), 25.0, 1e-9);
    EXPECT_EQ(dev.now(), 0.0);
    EXPECT_EQ(dev.energy_joules(), 0.0);
}

TEST(EdgeDevice, RequestLevelsGrantedWhenCool) {
    auto dev = make_orin();
    dev.request_levels(2, 3);
    EXPECT_EQ(dev.cpu_level(), 2u);
    EXPECT_EQ(dev.gpu_level(), 3u);
    EXPECT_DOUBLE_EQ(dev.cpu_freq(), dev.spec().cpu.opp.freq(2));
    EXPECT_DOUBLE_EQ(dev.gpu_freq(), dev.spec().gpu.opp.freq(3));
}

TEST(EdgeDevice, RequestOutOfRangeThrows) {
    auto dev = make_orin();
    EXPECT_THROW(dev.request_levels(99, 0), std::out_of_range);
    EXPECT_THROW(dev.request_levels(0, 99), std::out_of_range);
}

TEST(EdgeDevice, DvfsTransitionCostsTime) {
    auto dev = make_orin();
    const double t0 = dev.now();
    dev.request_levels(1, 1);
    EXPECT_NEAR(dev.now() - t0, dev.spec().dvfs_latency_s, 1e-12);
    // No-op request costs nothing.
    const double t1 = dev.now();
    dev.request_levels(1, 1);
    EXPECT_EQ(dev.now(), t1);
}

TEST(EdgeDevice, ThroughputScalesWithLevel) {
    auto dev = make_orin();
    dev.request_levels(7, 5);
    const double fast = dev.gpu_throughput();
    dev.request_levels(7, 0);
    const double slow = dev.gpu_throughput();
    EXPECT_GT(fast, slow);
    EXPECT_NEAR(fast / slow,
                dev.spec().gpu.opp.max_freq() / dev.spec().gpu.opp.min_freq(), 1e-9);
}

TEST(EdgeDevice, AdvanceAccumulatesTimeEnergyHeat) {
    auto dev = make_orin();
    dev.advance(5.0, 1.0, 1.0);
    EXPECT_NEAR(dev.now(), 5.0, 1e-9);
    EXPECT_GT(dev.energy_joules(), 0.0);
    EXPECT_GT(dev.gpu_temp(), 25.0);
    EXPECT_GT(dev.cpu_temp(), 25.0);
    EXPECT_GT(dev.last_power().total(), 1.0);
}

TEST(EdgeDevice, IdleDrawsLessThanBusy) {
    auto busy = make_orin();
    auto idle = make_orin();
    busy.advance(5.0, 1.0, 1.0);
    idle.advance(5.0, 0.0, 0.0);
    EXPECT_GT(busy.energy_joules(), 3.0 * idle.energy_joules());
}

TEST(EdgeDevice, NegativeAdvanceThrows) {
    auto dev = make_orin();
    EXPECT_THROW(dev.advance(-0.1, 0, 0), std::invalid_argument);
}

TEST(EdgeDevice, SustainedMaxLoadTripsGpuThrottle) {
    auto dev = make_orin();
    // Run hot long enough for the board to soak; max levels + full util.
    for (int i = 0; i < 400; ++i) dev.advance(1.0, 0.3, 1.0);
    EXPECT_TRUE(dev.gpu_throttled());
    // Granted level is clamped below the request.
    EXPECT_LT(dev.gpu_level(), dev.requested_gpu_level());
}

TEST(EdgeDevice, MidLadderIsThermallySustainable) {
    auto dev = make_orin();
    dev.request_levels(5, 3); // the sustainable operating point of DESIGN.md
    for (int i = 0; i < 600; ++i) dev.advance(1.0, 0.3, 0.8);
    EXPECT_FALSE(dev.gpu_throttled());
    EXPECT_LT(dev.gpu_temp(), dev.spec().gpu_throttle.trip_celsius);
}

TEST(EdgeDevice, ThrottleRecoveryRestoresRequest) {
    auto dev = make_orin();
    for (int i = 0; i < 400; ++i) dev.advance(1.0, 0.3, 1.0);
    ASSERT_TRUE(dev.gpu_throttled());
    // Cool down: idle at cold ambient.
    dev.set_ambient(0.0);
    for (int i = 0; i < 600; ++i) dev.advance(1.0, 0.0, 0.0);
    EXPECT_FALSE(dev.gpu_throttled());
    EXPECT_EQ(dev.gpu_level(), dev.requested_gpu_level());
}

TEST(EdgeDevice, AmbientShiftsTemperatures) {
    auto warm = make_orin();
    auto cold = make_orin();
    cold.set_ambient(0.0);
    // reset() re-seeds the thermal state from ambient.
    cold.reset();
    warm.advance(50.0, 0.5, 0.5);
    cold.advance(50.0, 0.5, 0.5);
    EXPECT_GT(warm.gpu_temp(), cold.gpu_temp() + 10.0);
}

/// Records event/throttle callbacks with a fixed-cadence deadline.
class RecordingListener final : public AdvanceListener {
public:
    explicit RecordingListener(double interval_s) : interval_s_(interval_s), due_(interval_s) {}
    [[nodiscard]] double next_event_s() const override { return due_; }
    void on_event(double now_s, double, double) override {
        events.push_back(now_s);
        due_ += interval_s_;
    }
    void on_throttle(double now_s, bool, bool) override { throttles.push_back(now_s); }

    std::vector<double> events;
    std::vector<double> throttles;

private:
    double interval_s_;
    double due_;
};

TEST(EdgeDevice, SingleAdvanceAuthorityCoversDvfsTransitions) {
    // request_levels used to advance the clock without notifying anyone;
    // now the transition runs through the same event-driven loop, so
    // listener deadlines inside the stall are honoured at their exact time.
    auto spec = orin_nano_spec();
    spec.dvfs_latency_s = 0.2;
    EdgeDevice dev(spec);
    RecordingListener listener(0.07);
    dev.set_advance_listener(&listener);

    dev.request_levels(1, 1); // 0.2 s stall
    ASSERT_EQ(listener.events.size(), 2u); // t = 0.07, 0.14
    EXPECT_NEAR(listener.events[0], 0.07, 1e-12);
    EXPECT_NEAR(listener.events[1], 0.14, 1e-12);
    EXPECT_NEAR(dev.now(), 0.2, 1e-12);
}

TEST(EdgeDevice, ListenerSeesThrottleEngagementAtPollInstants) {
    auto dev = make_orin();
    RecordingListener listener(1e9); // no events, throttle callbacks only
    dev.set_advance_listener(&listener);
    for (int i = 0; i < 400 && listener.throttles.empty(); ++i) dev.advance(1.0, 0.3, 1.0);
    ASSERT_FALSE(listener.throttles.empty());
    // Throttle decisions happen on the 100 ms poll grid.
    EXPECT_NEAR(std::remainder(listener.throttles.front(), 0.1), 0.0, 1e-9);
    EXPECT_TRUE(dev.throttled());
}

TEST(EdgeDevice, AdvanceWorkStopsAtGrantedLevelChange) {
    auto dev = make_orin();
    // Run hot in long requested slices: advance_work must return early the
    // moment a throttle poll changes a granted level, so a caller's sampled
    // throughput stays valid over the returned interval.
    bool saw_early_return = false;
    for (int i = 0; i < 500 && !saw_early_return; ++i) {
        const auto cpu_before = dev.cpu_level();
        const auto gpu_before = dev.gpu_level();
        const double h = dev.advance_work(5.0, 0.3, 1.0);
        ASSERT_GT(h, 0.0);
        if (h < 5.0 - 1e-9) {
            saw_early_return = true;
            // Early return must coincide with a granted-level change.
            EXPECT_TRUE(dev.cpu_level() != cpu_before || dev.gpu_level() != gpu_before);
            // ... at a throttle-poll instant.
            EXPECT_NEAR(std::remainder(dev.now(), 0.1), 0.0, 1e-9);
        }
    }
    EXPECT_TRUE(saw_early_return);
    EXPECT_TRUE(dev.throttled());
}

TEST(EdgeDevice, SubNanosecondAdvanceStillMakesProgress) {
    // Residual work slices can be arbitrarily small (an event boundary
    // landing just before a stage end); the advance loop must burn them
    // rather than returning 0 elapsed, or work-integration loops would spin.
    auto dev = make_orin();
    const double h = dev.advance_work(1e-13, 1.0, 0.0);
    EXPECT_DOUBLE_EQ(h, 1e-13);
    EXPECT_GT(dev.now(), 0.0);
}

TEST(EdgeDevice, ClosedFormAndEulerSteppingAgree) {
    auto closed_spec = orin_nano_spec();
    auto euler_spec = orin_nano_spec();
    euler_spec.thermal_stepping = ThermalStepping::euler_slice;
    EdgeDevice closed(closed_spec);
    EdgeDevice euler(euler_spec);
    for (auto* dev : {&closed, &euler}) {
        dev->request_levels(5, 3);
        dev->advance(30.0, 0.3, 0.8);
    }
    EXPECT_NEAR(closed.gpu_temp(), euler.gpu_temp(), 0.05);
    EXPECT_NEAR(closed.cpu_temp(), euler.cpu_temp(), 0.05);
    EXPECT_LT(closed.thermal_steps() * 3, euler.thermal_steps());
}

TEST(EdgeDevice, ResetRestoresColdStart) {
    auto dev = make_orin();
    dev.advance(100.0, 1.0, 1.0);
    dev.request_levels(2, 2);
    dev.reset();
    EXPECT_EQ(dev.now(), 0.0);
    EXPECT_EQ(dev.energy_joules(), 0.0);
    EXPECT_NEAR(dev.cpu_temp(), dev.ambient(), 1e-9);
    // Requested levels survive a reset (reset is thermal, not config).
    EXPECT_EQ(dev.requested_cpu_level(), 2u);
}

// ---------------------------------------------------------------------------
// sysfs.
// ---------------------------------------------------------------------------

TEST(Sysfs, RegistrationRules) {
    SysfsFs fs;
    fs.add_file("/a/b", [] { return "1"; });
    EXPECT_THROW(fs.add_file("/a/b", [] { return "2"; }), std::invalid_argument);
    EXPECT_THROW(fs.add_file("relative/path", [] { return "x"; }), std::invalid_argument);
    EXPECT_THROW(fs.add_file("/a/c", SysfsFs::ReadFn{}), std::invalid_argument);
}

TEST(Sysfs, ReadWriteSemantics) {
    SysfsFs fs;
    int value = 5;
    fs.add_file(
        "/rw", [&] { return std::to_string(value); },
        [&](const std::string& v) { value = std::stoi(v); });
    fs.add_file("/ro", [] { return "7"; });

    EXPECT_EQ(fs.read("/rw"), "5");
    fs.write("/rw", "9");
    EXPECT_EQ(value, 9);
    EXPECT_EQ(fs.read_ll("/rw"), 9);
    EXPECT_THROW(fs.write("/ro", "1"), std::runtime_error);
    EXPECT_THROW((void)fs.read("/missing"), std::out_of_range);
    EXPECT_THROW(fs.write("/missing", "1"), std::out_of_range);
}

TEST(Sysfs, ListByPrefix) {
    SysfsFs fs;
    fs.add_file("/sys/a", [] { return ""; });
    fs.add_file("/sys/b", [] { return ""; });
    fs.add_file("/proc/c", [] { return ""; });
    EXPECT_EQ(fs.list("/sys").size(), 2u);
    EXPECT_EQ(fs.list("/").size(), 3u);
}

class MountedSysfs : public ::testing::Test {
protected:
    MountedSysfs() : dev_(orin_nano_spec()) {
        dev_.mount_sysfs(fs_);
    }
    EdgeDevice dev_;
    SysfsFs fs_;
};

TEST_F(MountedSysfs, ExposesKernelLikeNodes) {
    EXPECT_TRUE(fs_.exists("/sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq"));
    EXPECT_TRUE(fs_.exists("/sys/class/devfreq/gpu/cur_freq"));
    EXPECT_TRUE(fs_.exists("/sys/class/thermal/thermal_zone0/temp"));
    EXPECT_TRUE(fs_.exists("/sys/class/thermal/thermal_zone1/temp"));
}

TEST_F(MountedSysfs, CpufreqReportsKhz) {
    const auto khz =
        fs_.read_ll("/sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq");
    EXPECT_EQ(khz, static_cast<long long>(dev_.cpu_freq() / 1000.0));
}

TEST_F(MountedSysfs, ThermalZoneReportsMilliCelsius) {
    dev_.advance(20.0, 1.0, 1.0);
    const auto milli = fs_.read_ll("/sys/class/thermal/thermal_zone1/temp");
    EXPECT_NEAR(static_cast<double>(milli) / 1000.0, dev_.gpu_temp(), 0.01);
}

TEST_F(MountedSysfs, SetspeedWriteChangesFrequency) {
    const auto target_khz = static_cast<long long>(dev_.spec().cpu.opp.freq(2) / 1000.0);
    fs_.write("/sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed",
              std::to_string(target_khz));
    EXPECT_EQ(dev_.cpu_level(), 2u);
    fs_.write("/sys/class/devfreq/gpu/userspace/set_freq",
              std::to_string(static_cast<long long>(dev_.spec().gpu.opp.freq(1))));
    EXPECT_EQ(dev_.gpu_level(), 1u);
}

TEST_F(MountedSysfs, MaxFreqReflectsThrottleCap) {
    // Heat until the GPU throttles and confirm the advertised max drops.
    for (int i = 0; i < 400; ++i) dev_.advance(1.0, 0.3, 1.0);
    ASSERT_TRUE(dev_.gpu_throttled());
    const auto capped = fs_.read_ll("/sys/class/devfreq/gpu/max_freq");
    EXPECT_LT(capped, static_cast<long long>(dev_.spec().gpu.opp.max_freq()));
}

TEST_F(MountedSysfs, AvailableFrequenciesListsLadder) {
    const auto s = fs_.read("/sys/class/devfreq/gpu/available_frequencies");
    // All six ladder entries, space separated.
    EXPECT_EQ(std::count(s.begin(), s.end(), ' '), 5);
    EXPECT_NE(s.find("624750000"), std::string::npos);
}

} // namespace
} // namespace lotus::platform
