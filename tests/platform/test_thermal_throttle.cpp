// Tests for the RC thermal network and the trip-clamp throttler.

#include <gtest/gtest.h>

#include <cmath>

#include "platform/thermal.hpp"
#include "platform/throttle.hpp"

namespace lotus::platform {
namespace {

ThermalParams default_params() {
    return ThermalParams{};
}

TEST(ThermalNetwork, Validation) {
    auto p = default_params();
    p.capacity[0] = 0.0;
    EXPECT_THROW(ThermalNetwork{p}, std::invalid_argument);
    p = default_params();
    p.g_to_board[1] = -0.1;
    EXPECT_THROW(ThermalNetwork{p}, std::invalid_argument);
    p = default_params();
    p.max_dt = 0.0;
    EXPECT_THROW(ThermalNetwork{p}, std::invalid_argument);
}

TEST(ThermalNetwork, NoPowerStaysAtAmbient) {
    ThermalNetwork net(default_params());
    net.reset(25.0);
    net.step(100.0, {0, 0, 0}, 25.0);
    for (const double t : net.temperatures()) EXPECT_NEAR(t, 25.0, 1e-9);
}

TEST(ThermalNetwork, HeatsMonotonicallyUnderConstantPower) {
    ThermalNetwork net(default_params());
    net.reset(25.0);
    double prev = 25.0;
    for (int i = 0; i < 50; ++i) {
        net.step(1.0, {2.0, 8.0, 0.0}, 25.0);
        const double t = net.temperature(ThermalNode::gpu);
        ASSERT_GE(t, prev - 1e-9);
        prev = t;
    }
    EXPECT_GT(prev, 30.0);
}

TEST(ThermalNetwork, ConvergesToClosedFormSteadyState) {
    ThermalNetwork net(default_params());
    net.reset(25.0);
    const std::array<double, kNumThermalNodes> power{2.0, 8.0, 0.0};
    const auto expected = net.steady_state(power, 25.0);
    for (int i = 0; i < 500; ++i) net.step(10.0, power, 25.0);
    EXPECT_NEAR(net.temperature(ThermalNode::cpu), expected[0], 0.05);
    EXPECT_NEAR(net.temperature(ThermalNode::gpu), expected[1], 0.05);
    EXPECT_NEAR(net.temperature(ThermalNode::board), expected[2], 0.05);
}

TEST(ThermalNetwork, SteadyStateOrdering) {
    ThermalNetwork net(default_params());
    const auto ss = net.steady_state({1.0, 10.0, 0.0}, 25.0);
    // The hot die sits above the board, the board above ambient.
    EXPECT_GT(ss[1], ss[2]);
    EXPECT_GT(ss[2], 25.0);
    // More power -> hotter everywhere.
    const auto ss2 = net.steady_state({1.0, 14.0, 0.0}, 25.0);
    EXPECT_GT(ss2[1], ss[1]);
    EXPECT_GT(ss2[2], ss[2]);
}

TEST(ThermalNetwork, CpuGpuCoupledThroughBoard) {
    // Heating only the GPU must raise the CPU temperature too (Sec. 3
    // "thermal coupling among processors").
    ThermalNetwork net(default_params());
    net.reset(25.0);
    for (int i = 0; i < 300; ++i) net.step(5.0, {0.0, 10.0, 0.0}, 25.0);
    EXPECT_GT(net.temperature(ThermalNode::cpu), 35.0);
}

TEST(ThermalNetwork, CoolsWhenPowerRemoved) {
    ThermalNetwork net(default_params());
    net.reset(25.0);
    for (int i = 0; i < 100; ++i) net.step(5.0, {3.0, 12.0, 0.0}, 25.0);
    const double hot = net.temperature(ThermalNode::gpu);
    for (int i = 0; i < 100; ++i) net.step(5.0, {0.0, 0.0, 0.0}, 25.0);
    EXPECT_LT(net.temperature(ThermalNode::gpu), hot);
}

TEST(ThermalNetwork, AmbientShiftsEquilibrium) {
    ThermalNetwork net(default_params());
    const auto warm = net.steady_state({2.0, 8.0, 0.0}, 25.0);
    const auto cold = net.steady_state({2.0, 8.0, 0.0}, 0.0);
    EXPECT_NEAR(warm[1] - cold[1], 25.0, 0.5); // linear system: pure offset
}

TEST(ThermalNetwork, NegativeDtThrows) {
    ThermalNetwork net(default_params());
    EXPECT_THROW(net.step(-1.0, {0, 0, 0}, 25.0), std::invalid_argument);
}

TEST(ThermalNetwork, SubstepIndependence) {
    // Integrating 10 s in one call or in 100 calls must agree closely.
    ThermalNetwork a(default_params());
    ThermalNetwork b(default_params());
    a.reset(25.0);
    b.reset(25.0);
    const std::array<double, kNumThermalNodes> power{2.0, 9.0, 0.0};
    a.step(10.0, power, 25.0);
    for (int i = 0; i < 100; ++i) b.step(0.1, power, 25.0);
    EXPECT_NEAR(a.temperature(ThermalNode::gpu), b.temperature(ThermalNode::gpu), 1e-6);
}

// ---------------------------------------------------------------------------
// Closed-form exponential stepper.
// ---------------------------------------------------------------------------

TEST(ThermalNetworkExact, MatchesEulerReference) {
    ThermalNetwork euler(default_params());
    ThermalNetwork exact(default_params());
    euler.reset(25.0);
    exact.reset(25.0);
    const std::array<double, kNumThermalNodes> power{2.0, 8.0, 0.0};
    euler.step(10.0, power, 25.0);   // 2000 Euler sub-steps
    exact.step_exact(10.0, power, 25.0); // ONE step
    for (std::size_t i = 0; i < kNumThermalNodes; ++i) {
        EXPECT_NEAR(exact.temperatures()[i], euler.temperatures()[i], 5e-3);
    }
}

TEST(ThermalNetworkExact, IsTimeAdditive) {
    // The exact solution forms a semigroup: stepping 3 s then 7 s equals one
    // 10 s step to machine precision -- the property Euler only approximates.
    ThermalNetwork a(default_params());
    ThermalNetwork b(default_params());
    a.reset(25.0);
    b.reset(25.0);
    const std::array<double, kNumThermalNodes> power{3.0, 12.0, 0.0};
    a.step_exact(3.0, power, 25.0);
    a.step_exact(7.0, power, 25.0);
    b.step_exact(10.0, power, 25.0);
    for (std::size_t i = 0; i < kNumThermalNodes; ++i) {
        EXPECT_NEAR(a.temperatures()[i], b.temperatures()[i], 1e-9);
    }
}

TEST(ThermalNetworkExact, ConvergesToSteadyStateInOneStep) {
    ThermalNetwork net(default_params());
    net.reset(25.0);
    const std::array<double, kNumThermalNodes> power{2.0, 8.0, 0.0};
    const auto expected = net.steady_state(power, 25.0);
    net.step_exact(1e6, power, 25.0);
    for (std::size_t i = 0; i < kNumThermalNodes; ++i) {
        EXPECT_NEAR(net.temperatures()[i], expected[i], 1e-9);
    }
}

TEST(ThermalNetworkExact, DriftBoundIsHonored) {
    ThermalNetwork net(default_params());
    net.reset(25.0);
    const std::array<double, kNumThermalNodes> power{3.0, 12.0, 0.0};
    // Walk towards steady state in bound-sized steps; no step may drift any
    // node more than the requested delta.
    for (int i = 0; i < 50; ++i) {
        const double h = net.max_step_for_drift(power, 25.0, 0.5);
        if (std::isinf(h)) break;
        ASSERT_GT(h, 0.0);
        const auto before = net.temperatures();
        net.step_exact(h, power, 25.0);
        for (std::size_t n = 0; n < kNumThermalNodes; ++n) {
            EXPECT_LE(std::abs(net.temperatures()[n] - before[n]), 0.5 + 1e-9);
        }
    }
}

TEST(ThermalNetworkExact, DriftBoundInfiniteAtSteadyState) {
    ThermalNetwork net(default_params());
    net.reset(25.0);
    const std::array<double, kNumThermalNodes> power{2.0, 8.0, 0.0};
    net.step_exact(1e9, power, 25.0);
    EXPECT_TRUE(std::isinf(net.max_step_for_drift(power, 25.0, 0.25)));
}

TEST(ThermalNetworkExact, StepCounters) {
    ThermalNetwork net(default_params());
    net.reset(25.0);
    EXPECT_EQ(net.steps(), 0u);
    net.step(1.0, {1, 1, 0}, 25.0); // 200 Euler sub-steps at max_dt = 5 ms
    EXPECT_EQ(net.steps(), 200u);
    net.step_exact(1.0, {1, 1, 0}, 25.0);
    EXPECT_EQ(net.steps(), 201u);
    net.reset(25.0);
    EXPECT_EQ(net.steps(), 0u);
}

TEST(ThermalNetworkExact, IsolatedNetworkFallsBackToEuler) {
    // Without any path to ambient the system is singular (no steady state);
    // step_exact must fall back to Euler instead of dividing by zero.
    auto p = default_params();
    p.g_to_ambient = {0.0, 0.0, 0.0};
    ThermalNetwork net(p);
    net.reset(25.0);
    net.step_exact(1.0, {1.0, 1.0, 0.0}, 25.0);
    for (const double t : net.temperatures()) {
        EXPECT_TRUE(std::isfinite(t));
        EXPECT_GT(t, 25.0); // heat with nowhere to go accumulates
    }
    EXPECT_EQ(net.steps(), 200u); // Euler sub-step count, not 1
    EXPECT_TRUE(std::isinf(net.max_step_for_drift({1.0, 1.0, 0.0}, 25.0, 0.25)));
}

// ---------------------------------------------------------------------------
// Throttler.
// ---------------------------------------------------------------------------

ThrottleParams throttle_params() {
    ThrottleParams p;
    p.trip_celsius = 85.0;
    p.hysteresis_k = 4.0;
    p.poll_interval_s = 0.1;
    p.clamp_level = 1;
    p.num_levels = 6;
    return p;
}

TEST(ThermalThrottler, Validation) {
    auto p = throttle_params();
    p.num_levels = 0;
    EXPECT_THROW(ThermalThrottler{p}, std::invalid_argument);
    p = throttle_params();
    p.clamp_level = 6;
    EXPECT_THROW(ThermalThrottler{p}, std::invalid_argument);
    p = throttle_params();
    p.poll_interval_s = 0.0;
    EXPECT_THROW(ThermalThrottler{p}, std::invalid_argument);
    p = throttle_params();
    p.hysteresis_k = -1.0;
    EXPECT_THROW(ThermalThrottler{p}, std::invalid_argument);
}

TEST(ThermalThrottler, StartsUncapped) {
    ThermalThrottler t(throttle_params());
    EXPECT_EQ(t.cap(), 5u);
    EXPECT_FALSE(t.engaged());
    EXPECT_EQ(t.trip_events(), 0u);
}

TEST(ThermalThrottler, ColdNeverEngages) {
    ThermalThrottler t(throttle_params());
    for (int i = 1; i <= 100; ++i) t.update(i * 0.1, 60.0);
    EXPECT_FALSE(t.engaged());
}

TEST(ThermalThrottler, TripClampsImmediatelyToLowLevel) {
    // "thermal throttling will be activated to decrease the frequency to a
    // very low level" (Sec. 1).
    ThermalThrottler t(throttle_params());
    t.update(0.1, 86.0);
    EXPECT_EQ(t.cap(), 1u);
    EXPECT_TRUE(t.engaged());
    EXPECT_EQ(t.trip_events(), 1u);
}

TEST(ThermalThrottler, HoldsInsideHysteresisBand) {
    ThermalThrottler t(throttle_params());
    t.update(0.1, 86.0);
    // 83 C is inside (81, 85): the clamp must hold.
    for (int i = 2; i <= 50; ++i) t.update(i * 0.1, 83.0);
    EXPECT_EQ(t.cap(), 1u);
}

TEST(ThermalThrottler, ReleasesGraduallyBelowHysteresis) {
    ThermalThrottler t(throttle_params());
    t.update(0.1, 86.0);
    ASSERT_EQ(t.cap(), 1u);
    t.update(0.2, 80.0); // below 85-4=81
    EXPECT_EQ(t.cap(), 2u);
    t.update(0.3, 80.0);
    EXPECT_EQ(t.cap(), 3u);
    t.update(0.4, 80.0);
    t.update(0.5, 80.0);
    EXPECT_EQ(t.cap(), 5u);
    EXPECT_FALSE(t.engaged());
}

TEST(ThermalThrottler, CountsDistinctTripEvents) {
    ThermalThrottler t(throttle_params());
    t.update(0.1, 86.0); // trip 1
    t.update(0.2, 86.0); // still hot: same event
    EXPECT_EQ(t.trip_events(), 1u);
    for (int i = 3; i <= 7; ++i) t.update(i * 0.1, 79.0); // recover fully
    t.update(0.8, 86.0); // trip 2
    EXPECT_EQ(t.trip_events(), 2u);
}

TEST(ThermalThrottler, PollingRateLimits) {
    ThermalThrottler t(throttle_params());
    t.update(0.1, 86.0);
    // Recovery checks are also paced by the poll interval.
    t.update(0.15, 70.0); // only 50 ms later: no poll yet
    EXPECT_EQ(t.cap(), 1u);
    t.update(0.21, 70.0);
    EXPECT_EQ(t.cap(), 2u);
}

TEST(ThermalThrottler, LongJumpAppliesMultiplePolls) {
    ThermalThrottler t(throttle_params());
    t.update(0.1, 86.0);
    ASSERT_EQ(t.cap(), 1u);
    // A 1-second jump while cool applies ~10 release steps.
    t.update(1.2, 75.0);
    EXPECT_EQ(t.cap(), 5u);
}

TEST(ThermalThrottler, ResetRestoresFullLadder) {
    ThermalThrottler t(throttle_params());
    t.update(0.1, 90.0);
    t.reset();
    EXPECT_EQ(t.cap(), 5u);
    EXPECT_EQ(t.trip_events(), 0u);
    EXPECT_FALSE(t.engaged());
}

} // namespace
} // namespace lotus::platform
