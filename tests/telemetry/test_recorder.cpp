// Unit contract of the sim-time telemetry Recorder (PR 7): deterministic
// track numbering, strict duration-span pairing, the per-process breach
// flight recorder, byte-identical exports for identical event sequences,
// and the thread-local BindScope/SuspendScope plumbing every
// instrumentation site branches on.

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>

#include "telemetry/recorder.hpp"

namespace lotus::telemetry {
namespace {

TEST(Recorder, TracksNumberInFirstSeenOrder) {
    Recorder rec;
    const int a = rec.track("orin", "engine");
    const int b = rec.track("orin", "governor");
    const int c = rec.track("mi11", "engine");
    EXPECT_EQ(rec.track("orin", "engine"), a);       // idempotent
    EXPECT_EQ(rec.track("orin", "governor"), b);
    EXPECT_NE(a, b);
    EXPECT_NE(b, c);

    // Context routing: nested emitters reach the right process without a
    // device handle.
    rec.set_context("mi11");
    EXPECT_EQ(rec.context_track("engine"), c);
    rec.set_context("orin");
    EXPECT_EQ(rec.context_track("governor"), b);
}

TEST(Recorder, DurationSpansPairStrictly) {
    Recorder rec;
    const int t = rec.track("dev", "engine");
    rec.begin(t, "frame", 0.1);
    rec.begin(t, "inference", 0.2); // nested
    rec.end(t, 0.3);
    rec.end(t, 0.4);
    EXPECT_EQ(rec.event_count(), 4u);
    // Closing with nothing open is unbalanced instrumentation -- a bug, not
    // a recoverable condition.
    EXPECT_THROW(rec.end(t, 0.5), std::logic_error);
}

TEST(Recorder, EventsOnUnknownTrackThrow) {
    Recorder rec;
    EXPECT_THROW(rec.instant(0, "tick", 0.0), std::out_of_range);
    EXPECT_THROW(rec.counter(42, "temp", 0.0, 1.0), std::out_of_range);
}

TEST(Recorder, RejectsDegenerateOptions) {
    EXPECT_THROW(Recorder(RecorderOptions{.sample_period_s = 0.0}),
                 std::invalid_argument);
    EXPECT_THROW(Recorder(RecorderOptions{.ring_capacity = 0}), std::invalid_argument);
}

// Drive one plausible mini-episode through a recorder.
void record_episode(Recorder& rec) {
    const int eng = rec.track("dev", "engine");
    const int plat = rec.track("dev", "platform");
    const int stream = rec.track("streams", "cam0");
    rec.async_begin(stream, "req", 7, 0.05, "\"slo_ms\":" + jnum(900.0));
    rec.begin(eng, "frame", 0.1);
    rec.counter(plat, "cpu_temp_c", 0.1, 41.5);
    rec.instant(eng, "decision", 0.15, "\"cpu_level\":3");
    rec.end(eng, 0.3);
    rec.async_end(stream, "req", 7, 0.3, "\"outcome\":" + jstr("served"));
    // Recorded late -- a timestamp before the previous event -- must still
    // export monotonically (stable sort by time).
    rec.counter(plat, "gpu_temp_c", 0.2, 44.0);
}

TEST(Recorder, IdenticalEpisodesExportByteIdentically) {
    Recorder a;
    Recorder b;
    record_episode(a);
    record_episode(b);
    EXPECT_EQ(a.chrome_trace_json(), b.chrome_trace_json());
    EXPECT_EQ(a.events_jsonl(), b.events_jsonl());
    EXPECT_EQ(a.metrics_csv(), b.metrics_csv());
    EXPECT_EQ(a.manifest_json(), b.manifest_json());
}

TEST(Recorder, ExportsAreTimeSortedDespiteLateEvents) {
    Recorder rec;
    record_episode(rec);
    // events.jsonl is one object per line with a leading "t_s" field; the
    // gpu_temp_c sample recorded last (t=0.2) must sort before the t=0.3
    // completions.
    const auto jsonl = rec.events_jsonl();
    const auto gpu = jsonl.find("gpu_temp_c");
    const auto done = jsonl.find("\"outcome\"");
    ASSERT_NE(gpu, std::string::npos);
    ASSERT_NE(done, std::string::npos);
    EXPECT_LT(gpu, done);

    const auto trace = rec.chrome_trace_json();
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
    EXPECT_NE(trace.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(trace.find("\"cat\":\"request\""), std::string::npos);
}

TEST(Recorder, BreachSnapshotsCapBoundedPerProcessRing) {
    Recorder rec(RecorderOptions{.ring_capacity = 3});
    const int plat = rec.track("dev", "platform");
    const int queue = rec.track("dev", "queue");
    const int other = rec.track("elsewhere", "platform");
    for (int i = 0; i < 8; ++i) {
        rec.instant(plat, "tick" + std::to_string(i), 0.1 * i);
    }
    rec.counter(queue, "queue_depth", 0.85, 5.0); // same pid, other thread
    rec.instant(other, "unrelated", 0.9);         // different process
    rec.breach(plat, "slo_miss", 12, 1.0, "\"e2e_ms\":" + jnum(1234.0));
    EXPECT_EQ(rec.breach_count(), 1u);

    const auto report = rec.breaches_jsonl();
    EXPECT_NE(report.find("\"reason\":\"slo_miss\""), std::string::npos);
    EXPECT_NE(report.find("\"request\":12"), std::string::npos);
    // Ring depth 3: the two newest device events survive plus the queue
    // sample; everything older and every other-process event is gone.
    EXPECT_NE(report.find("tick7"), std::string::npos);
    EXPECT_NE(report.find("queue_depth"), std::string::npos);
    EXPECT_EQ(report.find("tick0"), std::string::npos);
    EXPECT_EQ(report.find("unrelated"), std::string::npos);
}

TEST(Recorder, ThreadLocalBindingNestsAndSuspends) {
    EXPECT_EQ(current(), nullptr); // recording is off by default
    Recorder rec;
    {
        BindScope bind(&rec);
        EXPECT_EQ(current(), &rec);
        {
            SuspendScope hide;
            EXPECT_EQ(current(), nullptr); // pretrain phases record nothing
        }
        EXPECT_EQ(current(), &rec); // restored after the suspend
    }
    EXPECT_EQ(current(), nullptr);
}

TEST(Recorder, JsonHelpersEscapeAndDegrade) {
    EXPECT_EQ(jstr("plain"), "\"plain\"");
    EXPECT_EQ(jstr("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    EXPECT_EQ(jnum(std::numeric_limits<double>::quiet_NaN()), "null");
    EXPECT_EQ(jnum(std::numeric_limits<double>::infinity()), "null");
    EXPECT_EQ(jnum(2.0), "2");
}

} // namespace
} // namespace lotus::telemetry
