// Rollup contract tests: window assignment and count identities, pro-rata
// span splitting across window boundaries, the merged-window-sketches ==
// whole-run-sketch identity that health.json is built on, and the recorder
// integration switch (rollups off -> no accumulator, exports throw).

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "telemetry/recorder.hpp"
#include "telemetry/rollup.hpp"
#include "telemetry/sketch.hpp"

namespace lotus::telemetry {
namespace {

using Outcome = Rollup::Outcome;

TEST(Rollup, RejectsNonPositiveWindow) {
    EXPECT_THROW(Rollup(0.0), std::invalid_argument);
    EXPECT_THROW(Rollup(-1.0), std::invalid_argument);
}

TEST(Rollup, RequestsLandInTheirCompletionWindow) {
    Rollup r(1.0);
    r.record_request("dev", "cam0", 0.2, Outcome::ok, 50.0, 5.0);
    r.record_request("dev", "cam0", 0.9, Outcome::late, 120.0, 30.0);
    r.record_request("dev", "cam0", 1.1, Outcome::shed, 0.0, 80.0);
    const auto& series = r.streams().at("dev").at("cam0");
    ASSERT_EQ(series.size(), 2u);
    const auto& w0 = series.at(0);
    EXPECT_EQ(w0.ok, 1u);
    EXPECT_EQ(w0.late, 1u);
    EXPECT_EQ(w0.shed, 0u);
    // e2e holds completions only; queue wait holds every outcome.
    EXPECT_EQ(w0.e2e_ms.count(), 2u);
    EXPECT_EQ(w0.queue_wait_ms.count(), 2u);
    const auto& w1 = series.at(1);
    EXPECT_EQ(w1.shed, 1u);
    EXPECT_EQ(w1.e2e_ms.count(), 0u);
    EXPECT_EQ(w1.queue_wait_ms.count(), 1u);
}

TEST(Rollup, SpanSplitsProRataAcrossWindows) {
    Rollup r(1.0);
    // 2.5 s span at level 3, throttled, 10 J: windows get 0.5 / 1.0 / 1.0
    // of the duration and the same fractions of the energy.
    r.record_device_span("dev", 0.5, 3.0, 3, true, 10.0);
    const auto& series = r.devices().at("dev");
    ASSERT_EQ(series.size(), 3u);
    EXPECT_NEAR(series.at(0).opp_residency_s.at(3), 0.5, 1e-12);
    EXPECT_NEAR(series.at(1).opp_residency_s.at(3), 1.0, 1e-12);
    EXPECT_NEAR(series.at(2).opp_residency_s.at(3), 1.0, 1e-12);
    EXPECT_NEAR(series.at(0).throttle_s, 0.5, 1e-12);
    EXPECT_NEAR(series.at(0).energy_j, 10.0 * 0.5 / 2.5, 1e-12);
    EXPECT_NEAR(series.at(1).energy_j, 10.0 * 1.0 / 2.5, 1e-12);
    double total_energy = 0.0;
    for (const auto& [id, win] : series) total_energy += win.energy_j;
    EXPECT_NEAR(total_energy, 10.0, 1e-12);
}

TEST(Rollup, EmptySpanIsANoOp) {
    Rollup r(1.0);
    r.record_device_span("dev", 2.0, 2.0, 0, false, 5.0);
    EXPECT_TRUE(r.devices().empty());
}

TEST(Rollup, TempSamplesTrackHeadroomMinimum) {
    Rollup r(0.5);
    r.record_temp_sample("dev", 0.1, 45.0, 30.0);
    r.record_temp_sample("dev", 0.2, 55.0, 20.0);
    r.record_temp_sample("dev", 0.7, 60.0, 15.0);
    const auto& series = r.devices().at("dev");
    ASSERT_EQ(series.size(), 2u);
    EXPECT_EQ(series.at(0).temp_c.count(), 2u);
    EXPECT_EQ(series.at(0).headroom_min_c, 20.0);
    EXPECT_EQ(series.at(1).headroom_min_c, 15.0);
    EXPECT_EQ(series.at(0).temp_c.max(), 55.0);
}

// The identity health.json relies on: merging the per-window sketches in
// export order reproduces a single sketch fed every sample of the run.
TEST(Rollup, MergedWindowSketchesEqualWholeRunSketch) {
    Rollup r(0.25);
    HistSketch whole;
    double t = 0.0;
    for (int i = 0; i < 500; ++i) {
        t += 0.01 + 0.001 * (i % 7);
        const double e2e = 20.0 + 17.0 * ((i * i) % 13);
        const bool late = (i % 11) == 0;
        r.record_request("dev", "cam", t, late ? Outcome::late : Outcome::ok, e2e,
                         1.0 + (i % 5));
        whole.add(e2e);
    }
    HistSketch merged;
    for (const auto& [id, win] : r.streams().at("dev").at("cam")) {
        merged.merge(win.e2e_ms);
    }
    EXPECT_TRUE(merged == whole);
    EXPECT_EQ(merged.json(), whole.json());
}

TEST(Rollup, HealthJsonAggregatesMatchWindowTotals) {
    Rollup r(1.0);
    r.record_request("a", "cam0", 0.5, Outcome::ok, 40.0, 2.0);
    r.record_request("a", "cam0", 1.5, Outcome::shed, 0.0, 90.0);
    r.record_request("b", "cam1", 0.7, Outcome::late, 200.0, 60.0);
    const std::string health = r.health_json({{"a", 1}, {"b", 2}});
    // Fleet row: 3 requests, 2 served, 1 shed, 2 missed, 3 breaches.
    EXPECT_NE(health.find("\"requests\":3"), std::string::npos) << health;
    EXPECT_NE(health.find("\"served\":2"), std::string::npos) << health;
    EXPECT_NE(health.find("\"shed\":1"), std::string::npos) << health;
    EXPECT_NE(health.find("\"missed\":2"), std::string::npos) << health;
    EXPECT_NE(health.find("\"breaches\":3"), std::string::npos) << health;
}

TEST(Rollup, UnmatchedBreachProcessesCountTowardFleet) {
    Rollup r(1.0);
    r.record_request("a", "cam0", 0.5, Outcome::ok, 40.0, 2.0);
    // "router" has no rollup rows; its breaches must still reach the fleet
    // row rather than vanish.
    const std::string health = r.health_json({{"router", 4}});
    EXPECT_NE(health.find("\"breaches\":4"), std::string::npos) << health;
}

// --- recorder integration ---------------------------------------------------

TEST(Recorder, RollupsOnByDefault) {
    Recorder rec;
    ASSERT_NE(rec.rollup(), nullptr);
    EXPECT_EQ(rec.rollup()->window_s(), 1.0);
    // Exports are well-formed even with nothing recorded.
    EXPECT_NE(rec.rollup_json().find("\"schema_version\""), std::string::npos);
    EXPECT_NE(rec.health_json().find("\"fleet\""), std::string::npos);
}

TEST(Recorder, RollupsOffLeavesNoAccumulator) {
    RecorderOptions opt;
    opt.rollups = false;
    Recorder rec(opt);
    EXPECT_EQ(rec.rollup(), nullptr);
    EXPECT_THROW((void)rec.rollup_json(), std::logic_error);
    EXPECT_THROW((void)rec.health_json(), std::logic_error);
}

TEST(Recorder, RejectsNonPositiveRollupWindow) {
    RecorderOptions opt;
    opt.rollup_window_s = 0.0;
    EXPECT_THROW(Recorder{opt}, std::invalid_argument);
}

} // namespace
} // namespace lotus::telemetry
