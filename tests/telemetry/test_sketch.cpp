// HistSketch contract tests: the documented quantile error bound against
// the exact util::percentiles(), exact-merge algebra (associativity,
// commutativity, identity) as property tests over generated sketches, and
// the degenerate shapes (empty / single sample / all identical / underflow)
// that the bound's clamping makes exact.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "telemetry/sketch.hpp"
#include "util/stats.hpp"

namespace lotus::telemetry {
namespace {

// SplitMix64: tiny deterministic generator for property-test inputs (the
// repo's tests avoid <random> distributions, whose outputs are
// implementation-defined).
class SplitMix64 {
public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
    std::uint64_t next() {
        state_ += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = state_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }
    /// Uniform double in [0, 1).
    double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

private:
    std::uint64_t state_;
};

/// Log-uniform sample spanning ~6 decades, the shape latencies take.
double log_uniform(SplitMix64& rng) { return std::pow(10.0, rng.uniform() * 6.0 - 3.0); }

std::vector<double> sample_values(std::uint64_t seed, std::size_t n) {
    SplitMix64 rng(seed);
    std::vector<double> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(log_uniform(rng));
    return out;
}

HistSketch sketch_of(const std::vector<double>& values) {
    HistSketch s;
    for (const double v : values) s.add(v);
    return s;
}

TEST(HistSketch, RejectsInvalidAccuracy) {
    EXPECT_THROW(HistSketch(0.0), std::invalid_argument);
    EXPECT_THROW(HistSketch(1.0), std::invalid_argument);
    EXPECT_THROW(HistSketch(-0.5), std::invalid_argument);
}

TEST(HistSketch, EmptySketchIsZeroEverywhere) {
    const HistSketch s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
    EXPECT_EQ(s.quantile(0.5), 0.0);
}

TEST(HistSketch, SingleSampleIsExactAtEveryQuantile) {
    HistSketch s;
    s.add(123.456);
    for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
        EXPECT_EQ(s.quantile(q), 123.456) << "q=" << q;
    }
    EXPECT_EQ(s.min(), 123.456);
    EXPECT_EQ(s.max(), 123.456);
}

TEST(HistSketch, AllIdenticalValuesAreExact) {
    HistSketch s;
    s.add(7.5, 1000);
    EXPECT_EQ(s.count(), 1000u);
    for (const double q : {0.0, 0.5, 0.95, 1.0}) {
        EXPECT_EQ(s.quantile(q), 7.5) << "q=" << q;
    }
}

TEST(HistSketch, UnderflowBucketHoldsNonPositiveValues) {
    HistSketch s;
    s.add(0.0);
    s.add(-4.0);
    s.add(1e-12);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_EQ(s.min(), -4.0);
    EXPECT_EQ(s.max(), 1e-12);
    // The underflow representative is 0, clamped into [min, max].
    EXPECT_LE(s.quantile(0.5), 0.0);
    EXPECT_GE(s.quantile(0.5), -4.0);
}

TEST(HistSketch, IgnoresNaNAndZeroWeight) {
    HistSketch s;
    s.add(std::nan(""));
    s.add(5.0, 0);
    EXPECT_TRUE(s.empty());
}

// The documented bound: quantile(q) estimates the order statistic at
// 1-based rank r = floor(q * (n - 1)) + 1 within alpha relative error.
TEST(HistSketch, QuantileErrorBoundAgainstExactOrderStatistics) {
    for (const std::uint64_t seed : {1ULL, 42ULL, 977ULL}) {
        auto values = sample_values(seed, 5000);
        const HistSketch s = sketch_of(values);
        std::sort(values.begin(), values.end());
        const double alpha = s.relative_accuracy();
        for (const double q : {0.0, 0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
            const auto r = static_cast<std::size_t>(
                std::floor(q * static_cast<double>(values.size() - 1)));
            const double exact = values[r];
            const double est = s.quantile(q);
            EXPECT_LE(std::abs(est - exact), alpha * exact + 1e-12)
                << "seed=" << seed << " q=" << q;
        }
    }
}

// util::percentiles interpolates between adjacent order statistics, so the
// sketch estimate must land within alpha of the bracketing order
// statistics' envelope.
TEST(HistSketch, QuantilesTrackUtilPercentiles) {
    auto values = sample_values(7, 2000);
    const HistSketch s = sketch_of(values);
    const auto exact = util::percentiles(values, {50.0, 95.0, 99.0});
    std::sort(values.begin(), values.end());
    const double alpha = s.relative_accuracy();
    const std::vector<double> qs = {0.50, 0.95, 0.99};
    for (std::size_t i = 0; i < qs.size(); ++i) {
        const double pos = qs[i] * static_cast<double>(values.size() - 1);
        const double lo = values[static_cast<std::size_t>(std::floor(pos))];
        const double hi = values[static_cast<std::size_t>(std::ceil(pos))];
        const double est = s.quantile(qs[i]);
        EXPECT_GE(est, lo * (1.0 - alpha)) << "q=" << qs[i];
        EXPECT_LE(est, hi * (1.0 + alpha)) << "q=" << qs[i];
        // And the interpolated percentile itself sits inside [lo, hi], so
        // estimate and util::percentiles agree to the same envelope.
        EXPECT_GE(exact[i], lo);
        EXPECT_LE(exact[i], hi);
    }
}

TEST(HistSketch, ExtremesAreExact) {
    auto values = sample_values(3, 500);
    const HistSketch s = sketch_of(values);
    const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
    EXPECT_EQ(s.min(), *lo);
    EXPECT_EQ(s.max(), *hi);
    EXPECT_EQ(s.quantile(0.0), *lo);
    EXPECT_EQ(s.quantile(1.0), *hi);
}

// --- merge algebra ----------------------------------------------------------

TEST(HistSketch, MergeIsCommutative) {
    for (const std::uint64_t seed : {5ULL, 99ULL, 1234ULL}) {
        const HistSketch a = sketch_of(sample_values(seed, 700));
        const HistSketch b = sketch_of(sample_values(seed + 1, 300));
        HistSketch ab = a;
        ab.merge(b);
        HistSketch ba = b;
        ba.merge(a);
        EXPECT_TRUE(ab == ba) << "seed=" << seed;
        EXPECT_EQ(ab.json(), ba.json()) << "seed=" << seed;
    }
}

TEST(HistSketch, MergeIsAssociative) {
    for (const std::uint64_t seed : {8ULL, 64ULL, 4096ULL}) {
        const HistSketch a = sketch_of(sample_values(seed, 400));
        const HistSketch b = sketch_of(sample_values(seed + 1, 400));
        const HistSketch c = sketch_of(sample_values(seed + 2, 400));
        HistSketch left = a; // (a + b) + c
        left.merge(b);
        left.merge(c);
        HistSketch bc = b; // a + (b + c)
        bc.merge(c);
        HistSketch right = a;
        right.merge(bc);
        EXPECT_TRUE(left == right) << "seed=" << seed;
        EXPECT_EQ(left.json(), right.json()) << "seed=" << seed;
    }
}

TEST(HistSketch, EmptySketchIsMergeIdentity) {
    const HistSketch a = sketch_of(sample_values(17, 256));
    HistSketch merged = a;
    merged.merge(HistSketch{});
    EXPECT_TRUE(merged == a);
    HistSketch other;
    other.merge(a);
    EXPECT_TRUE(other == a);
}

TEST(HistSketch, ShardedMergeEqualsWholeRunSketch) {
    const auto values = sample_values(29, 3000);
    const HistSketch whole = sketch_of(values);
    HistSketch merged;
    for (std::size_t shard = 0; shard < 7; ++shard) {
        HistSketch part;
        for (std::size_t i = shard; i < values.size(); i += 7) part.add(values[i]);
        merged.merge(part);
    }
    EXPECT_TRUE(merged == whole);
    EXPECT_EQ(merged.json(), whole.json());
}

TEST(HistSketch, MergeRejectsMismatchedAccuracy) {
    HistSketch a(0.01);
    const HistSketch b(0.02);
    EXPECT_THROW(a.merge(b), std::invalid_argument);
}

} // namespace
} // namespace lotus::telemetry
