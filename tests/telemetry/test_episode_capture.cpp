// Harness-level telemetry contract (PR 7): with HarnessConfig::telemetry on,
// every episode carries a populated Recorder whose exports are a pure
// function of the episode -- byte-identical between --jobs 1 and --jobs 4 --
// while the rendered results themselves stay byte-identical to a run with
// recording off. Disabled leaves the recorder pointer null, so nothing is
// allocated and no site records.

#include <gtest/gtest.h>

#include <string>

#include "fleet/engine.hpp"
#include "harness/harness.hpp"
#include "harness/sinks.hpp"
#include "platform/presets.hpp"
#include "serving/engine.hpp"

namespace lotus::harness {
namespace {

serving::ServingConfig serving_config() {
    serving::ServingConfig cfg(platform::orin_nano_spec());
    for (int i = 0; i < 3; ++i) {
        serving::StreamSpec s;
        s.name = "cam" + std::to_string(i);
        s.dataset = (i == 2) ? "VisDrone2019" : "KITTI";
        s.slo_s = 0.9;
        s.requests = 8;
        s.arrival.kind = (i == 1) ? serving::ArrivalKind::bursty
                                  : serving::ArrivalKind::poisson;
        s.arrival.rate_hz = 0.8;
        s.arrival.phase_s = 0.4 * i;
        cfg.streams.push_back(std::move(s));
    }
    cfg.scheduler = "edf_admit";
    cfg.seed = 77;
    return cfg;
}

Scenario serving_scenario(const std::string& name) {
    const auto spec = platform::orin_nano_spec();
    Scenario s(runtime::static_experiment(spec, detector::DetectorKind::faster_rcnn,
                                          "KITTI", 1, 0));
    s.name = name;
    s.title = name;
    s.serving = serving_config();
    s.arms.push_back(default_arm(spec));
    s.arms.push_back(fixed_arm(5, 3));
    return s;
}

Scenario fleet_scenario(const std::string& name) {
    const auto spec = platform::orin_nano_spec();
    Scenario s(runtime::static_experiment(spec, detector::DetectorKind::faster_rcnn,
                                          "KITTI", 1, 0));
    s.name = name;
    s.title = name;
    fleet::FleetConfig cfg;
    cfg.devices.push_back(fleet::make_device("a", spec));
    cfg.devices.push_back(fleet::make_device("b", spec));
    auto serving = serving_config();
    cfg.streams = std::move(serving.streams);
    cfg.scheduler = "edf_admit";
    cfg.router = "least_queue";
    cfg.seed = 77;
    s.fleet = std::move(cfg);
    s.arms.push_back(fleet_arm(fixed_arm(5, 3), "least_queue"));
    return s;
}

TEST(EpisodeCapture, DisabledLeavesRecordersNull) {
    const auto scenario = serving_scenario("telemetry_disabled");
    const auto results = ExperimentHarness({.jobs = 2, .seed = 7}).run(scenario);
    ASSERT_FALSE(results.empty());
    for (const auto& r : results) EXPECT_EQ(r.telemetry, nullptr);
}

TEST(EpisodeCapture, EnabledRecordsEveryEpisodeWithoutPerturbingResults) {
    const auto scenario = serving_scenario("telemetry_enabled");
    const auto plain = ExperimentHarness({.jobs = 2, .seed = 7}).run(scenario);
    const auto recorded =
        ExperimentHarness({.jobs = 2, .seed = 7, .telemetry = true}).run(scenario);
    ASSERT_EQ(recorded.size(), plain.size());
    for (const auto& r : recorded) {
        ASSERT_NE(r.telemetry, nullptr);
        EXPECT_GT(r.telemetry->event_count(), 0u) << r.arm;
    }
    // The instrumented run must render byte-identically: recording observes
    // the episode, it never steers it.
    EXPECT_EQ(scenario_json(scenario, recorded), scenario_json(scenario, plain));
}

void expect_jobs_invariant_exports(const Scenario& scenario) {
    const auto serial =
        ExperimentHarness({.jobs = 1, .seed = 11, .telemetry = true}).run(scenario);
    const auto parallel =
        ExperimentHarness({.jobs = 4, .seed = 11, .telemetry = true}).run(scenario);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_NE(serial[i].telemetry, nullptr);
        ASSERT_NE(parallel[i].telemetry, nullptr);
        EXPECT_EQ(serial[i].telemetry->chrome_trace_json(),
                  parallel[i].telemetry->chrome_trace_json())
            << serial[i].arm;
        EXPECT_EQ(serial[i].telemetry->events_jsonl(),
                  parallel[i].telemetry->events_jsonl())
            << serial[i].arm;
        EXPECT_EQ(serial[i].telemetry->breaches_jsonl(),
                  parallel[i].telemetry->breaches_jsonl())
            << serial[i].arm;
        EXPECT_EQ(serial[i].telemetry->metrics_csv(), parallel[i].telemetry->metrics_csv())
            << serial[i].arm;
        // The aggregation layer rides along whenever telemetry is on, and
        // its artifacts obey the same jobs-invariance contract.
        ASSERT_NE(serial[i].telemetry->rollup(), nullptr);
        EXPECT_EQ(serial[i].telemetry->rollup_json(), parallel[i].telemetry->rollup_json())
            << serial[i].arm;
        EXPECT_EQ(serial[i].telemetry->health_json(), parallel[i].telemetry->health_json())
            << serial[i].arm;
    }
}

TEST(EpisodeCapture, ServingExportsAreJobsInvariant) {
    expect_jobs_invariant_exports(serving_scenario("telemetry_jobs_serving"));
}

TEST(EpisodeCapture, FleetExportsAreJobsInvariant) {
    expect_jobs_invariant_exports(fleet_scenario("telemetry_jobs_fleet"));
}

} // namespace
} // namespace lotus::harness
