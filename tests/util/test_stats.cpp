// Tests for streaming/windowed statistics -- the backbone of the latency
// tables (RunningStats) and the sigma_n reward term (WindowedStats).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace lotus::util {
namespace {

double naive_mean(const std::vector<double>& v) {
    double s = 0.0;
    for (const double x : v) s += x;
    return s / static_cast<double>(v.size());
}

double naive_sample_std(const std::vector<double>& v) {
    const double m = naive_mean(v);
    double acc = 0.0;
    for (const double x : v) acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

TEST(RunningStats, EmptyIsZero) {
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
    RunningStats s;
    s.add(4.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.5);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 4.5);
    EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, MatchesNaiveComputation) {
    Rng rng(3);
    std::vector<double> v;
    RunningStats s;
    for (int i = 0; i < 5000; ++i) {
        const double x = rng.normal(100.0, 15.0);
        v.push_back(x);
        s.add(x);
    }
    EXPECT_NEAR(s.mean(), naive_mean(v), 1e-9);
    EXPECT_NEAR(s.stddev(), naive_sample_std(v), 1e-9);
}

TEST(RunningStats, NumericallyStableAtLargeOffset) {
    // Welford should survive a large common offset that would destroy the
    // naive sum-of-squares formula in single precision.
    RunningStats s;
    const double offset = 1e9;
    for (int i = 0; i < 1000; ++i) s.add(offset + (i % 2 == 0 ? 1.0 : -1.0));
    EXPECT_NEAR(s.mean(), offset, 1e-3);
    EXPECT_NEAR(s.variance(), 1.0 + 1.0 / 999.0, 1e-6);
}

TEST(RunningStats, MinMaxTracking) {
    RunningStats s;
    for (const double x : {3.0, -7.0, 12.0, 0.5}) s.add(x);
    EXPECT_DOUBLE_EQ(s.min(), -7.0);
    EXPECT_DOUBLE_EQ(s.max(), 12.0);
}

TEST(RunningStats, MergeEqualsConcatenation) {
    Rng rng(5);
    RunningStats a;
    RunningStats b;
    RunningStats whole;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(-10, 10);
        (i < 400 ? a : b).add(x);
        whole.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
    RunningStats a;
    a.add(1.0);
    a.add(2.0);
    RunningStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_NEAR(empty.mean(), 1.5, 1e-12);
}

TEST(RunningStats, ResetClears) {
    RunningStats s;
    s.add(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(WindowedStats, RejectsZeroCapacity) {
    EXPECT_THROW(WindowedStats w(0), std::invalid_argument);
}

TEST(WindowedStats, PartialWindow) {
    WindowedStats w(10);
    w.add(2.0);
    w.add(4.0);
    EXPECT_EQ(w.size(), 2u);
    EXPECT_FALSE(w.full());
    EXPECT_DOUBLE_EQ(w.mean(), 3.0);
}

TEST(WindowedStats, EvictsOldestWhenFull) {
    WindowedStats w(3);
    for (const double x : {1.0, 2.0, 3.0, 10.0}) w.add(x);
    // Window should now hold {2, 3, 10}.
    EXPECT_TRUE(w.full());
    EXPECT_NEAR(w.mean(), 5.0, 1e-12);
}

TEST(WindowedStats, MatchesNaiveOverSlidingWindow) {
    Rng rng(7);
    constexpr std::size_t kWin = 10;
    WindowedStats w(kWin);
    std::vector<double> all;
    for (int i = 0; i < 500; ++i) {
        const double x = rng.uniform(0, 100);
        all.push_back(x);
        w.add(x);
        const std::size_t n = std::min(all.size(), kWin);
        std::vector<double> window(all.end() - static_cast<std::ptrdiff_t>(n), all.end());
        const double m = naive_mean(window);
        double acc = 0.0;
        for (const double v : window) acc += (v - m) * (v - m);
        const double pop_std = std::sqrt(acc / static_cast<double>(n));
        ASSERT_NEAR(w.mean(), m, 1e-9) << "at step " << i;
        ASSERT_NEAR(w.stddev(), pop_std, 1e-9) << "at step " << i;
    }
}

TEST(WindowedStats, SingletonStdIsZero) {
    WindowedStats w(5);
    w.add(42.0);
    EXPECT_EQ(w.stddev(), 0.0);
}

TEST(WindowedStats, ResetEmpties) {
    WindowedStats w(4);
    w.add(1.0);
    w.add(2.0);
    w.reset();
    EXPECT_EQ(w.size(), 0u);
    EXPECT_EQ(w.mean(), 0.0);
}

TEST(Percentile, KnownValues) {
    std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 5.5);
}

TEST(Percentile, UnsortedInput) {
    std::vector<double> v{9, 1, 5, 3, 7};
    EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
}

TEST(Percentile, EmptyThrows) {
    EXPECT_THROW((void)percentile({}, 50), std::invalid_argument);
}

TEST(Percentile, ClampsP) {
    std::vector<double> v{1, 2, 3};
    EXPECT_DOUBLE_EQ(percentile(v, -5), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 150), 3.0);
}

TEST(Percentiles, MatchesSingleCallsOverOneSort) {
    const std::vector<double> v{9, 1, 5, 3, 7, 2, 8, 4, 6, 10};
    const auto batch = percentiles(v, {0.0, 50.0, 95.0, 99.0, 100.0});
    ASSERT_EQ(batch.size(), 5u);
    EXPECT_DOUBLE_EQ(batch[0], percentile(v, 0.0));
    EXPECT_DOUBLE_EQ(batch[1], percentile(v, 50.0));
    EXPECT_DOUBLE_EQ(batch[2], percentile(v, 95.0));
    EXPECT_DOUBLE_EQ(batch[3], percentile(v, 99.0));
    EXPECT_DOUBLE_EQ(batch[4], percentile(v, 100.0));
}

TEST(Percentiles, PreservesRequestOrderAndClamps) {
    const std::vector<double> v{1, 2, 3};
    const auto out = percentiles(v, {150.0, -5.0});
    ASSERT_EQ(out.size(), 2u);
    EXPECT_DOUBLE_EQ(out[0], 3.0);
    EXPECT_DOUBLE_EQ(out[1], 1.0);
    EXPECT_TRUE(percentiles(v, {}).empty());
}

TEST(Percentiles, EmptyInputThrows) {
    EXPECT_THROW((void)percentiles({}, {50.0}), std::invalid_argument);
}

TEST(SatisfactionRate, BoundaryCountsAsSatisfied) {
    // The repo's single SLO boundary rule: "<= limit is satisfied", matching
    // the serving layer's miss accounting (missed means e2e > slo).
    std::vector<double> v{0.1, 0.2, 0.3, 0.3, 0.5};
    EXPECT_DOUBLE_EQ(satisfaction_rate(v, 0.3), 0.8);
    EXPECT_DOUBLE_EQ(satisfaction_rate(v, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(satisfaction_rate(v, 0.05), 0.0);
    // The exact-boundary case: a sample precisely on the limit satisfies it.
    EXPECT_DOUBLE_EQ(satisfaction_rate({0.5}, 0.5), 1.0);
    EXPECT_DOUBLE_EQ(satisfaction_rate({std::nextafter(0.5, 1.0)}, 0.5), 0.0);
}

TEST(SatisfactionRate, EmptyIsZero) {
    EXPECT_DOUBLE_EQ(satisfaction_rate({}, 1.0), 0.0);
}

TEST(Pearson, PerfectCorrelation) {
    std::vector<double> a{1, 2, 3, 4};
    std::vector<double> b{2, 4, 6, 8};
    EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
    std::vector<double> c{8, 6, 4, 2};
    EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(Pearson, DegenerateSeriesIsZero) {
    std::vector<double> a{1, 1, 1};
    std::vector<double> b{2, 3, 4};
    EXPECT_EQ(pearson(a, b), 0.0);
}

TEST(Pearson, SizeMismatchThrows) {
    EXPECT_THROW((void)pearson({1, 2}, {1, 2, 3}), std::invalid_argument);
}

} // namespace
} // namespace lotus::util
