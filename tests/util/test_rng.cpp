// Tests for lotus::util::Rng -- determinism, distribution sanity, forking.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace lotus::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(a.next_u64(), b.next_u64()) << "diverged at draw " << i;
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next_u64() == b.next_u64()) ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf) {
    Rng rng(11);
    double sum = 0.0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i) sum += rng.uniform();
    EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.5, 8.25);
        ASSERT_GE(u, -3.5);
        ASSERT_LT(u, 8.25);
    }
}

TEST(Rng, UniformIntInclusiveBounds) {
    Rng rng(17);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.uniform_int(3, 7);
        ASSERT_GE(v, 3);
        ASSERT_LE(v, 7);
        seen.insert(v);
    }
    // All five values should appear in 5000 draws.
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntDegenerateRange) {
    Rng rng(19);
    EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntUnbiasedAcrossValues) {
    Rng rng(23);
    constexpr int kN = 60000;
    int counts[6] = {0};
    for (int i = 0; i < kN; ++i) counts[rng.uniform_int(0, 5)]++;
    for (const int c : counts) {
        EXPECT_NEAR(static_cast<double>(c) / kN, 1.0 / 6.0, 0.01);
    }
}

TEST(Rng, BernoulliEdgeCases) {
    Rng rng(29);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
        EXPECT_FALSE(rng.bernoulli(-1.0));
        EXPECT_TRUE(rng.bernoulli(2.0));
    }
}

TEST(Rng, BernoulliRate) {
    Rng rng(31);
    constexpr int kN = 50000;
    int hits = 0;
    for (int i = 0; i < kN; ++i) {
        if (rng.bernoulli(0.3)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
    Rng rng(37);
    constexpr int kN = 200000;
    double sum = 0.0;
    double sq = 0.0;
    for (int i = 0; i < kN; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    const double mean = sum / kN;
    const double var = sq / kN - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalShifted) {
    Rng rng(41);
    constexpr int kN = 50000;
    double sum = 0.0;
    for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / kN, 10.0, 0.05);
}

TEST(Rng, LognormalPositiveAndMedian) {
    Rng rng(43);
    std::vector<double> xs;
    for (int i = 0; i < 20001; ++i) {
        const double x = rng.lognormal(1.0, 0.5);
        ASSERT_GT(x, 0.0);
        xs.push_back(x);
    }
    std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
    // Median of lognormal = exp(mu).
    EXPECT_NEAR(xs[10000], std::exp(1.0), 0.1);
}

TEST(Rng, ForkProducesIndependentStream) {
    Rng parent(47);
    Rng child = parent.fork();
    // The fork must not replay the parent's stream.
    Rng parent_replay(47);
    (void)parent_replay.next_u64(); // consume the draw that seeded the child
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (child.next_u64() == parent_replay.next_u64()) ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
    Rng rng(53);
    for (int trial = 0; trial < 100; ++trial) {
        const auto idx = rng.sample_indices(50, 10);
        ASSERT_EQ(idx.size(), 10u);
        std::set<std::size_t> unique(idx.begin(), idx.end());
        ASSERT_EQ(unique.size(), 10u) << "duplicates drawn";
        for (const auto i : idx) ASSERT_LT(i, 50u);
    }
}

TEST(Rng, SampleIndicesFullSet) {
    Rng rng(59);
    const auto idx = rng.sample_indices(8, 8);
    std::set<std::size_t> unique(idx.begin(), idx.end());
    EXPECT_EQ(unique.size(), 8u);
}

TEST(Rng, SampleIndicesRejectsOversample) {
    Rng rng(61);
    EXPECT_THROW((void)rng.sample_indices(3, 4), std::invalid_argument);
}

TEST(Rng, SampleIndicesUniformCoverage) {
    Rng rng(67);
    std::vector<int> counts(20, 0);
    constexpr int kTrials = 20000;
    for (int t = 0; t < kTrials; ++t) {
        for (const auto i : rng.sample_indices(20, 5)) counts[i]++;
    }
    // Each index expected kTrials * 5/20 times.
    for (const int c : counts) {
        EXPECT_NEAR(static_cast<double>(c) / kTrials, 0.25, 0.02);
    }
}

TEST(DeriveSeed, PureFunctionOfInputs) {
    const auto a = derive_seed(42, "fig4_kitti", 0);
    const auto b = derive_seed(42, "fig4_kitti", 0);
    EXPECT_EQ(a, b);
}

TEST(DeriveSeed, DistinguishesRootIdAndIndex) {
    const auto base = derive_seed(42, "fig4_kitti", 0);
    EXPECT_NE(base, derive_seed(43, "fig4_kitti", 0));
    EXPECT_NE(base, derive_seed(42, "fig4_visdrone", 0));
    EXPECT_NE(base, derive_seed(42, "fig4_kitti", 1));
}

TEST(DeriveSeed, NeighbouringIndicesUncorrelated) {
    // Streams seeded from adjacent arm indices must diverge immediately.
    Rng a(derive_seed(7, "scenario", 0));
    Rng b(derive_seed(7, "scenario", 1));
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next_u64() == b.next_u64()) ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(DeriveSeed, ManyEpisodesNoCollisions) {
    std::set<std::uint64_t> seeds;
    const char* scenarios[] = {"table1_frcnn_kitti", "table1_frcnn_visdrone",
                               "fig7a_temp_changes", "stress_heatwave"};
    for (const char* s : scenarios) {
        for (std::uint64_t arm = 0; arm < 64; ++arm) {
            seeds.insert(derive_seed(42, s, arm));
        }
    }
    EXPECT_EQ(seeds.size(), 4u * 64u);
}

} // namespace
} // namespace lotus::util
