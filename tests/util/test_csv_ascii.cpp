// Tests for CSV emission and console rendering helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/ascii.hpp"
#include "util/csv.hpp"

namespace lotus::util {
namespace {

std::string slurp(const std::string& path) {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

class CsvWriterTest : public ::testing::Test {
protected:
    void TearDown() override {
        if (!path_.empty()) std::filesystem::remove(path_);
    }
    std::string temp_path(const std::string& name) {
        path_ = (std::filesystem::temp_directory_path() / name).string();
        return path_;
    }
    std::string path_;
};

TEST(CsvEscape, PlainFieldUntouched) {
    EXPECT_EQ(csv_escape("hello"), "hello");
    EXPECT_EQ(csv_escape("123.5"), "123.5");
}

TEST(CsvEscape, QuotesFieldsWithComma) {
    EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, DoublesEmbeddedQuotes) {
    EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, QuotesNewlines) {
    EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(FormatDouble, TrimsTrailingZeros) {
    EXPECT_EQ(format_double(1.5), "1.5");
    EXPECT_EQ(format_double(2.0), "2");
    EXPECT_EQ(format_double(0.25, 4), "0.25");
}

TEST(FormatDouble, HandlesSpecials) {
    EXPECT_EQ(format_double(std::nan("")), "nan");
    EXPECT_EQ(format_double(1.0 / 0.0), "inf");
    EXPECT_EQ(format_double(-1.0 / 0.0), "-inf");
}

TEST(FormatDouble, NegativeZeroNormalized) {
    EXPECT_EQ(format_double(-0.0), "0");
}

TEST_F(CsvWriterTest, WritesHeaderAndRows) {
    const auto path = temp_path("lotus_csv_test1.csv");
    {
        CsvWriter csv(path, {"a", "b"});
        csv.row(std::vector<std::string>{"1", "x"});
        csv.row(std::vector<double>{2.5, 3.0});
        EXPECT_EQ(csv.rows_written(), 2u);
    }
    EXPECT_EQ(slurp(path), "a,b\n1,x\n2.5,3\n");
}

TEST_F(CsvWriterTest, RejectsArityMismatch) {
    const auto path = temp_path("lotus_csv_test2.csv");
    CsvWriter csv(path, {"a", "b"});
    EXPECT_THROW(csv.row(std::vector<std::string>{"only-one"}), std::invalid_argument);
}

TEST_F(CsvWriterTest, RejectsEmptyHeader) {
    const auto path = temp_path("lotus_csv_test3.csv");
    EXPECT_THROW(CsvWriter(path, {}), std::invalid_argument);
}

TEST(TextTable, RendersAlignedColumns) {
    TextTable t({"name", "value"});
    t.add_row({"x", "1"});
    t.add_row({"longer-name", "22"});
    const auto out = t.render("title");
    EXPECT_NE(out.find("title"), std::string::npos);
    EXPECT_NE(out.find("| name        | value |"), std::string::npos);
    EXPECT_NE(out.find("| longer-name | 22    |"), std::string::npos);
}

TEST(TextTable, RejectsArityMismatch) {
    TextTable t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, RowCount) {
    TextTable t({"a"});
    EXPECT_EQ(t.rows(), 0u);
    t.add_row({"1"});
    EXPECT_EQ(t.rows(), 1u);
}

TEST(AsciiChart, RendersSeriesAndLegend) {
    AsciiChart chart(40, 10);
    chart.add_series({"lat", {1, 2, 3, 4, 5, 6, 7, 8}});
    chart.add_reference_line(5.0, "bound");
    const auto out = chart.render("demo", "ms");
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("[ms]"), std::string::npos);
    EXPECT_NE(out.find("*=lat"), std::string::npos);
    EXPECT_NE(out.find("-=bound"), std::string::npos);
}

TEST(AsciiChart, RejectsTinyGrid) {
    EXPECT_THROW(AsciiChart(4, 2), std::invalid_argument);
}

TEST(AsciiChart, ExplicitRangeValidated) {
    AsciiChart chart(40, 8);
    EXPECT_THROW(chart.set_y_range(5.0, 5.0), std::invalid_argument);
    EXPECT_NO_THROW(chart.set_y_range(0.0, 10.0));
}

TEST(AsciiChart, MultipleSeriesDistinctGlyphs) {
    AsciiChart chart(40, 8);
    chart.add_series({"a", {1, 1, 1}});
    chart.add_series({"b", {2, 2, 2}});
    const auto out = chart.render();
    EXPECT_NE(out.find("*=a"), std::string::npos);
    EXPECT_NE(out.find("o=b"), std::string::npos);
}

TEST(Downsample, ShortInputPassthrough) {
    const std::vector<double> v{1, 2, 3};
    EXPECT_EQ(downsample(v, 10), v);
}

TEST(Downsample, AveragesBuckets) {
    std::vector<double> v;
    for (int i = 0; i < 100; ++i) v.push_back(static_cast<double>(i));
    const auto d = downsample(v, 10);
    ASSERT_EQ(d.size(), 10u);
    EXPECT_NEAR(d[0], 4.5, 1e-12);  // mean of 0..9
    EXPECT_NEAR(d[9], 94.5, 1e-12); // mean of 90..99
}

TEST(Downsample, PreservesGlobalMean) {
    std::vector<double> v;
    for (int i = 0; i < 1000; ++i) v.push_back(std::sin(i * 0.01) * 50 + 100);
    const auto d = downsample(v, 40);
    double m1 = 0;
    for (const double x : v) m1 += x;
    m1 /= static_cast<double>(v.size());
    double m2 = 0;
    for (const double x : d) m2 += x;
    m2 /= static_cast<double>(d.size());
    EXPECT_NEAR(m1, m2, 0.5);
}

TEST(Downsample, EmptyInput) {
    EXPECT_TRUE(downsample({}, 5).empty());
}

TEST(Downsample, ZeroBucketsThrows) {
    EXPECT_THROW((void)downsample({1.0}, 0), std::invalid_argument);
}

} // namespace
} // namespace lotus::util
