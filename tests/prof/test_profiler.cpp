// Internal profiler contract (src/prof/): RAII region timers, monotonic
// counters, per-thread accumulation merged at capture, first-seen parent
// hierarchy, runtime timer gate, reset semantics and the text report.
//
// The whole suite is compiled against whatever LOTUS_PROFILING the build
// chose: with profiling ON it exercises the real implementation; with
// profiling OFF it pins down the header-only stub contract (everything
// no-ops, report_text says so) -- the same binary API either way.

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "prof/profiler.hpp"

namespace lotus::prof {
namespace {

#if defined(LOTUS_PROFILING_ENABLED) && LOTUS_PROFILING_ENABLED

/// Every test starts from zeroed state with timers off and leaves the
/// process the same way (the registry is process-global).
class ProfilerTest : public ::testing::Test {
protected:
    void SetUp() override {
        set_enabled(false);
        reset();
    }
    void TearDown() override {
        set_enabled(false);
        reset();
    }
};

const RegionReport* find_region(const Report& report, const std::string& name) {
    for (const auto& r : report.regions) {
        if (r.name == name) return &r;
    }
    return nullptr;
}

TEST_F(ProfilerTest, RegionsAccumulateCallsAndTime) {
    set_enabled(true);
    for (int i = 0; i < 3; ++i) {
        LOTUS_PROF_SCOPE("test.outer");
    }
    const auto report = capture();
    const auto* outer = find_region(report, "test.outer");
    ASSERT_NE(outer, nullptr);
    EXPECT_EQ(outer->calls, 3u);
    EXPECT_GT(outer->total_ns, 0u);
    EXPECT_EQ(outer->parent, static_cast<std::size_t>(-1)); // root
}

TEST_F(ProfilerTest, NestedScopesRecordFirstSeenParentAndChildTime) {
    set_enabled(true);
    {
        LOTUS_PROF_SCOPE("test.parent");
        {
            LOTUS_PROF_SCOPE("test.child");
        }
    }
    const auto report = capture();
    const auto* parent = find_region(report, "test.parent");
    const auto* child = find_region(report, "test.child");
    ASSERT_NE(parent, nullptr);
    ASSERT_NE(child, nullptr);
    ASSERT_LT(child->parent, report.regions.size());
    EXPECT_EQ(report.regions[child->parent].name, "test.parent");
    // The child's time is attributed to the parent: self <= total.
    EXPECT_GE(parent->child_ns, child->total_ns);
    EXPECT_LE(parent->self_ns(), parent->total_ns);
}

TEST_F(ProfilerTest, DisabledTimersRecordNothing) {
    ASSERT_FALSE(enabled());
    {
        LOTUS_PROF_SCOPE("test.disabled");
    }
    const auto report = capture();
    const auto* region = find_region(report, "test.disabled");
    // The name is interned by the macro's static regardless, but no calls or
    // time may be recorded while disabled.
    if (region != nullptr) {
        EXPECT_EQ(region->calls, 0u);
        EXPECT_EQ(region->total_ns, 0u);
    }
}

TEST_F(ProfilerTest, CountersCountEvenWhileTimersAreDisabled) {
    ASSERT_FALSE(enabled());
    LOTUS_PROF_COUNT("test.counter", 2);
    LOTUS_PROF_COUNT("test.counter", 3);
    EXPECT_EQ(counter_total("test.counter"), 5u);
    EXPECT_EQ(counter_total("test.never_registered"), 0u);
}

TEST_F(ProfilerTest, ResetZeroesValuesButKeepsNames) {
    set_enabled(true);
    {
        LOTUS_PROF_SCOPE("test.reset_region");
    }
    LOTUS_PROF_COUNT("test.reset_counter", 7);
    ASSERT_EQ(counter_total("test.reset_counter"), 7u);

    reset();
    EXPECT_EQ(counter_total("test.reset_counter"), 0u);
    const auto report = capture();
    const auto* region = find_region(report, "test.reset_region");
    ASSERT_NE(region, nullptr) << "reset must keep registered names";
    EXPECT_EQ(region->calls, 0u);
    EXPECT_EQ(region->total_ns, 0u);
}

TEST_F(ProfilerTest, WorkerThreadLogsMergeIntoTheCapture) {
    set_enabled(true);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 100;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([] {
            for (int i = 0; i < kPerThread; ++i) {
                LOTUS_PROF_SCOPE("test.worker");
                LOTUS_PROF_COUNT("test.worker_count", 1);
            }
        });
    }
    for (auto& w : workers) w.join();
    // Joined threads fold their logs into the registry at thread exit.
    const auto report = capture();
    const auto* region = find_region(report, "test.worker");
    ASSERT_NE(region, nullptr);
    EXPECT_EQ(region->calls, static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(counter_total("test.worker_count"),
              static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST_F(ProfilerTest, CaptureIsNameSortedRegardlessOfInterningOrder) {
    // Interning order is first-execution order, which under a parallel
    // harness depends on thread interleaving; the capture must not be.
    // Register from a worker thread in deliberately anti-alphabetical order,
    // then more names from this thread, and expect one sorted report with
    // parent links intact.
    set_enabled(true);
    std::thread worker([] {
        LOTUS_PROF_SCOPE("test.sort_z");
        LOTUS_PROF_COUNT("test.sortcnt_z", 1);
    });
    worker.join();
    {
        LOTUS_PROF_SCOPE("test.sort_a");
        LOTUS_PROF_SCOPE("test.sort_m");
        LOTUS_PROF_COUNT("test.sortcnt_a", 1);
    }
    const auto report = capture();
    for (std::size_t i = 1; i < report.regions.size(); ++i) {
        EXPECT_LT(report.regions[i - 1].name, report.regions[i].name);
    }
    for (std::size_t i = 1; i < report.counters.size(); ++i) {
        EXPECT_LT(report.counters[i - 1].name, report.counters[i].name);
    }
    const auto* child = find_region(report, "test.sort_m");
    ASSERT_NE(child, nullptr);
    ASSERT_LT(child->parent, report.regions.size());
    EXPECT_EQ(report.regions[child->parent].name, "test.sort_a");
}

TEST_F(ProfilerTest, ReportTextRendersRegionsAndCounters) {
    set_enabled(true);
    {
        LOTUS_PROF_SCOPE("test.report_region");
        LOTUS_PROF_COUNT("test.report_counter", 42);
    }
    const auto text = report_text();
    EXPECT_NE(text.find("test.report_region"), std::string::npos);
    EXPECT_NE(text.find("test.report_counter"), std::string::npos);
    EXPECT_NE(text.find("42"), std::string::npos);

    reset();
    EXPECT_NE(report_text().find("no profile samples recorded"), std::string::npos);
}

TEST_F(ProfilerTest, CompileGateIsOn) {
    EXPECT_TRUE(kCompiled);
}

#else // !LOTUS_PROFILING_ENABLED

TEST(ProfilerStubTest, EverythingNoOpsWhenCompiledOut) {
    EXPECT_FALSE(kCompiled);
    set_enabled(true);
    EXPECT_FALSE(enabled()); // the stub never turns on
    LOTUS_PROF_SCOPE("test.stub");
    LOTUS_PROF_COUNT("test.stub_counter", 5);
    EXPECT_EQ(counter_total("test.stub_counter"), 0u);
    const auto report = capture();
    EXPECT_TRUE(report.regions.empty());
    EXPECT_TRUE(report.counters.empty());
    EXPECT_NE(report_text().find("compiled out"), std::string::npos);
    reset();
}

#endif // LOTUS_PROFILING_ENABLED

} // namespace
} // namespace lotus::prof
