#pragma once
// Dynamic evaluation environments (Sec. 5.2.2).
//
// * AmbientProfile: ambient temperature as a function of iteration index --
//   constant for the static experiments, warm/cold/warm zones for Fig. 7a,
//   or arbitrary piecewise/custom profiles for the examples.
// * DomainSchedule: which dataset (and latency constraint) is active at each
//   iteration -- constant normally, KITTI -> VisDrone mid-run for Fig. 7b.

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace lotus::workload {

/// Ambient temperature [deg C] per iteration.
class AmbientProfile {
public:
    /// Constant ambient (the paper's "static external environment", 25 C).
    [[nodiscard]] static AmbientProfile constant(double celsius);

    /// Piecewise-constant zones: each entry is (first_iteration, celsius);
    /// entries must be ascending and start at iteration 0.
    [[nodiscard]] static AmbientProfile zones(
        std::vector<std::pair<std::size_t, double>> breakpoints);

    /// Fully custom profile.
    [[nodiscard]] static AmbientProfile custom(std::function<double(std::size_t)> fn,
                                               std::string description);

    [[nodiscard]] double at(std::size_t iteration) const;
    [[nodiscard]] const std::string& description() const noexcept { return description_; }

private:
    AmbientProfile(std::function<double(std::size_t)> fn, std::string description);

    std::function<double(std::size_t)> fn_;
    std::string description_;
};

/// One contiguous run segment: a dataset plus its latency constraint [s].
struct DomainSegment {
    std::size_t first_iteration = 0;
    std::string dataset;
    double latency_constraint_s = 0.0;
};

/// Piecewise dataset/constraint schedule (Fig. 7b switches domains mid-run).
class DomainSchedule {
public:
    /// Single-dataset schedule.
    [[nodiscard]] static DomainSchedule constant(std::string dataset,
                                                 double latency_constraint_s);

    /// Multi-segment schedule; segments must be ascending and start at 0.
    [[nodiscard]] static DomainSchedule segments(std::vector<DomainSegment> segs);

    [[nodiscard]] const DomainSegment& at(std::size_t iteration) const;
    [[nodiscard]] const std::vector<DomainSegment>& all() const noexcept { return segments_; }

    /// True when `iteration` is the first iteration of a new segment (> 0).
    [[nodiscard]] bool is_switch_point(std::size_t iteration) const noexcept;

private:
    explicit DomainSchedule(std::vector<DomainSegment> segs);

    std::vector<DomainSegment> segments_;
};

} // namespace lotus::workload
