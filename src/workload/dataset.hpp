#pragma once
// Dataset workload models.
//
// The controller never sees pixels; what couples the dataset to the control
// problem is (a) the input resolution (scales stage-1 work) and (b) the
// distribution of RPN proposal counts across frames (scales stage-2 work).
// Each dataset is modelled as a log-normal proposal-count process with AR(1)
// temporal correlation -- consecutive frames of a driving/drone video look
// alike, so proposal counts drift rather than jump. Per-frame multiplicative
// jitter models OS/scheduling noise on top.

#include <string>

#include "util/rng.hpp"

namespace lotus::workload {

/// Everything the inference engine needs to know about one frame.
struct FrameSample {
    std::size_t index = 0;
    /// Resolution factor relative to the calibration resolution.
    double resolution_scale = 1.0;
    /// Scene-complexity multiplier on backbone/RPN work (~1 +- a few %).
    double complexity = 1.0;
    /// Raw RPN proposal count before the detector's top-N clamp.
    int proposals = 0;
    /// Multiplicative OS-noise jitter applied to every stage latency.
    double jitter = 1.0;
};

struct DatasetSpec {
    std::string name;
    /// Stage-1 work multiplier vs the calibration resolution.
    double resolution_scale = 1.0;
    /// log-normal proposal marginal: exp(N(log_mean, log_sigma)).
    double proposal_log_mean = 4.8;
    double proposal_log_sigma = 0.5;
    int proposal_min = 8;
    int proposal_max = 700;
    /// AR(1) coefficient of the underlying normal process.
    double ar1_rho = 0.85;
    /// Std of the complexity multiplier (mean 1).
    double complexity_sigma = 0.03;
    /// Sigma of the log-normal latency jitter (mean ~1).
    double jitter_sigma = 0.02;
};

/// KITTI (autonomous driving, 1242x375): moderate object counts.
[[nodiscard]] DatasetSpec kitti();

/// VisDrone2019 (drone imagery, high resolution, many small objects):
/// larger inputs and substantially more proposals with a heavier tail.
[[nodiscard]] DatasetSpec visdrone2019();

[[nodiscard]] DatasetSpec dataset_by_name(const std::string& name);

/// Stateful generator of FrameSamples for one dataset (owns the AR(1)
/// state). Deterministic for a given (spec, seed).
class FrameStream {
public:
    FrameStream(DatasetSpec spec, std::uint64_t seed);

    [[nodiscard]] FrameSample next();

    [[nodiscard]] const DatasetSpec& spec() const noexcept { return spec_; }
    [[nodiscard]] std::size_t frames_emitted() const noexcept { return count_; }

    /// Expected proposal count of the stationary marginal (for tests).
    [[nodiscard]] double expected_proposals() const noexcept;

private:
    DatasetSpec spec_;
    util::Rng rng_;
    double ar_state_ = 0.0; // standardized AR(1) state
    bool ar_initialized_ = false;
    std::size_t count_ = 0;
};

} // namespace lotus::workload
