#pragma once
// Per-experiment constants: latency constraints and the static mAP metadata
// reproduced from the paper's Fig. 1.
//
// The paper applies "different latency constraints ... for different
// datasets and models due to their varied computation demands" (Sec. 5.1.2)
// but does not print the values; these are chosen so the *default*
// governor's satisfaction rate lands near the paper's reported R_L column
// (see EXPERIMENTS.md for the resulting paper-vs-measured comparison).

#include <string>

#include "detector/model.hpp"

namespace lotus::workload {

/// Latency constraint L [s] for a (device, detector, dataset) cell.
/// Device names are the DeviceSpec names ("jetson-orin-nano", "mi-11-lite").
[[nodiscard]] double latency_constraint_s(const std::string& device_name,
                                          detector::DetectorKind detector,
                                          const std::string& dataset_name);

/// mAP@0.5 metadata for Fig. 1 -- constants reproduced from the paper (this
/// repository does not train detection networks; see DESIGN.md
/// "Substitutions").
[[nodiscard]] double map50(detector::DetectorKind detector, const std::string& dataset_name);

} // namespace lotus::workload
