#include "workload/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lotus::workload {

DatasetSpec kitti() {
    DatasetSpec spec;
    spec.name = "KITTI";
    spec.resolution_scale = 1.0;       // calibration resolution (1242x375)
    spec.proposal_log_mean = std::log(120.0);
    spec.proposal_log_sigma = 0.62;
    spec.proposal_min = 10;
    spec.proposal_max = 620;
    spec.ar1_rho = 0.85;
    spec.complexity_sigma = 0.03;
    spec.jitter_sigma = 0.02;
    return spec;
}

DatasetSpec visdrone2019() {
    DatasetSpec spec;
    spec.name = "VisDrone2019";
    spec.resolution_scale = 1.55;      // ~2000x1500 aerial imagery
    spec.proposal_log_mean = std::log(280.0);
    spec.proposal_log_sigma = 0.50;
    spec.proposal_min = 20;
    spec.proposal_max = 680;
    spec.ar1_rho = 0.85;
    spec.complexity_sigma = 0.04;
    spec.jitter_sigma = 0.025;
    return spec;
}

DatasetSpec dataset_by_name(const std::string& name) {
    if (name == "KITTI" || name == "kitti") return kitti();
    if (name == "VisDrone2019" || name == "visdrone2019" || name == "visdrone") {
        return visdrone2019();
    }
    throw std::invalid_argument("dataset_by_name: unknown dataset " + name);
}

FrameStream::FrameStream(DatasetSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed) {
    if (spec_.proposal_min < 0 || spec_.proposal_max <= spec_.proposal_min) {
        throw std::invalid_argument("FrameStream: bad proposal bounds");
    }
    if (spec_.ar1_rho < 0.0 || spec_.ar1_rho >= 1.0) {
        throw std::invalid_argument("FrameStream: ar1_rho out of [0,1)");
    }
}

FrameSample FrameStream::next() {
    // AR(1) with unit stationary variance: x_t = rho x_{t-1} + sqrt(1-rho^2) e_t.
    const double innovation = rng_.normal();
    if (!ar_initialized_) {
        ar_state_ = innovation;
        ar_initialized_ = true;
    } else {
        ar_state_ = spec_.ar1_rho * ar_state_ +
                    std::sqrt(1.0 - spec_.ar1_rho * spec_.ar1_rho) * innovation;
    }

    const double raw = std::exp(spec_.proposal_log_mean + spec_.proposal_log_sigma * ar_state_);
    const int proposals = std::clamp(static_cast<int>(std::lround(raw)),
                                     spec_.proposal_min, spec_.proposal_max);

    FrameSample s;
    s.index = count_++;
    s.resolution_scale = spec_.resolution_scale;
    s.complexity = std::max(0.5, rng_.normal(1.0, spec_.complexity_sigma));
    s.proposals = proposals;
    s.jitter = rng_.lognormal(0.0, spec_.jitter_sigma);
    return s;
}

double FrameStream::expected_proposals() const noexcept {
    // Mean of the (unclamped) log-normal marginal.
    return std::exp(spec_.proposal_log_mean +
                    0.5 * spec_.proposal_log_sigma * spec_.proposal_log_sigma);
}

} // namespace lotus::workload
