#include "workload/presets.hpp"

#include <stdexcept>

namespace lotus::workload {

namespace {

[[nodiscard]] bool is_orin(const std::string& device) {
    return device.find("orin") != std::string::npos;
}

[[nodiscard]] bool is_mi11(const std::string& device) {
    return device.find("mi-11") != std::string::npos ||
           device.find("mi11") != std::string::npos;
}

[[nodiscard]] bool is_kitti(const std::string& dataset) {
    return dataset == "KITTI" || dataset == "kitti";
}

[[nodiscard]] bool is_visdrone(const std::string& dataset) {
    return dataset.rfind("VisDrone", 0) == 0 || dataset.rfind("visdrone", 0) == 0;
}

} // namespace

double latency_constraint_s(const std::string& device_name,
                            detector::DetectorKind detector,
                            const std::string& dataset_name) {
    using detector::DetectorKind;
    const bool kitti_ds = is_kitti(dataset_name);
    if (!kitti_ds && !is_visdrone(dataset_name)) {
        throw std::invalid_argument("latency_constraint_s: unknown dataset " + dataset_name);
    }

    if (is_orin(device_name)) {
        switch (detector) {
            case DetectorKind::faster_rcnn: return kitti_ds ? 0.450 : 0.590;
            case DetectorKind::mask_rcnn: return kitti_ds ? 0.520 : 0.760;
            case DetectorKind::yolo_v5: return kitti_ds ? 0.160 : 0.260;
        }
    }
    if (is_mi11(device_name)) {
        switch (detector) {
            case DetectorKind::faster_rcnn: return kitti_ds ? 1.650 : 3.000;
            case DetectorKind::mask_rcnn: return kitti_ds ? 2.200 : 3.200;
            case DetectorKind::yolo_v5: return kitti_ds ? 0.600 : 1.000;
        }
    }
    throw std::invalid_argument("latency_constraint_s: unknown device " + device_name);
}

double map50(detector::DetectorKind detector, const std::string& dataset_name) {
    using detector::DetectorKind;
    // Constants read from the paper's Fig. 1 mAP@0.5 panels: two-stage
    // detectors outscore YOLOv5 on both datasets, with a larger margin on
    // VisDrone's small-object aerial imagery.
    if (is_kitti(dataset_name)) {
        switch (detector) {
            case DetectorKind::faster_rcnn: return 76.3;
            case DetectorKind::mask_rcnn: return 79.5;
            case DetectorKind::yolo_v5: return 66.8;
        }
    }
    if (is_visdrone(dataset_name)) {
        switch (detector) {
            case DetectorKind::faster_rcnn: return 52.1;
            case DetectorKind::mask_rcnn: return 57.9;
            case DetectorKind::yolo_v5: return 34.5;
        }
    }
    throw std::invalid_argument("map50: unknown dataset " + dataset_name);
}

} // namespace lotus::workload
