#include "workload/environment.hpp"

#include <sstream>
#include <stdexcept>

namespace lotus::workload {

AmbientProfile::AmbientProfile(std::function<double(std::size_t)> fn, std::string description)
    : fn_(std::move(fn)), description_(std::move(description)) {}

AmbientProfile AmbientProfile::constant(double celsius) {
    std::ostringstream d;
    d << "constant " << celsius << " C";
    return AmbientProfile([celsius](std::size_t) { return celsius; }, d.str());
}

AmbientProfile AmbientProfile::zones(std::vector<std::pair<std::size_t, double>> breakpoints) {
    if (breakpoints.empty() || breakpoints.front().first != 0) {
        throw std::invalid_argument("AmbientProfile::zones: must start at iteration 0");
    }
    for (std::size_t i = 1; i < breakpoints.size(); ++i) {
        if (breakpoints[i].first <= breakpoints[i - 1].first) {
            throw std::invalid_argument("AmbientProfile::zones: breakpoints must ascend");
        }
    }
    std::ostringstream d;
    d << "zones:";
    for (const auto& [it, c] : breakpoints) d << " @" << it << "->" << c << "C";
    return AmbientProfile(
        [bp = std::move(breakpoints)](std::size_t iteration) {
            double value = bp.front().second;
            for (const auto& [first, celsius] : bp) {
                if (iteration >= first) value = celsius;
            }
            return value;
        },
        d.str());
}

AmbientProfile AmbientProfile::custom(std::function<double(std::size_t)> fn,
                                      std::string description) {
    if (!fn) throw std::invalid_argument("AmbientProfile::custom: null function");
    return AmbientProfile(std::move(fn), std::move(description));
}

double AmbientProfile::at(std::size_t iteration) const {
    return fn_(iteration);
}

DomainSchedule::DomainSchedule(std::vector<DomainSegment> segs) : segments_(std::move(segs)) {}

DomainSchedule DomainSchedule::constant(std::string dataset, double latency_constraint_s) {
    if (latency_constraint_s <= 0.0) {
        throw std::invalid_argument("DomainSchedule: constraint must be > 0");
    }
    return DomainSchedule({DomainSegment{0, std::move(dataset), latency_constraint_s}});
}

DomainSchedule DomainSchedule::segments(std::vector<DomainSegment> segs) {
    if (segs.empty() || segs.front().first_iteration != 0) {
        throw std::invalid_argument("DomainSchedule: must start at iteration 0");
    }
    for (std::size_t i = 0; i < segs.size(); ++i) {
        if (segs[i].latency_constraint_s <= 0.0) {
            throw std::invalid_argument("DomainSchedule: constraint must be > 0");
        }
        if (i > 0 && segs[i].first_iteration <= segs[i - 1].first_iteration) {
            throw std::invalid_argument("DomainSchedule: segments must ascend");
        }
    }
    return DomainSchedule(std::move(segs));
}

const DomainSegment& DomainSchedule::at(std::size_t iteration) const {
    const DomainSegment* seg = &segments_.front();
    for (const auto& s : segments_) {
        if (iteration >= s.first_iteration) seg = &s;
    }
    return *seg;
}

bool DomainSchedule::is_switch_point(std::size_t iteration) const noexcept {
    if (iteration == 0) return false;
    for (const auto& s : segments_) {
        if (s.first_iteration == iteration) return true;
    }
    return false;
}

} // namespace lotus::workload
