#pragma once
// Umbrella public header for the LOTUS reproduction library.
//
// Typical usage (see examples/quickstart.cpp):
//
//   auto spec  = lotus::platform::orin_nano_spec();
//   auto cfg   = lotus::runtime::static_experiment(
//                    spec, lotus::detector::DetectorKind::faster_rcnn,
//                    "KITTI", /*iterations=*/3000, /*pretrain=*/1500);
//   lotus::core::LotusConfig lotus_cfg;
//   lotus_cfg.reward.t_thres_celsius =
//       lotus::platform::reward_threshold_celsius(spec);
//   lotus::core::LotusAgent agent(spec.cpu.opp.num_levels(),
//                                 spec.gpu.opp.num_levels(), lotus_cfg);
//   lotus::runtime::ExperimentRunner runner(cfg);
//   auto trace = runner.run(agent);
//   auto s = trace.summary();   // mean latency, sigma_l, satisfaction rate

// Utilities
#include "util/ascii.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

// RL substrate
#include "rl/dqn.hpp"
#include "rl/matrix.hpp"
#include "rl/mlp.hpp"
#include "rl/optimizer.hpp"
#include "rl/replay.hpp"
#include "rl/schedule.hpp"
#include "rl/serialize.hpp"

// Platform simulator
#include "platform/device.hpp"
#include "platform/opp.hpp"
#include "platform/power.hpp"
#include "platform/presets.hpp"
#include "platform/sysfs.hpp"
#include "platform/sysfs_client.hpp"
#include "platform/thermal.hpp"
#include "platform/throttle.hpp"

// Detector and workload models
#include "detector/model.hpp"
#include "detector/work.hpp"
#include "workload/dataset.hpp"
#include "workload/environment.hpp"
#include "workload/presets.hpp"

// Governors (baselines) and the LOTUS agent
#include "governors/governor.hpp"
#include "governors/linux_governors.hpp"
#include "governors/ztt.hpp"
#include "lotus/agent.hpp"
#include "lotus/reward.hpp"
#include "lotus/state.hpp"

// Runtime harness
#include "runtime/engine.hpp"
#include "runtime/runner.hpp"
#include "runtime/trace.hpp"

// Serving runtime: multi-stream request queues over one device
#include "serving/arrivals.hpp"
#include "serving/engine.hpp"
#include "serving/queue.hpp"
#include "serving/request.hpp"
#include "serving/scheduler.hpp"
#include "serving/trace.hpp"

// Fleet layer: thermally-aware routing across a pool of devices
#include "fleet/engine.hpp"
#include "fleet/fleet.hpp"
#include "fleet/router.hpp"
#include "fleet/trace.hpp"

// Experiment harness: scenario catalog + parallel episode execution
#include "harness/harness.hpp"
#include "harness/registry.hpp"
#include "harness/scenario.hpp"
#include "harness/sinks.hpp"
