#include "platform/presets.hpp"

namespace lotus::platform {

DeviceSpec orin_nano_spec() {
    DeviceSpec spec{
        .name = "jetson-orin-nano",
        .cpu =
            DomainSpec{
                .opp = OppTable("cpu",
                                {
                                    {422.4e6, 0.62},
                                    {652.8e6, 0.66},
                                    {883.2e6, 0.71},
                                    {1113.6e6, 0.77},
                                    {1267.2e6, 0.82},
                                    {1344.0e6, 0.85},
                                    {1420.8e6, 0.88},
                                    {1510.4e6, 0.92},
                                }),
                // 3 W dynamic at the top OPP (6-core A78AE cluster).
                .power =
                    PowerParams{
                        .c_eff = 2.35e-9,
                        .leak0_w_per_v = 0.25,
                        .leak_temp_coeff = 0.020,
                        .t0_celsius = 25.0,
                        .idle_fraction = 0.06,
                    },
                // 6 cores x ~4-wide SIMD on the abstract op scale.
                .ops_per_cycle = 24.0,
            },
        .gpu =
            DomainSpec{
                // Steep voltage cliff at the top of the ladder: the last two
                // levels buy ~2-20% frequency for ~40% more power, so they
                // are thermally unsustainable and must be used in bursts.
                .opp = OppTable("gpu",
                                {
                                    {153.6e6, 0.62},
                                    {306.0e6, 0.66},
                                    {408.0e6, 0.68},
                                    {510.0e6, 0.70},
                                    {612.0e6, 0.95},
                                    {624.75e6, 1.00},
                                }),
                // ~16 W dynamic at the top OPP: hot enough that sustained
                // max-frequency operation must throttle (Fig. 4 "default"),
                // while the 408-510 MHz band is thermally sustainable.
                .power =
                    PowerParams{
                        .c_eff = 3.5e-8,
                        .leak0_w_per_v = 0.35,
                        .leak_temp_coeff = 0.022,
                        .t0_celsius = 25.0,
                        .idle_fraction = 0.05,
                    },
                // 1024 CUDA cores x 2 (FMA) on the abstract op scale.
                .ops_per_cycle = 2048.0,
            },
        .thermal =
            ThermalParams{
                // Die time constants of a few seconds give the spiky
                // trip/recover oscillation of real throttling; the board's
                // ~3 min constant shapes the slow ramp of Fig. 4 over the
                // first ~700 iterations.
                .capacity = {3.0, 3.0, 30.0},
                .g_to_board = {0.8, 0.9, 0.0},
                .g_to_ambient = {0.02, 0.02, 0.22},
                .initial = {25.0, 25.0, 25.0},
                .max_dt = 0.005,
            },
        .cpu_throttle =
            ThrottleParams{
                .trip_celsius = 85.0,
                .hysteresis_k = 4.0,
                .poll_interval_s = 0.1,
                .clamp_level = 2,
                .num_levels = 8, // overwritten by EdgeDevice
            },
        .gpu_throttle =
            ThrottleParams{
                .trip_celsius = 85.0,
                .hysteresis_k = 4.0,
                .poll_interval_s = 0.1,
                .clamp_level = 0, // "a very low level" (Sec. 1)
                .num_levels = 6, // overwritten by EdgeDevice
            },
        .mem_bandwidth = 68.0e9, // 128-bit LPDDR5
        .dvfs_latency_s = 50e-6,
        .initial_ambient_celsius = 25.0,
    };
    return spec;
}

DeviceSpec mi11_lite_spec() {
    DeviceSpec spec{
        .name = "mi-11-lite",
        .cpu =
            DomainSpec{
                .opp = OppTable("cpu",
                                {
                                    {0.60e9, 0.60},
                                    {0.90e9, 0.65},
                                    {1.20e9, 0.70},
                                    {1.50e9, 0.75},
                                    {1.80e9, 0.80},
                                    {2.00e9, 0.84},
                                    {2.20e9, 0.88},
                                    {2.40e9, 0.92},
                                }),
                // ~3.2 W dynamic at the top OPP: on a phone the CPU is a
                // first-order heat source, which is why the stock governor
                // (CPU pinned high by schedutil) trips the skin limit while
                // the agents -- free to keep the CPU low -- do not.
                .power =
                    PowerParams{
                        .c_eff = 1.58e-9,
                        .leak0_w_per_v = 0.12,
                        .leak_temp_coeff = 0.020,
                        .t0_celsius = 25.0,
                        .idle_fraction = 0.06,
                    },
                .ops_per_cycle = 16.0,
            },
        .gpu =
            DomainSpec{
                // Same steep top-of-ladder voltage cliff as the Jetson: the
                // last two levels are burst-only inside the skin envelope.
                .opp = OppTable("gpu",
                                {
                                    {180.0e6, 0.62},
                                    {257.0e6, 0.65},
                                    {315.0e6, 0.68},
                                    {380.0e6, 0.70},
                                    {441.0e6, 0.71},
                                    {490.0e6, 0.82},
                                    {545.0e6, 0.93},
                                    {590.0e6, 0.98},
                                }),
                // ~6.2 W dynamic at the top OPP: unsustainable inside the
                // phone's skin-limited envelope, while ~441 MHz is fine.
                .power =
                    PowerParams{
                        .c_eff = 1.30e-8,
                        .leak0_w_per_v = 0.15,
                        .leak_temp_coeff = 0.022,
                        .t0_celsius = 25.0,
                        .idle_fraction = 0.05,
                    },
                // Adreno 642: far fewer ALUs than the Orin's Ampere GPU;
                // yields the ~3-4x latency gap between Tables 1 and 2.
                .ops_per_cycle = 512.0,
            },
        .thermal =
            ThermalParams{
                // Phone chassis: effective time constant ~4 min against the
                // ~20-40 min Fig. 6 runs; skin-limited trip engages within
                // the first third of the run under the default governor.
                // Die time constants (~8 s) span several of the phone's
                // second-scale frames, so throttle trip/recover cycles show
                // up as *between-frame* latency variance rather than
                // averaging out inside a single frame.
                .capacity = {6.0, 6.0, 60.0},
                .g_to_board = {0.8, 0.7, 0.0},
                .g_to_ambient = {0.01, 0.01, 0.28},
                .initial = {25.0, 25.0, 25.0},
                .max_dt = 0.005,
            },
        // Phones throttle on skin temperature: a much lower bound with a
        // tighter hysteresis (Fig. 6 operates in the 28-40 degC band).
        // Phone thermal engines react on second-scale horizons (skin temps
        // move slowly): the sluggish poll + wide hysteresis make each
        // trip/recover cycle span several of the phone's second-long frames,
        // which is what turns throttling into *between-frame* latency
        // variance under the stock governor (Fig. 6).
        .cpu_throttle =
            ThrottleParams{
                .trip_celsius = 43.0,
                .hysteresis_k = 4.0,
                .poll_interval_s = 0.3,
                .clamp_level = 1,
                .num_levels = 8,
            },
        .gpu_throttle =
            ThrottleParams{
                .trip_celsius = 43.0,
                .hysteresis_k = 4.0,
                .poll_interval_s = 0.3,
                .clamp_level = 1,
                .num_levels = 8,
            },
        .mem_bandwidth = 17.0e9, // LPDDR4X
        .dvfs_latency_s = 60e-6,
        .initial_ambient_celsius = 25.0,
    };
    return spec;
}

double throttle_bound_celsius(const DeviceSpec& spec) {
    return std::max(spec.cpu_throttle.trip_celsius, spec.gpu_throttle.trip_celsius);
}

double reward_threshold_celsius(const DeviceSpec& spec) {
    // 2 K safety margin below the hardware trip: enough that an agent
    // respecting T_thres never throttles, but not so conservative that it
    // must give up the sustainable upper-middle of the ladder.
    return throttle_bound_celsius(spec) - 2.0;
}

} // namespace lotus::platform
