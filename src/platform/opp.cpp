#include "platform/opp.hpp"

#include <stdexcept>

namespace lotus::platform {

OppTable::OppTable(std::string domain_name, std::vector<OperatingPoint> points)
    : domain_(std::move(domain_name)), points_(std::move(points)) {
    if (points_.size() < 2) {
        throw std::invalid_argument("OppTable: need at least two levels");
    }
    for (std::size_t i = 0; i < points_.size(); ++i) {
        if (points_[i].freq_hz <= 0.0 || points_[i].voltage_v <= 0.0) {
            throw std::invalid_argument("OppTable: non-positive freq/voltage");
        }
        if (i > 0 && (points_[i].freq_hz <= points_[i - 1].freq_hz ||
                      points_[i].voltage_v < points_[i - 1].voltage_v)) {
            throw std::invalid_argument(
                "OppTable: levels must be strictly ascending in frequency and "
                "non-descending in voltage");
        }
    }
}

const OperatingPoint& OppTable::level(std::size_t i) const {
    if (i >= points_.size()) throw std::out_of_range("OppTable::level");
    return points_[i];
}

std::size_t OppTable::level_for_freq(double f) const noexcept {
    if (f <= points_.front().freq_hz) return 0;
    for (std::size_t i = points_.size(); i-- > 0;) {
        if (points_[i].freq_hz <= f) return i;
    }
    return 0;
}

} // namespace lotus::platform
