#pragma once
// Operating performance points (OPP): the discrete frequency/voltage ladder
// of a DVFS domain. The paper's action space is the cross product of the M
// CPU levels and N GPU levels (Sec. 4.3.1); each level here carries the
// voltage used by the power model (P_dyn ~ C f V^2).

#include <cstddef>
#include <string>
#include <vector>

namespace lotus::platform {

struct OperatingPoint {
    double freq_hz = 0.0;
    double voltage_v = 0.0;
};

/// Immutable, ascending-frequency ladder of operating points.
class OppTable {
public:
    OppTable(std::string domain_name, std::vector<OperatingPoint> points);

    [[nodiscard]] const std::string& domain() const noexcept { return domain_; }
    [[nodiscard]] std::size_t num_levels() const noexcept { return points_.size(); }

    [[nodiscard]] const OperatingPoint& level(std::size_t i) const;

    [[nodiscard]] double freq(std::size_t i) const { return level(i).freq_hz; }
    [[nodiscard]] double voltage(std::size_t i) const { return level(i).voltage_v; }

    [[nodiscard]] double min_freq() const noexcept { return points_.front().freq_hz; }
    [[nodiscard]] double max_freq() const noexcept { return points_.back().freq_hz; }

    /// Highest level whose frequency is <= f (clamps to the ladder ends);
    /// mirrors cpufreq's frequency->level resolution.
    [[nodiscard]] std::size_t level_for_freq(double f) const noexcept;

    [[nodiscard]] const std::vector<OperatingPoint>& points() const noexcept { return points_; }

private:
    std::string domain_;
    std::vector<OperatingPoint> points_;
};

} // namespace lotus::platform
