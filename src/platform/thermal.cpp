#include "platform/thermal.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace lotus::platform {

namespace {
constexpr std::size_t kCpu = static_cast<std::size_t>(ThermalNode::cpu);
constexpr std::size_t kGpu = static_cast<std::size_t>(ThermalNode::gpu);
constexpr std::size_t kBoard = static_cast<std::size_t>(ThermalNode::board);
} // namespace

ThermalNetwork::ThermalNetwork(ThermalParams params) : params_(params) {
    for (const double c : params_.capacity) {
        if (c <= 0.0) throw std::invalid_argument("ThermalNetwork: capacity must be > 0");
    }
    for (const double g : params_.g_to_board) {
        if (g < 0.0) throw std::invalid_argument("ThermalNetwork: negative conductance");
    }
    for (const double g : params_.g_to_ambient) {
        if (g < 0.0) throw std::invalid_argument("ThermalNetwork: negative conductance");
    }
    if (params_.max_dt <= 0.0) throw std::invalid_argument("ThermalNetwork: max_dt must be > 0");
    temps_ = params_.initial;
    decompose();
}

void ThermalNetwork::decompose() {
    // Conductance matrix G of C dT/dt = -G T + b (b = P + G_amb * T_amb).
    std::array<std::array<double, kNumThermalNodes>, kNumThermalNodes> g{};
    g[kCpu][kCpu] = params_.g_to_board[kCpu] + params_.g_to_ambient[kCpu];
    g[kGpu][kGpu] = params_.g_to_board[kGpu] + params_.g_to_ambient[kGpu];
    g[kBoard][kBoard] =
        params_.g_to_board[kCpu] + params_.g_to_board[kGpu] + params_.g_to_ambient[kBoard];
    g[kCpu][kBoard] = g[kBoard][kCpu] = -params_.g_to_board[kCpu];
    g[kGpu][kBoard] = g[kBoard][kGpu] = -params_.g_to_board[kGpu];

    for (std::size_t i = 0; i < kNumThermalNodes; ++i) {
        sqrt_c_[i] = std::sqrt(params_.capacity[i]);
    }

    // S = C^{-1/2} G C^{-1/2}: symmetric, similar to C^{-1} G, so its
    // eigenvalues are the (real, non-negative) decay rates of the network.
    std::array<std::array<double, kNumThermalNodes>, kNumThermalNodes> s{};
    for (std::size_t i = 0; i < kNumThermalNodes; ++i) {
        for (std::size_t j = 0; j < kNumThermalNodes; ++j) {
            s[i][j] = g[i][j] / (sqrt_c_[i] * sqrt_c_[j]);
        }
    }

    // Cyclic Jacobi eigendecomposition (3x3 symmetric: converges in a few
    // sweeps, fully deterministic).
    std::array<std::array<double, kNumThermalNodes>, kNumThermalNodes> v{};
    for (std::size_t i = 0; i < kNumThermalNodes; ++i) v[i][i] = 1.0;
    for (int sweep = 0; sweep < 64; ++sweep) {
        double off = 0.0;
        for (std::size_t p = 0; p < kNumThermalNodes; ++p) {
            for (std::size_t q = p + 1; q < kNumThermalNodes; ++q) off += s[p][q] * s[p][q];
        }
        if (off < 1e-26) break;
        for (std::size_t p = 0; p < kNumThermalNodes; ++p) {
            for (std::size_t q = p + 1; q < kNumThermalNodes; ++q) {
                if (std::abs(s[p][q]) < 1e-300) continue;
                const double theta = (s[q][q] - s[p][p]) / (2.0 * s[p][q]);
                const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                                 (std::abs(theta) + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double sn = t * c;
                for (std::size_t k = 0; k < kNumThermalNodes; ++k) {
                    const double skp = s[k][p];
                    const double skq = s[k][q];
                    s[k][p] = c * skp - sn * skq;
                    s[k][q] = sn * skp + c * skq;
                }
                for (std::size_t k = 0; k < kNumThermalNodes; ++k) {
                    const double spk = s[p][k];
                    const double sqk = s[q][k];
                    s[p][k] = c * spk - sn * sqk;
                    s[q][k] = sn * spk + c * sqk;
                    const double vkp = v[k][p];
                    const double vkq = v[k][q];
                    v[k][p] = c * vkp - sn * vkq;
                    v[k][q] = sn * vkp + c * vkq;
                }
            }
        }
    }
    for (std::size_t k = 0; k < kNumThermalNodes; ++k) {
        eigenvalues_[k] = std::max(s[k][k], 0.0);
    }
    eigenvectors_ = v;
    // Without a path to ambient G is singular: no steady state exists and
    // the modal form has a zero mode, so the exact stepper is unavailable.
    double lambda_min = eigenvalues_[0];
    for (const double l : eigenvalues_) lambda_min = std::min(lambda_min, l);
    has_closed_form_ = lambda_min > 1e-12;
}

void ThermalNetwork::step(double dt, const std::array<double, kNumThermalNodes>& power_w,
                          double ambient_celsius) {
    if (dt < 0.0) throw std::invalid_argument("ThermalNetwork::step: negative dt");
    while (dt > 0.0) {
        const double h = std::min(dt, params_.max_dt);
        dt -= h;

        const double t_cpu = temps_[kCpu];
        const double t_gpu = temps_[kGpu];
        const double t_board = temps_[kBoard];

        const double q_cpu_board = params_.g_to_board[kCpu] * (t_board - t_cpu);
        const double q_gpu_board = params_.g_to_board[kGpu] * (t_board - t_gpu);

        const double d_cpu = power_w[kCpu] + q_cpu_board +
                             params_.g_to_ambient[kCpu] * (ambient_celsius - t_cpu);
        const double d_gpu = power_w[kGpu] + q_gpu_board +
                             params_.g_to_ambient[kGpu] * (ambient_celsius - t_gpu);
        const double d_board = power_w[kBoard] - q_cpu_board - q_gpu_board +
                               params_.g_to_ambient[kBoard] * (ambient_celsius - t_board);

        temps_[kCpu] += h * d_cpu / params_.capacity[kCpu];
        temps_[kGpu] += h * d_gpu / params_.capacity[kGpu];
        temps_[kBoard] += h * d_board / params_.capacity[kBoard];
        ++steps_;
    }
}

ThermalNetwork::Modal ThermalNetwork::project(
    const std::array<double, kNumThermalNodes>& power_w, double ambient_celsius) const {
    Modal m;
    m.t_ss = steady_state(power_w, ambient_celsius);
    // Modal coordinates of the deviation from steady state: a = V^T C^{1/2}
    // (T - T_ss); each mode decays as e^{-lambda_k t}.
    for (std::size_t k = 0; k < kNumThermalNodes; ++k) {
        for (std::size_t i = 0; i < kNumThermalNodes; ++i) {
            m.a[k] += eigenvectors_[i][k] * sqrt_c_[i] * (temps_[i] - m.t_ss[i]);
        }
    }
    return m;
}

double ThermalNetwork::drift_bound(const Modal& modal, double delta_k) const {
    // Node i moves as T_i(t) - T_i(0) = sum_k c_ik (e^{-lambda_k t} - 1)
    // with c_ik = V_ik a_k / sqrt(C_i). Two rigorous per-node bounds:
    //   saturation: |dT_i(t)| <= A_i        = sum_k |c_ik|       (for all t)
    //   rate:       |dT_i(t)| <= t * R_i,   R_i = sum_k |c_ik| lambda_k
    // (1 - e^{-x} <= min(1, x)). A node with A_i <= delta can never drift
    // that far; otherwise delta / R_i bounds its crossing time. Taking the
    // per-node rate -- instead of amplitude * lambda_max -- keeps the slow,
    // large-amplitude board mode from being charged at the fast die rate.
    double step = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < kNumThermalNodes; ++i) {
        double amplitude = 0.0;
        double rate = 0.0;
        for (std::size_t k = 0; k < kNumThermalNodes; ++k) {
            const double c = std::abs(eigenvectors_[i][k] * modal.a[k]) / sqrt_c_[i];
            amplitude += c;
            rate += c * eigenvalues_[k];
        }
        if (amplitude <= delta_k || rate <= 0.0) continue;
        step = std::min(step, delta_k / rate);
    }
    return step;
}

void ThermalNetwork::apply_decay(const Modal& modal, double dt) {
    for (std::size_t i = 0; i < kNumThermalNodes; ++i) {
        double w = 0.0;
        for (std::size_t k = 0; k < kNumThermalNodes; ++k) {
            w += eigenvectors_[i][k] * modal.a[k] * std::exp(-eigenvalues_[k] * dt);
        }
        temps_[i] = modal.t_ss[i] + w / sqrt_c_[i];
    }
    ++steps_;
}

void ThermalNetwork::step_exact(double dt, const std::array<double, kNumThermalNodes>& power_w,
                                double ambient_celsius) {
    if (dt < 0.0) throw std::invalid_argument("ThermalNetwork::step_exact: negative dt");
    if (dt == 0.0) return;
    if (!has_closed_form_) {
        step(dt, power_w, ambient_celsius);
        return;
    }
    apply_decay(project(power_w, ambient_celsius), dt);
}

double ThermalNetwork::max_step_for_drift(const std::array<double, kNumThermalNodes>& power_w,
                                          double ambient_celsius, double delta_k) const {
    if (delta_k <= 0.0) {
        throw std::invalid_argument("ThermalNetwork::max_step_for_drift: delta must be > 0");
    }
    if (!has_closed_form_) return std::numeric_limits<double>::infinity();
    return drift_bound(project(power_w, ambient_celsius), delta_k);
}

double ThermalNetwork::advance_bounded(double dt_max,
                                       const std::array<double, kNumThermalNodes>& power_w,
                                       double ambient_celsius, double delta_k) {
    if (dt_max < 0.0) {
        throw std::invalid_argument("ThermalNetwork::advance_bounded: negative dt");
    }
    if (delta_k <= 0.0) {
        throw std::invalid_argument("ThermalNetwork::advance_bounded: delta must be > 0");
    }
    if (dt_max == 0.0) return 0.0;
    if (!has_closed_form_) {
        step(dt_max, power_w, ambient_celsius);
        return dt_max;
    }
    const auto modal = project(power_w, ambient_celsius);
    // The 1 ns floor guarantees forward progress even if the bound ever
    // degenerates numerically.
    const double h = std::min(dt_max, std::max(drift_bound(modal, delta_k), 1e-9));
    apply_decay(modal, h);
    return h;
}

std::array<double, kNumThermalNodes> ThermalNetwork::steady_state(
    const std::array<double, kNumThermalNodes>& power_w, double ambient_celsius) const {
    // Eliminate the die nodes, then solve the board balance.
    //   T_die = (P_die + Gdb * T_board + Gda * T_amb) / (Gdb + Gda)
    const double g0b = params_.g_to_board[kCpu];
    const double g0a = params_.g_to_ambient[kCpu];
    const double g1b = params_.g_to_board[kGpu];
    const double g1a = params_.g_to_ambient[kGpu];
    const double g2a = params_.g_to_ambient[kBoard];
    const double ta = ambient_celsius;

    // Heat flowing die -> board expressed in T_board:
    //   Q_d = Gdb * (T_die - T_board)
    //       = Gdb * ((P_d + Gda*Ta - Ga_sum*T_board + Gdb*T_board) ... )
    // Work it through for both dies and solve the linear board equation
    //   0 = P_board + Q_cpu + Q_gpu + g2a (Ta - T_board).
    const double s0 = g0b + g0a;
    const double s1 = g1b + g1a;
    // Q_cpu = g0b * ((P0 + g0a Ta)/s0 + (g0b/s0 - 1) T_board)
    const double c0 = g0b * (power_w[kCpu] + g0a * ta) / s0;
    const double k0 = g0b * (g0b / s0 - 1.0);
    const double c1 = g1b * (power_w[kGpu] + g1a * ta) / s1;
    const double k1 = g1b * (g1b / s1 - 1.0);

    const double t_board = (power_w[kBoard] + c0 + c1 + g2a * ta) / (g2a - k0 - k1);
    const double t_cpu = (power_w[kCpu] + g0b * t_board + g0a * ta) / s0;
    const double t_gpu = (power_w[kGpu] + g1b * t_board + g1a * ta) / s1;
    return {t_cpu, t_gpu, t_board};
}

void ThermalNetwork::reset(double ambient_celsius) {
    temps_ = {ambient_celsius, ambient_celsius, ambient_celsius};
    steps_ = 0;
}

void ThermalNetwork::reset() {
    temps_ = params_.initial;
    steps_ = 0;
}

} // namespace lotus::platform
