#include "platform/thermal.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lotus::platform {

namespace {
constexpr std::size_t kCpu = static_cast<std::size_t>(ThermalNode::cpu);
constexpr std::size_t kGpu = static_cast<std::size_t>(ThermalNode::gpu);
constexpr std::size_t kBoard = static_cast<std::size_t>(ThermalNode::board);
} // namespace

ThermalNetwork::ThermalNetwork(ThermalParams params) : params_(params) {
    for (const double c : params_.capacity) {
        if (c <= 0.0) throw std::invalid_argument("ThermalNetwork: capacity must be > 0");
    }
    for (const double g : params_.g_to_board) {
        if (g < 0.0) throw std::invalid_argument("ThermalNetwork: negative conductance");
    }
    for (const double g : params_.g_to_ambient) {
        if (g < 0.0) throw std::invalid_argument("ThermalNetwork: negative conductance");
    }
    if (params_.max_dt <= 0.0) throw std::invalid_argument("ThermalNetwork: max_dt must be > 0");
    temps_ = params_.initial;
}

void ThermalNetwork::step(double dt, const std::array<double, kNumThermalNodes>& power_w,
                          double ambient_celsius) {
    if (dt < 0.0) throw std::invalid_argument("ThermalNetwork::step: negative dt");
    while (dt > 0.0) {
        const double h = std::min(dt, params_.max_dt);
        dt -= h;

        const double t_cpu = temps_[kCpu];
        const double t_gpu = temps_[kGpu];
        const double t_board = temps_[kBoard];

        const double q_cpu_board = params_.g_to_board[kCpu] * (t_board - t_cpu);
        const double q_gpu_board = params_.g_to_board[kGpu] * (t_board - t_gpu);

        const double d_cpu = power_w[kCpu] + q_cpu_board +
                             params_.g_to_ambient[kCpu] * (ambient_celsius - t_cpu);
        const double d_gpu = power_w[kGpu] + q_gpu_board +
                             params_.g_to_ambient[kGpu] * (ambient_celsius - t_gpu);
        const double d_board = power_w[kBoard] - q_cpu_board - q_gpu_board +
                               params_.g_to_ambient[kBoard] * (ambient_celsius - t_board);

        temps_[kCpu] += h * d_cpu / params_.capacity[kCpu];
        temps_[kGpu] += h * d_gpu / params_.capacity[kGpu];
        temps_[kBoard] += h * d_board / params_.capacity[kBoard];
    }
}

std::array<double, kNumThermalNodes> ThermalNetwork::steady_state(
    const std::array<double, kNumThermalNodes>& power_w, double ambient_celsius) const {
    // Eliminate the die nodes, then solve the board balance.
    //   T_die = (P_die + Gdb * T_board + Gda * T_amb) / (Gdb + Gda)
    const double g0b = params_.g_to_board[kCpu];
    const double g0a = params_.g_to_ambient[kCpu];
    const double g1b = params_.g_to_board[kGpu];
    const double g1a = params_.g_to_ambient[kGpu];
    const double g2a = params_.g_to_ambient[kBoard];
    const double ta = ambient_celsius;

    // Heat flowing die -> board expressed in T_board:
    //   Q_d = Gdb * (T_die - T_board)
    //       = Gdb * ((P_d + Gda*Ta - Ga_sum*T_board + Gdb*T_board) ... )
    // Work it through for both dies and solve the linear board equation
    //   0 = P_board + Q_cpu + Q_gpu + g2a (Ta - T_board).
    const double s0 = g0b + g0a;
    const double s1 = g1b + g1a;
    // Q_cpu = g0b * ((P0 + g0a Ta)/s0 + (g0b/s0 - 1) T_board)
    const double c0 = g0b * (power_w[kCpu] + g0a * ta) / s0;
    const double k0 = g0b * (g0b / s0 - 1.0);
    const double c1 = g1b * (power_w[kGpu] + g1a * ta) / s1;
    const double k1 = g1b * (g1b / s1 - 1.0);

    const double t_board = (power_w[kBoard] + c0 + c1 + g2a * ta) / (g2a - k0 - k1);
    const double t_cpu = (power_w[kCpu] + g0b * t_board + g0a * ta) / s0;
    const double t_gpu = (power_w[kGpu] + g1b * t_board + g1a * ta) / s1;
    return {t_cpu, t_gpu, t_board};
}

void ThermalNetwork::reset(double ambient_celsius) {
    temps_ = {ambient_celsius, ambient_celsius, ambient_celsius};
}

void ThermalNetwork::reset() {
    temps_ = params_.initial;
}

} // namespace lotus::platform
