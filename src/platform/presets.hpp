#pragma once
// Calibrated device presets for the paper's two evaluation platforms.
//
// The constants are calibrated (see DESIGN.md and EXPERIMENTS.md) so that:
//  * sustained max-frequency inference overheats both devices (engaging the
//    step_wise throttler), while mid-ladder operation is thermally
//    sustainable -- the regime split that makes DVFS control non-trivial;
//  * the Jetson Orin Nano operates in the 55-85 degC band of Figs. 4/5/7 and
//    the Mi 11 Lite in the 28-40 degC skin-limited band of Fig. 6;
//  * absolute detector latencies land in the range of Tables 1-2
//    (Orin: ~0.3-0.8 s, Mi 11 Lite: ~1.2-3.2 s per frame).

#include "platform/device.hpp"

namespace lotus::platform {

/// NVIDIA Jetson Orin Nano: 6-core Cortex-A78AE @ 1.5 GHz, 1024-core Ampere
/// GPU @ 624.75 MHz, 8 GB LPDDR5 (Sec. 4.4 of the paper). 8 CPU x 6 GPU OPP
/// levels -> 48 joint actions.
[[nodiscard]] DeviceSpec orin_nano_spec();

/// Xiaomi Mi 11 Lite: Snapdragon 780G (Kryo 670 CPU, Adreno 642 GPU). The
/// tri-cluster CPU is modelled as a single DVFS domain, matching the paper's
/// single f_cpu action dimension. 8 CPU x 8 GPU levels -> 64 joint actions.
[[nodiscard]] DeviceSpec mi11_lite_spec();

/// Throttling trip temperature [deg C] for a spec (max of the domain trips);
/// the red dashed "throttling bound" line in the paper's figures.
[[nodiscard]] double throttle_bound_celsius(const DeviceSpec& spec);

/// The reward threshold T_thres used by the learning governors: a safety
/// margin below the hardware trip so the agent learns to avoid throttling
/// rather than ride it.
[[nodiscard]] double reward_threshold_celsius(const DeviceSpec& spec);

} // namespace lotus::platform
