#include "platform/device.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "prof/profiler.hpp"
#include "telemetry/recorder.hpp"

namespace lotus::platform {

namespace {
/// Tolerance when comparing the clock against event deadlines (absorbs
/// floating-point residue of stepping exactly onto an event instant).
constexpr double kTimeEps = 1e-12;
/// Legacy fixed sub-slice of ThermalStepping::euler_slice [s].
constexpr double kEulerSlice = 0.02;
} // namespace

EdgeDevice::EdgeDevice(DeviceSpec spec)
    : spec_(std::move(spec)),
      cpu_power_(spec_.cpu.power),
      gpu_power_(spec_.gpu.power),
      thermal_(spec_.thermal),
      cpu_throttle_([&] {
          auto p = spec_.cpu_throttle;
          p.num_levels = spec_.cpu.opp.num_levels();
          return p;
      }()),
      gpu_throttle_([&] {
          auto p = spec_.gpu_throttle;
          p.num_levels = spec_.gpu.opp.num_levels();
          return p;
      }()),
      req_cpu_(spec_.cpu.opp.num_levels() - 1),
      req_gpu_(spec_.gpu.opp.num_levels() - 1),
      ambient_(spec_.initial_ambient_celsius),
      tel_label_(spec_.name) {
    if (spec_.mem_bandwidth <= 0.0) {
        throw std::invalid_argument("EdgeDevice: mem_bandwidth must be > 0");
    }
    if (spec_.dvfs_latency_s < 0.0) {
        throw std::invalid_argument("EdgeDevice: negative dvfs latency");
    }
    if (spec_.thermal_accuracy_k <= 0.0) {
        throw std::invalid_argument("EdgeDevice: thermal_accuracy_k must be > 0");
    }
    thermal_.reset(ambient_);
}

void EdgeDevice::request_levels(std::size_t cpu_level, std::size_t gpu_level) {
    if (cpu_level >= cpu_levels() || gpu_level >= gpu_levels()) {
        throw std::out_of_range("EdgeDevice::request_levels: level out of range");
    }
    const bool changed = cpu_level != req_cpu_ || gpu_level != req_gpu_;
    req_cpu_ = cpu_level;
    req_gpu_ = gpu_level;
    if (changed && spec_.dvfs_latency_s > 0.0) {
        // The frequency-scaling syscalls themselves take time (the paper
        // measures dozens of microseconds); the device is essentially idle
        // while they execute.
        advance(spec_.dvfs_latency_s, 0.0, 0.0);
    }
}

void EdgeDevice::request_cpu_level(std::size_t level) {
    request_levels(level, req_gpu_);
}

void EdgeDevice::request_gpu_level(std::size_t level) {
    request_levels(req_cpu_, level);
}

std::size_t EdgeDevice::cpu_level() const noexcept {
    return std::min(req_cpu_, cpu_throttle_.cap());
}

std::size_t EdgeDevice::gpu_level() const noexcept {
    return std::min(req_gpu_, gpu_throttle_.cap());
}

double EdgeDevice::cpu_freq() const noexcept {
    return spec_.cpu.opp.freq(cpu_level());
}

double EdgeDevice::gpu_freq() const noexcept {
    return spec_.gpu.opp.freq(gpu_level());
}

double EdgeDevice::cpu_throughput() const noexcept {
    return cpu_freq() * spec_.cpu.ops_per_cycle;
}

double EdgeDevice::gpu_throughput() const noexcept {
    return gpu_freq() * spec_.gpu.ops_per_cycle;
}

void EdgeDevice::advance(double dt, double cpu_util, double gpu_util) {
    (void)advance_segmented(dt, cpu_util, gpu_util, /*stop_on_level_change=*/false);
}

double EdgeDevice::advance_work(double dt, double cpu_util, double gpu_util) {
    return advance_segmented(dt, cpu_util, gpu_util, /*stop_on_level_change=*/true);
}

void EdgeDevice::fire_due_events(double cpu_util, double gpu_util) {
    if (!listener_) return;
    for (int guard = 0; listener_->next_event_s() <= now_ + kTimeEps; ++guard) {
        if (guard > 4096) {
            throw std::logic_error(
                "EdgeDevice::advance: listener does not move its event deadline forward");
        }
        listener_->on_event(now_, cpu_util, gpu_util);
    }
}

double EdgeDevice::advance_segmented(double dt, double cpu_util, double gpu_util,
                                     bool stop_on_level_change) {
    if (dt < 0.0) throw std::invalid_argument("EdgeDevice::advance: negative dt");
    if (dt == 0.0) return 0.0;
    LOTUS_PROF_SCOPE("device.advance");

    const bool closed_form = spec_.thermal_stepping == ThermalStepping::closed_form;
    double remaining = dt;
    double elapsed = 0.0;
    fire_due_events(cpu_util, gpu_util);
    while (remaining > 0.0) {
        const auto cl = cpu_level();
        const auto gl = gpu_level();
        const double p_cpu = cpu_power_.total(spec_.cpu.opp.freq(cl), spec_.cpu.opp.voltage(cl),
                                              cpu_util, cpu_temp());
        const double p_gpu = gpu_power_.total(spec_.gpu.opp.freq(gl), spec_.gpu.opp.voltage(gl),
                                              gpu_util, gpu_temp());
        const std::array<double, kNumThermalNodes> power{p_cpu, p_gpu, 0.0};

        // Segment budget: up to the earliest of caller deadline, throttle
        // polls and the listener's next event. Power (and hence the
        // linearised thermal input) is frozen across the segment, so every
        // throttle poll and listener event sees the temperature evaluated at
        // its exact instant.
        double t_next = now_ + remaining;
        t_next = std::min(t_next, cpu_throttle_.next_poll_s());
        t_next = std::min(t_next, gpu_throttle_.next_poll_s());
        if (listener_) t_next = std::min(t_next, listener_->next_event_s());
        t_next = std::max(t_next, now_ + 1e-9); // progress guarantee
        const double budget = std::min(t_next - now_, remaining);

        double h;
        if (closed_form) {
            // One modal projection bounds the step (thermal_accuracy_k) and
            // advances it; h <= budget.
            h = thermal_.advance_bounded(budget, power, ambient_,
                                         spec_.thermal_accuracy_k);
        } else {
            h = std::min(budget, kEulerSlice);
            thermal_.step(h, power, ambient_);
        }
        LOTUS_PROF_COUNT("device.thermal_segments", 1);
        last_power_ = {p_cpu, p_gpu};
        energy_j_ += (p_cpu + p_gpu) * h;
        now_ += h;
        remaining -= h;
        elapsed += h;

        // Polls only run on their own grid; remember whether this segment
        // reached one so on_throttle keeps its "after a poll" contract.
        const bool polled = now_ + kTimeEps >= cpu_throttle_.next_poll_s() ||
                            now_ + kTimeEps >= gpu_throttle_.next_poll_s();
        cpu_throttle_.update(now_, cpu_temp());
        gpu_throttle_.update(now_, gpu_temp());
        if (listener_ && polled && (cpu_throttle_.engaged() || gpu_throttle_.engaged())) {
            listener_->on_throttle(now_, cpu_throttle_.engaged(), gpu_throttle_.engaged());
        }
        publish_telemetry();
        // Deliver due listener events (kernel ticks). These may nest another
        // advance (a tick requesting new levels pays the DVFS stall), which
        // runs this loop re-entrantly on top of the current segment.
        fire_due_events(cpu_util, gpu_util);

        if (stop_on_level_change && (cpu_level() != cl || gl != gpu_level())) break;
    }
    return elapsed;
}

void EdgeDevice::reset() {
    thermal_.reset(ambient_);
    cpu_throttle_.reset();
    gpu_throttle_.reset();
    now_ = 0.0;
    energy_j_ = 0.0;
    last_power_ = {};
    // Telemetry change-detection must re-prime: the clock rewound, and the
    // published levels/engagements no longer describe the device.
    tel_track_ = -1;
    tel_next_sample_ = 0.0;
}

void EdgeDevice::publish_telemetry() {
    auto* tel = telemetry::current();
    if (!tel) return;
    if (tel != tel_recorder_ || tel_track_ < 0) {
        // First publication under this recorder (or after reset/relabel):
        // prime the change detectors and schedule an immediate sample. The
        // track id is cached so the per-segment cost is a TLS load and a
        // few comparisons, not a map lookup.
        tel_recorder_ = tel;
        tel_track_ = tel->track(tel_label_, "platform");
        tel_cpu_level_ = cpu_level();
        tel_gpu_level_ = gpu_level();
        tel_cpu_engaged_ = cpu_throttle_.engaged();
        tel_gpu_engaged_ = gpu_throttle_.engaged();
        tel_next_sample_ = now_;
        tel_rollup_t_ = now_;
        tel_rollup_energy_j_ = energy_j_;
        tel_rollup_level_ = cpu_level();
        tel_rollup_throttled_ = cpu_throttle_.engaged() || gpu_throttle_.engaged();
    }
    const int track = tel_track_;

    if (auto* rollup = tel->rollup()) {
        // Fold the span since the last publication in under the OPP level
        // and throttle state that held across it; the energy delta is the
        // device's own integrator, so window sums reconcile exactly with
        // energy_joules().
        rollup->record_device_span(tel_label_, tel_rollup_t_, now_,
                                   tel_rollup_level_, tel_rollup_throttled_,
                                   energy_j_ - tel_rollup_energy_j_);
        tel_rollup_t_ = now_;
        tel_rollup_energy_j_ = energy_j_;
        tel_rollup_level_ = cpu_level();
        tel_rollup_throttled_ = cpu_throttle_.engaged() || gpu_throttle_.engaged();
    }

    if (cpu_level() != tel_cpu_level_ || gpu_level() != tel_gpu_level_) {
        tel_cpu_level_ = cpu_level();
        tel_gpu_level_ = gpu_level();
        tel->instant(track, "opp_change", now_,
                     "\"cpu_level\":" + std::to_string(tel_cpu_level_) +
                         ",\"gpu_level\":" + std::to_string(tel_gpu_level_) +
                         ",\"cpu_mhz\":" + telemetry::jnum(cpu_freq() / 1e6) +
                         ",\"gpu_mhz\":" + telemetry::jnum(gpu_freq() / 1e6));
    }
    if (cpu_throttle_.engaged() != tel_cpu_engaged_) {
        tel_cpu_engaged_ = cpu_throttle_.engaged();
        tel->instant(track, tel_cpu_engaged_ ? "throttle_trip" : "throttle_clear", now_,
                     "\"domain\":\"cpu\",\"cap\":" + std::to_string(cpu_throttle_.cap()) +
                         ",\"temp_c\":" + telemetry::jnum(cpu_temp()));
    }
    if (gpu_throttle_.engaged() != tel_gpu_engaged_) {
        tel_gpu_engaged_ = gpu_throttle_.engaged();
        tel->instant(track, tel_gpu_engaged_ ? "throttle_trip" : "throttle_clear", now_,
                     "\"domain\":\"gpu\",\"cap\":" + std::to_string(gpu_throttle_.cap()) +
                         ",\"temp_c\":" + telemetry::jnum(gpu_temp()));
    }
    if (now_ + kTimeEps >= tel_next_sample_) {
        tel->counter(track, "cpu_temp_c", now_, cpu_temp());
        tel->counter(track, "gpu_temp_c", now_, gpu_temp());
        tel->counter(track, "board_temp_c", now_, board_temp());
        tel->counter(track, "cpu_freq_mhz", now_, cpu_freq() / 1e6);
        tel->counter(track, "gpu_freq_mhz", now_, gpu_freq() / 1e6);
        tel->counter(track, "power_w", now_, last_power_.total());
        if (auto* rollup = tel->rollup()) {
            rollup->record_temp_sample(
                tel_label_, now_, std::max(cpu_temp(), gpu_temp()),
                std::min(spec_.cpu_throttle.trip_celsius - cpu_temp(),
                         spec_.gpu_throttle.trip_celsius - gpu_temp()));
        }
        tel_next_sample_ = now_ + tel->sample_period_s();
    }
}

void EdgeDevice::mount_sysfs(SysfsFs& fs) {
    const auto khz = [](double hz) {
        std::ostringstream ss;
        ss << static_cast<long long>(hz / 1000.0);
        return ss.str();
    };
    const auto hz_str = [](double hz) {
        std::ostringstream ss;
        ss << static_cast<long long>(hz);
        return ss.str();
    };
    const auto milli_c = [](double celsius) {
        std::ostringstream ss;
        ss << static_cast<long long>(celsius * 1000.0);
        return ss.str();
    };

    // cpufreq (kHz, like the kernel interface)
    const std::string cpufreq = "/sys/devices/system/cpu/cpu0/cpufreq";
    fs.add_file(cpufreq + "/scaling_cur_freq", [this, khz] { return khz(cpu_freq()); });
    fs.add_file(cpufreq + "/scaling_available_frequencies", [this] {
        std::ostringstream ss;
        for (std::size_t i = 0; i < cpu_levels(); ++i) {
            if (i) ss << ' ';
            ss << static_cast<long long>(spec_.cpu.opp.freq(i) / 1000.0);
        }
        return ss.str();
    });
    fs.add_file(
        cpufreq + "/scaling_setspeed", [this, khz] { return khz(spec_.cpu.opp.freq(req_cpu_)); },
        [this](const std::string& v) {
            const double f = std::stod(v) * 1000.0;
            request_cpu_level(spec_.cpu.opp.level_for_freq(f));
        });
    fs.add_file(cpufreq + "/scaling_max_freq",
                [this, khz] { return khz(spec_.cpu.opp.freq(cpu_throttle_.cap())); });

    // devfreq GPU (Hz, like the kernel interface)
    const std::string devfreq = "/sys/class/devfreq/gpu";
    fs.add_file(devfreq + "/cur_freq", [this, hz_str] { return hz_str(gpu_freq()); });
    fs.add_file(devfreq + "/available_frequencies", [this] {
        std::ostringstream ss;
        for (std::size_t i = 0; i < gpu_levels(); ++i) {
            if (i) ss << ' ';
            ss << static_cast<long long>(spec_.gpu.opp.freq(i));
        }
        return ss.str();
    });
    fs.add_file(
        devfreq + "/userspace/set_freq",
        [this, hz_str] { return hz_str(spec_.gpu.opp.freq(req_gpu_)); },
        [this](const std::string& v) {
            request_gpu_level(spec_.gpu.opp.level_for_freq(std::stod(v)));
        });
    fs.add_file(devfreq + "/max_freq",
                [this, hz_str] { return hz_str(spec_.gpu.opp.freq(gpu_throttle_.cap())); });

    // thermal zones (milli-degC, like the kernel interface)
    fs.add_file("/sys/class/thermal/thermal_zone0/type", [] { return std::string("cpu-thermal"); });
    fs.add_file("/sys/class/thermal/thermal_zone0/temp",
                [this, milli_c] { return milli_c(cpu_temp()); });
    fs.add_file("/sys/class/thermal/thermal_zone1/type", [] { return std::string("gpu-thermal"); });
    fs.add_file("/sys/class/thermal/thermal_zone1/temp",
                [this, milli_c] { return milli_c(gpu_temp()); });
    fs.add_file("/sys/class/thermal/thermal_zone2/type",
                [] { return std::string("board-thermal"); });
    fs.add_file("/sys/class/thermal/thermal_zone2/temp",
                [this, milli_c] { return milli_c(board_temp()); });
}

} // namespace lotus::platform
