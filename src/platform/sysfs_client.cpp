#include "platform/sysfs_client.hpp"

#include <sstream>
#include <stdexcept>

namespace lotus::platform {

namespace {

constexpr const char* kCpuFreq = "/sys/devices/system/cpu/cpu0/cpufreq";
constexpr const char* kGpuDevfreq = "/sys/class/devfreq/gpu";
constexpr const char* kCpuThermal = "/sys/class/thermal/thermal_zone0/temp";
constexpr const char* kGpuThermal = "/sys/class/thermal/thermal_zone1/temp";

std::vector<double> parse_freq_list(const std::string& text, double scale) {
    std::vector<double> out;
    std::istringstream ss(text);
    double value = 0.0;
    while (ss >> value) out.push_back(value * scale);
    return out;
}

} // namespace

SysfsDvfsClient::SysfsDvfsClient(SysfsFs& fs) : fs_(fs) {
    if (!fs_.exists(std::string(kCpuFreq) + "/scaling_cur_freq")) {
        throw std::invalid_argument(
            "SysfsDvfsClient: no device mounted on this sysfs tree");
    }
}

double SysfsDvfsClient::cpu_temp_celsius() const {
    return static_cast<double>(fs_.read_ll(kCpuThermal)) / 1000.0;
}

double SysfsDvfsClient::gpu_temp_celsius() const {
    return static_cast<double>(fs_.read_ll(kGpuThermal)) / 1000.0;
}

double SysfsDvfsClient::cpu_freq_hz() const {
    // cpufreq reports kHz.
    return static_cast<double>(fs_.read_ll(std::string(kCpuFreq) + "/scaling_cur_freq")) *
           1000.0;
}

double SysfsDvfsClient::gpu_freq_hz() const {
    // devfreq reports Hz.
    return static_cast<double>(fs_.read_ll(std::string(kGpuDevfreq) + "/cur_freq"));
}

double SysfsDvfsClient::cpu_max_freq_hz() const {
    return static_cast<double>(fs_.read_ll(std::string(kCpuFreq) + "/scaling_max_freq")) *
           1000.0;
}

double SysfsDvfsClient::gpu_max_freq_hz() const {
    return static_cast<double>(fs_.read_ll(std::string(kGpuDevfreq) + "/max_freq"));
}

std::vector<double> SysfsDvfsClient::cpu_available_hz() const {
    return parse_freq_list(
        fs_.read(std::string(kCpuFreq) + "/scaling_available_frequencies"), 1000.0);
}

std::vector<double> SysfsDvfsClient::gpu_available_hz() const {
    return parse_freq_list(fs_.read(std::string(kGpuDevfreq) + "/available_frequencies"),
                           1.0);
}

void SysfsDvfsClient::set_cpu_freq_hz(double hz) {
    std::ostringstream ss;
    ss << static_cast<long long>(hz / 1000.0);
    fs_.write(std::string(kCpuFreq) + "/scaling_setspeed", ss.str());
}

void SysfsDvfsClient::set_gpu_freq_hz(double hz) {
    std::ostringstream ss;
    ss << static_cast<long long>(hz);
    fs_.write(std::string(kGpuDevfreq) + "/userspace/set_freq", ss.str());
}

void SysfsDvfsClient::set_cpu_level(std::size_t level) {
    const auto ladder = cpu_available_hz();
    if (level >= ladder.size()) throw std::out_of_range("set_cpu_level");
    set_cpu_freq_hz(ladder[level]);
}

void SysfsDvfsClient::set_gpu_level(std::size_t level) {
    const auto ladder = gpu_available_hz();
    if (level >= ladder.size()) throw std::out_of_range("set_gpu_level");
    set_gpu_freq_hz(ladder[level]);
}

} // namespace lotus::platform
