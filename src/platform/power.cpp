#include "platform/power.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lotus::platform {

PowerModel::PowerModel(PowerParams params) : params_(params) {
    if (params_.c_eff < 0.0 || params_.leak0_w_per_v < 0.0) {
        throw std::invalid_argument("PowerModel: negative coefficients");
    }
    if (params_.idle_fraction < 0.0 || params_.idle_fraction > 1.0) {
        throw std::invalid_argument("PowerModel: idle_fraction out of [0,1]");
    }
}

double PowerModel::dynamic_power(double f, double v, double u) const noexcept {
    u = std::clamp(u, 0.0, 1.0);
    const double u_eff = params_.idle_fraction + (1.0 - params_.idle_fraction) * u;
    return u_eff * params_.c_eff * f * v * v;
}

double PowerModel::leakage(double v, double t_celsius) const noexcept {
    return params_.leak0_w_per_v * v *
           std::exp(params_.leak_temp_coeff * (t_celsius - params_.t0_celsius));
}

double PowerModel::total(double f, double v, double u, double t_celsius) const noexcept {
    return dynamic_power(f, v, u) + leakage(v, t_celsius);
}

} // namespace lotus::platform
