#pragma once
// Kernel-interface client: typed access to the device state through the
// sysfs tree, mirroring how the paper's agent collects every observation
// ("directly through the sysfs in the Linux kernel and Android kernel",
// Sec. 4.4) and applies frequency decisions.
//
// On real hardware this class would read/write actual /sys files; here it
// runs against the SysfsFs emulation mounted by EdgeDevice::mount_sysfs,
// giving governors an actuation path that is textually identical to a
// deployment.

#include <vector>

#include "platform/sysfs.hpp"

namespace lotus::platform {

class SysfsDvfsClient {
public:
    /// `fs` must outlive the client and have a device mounted on it.
    explicit SysfsDvfsClient(SysfsFs& fs);

    // --- observations ------------------------------------------------------
    [[nodiscard]] double cpu_temp_celsius() const;
    [[nodiscard]] double gpu_temp_celsius() const;
    [[nodiscard]] double cpu_freq_hz() const;
    [[nodiscard]] double gpu_freq_hz() const;
    /// Throttle-capped ceilings currently advertised by the kernel.
    [[nodiscard]] double cpu_max_freq_hz() const;
    [[nodiscard]] double gpu_max_freq_hz() const;

    /// Available OPP frequencies, ascending [Hz].
    [[nodiscard]] std::vector<double> cpu_available_hz() const;
    [[nodiscard]] std::vector<double> gpu_available_hz() const;

    // --- actuation ----------------------------------------------------------
    /// Request a frequency (snapped to the ladder by the kernel side).
    void set_cpu_freq_hz(double hz);
    void set_gpu_freq_hz(double hz);

    /// Convenience: request by OPP-ladder index.
    void set_cpu_level(std::size_t level);
    void set_gpu_level(std::size_t level);

private:
    SysfsFs& fs_;
};

} // namespace lotus::platform
