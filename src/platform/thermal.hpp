#pragma once
// Lumped RC thermal network.
//
// Three thermal nodes -- CPU die, GPU die and the shared board/chassis --
// exchange heat through thermal conductances and leak to ambient:
//
//      C_i dT_i/dt = P_i + sum_j G_ij (T_j - T_i) + G_i,amb (T_amb - T_i)
//
// This captures the two effects the paper's motivation hinges on: thermal
// *coupling* between CPU and GPU through the board (Sec. 3, "thermal
// coupling among processors"), and a slow board time constant that makes
// overheating a delayed consequence of earlier frequency decisions -- the
// credit-assignment problem the DRL agent must solve.
//
// For *constant* node powers the system is linear, C dT/dt = -G T + b, so
// it admits an exact solution: T(t) = T_ss + C^{-1/2} V e^{-Lambda t} V^T
// C^{1/2} (T_0 - T_ss), where S = C^{-1/2} G C^{-1/2} = V Lambda V^T is a
// constant symmetric matrix that only depends on the network parameters.
// step_exact() evaluates that solution in one integration step regardless
// of dt, and max_step_for_drift() gives the analytic step bound the device
// uses to keep the power-freezing error (leakage drifts with temperature
// inside a segment) below a configured tolerance.

#include <array>
#include <cstddef>
#include <cstdint>

namespace lotus::platform {

enum class ThermalNode : std::size_t { cpu = 0, gpu = 1, board = 2 };
inline constexpr std::size_t kNumThermalNodes = 3;

struct ThermalParams {
    /// Heat capacities [J/K].
    std::array<double, kNumThermalNodes> capacity{8.0, 10.0, 70.0};
    /// Conductance die->board [W/K], indexed by die node (board unused).
    std::array<double, kNumThermalNodes> g_to_board{0.8, 0.9, 0.0};
    /// Conductance node->ambient [W/K].
    std::array<double, kNumThermalNodes> g_to_ambient{0.02, 0.02, 0.22};
    /// Initial temperatures [deg C].
    std::array<double, kNumThermalNodes> initial{25.0, 25.0, 25.0};
    /// Maximum Euler integration sub-step [s].
    double max_dt = 0.005;
};

class ThermalNetwork {
public:
    explicit ThermalNetwork(ThermalParams params);

    /// Integrate for `dt` seconds with constant node powers [W] (board power
    /// is usually 0) and the given ambient temperature [deg C]. dt is split
    /// into explicit-Euler sub-steps of at most params.max_dt for stability.
    void step(double dt, const std::array<double, kNumThermalNodes>& power_w,
              double ambient_celsius);

    /// Advance by `dt` seconds under constant power/ambient using the exact
    /// closed-form exponential solution: one integration step regardless of
    /// dt. Falls back to step() when the network has no path to ambient
    /// (singular G has no steady state to decay towards).
    void step_exact(double dt, const std::array<double, kNumThermalNodes>& power_w,
                    double ambient_celsius);

    /// Analytic upper bound on how long the network can evolve from its
    /// current state (under constant power/ambient) before any node's
    /// temperature drifts more than `delta_k` kelvin from its current value.
    /// Per node i with modal coefficients c_ik = V_ik a_k / sqrt(C_i):
    /// |dT_i(t)| <= min(A_i, t * R_i) with A_i = sum_k |c_ik| (saturation)
    /// and R_i = sum_k |c_ik| lambda_k (initial-rate bound, from
    /// 1 - e^{-x} <= min(1, x)); nodes with A_i <= delta can never cross,
    /// the rest cross no earlier than delta / R_i. Returns +infinity when no
    /// node can ever drift that far.
    [[nodiscard]] double max_step_for_drift(
        const std::array<double, kNumThermalNodes>& power_w, double ambient_celsius,
        double delta_k) const;

    /// Fused max_step_for_drift + step_exact: advance by
    /// min(dt_max, drift bound) under constant power/ambient with ONE modal
    /// projection, and return the time actually advanced (> 0 for
    /// dt_max > 0). The advance loop's hot path. Falls back to step(dt_max)
    /// on singular networks, like step_exact.
    double advance_bounded(double dt_max, const std::array<double, kNumThermalNodes>& power_w,
                           double ambient_celsius, double delta_k);

    /// Integration steps taken so far (Euler sub-steps count individually,
    /// each step_exact() counts once); cleared by reset().
    [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }

    [[nodiscard]] double temperature(ThermalNode n) const noexcept {
        return temps_[static_cast<std::size_t>(n)];
    }
    [[nodiscard]] const std::array<double, kNumThermalNodes>& temperatures() const noexcept {
        return temps_;
    }

    /// Closed-form steady-state temperatures for constant power/ambient;
    /// used by tests and for calibration sanity checks.
    [[nodiscard]] std::array<double, kNumThermalNodes> steady_state(
        const std::array<double, kNumThermalNodes>& power_w, double ambient_celsius) const;

    void reset(double ambient_celsius);
    void reset();

    [[nodiscard]] const ThermalParams& params() const noexcept { return params_; }

private:
    /// Steady state plus modal amplitudes a_k = (V^T C^{1/2} (T - T_ss))_k
    /// of the current deviation -- everything the closed-form math needs.
    struct Modal {
        std::array<double, kNumThermalNodes> t_ss{};
        std::array<double, kNumThermalNodes> a{};
    };

    void decompose();
    [[nodiscard]] Modal project(const std::array<double, kNumThermalNodes>& power_w,
                                double ambient_celsius) const;
    [[nodiscard]] double drift_bound(const Modal& modal, double delta_k) const;
    void apply_decay(const Modal& modal, double dt);

    ThermalParams params_;
    std::array<double, kNumThermalNodes> temps_{};
    std::uint64_t steps_ = 0;

    // Constant modal decomposition of S = C^{-1/2} G C^{-1/2} (symmetric):
    // computed once at construction, shared by step_exact() and
    // max_step_for_drift().
    std::array<double, kNumThermalNodes> sqrt_c_{};
    std::array<double, kNumThermalNodes> eigenvalues_{};          // 1/s, >= 0
    std::array<std::array<double, kNumThermalNodes>, kNumThermalNodes>
        eigenvectors_{};                                          // columns
    bool has_closed_form_ = false;
};

} // namespace lotus::platform
