#pragma once
// Lumped RC thermal network.
//
// Three thermal nodes -- CPU die, GPU die and the shared board/chassis --
// exchange heat through thermal conductances and leak to ambient:
//
//      C_i dT_i/dt = P_i + sum_j G_ij (T_j - T_i) + G_i,amb (T_amb - T_i)
//
// This captures the two effects the paper's motivation hinges on: thermal
// *coupling* between CPU and GPU through the board (Sec. 3, "thermal
// coupling among processors"), and a slow board time constant that makes
// overheating a delayed consequence of earlier frequency decisions -- the
// credit-assignment problem the DRL agent must solve.

#include <array>
#include <cstddef>

namespace lotus::platform {

enum class ThermalNode : std::size_t { cpu = 0, gpu = 1, board = 2 };
inline constexpr std::size_t kNumThermalNodes = 3;

struct ThermalParams {
    /// Heat capacities [J/K].
    std::array<double, kNumThermalNodes> capacity{8.0, 10.0, 70.0};
    /// Conductance die->board [W/K], indexed by die node (board unused).
    std::array<double, kNumThermalNodes> g_to_board{0.8, 0.9, 0.0};
    /// Conductance node->ambient [W/K].
    std::array<double, kNumThermalNodes> g_to_ambient{0.02, 0.02, 0.22};
    /// Initial temperatures [deg C].
    std::array<double, kNumThermalNodes> initial{25.0, 25.0, 25.0};
    /// Maximum Euler integration sub-step [s].
    double max_dt = 0.005;
};

class ThermalNetwork {
public:
    explicit ThermalNetwork(ThermalParams params);

    /// Integrate for `dt` seconds with constant node powers [W] (board power
    /// is usually 0) and the given ambient temperature [deg C]. dt is split
    /// into sub-steps of at most params.max_dt for stability.
    void step(double dt, const std::array<double, kNumThermalNodes>& power_w,
              double ambient_celsius);

    [[nodiscard]] double temperature(ThermalNode n) const noexcept {
        return temps_[static_cast<std::size_t>(n)];
    }
    [[nodiscard]] const std::array<double, kNumThermalNodes>& temperatures() const noexcept {
        return temps_;
    }

    /// Closed-form steady-state temperatures for constant power/ambient;
    /// used by tests and for calibration sanity checks.
    [[nodiscard]] std::array<double, kNumThermalNodes> steady_state(
        const std::array<double, kNumThermalNodes>& power_w, double ambient_celsius) const;

    void reset(double ambient_celsius);
    void reset();

    [[nodiscard]] const ThermalParams& params() const noexcept { return params_; }

private:
    ThermalParams params_;
    std::array<double, kNumThermalNodes> temps_{};
};

} // namespace lotus::platform
