#include "platform/throttle.hpp"

#include <algorithm>
#include <stdexcept>

namespace lotus::platform {

ThermalThrottler::ThermalThrottler(ThrottleParams params)
    : params_(params), cap_(params.num_levels == 0 ? 0 : params.num_levels - 1) {
    if (params_.num_levels == 0) {
        throw std::invalid_argument("ThermalThrottler: zero levels");
    }
    if (params_.clamp_level >= params_.num_levels) {
        throw std::invalid_argument("ThermalThrottler: clamp_level out of range");
    }
    if (params_.poll_interval_s <= 0.0) {
        throw std::invalid_argument("ThermalThrottler: poll interval must be > 0");
    }
    if (params_.hysteresis_k < 0.0) {
        throw std::invalid_argument("ThermalThrottler: negative hysteresis");
    }
}

std::size_t ThermalThrottler::update(double now, double temp_celsius) {
    // One decision per elapsed polling interval. If the simulation jumped
    // several intervals (a long frame), the kernel would have polled during
    // that window too, so apply the decision repeatedly.
    // The epsilon absorbs floating-point residue when callers step time in
    // exact multiples of the polling interval.
    while (now - last_poll_ >= params_.poll_interval_s - 1e-12) {
        last_poll_ += params_.poll_interval_s;
        if (temp_celsius >= params_.trip_celsius) {
            if (!hot_) {
                ++trips_;
                hot_ = true;
            }
            cap_ = std::min(cap_, params_.clamp_level);
        } else if (temp_celsius <= params_.trip_celsius - params_.hysteresis_k) {
            hot_ = false;
            if (cap_ + 1 < params_.num_levels) ++cap_;
        }
        // Inside the hysteresis band: hold the current cap.
    }
    return cap_;
}

void ThermalThrottler::reset() {
    cap_ = params_.num_levels - 1;
    last_poll_ = 0.0;
    trips_ = 0;
    hot_ = false;
}

} // namespace lotus::platform
