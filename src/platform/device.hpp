#pragma once
// EdgeDevice: the simulated edge platform.
//
// Ties together the two DVFS domains (CPU cluster + GPU), the power model,
// the RC thermal network, the per-domain thermal throttlers and a simulated
// clock. Client code (the inference engine / governors) interacts with it
// the way user space interacts with a Jetson or Android device:
//   * request OPP levels (granted levels are clamped by the throttle caps),
//   * burn compute time via advance(dt, cpu_util, gpu_util),
//   * observe temperatures/frequencies -- directly or through the mounted
//     sysfs tree.

#include <array>
#include <cstddef>
#include <string>

#include "platform/opp.hpp"
#include "platform/power.hpp"
#include "platform/sysfs.hpp"
#include "platform/thermal.hpp"
#include "platform/throttle.hpp"

namespace lotus::platform {

/// One DVFS domain: its OPP ladder, power parameters and compute
/// characteristics used by the detector latency model.
struct DomainSpec {
    OppTable opp;
    PowerParams power;
    /// Effective ops per cycle: throughput at frequency f is f * ops_per_cycle
    /// (ops in the abstract work units used by lotus::detector).
    double ops_per_cycle = 1.0;
};

struct DeviceSpec {
    std::string name;
    DomainSpec cpu;
    DomainSpec gpu;
    ThermalParams thermal;
    ThrottleParams cpu_throttle;
    ThrottleParams gpu_throttle;
    /// Memory bandwidth seen by the accelerators [bytes/s]; the memory-bound
    /// part of a kernel does not speed up with core frequency.
    double mem_bandwidth = 50e9;
    /// Latency of one frequency-scaling syscall pair [s] (paper: "dozens of
    /// microseconds").
    double dvfs_latency_s = 50e-6;
    double initial_ambient_celsius = 25.0;
};

struct PowerSample {
    double cpu_w = 0.0;
    double gpu_w = 0.0;
    [[nodiscard]] double total() const noexcept { return cpu_w + gpu_w; }
};

class EdgeDevice {
public:
    explicit EdgeDevice(DeviceSpec spec);

    // --- DVFS -------------------------------------------------------------
    [[nodiscard]] std::size_t cpu_levels() const noexcept { return spec_.cpu.opp.num_levels(); }
    [[nodiscard]] std::size_t gpu_levels() const noexcept { return spec_.gpu.opp.num_levels(); }

    /// Request OPP levels; the granted level is min(request, throttle cap).
    /// Advances the clock by the DVFS transition latency when the request
    /// changes anything.
    void request_levels(std::size_t cpu_level, std::size_t gpu_level);
    void request_cpu_level(std::size_t level);
    void request_gpu_level(std::size_t level);

    [[nodiscard]] std::size_t requested_cpu_level() const noexcept { return req_cpu_; }
    [[nodiscard]] std::size_t requested_gpu_level() const noexcept { return req_gpu_; }
    /// Granted (throttle-clamped) levels.
    [[nodiscard]] std::size_t cpu_level() const noexcept;
    [[nodiscard]] std::size_t gpu_level() const noexcept;
    [[nodiscard]] double cpu_freq() const noexcept;
    [[nodiscard]] double gpu_freq() const noexcept;

    /// Effective compute throughput [ops/s] at the granted levels.
    [[nodiscard]] double cpu_throughput() const noexcept;
    [[nodiscard]] double gpu_throughput() const noexcept;
    [[nodiscard]] double mem_bandwidth() const noexcept { return spec_.mem_bandwidth; }

    // --- time / physics ----------------------------------------------------
    /// Advance simulated time by dt seconds with the given domain
    /// utilizations; integrates the thermal network (sub-stepped), polls the
    /// throttlers and accumulates energy.
    void advance(double dt, double cpu_util, double gpu_util);

    [[nodiscard]] double now() const noexcept { return now_; }

    // --- observability -----------------------------------------------------
    [[nodiscard]] double cpu_temp() const noexcept {
        return thermal_.temperature(ThermalNode::cpu);
    }
    [[nodiscard]] double gpu_temp() const noexcept {
        return thermal_.temperature(ThermalNode::gpu);
    }
    [[nodiscard]] double board_temp() const noexcept {
        return thermal_.temperature(ThermalNode::board);
    }
    [[nodiscard]] bool cpu_throttled() const noexcept { return cpu_throttle_.engaged(); }
    [[nodiscard]] bool gpu_throttled() const noexcept { return gpu_throttle_.engaged(); }
    [[nodiscard]] bool throttled() const noexcept { return cpu_throttled() || gpu_throttled(); }
    [[nodiscard]] PowerSample last_power() const noexcept { return last_power_; }
    [[nodiscard]] double energy_joules() const noexcept { return energy_j_; }

    // --- environment --------------------------------------------------------
    void set_ambient(double celsius) noexcept { ambient_ = celsius; }
    [[nodiscard]] double ambient() const noexcept { return ambient_; }

    /// Reset temperatures (to ambient), throttlers, clock and energy; keeps
    /// the requested levels.
    void reset();

    [[nodiscard]] const DeviceSpec& spec() const noexcept { return spec_; }

    /// Register the kernel-like sysfs nodes for this device on `fs`.
    void mount_sysfs(SysfsFs& fs);

private:
    DeviceSpec spec_;
    PowerModel cpu_power_;
    PowerModel gpu_power_;
    ThermalNetwork thermal_;
    ThermalThrottler cpu_throttle_;
    ThermalThrottler gpu_throttle_;

    std::size_t req_cpu_;
    std::size_t req_gpu_;
    double now_ = 0.0;
    double ambient_;
    double energy_j_ = 0.0;
    PowerSample last_power_;
};

} // namespace lotus::platform
