#pragma once
// EdgeDevice: the simulated edge platform.
//
// Ties together the two DVFS domains (CPU cluster + GPU), the power model,
// the RC thermal network, the per-domain thermal throttlers and a simulated
// clock. Client code (the inference engine / governors) interacts with it
// the way user space interacts with a Jetson or Android device:
//   * request OPP levels (granted levels are clamped by the throttle caps),
//   * burn compute time via advance(dt, cpu_util, gpu_util),
//   * observe temperatures/frequencies -- directly or through the mounted
//     sysfs tree.
//
// advance() is the *single time-advance authority*: every path that moves
// the simulated clock -- work slices, idle gaps, agent decision overhead
// and the DVFS-transition latency charged inside request_levels() -- runs
// through the same event-driven loop. The loop splits time at "events"
// (throttle-poll instants, the registered listener's next deadline, and the
// thermal stepper's accuracy bound) and notifies the AdvanceListener at
// each of them, so kernel-governor ticks land at their exact cadence and
// throttle engagements are observable no matter which code path burned the
// time. Between events the RC network is integrated either with the exact
// closed-form exponential step (default) or with the legacy fixed 20 ms
// Euler slicing (ThermalStepping::euler_slice, kept as the accuracy/perf
// reference for bench_overhead).

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "platform/opp.hpp"
#include "platform/power.hpp"
#include "platform/sysfs.hpp"
#include "platform/thermal.hpp"
#include "platform/throttle.hpp"

namespace lotus::platform {

/// Observer of the device's time-advance loop. The InferenceEngine
/// registers one to receive kernel-tick deadlines and throttle flips for
/// *all* advanced time (work, idle, decision overhead, DVFS transitions).
///
/// Contract: on_event() fires whenever the clock reaches next_event_s()
/// (never later -- the advance loop splits its integration segment there);
/// after each call the listener must move next_event_s() strictly forward,
/// or the device throws std::logic_error. on_event() may re-enter
/// EdgeDevice::advance()/request_levels() (e.g. a governor tick changing
/// levels mid-slice); the nested time is charged on top of the in-flight
/// advance, exactly like a DVFS stall on hardware extends the work around
/// it. on_throttle() fires after any throttle poll that leaves a domain
/// engaged.
class AdvanceListener {
public:
    virtual ~AdvanceListener() = default;
    /// Next absolute simulated time [s] at which the listener needs control
    /// (e.g. a kernel-governor tick deadline); +infinity when it does not.
    [[nodiscard]] virtual double next_event_s() const { return kNoEvent; }
    /// The clock reached next_event_s(); utils are those of the advancing
    /// work at that instant.
    virtual void on_event(double now_s, double cpu_util, double gpu_util) {
        (void)now_s;
        (void)cpu_util;
        (void)gpu_util;
    }
    /// A throttle poll just ran and at least one domain is engaged.
    virtual void on_throttle(double now_s, bool cpu_engaged, bool gpu_engaged) {
        (void)now_s;
        (void)cpu_engaged;
        (void)gpu_engaged;
    }

    static constexpr double kNoEvent = 1e300;
};

/// Integration scheme used between events of the advance loop.
enum class ThermalStepping {
    /// Exact exponential solution of the RC network per segment (adaptive
    /// event-driven stepping; segment length bounded by thermal_accuracy_k).
    closed_form,
    /// Legacy fixed 20 ms sub-slicing with Euler sub-steps of
    /// ThermalParams::max_dt; kept as the reference integrator.
    euler_slice,
};

/// One DVFS domain: its OPP ladder, power parameters and compute
/// characteristics used by the detector latency model.
struct DomainSpec {
    OppTable opp;
    PowerParams power;
    /// Effective ops per cycle: throughput at frequency f is f * ops_per_cycle
    /// (ops in the abstract work units used by lotus::detector).
    double ops_per_cycle = 1.0;
};

struct DeviceSpec {
    std::string name;
    DomainSpec cpu;
    DomainSpec gpu;
    ThermalParams thermal;
    ThrottleParams cpu_throttle;
    ThrottleParams gpu_throttle;
    /// Memory bandwidth seen by the accelerators [bytes/s]; the memory-bound
    /// part of a kernel does not speed up with core frequency.
    double mem_bandwidth = 50e9;
    /// Latency of one frequency-scaling syscall pair [s] (paper: "dozens of
    /// microseconds").
    double dvfs_latency_s = 50e-6;
    double initial_ambient_celsius = 25.0;
    /// Thermal integration scheme between advance-loop events.
    ThermalStepping thermal_stepping = ThermalStepping::closed_form;
    /// Closed-form stepping only: maximum temperature drift allowed per
    /// frozen-power segment [K]. Bounds the error of holding the
    /// (temperature-dependent) leakage power constant within a segment.
    double thermal_accuracy_k = 0.25;
};

struct PowerSample {
    double cpu_w = 0.0;
    double gpu_w = 0.0;
    [[nodiscard]] double total() const noexcept { return cpu_w + gpu_w; }
};

class EdgeDevice {
public:
    explicit EdgeDevice(DeviceSpec spec);

    // --- DVFS -------------------------------------------------------------
    [[nodiscard]] std::size_t cpu_levels() const noexcept { return spec_.cpu.opp.num_levels(); }
    [[nodiscard]] std::size_t gpu_levels() const noexcept { return spec_.gpu.opp.num_levels(); }

    /// Request OPP levels; the granted level is min(request, throttle cap).
    /// Advances the clock by the DVFS transition latency when the request
    /// changes anything.
    void request_levels(std::size_t cpu_level, std::size_t gpu_level);
    void request_cpu_level(std::size_t level);
    void request_gpu_level(std::size_t level);

    [[nodiscard]] std::size_t requested_cpu_level() const noexcept { return req_cpu_; }
    [[nodiscard]] std::size_t requested_gpu_level() const noexcept { return req_gpu_; }
    /// Granted (throttle-clamped) levels.
    [[nodiscard]] std::size_t cpu_level() const noexcept;
    [[nodiscard]] std::size_t gpu_level() const noexcept;
    [[nodiscard]] double cpu_freq() const noexcept;
    [[nodiscard]] double gpu_freq() const noexcept;

    /// Effective compute throughput [ops/s] at the granted levels.
    [[nodiscard]] double cpu_throughput() const noexcept;
    [[nodiscard]] double gpu_throughput() const noexcept;
    [[nodiscard]] double mem_bandwidth() const noexcept { return spec_.mem_bandwidth; }

    // --- time / physics ----------------------------------------------------
    /// Advance simulated time by dt seconds with the given domain
    /// utilizations: integrates the thermal network between events, polls
    /// the throttlers at their exact instants, accumulates energy and
    /// notifies the registered AdvanceListener. The ONLY place the clock
    /// moves. Listener events may nest further advances (DVFS stalls); the
    /// nested time is in addition to dt.
    void advance(double dt, double cpu_util, double gpu_util);

    /// Like advance(), but returns as soon as a segment ends with different
    /// granted levels than it started with (throttle clamp or a listener
    /// event changing the request). Returns the time actually advanced
    /// (nested listener-triggered advances excluded), which is <= dt.
    /// Callers integrating work at a sampled throughput stay exact: the
    /// throughput is constant over the returned interval by construction.
    [[nodiscard]] double advance_work(double dt, double cpu_util, double gpu_util);

    /// Register the advance-loop observer (nullptr to clear). One listener
    /// at a time; the runtime's InferenceEngine owns it in practice.
    void set_advance_listener(AdvanceListener* listener) noexcept { listener_ = listener; }
    [[nodiscard]] AdvanceListener* advance_listener() const noexcept { return listener_; }

    [[nodiscard]] double now() const noexcept { return now_; }

    /// Thermal integration steps taken since construction/reset() (the
    /// denominator of bench_overhead's stepper comparison).
    [[nodiscard]] std::uint64_t thermal_steps() const noexcept { return thermal_.steps(); }

    // --- observability -----------------------------------------------------
    [[nodiscard]] double cpu_temp() const noexcept {
        return thermal_.temperature(ThermalNode::cpu);
    }
    [[nodiscard]] double gpu_temp() const noexcept {
        return thermal_.temperature(ThermalNode::gpu);
    }
    [[nodiscard]] double board_temp() const noexcept {
        return thermal_.temperature(ThermalNode::board);
    }
    [[nodiscard]] bool cpu_throttled() const noexcept { return cpu_throttle_.engaged(); }
    [[nodiscard]] bool gpu_throttled() const noexcept { return gpu_throttle_.engaged(); }
    [[nodiscard]] bool throttled() const noexcept { return cpu_throttled() || gpu_throttled(); }
    [[nodiscard]] PowerSample last_power() const noexcept { return last_power_; }
    [[nodiscard]] double energy_joules() const noexcept { return energy_j_; }

    // --- environment --------------------------------------------------------
    void set_ambient(double celsius) noexcept { ambient_ = celsius; }
    [[nodiscard]] double ambient() const noexcept { return ambient_; }

    /// Reset temperatures (to ambient), throttlers, clock and energy; keeps
    /// the requested levels.
    void reset();

    [[nodiscard]] const DeviceSpec& spec() const noexcept { return spec_; }

    /// Register the kernel-like sysfs nodes for this device on `fs`.
    void mount_sysfs(SysfsFs& fs);

    // --- telemetry ----------------------------------------------------------
    /// Process name this device reports its telemetry under. Defaults to
    /// the spec name; the fleet engine overrides it with the slot id so
    /// identical twins stay distinguishable in a trace.
    void set_telemetry_label(std::string label) {
        tel_label_ = std::move(label);
        tel_track_ = -1;
    }
    [[nodiscard]] const std::string& telemetry_label() const noexcept { return tel_label_; }

private:
    /// Shared event-driven advance loop behind advance()/advance_work().
    double advance_segmented(double dt, double cpu_util, double gpu_util,
                             bool stop_on_level_change);
    /// Deliver every listener event whose deadline is already due.
    void fire_due_events(double cpu_util, double gpu_util);
    /// Emit platform telemetry for the segment that just ended: OPP-change
    /// and throttle trip/clear instants, plus the periodic temperature /
    /// frequency / power samples. No-op when no recorder is bound.
    void publish_telemetry();

    DeviceSpec spec_;
    PowerModel cpu_power_;
    PowerModel gpu_power_;
    ThermalNetwork thermal_;
    ThermalThrottler cpu_throttle_;
    ThermalThrottler gpu_throttle_;
    AdvanceListener* listener_ = nullptr;

    std::size_t req_cpu_;
    std::size_t req_gpu_;
    double now_ = 0.0;
    double ambient_;
    double energy_j_ = 0.0;
    PowerSample last_power_;

    // Telemetry state: cached track + last-published granted levels /
    // throttle engagements (change detection) + next sample deadline.
    std::string tel_label_;
    const void* tel_recorder_ = nullptr; // identity of the recorder tel_track_ is valid for
    int tel_track_ = -1;
    double tel_next_sample_ = 0.0;
    std::size_t tel_cpu_level_ = 0;
    std::size_t tel_gpu_level_ = 0;
    bool tel_cpu_engaged_ = false;
    bool tel_gpu_engaged_ = false;
    // Rollup span state: sim time / energy already folded into the windowed
    // rollups, and the OPP/throttle state that held since then.
    double tel_rollup_t_ = 0.0;
    double tel_rollup_energy_j_ = 0.0;
    std::size_t tel_rollup_level_ = 0;
    bool tel_rollup_throttled_ = false;
};

} // namespace lotus::platform
