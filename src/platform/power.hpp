#pragma once
// Per-domain power model.
//
//   P(f, V, u, T) = u_eff * C_eff * f * V^2  +  P_leak0 * V * exp(kT (T - T0))
//
// The dynamic term is the classic alpha-C-f-V^2 switching power with
// utilization u_eff = idle_fraction + (1 - idle_fraction) * u (a loaded
// domain never drops to exactly zero switching activity). The leakage term
// grows exponentially with temperature, which is what makes sustained
// high-frequency operation thermally unstable on passively cooled edge
// devices -- the effect LOTUS and zTT must learn to avoid.

namespace lotus::platform {

struct PowerParams {
    /// Effective switched capacitance [W / (Hz * V^2)].
    double c_eff = 0.0;
    /// Leakage at V = 1 V and T = t0_celsius [W / V].
    double leak0_w_per_v = 0.0;
    /// Exponential leakage temperature coefficient [1/K].
    double leak_temp_coeff = 0.02;
    /// Reference temperature for leak0 [deg C].
    double t0_celsius = 25.0;
    /// Fraction of dynamic power drawn when idle (clock/uncore activity).
    double idle_fraction = 0.05;
};

class PowerModel {
public:
    explicit PowerModel(PowerParams params);

    /// Dynamic switching power at frequency f [Hz], voltage V, utilization
    /// u in [0, 1].
    [[nodiscard]] double dynamic_power(double f, double v, double u) const noexcept;

    /// Temperature-dependent leakage at voltage V and temperature T [deg C].
    [[nodiscard]] double leakage(double v, double t_celsius) const noexcept;

    /// Total domain power.
    [[nodiscard]] double total(double f, double v, double u, double t_celsius) const noexcept;

    [[nodiscard]] const PowerParams& params() const noexcept { return params_; }

private:
    PowerParams params_;
};

} // namespace lotus::platform
