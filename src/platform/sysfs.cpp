#include "platform/sysfs.hpp"

#include <stdexcept>

namespace lotus::platform {

void SysfsFs::add_file(const std::string& path, ReadFn read) {
    add_file(path, std::move(read), WriteFn{});
}

void SysfsFs::add_file(const std::string& path, ReadFn read, WriteFn write) {
    if (path.empty() || path.front() != '/') {
        throw std::invalid_argument("SysfsFs: path must be absolute: " + path);
    }
    if (!read) throw std::invalid_argument("SysfsFs: read handler required");
    const auto [it, inserted] = nodes_.emplace(path, Node{std::move(read), std::move(write)});
    if (!inserted) throw std::invalid_argument("SysfsFs: duplicate path: " + path);
}

bool SysfsFs::exists(const std::string& path) const noexcept {
    return nodes_.contains(path);
}

std::string SysfsFs::read(const std::string& path) const {
    const auto it = nodes_.find(path);
    if (it == nodes_.end()) throw std::out_of_range("SysfsFs: no such file: " + path);
    return it->second.read();
}

long long SysfsFs::read_ll(const std::string& path) const {
    return std::stoll(read(path));
}

void SysfsFs::write(const std::string& path, const std::string& value) {
    const auto it = nodes_.find(path);
    if (it == nodes_.end()) throw std::out_of_range("SysfsFs: no such file: " + path);
    if (!it->second.write) {
        throw std::runtime_error("SysfsFs: permission denied (read-only): " + path);
    }
    it->second.write(value);
}

std::vector<std::string> SysfsFs::list(const std::string& prefix) const {
    std::vector<std::string> out;
    out.reserve(nodes_.size());
    for (const auto& [path, node] : nodes_) {
        if (path.compare(0, prefix.size(), prefix) == 0) out.push_back(path);
    }
    return out;
}

} // namespace lotus::platform
