#pragma once
// Virtual sysfs tree.
//
// The paper collects every observation "directly through the sysfs in the
// Linux kernel and Android kernel" (Sec. 4.4). To keep the governors in this
// reproduction faithful to how they would be written against real hardware,
// the simulated device exposes the same interface: a string-keyed file tree
// with read/write handlers backed by simulator state. Governors address
// paths such as
//   /sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq      (kHz)
//   /sys/class/devfreq/gpu/cur_freq                            (Hz)
//   /sys/class/thermal/thermal_zone0/temp                      (milli-degC)
// exactly like their kernel counterparts.

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace lotus::platform {

class SysfsFs {
public:
    using ReadFn = std::function<std::string()>;
    using WriteFn = std::function<void(const std::string&)>;

    /// Register a read-only file. Throws if the path already exists.
    void add_file(const std::string& path, ReadFn read);

    /// Register a read-write file.
    void add_file(const std::string& path, ReadFn read, WriteFn write);

    [[nodiscard]] bool exists(const std::string& path) const noexcept;

    /// Read the file contents; throws std::out_of_range for missing paths.
    [[nodiscard]] std::string read(const std::string& path) const;

    /// Read and parse as a long integer (sysfs files are line-oriented).
    [[nodiscard]] long long read_ll(const std::string& path) const;

    /// Write; throws std::out_of_range for missing paths and
    /// std::runtime_error (EACCES-equivalent) for read-only files.
    void write(const std::string& path, const std::string& value);

    /// All registered paths under the given prefix (sorted), like `ls -R`.
    [[nodiscard]] std::vector<std::string> list(const std::string& prefix = "/") const;

private:
    struct Node {
        ReadFn read;
        WriteFn write; // empty -> read-only
    };
    std::map<std::string, Node> nodes_;
};

} // namespace lotus::platform
