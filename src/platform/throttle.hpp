#pragma once
// Thermal throttling, Jetson/Android style.
//
// When a die temperature reaches its trip point, the platform's thermal
// management clamps the domain to a *low* frequency level immediately -- the
// paper's motivation states it plainly: "if the device temperature goes
// above a threshold, thermal throttling will be activated to decrease the
// frequency to a very low level" (Sec. 1). The clamp holds until the zone
// cools below (trip - hysteresis); the cap is then released one OPP level
// per polling interval. The resulting deep trip/recover limit cycle under a
// naive governor is the large latency oscillation of Figs. 4-6 ("default"),
// and avoiding it entirely is what the learning governors are rewarded for.

#include <cstddef>

namespace lotus::platform {

struct ThrottleParams {
    /// Trip temperature [deg C] at which the hard clamp engages.
    double trip_celsius = 85.0;
    /// The zone must cool this far below the trip before the clamp releases.
    double hysteresis_k = 8.0;
    /// Polling interval of the thermal governor [s].
    double poll_interval_s = 0.1;
    /// OPP level the domain is clamped to while hot.
    std::size_t clamp_level = 1;
    /// Number of OPP levels in the domain this throttler caps.
    std::size_t num_levels = 1;
};

/// Per-domain throttler; `update` is called with the simulation time and the
/// current zone temperature and returns the (possibly changed) level cap.
class ThermalThrottler {
public:
    explicit ThermalThrottler(ThrottleParams params);

    /// Advance to time `now` [s]. At each elapsed polling interval: clamp
    /// hard if at/above trip, hold inside the hysteresis band, release one
    /// level per interval below it.
    std::size_t update(double now, double temp_celsius);

    /// Highest OPP level currently allowed.
    [[nodiscard]] std::size_t cap() const noexcept { return cap_; }

    /// Absolute time of the next polling decision [s]; the device's
    /// event-driven advance loop splits its integration segments here so
    /// that the temperature each poll reads is evaluated at the exact poll
    /// instant.
    [[nodiscard]] double next_poll_s() const noexcept {
        return last_poll_ + params_.poll_interval_s;
    }

    /// True while the cap is below the top level.
    [[nodiscard]] bool engaged() const noexcept { return cap_ + 1 < params_.num_levels; }

    /// Number of distinct trip events so far.
    [[nodiscard]] std::size_t trip_events() const noexcept { return trips_; }

    void reset();

    [[nodiscard]] const ThrottleParams& params() const noexcept { return params_; }

private:
    ThrottleParams params_;
    std::size_t cap_;
    double last_poll_ = 0.0;
    std::size_t trips_ = 0;
    bool hot_ = false;
};

} // namespace lotus::platform
