#pragma once
// ServingEngine: multiplexes N request streams onto one simulated device.
//
// The serving analogue of runtime::ExperimentRunner. One run materialises
// every stream's arrival times and frame samples up front (pure functions of
// the config seed), then replays the merged request timeline against a
// single EdgeDevice + InferenceEngine under the chosen scheduling policy:
//
//  * the device is the shared resource -- thermal state carries across
//    interleaved streams, so a burst on stream 3 heats the silicon that
//    stream 0's next frame runs on;
//  * queue wait counts against each request's deadline: the governor's
//    observations and reward see *end-to-end* (queue + inference) latency,
//    so a learning governor experiences queueing pressure as deadline
//    pressure (InferenceEngine::run_frame's queue_wait_s plumbing);
//  * idle gaps are simulated, not skipped -- they are when the device cools
//    and timer-driven governors keep ticking;
//  * shed requests (admission control) count as SLO violations.
//
// run() is const and reentrant: every call builds its own device, engine,
// streams and scheduler, so harness episodes execute from concurrent
// threads, one governor per thread, byte-identically to a serial run.

#include "governors/governor.hpp"
#include "serving/request.hpp"
#include "serving/trace.hpp"

namespace lotus::serving {

/// Materialise the merged, arrival-ordered request timeline of a stream set:
/// per-stream arrival times and frame samples are pure functions of
/// (seed, instance, stream name, stream index), then the per-stream
/// timelines merge with deterministic tie-breaks and ids in global arrival
/// order. `instance` namespaces the seed derivation (see
/// ServingConfig::instance); "" reproduces the historical derivation.
[[nodiscard]] std::vector<Request> build_request_timeline(
    const std::vector<StreamSpec>& streams, std::uint64_t seed,
    const std::string& instance = "");

/// The derive_seed inputs build_request_timeline uses for stream `index`'s
/// arrival process / frame stream. Exported so trace synthesis
/// (trace::synth_trace) can reproduce a timeline stream-by-stream without
/// materialising it.
[[nodiscard]] std::uint64_t arrival_stream_seed(std::uint64_t seed,
                                                const std::string& instance,
                                                const std::string& stream_name,
                                                std::size_t index);
[[nodiscard]] std::uint64_t frame_stream_seed(std::uint64_t seed,
                                              const std::string& instance,
                                              const std::string& stream_name,
                                              std::size_t index);

class ServingEngine {
public:
    /// Validates the config (throws std::invalid_argument on empty streams,
    /// non-positive SLOs/rates, unknown datasets or schedulers).
    explicit ServingEngine(ServingConfig config);

    /// Serve every stream's requests to completion under the governor.
    [[nodiscard]] ServingTrace run(governors::Governor& governor) const;

    /// The merged, arrival-ordered request timeline this config generates
    /// (exposed for tests and load inspection).
    [[nodiscard]] std::vector<Request> build_requests() const;

    [[nodiscard]] const ServingConfig& config() const noexcept { return config_; }

private:
    ServingConfig config_;
};

} // namespace lotus::serving
