#pragma once
// Scheduling policies for the serving runtime.
//
// A Scheduler decides, each time the device becomes free, which pending
// request executes next -- and, for admission-controlled policies, which
// pending requests to shed because their deadline is already unreachable
// (a shed request counts as an SLO violation, but stops poisoning the queue
// behind it; under saturation that is the difference between bounded and
// unbounded tail latency).
//
// Every policy is deterministic: ties break on (deadline, arrival, id) so a
// run replays identically at any --jobs count. Three built-ins:
//
//  * fifo      -- arrival order; the baseline every queueing text starts at.
//  * edf       -- earliest absolute deadline first; optimal for feasible
//                 workloads, degrades badly past saturation (every request
//                 gets a little service too late).
//  * edf_admit -- EDF plus admission control: shed any request whose
//                 deadline cannot be met even if it started right now
//                 (now + expected service > deadline).

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "serving/queue.hpp"

namespace lotus::serving {

/// Outcome of one scheduling step.
struct ScheduleDecision {
    /// The request to execute now; absent when the queue is (or became) empty.
    std::optional<Request> next;
    /// Requests dropped by admission control at this step.
    std::vector<Request> shed;
};

class Scheduler {
public:
    virtual ~Scheduler() = default;

    [[nodiscard]] virtual std::string name() const = 0;

    /// Choose the next request at simulated time `now_s`.
    /// `expected_service_s` is the runtime's current service-time estimate
    /// (EWMA of recent execution latencies; 0 before the first completion).
    [[nodiscard]] virtual ScheduleDecision pick(RequestQueue& queue, double now_s,
                                                double expected_service_s) = 0;
};

class FifoScheduler final : public Scheduler {
public:
    [[nodiscard]] std::string name() const override { return "fifo"; }
    [[nodiscard]] ScheduleDecision pick(RequestQueue& queue, double now_s,
                                        double expected_service_s) override;
};

class EdfScheduler final : public Scheduler {
public:
    [[nodiscard]] std::string name() const override { return "edf"; }
    [[nodiscard]] ScheduleDecision pick(RequestQueue& queue, double now_s,
                                        double expected_service_s) override;
};

class EdfAdmitScheduler final : public Scheduler {
public:
    [[nodiscard]] std::string name() const override { return "edf_admit"; }
    [[nodiscard]] ScheduleDecision pick(RequestQueue& queue, double now_s,
                                        double expected_service_s) override;
};

/// Factory over the built-in policies: "fifo" | "edf" | "edf_admit" (also
/// accepts "edf-admit"). Throws std::invalid_argument on anything else.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(const std::string& name);

/// Canonical policy names, for CLI help and validation messages.
[[nodiscard]] const std::vector<std::string>& scheduler_names();

} // namespace lotus::serving
