#include "serving/queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace lotus::serving {

void RequestQueue::push(Request request) {
    pending_.push_back(std::move(request));
    max_depth_ = std::max(max_depth_, pending_.size());
}

Request RequestQueue::take(std::size_t index) {
    if (index >= pending_.size()) {
        throw std::out_of_range("RequestQueue::take: index out of range");
    }
    Request out = std::move(pending_[index]);
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(index));
    return out;
}

} // namespace lotus::serving
