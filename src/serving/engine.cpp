#include "serving/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "prof/profiler.hpp"
#include "runtime/engine.hpp"
#include "serving/scheduler.hpp"
#include "telemetry/recorder.hpp"
#include "trace/record.hpp"
#include "util/rng.hpp"

namespace lotus::serving {

namespace {

/// EWMA weight of the newest service-time sample in the scheduler's
/// expected-service estimate.
constexpr double kServiceEwma = 0.3;

/// Tolerance when comparing simulated clock against arrival times: the idle
/// integrator sums slices, so the clock can land a few ulps short of the
/// arrival it targeted. Guarantees the event loop always makes progress.
constexpr double kTimeEps = 1e-9;

/// Prefix a derive_seed stream id with the engine instance namespace; the
/// empty instance maps to the bare id so historical seeds are preserved.
std::string seed_id(const std::string& instance, const std::string& what) {
    return instance.empty() ? what : instance + "/" + what;
}

} // namespace

ServingEngine::ServingEngine(ServingConfig config) : config_(std::move(config)) {
    if (config_.streams.empty()) {
        throw std::invalid_argument("ServingEngine: no streams configured");
    }
    for (const auto& s : config_.streams) {
        if (s.requests == 0) {
            throw std::invalid_argument("ServingEngine: stream '" + s.name +
                                        "' emits zero requests");
        }
        if (s.slo_s <= 0.0) {
            throw std::invalid_argument("ServingEngine: stream '" + s.name +
                                        "' has a non-positive SLO");
        }
        (void)workload::dataset_by_name(s.dataset); // throws on unknown dataset
    }
    (void)make_scheduler(config_.scheduler); // throws on unknown policy
}

std::uint64_t arrival_stream_seed(std::uint64_t seed, const std::string& instance,
                                  const std::string& stream_name, std::size_t index) {
    return util::derive_seed(seed, seed_id(instance, "arrivals/" + stream_name), index);
}

std::uint64_t frame_stream_seed(std::uint64_t seed, const std::string& instance,
                                const std::string& stream_name, std::size_t index) {
    return util::derive_seed(seed, seed_id(instance, "frames/" + stream_name), index);
}

std::vector<Request> build_request_timeline(const std::vector<StreamSpec>& streams,
                                            std::uint64_t seed,
                                            const std::string& instance) {
    std::vector<Request> all;
    std::size_t total = 0;
    for (const auto& stream : streams) total += stream.requests;
    all.reserve(total);
    for (std::size_t s = 0; s < streams.size(); ++s) {
        const auto& stream = streams[s];
        const auto arrivals = generate_arrivals(
            stream.arrival, stream.requests,
            arrival_stream_seed(seed, instance, stream.name, s));
        workload::FrameStream frames(
            workload::dataset_by_name(stream.dataset),
            frame_stream_seed(seed, instance, stream.name, s));
        for (std::size_t k = 0; k < stream.requests; ++k) {
            Request r;
            r.stream = s;
            r.arrival_s = arrivals[k];
            r.slo_s = stream.slo_s;
            r.frame = frames.next();
            all.push_back(std::move(r));
        }
    }
    // Merge the per-stream timelines; ids are global arrival order so every
    // scheduler tie-break is a pure function of the timeline.
    std::sort(all.begin(), all.end(), [](const Request& a, const Request& b) {
        if (a.arrival_s != b.arrival_s) return a.arrival_s < b.arrival_s;
        if (a.stream != b.stream) return a.stream < b.stream;
        return a.frame.index < b.frame.index;
    });
    for (std::size_t i = 0; i < all.size(); ++i) all[i].id = i;
    trace::maybe_record(streams, all);
    return all;
}

std::vector<Request> ServingEngine::build_requests() const {
    if (!config_.replay_trace.empty()) {
        return trace::load_requests(config_.replay_trace, config_.streams);
    }
    return build_request_timeline(config_.streams, config_.seed, config_.instance);
}

ServingTrace ServingEngine::run(governors::Governor& governor) const {
    LOTUS_PROF_SCOPE("serving.run");
    platform::EdgeDevice device(config_.device_spec);
    device.set_ambient(config_.ambient_celsius);
    runtime::InferenceEngine engine(device, config_.engine);
    const auto model = detector::make_detector(config_.detector);
    auto scheduler = make_scheduler(config_.scheduler);

    // --- pre-training phase (not recorded; mirrors ExperimentRunner) --------
    if (config_.pretrain_iterations > 0) {
        // Pretrain advances the clock and then rewinds it via reset();
        // recording it would break the trace's monotonic timeline.
        telemetry::SuspendScope no_telemetry;
        const auto& warm = config_.streams.front();
        const double constraint = config_.pretrain_constraint_s > 0.0
                                      ? config_.pretrain_constraint_s
                                      : warm.slo_s;
        workload::FrameStream stream(
            workload::dataset_by_name(warm.dataset),
            util::derive_seed(config_.seed,
                              seed_id(config_.instance, "pretrain/" + warm.dataset), 0));
        for (std::size_t i = 0; i < config_.pretrain_iterations; ++i) {
            engine.run_frame(model, stream.next(), governor, constraint, i);
        }
        device.reset();
        engine.reset();
    }

    const auto requests = build_requests();
    std::vector<std::string> names;
    names.reserve(config_.streams.size());
    for (const auto& s : config_.streams) names.push_back(s.name);

    ServingTrace trace(std::move(names), config_.capture_rows);
    trace.reserve(requests.size());
    RequestQueue queue;
    std::size_t next_arrival = 0;
    std::size_t iteration = 0;
    double expected_service = 0.0;

    // Request-lifecycle spans: one async span per request on its stream's
    // track ("streams" pseudo-process), breaches recorded against the
    // device so the flight recorder snapshots what the device was doing.
    auto* tel = telemetry::current();
    auto* rollup = tel ? tel->rollup() : nullptr;
    int tel_dev = -1;
    int tel_queue = -1;
    std::vector<int> tel_streams;
    std::size_t tel_last_depth = static_cast<std::size_t>(-1);
    if (tel) {
        tel->set_context(device.telemetry_label());
        tel_dev = tel->track(device.telemetry_label(), "platform");
        tel_queue = tel->track(device.telemetry_label(), "queue");
        tel_streams.reserve(config_.streams.size());
        for (const auto& s : config_.streams) {
            tel_streams.push_back(tel->track("streams", s.name));
        }
    }
    const auto tel_queue_depth = [&](double t) {
        if (!tel || queue.size() == tel_last_depth) return;
        tel_last_depth = queue.size();
        tel->counter(tel_queue, "queue_depth", t, static_cast<double>(queue.size()));
    };

    const auto record_shed = [&](Request&& r, double now) {
        if (rollup) {
            rollup->record_request(device.telemetry_label(),
                                   config_.streams[r.stream].name, now,
                                   telemetry::Rollup::Outcome::shed, 0.0,
                                   std::max(0.0, now - r.arrival_s) * 1e3);
        }
        if (tel) {
            tel->async_end(tel_streams[r.stream], "request", r.id, now,
                           "\"outcome\":\"shed\",\"queued_ms\":" +
                               telemetry::jnum(std::max(0.0, now - r.arrival_s) * 1e3));
            tel->breach(tel_dev, "shed", r.id, now,
                        "\"stream\":" + telemetry::jstr(config_.streams[r.stream].name) +
                            ",\"slo_ms\":" + telemetry::jnum(r.slo_s * 1e3));
        }
        ServingRecord row;
        row.request_id = r.id;
        row.stream = r.stream;
        row.arrival_s = r.arrival_s;
        row.start_s = now;
        row.queue_wait_s = std::max(0.0, now - r.arrival_s);
        row.e2e_s = row.queue_wait_s;
        row.slo_s = r.slo_s;
        row.shed = true;
        row.missed = true;
        row.proposals = r.frame.proposals;
        row.cpu_temp = device.cpu_temp();
        row.gpu_temp = device.gpu_temp();
        trace.add(std::move(row));
    };

    while (next_arrival < requests.size() || !queue.empty()) {
        const double now = device.now();
        while (next_arrival < requests.size() &&
               requests[next_arrival].arrival_s <= now + kTimeEps) {
            const Request& r = requests[next_arrival];
            if (tel) {
                // Span opens at the true arrival instant (possibly a hair
                // before `now`); exporters order by timestamp, not append
                // order, so the trace stays monotonic.
                tel->async_begin(tel_streams[r.stream], "request", r.id, r.arrival_s,
                                 "\"slo_ms\":" + telemetry::jnum(r.slo_s * 1e3));
            }
            queue.push(requests[next_arrival++]);
        }
        tel_queue_depth(now);
        if (queue.empty()) {
            // Device is free but no request is pending: idle (and cool)
            // until the next arrival.
            engine.run_idle(std::max(requests[next_arrival].arrival_s - now, kTimeEps),
                            governor);
            continue;
        }

        auto decision = scheduler->pick(queue, now, expected_service);
        for (auto& r : decision.shed) record_shed(std::move(r), now);
        tel_queue_depth(now);
        if (!decision.next) continue;
        LOTUS_PROF_SCOPE("serving.dispatch");
        LOTUS_PROF_COUNT("serving.requests", 1);

        Request req = std::move(*decision.next);
        // Admission tolerates kTimeEps of clock shortfall; never report a
        // negative wait for a request taken the instant it arrived.
        const double wait = std::max(0.0, now - req.arrival_s);
        if (tel) {
            tel->instant(tel_queue, "dispatch", now,
                         "\"request_id\":" + std::to_string(req.id) +
                             ",\"stream\":" +
                             telemetry::jstr(config_.streams[req.stream].name) +
                             ",\"queue_wait_ms\":" + telemetry::jnum(wait * 1e3));
        }
        const auto result =
            engine.run_frame(model, req.frame, governor, req.slo_s, iteration++, wait);

        ServingRecord row;
        row.request_id = req.id;
        row.stream = req.stream;
        row.arrival_s = req.arrival_s;
        row.start_s = result.start_time_s;
        row.queue_wait_s = wait;
        row.service_s = result.latency_s;
        row.e2e_s = result.e2e_latency_s();
        row.slo_s = req.slo_s;
        row.missed = !slo_satisfied(row.e2e_s, req.slo_s);
        row.throttled = result.throttled;
        row.proposals = result.proposals_used;
        row.cpu_temp = result.cpu_temp;
        row.gpu_temp = result.gpu_temp;
        row.energy_j = result.energy_j;
        if (rollup) {
            rollup->record_request(device.telemetry_label(),
                                   config_.streams[req.stream].name, device.now(),
                                   row.missed ? telemetry::Rollup::Outcome::late
                                              : telemetry::Rollup::Outcome::ok,
                                   row.e2e_s * 1e3, wait * 1e3);
        }
        if (tel) {
            const double done = device.now();
            tel->async_end(tel_streams[req.stream], "request", req.id, done,
                           std::string("\"outcome\":\"") +
                               (row.missed ? "missed" : "served") +
                               "\",\"e2e_ms\":" + telemetry::jnum(row.e2e_s * 1e3));
            if (row.missed) {
                tel->breach(tel_dev, "slo_miss", req.id, done,
                            "\"stream\":" +
                                telemetry::jstr(config_.streams[req.stream].name) +
                                ",\"e2e_ms\":" + telemetry::jnum(row.e2e_s * 1e3) +
                                ",\"slo_ms\":" + telemetry::jnum(req.slo_s * 1e3));
            }
        }
        trace.add(std::move(row));

        expected_service = expected_service <= 0.0
                               ? result.latency_s
                               : (1.0 - kServiceEwma) * expected_service +
                                     kServiceEwma * result.latency_s;
    }

    trace.set_makespan(device.now());
    trace.set_total_energy(device.energy_joules());
    trace.set_max_queue_depth(queue.max_depth());
    trace.set_thermal_steps(device.thermal_steps());
    return trace;
}

} // namespace lotus::serving
