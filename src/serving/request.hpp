#pragma once
// Request model for the multi-stream serving runtime.
//
// A Request is one frame submitted by one client stream: it arrives at a
// point in simulated time, carries the stream's latency SLO as a relative
// deadline, and waits in a RequestQueue until the scheduler dispatches it to
// the (single, shared) device. Everything the serving layer accounts --
// queue wait, shedding, deadline misses -- hangs off this struct.
//
// A StreamSpec describes one client stream: which dataset its frames come
// from (workload intensity), its SLO, how many requests it emits and the
// arrival process that times them. ServingConfig bundles N streams with the
// device, detector and scheduler -- the serving analogue of
// runtime::ExperimentConfig.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "detector/model.hpp"
#include "platform/device.hpp"
#include "runtime/engine.hpp"
#include "serving/arrivals.hpp"
#include "workload/dataset.hpp"

namespace lotus::serving {

/// One in-flight inference request.
struct Request {
    /// Global sequence number in arrival order (ties broken by stream index).
    std::size_t id = 0;
    /// Index into ServingConfig::streams.
    std::size_t stream = 0;
    double arrival_s = 0.0;
    /// Relative deadline (the stream's SLO).
    double slo_s = 0.0;
    workload::FrameSample frame;

    [[nodiscard]] double deadline_s() const noexcept { return arrival_s + slo_s; }
};

/// One client stream feeding the serving runtime.
struct StreamSpec {
    std::string name;
    std::string dataset = "KITTI";
    /// End-to-end latency SLO (relative deadline) per request [s].
    double slo_s = 0.5;
    /// Number of requests this stream emits over the run.
    std::size_t requests = 100;
    ArrivalSpec arrival;
};

/// The full serving experiment: N streams multiplexed onto one device.
/// (Constructed from its DeviceSpec because DeviceSpec has no empty state.)
struct ServingConfig {
    explicit ServingConfig(platform::DeviceSpec spec) : device_spec(std::move(spec)) {}

    platform::DeviceSpec device_spec;
    detector::DetectorKind detector = detector::DetectorKind::faster_rcnn;
    runtime::EngineConfig engine{};
    std::vector<StreamSpec> streams;
    /// Scheduling policy: "fifo", "edf" or "edf_admit" (see make_scheduler).
    std::string scheduler = "edf";
    /// Unrecorded warm-up frames for learning governors (stream 0's
    /// dataset); the device cold-restarts afterwards, the agent keeps its
    /// learned weights -- mirrors runtime::ExperimentRunner.
    std::size_t pretrain_iterations = 0;
    /// Latency constraint used during pre-training [s]; 0 means stream 0's
    /// SLO. Serving SLOs include queueing headroom, so pre-training against
    /// them teaches a learning governor to dawdle; scenarios set the
    /// device-calibrated per-frame constraint instead, which is the service
    /// pace a saturated queue actually needs.
    double pretrain_constraint_s = 0.0;
    std::uint64_t seed = 42;
    double ambient_celsius = 25.0;
    /// Seed namespace folded into every util::derive_seed call (arrivals,
    /// frames, pre-training). Two engine instances replaying the *same*
    /// stream configs must not draw identical randomness when they model
    /// different physical devices -- the fleet layer sets this to the device
    /// id. Empty (the single-device default) reproduces the historical seed
    /// derivation exactly.
    std::string instance;
    /// Materialise the per-request ledger. Turn off for the summary-only
    /// fast path (bit-identical summaries, no per-row storage) when no CSV
    /// dump or chart column extraction is needed.
    bool capture_rows = true;
    /// Path of a recorded .ltrc trace to replay instead of generating the
    /// timeline from the streams' arrival processes. The trace's stream
    /// table must match `streams` (name, dataset, SLO, request count);
    /// everything downstream of the timeline is then byte-identical to the
    /// generating run. Empty (default) generates analytically.
    std::string replay_trace;
};

} // namespace lotus::serving
