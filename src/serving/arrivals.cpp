#include "serving/arrivals.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lotus::serving {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Exponential inter-arrival with mean 1/rate.
double exp_gap(util::Rng& rng, double rate_hz) {
    // 1 - uniform() is in (0, 1], so the log is finite.
    return -std::log(1.0 - rng.uniform()) / rate_hz;
}

void validate(const ArrivalSpec& spec) {
    if (spec.rate_hz <= 0.0) {
        throw std::invalid_argument("generate_arrivals: rate_hz must be > 0");
    }
    if (spec.burst == 0) {
        throw std::invalid_argument("generate_arrivals: burst must be >= 1");
    }
    if (spec.burst_spread_s < 0.0 || spec.phase_s < 0.0) {
        throw std::invalid_argument("generate_arrivals: negative spacing/phase");
    }
    if (!(spec.diurnal_floor > 0.0) || spec.diurnal_floor > 1.0) {
        throw std::invalid_argument("generate_arrivals: diurnal_floor must be in (0, 1]");
    }
}

} // namespace

const char* to_string(ArrivalKind kind) noexcept {
    switch (kind) {
        case ArrivalKind::periodic: return "periodic";
        case ArrivalKind::poisson: return "poisson";
        case ArrivalKind::bursty: return "burst";
        case ArrivalKind::diurnal: return "diurnal";
        case ArrivalKind::attack: return "attack";
    }
    return "?";
}

ArrivalKind arrival_kind_from(const std::string& name) {
    if (name == "periodic") return ArrivalKind::periodic;
    if (name == "poisson") return ArrivalKind::poisson;
    if (name == "burst" || name == "bursty") return ArrivalKind::bursty;
    if (name == "diurnal") return ArrivalKind::diurnal;
    if (name == "attack") return ArrivalKind::attack;
    throw std::invalid_argument("unknown arrival process '" + name +
                                "' (periodic|poisson|burst|diurnal|attack)");
}

ArrivalGenerator::ArrivalGenerator(const ArrivalSpec& spec, std::size_t count,
                                   std::uint64_t seed)
    : spec_(spec), count_(count), rng_(seed) {
    validate(spec_);
    switch (spec_.kind) {
        case ArrivalKind::periodic:
            break;
        case ArrivalKind::poisson:
            t_ = spec_.phase_s;
            break;
        case ArrivalKind::bursty:
            // Volleys of `burst` requests `burst_spread_s` apart; volley
            // starts spaced so the mean rate stays rate_hz. +-25% jitter on
            // the inter-volley gap keeps volleys from phase-locking across
            // streams.
            volley_start_ = spec_.phase_s;
            spread_ = spec_.burst_spread_s;
            jitter_lo_ = 0.75;
            jitter_hi_ = 1.25;
            break;
        case ArrivalKind::diurnal:
            t_ = spec_.phase_s;
            span_ = static_cast<double>(count_) / spec_.rate_hz;
            break;
        case ArrivalKind::attack:
            // Adversarial duty cycle: a quiet phase long enough for the
            // device to shed heat and the queue to drain, then a dense
            // volley at 4x the volley tightness of `bursty`. Quiet length
            // jitters +-30% so the pattern cannot be learned as a fixed
            // period.
            spread_ = spec_.burst_spread_s * 0.25;
            jitter_lo_ = 0.7;
            jitter_hi_ = 1.3;
            volley_start_ = spec_.phase_s + static_cast<double>(spec_.burst) /
                                                spec_.rate_hz * rng_.uniform(0.7, 1.3);
            break;
    }
}

double ArrivalGenerator::next() {
    if (done()) {
        throw std::logic_error("ArrivalGenerator: next() past the last arrival");
    }
    double raw = 0.0;
    switch (spec_.kind) {
        case ArrivalKind::periodic:
            raw = spec_.phase_s + static_cast<double>(emitted_) / spec_.rate_hz;
            break;
        case ArrivalKind::poisson:
            t_ += exp_gap(rng_, spec_.rate_hz);
            raw = t_;
            break;
        case ArrivalKind::bursty:
        case ArrivalKind::attack: {
            const double cycle = static_cast<double>(spec_.burst) / spec_.rate_hz;
            if (volley_j_ == spec_.burst) {
                volley_start_ += cycle * rng_.uniform(jitter_lo_, jitter_hi_);
                volley_j_ = 0;
            }
            raw = volley_start_ + static_cast<double>(volley_j_) * spread_;
            ++volley_j_;
            break;
        }
        case ArrivalKind::diurnal: {
            // Non-homogeneous Poisson with a raised-cosine rate profile
            // over the run: trough -> peak -> trough, scaled so the mean
            // rate over the cycle is rate_hz. The cycle length is the
            // expected span of `count` requests; profile(t) lies in
            // [floor, 2 - floor], so the instantaneous rate never hits 0
            // and every gap stays finite even when the cycle is shorter
            // than one inter-arrival time.
            const double floor = spec_.diurnal_floor;
            const double s =
                0.5 * (1.0 - std::cos(2.0 * kPi * (t_ - spec_.phase_s) / span_));
            const double inst_rate = spec_.rate_hz * (floor + 2.0 * (1.0 - floor) * s);
            t_ += exp_gap(rng_, inst_rate);
            raw = t_;
            break;
        }
    }
    ++emitted_;
    // Volley processes can overlap adjacent volleys when the volley period
    // shrinks below the intra-volley span (rate >> 1/spread); clamping
    // keeps the contract that arrivals never step backwards. A no-op for
    // the inherently ascending processes.
    const double out = have_last_ ? std::max(raw, last_) : raw;
    last_ = out;
    have_last_ = true;
    return out;
}

std::vector<double> generate_arrivals(const ArrivalSpec& spec, std::size_t count,
                                      std::uint64_t seed) {
    ArrivalGenerator gen(spec, count, seed);
    std::vector<double> out;
    out.reserve(count);
    while (!gen.done()) out.push_back(gen.next());
    return out;
}

} // namespace lotus::serving
