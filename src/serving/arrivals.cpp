#include "serving/arrivals.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace lotus::serving {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Exponential inter-arrival with mean 1/rate.
double exp_gap(util::Rng& rng, double rate_hz) {
    // 1 - uniform() is in (0, 1], so the log is finite.
    return -std::log(1.0 - rng.uniform()) / rate_hz;
}

std::vector<double> periodic(const ArrivalSpec& spec, std::size_t count) {
    std::vector<double> out;
    out.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
        out.push_back(spec.phase_s + static_cast<double>(k) / spec.rate_hz);
    }
    return out;
}

std::vector<double> poisson(const ArrivalSpec& spec, std::size_t count, util::Rng& rng) {
    std::vector<double> out;
    out.reserve(count);
    double t = spec.phase_s;
    for (std::size_t k = 0; k < count; ++k) {
        t += exp_gap(rng, spec.rate_hz);
        out.push_back(t);
    }
    return out;
}

/// Volleys of `burst` requests `burst_spread_s` apart; volley starts spaced
/// so the mean rate stays rate_hz. +-25% jitter on the inter-volley gap
/// keeps volleys from phase-locking across streams.
std::vector<double> bursty(const ArrivalSpec& spec, std::size_t count, util::Rng& rng) {
    std::vector<double> out;
    out.reserve(count);
    const double volley_period = static_cast<double>(spec.burst) / spec.rate_hz;
    double volley_start = spec.phase_s;
    while (out.size() < count) {
        for (std::size_t j = 0; j < spec.burst && out.size() < count; ++j) {
            out.push_back(volley_start + static_cast<double>(j) * spec.burst_spread_s);
        }
        volley_start += volley_period * rng.uniform(0.75, 1.25);
    }
    return out;
}

/// Non-homogeneous Poisson with a raised-cosine rate profile over the run:
/// trough -> peak -> trough, scaled so the mean rate over the cycle is
/// rate_hz. The cycle length is the expected span of `count` requests.
std::vector<double> diurnal(const ArrivalSpec& spec, std::size_t count, util::Rng& rng) {
    std::vector<double> out;
    out.reserve(count);
    const double span = static_cast<double>(count) / spec.rate_hz;
    const double floor = spec.diurnal_floor;
    // profile(t) in [floor, 2 - floor]; mean over the cycle is 1.
    const auto profile = [&](double t) {
        const double s = 0.5 * (1.0 - std::cos(2.0 * kPi * t / span));
        return floor + 2.0 * (1.0 - floor) * s;
    };
    double t = spec.phase_s;
    for (std::size_t k = 0; k < count; ++k) {
        const double inst_rate = spec.rate_hz * profile(t - spec.phase_s);
        t += exp_gap(rng, inst_rate);
        out.push_back(t);
    }
    return out;
}

/// Adversarial duty cycle: a quiet phase long enough for the device to shed
/// heat and the queue to drain, then a dense volley at 4x the volley
/// tightness of `bursty`. Quiet length jitters +-30% so the pattern cannot
/// be learned as a fixed period.
std::vector<double> attack(const ArrivalSpec& spec, std::size_t count, util::Rng& rng) {
    std::vector<double> out;
    out.reserve(count);
    const double cycle = static_cast<double>(spec.burst) / spec.rate_hz;
    const double spread = spec.burst_spread_s * 0.25;
    double volley_start = spec.phase_s + cycle * rng.uniform(0.7, 1.3);
    while (out.size() < count) {
        for (std::size_t j = 0; j < spec.burst && out.size() < count; ++j) {
            out.push_back(volley_start + static_cast<double>(j) * spread);
        }
        volley_start += cycle * rng.uniform(0.7, 1.3);
    }
    return out;
}

} // namespace

const char* to_string(ArrivalKind kind) noexcept {
    switch (kind) {
        case ArrivalKind::periodic: return "periodic";
        case ArrivalKind::poisson: return "poisson";
        case ArrivalKind::bursty: return "burst";
        case ArrivalKind::diurnal: return "diurnal";
        case ArrivalKind::attack: return "attack";
    }
    return "?";
}

ArrivalKind arrival_kind_from(const std::string& name) {
    if (name == "periodic") return ArrivalKind::periodic;
    if (name == "poisson") return ArrivalKind::poisson;
    if (name == "burst" || name == "bursty") return ArrivalKind::bursty;
    if (name == "diurnal") return ArrivalKind::diurnal;
    if (name == "attack") return ArrivalKind::attack;
    throw std::invalid_argument("unknown arrival process '" + name +
                                "' (periodic|poisson|burst|diurnal|attack)");
}

std::vector<double> generate_arrivals(const ArrivalSpec& spec, std::size_t count,
                                      std::uint64_t seed) {
    if (spec.rate_hz <= 0.0) {
        throw std::invalid_argument("generate_arrivals: rate_hz must be > 0");
    }
    if (spec.burst == 0) {
        throw std::invalid_argument("generate_arrivals: burst must be >= 1");
    }
    if (spec.burst_spread_s < 0.0 || spec.phase_s < 0.0) {
        throw std::invalid_argument("generate_arrivals: negative spacing/phase");
    }
    if (!(spec.diurnal_floor > 0.0) || spec.diurnal_floor > 1.0) {
        throw std::invalid_argument("generate_arrivals: diurnal_floor must be in (0, 1]");
    }
    if (count == 0) return {};

    util::Rng rng(seed);
    switch (spec.kind) {
        case ArrivalKind::periodic: return periodic(spec, count);
        case ArrivalKind::poisson: return poisson(spec, count, rng);
        case ArrivalKind::bursty: return bursty(spec, count, rng);
        case ArrivalKind::diurnal: return diurnal(spec, count, rng);
        case ArrivalKind::attack: return attack(spec, count, rng);
    }
    throw std::invalid_argument("generate_arrivals: unhandled arrival kind");
}

} // namespace lotus::serving
