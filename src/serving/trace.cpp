#include "serving/trace.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/stats.hpp"

namespace lotus::serving {

void SummaryAccumulator::add(const ServingRecord& record) {
    ++requests_;
    const double dev = 0.5 * (record.cpu_temp + record.gpu_temp);
    device_temp_.add(dev);
    peak_device_temp_c_ = std::max(peak_device_temp_c_, dev);
    if (record.shed) {
        ++shed_;
    } else {
        ++served_;
        served_e2e_ms_.push_back(record.e2e_s * 1e3);
        wait_ms_.add(record.queue_wait_s * 1e3);
        served_energy_j_ += record.energy_j;
    }
    if (record.missed) ++missed_;
}

ServingSummary SummaryAccumulator::summarize(std::string label, double makespan_s) const {
    ServingSummary s;
    s.stream = std::move(label);
    s.requests = requests_;
    if (requests_ == 0) return s;

    s.served = served_;
    s.shed = shed_;
    s.missed = missed_;
    s.peak_device_temp_c = peak_device_temp_c_;
    if (!served_e2e_ms_.empty()) {
        const auto pct = util::percentiles(served_e2e_ms_, {50.0, 95.0, 99.0});
        s.p50_ms = pct[0];
        s.p95_ms = pct[1];
        s.p99_ms = pct[2];
    }
    s.mean_wait_ms = wait_ms_.mean();
    s.miss_rate = static_cast<double>(s.missed) / static_cast<double>(s.requests);
    s.shed_rate = static_cast<double>(s.shed) / static_cast<double>(s.requests);
    s.throughput_rps =
        makespan_s > 0.0 ? static_cast<double>(s.served) / makespan_s : 0.0;
    s.energy_per_req_j =
        s.served > 0 ? served_energy_j_ / static_cast<double>(s.served) : 0.0;
    s.mean_device_temp_c = device_temp_.mean();
    return s;
}

ServingTrace::ServingTrace(std::vector<std::string> stream_names, bool capture_rows)
    : stream_names_(std::move(stream_names)), capture_rows_(capture_rows) {
    if (!capture_rows_) stream_accs_.resize(stream_names_.size());
}

void ServingTrace::add(ServingRecord record) {
    if (record.stream >= stream_names_.size()) {
        throw std::out_of_range("ServingTrace::add: unknown stream index");
    }
    ++count_;
    if (capture_rows_) {
        records_.push_back(std::move(record));
        return;
    }
    aggregate_acc_.add(record);
    stream_accs_[record.stream].add(record);
}

ServingSummary ServingTrace::summarize(const std::vector<const ServingRecord*>& rows,
                                       std::string label) const {
    ServingSummary s;
    s.stream = std::move(label);
    s.requests = rows.size();
    if (rows.empty()) return s;

    std::vector<double> served_e2e_ms;
    util::RunningStats wait_ms;
    util::RunningStats device_temp;
    double energy = 0.0;
    for (const auto* r : rows) {
        const double dev = 0.5 * (r->cpu_temp + r->gpu_temp);
        device_temp.add(dev);
        s.peak_device_temp_c = std::max(s.peak_device_temp_c, dev);
        if (r->shed) {
            ++s.shed;
        } else {
            ++s.served;
            served_e2e_ms.push_back(r->e2e_s * 1e3);
            wait_ms.add(r->queue_wait_s * 1e3);
            energy += r->energy_j;
        }
        if (r->missed) ++s.missed;
    }
    if (!served_e2e_ms.empty()) {
        const auto pct = util::percentiles(std::move(served_e2e_ms), {50.0, 95.0, 99.0});
        s.p50_ms = pct[0];
        s.p95_ms = pct[1];
        s.p99_ms = pct[2];
    }
    s.mean_wait_ms = wait_ms.mean();
    s.miss_rate = static_cast<double>(s.missed) / static_cast<double>(s.requests);
    s.shed_rate = static_cast<double>(s.shed) / static_cast<double>(s.requests);
    s.throughput_rps =
        makespan_s_ > 0.0 ? static_cast<double>(s.served) / makespan_s_ : 0.0;
    s.energy_per_req_j = s.served > 0 ? energy / static_cast<double>(s.served) : 0.0;
    s.mean_device_temp_c = device_temp.mean();
    return s;
}

ServingSummary ServingTrace::stream_summary(std::size_t stream) const {
    if (stream >= stream_names_.size()) {
        throw std::out_of_range("ServingTrace::stream_summary: unknown stream index");
    }
    if (!capture_rows_) {
        return stream_accs_[stream].summarize(stream_names_[stream], makespan_s_);
    }
    std::vector<const ServingRecord*> rows;
    rows.reserve(records_.size());
    for (const auto& r : records_) {
        if (r.stream == stream) rows.push_back(&r);
    }
    return summarize(rows, stream_names_[stream]);
}

ServingSummary ServingTrace::aggregate() const {
    ServingSummary s;
    if (!capture_rows_) {
        s = aggregate_acc_.summarize("all", makespan_s_);
    } else {
        std::vector<const ServingRecord*> rows;
        rows.reserve(records_.size());
        for (const auto& r : records_) rows.push_back(&r);
        s = summarize(rows, "all");
    }
    // Charge the whole device energy (idle included) to the served load.
    if (s.served > 0 && total_energy_j_ > 0.0) {
        s.energy_per_req_j = total_energy_j_ / static_cast<double>(s.served);
    }
    return s;
}

std::vector<ServingSummary> ServingTrace::all_summaries() const {
    std::vector<ServingSummary> out;
    out.reserve(stream_names_.size() + 1);
    out.push_back(aggregate());
    for (std::size_t i = 0; i < stream_names_.size(); ++i) {
        out.push_back(stream_summary(i));
    }
    return out;
}

std::vector<double> ServingTrace::e2e_ms() const {
    std::vector<double> out;
    out.reserve(records_.size());
    for (const auto& r : records_) out.push_back(r.e2e_s * 1e3);
    return out;
}

std::vector<double> ServingTrace::device_temps() const {
    std::vector<double> out;
    out.reserve(records_.size());
    for (const auto& r : records_) out.push_back(0.5 * (r.cpu_temp + r.gpu_temp));
    return out;
}

void ServingTrace::write_csv(const std::string& path) const {
    if (!capture_rows_) {
        throw std::logic_error(
            "ServingTrace::write_csv: summary-only trace holds no ledger rows");
    }
    util::CsvWriter csv(path, {"request_id", "stream", "arrival_s", "start_s",
                               "queue_wait_ms", "service_ms", "e2e_ms", "slo_ms", "shed",
                               "missed", "throttled", "proposals", "cpu_temp", "gpu_temp",
                               "energy_j"});
    for (const auto& r : records_) {
        csv.row(std::vector<std::string>{
            std::to_string(r.request_id),
            stream_names_[r.stream],
            util::format_double(r.arrival_s, 4),
            util::format_double(r.start_s, 4),
            util::format_double(r.queue_wait_s * 1e3, 3),
            util::format_double(r.service_s * 1e3, 3),
            util::format_double(r.e2e_s * 1e3, 3),
            util::format_double(r.slo_s * 1e3, 3),
            r.shed ? "1" : "0",
            r.missed ? "1" : "0",
            r.throttled ? "1" : "0",
            std::to_string(r.proposals),
            util::format_double(r.cpu_temp, 3),
            util::format_double(r.gpu_temp, 3),
            util::format_double(r.energy_j, 4),
        });
    }
}

} // namespace lotus::serving
