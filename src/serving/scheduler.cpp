#include "serving/scheduler.hpp"

#include <stdexcept>

namespace lotus::serving {

namespace {

/// Index of the pending request with the earliest arrival (ties: lowest id).
std::size_t fifo_index(const RequestQueue& queue) {
    const auto& pending = queue.pending();
    std::size_t best = 0;
    for (std::size_t i = 1; i < pending.size(); ++i) {
        const auto& a = pending[i];
        const auto& b = pending[best];
        if (a.arrival_s < b.arrival_s || (a.arrival_s == b.arrival_s && a.id < b.id)) {
            best = i;
        }
    }
    return best;
}

/// Index of the pending request with the earliest absolute deadline
/// (ties: earliest arrival, then lowest id).
std::size_t edf_index(const RequestQueue& queue) {
    const auto& pending = queue.pending();
    std::size_t best = 0;
    for (std::size_t i = 1; i < pending.size(); ++i) {
        const auto& a = pending[i];
        const auto& b = pending[best];
        const double da = a.deadline_s();
        const double db = b.deadline_s();
        if (da < db || (da == db && (a.arrival_s < b.arrival_s ||
                                     (a.arrival_s == b.arrival_s && a.id < b.id)))) {
            best = i;
        }
    }
    return best;
}

} // namespace

ScheduleDecision FifoScheduler::pick(RequestQueue& queue, double /*now_s*/,
                                     double /*expected_service_s*/) {
    ScheduleDecision d;
    if (!queue.empty()) d.next = queue.take(fifo_index(queue));
    return d;
}

ScheduleDecision EdfScheduler::pick(RequestQueue& queue, double /*now_s*/,
                                    double /*expected_service_s*/) {
    ScheduleDecision d;
    if (!queue.empty()) d.next = queue.take(edf_index(queue));
    return d;
}

ScheduleDecision EdfAdmitScheduler::pick(RequestQueue& queue, double now_s,
                                         double expected_service_s) {
    ScheduleDecision d;
    // Shed every request that cannot meet its deadline even if dispatched
    // immediately. With no service estimate yet, only already-expired
    // requests are provably infeasible.
    const double horizon = now_s + (expected_service_s > 0.0 ? expected_service_s : 0.0);
    for (std::size_t i = 0; i < queue.pending().size();) {
        if (queue.pending()[i].deadline_s() < horizon) {
            d.shed.push_back(queue.take(i));
        } else {
            ++i;
        }
    }
    if (!queue.empty()) d.next = queue.take(edf_index(queue));
    return d;
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& name) {
    if (name == "fifo") return std::make_unique<FifoScheduler>();
    if (name == "edf") return std::make_unique<EdfScheduler>();
    if (name == "edf_admit" || name == "edf-admit") {
        return std::make_unique<EdfAdmitScheduler>();
    }
    std::string known;
    for (const auto& n : scheduler_names()) known += known.empty() ? n : "|" + n;
    throw std::invalid_argument("unknown scheduler '" + name + "' (" + known + ")");
}

const std::vector<std::string>& scheduler_names() {
    static const std::vector<std::string> names{"fifo", "edf", "edf_admit"};
    return names;
}

} // namespace lotus::serving
