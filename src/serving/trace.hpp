#pragma once
// Per-request serving traces and their SLO-centric summaries.
//
// The serving analogue of runtime::Trace. Where the experiment trace is a
// per-iteration latency series, the serving trace is a per-request ledger:
// when did the request arrive, how long did it queue, was it shed, did it
// meet its deadline -- per stream and in aggregate. The summaries speak the
// language of serving systems (p50/p95/p99, miss rate, shed rate,
// throughput) rather than the paper's (mean, sigma, R_L).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace lotus::serving {

/// The single SLO boundary rule of the repo: a request exactly on its SLO
/// meets it ("<= limit is satisfied", matching util::satisfaction_rate and
/// runtime::Trace::summary).
[[nodiscard]] inline bool slo_satisfied(double e2e_s, double slo_s) noexcept {
    return e2e_s <= slo_s;
}

/// Ledger entry for one request (served or shed).
struct ServingRecord {
    std::size_t request_id = 0;
    /// Index into the stream-name table of the owning trace.
    std::size_t stream = 0;
    double arrival_s = 0.0;
    /// Dispatch time for served requests; shed time for shed ones.
    double start_s = 0.0;
    double queue_wait_s = 0.0;
    /// Device-side execution latency; 0 for shed requests.
    double service_s = 0.0;
    /// End-to-end latency (wait + service); for shed requests, the wait
    /// accumulated until the drop.
    double e2e_s = 0.0;
    double slo_s = 0.0;
    bool shed = false;
    /// SLO violated: shed, or served with e2e_s > slo_s.
    bool missed = false;
    bool throttled = false;
    int proposals = 0;
    double cpu_temp = 0.0; // at completion (or shed time)
    double gpu_temp = 0.0;
    double energy_j = 0.0;
};

/// SLO metrics over one stream (or the aggregate, stream == "all").
struct ServingSummary {
    std::string stream;
    std::size_t requests = 0;
    std::size_t served = 0;
    std::size_t shed = 0;
    std::size_t missed = 0;
    /// End-to-end latency percentiles over *served* requests [ms].
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double mean_wait_ms = 0.0;
    /// missed / requests (shed requests count as misses).
    double miss_rate = 0.0;
    double shed_rate = 0.0;
    /// served / makespan [requests/s].
    double throughput_rps = 0.0;
    /// Mean per-served-request energy [J] (execution only for streams; the
    /// aggregate uses total device energy, idle included).
    double energy_per_req_j = 0.0;
    double mean_device_temp_c = 0.0;
    double peak_device_temp_c = 0.0;
};

/// Streaming replacement for the ledger-scan arithmetic of
/// ServingTrace::summarize. Feed it records in ledger order and it produces
/// a ServingSummary whose every derived double is bit-identical to a scan of
/// the same rows: the Welford statistics see the same add order, the
/// percentile input vector holds the same values in the same order, and the
/// peak/energy reductions run the same max/sum chains. Only the served
/// end-to-end latencies are retained (percentiles need the full sample);
/// everything else is O(1) state.
class SummaryAccumulator {
public:
    void add(const ServingRecord& record);
    /// Summary over everything added so far (same arithmetic as
    /// ServingTrace::summarize over the equivalent row set).
    [[nodiscard]] ServingSummary summarize(std::string label, double makespan_s) const;

    [[nodiscard]] std::size_t requests() const noexcept { return requests_; }
    [[nodiscard]] std::size_t served() const noexcept { return served_; }

private:
    std::size_t requests_ = 0;
    std::size_t served_ = 0;
    std::size_t shed_ = 0;
    std::size_t missed_ = 0;
    std::vector<double> served_e2e_ms_;
    util::RunningStats wait_ms_;
    util::RunningStats device_temp_;
    double peak_device_temp_c_ = 0.0;
    double served_energy_j_ = 0.0;
};

class ServingTrace {
public:
    ServingTrace() = default;
    /// `capture_rows = false` selects the summary-only fast path: add() feeds
    /// streaming accumulators instead of materialising ServingRecord rows, so
    /// summaries stay bit-identical while the per-request ledger (records(),
    /// write_csv, chart columns) is unavailable.
    explicit ServingTrace(std::vector<std::string> stream_names, bool capture_rows = true);

    void add(ServingRecord record);
    void reserve(std::size_t n) {
        if (capture_rows_) records_.reserve(n);
    }

    [[nodiscard]] bool capture_rows() const noexcept { return capture_rows_; }
    /// Requests added (counted in both capture modes).
    [[nodiscard]] std::size_t size() const noexcept { return count_; }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
    [[nodiscard]] const ServingRecord& operator[](std::size_t i) const { return records_[i]; }
    [[nodiscard]] const std::vector<ServingRecord>& records() const noexcept {
        return records_;
    }
    [[nodiscard]] const std::vector<std::string>& stream_names() const noexcept {
        return stream_names_;
    }

    /// Wall-clock span of the run [s] / total device energy [J] (idle
    /// included); set once by the serving engine.
    void set_makespan(double seconds) noexcept { makespan_s_ = seconds; }
    [[nodiscard]] double makespan_s() const noexcept { return makespan_s_; }
    void set_total_energy(double joules) noexcept { total_energy_j_ = joules; }
    [[nodiscard]] double total_energy_j() const noexcept { return total_energy_j_; }
    void set_max_queue_depth(std::size_t depth) noexcept { max_queue_depth_ = depth; }
    [[nodiscard]] std::size_t max_queue_depth() const noexcept { return max_queue_depth_; }
    /// Thermal integration steps the device spent over the run (set by the
    /// serving engine; bench_overhead's stepper comparison reads it).
    void set_thermal_steps(std::uint64_t steps) noexcept { thermal_steps_ = steps; }
    [[nodiscard]] std::uint64_t thermal_steps() const noexcept { return thermal_steps_; }

    /// Summary over one stream index.
    [[nodiscard]] ServingSummary stream_summary(std::size_t stream) const;
    /// Summary over all requests (stream name "all"; energy-per-request uses
    /// the total device energy, so idle burn is charged to the workload).
    [[nodiscard]] ServingSummary aggregate() const;
    /// Aggregate first, then one summary per stream.
    [[nodiscard]] std::vector<ServingSummary> all_summaries() const;

    // Column extraction for charts (request order == completion order).
    // Empty in summary-only mode.
    [[nodiscard]] std::vector<double> e2e_ms() const;
    [[nodiscard]] std::vector<double> device_temps() const;

    /// Dump the per-request ledger as CSV. Throws std::logic_error in
    /// summary-only mode (there is no ledger to dump).
    void write_csv(const std::string& path) const;

private:
    [[nodiscard]] ServingSummary summarize(const std::vector<const ServingRecord*>& rows,
                                           std::string label) const;

    std::vector<std::string> stream_names_;
    std::vector<ServingRecord> records_;
    bool capture_rows_ = true;
    std::size_t count_ = 0;
    // Summary-only state (unused when capture_rows_).
    SummaryAccumulator aggregate_acc_;
    std::vector<SummaryAccumulator> stream_accs_;
    double makespan_s_ = 0.0;
    double total_energy_j_ = 0.0;
    std::size_t max_queue_depth_ = 0;
    std::uint64_t thermal_steps_ = 0;
};

} // namespace lotus::serving
