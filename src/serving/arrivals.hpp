#pragma once
// Arrival processes for serving streams.
//
// The paper evaluates LOTUS at a steady one-frame-at-a-time cadence; a
// serving system sees anything but. Five pluggable processes cover the load
// shapes that matter for a thermally constrained device:
//
//  * periodic -- a fixed-rate camera (the paper's implicit model);
//  * poisson  -- memoryless client traffic (M/D/1-style queueing);
//  * bursty   -- volleys of back-to-back requests separated by gaps, mean
//                rate preserved (motion-triggered cameras, batched uploads);
//  * diurnal  -- a non-homogeneous Poisson ramp (trough -> peak -> trough),
//                the day/night cycle compressed into one run;
//  * attack   -- adversarial duty cycle: long quiet phases that let the
//                device cool and the governor relax, then dense volleys
//                timed to land on a cold queue ("Can't Slow me Down"-style
//                latency attacks).
//
// All processes are pure functions of (spec, count, seed): parallel harness
// episodes replaying the same stream get byte-identical arrival times.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lotus::serving {

enum class ArrivalKind { periodic, poisson, bursty, diurnal, attack };

[[nodiscard]] const char* to_string(ArrivalKind kind) noexcept;

/// Parse a CLI-style name ("periodic", "poisson", "burst"/"bursty",
/// "diurnal", "attack"); throws std::invalid_argument on anything else.
[[nodiscard]] ArrivalKind arrival_kind_from(const std::string& name);

struct ArrivalSpec {
    ArrivalKind kind = ArrivalKind::poisson;
    /// Mean request rate [Hz]; all processes preserve it over the run.
    double rate_hz = 1.0;
    /// Offset of the first arrival [s] (staggers otherwise identical streams).
    double phase_s = 0.0;
    /// Requests per volley (bursty/attack).
    std::size_t burst = 8;
    /// Spacing between requests inside a volley [s] (bursty/attack).
    double burst_spread_s = 0.05;
    /// Trough rate as a fraction of the peak rate (diurnal).
    double diurnal_floor = 0.2;
};

/// Generate `count` ascending arrival times. Deterministic in (spec, count,
/// seed). Throws std::invalid_argument for non-positive rates or zero burst
/// sizes.
[[nodiscard]] std::vector<double> generate_arrivals(const ArrivalSpec& spec,
                                                    std::size_t count, std::uint64_t seed);

} // namespace lotus::serving
