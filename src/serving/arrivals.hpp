#pragma once
// Arrival processes for serving streams.
//
// The paper evaluates LOTUS at a steady one-frame-at-a-time cadence; a
// serving system sees anything but. Five pluggable processes cover the load
// shapes that matter for a thermally constrained device:
//
//  * periodic -- a fixed-rate camera (the paper's implicit model);
//  * poisson  -- memoryless client traffic (M/D/1-style queueing);
//  * bursty   -- volleys of back-to-back requests separated by gaps, mean
//                rate preserved (motion-triggered cameras, batched uploads);
//  * diurnal  -- a non-homogeneous Poisson ramp (trough -> peak -> trough),
//                the day/night cycle compressed into one run;
//  * attack   -- adversarial duty cycle: long quiet phases that let the
//                device cool and the governor relax, then dense volleys
//                timed to land on a cold queue ("Can't Slow me Down"-style
//                latency attacks).
//
// All processes are pure functions of (spec, count, seed): parallel harness
// episodes replaying the same stream get byte-identical arrival times.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace lotus::serving {

enum class ArrivalKind { periodic, poisson, bursty, diurnal, attack };

[[nodiscard]] const char* to_string(ArrivalKind kind) noexcept;

/// Parse a CLI-style name ("periodic", "poisson", "burst"/"bursty",
/// "diurnal", "attack"); throws std::invalid_argument on anything else.
[[nodiscard]] ArrivalKind arrival_kind_from(const std::string& name);

struct ArrivalSpec {
    ArrivalKind kind = ArrivalKind::poisson;
    /// Mean request rate [Hz]; all processes preserve it over the run.
    double rate_hz = 1.0;
    /// Offset of the first arrival [s] (staggers otherwise identical streams).
    double phase_s = 0.0;
    /// Requests per volley (bursty/attack).
    std::size_t burst = 8;
    /// Spacing between requests inside a volley [s] (bursty/attack).
    double burst_spread_s = 0.05;
    /// Trough rate as a fraction of the peak rate (diurnal).
    double diurnal_floor = 0.2;
};

/// Streaming arrival-time generator: emits the same sequence
/// generate_arrivals materialises, one value per next() call, in O(1)
/// memory -- the primitive behind trace synthesis of million-request
/// timelines. Arrivals are clamped non-decreasing (volley processes can
/// mathematically overlap adjacent volleys at extreme rates) and every
/// value is finite. Deterministic in (spec, count, seed).
class ArrivalGenerator {
public:
    /// Validates the spec; throws std::invalid_argument for non-positive
    /// rates, zero burst sizes, negative spacing/phase or an out-of-range
    /// diurnal floor. count == 0 constructs an exhausted generator.
    ArrivalGenerator(const ArrivalSpec& spec, std::size_t count, std::uint64_t seed);

    [[nodiscard]] std::size_t count() const noexcept { return count_; }
    [[nodiscard]] std::size_t emitted() const noexcept { return emitted_; }
    [[nodiscard]] bool done() const noexcept { return emitted_ >= count_; }

    /// The next arrival time; throws std::logic_error when exhausted.
    double next();

private:
    ArrivalSpec spec_;
    std::size_t count_;
    util::Rng rng_;
    std::size_t emitted_ = 0;
    /// Running clock (poisson/diurnal).
    double t_ = 0.0;
    /// Volley state (bursty/attack).
    double volley_start_ = 0.0;
    std::size_t volley_j_ = 0;
    double spread_ = 0.0;
    double jitter_lo_ = 0.0;
    double jitter_hi_ = 0.0;
    /// Cycle length of the diurnal rate profile (the expected span).
    double span_ = 0.0;
    /// Monotonicity clamp.
    double last_ = 0.0;
    bool have_last_ = false;
};

/// Generate `count` ascending arrival times. Deterministic in (spec, count,
/// seed). Throws std::invalid_argument for non-positive rates or zero burst
/// sizes. Equivalent to draining an ArrivalGenerator.
[[nodiscard]] std::vector<double> generate_arrivals(const ArrivalSpec& spec,
                                                    std::size_t count, std::uint64_t seed);

} // namespace lotus::serving
