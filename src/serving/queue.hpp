#pragma once
// RequestQueue: the pending-request pool in front of the shared device.
//
// Deliberately a plain inspectable vector rather than a priority heap: the
// queue stays small (tens of requests even under saturation), every
// scheduling policy wants a different order, and admission control needs to
// *remove from the middle* -- a heap would buy nothing and cost the
// schedulers their full view. Depth statistics are tracked here because the
// queue is the one place that sees every transition.

#include <cstddef>
#include <vector>

#include "serving/request.hpp"

namespace lotus::serving {

class RequestQueue {
public:
    void push(Request request);

    [[nodiscard]] bool empty() const noexcept { return pending_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return pending_.size(); }
    [[nodiscard]] const std::vector<Request>& pending() const noexcept { return pending_; }

    /// Remove and return the request at `index` (scheduler's choice).
    Request take(std::size_t index);

    /// Largest depth the queue ever reached (reported per run).
    [[nodiscard]] std::size_t max_depth() const noexcept { return max_depth_; }

private:
    std::vector<Request> pending_;
    std::size_t max_depth_ = 0;
};

} // namespace lotus::serving
