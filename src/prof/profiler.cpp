// Profiler internals: thread-local accumulation logs, a process-global
// registry that interns names and folds the logs of exited threads, and the
// report renderer. Everything here compiles away when LOTUS_PROFILING=OFF
// (the header's macros expand to no-ops, so nothing references this TU).

#include "prof/profiler.hpp"

#if defined(LOTUS_PROFILING_ENABLED) && LOTUS_PROFILING_ENABLED

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>

#include "util/ascii.hpp"
#include "util/csv.hpp"

namespace lotus::prof {
namespace {

constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

[[nodiscard]] std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::atomic<bool> g_enabled{false};

/// Per-thread accumulation for one region. `parent_plus1` is the region id
/// under which this region was first entered on this thread, plus one
/// (0 = unknown / root).
struct LocalRegion {
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t child_ns = 0;
    std::size_t parent_plus1 = 0;
};

struct ThreadLog;

/// Global registry: interns names, tracks live thread logs, keeps the
/// folded stats of threads that have exited.
class Registry {
public:
    static Registry& instance() {
        static Registry r;
        return r;
    }

    std::size_t intern(std::vector<std::string>& names, const char* name) {
        const std::lock_guard<std::mutex> lock(mu_);
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (names[i] == name) return i;
        }
        names.push_back(name);
        return names.size() - 1;
    }

    std::vector<std::string> region_names_;
    std::vector<std::string> counter_names_;

    void attach(ThreadLog* log) {
        const std::lock_guard<std::mutex> lock(mu_);
        live_.push_back(log);
    }
    void detach_and_fold(ThreadLog* log);

    Report capture();
    void reset();

private:
    std::mutex mu_;
    std::vector<ThreadLog*> live_;
    std::vector<LocalRegion> retired_regions_;
    std::vector<std::uint64_t> retired_counters_;

    void fold_locked(const std::vector<LocalRegion>& regions,
                     const std::vector<std::uint64_t>& counters) {
        if (retired_regions_.size() < regions.size()) retired_regions_.resize(regions.size());
        for (std::size_t i = 0; i < regions.size(); ++i) {
            auto& dst = retired_regions_[i];
            dst.calls += regions[i].calls;
            dst.total_ns += regions[i].total_ns;
            dst.child_ns += regions[i].child_ns;
            if (dst.parent_plus1 == 0) dst.parent_plus1 = regions[i].parent_plus1;
        }
        if (retired_counters_.size() < counters.size()) retired_counters_.resize(counters.size());
        for (std::size_t i = 0; i < counters.size(); ++i) retired_counters_[i] += counters[i];
    }
};

/// One thread's accumulation log; folds itself into the registry on exit.
struct ThreadLog {
    std::vector<LocalRegion> regions;
    std::vector<std::uint64_t> counters;
    std::vector<RegionId> stack;

    ThreadLog() { Registry::instance().attach(this); }
    ~ThreadLog() { Registry::instance().detach_and_fold(this); }

    LocalRegion& region(RegionId id) {
        if (regions.size() <= id) regions.resize(id + 1);
        return regions[id];
    }
    std::uint64_t& counter(CounterId id) {
        if (counters.size() <= id) counters.resize(id + 1, 0);
        return counters[id];
    }
};

ThreadLog& tls() {
    thread_local ThreadLog log;
    return log;
}

void Registry::detach_and_fold(ThreadLog* log) {
    const std::lock_guard<std::mutex> lock(mu_);
    live_.erase(std::remove(live_.begin(), live_.end(), log), live_.end());
    fold_locked(log->regions, log->counters);
}

Report Registry::capture() {
    const std::lock_guard<std::mutex> lock(mu_);
    std::vector<LocalRegion> regions = retired_regions_;
    std::vector<std::uint64_t> counters = retired_counters_;
    const auto fold_into = [](auto& dst, const auto& src, auto&& merge) {
        if (dst.size() < src.size()) dst.resize(src.size());
        for (std::size_t i = 0; i < src.size(); ++i) merge(dst[i], src[i]);
    };
    for (const auto* log : live_) {
        fold_into(regions, log->regions, [](LocalRegion& d, const LocalRegion& s) {
            d.calls += s.calls;
            d.total_ns += s.total_ns;
            d.child_ns += s.child_ns;
            if (d.parent_plus1 == 0) d.parent_plus1 = s.parent_plus1;
        });
        fold_into(counters, log->counters,
                  [](std::uint64_t& d, std::uint64_t s) { d += s; });
    }

    Report report;
    report.regions.resize(region_names_.size());
    for (std::size_t i = 0; i < region_names_.size(); ++i) {
        auto& r = report.regions[i];
        r.name = region_names_[i];
        if (i < regions.size()) {
            r.calls = regions[i].calls;
            r.total_ns = regions[i].total_ns;
            r.child_ns = regions[i].child_ns;
            r.parent = regions[i].parent_plus1 == 0 ? kNoParent : regions[i].parent_plus1 - 1;
        } else {
            r.parent = kNoParent;
        }
    }
    report.counters.resize(counter_names_.size());
    for (std::size_t i = 0; i < counter_names_.size(); ++i) {
        report.counters[i].name = counter_names_[i];
        report.counters[i].value = i < counters.size() ? counters[i] : 0;
    }

    // Emission boundary: interning order is first-execution order, which
    // under a parallel harness depends on which worker reaches a call site
    // first. Reports must be a pure function of the run, so sort regions and
    // counters by name and remap the parent links through the permutation.
    std::vector<std::size_t> order(report.regions.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return report.regions[a].name < report.regions[b].name;
    });
    std::vector<std::size_t> inverse(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) inverse[order[i]] = i;
    std::vector<RegionReport> sorted_regions;
    sorted_regions.reserve(order.size());
    for (const auto idx : order) {
        auto& r = report.regions[idx];
        if (r.parent != kNoParent && r.parent < inverse.size()) {
            r.parent = inverse[r.parent];
        }
        sorted_regions.push_back(std::move(r));
    }
    report.regions = std::move(sorted_regions);
    std::sort(report.counters.begin(), report.counters.end(),
              [](const CounterReport& a, const CounterReport& b) { return a.name < b.name; });
    return report;
}

void Registry::reset() {
    const std::lock_guard<std::mutex> lock(mu_);
    retired_regions_.assign(retired_regions_.size(), LocalRegion{});
    retired_counters_.assign(retired_counters_.size(), 0);
    for (auto* log : live_) {
        log->regions.assign(log->regions.size(), LocalRegion{});
        log->counters.assign(log->counters.size(), 0);
    }
}

[[nodiscard]] std::string format_ms(std::uint64_t ns) {
    return util::format_double(static_cast<double>(ns) / 1e6, 3);
}

} // namespace

RegionId register_region(const char* name) {
    auto& reg = Registry::instance();
    return reg.intern(reg.region_names_, name);
}

CounterId register_counter(const char* name) {
    auto& reg = Registry::instance();
    return reg.intern(reg.counter_names_, name);
}

void count(CounterId id, std::uint64_t delta) noexcept { tls().counter(id) += delta; }

void set_enabled(bool on) noexcept { g_enabled.store(on, std::memory_order_relaxed); }

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

ScopedTimer::ScopedTimer(RegionId id) noexcept : id_(id), active_(enabled()) {
    if (!active_) return;
    auto& log = tls();
    auto& r = log.region(id_);
    if (r.parent_plus1 == 0 && !log.stack.empty()) r.parent_plus1 = log.stack.back() + 1;
    log.stack.push_back(id_);
    start_ns_ = now_ns();
}

ScopedTimer::~ScopedTimer() {
    if (!active_) return;
    const std::uint64_t elapsed = now_ns() - start_ns_;
    auto& log = tls();
    log.stack.pop_back();
    auto& r = log.region(id_);
    r.calls += 1;
    r.total_ns += elapsed;
    if (!log.stack.empty()) log.region(log.stack.back()).child_ns += elapsed;
}

Report capture() { return Registry::instance().capture(); }

std::uint64_t counter_total(std::string_view name) {
    const auto report = capture();
    for (const auto& c : report.counters) {
        if (c.name == name) return c.value;
    }
    return 0;
}

void reset() { Registry::instance().reset(); }

std::string report_text() {
    const auto report = capture();
    bool any_timed = false;
    for (const auto& r : report.regions) any_timed |= r.calls > 0;
    bool any_counted = false;
    for (const auto& c : report.counters) any_counted |= c.value > 0;
    if (!any_timed && !any_counted) {
        return "no profile samples recorded (enable timers with --profile / "
               "prof::set_enabled(true))\n";
    }

    std::string out;
    if (any_timed) {
        // Children grouped under their first-seen parent, siblings in name
        // order (capture() sorts the merged report so rendering is
        // deterministic across thread interleavings); indentation encodes
        // depth.
        std::vector<std::vector<std::size_t>> children(report.regions.size());
        std::vector<std::size_t> roots;
        for (std::size_t i = 0; i < report.regions.size(); ++i) {
            if (report.regions[i].calls == 0) continue;
            const auto parent = report.regions[i].parent;
            if (parent == kNoParent || parent >= report.regions.size()) {
                roots.push_back(i);
            } else {
                children[parent].push_back(i);
            }
        }
        util::TextTable table({"region", "calls", "total ms", "self ms", "us/call"});
        const auto add = [&](const auto& self, std::size_t i, std::size_t depth) -> void {
            const auto& r = report.regions[i];
            const double us_per_call =
                r.calls > 0 ? static_cast<double>(r.total_ns) / 1e3 /
                                  static_cast<double>(r.calls)
                            : 0.0;
            table.add_row({std::string(2 * depth, ' ') + r.name, std::to_string(r.calls),
                           format_ms(r.total_ns), format_ms(r.self_ns()),
                           util::format_double(us_per_call, 2)});
            for (const auto child : children[i]) self(self, child, depth + 1);
        };
        for (const auto root : roots) add(add, root, 0);
        out += table.render("profile: regions");
    }
    if (any_counted) {
        util::TextTable table({"counter", "value"});
        for (const auto& c : report.counters) {
            if (c.value > 0) table.add_row({c.name, std::to_string(c.value)});
        }
        out += table.render("profile: counters");
    }
    return out;
}

} // namespace lotus::prof

#endif // LOTUS_PROFILING_ENABLED
