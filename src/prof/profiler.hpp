#pragma once
// Lightweight internal profiler for the episode hot path.
//
// APEX-style instrumentation: RAII scoped timers over named regions plus
// monotonic counters, accumulated per thread (no locks or atomics on the
// hot path) and merged when a report is captured. Regions remember the
// parent under which they were first entered, so the report renders as a
// call tree with self-time (total minus time attributed to child regions).
//
// Two gates, one compile-time and one runtime:
//
//  * `LOTUS_PROFILING` (CMake option, default ON) defines
//    LOTUS_PROFILING_ENABLED for the whole build. When OFF, every
//    LOTUS_PROF_* macro expands to `((void)0)` and this header provides
//    inline no-op stubs for the query API -- liblotus carries **zero**
//    profiler symbols (CI verifies with `nm`).
//
//  * `prof::set_enabled(bool)` gates the *timers* at runtime (scoped-timer
//    construction reads one relaxed atomic and takes no clock samples when
//    disabled). Counters always count when compiled in: they are one
//    thread-local integer add, and the bench gates (e.g. "batched RL math
//    issues >= 2x fewer scalar matvecs") need them without timer noise.
//
// Threading contract: timers and counters are safe from any thread at any
// time. `capture()` / `report_text()` / `reset()` merge the thread-local
// logs and must only run while worker threads are quiescent (the harness
// joins its pool before returning, so "after harness.run()" is safe; a
// thread's log is folded into the global registry at thread exit).
//
// Usage:
//   void ServingEngine::run(...) {
//       LOTUS_PROF_SCOPE("serving.run");
//       ...
//       LOTUS_PROF_COUNT("serving.requests", 1);
//   }

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lotus::prof {

/// One merged region row of a captured report. `parent` is the index of the
/// region this one was first entered under, or npos for roots.
struct RegionReport {
    std::string name;
    std::size_t parent = static_cast<std::size_t>(-1);
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    /// Nanoseconds attributed to child regions (self = total - child,
    /// clamped at zero for recursive regions).
    std::uint64_t child_ns = 0;

    [[nodiscard]] std::uint64_t self_ns() const noexcept {
        return total_ns > child_ns ? total_ns - child_ns : 0;
    }
};

/// One merged counter row of a captured report.
struct CounterReport {
    std::string name;
    std::uint64_t value = 0;
};

/// Snapshot of all regions and counters, merged across threads.
struct Report {
    std::vector<RegionReport> regions;
    std::vector<CounterReport> counters;
};

} // namespace lotus::prof

#if defined(LOTUS_PROFILING_ENABLED) && LOTUS_PROFILING_ENABLED

namespace lotus::prof {

inline constexpr bool kCompiled = true;

/// Index into the global region registry (stable for process lifetime).
using RegionId = std::size_t;
/// Index into the global counter registry.
using CounterId = std::size_t;

/// Intern a region name; idempotent per call site via the macro's static.
[[nodiscard]] RegionId register_region(const char* name);
/// Intern a counter name.
[[nodiscard]] CounterId register_counter(const char* name);
/// Add `delta` to a counter (thread-local; merged at capture()).
void count(CounterId id, std::uint64_t delta) noexcept;

/// Enable / disable the scoped timers at runtime (counters are unaffected).
void set_enabled(bool on) noexcept;
[[nodiscard]] bool enabled() noexcept;

/// RAII timer for one region. Reads the clock only while enabled().
class ScopedTimer {
public:
    explicit ScopedTimer(RegionId id) noexcept;
    ~ScopedTimer();
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
    RegionId id_;
    std::uint64_t start_ns_ = 0;
    bool active_;
};

/// Merge every thread's log (live and exited) into one snapshot. Regions
/// and counters are name-sorted (parent links remapped), so the snapshot is
/// independent of which thread first executed each call site.
[[nodiscard]] Report capture();
/// Merged value of one counter by name (0 if never registered).
[[nodiscard]] std::uint64_t counter_total(std::string_view name);
/// Zero all timer and counter state (names stay registered).
void reset();
/// Render capture() as an indented call tree plus a counter table.
[[nodiscard]] std::string report_text();

} // namespace lotus::prof

// Statement macro: declares a block-scoped RAII timer. The per-call-site
// static interns the region name exactly once (thread-safe magic static).
#define LOTUS_PROF_CONCAT_INNER(a, b) a##b
#define LOTUS_PROF_CONCAT(a, b) LOTUS_PROF_CONCAT_INNER(a, b)
#define LOTUS_PROF_SCOPE(name_literal)                                                   \
    static const ::lotus::prof::RegionId LOTUS_PROF_CONCAT(lotus_prof_rid_, __LINE__) =  \
        ::lotus::prof::register_region(name_literal);                                    \
    const ::lotus::prof::ScopedTimer LOTUS_PROF_CONCAT(lotus_prof_timer_, __LINE__)(     \
        LOTUS_PROF_CONCAT(lotus_prof_rid_, __LINE__))
#define LOTUS_PROF_COUNT(name_literal, delta)                                            \
    do {                                                                                 \
        static const ::lotus::prof::CounterId lotus_prof_cid_ =                          \
            ::lotus::prof::register_counter(name_literal);                               \
        ::lotus::prof::count(lotus_prof_cid_, static_cast<std::uint64_t>(delta));        \
    } while (false)

#else // !LOTUS_PROFILING_ENABLED

namespace lotus::prof {

inline constexpr bool kCompiled = false;

// Inline stubs keep callers (tools, bench, sinks) compiling unchanged; they
// emit no symbols into liblotus because the library itself only uses the
// macros below, which vanish.
inline void set_enabled(bool) noexcept {}
[[nodiscard]] inline bool enabled() noexcept { return false; }
[[nodiscard]] inline Report capture() { return {}; }
[[nodiscard]] inline std::uint64_t counter_total(std::string_view) { return 0; }
inline void reset() {}
[[nodiscard]] inline std::string report_text() {
    return "profiler compiled out (rebuild with -DLOTUS_PROFILING=ON)\n";
}

} // namespace lotus::prof

#define LOTUS_PROF_SCOPE(name_literal) ((void)0)
#define LOTUS_PROF_COUNT(name_literal, delta) ((void)0)

#endif // LOTUS_PROFILING_ENABLED
