#include "runtime/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "prof/profiler.hpp"
#include "telemetry/recorder.hpp"

namespace lotus::runtime {

namespace {
/// Work below this many ops/bytes is considered finished (guards against
/// floating-point residue in the integration loop).
constexpr double kWorkEpsilon = 1.0;
} // namespace

InferenceEngine::InferenceEngine(platform::EdgeDevice& device, EngineConfig config)
    : device_(device), cfg_(config) {
    if (cfg_.max_slice_s <= 0.0) {
        throw std::invalid_argument("InferenceEngine: max_slice_s must be > 0");
    }
    device_.set_advance_listener(this);
}

InferenceEngine::~InferenceEngine() {
    if (device_.advance_listener() == this) device_.set_advance_listener(nullptr);
}

void InferenceEngine::reset() {
    last_latency_ = 0.0;
    tick_initialized_ = false;
    next_tick_due_ = 0.0;
}

// --- AdvanceListener ---------------------------------------------------------

double InferenceEngine::next_event_s() const {
    if (!gov_ || !tick_initialized_ || gov_->tick_interval_s() <= 0.0) {
        return platform::AdvanceListener::kNoEvent;
    }
    return next_tick_due_;
}

void InferenceEngine::on_event(double now_s, double cpu_util, double gpu_util) {
    const double interval = gov_->tick_interval_s();
    if (auto* tel = telemetry::current()) {
        // Per-tick observation: what the kernel-style governor sees at this
        // cadence instant (its action shows up as an opp_change on the
        // platform thread).
        tel->set_context(device_.telemetry_label());
        tel->instant(tel->context_track("governor"), "tick", now_s,
                     "\"cpu_temp_c\":" + telemetry::jnum(device_.cpu_temp()) +
                         ",\"gpu_temp_c\":" + telemetry::jnum(device_.gpu_temp()) +
                         ",\"cpu_level\":" + std::to_string(device_.cpu_level()) +
                         ",\"gpu_level\":" + std::to_string(device_.gpu_level()));
    }
    governors::TickObservation tick;
    tick.now_s = now_s;
    tick.dt_s = interval;
    tick.cpu_util = cpu_util;
    tick.gpu_util = gpu_util;
    tick.cpu_temp = device_.cpu_temp();
    tick.gpu_temp = device_.gpu_temp();
    tick.cpu_level = device_.cpu_level();
    tick.gpu_level = device_.gpu_level();
    tick.cpu_levels = device_.cpu_levels();
    tick.gpu_levels = device_.gpu_levels();
    // Move the deadline before delivering: on_tick may request new levels,
    // whose DVFS stall re-enters the advance loop (and must not re-fire the
    // same tick).
    next_tick_due_ += interval;
    apply(gov_->on_tick(tick));
}

void InferenceEngine::on_throttle(double, bool, bool) {
    frame_saw_throttle_ = true;
}

void InferenceEngine::bind(governors::Governor& governor) {
    gov_ = &governor;
    const double interval = governor.tick_interval_s();
    if (interval > 0.0 && !tick_initialized_) {
        next_tick_due_ = device_.now() + interval;
        tick_initialized_ = true;
    }
}

// -----------------------------------------------------------------------------

governors::Observation InferenceEngine::make_observation(std::size_t iteration,
                                                         double constraint_s,
                                                         double elapsed_s, int proposals,
                                                         double queue_wait_s) const {
    governors::Observation obs;
    obs.iteration = iteration;
    obs.queue_wait_s = queue_wait_s;
    obs.now_s = device_.now();
    obs.cpu_temp = device_.cpu_temp();
    obs.gpu_temp = device_.gpu_temp();
    obs.cpu_level = device_.cpu_level();
    obs.gpu_level = device_.gpu_level();
    obs.cpu_levels = device_.cpu_levels();
    obs.gpu_levels = device_.gpu_levels();
    obs.latency_constraint_s = constraint_s;
    obs.last_frame_latency_s = last_latency_;
    obs.elapsed_in_frame_s = elapsed_s;
    obs.proposals = proposals;
    obs.throttled = device_.throttled();
    return obs;
}

void InferenceEngine::apply(const governors::LevelRequest& request) {
    if (!request.has_request) return;
    // request_levels advances the clock through the DVFS stall; the device
    // keeps delivering ticks and throttle flips to us meanwhile (single
    // time-advance authority).
    device_.request_levels(std::min(request.cpu, device_.cpu_levels() - 1),
                           std::min(request.gpu, device_.gpu_levels() - 1));
}

void InferenceEngine::charge_decision_overhead() {
    const double overhead = gov_->decision_overhead_s();
    if (overhead > 0.0) {
        // The device idles while the observation travels to the agent and
        // the action comes back (socket + Q-network, Sec. 4.4.2).
        device_.advance(overhead, cfg_.idle_cpu_util, 0.0);
    }
}

void InferenceEngine::execute_cpu_work(double ops) {
    while (ops > kWorkEpsilon) {
        const double throughput = device_.cpu_throughput();
        const double t_need = std::min(ops / throughput, cfg_.max_slice_s);
        // advance_work returns early if the granted frequency changed, so
        // `throughput` is exact over the h it reports.
        const double h = device_.advance_work(t_need, 1.0, 0.0);
        ops -= h * throughput;
    }
}

void InferenceEngine::execute_gpu_work(double ops, double bytes) {
    while (ops > kWorkEpsilon || bytes > kWorkEpsilon) {
        const double throughput = device_.gpu_throughput();
        const double bw = device_.mem_bandwidth();
        const double t_need = ops / throughput + bytes / bw;
        const double t_slice = std::min(t_need, cfg_.max_slice_s);
        const double h = device_.advance_work(t_slice, cfg_.cpu_util_during_gpu, 1.0);
        const double frac = h / t_need;
        ops -= ops * frac;
        bytes -= bytes * frac;
    }
}

void InferenceEngine::run_idle(double duration_s, governors::Governor& governor) {
    if (duration_s < 0.0) {
        throw std::invalid_argument("run_idle: negative duration");
    }
    bind(governor);
    device_.advance(duration_s, cfg_.idle_cpu_util, 0.0);
}

FrameResult InferenceEngine::run_frame(const detector::DetectorModel& model,
                                       const workload::FrameSample& frame,
                                       governors::Governor& governor,
                                       double latency_constraint_s, std::size_t iteration,
                                       double queue_wait_s) {
    if (latency_constraint_s <= 0.0) {
        throw std::invalid_argument("run_frame: latency constraint must be > 0");
    }
    if (queue_wait_s < 0.0) {
        throw std::invalid_argument("run_frame: negative queue wait");
    }
    LOTUS_PROF_SCOPE("engine.run_frame");
    LOTUS_PROF_COUNT("engine.frames", 1);
    bind(governor);

    auto* tel = telemetry::current();
    int tel_engine = -1;
    int tel_gov = -1;
    if (tel) {
        // Everything this frame emits (agent counters included) belongs to
        // this device's process.
        tel->set_context(device_.telemetry_label());
        tel_engine = tel->context_track("engine");
        tel_gov = tel->context_track("governor");
        tel->begin(tel_engine, "frame", device_.now(),
                   "\"iteration\":" + std::to_string(iteration) +
                       ",\"constraint_ms\":" + telemetry::jnum(latency_constraint_s * 1e3) +
                       ",\"queue_wait_ms\":" + telemetry::jnum(queue_wait_s * 1e3));
    }

    FrameResult result;
    result.iteration = iteration;
    result.start_time_s = device_.now();
    result.queue_wait_s = queue_wait_s;
    result.constraint_s = latency_constraint_s;
    result.proposals_raw = frame.proposals;
    frame_saw_throttle_ = device_.throttled();

    const double t0 = device_.now();
    const double e0 = device_.energy_joules();

    // --- decision 1: frame start (s_2i) ------------------------------------
    const auto obs_start = make_observation(iteration, latency_constraint_s, queue_wait_s,
                                            -1, queue_wait_s);
    const auto req_start = governor.on_frame_start(obs_start);
    charge_decision_overhead();
    apply(req_start);
    result.cpu_level_stage1 = device_.cpu_level();
    result.gpu_level_stage1 = device_.gpu_level();
    if (tel) {
        tel->instant(tel_gov, "decision", device_.now(),
                     "\"point\":\"frame_start\",\"requested\":" +
                         std::string(req_start.has_request ? "true" : "false") +
                         ",\"cpu_level\":" + std::to_string(result.cpu_level_stage1) +
                         ",\"gpu_level\":" + std::to_string(result.gpu_level_stage1));
    }

    // --- stage 1: pre-processing -> backbone -> RPN -------------------------
    for (const auto& component :
         model.stage1_components(frame.resolution_scale, frame.complexity)) {
        execute_cpu_work(component.cpu_ops * frame.jitter);
        execute_gpu_work(component.gpu_ops * frame.jitter, component.mem_bytes * frame.jitter);
    }
    result.stage1_s = device_.now() - t0;

    // --- decision 2: post-RPN (s_2i+1, proposals known) ---------------------
    const int proposals_used = model.clamp_proposals(frame.proposals);
    result.proposals_used = proposals_used;
    if (model.is_two_stage()) {
        const auto obs_rpn =
            make_observation(iteration, latency_constraint_s,
                             queue_wait_s + (device_.now() - t0), proposals_used,
                             queue_wait_s);
        const auto req_rpn = governor.on_post_rpn(obs_rpn);
        charge_decision_overhead();
        apply(req_rpn);
        if (tel) {
            tel->instant(tel_gov, "decision", device_.now(),
                         "\"point\":\"post_rpn\",\"requested\":" +
                             std::string(req_rpn.has_request ? "true" : "false") +
                             ",\"proposals\":" + std::to_string(proposals_used) +
                             ",\"cpu_level\":" + std::to_string(device_.cpu_level()) +
                             ",\"gpu_level\":" + std::to_string(device_.gpu_level()));
        }
    }
    result.cpu_level_stage2 = device_.cpu_level();
    result.gpu_level_stage2 = device_.gpu_level();

    // --- stage 2: RoI head (+mask) -> post-processing -----------------------
    for (const auto& component : model.stage2_components(proposals_used)) {
        execute_cpu_work(component.cpu_ops * frame.jitter);
        execute_gpu_work(component.gpu_ops * frame.jitter, component.mem_bytes * frame.jitter);
    }

    result.latency_s = device_.now() - t0;
    result.stage2_s = result.latency_s - result.stage1_s;
    result.cpu_temp = device_.cpu_temp();
    result.gpu_temp = device_.gpu_temp();
    result.energy_j = device_.energy_joules() - e0;
    result.throttled = frame_saw_throttle_ || device_.throttled();

    if (tel) {
        tel->end(tel_engine, device_.now());
    }

    governors::FrameOutcome outcome;
    outcome.iteration = iteration;
    outcome.now_s = device_.now();
    outcome.latency_s = result.e2e_latency_s();
    outcome.queue_wait_s = queue_wait_s;
    outcome.stage1_latency_s = result.stage1_s;
    outcome.stage2_latency_s = result.stage2_s;
    outcome.proposals = proposals_used;
    outcome.cpu_temp = result.cpu_temp;
    outcome.gpu_temp = result.gpu_temp;
    outcome.latency_constraint_s = latency_constraint_s;
    outcome.throttled = result.throttled;
    outcome.energy_j = result.energy_j;
    governor.on_frame_end(outcome);

    last_latency_ = result.e2e_latency_s();
    return result;
}

} // namespace lotus::runtime
