#pragma once
// InferenceEngine: executes detector frames on the simulated device.
//
// The engine is the "client" side of the paper's architecture: it runs the
// detector pipeline stage by stage, calls the governor at the two decision
// points (frame start, post-RPN) and charges agent communication overhead
// to the frame. Time only moves through EdgeDevice::advance; the engine
// registers itself as the device's AdvanceListener, so kernel ticks fire at
// their exact cadence and throttle flips are observed for *all* advanced
// time -- work slices, idle gaps, decision overhead and DVFS transitions
// alike. Work accounting is exact: the device interrupts a work slice the
// moment the granted frequency changes (advance_work), so the throughput
// sampled at the top of a slice holds for the whole interval it covers.

#include <cstddef>

#include "detector/model.hpp"
#include "governors/governor.hpp"
#include "platform/device.hpp"
#include "workload/dataset.hpp"

namespace lotus::runtime {

struct EngineConfig {
    /// Upper bound on one work-integration slice [s]. A guard only: work
    /// accounting and kernel-tick delivery are exact for any value (the
    /// device splits time at frequency changes, tick deadlines and throttle
    /// polls), so this merely caps how much work the engine commits to one
    /// throughput sample.
    double max_slice_s = 0.25;
    /// CPU utilization while the GPU executes (host thread, kernel launches).
    double cpu_util_during_gpu = 0.15;
    /// CPU utilization while idle / waiting for the agent.
    double idle_cpu_util = 0.05;
};

struct FrameResult {
    std::size_t iteration = 0;
    double start_time_s = 0.0;
    /// Queueing delay charged to this frame before execution began (serving
    /// runtime); 0 for the classic one-frame-at-a-time experiment loop.
    double queue_wait_s = 0.0;
    /// Device-side execution latency (stage1 + stage2 + decision overhead).
    double latency_s = 0.0;
    double stage1_s = 0.0;
    double stage2_s = 0.0;
    int proposals_raw = 0;
    int proposals_used = 0;
    double cpu_temp = 0.0; // at frame end
    double gpu_temp = 0.0;
    std::size_t cpu_level_stage1 = 0;
    std::size_t gpu_level_stage1 = 0;
    std::size_t cpu_level_stage2 = 0;
    std::size_t gpu_level_stage2 = 0;
    double energy_j = 0.0;
    bool throttled = false;
    double constraint_s = 0.0;

    /// Queue wait + execution: what a client (and the governor's reward)
    /// experiences end to end.
    [[nodiscard]] double e2e_latency_s() const noexcept { return queue_wait_s + latency_s; }
};

class InferenceEngine final : private platform::AdvanceListener {
public:
    /// Registers the engine as `device`'s advance listener for its lifetime
    /// (one engine per device).
    InferenceEngine(platform::EdgeDevice& device, EngineConfig config = {});
    ~InferenceEngine() override;
    InferenceEngine(const InferenceEngine&) = delete;
    InferenceEngine& operator=(const InferenceEngine&) = delete;

    /// Execute one frame under the given governor and latency constraint.
    /// `queue_wait_s` is delay already suffered before execution (serving
    /// queues): it counts against the constraint in the governor's
    /// observations (elapsed time) and reward (end-to-end latency), exactly
    /// as a deadline-bound client would account it.
    FrameResult run_frame(const detector::DetectorModel& model,
                          const workload::FrameSample& frame, governors::Governor& governor,
                          double latency_constraint_s, std::size_t iteration,
                          double queue_wait_s = 0.0);

    /// Advance the device through an idle gap (no request to serve): the CPU
    /// idles, the GPU is off, temperatures decay and timer-driven governors
    /// keep receiving their kernel ticks -- idle periods are when a heat-
    /// soaked device recovers headroom, so they must be simulated, not
    /// skipped.
    void run_idle(double duration_s, governors::Governor& governor);

    /// Forget cross-frame state (last latency, tick phase); used between the
    /// pre-training and measured phases of an experiment.
    void reset();

    [[nodiscard]] double last_frame_latency_s() const noexcept { return last_latency_; }
    [[nodiscard]] const EngineConfig& config() const noexcept { return cfg_; }

private:
    // --- platform::AdvanceListener (tick delivery + throttle observation) --
    [[nodiscard]] double next_event_s() const override;
    void on_event(double now_s, double cpu_util, double gpu_util) override;
    void on_throttle(double now_s, bool cpu_engaged, bool gpu_engaged) override;

    /// Bind the governor for the current run_frame/run_idle scope and lazily
    /// initialise the tick phase.
    void bind(governors::Governor& governor);

    [[nodiscard]] governors::Observation make_observation(std::size_t iteration,
                                                          double constraint_s,
                                                          double elapsed_s, int proposals,
                                                          double queue_wait_s) const;
    void apply(const governors::LevelRequest& request);
    void charge_decision_overhead();
    void execute_cpu_work(double ops);
    void execute_gpu_work(double ops, double bytes);

    platform::EdgeDevice& device_;
    EngineConfig cfg_;
    governors::Governor* gov_ = nullptr;
    double last_latency_ = 0.0;
    double next_tick_due_ = 0.0;
    bool tick_initialized_ = false;
    bool frame_saw_throttle_ = false;
};

} // namespace lotus::runtime
