#pragma once
// ExperimentRunner: the harness behind every figure and table.
//
// One run = one (device, detector, governor) triple executed over a domain
// schedule (dataset + latency constraint per segment) and an ambient
// profile, for a configured number of iterations. An optional pre-training
// phase runs the governor on the first segment without recording -- the
// paper trains its agents for 10,000 iterations (Sec. 4.4.1) before the
// comparisons; the device is reset to a cold start afterwards while the
// agent keeps its learned weights.

#include <cstdint>
#include <functional>
#include <memory>

#include "detector/model.hpp"
#include "platform/device.hpp"
#include "runtime/trace.hpp"
#include "workload/dataset.hpp"
#include "workload/environment.hpp"

namespace lotus::runtime {

struct ExperimentConfig {
    platform::DeviceSpec device_spec;
    detector::DetectorKind detector = detector::DetectorKind::faster_rcnn;
    workload::DomainSchedule schedule;
    workload::AmbientProfile ambient;
    std::size_t iterations = 3000;
    std::size_t pretrain_iterations = 0;
    std::uint64_t seed = 42;
    EngineConfig engine{};
    /// Optional transform applied to every sampled frame before execution.
    /// Probe scenarios (e.g. the Fig. 2 proposal sweep) use it to pin frame
    /// properties that are normally drawn from the dataset stream.
    std::function<void(workload::FrameSample&, std::size_t iteration)> frame_hook;
};

class ExperimentRunner {
public:
    explicit ExperimentRunner(ExperimentConfig config);

    /// Execute the experiment under the given governor. Each call constructs
    /// a fresh device, engine and frame stream (cold start); the governor
    /// keeps whatever state it accumulated (call with a fresh governor for
    /// independent runs). The method is const and touches no shared state,
    /// so one runner -- or many runners -- can execute episodes from
    /// concurrent threads as long as each thread brings its own governor.
    [[nodiscard]] Trace run(governors::Governor& governor) const;

    [[nodiscard]] const ExperimentConfig& config() const noexcept { return config_; }

private:
    ExperimentConfig config_;
};

/// Convenience: the static-environment single-dataset configuration used by
/// Figs. 4-6 and Tables 1-2.
[[nodiscard]] ExperimentConfig static_experiment(platform::DeviceSpec device_spec,
                                                 detector::DetectorKind detector,
                                                 const std::string& dataset_name,
                                                 std::size_t iterations,
                                                 std::size_t pretrain_iterations,
                                                 std::uint64_t seed = 42);

} // namespace lotus::runtime
