#include "runtime/trace.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/stats.hpp"

namespace lotus::runtime {

void Trace::add(TraceRow row) {
    rows_.push_back(std::move(row));
}

std::vector<double> Trace::latencies_ms() const {
    std::vector<double> out;
    out.reserve(rows_.size());
    for (const auto& r : rows_) out.push_back(r.latency_s * 1e3);
    return out;
}

std::vector<double> Trace::device_temps() const {
    std::vector<double> out;
    out.reserve(rows_.size());
    for (const auto& r : rows_) out.push_back(0.5 * (r.cpu_temp + r.gpu_temp));
    return out;
}

std::vector<double> Trace::cpu_temps() const {
    std::vector<double> out;
    out.reserve(rows_.size());
    for (const auto& r : rows_) out.push_back(r.cpu_temp);
    return out;
}

std::vector<double> Trace::gpu_temps() const {
    std::vector<double> out;
    out.reserve(rows_.size());
    for (const auto& r : rows_) out.push_back(r.gpu_temp);
    return out;
}

std::vector<double> Trace::proposals() const {
    std::vector<double> out;
    out.reserve(rows_.size());
    for (const auto& r : rows_) out.push_back(static_cast<double>(r.proposals));
    return out;
}

std::vector<double> Trace::stage2_ms() const {
    std::vector<double> out;
    out.reserve(rows_.size());
    for (const auto& r : rows_) out.push_back(r.stage2_s * 1e3);
    return out;
}

Summary Trace::summary() const {
    return summary(0, rows_.size());
}

Summary Trace::summary(std::size_t first, std::size_t last) const {
    last = std::min(last, rows_.size());
    if (first >= last) throw std::invalid_argument("Trace::summary: empty range");

    util::RunningStats latency;
    util::RunningStats cpu_temp;
    util::RunningStats gpu_temp;
    util::RunningStats device_temp;
    util::RunningStats proposals;
    double max_dev_temp = -1e300;
    std::size_t satisfied = 0;
    std::size_t throttled = 0;
    double energy = 0.0;
    double wall = 0.0;

    for (std::size_t i = first; i < last; ++i) {
        const auto& r = rows_[i];
        latency.add(r.latency_s);
        cpu_temp.add(r.cpu_temp);
        gpu_temp.add(r.gpu_temp);
        const double dev = 0.5 * (r.cpu_temp + r.gpu_temp);
        device_temp.add(dev);
        max_dev_temp = std::max(max_dev_temp, dev);
        proposals.add(static_cast<double>(r.proposals));
        // "<= is satisfied": the same boundary rule as util::satisfaction_rate
        // and the serving layer's miss accounting.
        if (r.latency_s <= r.constraint_s) ++satisfied;
        if (r.throttled) ++throttled;
        energy += r.energy_j;
        wall += r.latency_s;
    }

    const auto n = last - first;
    Summary s;
    s.frames = n;
    s.mean_latency_s = latency.mean();
    s.std_latency_s = latency.stddev();
    s.satisfaction_rate = static_cast<double>(satisfied) / static_cast<double>(n);
    s.mean_cpu_temp = cpu_temp.mean();
    s.mean_gpu_temp = gpu_temp.mean();
    s.mean_device_temp = device_temp.mean();
    s.max_device_temp = max_dev_temp;
    s.throttled_fraction = static_cast<double>(throttled) / static_cast<double>(n);
    s.mean_power_w = wall > 0.0 ? energy / wall : 0.0;
    s.mean_proposals = proposals.mean();
    return s;
}

void Trace::write_csv(const std::string& path) const {
    util::CsvWriter csv(path, {"iteration", "start_time_s", "latency_ms", "stage1_ms",
                               "stage2_ms", "proposals", "cpu_temp", "gpu_temp", "cpu_level",
                               "gpu_level", "constraint_ms", "throttled", "energy_j",
                               "ambient_c", "dataset"});
    for (const auto& r : rows_) {
        csv.row(std::vector<std::string>{
            std::to_string(r.iteration),
            util::format_double(r.start_time_s, 4),
            util::format_double(r.latency_s * 1e3, 3),
            util::format_double(r.stage1_s * 1e3, 3),
            util::format_double(r.stage2_s * 1e3, 3),
            std::to_string(r.proposals),
            util::format_double(r.cpu_temp, 3),
            util::format_double(r.gpu_temp, 3),
            std::to_string(r.cpu_level),
            std::to_string(r.gpu_level),
            util::format_double(r.constraint_s * 1e3, 3),
            r.throttled ? "1" : "0",
            util::format_double(r.energy_j, 4),
            util::format_double(r.ambient_c, 2),
            r.dataset,
        });
    }
}

} // namespace lotus::runtime
