#pragma once
// Per-iteration experiment traces and their paper-style summaries.
//
// A Trace is the raw material of every figure and table: the latency series
// of Figs. 4-7, the temperature series (the paper plots the average of CPU
// and GPU temperature), and the l-bar / sigma_l / R_L columns of Tables 1-2.

#include <cstddef>
#include <string>
#include <vector>

#include "runtime/engine.hpp"

namespace lotus::runtime {

struct TraceRow {
    std::size_t iteration = 0;
    double start_time_s = 0.0;
    double latency_s = 0.0;
    double stage1_s = 0.0;
    double stage2_s = 0.0;
    int proposals = 0;
    double cpu_temp = 0.0;
    double gpu_temp = 0.0;
    std::size_t cpu_level = 0;
    std::size_t gpu_level = 0;
    double constraint_s = 0.0;
    bool throttled = false;
    double energy_j = 0.0;
    double ambient_c = 0.0;
    std::string dataset;
};

/// Aggregates reported in the paper's tables (plus a few extras used by
/// EXPERIMENTS.md and the examples).
struct Summary {
    std::size_t frames = 0;
    double mean_latency_s = 0.0;
    double std_latency_s = 0.0;
    /// Fraction of frames with latency < constraint (R_L).
    double satisfaction_rate = 0.0;
    double mean_cpu_temp = 0.0;
    double mean_gpu_temp = 0.0;
    /// Mean of the per-frame (CPU+GPU)/2 temperature -- the "device
    /// temperature" plotted in Figs. 4-7.
    double mean_device_temp = 0.0;
    double max_device_temp = 0.0;
    double throttled_fraction = 0.0;
    double mean_power_w = 0.0;
    double mean_proposals = 0.0;
};

class Trace {
public:
    void add(TraceRow row);
    void reserve(std::size_t n) { rows_.reserve(n); }

    [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }
    [[nodiscard]] bool empty() const noexcept { return rows_.empty(); }
    [[nodiscard]] const TraceRow& operator[](std::size_t i) const { return rows_[i]; }
    [[nodiscard]] const std::vector<TraceRow>& rows() const noexcept { return rows_; }

    // Column extraction (for charts and stats).
    [[nodiscard]] std::vector<double> latencies_ms() const;
    [[nodiscard]] std::vector<double> device_temps() const;
    [[nodiscard]] std::vector<double> cpu_temps() const;
    [[nodiscard]] std::vector<double> gpu_temps() const;
    [[nodiscard]] std::vector<double> proposals() const;
    [[nodiscard]] std::vector<double> stage2_ms() const;

    /// Summary over all rows (satisfaction uses each row's own constraint).
    [[nodiscard]] Summary summary() const;
    /// Summary over the half-open iteration range [first, last).
    [[nodiscard]] Summary summary(std::size_t first, std::size_t last) const;

    /// Dump all rows as CSV (for external re-plotting).
    void write_csv(const std::string& path) const;

private:
    std::vector<TraceRow> rows_;
};

} // namespace lotus::runtime
