#include "runtime/runner.hpp"

#include <map>
#include <stdexcept>

#include "telemetry/recorder.hpp"
#include "workload/presets.hpp"

namespace lotus::runtime {

namespace {

std::uint64_t stream_seed(std::uint64_t base, const std::string& dataset) {
    std::uint64_t h = base ^ 0x9e3779b97f4a7c15ULL;
    for (const char c : dataset) h = (h ^ static_cast<std::uint64_t>(c)) * 0x100000001b3ULL;
    return h;
}

} // namespace

ExperimentRunner::ExperimentRunner(ExperimentConfig config) : config_(std::move(config)) {
    if (config_.iterations == 0) {
        throw std::invalid_argument("ExperimentRunner: zero iterations");
    }
}

Trace ExperimentRunner::run(governors::Governor& governor) const {
    platform::EdgeDevice device(config_.device_spec);
    InferenceEngine engine(device, config_.engine);
    const auto model = detector::make_detector(config_.detector);

    // One frame stream per dataset, shared across pre-training and the
    // measured phase (streams are cheap; determinism comes from the seed).
    std::map<std::string, workload::FrameStream> streams;
    const auto stream_for = [&](const std::string& dataset) -> workload::FrameStream& {
        auto it = streams.find(dataset);
        if (it == streams.end()) {
            it = streams
                     .emplace(dataset,
                              workload::FrameStream(workload::dataset_by_name(dataset),
                                                    stream_seed(config_.seed, dataset)))
                     .first;
        }
        return it->second;
    };

    // --- pre-training phase (not recorded) ----------------------------------
    if (config_.pretrain_iterations > 0) {
        // Pretrain advances the clock and then rewinds it via reset();
        // recording it would break the trace's monotonic timeline.
        telemetry::SuspendScope no_telemetry;
        const auto& seg0 = config_.schedule.at(0);
        device.set_ambient(config_.ambient.at(0));
        auto& stream = stream_for(seg0.dataset);
        for (std::size_t i = 0; i < config_.pretrain_iterations; ++i) {
            auto frame = stream.next();
            if (config_.frame_hook) config_.frame_hook(frame, i);
            engine.run_frame(model, frame, governor, seg0.latency_constraint_s, i);
        }
        // Cold restart for the measured phase: the device cools down and the
        // clock resets, but the governor keeps its learned state.
        device.reset();
        engine.reset();
    }

    // --- measured phase ------------------------------------------------------
    Trace trace;
    trace.reserve(config_.iterations);
    for (std::size_t i = 0; i < config_.iterations; ++i) {
        const auto& seg = config_.schedule.at(i);
        const double ambient = config_.ambient.at(i);
        device.set_ambient(ambient);
        auto& stream = stream_for(seg.dataset);
        auto frame = stream.next();
        if (config_.frame_hook) config_.frame_hook(frame, i);
        const auto result =
            engine.run_frame(model, frame, governor, seg.latency_constraint_s, i);

        TraceRow row;
        row.iteration = i;
        row.start_time_s = result.start_time_s;
        row.latency_s = result.latency_s;
        row.stage1_s = result.stage1_s;
        row.stage2_s = result.stage2_s;
        row.proposals = result.proposals_used;
        row.cpu_temp = result.cpu_temp;
        row.gpu_temp = result.gpu_temp;
        row.cpu_level = result.cpu_level_stage2;
        row.gpu_level = result.gpu_level_stage2;
        row.constraint_s = result.constraint_s;
        row.throttled = result.throttled;
        row.energy_j = result.energy_j;
        row.ambient_c = ambient;
        row.dataset = seg.dataset;
        trace.add(std::move(row));
    }
    return trace;
}

ExperimentConfig static_experiment(platform::DeviceSpec device_spec,
                                   detector::DetectorKind detector,
                                   const std::string& dataset_name, std::size_t iterations,
                                   std::size_t pretrain_iterations, std::uint64_t seed) {
    const double constraint =
        workload::latency_constraint_s(device_spec.name, detector, dataset_name);
    ExperimentConfig cfg{
        .device_spec = std::move(device_spec),
        .detector = detector,
        .schedule = workload::DomainSchedule::constant(dataset_name, constraint),
        .ambient = workload::AmbientProfile::constant(25.0),
        .iterations = iterations,
        .pretrain_iterations = pretrain_iterations,
        .seed = seed,
        .engine = {},
        .frame_hook = nullptr,
    };
    return cfg;
}

} // namespace lotus::runtime
