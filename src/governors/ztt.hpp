#pragma once
// zTT baseline (Kim et al., "zTT: Learning-based DVFS with Zero Thermal
// Throttling for Mobile Devices", MobiSys 2021) -- the state-of-the-art
// learning baseline the paper compares against (Sec. 5.1.1).
//
// Faithful structural properties kept here:
//  * joint CPU/GPU action space (M x N), like LOTUS;
//  * ONE decision per frame, taken at frame start -- zTT was designed for
//    per-frame workloads (games, one-stage vision) and cannot react to the
//    proposal count of a two-stage detector (this is precisely the gap
//    LOTUS exploits, Sec. 4.2);
//  * single-width DQN with one experience replay buffer;
//  * a *non-learned* cool-down: when a temperature exceeds the threshold,
//    it always selects a random frequency pair below the current one, so
//    the agent never learns hot-state behaviour (contrast with LOTUS's
//    epsilon_t decay, Sec. 4.3.5);
//  * fps-target utility + temperature-margin reward.

#include <cstdint>
#include <memory>
#include <string>

#include "governors/governor.hpp"
#include "rl/dqn.hpp"
#include "rl/replay.hpp"
#include "rl/schedule.hpp"
#include "util/rng.hpp"

namespace lotus::governors {

struct ZttConfig {
    std::vector<std::size_t> hidden = {64, 64};
    double gamma = 0.9;
    std::size_t batch_size = 32;
    std::size_t replay_capacity = 10'000;
    std::size_t min_replay = 64;
    std::size_t target_sync_every = 100;
    rl::AdamConfig adam{.lr = 0.01, .lr_min = 1e-4, .lr_total_steps = 10'000};

    double eps_start = 1.0;
    /// Converged exploration floor. Kept low: with a 48-64 joint action
    /// space, even a few percent of uniform-random frames dominates the
    /// latency variance a converged policy would otherwise achieve.
    double eps_end = 0.01;
    /// Per-frame multiplicative epsilon decay.
    double eps_decay_rate = 0.998;

    /// Temperature threshold for the cool-down and the reward margin.
    double t_thres_celsius = 80.0;
    /// Weight of the temperature term in the reward.
    double beta_temp = 1.0;

    /// Per-decision agent communication + inference overhead (Sec. 4.4.2).
    double decision_overhead_s = 0.00426;

    bool train_online = true;
    std::uint64_t seed = 11;
};

class ZttGovernor final : public Governor {
public:
    ZttGovernor(std::size_t cpu_levels, std::size_t gpu_levels, ZttConfig config);

    [[nodiscard]] std::string name() const override { return "zTT"; }
    LevelRequest on_frame_start(const Observation& obs) override;
    void on_frame_end(const FrameOutcome& outcome) override;
    [[nodiscard]] double decision_overhead_s() const override {
        return config_.decision_overhead_s;
    }

    /// zTT's published reward: normalized-fps utility (capped, with a bonus
    /// at target) plus a temperature term that is a small positive margin
    /// bonus when cool and a hard penalty on violation.
    [[nodiscard]] double reward(double latency_s, double constraint_s, double cpu_temp,
                                double gpu_temp) const noexcept;

    // Introspection for tests/benches.
    [[nodiscard]] const rl::DqnCore& dqn() const noexcept { return dqn_; }
    [[nodiscard]] double epsilon() const noexcept;
    [[nodiscard]] std::size_t cooldown_activations() const noexcept { return cooldowns_; }
    [[nodiscard]] std::size_t frames_seen() const noexcept { return frames_; }

private:
    [[nodiscard]] std::vector<double> encode(const Observation& obs) const;
    [[nodiscard]] int cooldown_action(std::size_t cpu_level, std::size_t gpu_level);

    ZttConfig config_;
    std::size_t cpu_levels_;
    std::size_t gpu_levels_;
    rl::DqnCore dqn_;
    rl::ReplayBuffer replay_;
    util::Rng rng_;

    // Pending transition: state/action taken at the last frame start.
    bool has_pending_ = false;
    std::vector<double> pending_state_;
    int pending_action_ = 0;
    double pending_reward_ = 0.0;
    bool pending_reward_ready_ = false;

    std::size_t frames_ = 0;
    std::size_t cooldowns_ = 0;
};

} // namespace lotus::governors
