#include "governors/linux_governors.hpp"

#include <algorithm>
#include <cmath>

namespace lotus::governors {

SchedutilPolicy::SchedutilPolicy(SchedutilParams params) : params_(params) {}

std::size_t SchedutilPolicy::decide(const TickObservation& tick) {
    if (!initialized_) {
        util_ = tick.cpu_util;
        level_ = tick.cpu_level;
        initialized_ = true;
    } else {
        util_ += params_.util_ewma * (tick.cpu_util - util_);
    }

    // Kernel formula: next_freq = headroom * util * max_freq, mapped onto
    // the ladder by picking the lowest level able to serve the target.
    const double target_frac = std::clamp(params_.headroom * util_, 0.0, 1.0);
    const auto max_level = tick.cpu_levels - 1;
    auto desired = static_cast<std::size_t>(
        std::ceil(target_frac * static_cast<double>(max_level)));
    desired = std::min(desired, max_level);

    if (desired > level_) {
        level_ = desired; // scale up immediately
    } else if (desired < level_) {
        // Rate-limited down-scaling, one step at a time (schedutil's
        // down_rate_limit_us behaviour).
        if (tick.now_s - last_down_s_ >= params_.down_rate_limit_s) {
            --level_;
            last_down_s_ = tick.now_s;
        }
    }
    level_ = std::min(level_, max_level);
    return level_;
}

SimpleOndemandPolicy::SimpleOndemandPolicy(SimpleOndemandParams params) : params_(params) {}

std::size_t SimpleOndemandPolicy::decide(const TickObservation& tick) {
    if (!initialized_) {
        busy_ = tick.gpu_util;
        initialized_ = true;
    } else {
        busy_ += params_.busy_ewma * (tick.gpu_util - busy_);
    }

    const auto max_level = tick.gpu_levels - 1;
    if (busy_ > params_.upthreshold) {
        return max_level; // devfreq simple_ondemand: jump straight to max
    }
    if (busy_ > params_.upthreshold - params_.downdifferential) {
        return tick.gpu_level; // hysteresis band: hold
    }
    // Proportional scale-down: pick the lowest level that still serves the
    // observed load with the up-threshold as headroom.
    const double target_frac =
        std::clamp(busy_ / params_.upthreshold, 0.0, 1.0);
    const auto desired = static_cast<std::size_t>(
        std::ceil(target_frac * static_cast<double>(max_level)));
    return std::min(desired, max_level);
}

DefaultGovernor::DefaultGovernor(std::string label, SchedutilParams cpu_params,
                                 SimpleOndemandParams gpu_params, double tick_interval_s)
    : label_(std::move(label)),
      cpu_policy_(cpu_params),
      gpu_policy_(gpu_params),
      tick_interval_s_(tick_interval_s) {}

DefaultGovernor DefaultGovernor::orin_nano() {
    // nvhost_podgov ramps aggressively under sustained load.
    SimpleOndemandParams gpu;
    gpu.upthreshold = 0.85;
    gpu.downdifferential = 0.05;
    return DefaultGovernor("default(schedutil+nvhost_podgov)", SchedutilParams{}, gpu);
}

DefaultGovernor DefaultGovernor::mi11_lite() {
    // msm-adreno-tz is slightly more conservative scaling up.
    SimpleOndemandParams gpu;
    gpu.upthreshold = 0.93;
    gpu.downdifferential = 0.07;
    gpu.busy_ewma = 0.4;
    return DefaultGovernor("default(schedutil+msm-adreno-tz)", SchedutilParams{}, gpu);
}

LevelRequest DefaultGovernor::on_tick(const TickObservation& tick) {
    const auto cpu = cpu_policy_.decide(tick);
    const auto gpu = gpu_policy_.decide(tick);
    if (cpu == tick.cpu_level && gpu == tick.gpu_level) return LevelRequest::none();
    return LevelRequest::set(cpu, gpu);
}

OndemandPolicy::OndemandPolicy(OndemandParams params) : params_(params) {}

std::size_t OndemandPolicy::decide(const TickObservation& tick) {
    if (!initialized_) {
        level_ = tick.cpu_level;
        initialized_ = true;
    }
    const auto max_level = tick.cpu_levels - 1;
    if (tick.cpu_util > params_.up_threshold) {
        level_ = max_level; // ondemand's signature: jump straight to max
        hold_ticks_ = params_.sampling_down_factor;
        return level_;
    }
    if (hold_ticks_ > 0) {
        --hold_ticks_;
        return level_;
    }
    // Below threshold and past the hold window: proportional scale-down with
    // the up-threshold as headroom.
    const double target_frac = std::clamp(tick.cpu_util / params_.up_threshold, 0.0, 1.0);
    const auto desired = static_cast<std::size_t>(
        std::ceil(target_frac * static_cast<double>(max_level)));
    level_ = std::min(desired, max_level);
    return level_;
}

ConservativePolicy::ConservativePolicy(ConservativeParams params) : params_(params) {}

std::size_t ConservativePolicy::decide(const TickObservation& tick) {
    if (!initialized_) {
        level_ = tick.cpu_level;
        initialized_ = true;
    }
    const auto max_level = tick.cpu_levels - 1;
    if (tick.cpu_util > params_.up_threshold && level_ < max_level) {
        ++level_; // one step at a time, by design
    } else if (tick.cpu_util < params_.down_threshold && level_ > 0) {
        --level_;
    }
    return level_;
}

KernelGovernor::KernelGovernor(std::string label, CpuPolicyKind cpu_kind,
                               SimpleOndemandParams gpu_params, double tick_interval_s)
    : label_(std::move(label)),
      cpu_kind_(cpu_kind),
      gpu_policy_(gpu_params),
      tick_interval_s_(tick_interval_s) {}

LevelRequest KernelGovernor::on_tick(const TickObservation& tick) {
    std::size_t cpu = tick.cpu_level;
    switch (cpu_kind_) {
        case CpuPolicyKind::schedutil: cpu = schedutil_.decide(tick); break;
        case CpuPolicyKind::ondemand: cpu = ondemand_.decide(tick); break;
        case CpuPolicyKind::conservative: cpu = conservative_.decide(tick); break;
    }
    const auto gpu = gpu_policy_.decide(tick);
    if (cpu == tick.cpu_level && gpu == tick.gpu_level) return LevelRequest::none();
    return LevelRequest::set(cpu, gpu);
}

FixedGovernor::FixedGovernor(std::size_t cpu_level, std::size_t gpu_level)
    : cpu_level_(cpu_level), gpu_level_(gpu_level) {}

LevelRequest FixedGovernor::on_frame_start(const Observation& obs) {
    return LevelRequest::set(std::min(cpu_level_, obs.cpu_levels - 1),
                             std::min(gpu_level_, obs.gpu_levels - 1));
}

RandomGovernor::RandomGovernor(std::uint64_t seed) : rng_(seed) {}

LevelRequest RandomGovernor::on_frame_start(const Observation& obs) {
    const auto cpu = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(obs.cpu_levels) - 1));
    const auto gpu = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(obs.gpu_levels) - 1));
    return LevelRequest::set(cpu, gpu);
}

} // namespace lotus::governors
