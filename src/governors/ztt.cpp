#include "governors/ztt.hpp"

#include <algorithm>
#include <cmath>

namespace lotus::governors {

namespace {

rl::MlpConfig make_net_config(std::size_t inputs, std::size_t actions, const ZttConfig& cfg) {
    rl::MlpConfig net;
    net.dims.push_back(inputs);
    for (const auto h : cfg.hidden) net.dims.push_back(h);
    net.dims.push_back(actions);
    net.slim_input = false; // zTT has no slimmable design
    net.slim_output = false;
    net.seed = cfg.seed;
    return net;
}

rl::DqnConfig make_dqn_config(const ZttConfig& cfg) {
    rl::DqnConfig dqn;
    dqn.gamma = cfg.gamma;
    dqn.batch_size = cfg.batch_size;
    dqn.target_sync_every = cfg.target_sync_every;
    dqn.adam = cfg.adam;
    return dqn;
}

} // namespace

ZttGovernor::ZttGovernor(std::size_t cpu_levels, std::size_t gpu_levels, ZttConfig config)
    : config_(config),
      cpu_levels_(cpu_levels),
      gpu_levels_(gpu_levels),
      dqn_(make_net_config(6, cpu_levels * gpu_levels, config), make_dqn_config(config)),
      replay_(config.replay_capacity),
      rng_(config.seed ^ 0x5A5A5A5AULL) {}

std::vector<double> ZttGovernor::encode(const Observation& obs) const {
    const double fps = obs.last_frame_latency_s > 0.0 ? 1.0 / obs.last_frame_latency_s : 0.0;
    const double target_fps = 1.0 / obs.latency_constraint_s;
    // Temperatures relative to the threshold (same rationale as LOTUS's
    // encoder: keeps the decision band equally resolved across devices).
    return {
        static_cast<double>(obs.cpu_level) / static_cast<double>(cpu_levels_ - 1),
        static_cast<double>(obs.gpu_level) / static_cast<double>(gpu_levels_ - 1),
        (obs.cpu_temp - config_.t_thres_celsius) / 15.0,
        (obs.gpu_temp - config_.t_thres_celsius) / 15.0,
        std::min(fps / target_fps, 2.0),
        obs.throttled ? 1.0 : 0.0,
    };
}

int ZttGovernor::cooldown_action(std::size_t cpu_level, std::size_t gpu_level) {
    // zTT's cool-down: a random frequency pair strictly below the current
    // one (component-wise where possible).
    const auto lower = [&](std::size_t level) {
        if (level == 0) return std::size_t{0};
        return static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(level) - 1));
    };
    const auto cpu = lower(cpu_level);
    const auto gpu = lower(gpu_level);
    return static_cast<int>(cpu * gpu_levels_ + gpu);
}

double ZttGovernor::epsilon() const noexcept {
    const double eps = config_.eps_end +
                       (config_.eps_start - config_.eps_end) *
                           std::pow(config_.eps_decay_rate, static_cast<double>(frames_));
    return eps;
}

LevelRequest ZttGovernor::on_frame_start(const Observation& obs) {
    const auto state = encode(obs);

    // Finalize the previous frame's transition now that its successor state
    // is observed.
    if (has_pending_ && pending_reward_ready_) {
        rl::Transition t;
        t.state = pending_state_;
        t.action = pending_action_;
        t.reward = pending_reward_;
        t.next_state = state;
        t.width_state = 1.0;
        t.width_next = 1.0;
        replay_.push(std::move(t));
        has_pending_ = false;
        pending_reward_ready_ = false;
    }

    int action = 0;
    const bool overheated =
        obs.cpu_temp > config_.t_thres_celsius || obs.gpu_temp > config_.t_thres_celsius;
    if (overheated) {
        // Non-learned cool-down: always random-lower when hot.
        action = cooldown_action(obs.cpu_level, obs.gpu_level);
        ++cooldowns_;
    } else {
        action = dqn_.act(state, 1.0, epsilon(), rng_);
    }

    pending_state_ = state;
    pending_action_ = action;
    has_pending_ = true;

    const auto cpu = static_cast<std::size_t>(action) / gpu_levels_;
    const auto gpu = static_cast<std::size_t>(action) % gpu_levels_;
    return LevelRequest::set(cpu, gpu);
}

double ZttGovernor::reward(double latency_s, double constraint_s, double cpu_temp,
                           double gpu_temp) const noexcept {
    const double fps = latency_s > 0.0 ? 1.0 / latency_s : 0.0;
    const double target_fps = 1.0 / constraint_s;
    // QoE utility: linear up to the target, a bonus for meeting it, and a
    // mildly increasing return for headroom beyond it (capped at +30%).
    double utility = std::min(fps / target_fps, 1.3);
    if (fps >= target_fps) utility += 0.3;

    double temp_term = 0.0;
    const double margin =
        std::min(config_.t_thres_celsius - cpu_temp, config_.t_thres_celsius - gpu_temp);
    if (margin >= 0.0) {
        temp_term = 0.1 * std::min(margin, 10.0) / 10.0;
    } else {
        temp_term = -2.0;
    }
    return utility + config_.beta_temp * temp_term;
}

void ZttGovernor::on_frame_end(const FrameOutcome& outcome) {
    ++frames_;
    if (!has_pending_) return;
    pending_reward_ =
        reward(outcome.latency_s, outcome.latency_constraint_s, outcome.cpu_temp,
               outcome.gpu_temp);
    pending_reward_ready_ = true;

    if (config_.train_online) {
        dqn_.train_step(replay_, rng_, config_.min_replay);
    }
}

} // namespace lotus::governors
