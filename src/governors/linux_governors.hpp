#pragma once
// The kernel-governor baseline family (Sec. 2 "Existing DVFS techniques" and
// Sec. 5.1.1 "Baselines").
//
// * SchedutilPolicy     -- Linux's utilization-driven CPU governor:
//                          f_next = headroom * util * f_max (EWMA-smoothed,
//                          fast up / slow down like the kernel's rate limits).
// * SimpleOndemandPolicy-- devfreq's GPU governor: jump to max above the
//                          up-threshold, proportionally scale down below it.
//                          With NVIDIA-ish thresholds it doubles for the
//                          Jetson's nvhost_podgov; with Qualcomm-ish ones it
//                          approximates msm-adreno-tz (Mi 11 Lite).
// * DefaultGovernor     -- the paper's "default" baseline: schedutil on the
//                          CPU + a devfreq policy on the GPU, both running on
//                          kernel ticks, application-agnostic.
// * FixedGovernor / RandomGovernor -- diagnostics and lower/upper anchors.

#include <cstdint>
#include <string>

#include "governors/governor.hpp"
#include "util/rng.hpp"

namespace lotus::governors {

struct SchedutilParams {
    /// Kernel applies a 25% headroom: target = 1.25 * util * f_max.
    double headroom = 1.25;
    /// EWMA coefficient for the utilization estimate (per tick).
    double util_ewma = 0.35;
    /// Minimum seconds between down-scaling decisions (kernel rate limit).
    double down_rate_limit_s = 0.1;
};

/// CPU-side utilization policy; produces a desired CPU level per tick.
class SchedutilPolicy {
public:
    explicit SchedutilPolicy(SchedutilParams params = {});

    [[nodiscard]] std::size_t decide(const TickObservation& tick);

    [[nodiscard]] double smoothed_util() const noexcept { return util_; }

private:
    SchedutilParams params_;
    double util_ = 0.0;
    double last_down_s_ = -1e9;
    std::size_t level_ = 0;
    bool initialized_ = false;
};

struct SimpleOndemandParams {
    /// Busy ratio above which the policy jumps straight to the max level.
    double upthreshold = 0.90;
    /// Hysteresis band below the up-threshold.
    double downdifferential = 0.05;
    /// EWMA coefficient for the busy estimate (per tick).
    double busy_ewma = 0.5;
};

/// GPU-side devfreq policy; produces a desired GPU level per tick.
class SimpleOndemandPolicy {
public:
    explicit SimpleOndemandPolicy(SimpleOndemandParams params = {});

    [[nodiscard]] std::size_t decide(const TickObservation& tick);

    [[nodiscard]] double smoothed_busy() const noexcept { return busy_; }

private:
    SimpleOndemandParams params_;
    double busy_ = 0.0;
    bool initialized_ = false;
};

/// The paper's "default" baseline: application-agnostic kernel governors for
/// both domains, acting only on kernel ticks.
class DefaultGovernor final : public Governor {
public:
    DefaultGovernor(std::string label, SchedutilParams cpu_params,
                    SimpleOndemandParams gpu_params, double tick_interval_s = 0.02);

    /// Jetson Orin Nano default: schedutil + nvhost_podgov-like devfreq.
    [[nodiscard]] static DefaultGovernor orin_nano();
    /// Mi 11 Lite default: schedutil + msm-adreno-tz-like devfreq.
    [[nodiscard]] static DefaultGovernor mi11_lite();

    [[nodiscard]] std::string name() const override { return label_; }
    [[nodiscard]] double tick_interval_s() const override { return tick_interval_s_; }
    LevelRequest on_tick(const TickObservation& tick) override;

private:
    std::string label_;
    SchedutilPolicy cpu_policy_;
    SimpleOndemandPolicy gpu_policy_;
    double tick_interval_s_;
};

struct OndemandParams {
    /// Busy percentage above which the governor jumps to max frequency.
    double up_threshold = 0.80;
    /// Sampling-down factor: hold this many ticks before scaling down.
    int sampling_down_factor = 5;
};

/// The classic Linux `ondemand` CPU governor [Pallipadi & Starikovskiy '06],
/// referenced by the paper's related-work section: jump straight to max when
/// utilization crosses the up-threshold, step down proportionally when load
/// subsides (rate-limited by the sampling-down factor).
class OndemandPolicy {
public:
    explicit OndemandPolicy(OndemandParams params = {});

    [[nodiscard]] std::size_t decide(const TickObservation& tick);

private:
    OndemandParams params_;
    int hold_ticks_ = 0;
    std::size_t level_ = 0;
    bool initialized_ = false;
};

struct ConservativeParams {
    double up_threshold = 0.80;
    double down_threshold = 0.20;
};

/// The Linux `conservative` CPU governor: like ondemand but moves one
/// frequency step at a time in both directions (designed for battery-powered
/// devices; included for governor-family completeness and tests).
class ConservativePolicy {
public:
    explicit ConservativePolicy(ConservativeParams params = {});

    [[nodiscard]] std::size_t decide(const TickObservation& tick);

private:
    ConservativeParams params_;
    std::size_t level_ = 0;
    bool initialized_ = false;
};

/// CPU policy variants selectable for the composite kernel governor.
enum class CpuPolicyKind { schedutil, ondemand, conservative };

/// Composite kernel governor with a selectable CPU policy and a devfreq GPU
/// policy -- generalises DefaultGovernor for governor-family studies.
class KernelGovernor final : public Governor {
public:
    KernelGovernor(std::string label, CpuPolicyKind cpu_kind,
                   SimpleOndemandParams gpu_params, double tick_interval_s = 0.02);

    [[nodiscard]] std::string name() const override { return label_; }
    [[nodiscard]] double tick_interval_s() const override { return tick_interval_s_; }
    LevelRequest on_tick(const TickObservation& tick) override;

private:
    std::string label_;
    CpuPolicyKind cpu_kind_;
    SchedutilPolicy schedutil_;
    OndemandPolicy ondemand_;
    ConservativePolicy conservative_;
    SimpleOndemandPolicy gpu_policy_;
    double tick_interval_s_;
};

/// Pins both domains to fixed levels (profiling runs, Fig. 2).
class FixedGovernor final : public Governor {
public:
    FixedGovernor(std::size_t cpu_level, std::size_t gpu_level);

    [[nodiscard]] std::string name() const override { return "fixed"; }
    LevelRequest on_frame_start(const Observation& obs) override;

private:
    std::size_t cpu_level_;
    std::size_t gpu_level_;
};

/// Uniformly random levels each frame (exploration sanity baseline).
class RandomGovernor final : public Governor {
public:
    explicit RandomGovernor(std::uint64_t seed);

    [[nodiscard]] std::string name() const override { return "random"; }
    LevelRequest on_frame_start(const Observation& obs) override;

private:
    util::Rng rng_;
};

/// Linux `performance` governor: both domains pinned to the top level.
class PerformanceGovernor final : public Governor {
public:
    [[nodiscard]] std::string name() const override { return "performance"; }
    LevelRequest on_frame_start(const Observation& obs) override {
        return LevelRequest::set(obs.cpu_levels - 1, obs.gpu_levels - 1);
    }
};

/// Linux `powersave` governor: both domains pinned to the bottom level.
class PowersaveGovernor final : public Governor {
public:
    [[nodiscard]] std::string name() const override { return "powersave"; }
    LevelRequest on_frame_start(const Observation&) override {
        return LevelRequest::set(0, 0);
    }
};

} // namespace lotus::governors
