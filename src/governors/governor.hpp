#pragma once
// Governor interface.
//
// A governor decides the CPU/GPU OPP levels of the device. Two kinds of
// hooks mirror how real systems work:
//
//  * Frame-grained decision points -- on_frame_start / on_post_rpn /
//    on_frame_end -- are the application-aware hooks the paper's agents use
//    (zTT acts once per frame; LOTUS acts at both decision points,
//    Sec. 4.2-4.3). on_post_rpn is only invoked for two-stage detectors.
//
//  * Kernel-grained on_tick, invoked every tick_interval_s of simulated time
//    with the observed domain utilizations -- this is how the Linux
//    governors (schedutil, simple_ondemand, ...) actually run: on a timer,
//    application-agnostic.
//
// Tick delivery contract (enforced by the single time-advance authority,
// EdgeDevice::advance, with the InferenceEngine as its AdvanceListener):
//  * ticks fire at the governor's exact cadence -- now_s is a precise
//    multiple of tick_interval_s past the first bind -- for ALL simulated
//    time: work slices, idle gaps (run_idle), agent decision overhead and
//    DVFS-transition stalls alike;
//  * the tick count over a span of simulated time is therefore invariant to
//    how the engine slices its work integration (EngineConfig::max_slice_s);
//  * a level request returned from on_tick takes effect immediately
//    (mid-stage); its DVFS stall is charged on top of the in-flight slice,
//    and ticks keep firing during the stall;
//  * observations carry the temperatures evaluated at the exact tick
//    instant -- the thermal stepper splits its integration segments at tick
//    deadlines and throttle-poll instants.
//
// Agent-based governors also declare a per-decision communication overhead
// (the paper's client <-> agent socket messages plus the Q-network forward
// pass, Sec. 4.4.2); the engine charges it to the frame latency.

#include <cstddef>
#include <string>

namespace lotus::governors {

/// Snapshot available at a frame-grained decision point.
struct Observation {
    std::size_t iteration = 0;
    double now_s = 0.0;
    double cpu_temp = 0.0;
    double gpu_temp = 0.0;
    /// Granted (throttle-clamped) levels.
    std::size_t cpu_level = 0;
    std::size_t gpu_level = 0;
    std::size_t cpu_levels = 1;
    std::size_t gpu_levels = 1;
    double latency_constraint_s = 0.0;
    /// End-to-end latency of the previous frame, queueing delay included
    /// (0 before the first frame completes).
    double last_frame_latency_s = 0.0;
    /// Time already counted against the current frame's deadline: the queue
    /// wait at the frame-start decision, queue wait + stage-1 execution at
    /// the post-RPN decision.
    double elapsed_in_frame_s = 0.0;
    /// Queueing delay the current frame suffered before execution started
    /// (serving runtime; 0 in the one-frame-at-a-time experiment loop).
    double queue_wait_s = 0.0;
    /// RPN proposal count; -1 at the frame-start decision (not yet known).
    int proposals = -1;
    bool throttled = false;
};

/// Snapshot for the kernel-timer hook.
struct TickObservation {
    double now_s = 0.0;
    double dt_s = 0.0;
    double cpu_util = 0.0;
    double gpu_util = 0.0;
    double cpu_temp = 0.0;
    double gpu_temp = 0.0;
    std::size_t cpu_level = 0;
    std::size_t gpu_level = 0;
    std::size_t cpu_levels = 1;
    std::size_t gpu_levels = 1;
};

/// A (possibly absent) joint frequency request.
struct LevelRequest {
    bool has_request = false;
    std::size_t cpu = 0;
    std::size_t gpu = 0;

    [[nodiscard]] static LevelRequest none() noexcept { return {}; }
    [[nodiscard]] static LevelRequest set(std::size_t cpu_level, std::size_t gpu_level) noexcept {
        return {true, cpu_level, gpu_level};
    }
};

/// Everything known once a frame finishes; learning governors compute their
/// reward and train here.
struct FrameOutcome {
    std::size_t iteration = 0;
    /// Simulated time at frame completion (when this outcome is delivered);
    /// lets learning governors timestamp their telemetry on the sim clock.
    double now_s = 0.0;
    /// End-to-end latency: queue wait + execution. This is what learning
    /// governors score against the constraint -- under a serving queue the
    /// deadline is burnt by waiting just as surely as by slow inference.
    double latency_s = 0.0;
    /// Queueing delay component of latency_s (0 outside the serving runtime).
    double queue_wait_s = 0.0;
    double stage1_latency_s = 0.0;
    double stage2_latency_s = 0.0;
    int proposals = 0;
    double cpu_temp = 0.0;
    double gpu_temp = 0.0;
    double latency_constraint_s = 0.0;
    bool throttled = false;
    double energy_j = 0.0;
};

class Governor {
public:
    virtual ~Governor() = default;

    [[nodiscard]] virtual std::string name() const = 0;

    /// Decision at the start of a frame (proposals unknown).
    virtual LevelRequest on_frame_start(const Observation&) { return LevelRequest::none(); }

    /// Decision after the RPN emitted its proposals (two-stage models only).
    virtual LevelRequest on_post_rpn(const Observation&) { return LevelRequest::none(); }

    /// Frame completed; learning hooks live here.
    virtual void on_frame_end(const FrameOutcome&) {}

    /// Kernel-timer cadence; 0 disables ticks.
    [[nodiscard]] virtual double tick_interval_s() const { return 0.0; }

    virtual LevelRequest on_tick(const TickObservation&) { return LevelRequest::none(); }

    /// Communication + network-inference overhead charged per decision point.
    [[nodiscard]] virtual double decision_overhead_s() const { return 0.0; }
};

} // namespace lotus::governors
