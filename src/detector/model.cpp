#include "detector/model.hpp"

#include <algorithm>
#include <stdexcept>

namespace lotus::detector {

const char* to_string(DetectorKind kind) noexcept {
    switch (kind) {
        case DetectorKind::faster_rcnn: return "FasterRCNN";
        case DetectorKind::mask_rcnn: return "MaskRCNN";
        case DetectorKind::yolo_v5: return "YOLOv5";
    }
    return "unknown";
}

DetectorModel::DetectorModel(DetectorSpec spec) : spec_(std::move(spec)) {
    if (spec_.name.empty()) throw std::invalid_argument("DetectorModel: empty name");
    if (spec_.max_proposals <= 0) {
        throw std::invalid_argument("DetectorModel: max_proposals must be > 0");
    }
    if (spec_.keep_fraction < 0.0 || spec_.keep_fraction > 1.0) {
        throw std::invalid_argument("DetectorModel: keep_fraction out of [0,1]");
    }
}

int DetectorModel::clamp_proposals(int raw) const noexcept {
    return std::clamp(raw, 0, spec_.max_proposals);
}

std::vector<WorkItem> DetectorModel::stage1_components(double resolution_scale,
                                                       double complexity) const {
    if (resolution_scale <= 0.0) {
        throw std::invalid_argument("stage1_components: resolution_scale must be > 0");
    }
    // Pre-processing scales with pixel count; backbone/RPN scale with pixel
    // count and the per-frame complexity factor (anchor density, scene
    // texture -> slightly image-dependent kernel times).
    return {
        spec_.preprocess.scaled(resolution_scale),
        spec_.backbone.scaled(resolution_scale * complexity),
        spec_.rpn.scaled(resolution_scale * complexity),
    };
}

std::vector<WorkItem> DetectorModel::stage2_components(int proposals) const {
    const int p = clamp_proposals(proposals);
    const double kept = spec_.keep_fraction * static_cast<double>(p);
    return {
        spec_.roi_base + spec_.roi_per_proposal.scaled(static_cast<double>(p)),
        spec_.post_base + spec_.post_per_kept.scaled(kept),
    };
}

WorkItem DetectorModel::stage1_total(double resolution_scale, double complexity) const {
    WorkItem total;
    for (const auto& c : stage1_components(resolution_scale, complexity)) total += c;
    return total;
}

WorkItem DetectorModel::stage2_total(int proposals) const {
    WorkItem total;
    for (const auto& c : stage2_components(proposals)) total += c;
    return total;
}

// ---------------------------------------------------------------------------
// Model zoo.
//
// Reference throughputs used for calibration (Jetson Orin Nano at max OPP):
//   cpu: 1.5104 GHz * 24 ops/cycle  = 36.25 Gops/s
//   gpu: 624.75 MHz * 2048 ops/cycle = 1.279 Tops/s
//   mem: 68 GB/s
// Targets at the reference resolution (KITTI) and max OPP:
//   FasterRCNN: stage1 ~ 260 ms (pre 12, backbone 210, rpn 38),
//               stage2 ~ 21 ms + 0.15 ms/proposal  (Fig. 2: ~110 ms @ 600;
//               the paper quotes up to ~160 ms stage-2 swing at a fixed
//               mid-ladder frequency, Sec. 4.2)
//   MaskRCNN:   stage1 ~ 280 ms, stage2 ~ 28 ms + 0.50 ms/proposal
//               (Fig. 2: ~180 ms @ 300)
//   YOLOv5s:    ~ 115 ms fixed.
// ---------------------------------------------------------------------------

DetectorModel faster_rcnn_r50() {
    DetectorSpec spec;
    spec.name = "faster_rcnn_r50_fpn";
    spec.kind = DetectorKind::faster_rcnn;
    spec.preprocess = {4.0e8, 0.0, 5.0e7};        // ~11 ms CPU + 0.7 ms mem
    spec.backbone = {2.0e7, 2.18e11, 2.66e9};     // ~170 ms GPU + 39 ms mem
    spec.rpn = {1.0e7, 3.84e10, 5.4e8};           // ~30 ms GPU + 8 ms mem
    spec.roi_base = {2.0e7, 1.53e10, 2.0e8};      // ~12 ms GPU + 3 ms mem
    spec.roi_per_proposal = {2.0e5, 1.7e8, 8.0e5}; // ~0.15 ms/proposal
    spec.post_base = {2.2e8, 0.0, 1.0e7};         // ~6 ms CPU
    spec.post_per_kept = {7.0e5, 0.0, 2.0e4};     // ~0.02 ms/kept
    spec.keep_fraction = 0.3;
    spec.max_proposals = 620;
    return DetectorModel(spec);
}

DetectorModel mask_rcnn_r50() {
    DetectorSpec spec;
    spec.name = "mask_rcnn_r50_fpn";
    spec.kind = DetectorKind::mask_rcnn;
    spec.preprocess = {4.2e8, 0.0, 5.5e7};
    spec.backbone = {2.0e7, 2.36e11, 2.80e9};     // ~184 ms GPU + 41 ms mem
    spec.rpn = {1.0e7, 3.84e10, 5.4e8};
    spec.roi_base = {2.5e7, 2.05e10, 3.0e8};      // ~16 ms GPU + 4.4 ms mem
    spec.roi_per_proposal = {3.0e5, 6.0e8, 2.5e6}; // ~0.51 ms/proposal (mask head)
    spec.post_base = {2.6e8, 0.0, 2.0e7};
    spec.post_per_kept = {1.4e6, 0.0, 8.0e4};
    spec.keep_fraction = 0.3;
    spec.max_proposals = 300;
    return DetectorModel(spec);
}

DetectorModel yolov5s() {
    DetectorSpec spec;
    spec.name = "yolov5s";
    spec.kind = DetectorKind::yolo_v5;
    spec.preprocess = {3.0e8, 0.0, 4.0e7};        // ~8 ms CPU
    spec.backbone = {1.5e7, 1.09e11, 1.20e9};     // ~85 ms GPU + 18 ms mem
    spec.rpn = {};                                // no RPN
    spec.roi_base = {};                           // no RoI stage
    spec.roi_per_proposal = {};
    spec.post_base = {1.8e8, 0.0, 8.0e6};         // NMS ~5 ms CPU
    spec.post_per_kept = {};
    spec.keep_fraction = 0.0;
    // One-stage: the "proposal count" is the fixed anchor grid; per-proposal
    // work is zero so the value never influences latency.
    spec.max_proposals = 25200; // YOLOv5 @ 640: 3 scales * 80*80+40*40+20*20 * 3
    return DetectorModel(spec);
}

DetectorModel make_detector(DetectorKind kind) {
    switch (kind) {
        case DetectorKind::faster_rcnn: return faster_rcnn_r50();
        case DetectorKind::mask_rcnn: return mask_rcnn_r50();
        case DetectorKind::yolo_v5: return yolov5s();
    }
    throw std::invalid_argument("make_detector: unknown kind");
}

} // namespace lotus::detector
