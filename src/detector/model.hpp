#pragma once
// Detector pipeline models (Sec. 4.1.2 of the paper).
//
// A two-stage detector decomposes into:
//   stage 1: pre-processing (CPU) -> backbone (GPU) -> RPN (GPU)
//   stage 2: RoI pooling + classifier (GPU, affine in #proposals)
//            (-> mask head for Mask R-CNN, also per-proposal)
//            -> post-processing (CPU, affine in #kept detections)
//
// One-stage detectors (YOLOv5) run a single fixed-cost network plus NMS:
// their per-frame work does not depend on image content, which is why their
// latency variation is negligible (Fig. 1).

#include <string>
#include <vector>

#include "detector/work.hpp"

namespace lotus::detector {

enum class DetectorKind { faster_rcnn, mask_rcnn, yolo_v5 };

[[nodiscard]] const char* to_string(DetectorKind kind) noexcept;

/// Component-level cost model of a detector. All costs are in abstract ops
/// at a reference input resolution; callers scale resolution-dependent parts
/// by the dataset's resolution factor.
struct DetectorSpec {
    std::string name;
    DetectorKind kind = DetectorKind::faster_rcnn;

    // --- stage 1 (resolution-dependent) ------------------------------------
    WorkItem preprocess;
    WorkItem backbone;
    WorkItem rpn;

    // --- stage 2 ------------------------------------------------------------
    WorkItem roi_base;         // fixed per frame
    WorkItem roi_per_proposal; // multiplied by #proposals
    WorkItem post_base;        // fixed per frame (CPU)
    WorkItem post_per_kept;    // multiplied by #kept detections (CPU)
    /// Fraction of proposals surviving to post-processing.
    double keep_fraction = 0.3;
    /// RPN keeps at most this many proposals (test-time top-N config).
    int max_proposals = 1000;

    [[nodiscard]] bool is_two_stage() const noexcept {
        return kind != DetectorKind::yolo_v5;
    }
};

class DetectorModel {
public:
    explicit DetectorModel(DetectorSpec spec);

    [[nodiscard]] const DetectorSpec& spec() const noexcept { return spec_; }
    [[nodiscard]] const std::string& name() const noexcept { return spec_.name; }
    [[nodiscard]] DetectorKind kind() const noexcept { return spec_.kind; }
    [[nodiscard]] bool is_two_stage() const noexcept { return spec_.is_two_stage(); }
    [[nodiscard]] int max_proposals() const noexcept { return spec_.max_proposals; }

    /// Clamp a raw RPN proposal count to the model's top-N configuration.
    [[nodiscard]] int clamp_proposals(int raw) const noexcept;

    /// Stage-1 components in execution order, scaled for resolution and
    /// per-frame complexity.
    [[nodiscard]] std::vector<WorkItem> stage1_components(double resolution_scale,
                                                          double complexity) const;

    /// Stage-2 components in execution order for the given proposal count.
    [[nodiscard]] std::vector<WorkItem> stage2_components(int proposals) const;

    /// Total stage work (sums of the component lists), for profiling.
    [[nodiscard]] WorkItem stage1_total(double resolution_scale, double complexity) const;
    [[nodiscard]] WorkItem stage2_total(int proposals) const;

private:
    DetectorSpec spec_;
};

/// Model zoo calibrated against the paper's profiling (see DESIGN.md
/// "Calibration constants"): stage 1 carries ~80% of fixed-frequency
/// latency; stage-2 latency is affine in the proposal count with the
/// Fig. 2 slopes (Mask R-CNN per-proposal cost >> Faster R-CNN's).
[[nodiscard]] DetectorModel faster_rcnn_r50();
[[nodiscard]] DetectorModel mask_rcnn_r50();
[[nodiscard]] DetectorModel yolov5s();

[[nodiscard]] DetectorModel make_detector(DetectorKind kind);

} // namespace lotus::detector
