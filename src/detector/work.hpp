#pragma once
// Abstract work model for detector pipeline components.
//
// A component's cost is expressed device-independently as
//   * cpu_ops   -- executed on the CPU cluster at cpu_throughput ops/s,
//   * gpu_ops   -- executed on the GPU at gpu_throughput ops/s,
//   * mem_bytes -- DRAM traffic served at the device memory bandwidth.
//
// Latency follows a serial roofline:
//   t = cpu_ops / thr_cpu  +  gpu_ops / thr_gpu  +  mem_bytes / bw
// The memory term does not scale with core frequency, which gives the
// realistic diminishing return of high OPP levels: pushing f_gpu up buys
// less and less latency while power still grows ~ f V^2. That convexity is
// the economic core of the DVFS trade-off LOTUS learns.

namespace lotus::detector {

struct WorkItem {
    double cpu_ops = 0.0;
    double gpu_ops = 0.0;
    double mem_bytes = 0.0;

    [[nodiscard]] WorkItem scaled(double factor) const noexcept {
        return {cpu_ops * factor, gpu_ops * factor, mem_bytes * factor};
    }

    WorkItem& operator+=(const WorkItem& o) noexcept {
        cpu_ops += o.cpu_ops;
        gpu_ops += o.gpu_ops;
        mem_bytes += o.mem_bytes;
        return *this;
    }

    friend WorkItem operator+(WorkItem a, const WorkItem& b) noexcept { return a += b; }

    [[nodiscard]] bool empty() const noexcept {
        return cpu_ops <= 0.0 && gpu_ops <= 0.0 && mem_bytes <= 0.0;
    }
};

/// Closed-form latency of a work item at fixed throughputs (no DVFS changes
/// mid-flight); the inference engine integrates incrementally instead, but
/// tests and profiling tools use this form.
[[nodiscard]] inline double latency_seconds(const WorkItem& w, double cpu_thr, double gpu_thr,
                                            double mem_bw) noexcept {
    double t = 0.0;
    if (w.cpu_ops > 0.0) t += w.cpu_ops / cpu_thr;
    if (w.gpu_ops > 0.0) t += w.gpu_ops / gpu_thr;
    if (w.mem_bytes > 0.0) t += w.mem_bytes / mem_bw;
    return t;
}

} // namespace lotus::detector
