#pragma once
// Pluggable result sinks for harness episodes.
//
// A ResultSink consumes the ordered EpisodeResults of one scenario and
// renders them somewhere: the paper-style summary table, the paper-style
// ASCII figure (temperature + latency traces with the throttling bound /
// latency constraint reference lines), raw per-episode CSV files, or
// machine-readable JSON (one document per scenario). Every sink understands
// both episode kinds -- classic experiment traces and serving ledgers -- so
// front ends compose sinks without caring which registry half a scenario
// came from; the free functions underneath are available for custom
// headings.

#include <string>
#include <vector>

#include "harness/harness.hpp"

namespace lotus::harness {

class ResultSink {
public:
    virtual ~ResultSink() = default;
    virtual void consume(const Scenario& scenario,
                         const std::vector<EpisodeResult>& results) = 0;
};

/// Paper-style quantitative table: l-bar / sigma_l / R_L / T_dev / P /
/// throttled%, with the paper's reference numbers when the arm has them.
void print_summary_table(const std::string& heading,
                         const std::vector<EpisodeResult>& results);

/// Serving-style quantitative table: per arm, an aggregate row plus one row
/// per stream -- served/shed counts, p50/p95/p99 end-to-end latency,
/// deadline-miss and shed rates, throughput, energy/request, peak temp.
void print_serving_table(const std::string& heading,
                         const std::vector<EpisodeResult>& results);

/// Fleet-style quantitative table: per arm, a fleet row, one row per device
/// and one per stream, plus the fleet-only columns (migrations,
/// load-balance skew).
void print_fleet_table(const std::string& heading,
                       const std::vector<EpisodeResult>& results);

/// Paper-style figure: device-temperature chart (with the throttling bound)
/// stacked above a latency chart (with the constraint / max SLO), one series
/// per episode. Serving episodes chart end-to-end latency per request.
void print_figure(const std::string& title, const std::vector<EpisodeResult>& results);

/// The filesystem-safe form of a scenario/arm name used by every artifact
/// writer (CSV traces, telemetry directories, recorded .ltrc traces):
/// alphanumerics, '-' and '_' pass through, everything else becomes '_'.
/// Mirrored by tools/check_trace_json.py.
[[nodiscard]] std::string artifact_name(std::string s);

/// Write one CSV per episode -- <dir>/<stem>_<arm>.csv (collision-proofed
/// when two arms sanitize to the same file name) -- plus a
/// <dir>/<stem>_summary.csv with one row per episode. All fields pass
/// through RFC 4180 quoting, so scenario/arm names containing commas or
/// quotes survive a round trip.
void write_csv_traces(const std::string& dir, const std::string& stem,
                      const std::vector<EpisodeResult>& results, bool announce = true);

/// One JSON document for the scenario: episode summaries (experiment or
/// serving metrics, paper reference rows when present), compact single-line
/// form suitable for JSONL processing.
[[nodiscard]] std::string scenario_json(const Scenario& scenario,
                                        const std::vector<EpisodeResult>& results);

class SummaryTableSink final : public ResultSink {
public:
    void consume(const Scenario& scenario,
                 const std::vector<EpisodeResult>& results) override {
        if (scenario.is_fleet()) {
            print_fleet_table(scenario.title, results);
        } else if (scenario.is_serving()) {
            print_serving_table(scenario.title, results);
        } else {
            print_summary_table(scenario.title, results);
        }
    }
};

class AsciiFigureSink final : public ResultSink {
public:
    void consume(const Scenario& scenario,
                 const std::vector<EpisodeResult>& results) override {
        print_figure(scenario.title, results);
    }
};

class CsvSink final : public ResultSink {
public:
    explicit CsvSink(std::string dir) : dir_(std::move(dir)) {}

    void consume(const Scenario& scenario,
                 const std::vector<EpisodeResult>& results) override {
        write_csv_traces(dir_, scenario.name, results);
    }

private:
    std::string dir_;
};

/// Prints one JSON document per consumed scenario to stdout.
class JsonSink final : public ResultSink {
public:
    void consume(const Scenario& scenario,
                 const std::vector<EpisodeResult>& results) override;
};

/// Prints the internal profiler's report (hierarchical region timings +
/// counters, see src/prof/) to stderr after each scenario, then resets the
/// profiler so successive scenarios do not blend into one report. stderr
/// keeps stdout byte-identical for table/JSON consumers. Prints a one-line
/// notice when the profiler is compiled out (-DLOTUS_PROFILING=OFF).
/// Thread-safe: the report+reset pair is serialized, so concurrent
/// scenarios cannot interleave their reports on stderr.
class ProfileSink final : public ResultSink {
public:
    void consume(const Scenario& scenario,
                 const std::vector<EpisodeResult>& results) override;
};

/// Writes each episode's captured sim-time telemetry (see src/telemetry/)
/// under <dir>/<scenario>/<arm>/: trace.json (Perfetto / chrome://tracing),
/// events.jsonl, metrics.csv, breaches.jsonl and manifest.json. Arm names
/// that sanitize to the same directory are suffixed in declaration order
/// (same rule as write_csv_traces). Episodes carrying no recorder --
/// HarnessConfig::telemetry off -- are skipped silently.
class TelemetrySink final : public ResultSink {
public:
    explicit TelemetrySink(std::string dir, bool announce = true)
        : dir_(std::move(dir)), announce_(announce) {}

    void consume(const Scenario& scenario,
                 const std::vector<EpisodeResult>& results) override;

private:
    std::string dir_;
    bool announce_;
};

} // namespace lotus::harness
