#pragma once
// Pluggable result sinks for harness episodes.
//
// A ResultSink consumes the ordered EpisodeResults of one scenario and
// renders them somewhere: the paper-style summary table, the paper-style
// ASCII figure (temperature + latency traces with the throttling bound /
// latency constraint reference lines), or raw per-episode CSV files. Front
// ends compose the sinks they want; the free functions underneath are
// available for custom headings.

#include <string>
#include <vector>

#include "harness/harness.hpp"

namespace lotus::harness {

class ResultSink {
public:
    virtual ~ResultSink() = default;
    virtual void consume(const Scenario& scenario,
                         const std::vector<EpisodeResult>& results) = 0;
};

/// Paper-style quantitative table: l-bar / sigma_l / R_L / T_dev / P /
/// throttled%, with the paper's reference numbers when the arm has them.
void print_summary_table(const std::string& heading,
                         const std::vector<EpisodeResult>& results);

/// Paper-style figure: device-temperature chart (with the throttling bound)
/// stacked above a latency chart (with the constraint), one series per
/// episode. Bounds are derived from the episode configs.
void print_figure(const std::string& title, const std::vector<EpisodeResult>& results);

/// Write one CSV per episode: <dir>/<stem>_<arm>.csv.
void write_csv_traces(const std::string& dir, const std::string& stem,
                      const std::vector<EpisodeResult>& results, bool announce = true);

class SummaryTableSink final : public ResultSink {
public:
    void consume(const Scenario& scenario,
                 const std::vector<EpisodeResult>& results) override {
        print_summary_table(scenario.title, results);
    }
};

class AsciiFigureSink final : public ResultSink {
public:
    void consume(const Scenario& scenario,
                 const std::vector<EpisodeResult>& results) override {
        print_figure(scenario.title, results);
    }
};

class CsvSink final : public ResultSink {
public:
    explicit CsvSink(std::string dir) : dir_(std::move(dir)) {}

    void consume(const Scenario& scenario,
                 const std::vector<EpisodeResult>& results) override {
        write_csv_traces(dir_, scenario.name, results);
    }

private:
    std::string dir_;
};

} // namespace lotus::harness
