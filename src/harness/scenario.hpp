#pragma once
// Scenario model for the experiment harness.
//
// A Scenario is one named, self-describing experiment: an ExperimentConfig
// plus a set of governor "arms" to run against it. Every paper figure/table
// cell, every example mission and every stress workload is expressed as a
// Scenario, so the whole evaluation surface is enumerable (see
// ScenarioRegistry) and every front end -- bench binaries, examples,
// lotus_run -- drives experiments through the same ExperimentHarness.
//
// Arms may carry a config tweak: a per-arm adjustment applied to a copy of
// the scenario config before the episode runs. This is how a single
// scenario expresses detector sweeps (Fig. 1), proposal probes (Fig. 2) and
// latency-constraint sweeps (stress scenarios) without bespoke drivers.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"
#include "governors/governor.hpp"
#include "lotus/agent.hpp"
#include "platform/device.hpp"
#include "runtime/runner.hpp"
#include "serving/request.hpp"

namespace lotus::harness {

/// Paper reference values for a table cell (printed next to measurements).
struct PaperRow {
    double mean_ms = 0.0;
    double std_ms = 0.0;
    double satisfaction = 0.0; // fraction
};

/// One experiment arm: a named, seed-parameterised governor factory plus an
/// optional config tweak. The factory receives a seed derived from
/// (harness seed, scenario name, arm index) -- arms must not bake in their
/// own entropy, or parallel runs would stop being reproducible.
struct ArmSpec {
    std::string name;
    std::function<std::unique_ptr<governors::Governor>(std::uint64_t seed)> make;
    /// Device-parameterised factory for fleet episodes: builds a governor
    /// sized for the given device's spec (level counts, thermal
    /// thresholds). Heterogeneous pools run one governor per device, so an
    /// arm built against an Orin must not hand Orin-shaped agents to a
    /// phone. When absent, fleet episodes fall back to `make` (correct for
    /// spec-independent governors like performance/powersave/fixed).
    std::function<std::unique_ptr<governors::Governor>(const platform::DeviceSpec& spec,
                                                       std::uint64_t seed)>
        make_for;
    std::optional<PaperRow> paper;
    std::function<void(runtime::ExperimentConfig&)> tweak;
    /// Per-arm adjustment of a serving scenario's config (scheduler shootouts
    /// etc.); ignored for classic experiment scenarios.
    std::function<void(serving::ServingConfig&)> serving_tweak;
    /// Per-arm adjustment of a fleet scenario's config (router shootouts,
    /// migration on/off); ignored for non-fleet scenarios.
    std::function<void(fleet::FleetConfig&)> fleet_tweak;
};

/// A named, tagged experiment: config + arms. (Constructed from its config
/// because ExperimentConfig carries a DeviceSpec and has no empty state.)
struct Scenario {
    explicit Scenario(runtime::ExperimentConfig cfg) : config(std::move(cfg)) {}

    std::string name;        // registry key, e.g. "fig4_kitti"
    std::string title;       // human-readable heading
    std::string description; // one paragraph for --list-scenarios / docs
    std::vector<std::string> tags; // e.g. {"paper", "figure"} or {"stress"}
    runtime::ExperimentConfig config;
    /// When set, episodes run on the serving::ServingEngine (multi-stream
    /// request serving) instead of the runtime::ExperimentRunner; `config`
    /// still names the device/detector for arm factories and sinks.
    std::optional<serving::ServingConfig> serving;
    /// When set, episodes run on the fleet::FleetEngine (request routing
    /// across a device pool, one governor instance per device); takes
    /// precedence over `serving`.
    std::optional<fleet::FleetConfig> fleet;
    std::vector<ArmSpec> arms;

    [[nodiscard]] bool has_tag(const std::string& tag) const;
    [[nodiscard]] bool is_serving() const noexcept { return serving.has_value(); }
    [[nodiscard]] bool is_fleet() const noexcept { return fleet.has_value(); }
};

// --- standard arm factories --------------------------------------------------
// Shared by the registry, the bench binaries, the examples and lotus_run.

/// The board's stock kernel governors (schedutil + simple_ondemand presets).
[[nodiscard]] ArmSpec default_arm(const platform::DeviceSpec& spec);

/// zTT baseline (frame-start-only DRL governor).
[[nodiscard]] ArmSpec ztt_arm(const platform::DeviceSpec& spec);

/// Full LOTUS agent.
[[nodiscard]] ArmSpec lotus_arm(const platform::DeviceSpec& spec);

/// LOTUS agent with a customised configuration (ablations). The config's
/// seed field is overwritten with the derived episode seed at run time.
[[nodiscard]] ArmSpec lotus_arm_with(const platform::DeviceSpec& spec,
                                     const std::string& label, core::LotusConfig cfg);

/// Frequency ladder pinned at (cpu_level, gpu_level).
[[nodiscard]] ArmSpec fixed_arm(std::size_t cpu_level, std::size_t gpu_level);

/// Linux `performance` governor (both domains pinned to the top level).
[[nodiscard]] ArmSpec performance_arm();

/// Linux `powersave` governor (both domains pinned to the bottom level).
[[nodiscard]] ArmSpec powersave_arm();

/// Retarget any governor arm at one fleet routing policy: the arm name
/// becomes "<base>+<router>[+migrate]" and its fleet_tweak pins the router
/// and migration switch (router shoot-outs express each policy as an arm).
[[nodiscard]] ArmSpec fleet_arm(ArmSpec base, const std::string& router,
                                bool migrate = false);

} // namespace lotus::harness
