#include "harness/sinks.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <set>

#include "platform/presets.hpp"
#include "prof/profiler.hpp"
#include "util/ascii.hpp"
#include "util/build_info.hpp"
#include "util/csv.hpp"

namespace lotus::harness {

std::string artifact_name(std::string s) {
    for (auto& c : s) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' || c == '_')) {
            c = '_';
        }
    }
    return s;
}

namespace {

std::string sanitize(std::string s) { return artifact_name(std::move(s)); }

/// Largest latency constraint across an episode's schedule segments (the
/// reference line drawn in multi-domain figures).
double max_constraint_ms(const EpisodeResult& r) {
    double best = 0.0;
    for (const auto& seg : r.config.schedule.all()) {
        best = std::max(best, seg.latency_constraint_s * 1e3);
    }
    return best;
}

/// Largest SLO across a serving or fleet episode's streams.
double max_slo_ms(const EpisodeResult& r) {
    double best = 0.0;
    if (r.serving_config) {
        for (const auto& s : r.serving_config->streams) {
            best = std::max(best, s.slo_s * 1e3);
        }
    }
    if (r.fleet_config) {
        for (const auto& s : r.fleet_config->streams) {
            best = std::max(best, s.slo_s * 1e3);
        }
    }
    return best;
}

// --- JSON helpers ------------------------------------------------------------
// Hand-rolled emission: the documents are flat and small, and the repo takes
// no dependencies. Strings get RFC 8259 escaping; non-finite numbers (which
// JSON cannot represent) degrade to null.

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    return out;
}

std::string jstr(const std::string& s) { return "\"" + json_escape(s) + "\""; }

std::string jnum(double v) {
    const auto s = util::format_double(v, 6);
    if (s == "nan" || s == "inf" || s == "-inf") return "null";
    return s;
}

std::string experiment_summary_json(const runtime::Summary& s) {
    std::string o = "{";
    o += "\"frames\":" + std::to_string(s.frames);
    o += ",\"mean_latency_ms\":" + jnum(s.mean_latency_s * 1e3);
    o += ",\"std_latency_ms\":" + jnum(s.std_latency_s * 1e3);
    o += ",\"satisfaction_rate\":" + jnum(s.satisfaction_rate);
    o += ",\"mean_device_temp_c\":" + jnum(s.mean_device_temp);
    o += ",\"max_device_temp_c\":" + jnum(s.max_device_temp);
    o += ",\"throttled_fraction\":" + jnum(s.throttled_fraction);
    o += ",\"mean_power_w\":" + jnum(s.mean_power_w);
    o += ",\"mean_proposals\":" + jnum(s.mean_proposals);
    o += "}";
    return o;
}

std::string serving_summary_json(const serving::ServingSummary& s) {
    std::string o = "{";
    o += "\"stream\":" + jstr(s.stream);
    o += ",\"requests\":" + std::to_string(s.requests);
    o += ",\"served\":" + std::to_string(s.served);
    o += ",\"shed\":" + std::to_string(s.shed);
    o += ",\"missed\":" + std::to_string(s.missed);
    o += ",\"p50_ms\":" + jnum(s.p50_ms);
    o += ",\"p95_ms\":" + jnum(s.p95_ms);
    o += ",\"p99_ms\":" + jnum(s.p99_ms);
    o += ",\"mean_wait_ms\":" + jnum(s.mean_wait_ms);
    o += ",\"miss_rate\":" + jnum(s.miss_rate);
    o += ",\"shed_rate\":" + jnum(s.shed_rate);
    o += ",\"throughput_rps\":" + jnum(s.throughput_rps);
    o += ",\"energy_per_req_j\":" + jnum(s.energy_per_req_j);
    o += ",\"mean_device_temp_c\":" + jnum(s.mean_device_temp_c);
    o += ",\"peak_device_temp_c\":" + jnum(s.peak_device_temp_c);
    o += "}";
    return o;
}

} // namespace

void print_summary_table(const std::string& heading,
                         const std::vector<EpisodeResult>& results) {
    util::TextTable table({"method", "l-bar (ms)", "sigma_l (ms)", "R_L (%)",
                           "T_dev (C)", "P (W)", "throttled (%)", "paper l-bar",
                           "paper sigma", "paper R_L"});
    for (const auto& r : results) {
        const auto s = r.trace.summary();
        std::vector<std::string> row{
            r.arm,
            util::format_double(s.mean_latency_s * 1e3, 1),
            util::format_double(s.std_latency_s * 1e3, 1),
            util::format_double(s.satisfaction_rate * 100.0, 1),
            util::format_double(s.mean_device_temp, 1),
            util::format_double(s.mean_power_w, 1),
            util::format_double(s.throttled_fraction * 100.0, 1),
        };
        if (r.paper) {
            row.push_back(util::format_double(r.paper->mean_ms, 1));
            row.push_back(util::format_double(r.paper->std_ms, 1));
            row.push_back(util::format_double(r.paper->satisfaction * 100.0, 1));
        } else {
            row.insert(row.end(), {"-", "-", "-"});
        }
        table.add_row(std::move(row));
    }
    std::printf("%s", table.render(heading).c_str());
}

void print_serving_table(const std::string& heading,
                         const std::vector<EpisodeResult>& results) {
    util::TextTable table({"method", "stream", "req", "served", "shed", "miss (%)",
                           "shed (%)", "p50 (ms)", "p95 (ms)", "p99 (ms)", "wait (ms)",
                           "thrpt (rps)", "T_peak (C)", "E/req (J)"});
    for (const auto& r : results) {
        if (!r.serving_trace) continue;
        for (const auto& s : r.serving_trace->all_summaries()) {
            table.add_row({
                r.arm,
                s.stream,
                std::to_string(s.requests),
                std::to_string(s.served),
                std::to_string(s.shed),
                util::format_double(s.miss_rate * 100.0, 1),
                util::format_double(s.shed_rate * 100.0, 1),
                util::format_double(s.p50_ms, 1),
                util::format_double(s.p95_ms, 1),
                util::format_double(s.p99_ms, 1),
                util::format_double(s.mean_wait_ms, 1),
                util::format_double(s.throughput_rps, 2),
                util::format_double(s.peak_device_temp_c, 1),
                util::format_double(s.energy_per_req_j, 1),
            });
        }
    }
    std::printf("%s", table.render(heading).c_str());
}

void print_fleet_table(const std::string& heading,
                       const std::vector<EpisodeResult>& results) {
    util::TextTable table({"method", "scope", "req", "served", "shed", "miss (%)",
                           "shed (%)", "p50 (ms)", "p95 (ms)", "p99 (ms)", "wait (ms)",
                           "thrpt (rps)", "T_peak (C)", "E/req (J)", "migr", "skew"});
    for (const auto& r : results) {
        if (!r.fleet_trace) continue;
        const auto& t = *r.fleet_trace;
        const std::size_t devices = t.device_names().size();
        const auto rows = t.all_summaries();
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const auto& s = rows[i];
            const bool fleet_row = i == 0;
            const bool device_row = !fleet_row && i <= devices;
            table.add_row({
                r.arm,
                device_row ? "dev:" + s.stream : s.stream,
                std::to_string(s.requests),
                std::to_string(s.served),
                std::to_string(s.shed),
                util::format_double(s.miss_rate * 100.0, 1),
                util::format_double(s.shed_rate * 100.0, 1),
                util::format_double(s.p50_ms, 1),
                util::format_double(s.p95_ms, 1),
                util::format_double(s.p99_ms, 1),
                util::format_double(s.mean_wait_ms, 1),
                util::format_double(s.throughput_rps, 2),
                util::format_double(s.peak_device_temp_c, 1),
                util::format_double(s.energy_per_req_j, 1),
                fleet_row ? std::to_string(t.migrations())
                          : (device_row ? std::to_string(t.device_stats(i - 1).migrations_out)
                                        : "-"),
                fleet_row ? util::format_double(t.load_skew(), 3) : "-",
            });
        }
    }
    std::printf("%s", table.render(heading).c_str());
}

void print_figure(const std::string& title, const std::vector<EpisodeResult>& results) {
    if (results.empty()) return;
    std::printf("%s\n%s\n", title.c_str(), std::string(title.size(), '=').c_str());

    const bool fleet = results.front().is_fleet();
    const bool serving = fleet || results.front().is_serving();
    const auto temps = [&](const EpisodeResult& r) {
        if (fleet) return r.fleet_trace->device_temps();
        return serving ? r.serving_trace->device_temps() : r.trace.device_temps();
    };
    const auto latencies = [&](const EpisodeResult& r) {
        if (fleet) return r.fleet_trace->e2e_ms();
        return serving ? r.serving_trace->e2e_ms() : r.trace.latencies_ms();
    };
    const double throttle_bound_c =
        platform::throttle_bound_celsius(results.front().config.device_spec);

    util::AsciiChart temp_chart(110, 14);
    for (const auto& r : results) {
        temp_chart.add_series({r.arm, util::downsample(temps(r), 110)});
    }
    temp_chart.add_reference_line(throttle_bound_c, "throttling bound");
    std::printf("%s\n",
                temp_chart.render("Device temperature over iterations", "deg C").c_str());

    double bound_ms = 0.0;
    for (const auto& r : results) {
        bound_ms = std::max(bound_ms, serving ? max_slo_ms(r) : max_constraint_ms(r));
    }
    util::AsciiChart lat_chart(110, 14);
    for (const auto& r : results) {
        lat_chart.add_series({r.arm, util::downsample(latencies(r), 110)});
    }
    lat_chart.add_reference_line(bound_ms, serving ? "max SLO" : "latency constraint");
    std::printf("%s\n",
                lat_chart
                    .render(serving ? "End-to-end latency over requests"
                                    : "Inference latency over iterations",
                            "ms")
                    .c_str());
}

void write_csv_traces(const std::string& dir, const std::string& stem,
                      const std::vector<EpisodeResult>& results, bool announce) {
    std::filesystem::create_directories(dir);

    // Sanitizing is lossy ("a,b" and "a.b" both map to "a_b"): keep the
    // trace files one-per-episode by suffixing repeats in declaration order.
    std::set<std::string> used;
    const auto unique_path = [&](const std::string& base) {
        std::string name = base;
        for (std::size_t n = 2; !used.insert(name).second; ++n) {
            name = base + "_" + std::to_string(n);
        }
        return dir + "/" + name + ".csv";
    };

    const bool fleet = !results.empty() && results.front().is_fleet();
    const bool serving = !results.empty() && results.front().is_serving();
    for (const auto& r : results) {
        const auto path = unique_path(sanitize(stem) + "_" + sanitize(r.arm));
        std::size_t rows = 0;
        if (r.fleet_trace) {
            r.fleet_trace->write_csv(path);
            rows = r.fleet_trace->size();
        } else if (r.serving_trace) {
            r.serving_trace->write_csv(path);
            rows = r.serving_trace->size();
        } else {
            r.trace.write_csv(path);
            rows = r.trace.size();
        }
        if (announce) {
            std::fprintf(stderr, "[csv] wrote %s (%zu rows)\n", path.c_str(), rows);
        }
    }

    // Episode-summary table: the one place scenario and arm names land
    // *inside* a CSV, so quoting matters (CsvWriter applies RFC 4180).
    const auto summary_path = dir + "/" + sanitize(stem) + "_summary.csv";
    if (fleet) {
        util::CsvWriter csv(summary_path,
                            {"scenario", "arm", "scope", "label", "requests", "served",
                             "shed", "missed", "p50_ms", "p95_ms", "p99_ms",
                             "mean_wait_ms", "miss_rate", "shed_rate", "throughput_rps",
                             "energy_per_req_j", "peak_temp_c", "migrations",
                             "load_skew"});
        for (const auto& r : results) {
            if (!r.fleet_trace) continue;
            const auto& t = *r.fleet_trace;
            const std::size_t devices = t.device_names().size();
            const auto rows = t.all_summaries();
            for (std::size_t i = 0; i < rows.size(); ++i) {
                const auto& s = rows[i];
                const bool fleet_row = i == 0;
                const bool device_row = !fleet_row && i <= devices;
                csv.row(std::vector<std::string>{
                    r.scenario,
                    r.arm,
                    fleet_row ? "fleet" : (device_row ? "device" : "stream"),
                    s.stream,
                    std::to_string(s.requests),
                    std::to_string(s.served),
                    std::to_string(s.shed),
                    std::to_string(s.missed),
                    util::format_double(s.p50_ms, 3),
                    util::format_double(s.p95_ms, 3),
                    util::format_double(s.p99_ms, 3),
                    util::format_double(s.mean_wait_ms, 3),
                    util::format_double(s.miss_rate, 4),
                    util::format_double(s.shed_rate, 4),
                    util::format_double(s.throughput_rps, 4),
                    util::format_double(s.energy_per_req_j, 3),
                    util::format_double(s.peak_device_temp_c, 2),
                    fleet_row
                        ? std::to_string(t.migrations())
                        : (device_row ? std::to_string(t.device_stats(i - 1).migrations_out)
                                      : ""),
                    fleet_row ? util::format_double(t.load_skew(), 4) : "",
                });
            }
        }
    } else if (serving) {
        util::CsvWriter csv(summary_path,
                            {"scenario", "arm", "stream", "requests", "served", "shed",
                             "missed", "p50_ms", "p95_ms", "p99_ms", "mean_wait_ms",
                             "miss_rate", "shed_rate", "throughput_rps",
                             "energy_per_req_j", "peak_temp_c"});
        for (const auto& r : results) {
            if (!r.serving_trace) continue;
            for (const auto& s : r.serving_trace->all_summaries()) {
                csv.row(std::vector<std::string>{
                    r.scenario,
                    r.arm,
                    s.stream,
                    std::to_string(s.requests),
                    std::to_string(s.served),
                    std::to_string(s.shed),
                    std::to_string(s.missed),
                    util::format_double(s.p50_ms, 3),
                    util::format_double(s.p95_ms, 3),
                    util::format_double(s.p99_ms, 3),
                    util::format_double(s.mean_wait_ms, 3),
                    util::format_double(s.miss_rate, 4),
                    util::format_double(s.shed_rate, 4),
                    util::format_double(s.throughput_rps, 4),
                    util::format_double(s.energy_per_req_j, 3),
                    util::format_double(s.peak_device_temp_c, 2),
                });
            }
        }
    } else {
        util::CsvWriter csv(summary_path,
                            {"scenario", "arm", "frames", "mean_latency_ms",
                             "std_latency_ms", "satisfaction_rate", "mean_device_temp_c",
                             "max_device_temp_c", "mean_power_w", "throttled_fraction"});
        for (const auto& r : results) {
            const auto s = r.trace.summary();
            csv.row(std::vector<std::string>{
                r.scenario,
                r.arm,
                std::to_string(s.frames),
                util::format_double(s.mean_latency_s * 1e3, 3),
                util::format_double(s.std_latency_s * 1e3, 3),
                util::format_double(s.satisfaction_rate, 4),
                util::format_double(s.mean_device_temp, 2),
                util::format_double(s.max_device_temp, 2),
                util::format_double(s.mean_power_w, 3),
                util::format_double(s.throttled_fraction, 4),
            });
        }
    }
    if (announce) std::fprintf(stderr, "[csv] wrote %s\n", summary_path.c_str());
}

std::string scenario_json(const Scenario& scenario,
                          const std::vector<EpisodeResult>& results) {
    std::string o = "{";
    o += "\"scenario\":" + jstr(scenario.name);
    o += "," + util::build_info_json_fields();
    o += ",\"title\":" + jstr(scenario.title);
    o += ",\"mode\":" + jstr(scenario.is_fleet()
                                 ? "fleet"
                                 : (scenario.is_serving() ? "serving" : "experiment"));
    o += ",\"episodes\":[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        if (i != 0) o += ",";
        o += "{\"arm\":" + jstr(r.arm);
        // uint64 seeds exceed JSON's exact-integer range; emit as a string.
        o += ",\"episode_seed\":" + jstr(std::to_string(r.episode_seed));
        if (r.fleet_trace) {
            const auto& t = *r.fleet_trace;
            const auto agg = t.aggregate();
            o += ",\"router\":" + jstr(r.fleet_config ? r.fleet_config->router : "");
            o += ",\"scheduler\":" + jstr(r.fleet_config ? r.fleet_config->scheduler : "");
            o += ",\"devices_n\":" + std::to_string(t.device_names().size());
            o += ",\"makespan_s\":" + jnum(t.makespan_s());
            o += ",\"total_energy_j\":" + jnum(t.total_energy_j());
            // Headline fleet signals, surfaced top-level so JSONL pipelines
            // need not dig into the aggregate object.
            o += ",\"peak_temp_c\":" + jnum(t.peak_temp_c());
            o += ",\"shed_rate\":" + jnum(agg.shed_rate);
            o += ",\"migrations\":" + std::to_string(t.migrations());
            o += ",\"load_skew\":" + jnum(t.load_skew());
            o += ",\"aggregate\":" + serving_summary_json(agg);
            o += ",\"devices\":[";
            for (std::size_t d = 0; d < t.device_names().size(); ++d) {
                if (d != 0) o += ",";
                const auto& stats = t.device_stats(d);
                auto dev = serving_summary_json(t.device_summary(d));
                // Splice the device-only facts into the summary object.
                dev.pop_back();
                dev += ",\"makespan_s\":" + jnum(stats.makespan_s);
                dev += ",\"energy_j\":" + jnum(stats.energy_j);
                dev += ",\"max_queue_depth\":" + std::to_string(stats.max_queue_depth);
                dev += ",\"migrations_out\":" + std::to_string(stats.migrations_out);
                dev += ",\"failed\":" + std::string(stats.failed ? "true" : "false");
                dev += "}";
                o += dev;
            }
            o += "],\"streams\":[";
            for (std::size_t s = 0; s < t.stream_names().size(); ++s) {
                if (s != 0) o += ",";
                o += serving_summary_json(t.stream_summary(s));
            }
            o += "]";
        } else if (r.serving_trace) {
            const auto agg = r.serving_trace->aggregate();
            o += ",\"scheduler\":" +
                 jstr(r.serving_config ? r.serving_config->scheduler : "");
            o += ",\"makespan_s\":" + jnum(r.serving_trace->makespan_s());
            o += ",\"total_energy_j\":" + jnum(r.serving_trace->total_energy_j());
            o += ",\"max_queue_depth\":" +
                 std::to_string(r.serving_trace->max_queue_depth());
            o += ",\"peak_temp_c\":" + jnum(agg.peak_device_temp_c);
            o += ",\"shed_rate\":" + jnum(agg.shed_rate);
            o += ",\"aggregate\":" + serving_summary_json(agg);
            o += ",\"streams\":[";
            const auto names = r.serving_trace->stream_names();
            for (std::size_t s = 0; s < names.size(); ++s) {
                if (s != 0) o += ",";
                o += serving_summary_json(r.serving_trace->stream_summary(s));
            }
            o += "]";
        } else {
            o += ",\"summary\":" + experiment_summary_json(r.trace.summary());
            if (r.paper) {
                o += ",\"paper\":{\"mean_ms\":" + jnum(r.paper->mean_ms);
                o += ",\"std_ms\":" + jnum(r.paper->std_ms);
                o += ",\"satisfaction\":" + jnum(r.paper->satisfaction) + "}";
            }
        }
        o += "}";
    }
    o += "]}";
    return o;
}

void JsonSink::consume(const Scenario& scenario,
                       const std::vector<EpisodeResult>& results) {
    std::printf("%s\n", scenario_json(scenario, results).c_str());
}

void ProfileSink::consume(const Scenario& scenario,
                          const std::vector<EpisodeResult>&) {
    // Front ends may render scenarios from pool threads; serialize the
    // report+reset pair so two scenarios' reports cannot interleave on
    // stderr (or blend counters by resetting mid-report).
    static std::mutex mutex;
    const std::lock_guard<std::mutex> lock(mutex);
    std::fprintf(stderr, "[profile] %s\n%s", scenario.name.c_str(),
                 prof::report_text().c_str());
    prof::reset();
}

void TelemetrySink::consume(const Scenario& scenario,
                            const std::vector<EpisodeResult>& results) {
    const std::string base = dir_ + "/" + sanitize(scenario.name);
    // Arm names are sanitized like CSV trace files; suffix repeats in
    // declaration order so every episode keeps its own directory.
    std::set<std::string> used;
    for (const auto& r : results) {
        if (!r.telemetry) continue;
        const std::string stem = sanitize(r.arm);
        std::string name = stem;
        for (std::size_t n = 2; !used.insert(name).second; ++n) {
            name = stem + "_" + std::to_string(n);
        }
        const auto dir = base + "/" + name;
        r.telemetry->write(dir);
        if (announce_) {
            std::fprintf(stderr, "[telemetry] wrote %s (%zu events, %zu breaches)\n",
                         dir.c_str(), r.telemetry->event_count(),
                         r.telemetry->breach_count());
        }
    }
}

} // namespace lotus::harness
