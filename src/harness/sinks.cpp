#include "harness/sinks.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>

#include "platform/presets.hpp"
#include "util/ascii.hpp"
#include "util/csv.hpp"

namespace lotus::harness {

namespace {

std::string sanitize(std::string s) {
    for (auto& c : s) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' || c == '_')) {
            c = '_';
        }
    }
    return s;
}

/// Largest latency constraint across an episode's schedule segments (the
/// reference line drawn in multi-domain figures).
double max_constraint_ms(const EpisodeResult& r) {
    double best = 0.0;
    for (const auto& seg : r.config.schedule.all()) {
        best = std::max(best, seg.latency_constraint_s * 1e3);
    }
    return best;
}

} // namespace

void print_summary_table(const std::string& heading,
                         const std::vector<EpisodeResult>& results) {
    util::TextTable table({"method", "l-bar (ms)", "sigma_l (ms)", "R_L (%)",
                           "T_dev (C)", "P (W)", "throttled (%)", "paper l-bar",
                           "paper sigma", "paper R_L"});
    for (const auto& r : results) {
        const auto s = r.trace.summary();
        std::vector<std::string> row{
            r.arm,
            util::format_double(s.mean_latency_s * 1e3, 1),
            util::format_double(s.std_latency_s * 1e3, 1),
            util::format_double(s.satisfaction_rate * 100.0, 1),
            util::format_double(s.mean_device_temp, 1),
            util::format_double(s.mean_power_w, 1),
            util::format_double(s.throttled_fraction * 100.0, 1),
        };
        if (r.paper) {
            row.push_back(util::format_double(r.paper->mean_ms, 1));
            row.push_back(util::format_double(r.paper->std_ms, 1));
            row.push_back(util::format_double(r.paper->satisfaction * 100.0, 1));
        } else {
            row.insert(row.end(), {"-", "-", "-"});
        }
        table.add_row(std::move(row));
    }
    std::printf("%s", table.render(heading).c_str());
}

void print_figure(const std::string& title, const std::vector<EpisodeResult>& results) {
    if (results.empty()) return;
    std::printf("%s\n%s\n", title.c_str(), std::string(title.size(), '=').c_str());

    const double throttle_bound_c =
        platform::throttle_bound_celsius(results.front().config.device_spec);
    double constraint_ms = 0.0;
    for (const auto& r : results) constraint_ms = std::max(constraint_ms, max_constraint_ms(r));

    util::AsciiChart temp_chart(110, 14);
    for (const auto& r : results) {
        temp_chart.add_series({r.arm, util::downsample(r.trace.device_temps(), 110)});
    }
    temp_chart.add_reference_line(throttle_bound_c, "throttling bound");
    std::printf("%s\n",
                temp_chart.render("Device temperature over iterations", "deg C").c_str());

    util::AsciiChart lat_chart(110, 14);
    for (const auto& r : results) {
        lat_chart.add_series({r.arm, util::downsample(r.trace.latencies_ms(), 110)});
    }
    lat_chart.add_reference_line(constraint_ms, "latency constraint");
    std::printf("%s\n", lat_chart.render("Inference latency over iterations", "ms").c_str());
}

void write_csv_traces(const std::string& dir, const std::string& stem,
                      const std::vector<EpisodeResult>& results, bool announce) {
    std::filesystem::create_directories(dir);
    for (const auto& r : results) {
        const auto path = dir + "/" + sanitize(stem) + "_" + sanitize(r.arm) + ".csv";
        r.trace.write_csv(path);
        if (announce) {
            std::printf("[csv] wrote %s (%zu rows)\n", path.c_str(), r.trace.size());
        }
    }
}

} // namespace lotus::harness
