#include "harness/registry.hpp"

#include <cstdlib>
#include <stdexcept>

#include "fleet/engine.hpp"
#include "platform/presets.hpp"
#include "util/csv.hpp"
#include "workload/presets.hpp"

namespace lotus::harness {

namespace {

using detector::DetectorKind;

bool env_flag(const char* name) {
    const char* v = std::getenv(name);
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

std::vector<ArmSpec> standard_arms(const platform::DeviceSpec& spec) {
    std::vector<ArmSpec> arms;
    arms.push_back(default_arm(spec));
    arms.push_back(ztt_arm(spec));
    arms.push_back(lotus_arm(spec));
    return arms;
}

std::vector<ArmSpec> standard_arms_with_paper(const platform::DeviceSpec& spec,
                                              PaperRow paper_default, PaperRow paper_ztt,
                                              PaperRow paper_lotus) {
    auto arms = standard_arms(spec);
    arms[0].paper = paper_default;
    arms[1].paper = paper_ztt;
    arms[2].paper = paper_lotus;
    return arms;
}

/// Fig. 1 arm: stock governors, but the *detector* varies per arm.
ArmSpec detector_arm(const platform::DeviceSpec& spec, DetectorKind kind,
                     const std::string& dataset) {
    auto arm = default_arm(spec);
    arm.name = detector::to_string(kind);
    arm.tweak = [device = spec.name, kind, dataset](runtime::ExperimentConfig& cfg) {
        cfg.detector = kind;
        cfg.schedule = workload::DomainSchedule::constant(
            dataset, workload::latency_constraint_s(device, kind, dataset));
    };
    return arm;
}

/// Fig. 2 arm: one frame with a pinned proposal count at a pinned frequency,
/// executed from a cold device (each arm is its own episode).
ArmSpec proposal_probe_arm(int proposals) {
    auto arm = fixed_arm(5, 3);
    arm.name = "p=" + std::to_string(proposals);
    arm.tweak = [proposals](runtime::ExperimentConfig& cfg) {
        cfg.iterations = 1;
        cfg.pretrain_iterations = 0;
        cfg.frame_hook = [proposals](workload::FrameSample& frame, std::size_t) {
            frame.proposals = proposals;
            frame.resolution_scale = 1.0;
            frame.complexity = 1.0;
            frame.jitter = 1.0;
        };
    };
    return arm;
}

/// Constraint-sweep arm: LOTUS run against a scaled latency constraint.
ArmSpec constraint_arm(const platform::DeviceSpec& spec, const std::string& dataset,
                       DetectorKind kind, double scale) {
    auto arm = lotus_arm(spec);
    arm.name = "Lotus@" + util::format_double(scale, 2) + "L";
    arm.tweak = [device = spec.name, dataset, kind, scale](runtime::ExperimentConfig& cfg) {
        const double base = workload::latency_constraint_s(device, kind, dataset);
        cfg.schedule = workload::DomainSchedule::constant(dataset, base * scale);
    };
    return arm;
}

/// Drone mission ambient: ground (25 C) -> climb (linear to -5 C) -> loiter
/// (-5 C) -> descend (back to 25 C), phased as fractions of the mission so
/// fast mode shrinks cleanly.
workload::AmbientProfile mission_profile(std::size_t frames) {
    const double n = static_cast<double>(frames);
    return workload::AmbientProfile::custom(
        [n](std::size_t i) {
            const double t = static_cast<double>(i) / n;
            if (t < 1.0 / 6.0) return 25.0;                                  // pre-flight
            if (t < 7.0 / 18.0) return 25.0 - 30.0 * (t - 1.0 / 6.0) / (2.0 / 9.0);
            if (t < 13.0 / 18.0) return -5.0;                                // loiter
            if (t < 17.0 / 18.0) return -5.0 + 30.0 * (t - 13.0 / 18.0) / (2.0 / 9.0);
            return 25.0;
        },
        "drone mission: ground/climb/loiter/descend");
}

/// Requests each serving stream emits (shrunk in fast mode like the
/// iteration budgets).
std::size_t serve_requests() { return fast_mode() ? 25 : 150; }

/// Requests per stream for the FLEET scenarios. Deliberately shorter than
/// the single-device serving budget: the fleet scenarios study the
/// transient regime where an airflow gradient leaves real headroom
/// differences across the pool. Minutes of sustained overload drive every
/// die to its trip point regardless of placement -- at that equilibrium no
/// router can win anything, shedding policy is all that is left.
std::size_t fleet_requests() { return fast_mode() ? 25 : 60; }

serving::StreamSpec cam_stream(std::string name, std::string dataset, double slo_s,
                               std::size_t requests, serving::ArrivalSpec arrival) {
    serving::StreamSpec s;
    s.name = std::move(name);
    s.dataset = std::move(dataset);
    s.slo_s = slo_s;
    s.requests = requests;
    s.arrival = arrival;
    return s;
}

/// Serving-scenario shell: the caller appends streams and arms. The classic
/// config half still names the device/detector so arm factories and sinks
/// (throttle bounds) keep working.
Scenario serving_scenario(const platform::DeviceSpec& spec, std::string name,
                          std::string title, std::string description,
                          std::string scheduler) {
    Scenario s(runtime::static_experiment(spec, DetectorKind::faster_rcnn, "KITTI", 1, 0));
    s.name = std::move(name);
    s.title = std::move(title);
    s.description = std::move(description);
    s.tags = {"serving"};
    serving::ServingConfig cfg(spec);
    cfg.detector = DetectorKind::faster_rcnn;
    cfg.scheduler = std::move(scheduler);
    cfg.pretrain_iterations = pretrain_iterations();
    // Warm up against the device-calibrated per-frame constraint, not the
    // (queueing-padded) SLO: a saturated queue needs frames served at the
    // single-frame pace.
    cfg.pretrain_constraint_s = workload::latency_constraint_s(
        spec.name, DetectorKind::faster_rcnn, "KITTI");
    s.serving = std::move(cfg);
    return s;
}

/// Fleet-scenario shell: N devices behind a router; the caller appends
/// streams, devices and arms. The classic config half still names a
/// representative device/detector for arm factories and sinks.
Scenario fleet_scenario(const platform::DeviceSpec& spec, std::string name,
                        std::string title, std::string description,
                        std::string scheduler) {
    Scenario s(runtime::static_experiment(spec, DetectorKind::faster_rcnn, "KITTI", 1, 0));
    s.name = std::move(name);
    s.title = std::move(title);
    s.description = std::move(description);
    s.tags = {"serving", "fleet"};
    fleet::FleetConfig cfg;
    cfg.detector = DetectorKind::faster_rcnn;
    cfg.scheduler = std::move(scheduler);
    cfg.pretrain_iterations = pretrain_iterations();
    cfg.pretrain_constraint_s = workload::latency_constraint_s(
        spec.name, DetectorKind::faster_rcnn, "KITTI");
    s.fleet = std::move(cfg);
    return s;
}

/// A homogeneous pool of n copies of `spec`, ids <prefix>0..<prefix>n-1.
std::vector<fleet::FleetDevice> device_pool(const platform::DeviceSpec& spec,
                                            const std::string& prefix, std::size_t n) {
    std::vector<fleet::FleetDevice> pool;
    pool.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        pool.push_back(fleet::make_device(prefix + std::to_string(i), spec));
    }
    return pool;
}

/// Heatwave ambient: 25 C baseline, ramp to a mid-run peak, ramp back --
/// a summer-afternoon profile no paper figure covers.
workload::AmbientProfile heatwave_profile(std::size_t frames, double peak_c) {
    const double n = static_cast<double>(frames);
    return workload::AmbientProfile::custom(
        [n, peak_c](std::size_t i) {
            const double t = static_cast<double>(i) / n;
            if (t < 0.25) return 25.0;
            if (t < 0.5) return 25.0 + (peak_c - 25.0) * (t - 0.25) / 0.25;
            if (t < 0.75) return peak_c;
            return peak_c - (peak_c - 25.0) * (t - 0.75) / 0.25;
        },
        "heatwave: 25C -> " + util::format_double(peak_c, 0) + "C -> 25C");
}

} // namespace

bool fast_mode() { return env_flag("LOTUS_BENCH_FAST"); }

std::size_t orin_iterations() { return fast_mode() ? 600 : 3000; }
std::size_t mi11_iterations() { return fast_mode() ? 300 : 1000; }
std::size_t pretrain_iterations() { return fast_mode() ? 500 : 2500; }
std::size_t mi11_pretrain_iterations() { return fast_mode() ? 500 : 6000; }

ScenarioRegistry::ScenarioRegistry() {
    const auto orin = platform::orin_nano_spec();
    const auto mi11 = platform::mi11_lite_spec();
    const auto orin_iters = orin_iterations();
    const auto mi11_iters = mi11_iterations();
    const auto orin_pre = pretrain_iterations();
    const auto mi11_pre = mi11_pretrain_iterations();

    // --- Fig. 1: latency mean/variation per detector and dataset ------------
    for (const char* dataset : {"KITTI", "VisDrone2019"}) {
        const std::string suffix = (dataset == std::string("KITTI")) ? "kitti" : "visdrone";
        Scenario s(runtime::static_experiment(orin, DetectorKind::faster_rcnn, dataset,
                                              orin_iters, 0));
        s.name = "fig1_" + suffix;
        s.title = "Fig. 1 (" + std::string(dataset) + ")";
        s.description = "Latency mean/variation of FasterRCNN, MaskRCNN and YOLOv5 on " +
                        std::string(dataset) + " under the Orin Nano's stock governors.";
        s.tags = {"paper", "figure"};
        for (const auto kind : {DetectorKind::faster_rcnn, DetectorKind::mask_rcnn,
                                DetectorKind::yolo_v5}) {
            s.arms.push_back(detector_arm(orin, kind, dataset));
        }
        scenarios_.push_back(std::move(s));
    }

    // --- Fig. 2: stage-2 latency vs proposal count ---------------------------
    {
        const struct {
            const char* name;
            DetectorKind kind;
            int max;
            int step;
        } sweeps[] = {
            {"fig2_frcnn_sweep", DetectorKind::faster_rcnn, 600, 60},
            {"fig2_mrcnn_sweep", DetectorKind::mask_rcnn, 300, 30},
        };
        for (const auto& sweep : sweeps) {
            Scenario s(runtime::static_experiment(orin, sweep.kind, "KITTI", 1, 0));
            s.name = sweep.name;
            s.title = std::string("Fig. 2 (") + detector::to_string(sweep.kind) + ")";
            s.description = "Second-stage latency as a function of the RPN proposal "
                            "count at a pinned CPU/GPU frequency (one cold-start frame "
                            "per probe point).";
            s.tags = {"paper", "figure", "probe"};
            s.config.schedule = workload::DomainSchedule::constant("KITTI", 10.0);
            for (int p = 0; p <= sweep.max; p += sweep.step) {
                s.arms.push_back(proposal_probe_arm(p));
            }
            scenarios_.push_back(std::move(s));
        }
    }

    // --- Figs. 4-6: governor-comparison traces -------------------------------
    const struct {
        const char* name;
        const char* fig;
        const platform::DeviceSpec* spec;
        DetectorKind kind;
        const char* dataset;
        std::size_t iters;
        std::size_t pre;
    } traces[] = {
        {"fig4_visdrone", "Fig. 4", &orin, DetectorKind::faster_rcnn, "VisDrone2019",
         orin_iters, orin_pre},
        {"fig4_kitti", "Fig. 4", &orin, DetectorKind::faster_rcnn, "KITTI", orin_iters,
         orin_pre},
        {"fig5_visdrone", "Fig. 5", &orin, DetectorKind::mask_rcnn, "VisDrone2019",
         orin_iters, orin_pre},
        {"fig5_kitti", "Fig. 5", &orin, DetectorKind::mask_rcnn, "KITTI", orin_iters,
         orin_pre},
        {"fig6_visdrone", "Fig. 6", &mi11, DetectorKind::faster_rcnn, "VisDrone2019",
         mi11_iters, mi11_pre},
        {"fig6_kitti", "Fig. 6", &mi11, DetectorKind::faster_rcnn, "KITTI", mi11_iters,
         mi11_pre},
    };
    for (const auto& t : traces) {
        Scenario s(runtime::static_experiment(*t.spec, t.kind, t.dataset, t.iters, t.pre));
        s.name = t.name;
        s.title = std::string(t.fig) + " (" + t.dataset + ")";
        s.description = std::string(t.spec->name) + " + " + detector::to_string(t.kind) +
                        " on " + t.dataset + ": default vs zTT vs Lotus traces.";
        s.tags = {"paper", "figure"};
        s.arms = standard_arms(*t.spec);
        scenarios_.push_back(std::move(s));
    }

    // --- Fig. 7a: ambient warm/cold/warm zones -------------------------------
    {
        Scenario s(runtime::static_experiment(orin, DetectorKind::mask_rcnn,
                                              "VisDrone2019", orin_iters, orin_pre));
        s.name = "fig7a_temp_changes";
        s.title = "Fig. 7a (temperature changes)";
        s.description = "MaskRCNN + VisDrone2019 on the Orin Nano while the ambient "
                        "moves warm (25C) -> cold (0C) -> warm (25C).";
        s.tags = {"paper", "figure", "dynamic"};
        const auto third = orin_iters / 3;
        s.config.ambient =
            workload::AmbientProfile::zones({{0, 25.0}, {third, 0.0}, {2 * third, 25.0}});
        s.arms = standard_arms(orin);
        scenarios_.push_back(std::move(s));
    }

    // --- Fig. 7b: mid-run domain switch --------------------------------------
    {
        const auto half = orin_iters / 2;
        const double l_kitti = workload::latency_constraint_s(
            orin.name, DetectorKind::faster_rcnn, "KITTI");
        const double l_visdrone = workload::latency_constraint_s(
            orin.name, DetectorKind::faster_rcnn, "VisDrone2019");
        Scenario s(runtime::ExperimentConfig{
            .device_spec = orin,
            .detector = DetectorKind::faster_rcnn,
            .schedule = workload::DomainSchedule::segments(
                {{0, "KITTI", l_kitti}, {half, "VisDrone2019", l_visdrone}}),
            .ambient = workload::AmbientProfile::constant(25.0),
            .iterations = orin_iters,
            .pretrain_iterations = orin_pre,
            .seed = 42,
            .engine = {},
            .frame_hook = nullptr,
        });
        s.name = "fig7b_domain_changes";
        s.title = "Fig. 7b (domain changes)";
        s.description = "FasterRCNN on the Orin Nano; the dataset (and latency "
                        "constraint) switches KITTI -> VisDrone2019 mid-run.";
        s.tags = {"paper", "figure", "dynamic"};
        s.arms = standard_arms(orin);
        scenarios_.push_back(std::move(s));
    }

    // --- Tables 1-2: quantitative cells with the paper's reference values ----
    const struct {
        const char* name;
        const char* table;
        const platform::DeviceSpec* spec;
        DetectorKind kind;
        const char* dataset;
        std::size_t iters;
        std::size_t pre;
        PaperRow paper_default;
        PaperRow paper_ztt;
        PaperRow paper_lotus;
    } cells[] = {
        {"table1_frcnn_kitti", "Table 1", &orin, DetectorKind::faster_rcnn, "KITTI",
         orin_iters, orin_pre, {434.6, 139.8, 0.514}, {363.7, 85.6, 0.555},
         {343.2, 68.6, 0.665}},
        {"table1_frcnn_visdrone", "Table 1", &orin, DetectorKind::faster_rcnn,
         "VisDrone2019", orin_iters, orin_pre, {686.0, 241.1, 0.294},
         {577.6, 167.5, 0.463}, {523.5, 102.9, 0.711}},
        {"table1_mrcnn_kitti", "Table 1", &orin, DetectorKind::mask_rcnn, "KITTI",
         orin_iters, orin_pre, {443.9, 148.0, 0.598}, {408.3, 111.7, 0.871},
         {388.5, 88.9, 0.952}},
        {"table1_mrcnn_visdrone", "Table 1", &orin, DetectorKind::mask_rcnn,
         "VisDrone2019", orin_iters, orin_pre, {768.4, 260.4, 0.390},
         {584.3, 114.2, 0.501}, {531.4, 70.7, 0.749}},
        {"table2_frcnn_kitti", "Table 2", &mi11, DetectorKind::faster_rcnn, "KITTI",
         mi11_iters, mi11_pre, {1377.5, 525.1, 0.709}, {1260.9, 448.2, 0.833},
         {1185.8, 429.9, 0.897}},
        {"table2_frcnn_visdrone", "Table 2", &mi11, DetectorKind::faster_rcnn,
         "VisDrone2019", mi11_iters, mi11_pre, {2728.0, 761.5, 0.633},
         {2509.7, 649.3, 0.797}, {2421.0, 558.7, 0.925}},
        {"table2_mrcnn_kitti", "Table 2", &mi11, DetectorKind::mask_rcnn, "KITTI",
         mi11_iters, mi11_pre, {1652.1, 781.8, 0.613}, {1582.7, 610.5, 0.798},
         {1429.5, 552.3, 0.915}},
        {"table2_mrcnn_visdrone", "Table 2", &mi11, DetectorKind::mask_rcnn,
         "VisDrone2019", mi11_iters, mi11_pre, {3241.9, 725.5, 0.401},
         {2972.5, 621.7, 0.594}, {2649.5, 591.2, 0.838}},
    };
    for (const auto& c : cells) {
        Scenario s(runtime::static_experiment(*c.spec, c.kind, c.dataset, c.iters, c.pre));
        s.name = c.name;
        s.title = std::string(c.table) + ": " + detector::to_string(c.kind) + " / " +
                  c.dataset;
        s.description = std::string("Quantitative cell on the ") + c.spec->name +
                        " printed next to the paper's reported values.";
        s.tags = {"paper", "table"};
        s.arms = standard_arms_with_paper(*c.spec, c.paper_default, c.paper_ztt,
                                          c.paper_lotus);
        scenarios_.push_back(std::move(s));
    }

    // --- Design ablation ------------------------------------------------------
    {
        Scenario s(runtime::static_experiment(orin, DetectorKind::faster_rcnn,
                                              "VisDrone2019", orin_iters, orin_pre));
        s.name = "ablation_design";
        s.title = "Ablation: LOTUS design choices";
        s.description = "Each design choice of Secs. 4.2-4.3.5 removed in isolation on "
                        "the hardest static cell (Orin + FasterRCNN + VisDrone2019).";
        s.tags = {"paper", "ablation"};
        const auto base = [&] {
            core::LotusConfig c;
            c.reward.t_thres_celsius = platform::reward_threshold_celsius(orin);
            return c;
        };
        s.arms.push_back(lotus_arm_with(orin, "Lotus(full)", base()));
        {
            auto c = base();
            c.decision_mode = core::DecisionMode::frame_start_only;
            s.arms.push_back(lotus_arm_with(orin, "frame-start-only", c));
        }
        {
            auto c = base();
            c.decision_mode = core::DecisionMode::post_rpn_only;
            s.arms.push_back(lotus_arm_with(orin, "post-rpn-only", c));
        }
        {
            auto c = base();
            c.use_two_networks = true;
            s.arms.push_back(lotus_arm_with(orin, "two-networks", c));
        }
        {
            auto c = base();
            c.ztt_style_cooldown = true;
            s.arms.push_back(lotus_arm_with(orin, "ztt-cooldown", c));
        }
        {
            auto c = base();
            c.double_dqn = true;
            s.arms.push_back(lotus_arm_with(orin, "double-dqn", c));
        }
        scenarios_.push_back(std::move(s));
    }

    // --- Example missions -----------------------------------------------------
    {
        Scenario s(runtime::static_experiment(orin, DetectorKind::faster_rcnn, "KITTI",
                                              fast_mode() ? 600 : 2000,
                                              fast_mode() ? 500 : 1500));
        s.name = "example_quickstart";
        s.title = "Quickstart: Orin Nano + FasterRCNN + KITTI";
        s.description = "The three headline metrics (mean latency, std, satisfaction "
                        "rate) for default vs zTT vs Lotus on the canonical cell.";
        s.tags = {"example"};
        s.arms = standard_arms(orin);
        scenarios_.push_back(std::move(s));
    }
    {
        Scenario s(runtime::static_experiment(orin, DetectorKind::faster_rcnn, "KITTI",
                                              fast_mode() ? 600 : 2500, orin_pre));
        s.name = "example_autonomous_driving";
        s.title = "Autonomous driving: KITTI perception with a hard deadline";
        s.description = "A long heat-soaked drive; the application cares about tail "
                        "latency (p95/p99, miss streaks), not just the mean.";
        s.tags = {"example"};
        s.arms = standard_arms(orin);
        scenarios_.push_back(std::move(s));
    }
    {
        const std::size_t frames = fast_mode() ? 600 : 1800;
        Scenario s(runtime::static_experiment(orin, DetectorKind::mask_rcnn,
                                              "VisDrone2019", frames,
                                              fast_mode() ? 500 : 2000));
        s.name = "example_drone_mission";
        s.title = "Drone surveillance: MaskRCNN patrol mission";
        s.description = "Ground training, then a climb/loiter/descend mission whose "
                        "altitude drives the ambient temperature.";
        s.tags = {"example", "dynamic"};
        s.config.ambient = mission_profile(frames);
        s.arms.push_back(default_arm(orin));
        s.arms.push_back(lotus_arm(orin));
        scenarios_.push_back(std::move(s));
    }

    // --- Stress scenarios (beyond the paper) ----------------------------------
    {
        Scenario s(runtime::static_experiment(orin, DetectorKind::faster_rcnn,
                                              "VisDrone2019", orin_iters, 0));
        s.name = "stress_cold_start";
        s.title = "Stress: cold-start learning";
        s.description = "No pre-training budget at all: the learning governors must "
                        "converge online while frames are being scored.";
        s.tags = {"stress"};
        s.arms = standard_arms(orin);
        scenarios_.push_back(std::move(s));
    }
    {
        Scenario s(runtime::static_experiment(orin, DetectorKind::mask_rcnn,
                                              "VisDrone2019", orin_iters, orin_pre));
        s.name = "stress_heatwave";
        s.title = "Stress: heatwave ambient ramp";
        s.description = "MaskRCNN + VisDrone2019 on the Orin Nano while the ambient "
                        "ramps 25C -> 45C -> 25C; the thermal headroom collapses to "
                        "almost nothing at the peak.";
        s.tags = {"stress", "dynamic"};
        s.config.ambient = heatwave_profile(orin_iters, 45.0);
        s.arms = standard_arms(orin);
        scenarios_.push_back(std::move(s));
    }
    {
        Scenario s(runtime::static_experiment(mi11, DetectorKind::faster_rcnn, "KITTI",
                                              mi11_iters, mi11_pre));
        s.name = "stress_mi11_heatwave";
        s.title = "Stress: phone in the sun";
        s.description = "The skin-limited Mi 11 Lite under a 25C/40C/25C ambient zone "
                        "profile -- the phone analogue of Fig. 7a.";
        s.tags = {"stress", "dynamic"};
        const auto third = mi11_iters / 3;
        s.config.ambient =
            workload::AmbientProfile::zones({{0, 25.0}, {third, 40.0}, {2 * third, 25.0}});
        s.arms = standard_arms(mi11);
        scenarios_.push_back(std::move(s));
    }
    {
        Scenario s(runtime::static_experiment(orin, DetectorKind::faster_rcnn, "KITTI",
                                              orin_iters, orin_pre));
        s.name = "stress_domain_storm";
        s.title = "Stress: domain-shift storm";
        s.description = "The dataset (and constraint) flips between KITTI and "
                        "VisDrone2019 every eighth of the run -- far more often than "
                        "Fig. 7b's single switch.";
        s.tags = {"stress", "dynamic"};
        const double l_kitti = workload::latency_constraint_s(
            orin.name, DetectorKind::faster_rcnn, "KITTI");
        const double l_visdrone = workload::latency_constraint_s(
            orin.name, DetectorKind::faster_rcnn, "VisDrone2019");
        std::vector<workload::DomainSegment> segs;
        const auto eighth = orin_iters / 8;
        for (std::size_t k = 0; k < 8; ++k) {
            const bool kitti = k % 2 == 0;
            segs.push_back({k * eighth, kitti ? "KITTI" : "VisDrone2019",
                            kitti ? l_kitti : l_visdrone});
        }
        s.config.schedule = workload::DomainSchedule::segments(std::move(segs));
        s.arms = standard_arms(orin);
        scenarios_.push_back(std::move(s));
    }
    {
        Scenario s(runtime::static_experiment(orin, DetectorKind::faster_rcnn,
                                              "VisDrone2019", orin_iters, orin_pre));
        s.name = "stress_constraint_sweep";
        s.title = "Stress: latency-constraint sweep";
        s.description = "LOTUS on the hardest static cell under constraints from 0.8x "
                        "to 1.2x the calibrated L -- how gracefully does satisfaction "
                        "degrade as the deadline tightens?";
        s.tags = {"stress", "sweep"};
        for (const double scale : {0.8, 0.9, 1.0, 1.1, 1.2}) {
            s.arms.push_back(
                constraint_arm(orin, "VisDrone2019", DetectorKind::faster_rcnn, scale));
        }
        scenarios_.push_back(std::move(s));
    }

    // --- Serving scenarios (multi-stream runtime) -----------------------------
    // N camera/client streams multiplexed onto one device through the
    // serving::ServingEngine. The Orin + FasterRCNN cell sustains roughly
    // 2.2-2.9 requests/s depending on the governor, which calibrates the
    // load points below: "light" sits well under capacity, "saturation"
    // ~30% above it, and the rest shape *when* the load lands rather than
    // how much of it there is.
    {
        const double slo = 0.9; // 2x the single-frame constraint: queueing headroom
        const std::size_t n = serve_requests();

        {
            Scenario s = serving_scenario(
                orin, "serve_light", "Serving: light load",
                "4 periodic KITTI streams at 1.2 req/s total -- far under device "
                "capacity; every policy should be near-perfect here (regression "
                "anchor for the serving stack).",
                "fifo");
            for (int i = 0; i < 4; ++i) {
                s.serving->streams.push_back(cam_stream(
                    "cam" + std::to_string(i), "KITTI", slo, n,
                    {.kind = serving::ArrivalKind::periodic, .rate_hz = 0.3,
                     .phase_s = 0.8 * i}));
            }
            s.arms.push_back(default_arm(orin));
            s.arms.push_back(lotus_arm(orin));
            scenarios_.push_back(std::move(s));
        }
        {
            Scenario s = serving_scenario(
                orin, "serve_saturation", "Serving: saturation",
                "8 Poisson KITTI streams at ~3.4 req/s total, ~30% above device "
                "capacity: the queue never drains, so admission control and "
                "thermal headroom decide the deadline-miss rate. The headline "
                "LOTUS-vs-Linux-governors serving comparison (bench_serving).",
                "edf_admit");
            for (int i = 0; i < 8; ++i) {
                s.serving->streams.push_back(cam_stream(
                    "cam" + std::to_string(i), "KITTI", slo, n,
                    {.kind = serving::ArrivalKind::poisson, .rate_hz = 0.42,
                     .phase_s = 0.25 * i}));
            }
            s.arms.push_back(default_arm(orin));
            s.arms.push_back(performance_arm());
            s.arms.push_back(ztt_arm(orin));
            s.arms.push_back(lotus_arm(orin));
            scenarios_.push_back(std::move(s));
        }
        {
            Scenario s = serving_scenario(
                orin, "serve_burst_storm", "Serving: burst storm",
                "8 motion-triggered KITTI streams firing 6-request volleys; the "
                "mean rate is sustainable but volleys overlap, so the queue "
                "oscillates between empty and deep.",
                "edf_admit");
            for (int i = 0; i < 8; ++i) {
                s.serving->streams.push_back(cam_stream(
                    "cam" + std::to_string(i), "KITTI", slo, n,
                    {.kind = serving::ArrivalKind::bursty, .rate_hz = 0.33,
                     .phase_s = 2.1 * i, .burst = 6}));
            }
            s.arms.push_back(default_arm(orin));
            s.arms.push_back(lotus_arm(orin));
            scenarios_.push_back(std::move(s));
        }
        {
            Scenario s = serving_scenario(
                orin, "serve_mixed_slo", "Serving: mixed tenants, tight and bulk SLOs",
                "3 tight-SLO KITTI streams (600 ms) share the device with 3 "
                "bulk VisDrone2019 streams (2.5 s): EDF must interleave heavy "
                "low-urgency frames with light urgent ones.",
                "edf");
            for (int i = 0; i < 3; ++i) {
                s.serving->streams.push_back(cam_stream(
                    "tight" + std::to_string(i), "KITTI", 0.6, n,
                    {.kind = serving::ArrivalKind::poisson, .rate_hz = 0.3,
                     .phase_s = 0.5 * i}));
                s.serving->streams.push_back(cam_stream(
                    "bulk" + std::to_string(i), "VisDrone2019", 2.5, n,
                    {.kind = serving::ArrivalKind::poisson, .rate_hz = 0.18,
                     .phase_s = 1.0 + 0.5 * i}));
            }
            s.arms.push_back(default_arm(orin));
            s.arms.push_back(lotus_arm(orin));
            scenarios_.push_back(std::move(s));
        }
        {
            Scenario s = serving_scenario(
                orin, "serve_diurnal", "Serving: diurnal ramp",
                "6 KITTI streams under a non-homogeneous Poisson day/night "
                "profile: the trough idles (and cools) the device, the peak "
                "pushes past capacity -- sustained-load adaptation in one run.",
                "edf_admit");
            for (int i = 0; i < 6; ++i) {
                s.serving->streams.push_back(cam_stream(
                    "cam" + std::to_string(i), "KITTI", slo, n,
                    {.kind = serving::ArrivalKind::diurnal, .rate_hz = 0.4,
                     .phase_s = 0.7 * i}));
            }
            s.arms.push_back(default_arm(orin));
            s.arms.push_back(lotus_arm(orin));
            scenarios_.push_back(std::move(s));
        }
        {
            Scenario s = serving_scenario(
                orin, "serve_latency_attack", "Serving: latency attack",
                "2 well-behaved periodic streams suffer 2 adversarial streams "
                "that stay quiet long enough for the device to cool, then dump "
                "dense 10-request volleys with a 300 ms SLO -- the bursty "
                "worst case of \"Can't Slow me Down\". Admission control must "
                "shed the hopeless volley tail instead of sacrificing the "
                "victims.",
                "edf_admit");
            for (int i = 0; i < 2; ++i) {
                s.serving->streams.push_back(cam_stream(
                    "victim" + std::to_string(i), "KITTI", slo, n,
                    {.kind = serving::ArrivalKind::periodic, .rate_hz = 0.3,
                     .phase_s = 1.6 * i}));
                s.serving->streams.push_back(cam_stream(
                    "attack" + std::to_string(i), "KITTI", 0.3, n,
                    {.kind = serving::ArrivalKind::attack, .rate_hz = 0.5,
                     .phase_s = 3.0 * i, .burst = 10}));
            }
            s.arms.push_back(default_arm(orin));
            s.arms.push_back(lotus_arm(orin));
            scenarios_.push_back(std::move(s));
        }
    }

    // --- Fleet scenarios (request routing across a device pool) ---------------
    // The dispatcher multiplexes the merged stream timeline across N devices
    // (per-device governors, queues and thermal state). One Orin sustains
    // ~2.2-2.9 req/s on the FasterRCNN+KITTI cell, which calibrates the load
    // points: "saturation" offers ~30% more than a 4-Orin pool sustains,
    // "hetero" sizes to a mixed Orin/phone pool where *placement* decides
    // tail latency, and the rest shape when and where the load lands.
    {
        const double slo = 0.9; // 2x the Orin single-frame constraint
        const std::size_t n = fleet_requests();

        {
            Scenario s = fleet_scenario(
                orin, "serve_fleet_saturation", "Fleet: homogeneous saturation",
                "8 Poisson KITTI streams at ~9.6 req/s offered to a pool of 4 "
                "identical Orin Nanos (right at pool capacity) racked in a "
                "hot aisle with an airflow gradient (72C at the choked corner "
                "down to 48C): blind placement feeds the hot corner more than "
                "it can dissipate and its queue spirals, headroom-aware "
                "placement gives it exactly the load it can carry. The "
                "headline router comparison (bench_fleet).",
                "edf_admit");
            s.fleet->devices = device_pool(orin, "orin", 4);
            // Rack-position ambient gradient: the devices are identical, the
            // airflow is not -- which is exactly where placement decides
            // whether a die trips.
            for (std::size_t d = 0; d < 4; ++d) {
                s.fleet->devices[d].ambient_celsius = 72.0 - 8.0 * static_cast<double>(d);
            }
            for (int i = 0; i < 8; ++i) {
                s.fleet->streams.push_back(cam_stream(
                    "cam" + std::to_string(i), "KITTI", slo, n,
                    {.kind = serving::ArrivalKind::poisson, .rate_hz = 1.2,
                     .phase_s = 0.11 * i}));
            }
            s.arms.push_back(fleet_arm(lotus_arm(orin), "round_robin"));
            s.arms.push_back(fleet_arm(lotus_arm(orin), "least_queue"));
            s.arms.push_back(fleet_arm(lotus_arm(orin), "thermal_aware"));
            s.arms.push_back(fleet_arm(lotus_arm(orin), "lotus_fleet"));
            s.arms.push_back(fleet_arm(performance_arm(), "round_robin"));
            s.arms.push_back(fleet_arm(performance_arm(), "thermal_aware"));
            scenarios_.push_back(std::move(s));
        }
        {
            Scenario s = fleet_scenario(
                orin, "serve_fleet_hetero", "Fleet: heterogeneous pool",
                "2 Orin Nanos + 2 Mi 11 Lites (a ~4x per-frame speed gap) "
                "serve 6 Poisson KITTI streams near pool capacity: blind "
                "placement drowns the phones, backlog- and pace-aware routers "
                "keep them useful for the load they can actually carry.",
                "edf_admit");
            const double mi11_l = workload::latency_constraint_s(
                mi11.name, DetectorKind::faster_rcnn, "KITTI");
            s.fleet->devices = device_pool(orin, "orin", 2);
            for (std::size_t i = 0; i < 2; ++i) {
                auto d = fleet::make_device("mi11_" + std::to_string(i), mi11);
                d.pretrain_constraint_s = mi11_l;
                s.fleet->devices.push_back(std::move(d));
            }
            // The SLO must leave room for a phone-served frame plus queueing.
            const double hetero_slo = 2.0 * mi11_l;
            for (int i = 0; i < 6; ++i) {
                s.fleet->streams.push_back(cam_stream(
                    "cam" + std::to_string(i), "KITTI", hetero_slo, n,
                    {.kind = serving::ArrivalKind::poisson, .rate_hz = 0.9,
                     .phase_s = 0.19 * i}));
            }
            s.arms.push_back(fleet_arm(lotus_arm(orin), "round_robin"));
            s.arms.push_back(fleet_arm(lotus_arm(orin), "least_queue"));
            s.arms.push_back(fleet_arm(lotus_arm(orin), "lotus_fleet"));
            scenarios_.push_back(std::move(s));
        }
        {
            Scenario s = fleet_scenario(
                orin, "serve_fleet_diurnal_holdout", "Fleet: diurnal ramp with a failure",
                "6 diurnal KITTI streams over 4 Orin Nanos; one device is "
                "withdrawn at 40% of the run (failure / maintenance holdout) "
                "and its queue re-routes to the survivors -- the pool must "
                "absorb the peak with 3/4 of its capacity.",
                "edf_admit");
            s.fleet->devices = device_pool(orin, "orin", 4);
            const double rate = 1.15;
            // The timeline spans ~requests/rate seconds per stream; withdraw
            // the device at 40% of that horizon.
            s.fleet->devices[3].fail_at_s = 0.4 * static_cast<double>(n) / rate;
            for (int i = 0; i < 6; ++i) {
                s.fleet->streams.push_back(cam_stream(
                    "cam" + std::to_string(i), "KITTI", slo, n,
                    {.kind = serving::ArrivalKind::diurnal, .rate_hz = rate,
                     .phase_s = 0.23 * i}));
            }
            s.arms.push_back(fleet_arm(lotus_arm(orin), "least_queue"));
            s.arms.push_back(fleet_arm(lotus_arm(orin), "lotus_fleet"));
            scenarios_.push_back(std::move(s));
        }
        {
            Scenario s = fleet_scenario(
                orin, "serve_fleet_burst_migration", "Fleet: burst storm, migration on/off",
                "6 motion-triggered KITTI streams volley 10 requests at a "
                "time into 3 Orin Nanos with badly skewed airflow (68C at "
                "the choked corner). A blind round-robin keeps feeding the "
                "hot corner until a volley bakes it past its trip; with "
                "migration enabled, the trip drains the clamped device's "
                "queue to the rest of the pool instead of serving the "
                "backlog at clamp speed.",
                "edf_admit");
            s.fleet->devices = device_pool(orin, "orin", 3);
            // Strong airflow gradient: the choked corner trips under volley
            // load that the rest of the pool shrugs off -- the regime where
            // migration pays (or does not; that is the arm comparison).
            for (std::size_t d = 0; d < 3; ++d) {
                s.fleet->devices[d].ambient_celsius = 68.0 - 10.0 * static_cast<double>(d);
            }
            for (int i = 0; i < 6; ++i) {
                s.fleet->streams.push_back(cam_stream(
                    "cam" + std::to_string(i), "KITTI", slo, n,
                    {.kind = serving::ArrivalKind::bursty, .rate_hz = 1.2,
                     .phase_s = 1.3 * i, .burst = 10}));
            }
            s.arms.push_back(fleet_arm(lotus_arm(orin), "round_robin"));
            s.arms.push_back(fleet_arm(lotus_arm(orin), "round_robin", true));
            s.arms.push_back(fleet_arm(performance_arm(), "round_robin"));
            s.arms.push_back(fleet_arm(performance_arm(), "round_robin", true));
            scenarios_.push_back(std::move(s));
        }
    }

    // --- Overhead analysis (Sec. 4.4.2) ---------------------------------------
    {
        Scenario s(runtime::static_experiment(orin, DetectorKind::faster_rcnn, "KITTI",
                                              fast_mode() ? 200 : 1000,
                                              fast_mode() ? 200 : 1000));
        s.name = "overhead_analysis";
        s.title = "Overhead: agent cost per inference";
        s.description = "Short KITTI run for the agent-overhead accounting of "
                        "Sec. 4.4.2: the charged per-decision communication cost vs "
                        "the detector's frame latency, zTT (one decision) vs LOTUS "
                        "(two decisions). bench_overhead adds wall-clock "
                        "microbenchmarks of the Q-network on top.";
        s.tags = {"paper", "overhead"};
        s.arms.push_back(ztt_arm(orin));
        s.arms.push_back(lotus_arm(orin));
        scenarios_.push_back(std::move(s));
    }
}

const ScenarioRegistry& ScenarioRegistry::instance() {
    static const ScenarioRegistry registry;
    return registry;
}

const Scenario* ScenarioRegistry::find(const std::string& name) const {
    for (const auto& s : scenarios_) {
        if (s.name == name) return &s;
    }
    return nullptr;
}

const Scenario& ScenarioRegistry::at(const std::string& name) const {
    if (const Scenario* s = find(name)) return *s;
    std::string known;
    for (const auto& s : scenarios_) {
        known += known.empty() ? s.name : ", " + s.name;
    }
    throw std::out_of_range("unknown scenario '" + name + "' (known: " + known + ")");
}

std::vector<const Scenario*> ScenarioRegistry::with_tag(const std::string& tag) const {
    std::vector<const Scenario*> out;
    out.reserve(scenarios_.size());
    for (const auto& s : scenarios_) {
        if (s.has_tag(tag)) out.push_back(&s);
    }
    return out;
}

std::vector<const Scenario*> ScenarioRegistry::with_prefix(const std::string& prefix) const {
    std::vector<const Scenario*> out;
    out.reserve(scenarios_.size());
    for (const auto& s : scenarios_) {
        if (s.name.rfind(prefix, 0) == 0) out.push_back(&s);
    }
    return out;
}

} // namespace lotus::harness
