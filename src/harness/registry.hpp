#pragma once
// ScenarioRegistry: the enumerable catalog of every experiment this
// repository can run.
//
// One entry per paper figure/table cell (Figs. 1-7, Tables 1-2, the design
// ablation), per example mission, and per stress workload (cold start,
// heatwave ambient ramps, domain-shift storms, latency-constraint sweeps).
// Front ends look scenarios up by name (`lotus_run --scenario fig4_kitti`),
// by prefix, or by tag, and hand them to the ExperimentHarness -- nobody
// hand-rolls experiment loops.
//
// Iteration budgets honour LOTUS_BENCH_FAST=1 (shrunk smoke-run sizes), so
// the registry is rebuilt per process, not a compile-time constant.

#include <cstddef>
#include <string>
#include <vector>

#include "harness/scenario.hpp"

namespace lotus::harness {

/// True when LOTUS_BENCH_FAST=1 shrinks iteration budgets for smoke runs.
[[nodiscard]] bool fast_mode();

/// Measured iterations for figure/table scenarios on each device (paper:
/// 3,000 on the Orin Nano, 1,000 on the Mi 11 Lite).
[[nodiscard]] std::size_t orin_iterations();
[[nodiscard]] std::size_t mi11_iterations();

/// Pre-training budgets for the learning governors (the paper trains for
/// 10,000 iterations; the phone gets a larger budget because its 1,000
/// measured frames leave less room for online convergence).
[[nodiscard]] std::size_t pretrain_iterations();
[[nodiscard]] std::size_t mi11_pretrain_iterations();

class ScenarioRegistry {
public:
    /// Builds the full built-in catalog.
    ScenarioRegistry();

    /// Shared per-process instance (rebuild with `ScenarioRegistry()` if the
    /// environment changed).
    [[nodiscard]] static const ScenarioRegistry& instance();

    [[nodiscard]] const std::vector<Scenario>& all() const noexcept { return scenarios_; }

    /// nullptr when absent.
    [[nodiscard]] const Scenario* find(const std::string& name) const;

    /// Throws std::out_of_range with the known-name list when absent.
    [[nodiscard]] const Scenario& at(const std::string& name) const;

    [[nodiscard]] std::vector<const Scenario*> with_tag(const std::string& tag) const;
    [[nodiscard]] std::vector<const Scenario*> with_prefix(const std::string& prefix) const;

private:
    std::vector<Scenario> scenarios_;
};

} // namespace lotus::harness
