#include "harness/scenario.hpp"

#include <algorithm>

#include "governors/linux_governors.hpp"
#include "governors/ztt.hpp"
#include "platform/presets.hpp"

namespace lotus::harness {

bool Scenario::has_tag(const std::string& tag) const {
    return std::find(tags.begin(), tags.end(), tag) != tags.end();
}

ArmSpec default_arm(const platform::DeviceSpec& spec) {
    const bool orin = spec.name.find("orin") != std::string::npos;
    return ArmSpec{
        .name = "default",
        .make =
            [orin](std::uint64_t) -> std::unique_ptr<governors::Governor> {
            return std::make_unique<governors::DefaultGovernor>(
                orin ? governors::DefaultGovernor::orin_nano()
                     : governors::DefaultGovernor::mi11_lite());
        },
        .paper = std::nullopt,
        .tweak = nullptr,
        .serving_tweak = nullptr,
    };
}

ArmSpec ztt_arm(const platform::DeviceSpec& spec) {
    const auto cpu_levels = spec.cpu.opp.num_levels();
    const auto gpu_levels = spec.gpu.opp.num_levels();
    const double t_thres = platform::reward_threshold_celsius(spec);
    return ArmSpec{
        .name = "zTT",
        .make =
            [=](std::uint64_t seed) -> std::unique_ptr<governors::Governor> {
            governors::ZttConfig cfg;
            cfg.t_thres_celsius = t_thres;
            cfg.seed = seed;
            return std::make_unique<governors::ZttGovernor>(cpu_levels, gpu_levels, cfg);
        },
        .paper = std::nullopt,
        .tweak = nullptr,
        .serving_tweak = nullptr,
    };
}

ArmSpec lotus_arm(const platform::DeviceSpec& spec) {
    core::LotusConfig cfg;
    cfg.reward.t_thres_celsius = platform::reward_threshold_celsius(spec);
    return lotus_arm_with(spec, "Lotus", cfg);
}

ArmSpec lotus_arm_with(const platform::DeviceSpec& spec, const std::string& label,
                       core::LotusConfig cfg) {
    const auto cpu_levels = spec.cpu.opp.num_levels();
    const auto gpu_levels = spec.gpu.opp.num_levels();
    if (cfg.reward.t_thres_celsius >= platform::throttle_bound_celsius(spec)) {
        cfg.reward.t_thres_celsius = platform::reward_threshold_celsius(spec);
    }
    return ArmSpec{
        .name = label,
        .make =
            [=](std::uint64_t seed) -> std::unique_ptr<governors::Governor> {
            auto run_cfg = cfg;
            run_cfg.seed = seed;
            return std::make_unique<core::LotusAgent>(cpu_levels, gpu_levels, run_cfg);
        },
        .paper = std::nullopt,
        .tweak = nullptr,
        .serving_tweak = nullptr,
    };
}

ArmSpec fixed_arm(std::size_t cpu_level, std::size_t gpu_level) {
    return ArmSpec{
        .name = "fixed(" + std::to_string(cpu_level) + "," + std::to_string(gpu_level) + ")",
        .make =
            [=](std::uint64_t) -> std::unique_ptr<governors::Governor> {
            return std::make_unique<governors::FixedGovernor>(cpu_level, gpu_level);
        },
        .paper = std::nullopt,
        .tweak = nullptr,
        .serving_tweak = nullptr,
    };
}

ArmSpec performance_arm() {
    return ArmSpec{
        .name = "performance",
        .make =
            [](std::uint64_t) -> std::unique_ptr<governors::Governor> {
            return std::make_unique<governors::PerformanceGovernor>();
        },
        .paper = std::nullopt,
        .tweak = nullptr,
        .serving_tweak = nullptr,
    };
}

ArmSpec powersave_arm() {
    return ArmSpec{
        .name = "powersave",
        .make =
            [](std::uint64_t) -> std::unique_ptr<governors::Governor> {
            return std::make_unique<governors::PowersaveGovernor>();
        },
        .paper = std::nullopt,
        .tweak = nullptr,
        .serving_tweak = nullptr,
    };
}

} // namespace lotus::harness
