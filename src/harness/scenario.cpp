#include "harness/scenario.hpp"

#include <algorithm>

#include "governors/linux_governors.hpp"
#include "governors/ztt.hpp"
#include "platform/presets.hpp"

namespace lotus::harness {

bool Scenario::has_tag(const std::string& tag) const {
    return std::find(tags.begin(), tags.end(), tag) != tags.end();
}

ArmSpec fleet_arm(ArmSpec base, const std::string& router, bool migrate) {
    base.name += "+" + router + (migrate ? "+migrate" : "");
    base.fleet_tweak = [router, migrate](fleet::FleetConfig& cfg) {
        cfg.router = router;
        cfg.migrate_on_throttle = migrate;
    };
    return base;
}

namespace {

/// Spec-dependent arms define the device-parameterised factory once and
/// derive the classic single-spec `make` from it, so fleet episodes hand
/// every pool device a governor sized for *its* ladder and thresholds
/// while single-device episodes keep their baked-in spec.
ArmSpec spec_arm(std::string name, const platform::DeviceSpec& spec,
                 std::function<std::unique_ptr<governors::Governor>(
                     const platform::DeviceSpec&, std::uint64_t)>
                     make_for) {
    ArmSpec arm;
    arm.name = std::move(name);
    arm.make_for = std::move(make_for);
    arm.make = [f = arm.make_for, spec](std::uint64_t seed) { return f(spec, seed); };
    return arm;
}

} // namespace

ArmSpec default_arm(const platform::DeviceSpec& spec) {
    return spec_arm("default", spec,
                    [](const platform::DeviceSpec& dev,
                       std::uint64_t) -> std::unique_ptr<governors::Governor> {
                        const bool orin = dev.name.find("orin") != std::string::npos;
                        return std::make_unique<governors::DefaultGovernor>(
                            orin ? governors::DefaultGovernor::orin_nano()
                                 : governors::DefaultGovernor::mi11_lite());
                    });
}

ArmSpec ztt_arm(const platform::DeviceSpec& spec) {
    return spec_arm("zTT", spec,
                    [](const platform::DeviceSpec& dev,
                       std::uint64_t seed) -> std::unique_ptr<governors::Governor> {
                        governors::ZttConfig cfg;
                        cfg.t_thres_celsius = platform::reward_threshold_celsius(dev);
                        cfg.seed = seed;
                        return std::make_unique<governors::ZttGovernor>(
                            dev.cpu.opp.num_levels(), dev.gpu.opp.num_levels(), cfg);
                    });
}

ArmSpec lotus_arm(const platform::DeviceSpec& spec) {
    core::LotusConfig cfg;
    cfg.reward.t_thres_celsius = platform::reward_threshold_celsius(spec);
    return lotus_arm_with(spec, "Lotus", cfg);
}

ArmSpec lotus_arm_with(const platform::DeviceSpec& spec, const std::string& label,
                       core::LotusConfig cfg) {
    return spec_arm(
        label, spec,
        [cfg](const platform::DeviceSpec& dev,
              std::uint64_t seed) -> std::unique_ptr<governors::Governor> {
            auto run_cfg = cfg;
            // A threshold at/above the device's hardware trip would reward
            // riding the throttler; clamp to the device's safety margin
            // (per pool device in heterogeneous fleets).
            if (run_cfg.reward.t_thres_celsius >= platform::throttle_bound_celsius(dev)) {
                run_cfg.reward.t_thres_celsius = platform::reward_threshold_celsius(dev);
            }
            run_cfg.seed = seed;
            return std::make_unique<core::LotusAgent>(dev.cpu.opp.num_levels(),
                                                      dev.gpu.opp.num_levels(), run_cfg);
        });
}

ArmSpec fixed_arm(std::size_t cpu_level, std::size_t gpu_level) {
    ArmSpec arm;
    arm.name = "fixed(" + std::to_string(cpu_level) + "," + std::to_string(gpu_level) + ")";
    arm.make = [=](std::uint64_t) -> std::unique_ptr<governors::Governor> {
        return std::make_unique<governors::FixedGovernor>(cpu_level, gpu_level);
    };
    return arm;
}

ArmSpec performance_arm() {
    ArmSpec arm;
    arm.name = "performance";
    arm.make = [](std::uint64_t) -> std::unique_ptr<governors::Governor> {
        return std::make_unique<governors::PerformanceGovernor>();
    };
    return arm;
}

ArmSpec powersave_arm() {
    ArmSpec arm;
    arm.name = "powersave";
    arm.make = [](std::uint64_t) -> std::unique_ptr<governors::Governor> {
        return std::make_unique<governors::PowersaveGovernor>();
    };
    return arm;
}

} // namespace lotus::harness
