#pragma once
// ExperimentHarness: parallel episode execution over scenarios.
//
// One episode = one (scenario, arm) pair executed by an ExperimentRunner on
// a fresh device. The harness schedules batches of episodes onto a fixed
// pool of worker threads and guarantees that the results are *identical*
// to a serial run, regardless of the job count or scheduling order:
//
//  * every episode's seed is derived from (harness seed, scenario name, arm
//    index) via util::derive_seed -- a pure function of the episode's
//    identity, never of execution order;
//  * every episode constructs its own device, engine, streams and governor
//    (ExperimentRunner::run is const and reentrant);
//  * results are written into a pre-sized vector slot per episode, so the
//    output order is the declaration order.
//
// This is what turns the one-run-at-a-time paper reproduction into a sweep
// engine: a full table of (scenario x arm) cells saturates every core while
// remaining byte-for-byte reproducible.

#include <cstdint>
#include <memory>
#include <vector>

#include "fleet/trace.hpp"
#include "harness/scenario.hpp"
#include "runtime/trace.hpp"
#include "serving/trace.hpp"
#include "telemetry/recorder.hpp"

namespace lotus::harness {

struct HarnessConfig {
    /// Worker threads; 0 means hardware_concurrency. 1 runs inline (serial).
    std::size_t jobs = 0;
    /// Root experiment seed; all episode seeds derive from it.
    std::uint64_t seed = 42;
    /// Run serving/fleet episodes with summary-only traces (no per-request
    /// ledger rows). Summaries and JSON/summary.csv output are bit-identical
    /// to full-ledger runs; per-request CSV dumps and chart columns are
    /// unavailable, so only enable when no such sink is attached.
    bool summary_only = false;
    /// Record sim-time telemetry per episode (request spans, device
    /// time-series, breach flight recorder). Each episode gets its own
    /// Recorder bound for the episode's duration, so emission is a pure
    /// function of the episode's identity -- byte-identical across --jobs
    /// counts. Off by default: disabled runs carry no recorder at all.
    bool telemetry = false;
    /// Tuning for per-episode recorders (sample cadence, ring capacity);
    /// only consulted when `telemetry` is on.
    telemetry::RecorderOptions telemetry_options = {};
    /// Record every serving/fleet episode's request timeline as a compact
    /// binary trace at <trace_dir>/<scenario>/<NN>_<arm>.ltrc (NN = arm
    /// index; names sanitized like every other artifact). Empty disables
    /// capture. Classic experiment episodes have no request timeline and
    /// are skipped.
    std::string trace_dir;
    /// Replay serving/fleet episodes from traces previously recorded under
    /// the same layout (episode paths must exist; a missing or mismatched
    /// trace fails the run). Seeds still derive identically, so governor
    /// behaviour -- and therefore every output -- is byte-identical to the
    /// generating run.
    std::string replay_dir;
};

/// The on-disk location of one episode's recorded trace under `dir` --
/// shared by capture, replay and the CLIs so a directory recorded by one
/// run is a drop-in replay source for another.
[[nodiscard]] std::string episode_trace_path(const std::string& dir,
                                             const std::string& scenario_name,
                                             std::size_t arm_index,
                                             const std::string& arm_name);

/// Outcome of one (scenario, arm) episode.
struct EpisodeResult {
    std::string scenario;
    std::string arm;
    std::uint64_t episode_seed = 0;
    /// The resolved per-episode config (tweaks applied, seed substituted).
    runtime::ExperimentConfig config;
    /// Per-iteration trace (classic experiment episodes; empty for serving).
    runtime::Trace trace;
    std::optional<PaperRow> paper;
    /// Serving episodes only: the resolved serving config and the
    /// per-request ledger produced by the ServingEngine.
    std::optional<serving::ServingConfig> serving_config;
    std::optional<serving::ServingTrace> serving_trace;
    /// Fleet episodes only: the resolved fleet config and the per-request
    /// ledger (with device placements) produced by the FleetEngine.
    std::optional<fleet::FleetConfig> fleet_config;
    std::optional<fleet::FleetTrace> fleet_trace;
    /// Sim-time telemetry captured during the episode (HarnessConfig::
    /// telemetry on); null when recording was disabled.
    std::shared_ptr<telemetry::Recorder> telemetry;

    [[nodiscard]] bool is_serving() const noexcept { return serving_trace.has_value(); }
    [[nodiscard]] bool is_fleet() const noexcept { return fleet_trace.has_value(); }
};

class ExperimentHarness {
public:
    explicit ExperimentHarness(HarnessConfig config = {});

    /// Run every arm of one scenario; results in arm order.
    [[nodiscard]] std::vector<EpisodeResult> run(const Scenario& scenario) const;

    /// Run a batch of scenarios concurrently; results in (scenario, arm)
    /// declaration order. Episodes from different scenarios interleave
    /// freely across the pool.
    [[nodiscard]] std::vector<EpisodeResult> run(
        const std::vector<const Scenario*>& batch) const;

    [[nodiscard]] const HarnessConfig& config() const noexcept { return config_; }

private:
    [[nodiscard]] EpisodeResult run_episode(const Scenario& scenario,
                                            std::size_t arm_index) const;

    HarnessConfig config_;
};

} // namespace lotus::harness
