#include "harness/harness.hpp"

#include <atomic>
#include <exception>
#include <optional>
#include <thread>

#include "fleet/engine.hpp"
#include "harness/sinks.hpp"
#include "serving/engine.hpp"
#include "trace/record.hpp"
#include "util/rng.hpp"

namespace lotus::harness {

std::string episode_trace_path(const std::string& dir, const std::string& scenario_name,
                               std::size_t arm_index, const std::string& arm_name) {
    auto idx = std::to_string(arm_index);
    if (idx.size() < 2) idx.insert(0, 2 - idx.size(), '0');
    return dir + "/" + artifact_name(scenario_name) + "/" + idx + "_" +
           artifact_name(arm_name) + ".ltrc";
}

ExperimentHarness::ExperimentHarness(HarnessConfig config) : config_(config) {
    if (config_.jobs == 0) {
        const auto hw = std::thread::hardware_concurrency();
        config_.jobs = hw > 0 ? hw : 1;
    }
}

EpisodeResult ExperimentHarness::run_episode(const Scenario& scenario,
                                             std::size_t arm_index) const {
    const auto& arm = scenario.arms.at(arm_index);
    auto cfg = scenario.config;
    if (arm.tweak) arm.tweak(cfg);

    // Episode seed: a pure function of (harness seed, scenario, arm index).
    // One splitmix draw seeds the workload streams, a second seeds the
    // governor, so the two never share a stream.
    const auto episode_seed = util::derive_seed(config_.seed, scenario.name, arm_index);
    util::SplitMix64 sm(episode_seed);
    cfg.seed = sm.next();

    // Telemetry: one recorder per episode, bound to this worker thread for
    // the episode's duration. An episode runs start-to-finish on one thread,
    // so the recorder needs no locks, and its content is a pure function of
    // the episode identity (byte-identical across --jobs counts).
    std::shared_ptr<telemetry::Recorder> recorder;
    if (config_.telemetry) {
        recorder = std::make_shared<telemetry::Recorder>(config_.telemetry_options);
    }
    telemetry::BindScope bind(recorder.get());

    // Trace capture/replay applies to episodes with a request timeline
    // (serving/fleet). The capture scope is thread-local, so concurrent
    // episodes on other workers record to their own paths.
    const bool has_timeline = scenario.fleet.has_value() || scenario.serving.has_value();
    std::string capture_to;
    if (has_timeline && !config_.trace_dir.empty()) {
        capture_to =
            episode_trace_path(config_.trace_dir, scenario.name, arm_index, arm.name);
    }
    trace::CaptureScope capture(capture_to);
    std::string replay_from;
    if (has_timeline && !config_.replay_dir.empty()) {
        replay_from =
            episode_trace_path(config_.replay_dir, scenario.name, arm_index, arm.name);
    }

    if (scenario.fleet) {
        auto fleet_cfg = *scenario.fleet;
        if (arm.fleet_tweak) arm.fleet_tweak(fleet_cfg);
        fleet_cfg.seed = cfg.seed;
        if (!replay_from.empty()) fleet_cfg.replay_trace = replay_from;
        if (config_.summary_only) fleet_cfg.capture_rows = false;
        // The factory is invoked once per device by the engine, with
        // device-id-namespaced seeds derived from this root (the draw that
        // seeds the single governor of non-fleet episodes). Spec-dependent
        // arms provide make_for so each pool device gets a governor sized
        // for its own ladder; spec-independent arms fall back to make.
        const auto governor_root = sm.next();
        fleet::FleetEngine::GovernorFactory factory;
        if (arm.make_for) {
            factory = arm.make_for;
        } else {
            factory = [&arm](const platform::DeviceSpec&, std::uint64_t seed) {
                return arm.make(seed);
            };
        }
        const fleet::FleetEngine engine(fleet_cfg);
        auto trace = engine.run(factory, governor_root);
        EpisodeResult result{scenario.name,    arm.name,
                             episode_seed,     std::move(cfg),
                             runtime::Trace{}, arm.paper,
                             std::nullopt,     std::nullopt,
                             std::move(fleet_cfg), std::move(trace),
                             std::move(recorder)};
        return result;
    }

    auto governor = arm.make(sm.next());

    if (scenario.serving) {
        auto serving_cfg = *scenario.serving;
        if (arm.serving_tweak) arm.serving_tweak(serving_cfg);
        serving_cfg.seed = cfg.seed;
        if (!replay_from.empty()) serving_cfg.replay_trace = replay_from;
        if (config_.summary_only) serving_cfg.capture_rows = false;
        // Non-learning governors need no warm-up (same rule as below).
        if (governor->decision_overhead_s() == 0.0) serving_cfg.pretrain_iterations = 0;
        const serving::ServingEngine engine(serving_cfg);
        auto trace = engine.run(*governor);
        return EpisodeResult{scenario.name,    arm.name,
                             episode_seed,     std::move(cfg),
                             runtime::Trace{}, arm.paper,
                             std::move(serving_cfg), std::move(trace),
                             std::nullopt,     std::nullopt,
                             std::move(recorder)};
    }

    // Non-learning governors need no warm-up; skipping it keeps sweeps fast.
    if (governor->decision_overhead_s() == 0.0) cfg.pretrain_iterations = 0;

    const runtime::ExperimentRunner runner(cfg);
    auto trace = runner.run(*governor);
    return EpisodeResult{scenario.name,  arm.name,         episode_seed,
                         std::move(cfg), std::move(trace), arm.paper,
                         std::nullopt,   std::nullopt,     std::nullopt,
                         std::nullopt,   std::move(recorder)};
}

std::vector<EpisodeResult> ExperimentHarness::run(const Scenario& scenario) const {
    return run(std::vector<const Scenario*>{&scenario});
}

std::vector<EpisodeResult> ExperimentHarness::run(
    const std::vector<const Scenario*>& batch) const {
    struct Episode {
        const Scenario* scenario;
        std::size_t arm_index;
    };
    std::vector<Episode> episodes;
    std::size_t total_arms = 0;
    for (const Scenario* s : batch) total_arms += s->arms.size();
    episodes.reserve(total_arms);
    for (const Scenario* s : batch) {
        for (std::size_t a = 0; a < s->arms.size(); ++a) episodes.push_back({s, a});
    }

    // Slot per episode: declaration order in, declaration order out,
    // independent of which worker finishes first.
    std::vector<std::optional<EpisodeResult>> slots(episodes.size());
    std::vector<std::exception_ptr> errors(episodes.size());

    const auto execute = [&](std::size_t i) {
        try {
            slots[i] = run_episode(*episodes[i].scenario, episodes[i].arm_index);
        } catch (...) {
            errors[i] = std::current_exception();
        }
    };

    const std::size_t jobs = std::min(config_.jobs, episodes.size());
    if (jobs <= 1) {
        for (std::size_t i = 0; i < episodes.size(); ++i) execute(i);
    } else {
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (std::size_t w = 0; w < jobs; ++w) {
            pool.emplace_back([&] {
                for (;;) {
                    const auto i = next.fetch_add(1);
                    if (i >= episodes.size()) return;
                    execute(i);
                }
            });
        }
        for (auto& t : pool) t.join();
    }

    for (auto& err : errors) {
        if (err) std::rethrow_exception(err);
    }
    std::vector<EpisodeResult> results;
    results.reserve(slots.size());
    for (auto& slot : slots) results.push_back(std::move(*slot));
    return results;
}

} // namespace lotus::harness
