#include "trace/format.hpp"

#include <bit>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "util/build_info.hpp"

namespace lotus::trace {

namespace {

/// Corrupt-file guard: no stream name/dataset in a sane trace approaches
/// this, so a larger length means the table bytes are garbage.
constexpr std::uint32_t kMaxTableString = 1u << 16;

void put_u32(std::string& buf, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& buf, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_f64(std::string& buf, double v) { put_u64(buf, std::bit_cast<std::uint64_t>(v)); }

std::uint32_t get_u32(const unsigned char* p) {
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
    return v;
}

std::uint64_t get_u64(const unsigned char* p) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
}

double get_f64(const unsigned char* p) { return std::bit_cast<double>(get_u64(p)); }

[[noreturn]] void fail(const std::string& path, const std::string& what) {
    throw std::runtime_error("trace '" + path + "': " + what);
}

void read_exact(std::ifstream& in, const std::string& path, char* buf, std::size_t n,
                const char* what) {
    in.read(buf, static_cast<std::streamsize>(n));
    if (in.gcount() != static_cast<std::streamsize>(n)) {
        fail(path, std::string("truncated ") + what);
    }
}

std::string encode_record(const TraceRecord& rec) {
    std::string buf;
    buf.reserve(kRecordBytes);
    put_u64(buf, rec.id);
    put_u32(buf, rec.stream);
    put_u32(buf, static_cast<std::uint32_t>(rec.proposals));
    put_f64(buf, rec.arrival_s);
    put_f64(buf, rec.slo_s);
    put_f64(buf, rec.resolution_scale);
    put_f64(buf, rec.complexity);
    put_f64(buf, rec.jitter);
    put_u64(buf, rec.frame_index);
    return buf;
}

TraceRecord decode_record(const unsigned char* p) {
    TraceRecord rec;
    rec.id = get_u64(p);
    rec.stream = get_u32(p + 8);
    rec.proposals = static_cast<std::int32_t>(get_u32(p + 12));
    rec.arrival_s = get_f64(p + 16);
    rec.slo_s = get_f64(p + 24);
    rec.resolution_scale = get_f64(p + 32);
    rec.complexity = get_f64(p + 40);
    rec.jitter = get_f64(p + 48);
    rec.frame_index = get_u64(p + 56);
    return rec;
}

} // namespace

Writer::Writer(const std::string& path, std::vector<StreamInfo> streams)
    : path_(path), stream_count_(static_cast<std::uint32_t>(streams.size())) {
    out_.open(path, std::ios::binary | std::ios::trunc);
    if (!out_) fail(path_, "cannot open for writing");

    std::string buf;
    buf.append(kMagic, sizeof(kMagic));
    put_u32(buf, kFormatVersion);
    put_u32(buf, util::kSchemaVersion);
    std::string build = util::build_id();
    build.resize(kBuildIdBytes, '\0');
    buf.append(build.data(), kBuildIdBytes);
    put_u64(buf, 0); // record_count, patched in close()
    put_u32(buf, stream_count_);
    put_u32(buf, 0); // reserved
    for (const auto& s : streams) {
        put_u32(buf, static_cast<std::uint32_t>(s.name.size()));
        buf.append(s.name);
        put_u32(buf, static_cast<std::uint32_t>(s.dataset.size()));
        buf.append(s.dataset);
        put_f64(buf, s.slo_s);
        put_u64(buf, s.requests);
    }
    out_.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    if (!out_) fail(path_, "write failed (header)");
}

Writer::~Writer() {
    if (!closed_) {
        try {
            close();
        } catch (...) {
            // Destructor must not throw; the on-disk record_count stays 0
            // and the Reader rejects the file as truncated.
        }
    }
}

void Writer::add(const TraceRecord& rec) {
    if (rec.stream >= stream_count_) {
        throw std::invalid_argument("trace '" + path_ + "': record stream " +
                                    std::to_string(rec.stream) +
                                    " out of range (table has " +
                                    std::to_string(stream_count_) + " streams)");
    }
    const auto buf = encode_record(rec);
    out_.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    if (!out_) fail(path_, "write failed (record)");
    ++written_;
}

void Writer::close() {
    if (closed_) return;
    out_.seekp(56);
    std::string buf;
    put_u64(buf, written_);
    out_.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    out_.flush();
    if (!out_) fail(path_, "write failed (record count patch)");
    out_.close();
    closed_ = true;
}

Reader::Reader(const std::string& path) : path_(path) {
    in_.open(path, std::ios::binary);
    if (!in_) fail(path_, "cannot open for reading");

    char header[kHeaderBytes];
    read_exact(in_, path_, header, kHeaderBytes, "header");
    const auto* h = reinterpret_cast<const unsigned char*>(header);
    if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
        fail(path_, "bad magic (not a .ltrc trace)");
    }
    info_.format_version = get_u32(h + 8);
    if (info_.format_version != kFormatVersion) {
        fail(path_, "unsupported format version " + std::to_string(info_.format_version) +
                        " (this build reads version " + std::to_string(kFormatVersion) + ")");
    }
    info_.schema_version = get_u32(h + 12);
    info_.build.assign(header + 16, kBuildIdBytes);
    info_.build.resize(info_.build.find('\0') != std::string::npos
                           ? info_.build.find('\0')
                           : info_.build.size());
    info_.record_count = get_u64(h + 56);
    const std::uint32_t stream_count = get_u32(h + 64);

    info_.streams.reserve(stream_count);
    for (std::uint32_t s = 0; s < stream_count; ++s) {
        StreamInfo si;
        char lenbuf[4];
        read_exact(in_, path_, lenbuf, 4, "stream table");
        auto len = get_u32(reinterpret_cast<const unsigned char*>(lenbuf));
        if (len > kMaxTableString) fail(path_, "corrupt stream table (name length)");
        si.name.resize(len);
        if (len > 0) read_exact(in_, path_, si.name.data(), len, "stream table");
        read_exact(in_, path_, lenbuf, 4, "stream table");
        len = get_u32(reinterpret_cast<const unsigned char*>(lenbuf));
        if (len > kMaxTableString) fail(path_, "corrupt stream table (dataset length)");
        si.dataset.resize(len);
        if (len > 0) read_exact(in_, path_, si.dataset.data(), len, "stream table");
        char tail[16];
        read_exact(in_, path_, tail, 16, "stream table");
        si.slo_s = get_f64(reinterpret_cast<const unsigned char*>(tail));
        si.requests = get_u64(reinterpret_cast<const unsigned char*>(tail) + 8);
        info_.streams.push_back(std::move(si));
    }

    data_offset_ = static_cast<std::uint64_t>(in_.tellg());
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (ec) fail(path_, "cannot stat file");
    const auto expected = data_offset_ + info_.record_count * kRecordBytes;
    if (size != expected) {
        fail(path_, "truncated or padded: header declares " +
                        std::to_string(info_.record_count) + " records (" +
                        std::to_string(expected) + " bytes), file has " +
                        std::to_string(size) + " bytes");
    }
}

bool Reader::next(TraceRecord& out) {
    if (pos_ >= info_.record_count) return false;
    char buf[kRecordBytes];
    read_exact(in_, path_, buf, kRecordBytes, "record");
    out = decode_record(reinterpret_cast<const unsigned char*>(buf));
    if (out.stream >= info_.streams.size()) {
        fail(path_, "record " + std::to_string(pos_) + " references unknown stream " +
                        std::to_string(out.stream));
    }
    ++pos_;
    return true;
}

void Reader::seek(std::uint64_t record_index) {
    if (record_index > info_.record_count) {
        throw std::invalid_argument("trace '" + path_ + "': seek past end (" +
                                    std::to_string(record_index) + " > " +
                                    std::to_string(info_.record_count) + ")");
    }
    in_.clear();
    in_.seekg(static_cast<std::streamoff>(data_offset_ + record_index * kRecordBytes));
    if (!in_) fail(path_, "seek failed");
    pos_ = record_index;
}

bool same_streams(const std::vector<StreamInfo>& a, const std::vector<StreamInfo>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].name != b[i].name || a[i].dataset != b[i].dataset ||
            std::bit_cast<std::uint64_t>(a[i].slo_s) !=
                std::bit_cast<std::uint64_t>(b[i].slo_s) ||
            a[i].requests != b[i].requests) {
            return false;
        }
    }
    return true;
}

void slice_records(Reader& in, const std::string& out_path, std::uint64_t begin,
                   std::uint64_t end) {
    if (begin >= end || end > in.info().record_count) {
        throw std::invalid_argument(
            "trace slice: empty or out-of-range id window [" + std::to_string(begin) +
            ", " + std::to_string(end) + ") of " +
            std::to_string(in.info().record_count) + " records");
    }
    Writer out(out_path, in.info().streams);
    in.seek(begin);
    TraceRecord rec;
    for (std::uint64_t i = begin; i < end; ++i) {
        if (!in.next(rec)) break;
        out.add(rec);
    }
    out.close();
}

void slice_time(Reader& in, const std::string& out_path, double t0, double t1) {
    if (!(t0 < t1)) {
        throw std::invalid_argument("trace slice: empty time window");
    }
    Writer out(out_path, in.info().streams);
    in.seek(0);
    TraceRecord rec;
    while (in.next(rec)) {
        // Records are arrival-sorted, so the window is one contiguous run.
        if (rec.arrival_s >= t1) break;
        if (rec.arrival_s >= t0) out.add(rec);
    }
    out.close();
}

void merge_traces(const std::vector<std::string>& inputs, const std::string& out_path) {
    if (inputs.empty()) {
        throw std::invalid_argument("trace merge: no input traces");
    }
    std::vector<Reader> readers;
    readers.reserve(inputs.size());
    for (const auto& path : inputs) readers.emplace_back(path);
    for (std::size_t i = 1; i < readers.size(); ++i) {
        if (!same_streams(readers[0].info().streams, readers[i].info().streams)) {
            throw std::runtime_error("trace merge: '" + inputs[i] +
                                     "' has a different stream table than '" +
                                     inputs[0] + "' (merge needs slices of one trace)");
        }
    }

    // K-way merge of already-sorted inputs; ids renumber in merge order so
    // merging the slices of a trace reconstructs it byte-for-byte.
    struct Head {
        TraceRecord rec;
        bool live = false;
    };
    std::vector<Head> heads(readers.size());
    for (std::size_t i = 0; i < readers.size(); ++i) {
        heads[i].live = readers[i].next(heads[i].rec);
    }
    const auto before = [](const TraceRecord& a, const TraceRecord& b) {
        if (a.arrival_s != b.arrival_s) return a.arrival_s < b.arrival_s;
        if (a.stream != b.stream) return a.stream < b.stream;
        return a.frame_index < b.frame_index;
    };

    Writer out(out_path, readers[0].info().streams);
    std::uint64_t next_id = 0;
    for (;;) {
        std::size_t best = heads.size();
        for (std::size_t i = 0; i < heads.size(); ++i) {
            if (!heads[i].live) continue;
            if (best == heads.size() || before(heads[i].rec, heads[best].rec)) best = i;
        }
        if (best == heads.size()) break;
        TraceRecord rec = heads[best].rec;
        rec.id = next_id++;
        out.add(rec);
        heads[best].live = readers[best].next(heads[best].rec);
    }
    out.close();
}

} // namespace lotus::trace
