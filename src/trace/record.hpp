#pragma once
// Trace capture and replay glue between .ltrc files and the serving layer.
//
// Capture is an ambient, thread-local concern: the harness binds a
// CaptureScope with the episode's trace path around the engine run, and
// serving::build_request_timeline calls maybe_record() on the timeline it
// just assembled. One hook covers both the serving and the fleet engine
// (the fleet delegates its timeline to the same function), and episodes on
// other worker threads are unaffected.
//
// Replay is explicit: ServingConfig/FleetConfig carry a `replay_trace`
// path, and the engines build their timeline from TraceArrivalSource
// instead of the analytic arrival processes. A replayed episode consumes
// the exact recorded timeline, so its scenario JSON, ledgers and telemetry
// are byte-identical to the generating run's.

#include <cstdint>
#include <string>
#include <vector>

#include "serving/request.hpp"
#include "trace/format.hpp"

namespace lotus::trace {

/// RAII thread-local capture target. An empty path binds nothing (so call
/// sites can pass through an unconditional scope). Scopes nest; the
/// innermost non-empty path wins.
class CaptureScope {
public:
    explicit CaptureScope(std::string path);
    ~CaptureScope();
    CaptureScope(const CaptureScope&) = delete;
    CaptureScope& operator=(const CaptureScope&) = delete;

private:
    const std::string* prev_ = nullptr;
    std::string path_;
    bool bound_ = false;
};

/// The capture path bound on this thread, or nullptr when capture is off.
[[nodiscard]] const std::string* capture_path() noexcept;

/// Stream-table entries for a set of serving streams.
[[nodiscard]] std::vector<StreamInfo> stream_table(
    const std::vector<serving::StreamSpec>& streams);

[[nodiscard]] TraceRecord to_record(const serving::Request& req);
[[nodiscard]] serving::Request to_request(const TraceRecord& rec);

/// Write a complete timeline as a trace file (parent directories created).
void write_trace(const std::string& path, const std::vector<serving::StreamSpec>& streams,
                 const std::vector<serving::Request>& requests);

/// Capture hook: when this thread has a CaptureScope bound, dump the
/// timeline to its path. No-op otherwise. Called by
/// serving::build_request_timeline and by replay, so recording a replayed
/// episode reproduces the input trace.
void maybe_record(const std::vector<serving::StreamSpec>& streams,
                  const std::vector<serving::Request>& requests);

/// A recorded trace acting as a drop-in for the analytic arrival
/// processes: validates the trace against the configured streams and
/// materialises the exact recorded timeline.
class TraceArrivalSource {
public:
    explicit TraceArrivalSource(std::string path);

    [[nodiscard]] const TraceInfo& info() const noexcept { return info_; }

    /// Materialise the timeline, first checking that `streams` matches the
    /// recorded stream table (name, dataset, SLO, request count); throws
    /// std::runtime_error naming the first mismatch otherwise.
    [[nodiscard]] std::vector<serving::Request> requests(
        const std::vector<serving::StreamSpec>& streams) const;

    /// StreamSpecs reconstructed from the stream table (arrival process
    /// left at its default -- meaningful only for replay).
    [[nodiscard]] std::vector<serving::StreamSpec> stream_specs() const;

private:
    std::string path_;
    TraceInfo info_;
};

/// Replay entry point used by the engines: materialise `path` against the
/// configured streams, then re-run the capture hook so replay under a
/// CaptureScope round-trips the file.
[[nodiscard]] std::vector<serving::Request> load_requests(
    const std::string& path, const std::vector<serving::StreamSpec>& streams);

/// Synthesise the exact timeline `build_request_timeline(streams, seed)`
/// would produce, streamed straight to disk: per-stream arrival generators
/// and frame streams advance lazily under a k-way merge, so a
/// million-request trace costs O(streams) memory and never materialises
/// the request vector.
void synth_trace(const std::string& path, const std::vector<serving::StreamSpec>& streams,
                 std::uint64_t seed);

} // namespace lotus::trace
