#pragma once
// Compact binary request-trace format (.ltrc).
//
// A trace is a serving/fleet request timeline frozen on disk: the merged,
// arrival-sorted output of serving::build_request_timeline, one fixed-width
// record per request. Replaying a trace through TraceArrivalSource
// (trace/record.hpp) reproduces the generating episode byte-for-byte, so
// timelines of millions of requests can be recorded once and diffed,
// sliced, sharded and replayed across PRs without re-deriving them.
//
// Layout (all integers little-endian, doubles as IEEE-754 bit patterns):
//
//   header (72 bytes, fixed):
//     offset  size  field
//          0     8  magic "LOTUSTRC"
//          8     4  u32 format_version   (kFormatVersion)
//         12     4  u32 schema_version   (util::kSchemaVersion of the writer)
//         16    40  build id, NUL-padded (provenance only, never compared)
//         56     8  u64 record_count     (patched on Writer close)
//         64     4  u32 stream_count
//         68     4  u32 reserved (0)
//   stream table (variable): per stream, in stream-id order:
//     u32 name_len, name bytes, u32 dataset_len, dataset bytes,
//     f64 slo_s, u64 requests
//   records (kRecordBytes each, arrival-sorted):
//     u64 id, u32 stream, i32 proposals, f64 arrival_s, f64 slo_s,
//     f64 resolution_scale, f64 complexity, f64 jitter, u64 frame_index
//
// Fixed-width records make id-range slicing an O(1) seek; Writer and Reader
// both stream, so memory stays O(streams) regardless of record count.

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace lotus::trace {

inline constexpr char kMagic[8] = {'L', 'O', 'T', 'U', 'S', 'T', 'R', 'C'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::size_t kBuildIdBytes = 40;
inline constexpr std::size_t kHeaderBytes = 72;
inline constexpr std::size_t kRecordBytes = 64;

/// One stream-table entry: enough to rebuild the serving::StreamSpec side
/// of the timeline (the arrival process itself is not needed for replay).
struct StreamInfo {
    std::string name;
    std::string dataset;
    double slo_s = 0.0;
    std::uint64_t requests = 0;
};

/// One on-disk request record; field-for-field the serving::Request payload.
struct TraceRecord {
    std::uint64_t id = 0;
    std::uint32_t stream = 0;
    std::int32_t proposals = 0;
    double arrival_s = 0.0;
    double slo_s = 0.0;
    double resolution_scale = 1.0;
    double complexity = 0.0;
    double jitter = 0.0;
    std::uint64_t frame_index = 0;
};

/// Parsed header + stream table of a trace file.
struct TraceInfo {
    std::uint32_t format_version = kFormatVersion;
    std::uint32_t schema_version = 0;
    std::string build;
    std::uint64_t record_count = 0;
    std::vector<StreamInfo> streams;
};

/// Streaming writer. Records are appended one at a time; the header's
/// record count is back-patched on close(), so arbitrarily long traces
/// never buffer. close() (or the destructor) finalizes the file; a Writer
/// abandoned before any close() leaves a record_count of zero behind,
/// which the Reader then rejects as truncated.
class Writer {
public:
    Writer(const std::string& path, std::vector<StreamInfo> streams);
    ~Writer();
    Writer(const Writer&) = delete;
    Writer& operator=(const Writer&) = delete;

    /// Append one record. Throws std::runtime_error on I/O failure and
    /// std::invalid_argument when rec.stream is out of table range.
    void add(const TraceRecord& rec);

    /// Patch the record count and flush. Throws on I/O failure; idempotent.
    void close();

    [[nodiscard]] std::uint64_t records_written() const noexcept { return written_; }

private:
    std::ofstream out_;
    std::string path_;
    std::uint64_t written_ = 0;
    std::uint32_t stream_count_ = 0;
    bool closed_ = false;
};

/// Streaming reader. The constructor validates magic, format version and
/// the declared record count against the file size, throwing
/// std::runtime_error with a message naming the file and the defect for
/// anything short of a well-formed trace.
class Reader {
public:
    explicit Reader(const std::string& path);

    [[nodiscard]] const TraceInfo& info() const noexcept { return info_; }

    /// Read the next record into `out`; false at end-of-trace. Throws on
    /// I/O failure or a record referencing an unknown stream id.
    bool next(TraceRecord& out);

    /// O(1) reposition to the given record index (<= record_count).
    void seek(std::uint64_t record_index);

    /// Index of the record the next next() call returns.
    [[nodiscard]] std::uint64_t position() const noexcept { return pos_; }

private:
    std::ifstream in_;
    std::string path_;
    TraceInfo info_;
    std::uint64_t data_offset_ = 0;
    std::uint64_t pos_ = 0;
};

/// True when the two stream tables match field-for-field (slo_s compared
/// bit-exactly; build ids are irrelevant).
[[nodiscard]] bool same_streams(const std::vector<StreamInfo>& a,
                                const std::vector<StreamInfo>& b);

/// Copy records [begin, end) of `in` into a new trace at `out_path`,
/// keeping the full stream table and the original record ids (so slices
/// remember their position in the parent timeline). Record order is
/// preserved. Throws std::invalid_argument for an empty or out-of-range
/// id window.
void slice_records(Reader& in, const std::string& out_path, std::uint64_t begin,
                   std::uint64_t end);

/// Copy the records of `in` whose arrival_s lies in [t0, t1) into a new
/// trace at `out_path` (ids kept). Streams the whole trace once.
void slice_time(Reader& in, const std::string& out_path, double t0, double t1);

/// K-way-merge the (arrival-sorted) inputs into `out_path`, renumbering
/// ids 0..n-1 in merge order. All inputs must share one stream table;
/// ordering ties break on (stream, frame_index), which is a strict total
/// order for timelines produced by build_request_timeline, so merging the
/// slices of a trace reconstructs it byte-for-byte.
void merge_traces(const std::vector<std::string>& inputs, const std::string& out_path);

} // namespace lotus::trace
