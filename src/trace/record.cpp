#include "trace/record.hpp"

#include <filesystem>
#include <stdexcept>

#include "serving/engine.hpp"
#include "workload/dataset.hpp"

namespace lotus::trace {

namespace {

thread_local const std::string* g_capture_path = nullptr;

void create_parent_dirs(const std::string& path) {
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent);
}

[[noreturn]] void replay_mismatch(const std::string& path, const std::string& what) {
    throw std::runtime_error("trace '" + path + "': recorded stream table does not " +
                             "match the configured streams (" + what +
                             "); a trace replays only against the stream set that "
                             "recorded it");
}

} // namespace

CaptureScope::CaptureScope(std::string path) : path_(std::move(path)) {
    if (!path_.empty()) {
        prev_ = g_capture_path;
        g_capture_path = &path_;
        bound_ = true;
    }
}

CaptureScope::~CaptureScope() {
    if (bound_) g_capture_path = prev_;
}

const std::string* capture_path() noexcept { return g_capture_path; }

std::vector<StreamInfo> stream_table(const std::vector<serving::StreamSpec>& streams) {
    std::vector<StreamInfo> table;
    table.reserve(streams.size());
    for (const auto& s : streams) {
        table.push_back(StreamInfo{s.name, s.dataset, s.slo_s, s.requests});
    }
    return table;
}

TraceRecord to_record(const serving::Request& req) {
    TraceRecord rec;
    rec.id = req.id;
    rec.stream = static_cast<std::uint32_t>(req.stream);
    rec.proposals = req.frame.proposals;
    rec.arrival_s = req.arrival_s;
    rec.slo_s = req.slo_s;
    rec.resolution_scale = req.frame.resolution_scale;
    rec.complexity = req.frame.complexity;
    rec.jitter = req.frame.jitter;
    rec.frame_index = req.frame.index;
    return rec;
}

serving::Request to_request(const TraceRecord& rec) {
    serving::Request req;
    req.id = rec.id;
    req.stream = rec.stream;
    req.arrival_s = rec.arrival_s;
    req.slo_s = rec.slo_s;
    req.frame.index = rec.frame_index;
    req.frame.resolution_scale = rec.resolution_scale;
    req.frame.complexity = rec.complexity;
    req.frame.proposals = rec.proposals;
    req.frame.jitter = rec.jitter;
    return req;
}

void write_trace(const std::string& path, const std::vector<serving::StreamSpec>& streams,
                 const std::vector<serving::Request>& requests) {
    create_parent_dirs(path);
    Writer out(path, stream_table(streams));
    for (const auto& req : requests) out.add(to_record(req));
    out.close();
}

void maybe_record(const std::vector<serving::StreamSpec>& streams,
                  const std::vector<serving::Request>& requests) {
    const auto* path = capture_path();
    if (path == nullptr) return;
    write_trace(*path, streams, requests);
}

TraceArrivalSource::TraceArrivalSource(std::string path) : path_(std::move(path)) {
    Reader reader(path_);
    info_ = reader.info();
}

std::vector<serving::Request> TraceArrivalSource::requests(
    const std::vector<serving::StreamSpec>& streams) const {
    if (!same_streams(info_.streams, stream_table(streams))) {
        if (info_.streams.size() != streams.size()) {
            replay_mismatch(path_, "trace has " + std::to_string(info_.streams.size()) +
                                       " streams, config has " +
                                       std::to_string(streams.size()));
        }
        for (std::size_t i = 0; i < streams.size(); ++i) {
            const auto& rec = info_.streams[i];
            const auto& cfg = streams[i];
            if (rec.name != cfg.name || rec.dataset != cfg.dataset ||
                rec.slo_s != cfg.slo_s || rec.requests != cfg.requests) {
                replay_mismatch(path_, "stream " + std::to_string(i) + ": trace has '" +
                                           rec.name + "'/" + rec.dataset +
                                           ", config has '" + cfg.name + "'/" +
                                           cfg.dataset);
            }
        }
        replay_mismatch(path_, "SLO bit pattern differs");
    }
    Reader reader(path_);
    std::vector<serving::Request> out;
    out.reserve(info_.record_count);
    TraceRecord rec;
    while (reader.next(rec)) out.push_back(to_request(rec));
    return out;
}

std::vector<serving::StreamSpec> TraceArrivalSource::stream_specs() const {
    std::vector<serving::StreamSpec> specs;
    specs.reserve(info_.streams.size());
    for (const auto& s : info_.streams) {
        serving::StreamSpec spec;
        spec.name = s.name;
        spec.dataset = s.dataset;
        spec.slo_s = s.slo_s;
        spec.requests = s.requests;
        specs.push_back(std::move(spec));
    }
    return specs;
}

std::vector<serving::Request> load_requests(
    const std::string& path, const std::vector<serving::StreamSpec>& streams) {
    const TraceArrivalSource source(path);
    auto requests = source.requests(streams);
    // Replay under a CaptureScope re-records the input: record(replay(t)) == t.
    maybe_record(streams, requests);
    return requests;
}

void synth_trace(const std::string& path, const std::vector<serving::StreamSpec>& streams,
                 std::uint64_t seed) {
    if (streams.empty()) {
        throw std::invalid_argument("synth_trace: no streams configured");
    }
    // One lazily-advanced (arrival generator, frame stream) pair per
    // stream; the k-way merge below reproduces build_request_timeline's
    // (arrival_s, stream, frame.index) sort order without ever holding
    // more than one pending request per stream.
    struct Head {
        serving::ArrivalGenerator arrivals;
        workload::FrameStream frames;
        double arrival_s = 0.0;
        workload::FrameSample frame;
        bool live = false;
    };
    std::vector<Head> heads;
    heads.reserve(streams.size());
    for (std::size_t s = 0; s < streams.size(); ++s) {
        const auto& stream = streams[s];
        heads.push_back(Head{
            serving::ArrivalGenerator(stream.arrival, stream.requests,
                                      serving::arrival_stream_seed(seed, "", stream.name, s)),
            workload::FrameStream(workload::dataset_by_name(stream.dataset),
                                  serving::frame_stream_seed(seed, "", stream.name, s)),
            0.0, workload::FrameSample{}, false});
        auto& head = heads.back();
        if (!head.arrivals.done()) {
            head.arrival_s = head.arrivals.next();
            head.frame = head.frames.next();
            head.live = true;
        }
    }

    create_parent_dirs(path);
    Writer out(path, stream_table(streams));
    std::uint64_t next_id = 0;
    for (;;) {
        std::size_t best = heads.size();
        for (std::size_t i = 0; i < heads.size(); ++i) {
            if (!heads[i].live) continue;
            if (best == heads.size() || heads[i].arrival_s < heads[best].arrival_s ||
                (heads[i].arrival_s == heads[best].arrival_s && i < best)) {
                best = i;
            }
        }
        if (best == heads.size()) break;
        auto& head = heads[best];
        TraceRecord rec;
        rec.id = next_id++;
        rec.stream = static_cast<std::uint32_t>(best);
        rec.proposals = head.frame.proposals;
        rec.arrival_s = head.arrival_s;
        rec.slo_s = streams[best].slo_s;
        rec.resolution_scale = head.frame.resolution_scale;
        rec.complexity = head.frame.complexity;
        rec.jitter = head.frame.jitter;
        rec.frame_index = head.frame.index;
        out.add(rec);
        if (!head.arrivals.done()) {
            head.arrival_s = head.arrivals.next();
            head.frame = head.frames.next();
        } else {
            head.live = false;
        }
    }
    out.close();
}

} // namespace lotus::trace
