#include "telemetry/recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <stdexcept>

#include "util/build_info.hpp"
#include "util/csv.hpp"

namespace lotus::telemetry {

namespace {

thread_local Recorder* t_current = nullptr;

/// Simulated seconds with nanosecond resolution; fixed width keeps the
/// output a pure function of the value (locale-free, no precision drift).
std::string fmt_time(double t_s) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.9f", t_s);
    return buf;
}

/// Chrome trace timestamps are microseconds.
std::string fmt_ts_us(double t_s) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.3f", t_s * 1e6);
    return buf;
}

} // namespace

std::string jnum(double v) {
    const auto s = util::format_double(v, 6);
    if (s == "nan" || s == "inf" || s == "-inf") return "null";
    return s;
}

std::string jstr(const std::string& s) {
    std::string out = "\"";
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    out += "\"";
    return out;
}

// --- thread-local binding ----------------------------------------------------

Recorder* current() noexcept { return t_current; }

BindScope::BindScope(Recorder* recorder) noexcept : previous_(t_current) {
    t_current = recorder;
}
BindScope::~BindScope() { t_current = previous_; }

SuspendScope::SuspendScope() noexcept : previous_(t_current) { t_current = nullptr; }
SuspendScope::~SuspendScope() { t_current = previous_; }

// --- Recorder ----------------------------------------------------------------

Recorder::Recorder(RecorderOptions opt) : opt_(opt) {
    if (opt_.sample_period_s <= 0.0) {
        throw std::invalid_argument("Recorder: sample_period_s must be > 0");
    }
    if (opt_.ring_capacity == 0) {
        throw std::invalid_argument("Recorder: ring_capacity must be > 0");
    }
    if (opt_.rollup_window_s <= 0.0) {
        throw std::invalid_argument("Recorder: rollup_window_s must be > 0");
    }
    if (opt_.rollups) rollup_ = std::make_unique<Rollup>(opt_.rollup_window_s);
}

int Recorder::track(const std::string& process, const std::string& thread) {
    const auto key = std::make_pair(process, thread);
    const auto it = track_ids_.find(key);
    if (it != track_ids_.end()) return it->second;

    auto [pit, inserted] = pids_.emplace(process, static_cast<int>(pids_.size()) + 1);
    (void)inserted;
    TrackInfo info;
    info.process = process;
    info.thread = thread;
    info.pid = pit->second;
    info.tid = static_cast<int>(tracks_.size()) + 1;
    const int id = static_cast<int>(tracks_.size());
    tracks_.push_back(std::move(info));
    track_ids_.emplace(key, id);
    return id;
}

void Recorder::emit(Event e) {
    if (e.track < 0 || static_cast<std::size_t>(e.track) >= tracks_.size()) {
        throw std::out_of_range("Recorder: event on unknown track");
    }
    auto& ring = rings_[tracks_[static_cast<std::size_t>(e.track)].pid];
    ring.push_back(e);
    if (ring.size() > opt_.ring_capacity) ring.pop_front();
    log_.push_back(std::move(e));
}

void Recorder::begin(int track, std::string name, double t_s, std::string args) {
    tracks_.at(static_cast<std::size_t>(track)).open.push_back(name);
    Event e;
    e.t_s = t_s;
    e.phase = 'B';
    e.track = track;
    e.name = std::move(name);
    e.args = std::move(args);
    emit(std::move(e));
}

void Recorder::end(int track, double t_s) {
    auto& open = tracks_.at(static_cast<std::size_t>(track)).open;
    if (open.empty()) {
        throw std::logic_error("Recorder::end: no open span on track '" +
                               tracks_[static_cast<std::size_t>(track)].process + "/" +
                               tracks_[static_cast<std::size_t>(track)].thread + "'");
    }
    Event e;
    e.t_s = t_s;
    e.phase = 'E';
    e.track = track;
    e.name = std::move(open.back());
    open.pop_back();
    emit(std::move(e));
}

void Recorder::instant(int track, std::string name, double t_s, std::string args) {
    Event e;
    e.t_s = t_s;
    e.phase = 'i';
    e.track = track;
    e.name = std::move(name);
    e.args = std::move(args);
    emit(std::move(e));
}

void Recorder::counter(int track, std::string name, double t_s, double value) {
    Event e;
    e.t_s = t_s;
    e.phase = 'C';
    e.track = track;
    e.name = std::move(name);
    e.value = value;
    emit(std::move(e));
}

void Recorder::async_begin(int track, std::string name, std::uint64_t id, double t_s,
                           std::string args) {
    Event e;
    e.t_s = t_s;
    e.phase = 'b';
    e.track = track;
    e.id = id;
    e.name = std::move(name);
    e.args = std::move(args);
    emit(std::move(e));
}

void Recorder::async_end(int track, std::string name, std::uint64_t id, double t_s,
                         std::string args) {
    Event e;
    e.t_s = t_s;
    e.phase = 'e';
    e.track = track;
    e.id = id;
    e.name = std::move(name);
    e.args = std::move(args);
    emit(std::move(e));
}

void Recorder::breach(int track, std::string reason, std::uint64_t request_id, double t_s,
                      std::string args) {
    const auto& info = tracks_.at(static_cast<std::size_t>(track));
    Breach b;
    b.t_s = t_s;
    b.pid = info.pid;
    b.process = info.process;
    b.reason = std::move(reason);
    b.request_id = request_id;
    b.args = std::move(args);
    const auto rit = rings_.find(info.pid);
    if (rit != rings_.end()) {
        b.context.assign(rit->second.begin(), rit->second.end());
    }
    breaches_.push_back(std::move(b));
}

std::vector<std::size_t> Recorder::time_order() const {
    std::vector<std::size_t> order(log_.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    // Stable: ties keep append order, so the export is deterministic AND
    // monotonic even for events recorded after the clock passed them
    // (arrivals noticed at the next dispatch instant).
    std::stable_sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
        return log_[a].t_s < log_[b].t_s;
    });
    return order;
}

// --- exporters ---------------------------------------------------------------

namespace {

/// One events.jsonl object (shared with the breach-context rendering).
std::string event_jsonl_object(const Event& e, const std::string& process,
                               const std::string& thread) {
    std::string o = "{\"t_s\":" + fmt_time(e.t_s);
    o += ",\"ph\":\"" + std::string(1, e.phase) + "\"";
    o += ",\"process\":" + jstr(process);
    o += ",\"thread\":" + jstr(thread);
    o += ",\"name\":" + jstr(e.name);
    if (e.phase == 'b' || e.phase == 'e') o += ",\"id\":" + std::to_string(e.id);
    if (e.phase == 'C') o += ",\"value\":" + jnum(e.value);
    if (!e.args.empty()) o += ",\"args\":{" + e.args + "}";
    o += "}";
    return o;
}

} // namespace

std::string Recorder::chrome_trace_json() const {
    std::string o = "{\"displayTimeUnit\":\"ms\",\"otherData\":{";
    o += util::build_info_json_fields();
    o += "},\"traceEvents\":[";
    bool first = true;
    const auto append = [&](const std::string& item) {
        if (!first) o += ",";
        first = false;
        o += item;
    };

    // Metadata: name every process and thread so Perfetto renders devices
    // and streams by name instead of by pid/tid number.
    int last_pid = 0;
    for (const auto& t : tracks_) {
        if (t.pid != last_pid) {
            // pids_ is sorted by name but numbered in first-seen order;
            // emit the process_name record on the first track of each pid.
            bool seen = false;
            for (const auto& prev : tracks_) {
                if (&prev == &t) break;
                if (prev.pid == t.pid) {
                    seen = true;
                    break;
                }
            }
            if (!seen) {
                append("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
                       std::to_string(t.pid) + ",\"tid\":0,\"args\":{\"name\":" +
                       jstr(t.process) + "}}");
            }
        }
        last_pid = t.pid;
        append("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" + std::to_string(t.pid) +
               ",\"tid\":" + std::to_string(t.tid) + ",\"args\":{\"name\":" +
               jstr(t.thread) + "}}");
    }

    for (const auto idx : time_order()) {
        const auto& e = log_[idx];
        const auto& t = tracks_[static_cast<std::size_t>(e.track)];
        std::string ev = "{\"name\":" + jstr(e.name);
        ev += ",\"ph\":\"" + std::string(1, e.phase) + "\"";
        ev += ",\"ts\":" + fmt_ts_us(e.t_s);
        ev += ",\"pid\":" + std::to_string(t.pid);
        ev += ",\"tid\":" + std::to_string(t.tid);
        switch (e.phase) {
            case 'B':
            case 'E': ev += ",\"cat\":\"sim\""; break;
            case 'i': ev += ",\"cat\":\"sim\",\"s\":\"t\""; break;
            case 'b':
            case 'e':
                ev += ",\"cat\":\"request\",\"id\":" + std::to_string(e.id);
                break;
            default: break;
        }
        if (e.phase == 'C') {
            ev += ",\"args\":{\"value\":" + jnum(e.value) + "}";
        } else if (!e.args.empty()) {
            ev += ",\"args\":{" + e.args + "}";
        }
        ev += "}";
        append(ev);
    }
    o += "]}";
    return o;
}

std::string Recorder::events_jsonl() const {
    std::string o;
    for (const auto idx : time_order()) {
        const auto& e = log_[idx];
        const auto& t = tracks_[static_cast<std::size_t>(e.track)];
        o += event_jsonl_object(e, t.process, t.thread);
        o += "\n";
    }
    return o;
}

std::string Recorder::metrics_csv() const {
    std::string o = "t_s,process,thread,metric,value\n";
    for (const auto idx : time_order()) {
        const auto& e = log_[idx];
        if (e.phase != 'C') continue;
        const auto& t = tracks_[static_cast<std::size_t>(e.track)];
        o += fmt_time(e.t_s) + "," + t.process + "," + t.thread + "," + e.name + "," +
             util::format_double(e.value, 6) + "\n";
    }
    return o;
}

std::string Recorder::breaches_jsonl() const {
    std::string o;
    for (const auto& b : breaches_) {
        std::string line = "{\"t_s\":" + fmt_time(b.t_s);
        line += ",\"process\":" + jstr(b.process);
        line += ",\"reason\":" + jstr(b.reason);
        line += ",\"request\":" + std::to_string(b.request_id);
        if (!b.args.empty()) line += ",\"args\":{" + b.args + "}";
        line += ",\"events\":[";
        for (std::size_t i = 0; i < b.context.size(); ++i) {
            const auto& e = b.context[i];
            const auto& t = tracks_[static_cast<std::size_t>(e.track)];
            if (i != 0) line += ",";
            line += event_jsonl_object(e, t.process, t.thread);
        }
        line += "]}";
        o += line + "\n";
    }
    return o;
}

std::string Recorder::manifest_json() const {
    std::string o = "{";
    o += util::build_info_json_fields();
    o += ",\"events\":" + std::to_string(log_.size());
    o += ",\"breaches\":" + std::to_string(breaches_.size());
    o += ",\"sample_period_s\":" + jnum(opt_.sample_period_s);
    o += ",\"ring_capacity\":" + std::to_string(opt_.ring_capacity);
    o += ",\"rollups\":" + std::string(opt_.rollups ? "true" : "false");
    o += ",\"rollup_window_s\":" + jnum(opt_.rollup_window_s);
    o += ",\"tracks\":[";
    for (std::size_t i = 0; i < tracks_.size(); ++i) {
        if (i != 0) o += ",";
        o += "{\"process\":" + jstr(tracks_[i].process) +
             ",\"thread\":" + jstr(tracks_[i].thread) +
             ",\"pid\":" + std::to_string(tracks_[i].pid) +
             ",\"tid\":" + std::to_string(tracks_[i].tid) + "}";
    }
    o += "]}";
    return o;
}

std::string Recorder::rollup_json() const {
    if (!rollup_) throw std::logic_error("Recorder::rollup_json: rollups are off");
    return rollup_->rollup_json();
}

std::string Recorder::health_json() const {
    if (!rollup_) throw std::logic_error("Recorder::health_json: rollups are off");
    std::map<std::string, std::uint64_t> breaches_by_process;
    for (const auto& b : breaches_) ++breaches_by_process[b.process];
    return rollup_->health_json(breaches_by_process);
}

void Recorder::write(const std::string& dir) const {
    std::filesystem::create_directories(dir);
    const auto dump = [&](const std::string& name, const std::string& content) {
        std::ofstream out(dir + "/" + name, std::ios::binary);
        if (!out) {
            throw std::runtime_error("Recorder::write: cannot open " + dir + "/" + name);
        }
        out << content;
    };
    dump("trace.json", chrome_trace_json());
    dump("events.jsonl", events_jsonl());
    dump("metrics.csv", metrics_csv());
    dump("breaches.jsonl", breaches_jsonl());
    dump("manifest.json", manifest_json());
    if (rollup_) {
        dump("rollup.json", rollup_json());
        dump("health.json", health_json());
    }
}

} // namespace lotus::telemetry
