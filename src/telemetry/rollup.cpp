#include "telemetry/rollup.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "telemetry/recorder.hpp"
#include "util/build_info.hpp"
#include "util/stats.hpp"

namespace lotus::telemetry {

namespace {

/// One scoreboard row being accumulated: the merge target for any subset
/// of windows (a device, a stream, or the whole fleet).
struct Agg {
    std::uint64_t ok = 0;
    std::uint64_t late = 0;
    std::uint64_t shed = 0;
    HistSketch e2e_ms;
    HistSketch queue_wait_ms;
    double energy_j = 0.0;
    double throttle_s = 0.0;
    HistSketch temp_c;
    double headroom_min_c = std::numeric_limits<double>::infinity();
    std::uint64_t breaches = 0;

    [[nodiscard]] std::uint64_t requests() const { return ok + late + shed; }
    [[nodiscard]] std::uint64_t served() const { return ok + late; }
    [[nodiscard]] std::uint64_t missed() const { return late + shed; }

    void add(const Rollup::StreamWindow& w) {
        ok += w.ok;
        late += w.late;
        shed += w.shed;
        e2e_ms.merge(w.e2e_ms);
        queue_wait_ms.merge(w.queue_wait_ms);
    }
    void add(const Rollup::DeviceWindow& w) {
        energy_j += w.energy_j;
        throttle_s += w.throttle_s;
        temp_c.merge(w.temp_c);
        headroom_min_c = std::min(headroom_min_c, w.headroom_min_c);
    }
    void add(const Agg& a) {
        ok += a.ok;
        late += a.late;
        shed += a.shed;
        e2e_ms.merge(a.e2e_ms);
        queue_wait_ms.merge(a.queue_wait_ms);
        energy_j += a.energy_j;
        throttle_s += a.throttle_s;
        temp_c.merge(a.temp_c);
        headroom_min_c = std::min(headroom_min_c, a.headroom_min_c);
        breaches += a.breaches;
    }

    /// The shared scoreboard fields (no leading comma). Rates are null
    /// when undefined (no requests / no samples) rather than fabricated.
    [[nodiscard]] std::string fields() const {
        const auto n = requests();
        const double dn = static_cast<double>(n);
        std::string o = "\"requests\":" + std::to_string(n);
        o += ",\"served\":" + std::to_string(served());
        o += ",\"shed\":" + std::to_string(shed);
        o += ",\"missed\":" + std::to_string(missed());
        const double nan = std::numeric_limits<double>::quiet_NaN();
        o += ",\"attainment\":" +
             jnum(n > 0 ? static_cast<double>(n - missed()) / dn : nan);
        o += ",\"miss_rate\":" +
             jnum(n > 0 ? static_cast<double>(missed()) / dn : nan);
        o += ",\"shed_rate\":" +
             jnum(n > 0 ? static_cast<double>(shed) / dn : nan);
        o += ",\"e2e_p50_ms\":" + jnum(e2e_ms.empty() ? nan : e2e_ms.quantile(0.50));
        o += ",\"e2e_p95_ms\":" + jnum(e2e_ms.empty() ? nan : e2e_ms.quantile(0.95));
        o += ",\"e2e_p99_ms\":" + jnum(e2e_ms.empty() ? nan : e2e_ms.quantile(0.99));
        o += ",\"queue_wait_p95_ms\":" +
             jnum(queue_wait_ms.empty() ? nan : queue_wait_ms.quantile(0.95));
        o += ",\"energy_j\":" + jnum(energy_j);
        o += ",\"throttle_s\":" + jnum(throttle_s);
        o += ",\"peak_temp_c\":" + jnum(temp_c.empty() ? nan : temp_c.max());
        o += ",\"headroom_min_c\":" + jnum(headroom_min_c); // inf -> null
        o += ",\"breaches\":" + std::to_string(breaches);
        return o;
    }
};

} // namespace

Rollup::Rollup(double window_s) : window_s_(window_s) {
    if (!(window_s > 0.0)) {
        throw std::invalid_argument("Rollup: window_s must be positive");
    }
}

Rollup::WindowId Rollup::window_of(double t_s) const {
    return static_cast<WindowId>(std::floor(t_s / window_s_));
}

void Rollup::record_request(const std::string& device, const std::string& stream,
                            double t_s, Outcome outcome, double e2e_ms,
                            double wait_ms) {
    auto& win = streams_[device][stream][window_of(t_s)];
    switch (outcome) {
        case Outcome::ok:
            ++win.ok;
            win.e2e_ms.add(e2e_ms);
            break;
        case Outcome::late:
            ++win.late;
            win.e2e_ms.add(e2e_ms);
            break;
        case Outcome::shed:
            ++win.shed;
            break;
    }
    win.queue_wait_ms.add(wait_ms);
}

void Rollup::record_device_span(const std::string& device, double from_s,
                                double to_s, std::size_t opp_level,
                                bool throttled, double energy_j) {
    if (!(to_s > from_s)) return;
    const double total = to_s - from_s;
    auto& series = devices_[device];
    double t = from_s;
    WindowId w = window_of(from_s);
    while (t < to_s) {
        const double wend = (static_cast<double>(w) + 1.0) * window_s_;
        const double seg_end = std::min(to_s, wend);
        const double seg = seg_end - t;
        if (seg > 0.0) {
            auto& win = series[w];
            win.opp_residency_s[opp_level] += seg;
            if (throttled) win.throttle_s += seg;
            win.energy_j += energy_j * (seg / total);
        }
        t = seg_end;
        ++w;
    }
}

void Rollup::record_temp_sample(const std::string& device, double t_s,
                                double temp_c, double headroom_c) {
    auto& win = devices_[device][window_of(t_s)];
    win.temp_c.add(temp_c);
    win.headroom_min_c = std::min(win.headroom_min_c, headroom_c);
}

std::string Rollup::rollup_json() const {
    std::string o = "{" + util::build_info_json_fields();
    o += ",\"window_s\":" + jnum(window_s_);
    o += ",\"devices\":[";
    bool first_dev = true;
    for (const auto& [device, series] : devices_) {
        if (!first_dev) o += ",";
        first_dev = false;
        o += "{\"device\":" + jstr(device) + ",\"windows\":[";
        bool first_win = true;
        for (const auto& [window, win] : series) {
            if (!first_win) o += ",";
            first_win = false;
            o += "{\"window\":" + std::to_string(window);
            o += ",\"start_s\":" + jnum(static_cast<double>(window) * window_s_);
            o += ",\"energy_j\":" + jnum(win.energy_j);
            o += ",\"throttle_s\":" + jnum(win.throttle_s);
            o += ",\"opp_residency_s\":[";
            bool first_opp = true;
            for (const auto& [level, secs] : win.opp_residency_s) {
                if (!first_opp) o += ",";
                first_opp = false;
                o += "[" + std::to_string(level) + "," + jnum(secs) + "]";
            }
            o += "],\"headroom_min_c\":" + jnum(win.headroom_min_c);
            o += ",\"temp_c\":" + win.temp_c.json();
            o += "}";
        }
        o += "]}";
    }
    o += "],\"streams\":[";
    bool first_stream = true;
    for (const auto& [device, by_stream] : streams_) {
        for (const auto& [stream, series] : by_stream) {
            if (!first_stream) o += ",";
            first_stream = false;
            o += "{\"device\":" + jstr(device) + ",\"stream\":" + jstr(stream);
            o += ",\"windows\":[";
            bool first_win = true;
            for (const auto& [window, win] : series) {
                if (!first_win) o += ",";
                first_win = false;
                o += "{\"window\":" + std::to_string(window);
                o += ",\"start_s\":" + jnum(static_cast<double>(window) * window_s_);
                o += ",\"ok\":" + std::to_string(win.ok);
                o += ",\"late\":" + std::to_string(win.late);
                o += ",\"shed\":" + std::to_string(win.shed);
                o += ",\"served\":" + std::to_string(win.ok + win.late);
                o += ",\"missed\":" + std::to_string(win.late + win.shed);
                o += ",\"requests\":" + std::to_string(win.ok + win.late + win.shed);
                o += ",\"e2e_ms\":" + win.e2e_ms.json();
                o += ",\"queue_wait_ms\":" + win.queue_wait_ms.json();
                o += "}";
            }
            o += "]}";
        }
    }
    o += "]}";
    return o;
}

std::string Rollup::health_json(
    const std::map<std::string, std::uint64_t>& breaches_by_process) const {
    // Scoreboard rows: per device (request counts joined with physical
    // state), per stream (merged across devices), and the fleet total.
    std::map<std::string, Agg> by_device;
    std::map<std::string, Agg> by_stream;
    std::set<WindowId> window_ids;
    for (const auto& [device, by_stream_series] : streams_) {
        for (const auto& [stream, series] : by_stream_series) {
            for (const auto& [window, win] : series) {
                by_device[device].add(win);
                by_stream[stream].add(win);
                window_ids.insert(window);
            }
        }
    }
    for (const auto& [device, series] : devices_) {
        for (const auto& [window, win] : series) {
            by_device[device].add(win);
            window_ids.insert(window);
        }
    }
    for (auto& [device, agg] : by_device) {
        const auto it = breaches_by_process.find(device);
        if (it != breaches_by_process.end()) agg.breaches = it->second;
    }

    Agg fleet;
    for (const auto& [device, agg] : by_device) fleet.add(agg);
    // Breach processes with no rollup row (e.g. a track that never served
    // a request) still count toward the fleet total.
    for (const auto& [process, count] : breaches_by_process) {
        if (by_device.find(process) == by_device.end()) fleet.breaches += count;
    }

    // Load-balance skew over real devices (ones with physical series;
    // excludes pseudo-devices like the fleet router's shed ledger).
    util::RunningStats served_stats;
    for (const auto& [device, series] : devices_) {
        const auto it = by_device.find(device);
        const double served =
            it != by_device.end() ? static_cast<double>(it->second.served()) : 0.0;
        served_stats.add(served);
    }
    const double mean = served_stats.mean();
    const double skew = mean > 0.0 ? served_stats.stddev() / mean : 0.0;

    std::string o = "{" + util::build_info_json_fields();
    o += ",\"window_s\":" + jnum(window_s_);
    o += ",\"windows\":" + std::to_string(window_ids.size());
    o += ",\"fleet\":{\"devices\":" + std::to_string(devices_.size());
    o += "," + fleet.fields();
    o += ",\"load_skew\":" + jnum(skew) + "}";
    o += ",\"devices\":[";
    bool first = true;
    for (const auto& [device, agg] : by_device) {
        if (!first) o += ",";
        first = false;
        o += "{\"device\":" + jstr(device) + "," + agg.fields() + "}";
    }
    o += "],\"streams\":[";
    first = true;
    for (const auto& [stream, agg] : by_stream) {
        if (!first) o += ",";
        first = false;
        o += "{\"stream\":" + jstr(stream) + "," + agg.fields() + "}";
    }
    o += "]}";
    return o;
}

} // namespace lotus::telemetry
