#include "telemetry/sketch.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/csv.hpp"

namespace lotus::telemetry {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Same number contract as telemetry::jnum (6 significant digits,
/// non-finite values become null) without pulling in the recorder.
std::string jnum_local(double v) {
    if (!std::isfinite(v)) return "null";
    return util::format_double(v, 6);
}

} // namespace

HistSketch::HistSketch(double relative_accuracy) : alpha_(relative_accuracy) {
    if (!(relative_accuracy > 0.0) || !(relative_accuracy < 1.0)) {
        throw std::invalid_argument(
            "HistSketch: relative_accuracy must be in (0, 1)");
    }
    gamma_ = (1.0 + alpha_) / (1.0 - alpha_);
    inv_log_gamma_ = 1.0 / std::log(gamma_);
    min_ = kInf;
    max_ = -kInf;
}

double HistSketch::min() const noexcept { return total_ == 0 ? 0.0 : min_; }
double HistSketch::max() const noexcept { return total_ == 0 ? 0.0 : max_; }

void HistSketch::add(double value, std::uint64_t weight) {
    if (weight == 0) return;
    if (std::isnan(value)) return; // unorderable; refuse silently
    total_ += weight;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    if (value <= kLowThreshold) {
        low_count_ += weight;
        return;
    }
    const auto index = static_cast<std::int32_t>(
        std::ceil(std::log(value) * inv_log_gamma_));
    buckets_[index] += weight;
}

void HistSketch::merge(const HistSketch& other) {
    if (alpha_ != other.alpha_) {
        throw std::invalid_argument(
            "HistSketch::merge: relative_accuracy mismatch");
    }
    if (other.total_ == 0) return;
    total_ += other.total_;
    low_count_ += other.low_count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    for (const auto& [index, count] : other.buckets_) {
        buckets_[index] += count;
    }
}

double HistSketch::representative(std::int32_t index) const {
    // Geometric midpoint of (gamma^(i-1), gamma^i]: relative error is
    // exactly alpha at both bucket edges.
    return 2.0 * std::pow(gamma_, static_cast<double>(index)) / (gamma_ + 1.0);
}

double HistSketch::quantile(double q) const {
    if (total_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // 1-based target rank; matches the order statistic util::percentile
    // anchors its interpolation on.
    const auto n = total_;
    auto rank = static_cast<std::uint64_t>(
                    std::floor(q * static_cast<double>(n - 1))) +
                1;
    rank = std::min(rank, n);

    double estimate = 0.0;
    if (rank <= low_count_) {
        estimate = 0.0;
    } else {
        std::uint64_t cumulative = low_count_;
        estimate = max_; // walk exhausts only via fp-edge paranoia
        for (const auto& [index, count] : buckets_) {
            cumulative += count;
            if (cumulative >= rank) {
                estimate = representative(index);
                break;
            }
        }
    }
    return std::clamp(estimate, min_, max_);
}

std::string HistSketch::json() const {
    std::string out = "{\"alpha\":" + jnum_local(alpha_);
    out += ",\"count\":" + std::to_string(total_);
    out += ",\"low\":" + std::to_string(low_count_);
    out += ",\"min\":" + jnum_local(min());
    out += ",\"max\":" + jnum_local(max());
    out += ",\"p50\":" + jnum_local(quantile(0.50));
    out += ",\"p95\":" + jnum_local(quantile(0.95));
    out += ",\"p99\":" + jnum_local(quantile(0.99));
    out += ",\"buckets\":[";
    bool first = true;
    for (const auto& [index, count] : buckets_) {
        if (!first) out += ",";
        first = false;
        out += "[" + std::to_string(index) + "," + std::to_string(count) + "]";
    }
    out += "]}";
    return out;
}

} // namespace lotus::telemetry
