#pragma once
// HistSketch: a deterministic, mergeable log-bucketed histogram sketch
// (DDSketch-family) for latency / wait / temperature distributions.
//
// Values are binned by order of magnitude: a positive value v lands in
// bucket i = ceil(log_gamma(v)), whose range is (gamma^(i-1), gamma^i].
// The growth factor gamma is fixed at construction from the target
// relative accuracy alpha via gamma = (1 + alpha) / (1 - alpha), so the
// geometric midpoint representative 2 * gamma^i / (gamma + 1) of any
// bucket is within alpha relative error of every value the bucket holds.
//
// Quantile contract (the documented error bound): for a sketch holding n
// values, quantile(q) returns an estimate e of the order statistic x_(r)
// at 1-based rank r = floor(q * (n - 1)) + 1 -- the same rank convention
// util::percentile interpolates from -- with
//
//     |e - x_(r)| <= alpha * x_(r)        for x_(r) > low_threshold,
//
// and e is additionally clamped into the exact [min, max] of the inserted
// values, so q = 0 / q = 1, single-sample and all-identical sketches are
// exact. Values at or below the low threshold (1e-9; the sketch targets
// non-negative metrics -- negative values also land here) share one
// underflow bucket whose representative is 0 before clamping.
//
// Merge is exact: the state is integer bucket counts plus min/max, and
// uint64 addition and IEEE min/max are associative and commutative, so
// merging per-window (or per-shard) sketches in any order or grouping is
// byte-identical to one sketch fed every sample -- the property the
// rollup layer and the future cross-shard merge build on. Deliberately NO
// running floating-point sum is kept (double addition does not
// associate); derived statistics come from the bucket state at query
// time.
//
// Memory is O(occupied buckets): ~1150 buckets cover 9 decades at 1%
// accuracy, independent of sample count. Buckets live in a std::map so
// every iteration (serialization, quantile walk) is in deterministic
// ascending-index order.

#include <cstdint>
#include <map>
#include <string>

namespace lotus::telemetry {

class HistSketch {
public:
    /// Default relative accuracy of quantile estimates (alpha).
    static constexpr double kDefaultRelativeAccuracy = 0.01;
    /// Values at or below this threshold collapse into the underflow
    /// bucket (representative 0 before min/max clamping).
    static constexpr double kLowThreshold = 1e-9;

    explicit HistSketch(double relative_accuracy = kDefaultRelativeAccuracy);

    void add(double value, std::uint64_t weight = 1);
    /// Exact merge; requires identical relative_accuracy (throws
    /// std::invalid_argument otherwise). Associative and commutative.
    void merge(const HistSketch& other);

    [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
    [[nodiscard]] bool empty() const noexcept { return total_ == 0; }
    [[nodiscard]] double relative_accuracy() const noexcept { return alpha_; }
    /// Exact extrema of the inserted values (0 when empty).
    [[nodiscard]] double min() const noexcept;
    [[nodiscard]] double max() const noexcept;

    /// Quantile estimate for q in [0, 1] (clamped), under the error bound
    /// documented above. Returns 0 when empty.
    [[nodiscard]] double quantile(double q) const;

    /// Deterministic JSON object: count/min/max, precomputed p50/p95/p99
    /// (pure functions of the state, so downstream tools need no sketch
    /// math), the underflow count and the [index, count] bucket pairs.
    [[nodiscard]] std::string json() const;

    /// Exact state equality (buckets, counts, extrema). Two sketches that
    /// compare equal serialize identically.
    bool operator==(const HistSketch& other) const = default;

private:
    [[nodiscard]] double representative(std::int32_t index) const;

    double alpha_;
    double gamma_;
    double inv_log_gamma_;
    std::uint64_t total_ = 0;
    std::uint64_t low_count_ = 0;
    double min_ = 0.0; // +inf sentinel while empty
    double max_ = 0.0; // -inf sentinel while empty
    std::map<std::int32_t, std::uint64_t> buckets_;
};

} // namespace lotus::telemetry
