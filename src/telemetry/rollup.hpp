#pragma once
// Streaming fixed-window rollups: the aggregation layer between the raw
// telemetry recorder and fleet-scale analysis. Where events.jsonl grows
// with request count, the rollup keeps O(windows) state: every request
// outcome, device power/OPP span and temperature sample is folded online
// into per-(sim-time window x device x stream) accumulators built from
// integer counters and mergeable HistSketch instances.
//
// Window w covers sim time [w * window_s, (w + 1) * window_s); ids are
// floor(t / window_s). All keys live in std::map so every export walks in
// deterministic (device, stream, window) order -- rollup.json and
// health.json are byte-identical across --jobs counts for the same
// episode, like every other telemetry artifact.
//
// health.json is computed by MERGING the per-window sketches (the same
// merge a future cross-shard reducer would run), so by HistSketch's exact
// associativity the scoreboard quantiles are identical to a single sketch
// fed every sample of the run.

#include <cstdint>
#include <limits>
#include <map>
#include <string>

#include "telemetry/sketch.hpp"

namespace lotus::telemetry {

class Rollup {
public:
    enum class Outcome {
        ok,   ///< completed within its SLO
        late, ///< completed after its SLO (counts as served AND missed)
        shed, ///< dropped by admission control (counts as missed)
    };

    using WindowId = std::int64_t;

    /// Per-window request accounting for one (device, stream) pair.
    struct StreamWindow {
        std::uint64_t ok = 0;
        std::uint64_t late = 0;
        std::uint64_t shed = 0;
        HistSketch e2e_ms;        ///< completions only (ok + late)
        HistSketch queue_wait_ms; ///< every outcome, sheds included
    };

    /// Per-window physical accounting for one device.
    struct DeviceWindow {
        double energy_j = 0.0;
        double throttle_s = 0.0;
        /// Sim seconds spent at each OPP ladder level.
        std::map<std::size_t, double> opp_residency_s;
        HistSketch temp_c;
        /// Exact minimum thermal headroom (trip - temp) seen in-window;
        /// +inf (emitted as null) until the first sample lands.
        double headroom_min_c = std::numeric_limits<double>::infinity();
        [[nodiscard]] bool has_temp() const { return !temp_c.empty(); }
    };

    explicit Rollup(double window_s);

    [[nodiscard]] double window_s() const noexcept { return window_s_; }

    /// Fold one request outcome in at its completion (or shed) time.
    /// e2e_ms is recorded only for completions; wait_ms for every outcome.
    void record_request(const std::string& device, const std::string& stream,
                        double t_s, Outcome outcome, double e2e_ms,
                        double wait_ms);

    /// Fold a device activity span [from_s, to_s) at one OPP level in,
    /// splitting the duration and the span's energy pro-rata across the
    /// windows it crosses. No-op when to_s <= from_s.
    void record_device_span(const std::string& device, double from_s,
                            double to_s, std::size_t opp_level, bool throttled,
                            double energy_j);

    /// Fold one temperature sample (and its thermal headroom) in.
    void record_temp_sample(const std::string& device, double t_s,
                            double temp_c, double headroom_c);

    using StreamSeries = std::map<WindowId, StreamWindow>;
    using DeviceSeries = std::map<WindowId, DeviceWindow>;

    [[nodiscard]] const std::map<std::string, std::map<std::string, StreamSeries>>&
    streams() const noexcept {
        return streams_;
    }
    [[nodiscard]] const std::map<std::string, DeviceSeries>& devices() const noexcept {
        return devices_;
    }

    /// rollup.json: the full windowed time series (counters, residency and
    /// sketch snapshots per window), schema-stamped via util::build_info.
    [[nodiscard]] std::string rollup_json() const;

    /// health.json: the fleet health scoreboard -- per-device, per-stream
    /// and fleet-wide SLO attainment, latency quantiles from merged
    /// sketches, thermal headroom minima, energy/throttle totals, breach
    /// counts (keyed by the recorder's per-process breach ledger) and
    /// load-balance skew (stddev/mean of per-device served, the
    /// FleetTrace::load_skew convention).
    [[nodiscard]] std::string health_json(
        const std::map<std::string, std::uint64_t>& breaches_by_process) const;

private:
    [[nodiscard]] WindowId window_of(double t_s) const;

    double window_s_;
    std::map<std::string, std::map<std::string, StreamSeries>> streams_;
    std::map<std::string, DeviceSeries> devices_;
};

} // namespace lotus::telemetry
