#pragma once
// Sim-time telemetry: a deterministic event/metrics recorder on the
// *simulated* clock.
//
// src/prof observes the simulator (wall-clock of the host process); this
// layer observes the simulated system -- thermal trajectories, OPP changes,
// throttle trips, governor decisions, request lifecycles, routing -- on the
// simulated timeline, so a shed request or an SLO miss can be traced back
// to the exact sequence of events that caused it.
//
// Model: a Recorder holds a flat event log over named *tracks*. A track is
// a (process, thread) pair following the Chrome trace-event convention:
// every simulated device is a process (threads: "platform", "engine",
// "governor", "rl", "queue"), request streams live under a shared "streams"
// process (one thread per stream), and the fleet dispatcher under "fleet".
// Events are durations (begin/end, strictly nested per track), async spans
// (begin/end matched by id -- request lifecycles overlap freely), instants,
// and counters. An SLO-breach flight recorder keeps the last-N events of
// every process in a ring buffer; breach() snapshots that ring into a
// compact report with the causal context of the miss.
//
// Determinism: one Recorder is bound per episode via BindScope, and an
// episode runs entirely on one worker thread, so the Recorder needs no
// locks and its byte output is a pure function of the episode -- `--jobs 1`
// and `--jobs N` write identical files. Instrumentation sites read the
// thread-local current() pointer and skip everything when it is null, so
// recording disabled costs one TLS load per site and perturbs nothing (the
// same stdout-byte-identity contract the profiler honors).
//
// Exporters (write(dir)): trace.json (Chrome trace-event JSON, loadable in
// Perfetto / chrome://tracing), events.jsonl (one event per line),
// metrics.csv (long-format counter time-series), breaches.jsonl (flight
// recorder), manifest.json. All timestamps are simulated seconds; exports
// are stable-sorted by time so files are monotonic even when an event is
// recorded late (e.g. an arrival noticed after the clock passed it).

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/rollup.hpp"

namespace lotus::telemetry {

struct RecorderOptions {
    /// Cadence of the periodic device samples (temperatures, frequencies,
    /// power) [simulated seconds].
    double sample_period_s = 0.25;
    /// Flight-recorder depth: events per process kept for breach snapshots.
    std::size_t ring_capacity = 32;
    /// Streaming aggregation: fold request outcomes, device spans and
    /// temperature samples into fixed-window rollups (rollup.json) and the
    /// fleet health scoreboard (health.json). O(windows) memory.
    bool rollups = true;
    /// Rollup window length [simulated seconds].
    double rollup_window_s = 1.0;
};

/// One recorded event. `phase` follows the Chrome trace-event letters:
/// 'B'/'E' duration, 'b'/'e' async (matched by id), 'i' instant,
/// 'C' counter.
struct Event {
    double t_s = 0.0;
    char phase = 'i';
    int track = -1;
    std::uint64_t id = 0;  // async span id (request id)
    double value = 0.0;    // counter value
    std::string name;
    /// Pre-rendered JSON object fragment ("k":v,... without braces); empty
    /// when the event carries no arguments.
    std::string args;
};

class Recorder {
public:
    explicit Recorder(RecorderOptions opt = {});

    // --- tracks -------------------------------------------------------------
    /// Id of the (process, thread) track, creating it on first use.
    /// Processes and threads are numbered in first-seen order, so ids are a
    /// pure function of the episode's event sequence.
    int track(const std::string& process, const std::string& thread);

    /// Set the ambient process ("which device is executing"): nested
    /// emitters (the RL agent, the governor) attribute their events without
    /// plumbing a device handle through every layer.
    void set_context(std::string process) { context_ = std::move(process); }
    [[nodiscard]] const std::string& context() const noexcept { return context_; }
    /// Track under the current context process.
    int context_track(const std::string& thread) { return track(context_, thread); }

    // --- recording ----------------------------------------------------------
    void begin(int track, std::string name, double t_s, std::string args = {});
    /// Close the innermost open begin() on `track` (throws std::logic_error
    /// when nothing is open -- unbalanced instrumentation is a bug).
    void end(int track, double t_s);
    void instant(int track, std::string name, double t_s, std::string args = {});
    void counter(int track, std::string name, double t_s, double value);
    void async_begin(int track, std::string name, std::uint64_t id, double t_s,
                     std::string args = {});
    void async_end(int track, std::string name, std::uint64_t id, double t_s,
                   std::string args = {});

    /// Flight recorder: report an SLO breach (miss/shed) on `track`'s
    /// process, snapshotting the last ring_capacity events of that process
    /// as causal context.
    void breach(int track, std::string reason, std::uint64_t request_id, double t_s,
                std::string args = {});

    [[nodiscard]] std::size_t event_count() const noexcept { return log_.size(); }
    [[nodiscard]] std::size_t breach_count() const noexcept { return breaches_.size(); }
    [[nodiscard]] double sample_period_s() const noexcept { return opt_.sample_period_s; }

    /// The streaming rollup accumulator, or nullptr when rollups are off.
    /// Instrumentation sites feed it directly (same null-check discipline
    /// as current()).
    [[nodiscard]] Rollup* rollup() noexcept { return rollup_.get(); }
    [[nodiscard]] const Rollup* rollup() const noexcept { return rollup_.get(); }

    // --- exporters ----------------------------------------------------------
    /// Chrome trace-event JSON (object form with traceEvents + metadata);
    /// timestamps in microseconds, devices as processes, streams/governor
    /// as threads.
    [[nodiscard]] std::string chrome_trace_json() const;
    /// One JSON object per line, time-sorted.
    [[nodiscard]] std::string events_jsonl() const;
    /// Long-format counter time-series: t_s,process,thread,metric,value.
    [[nodiscard]] std::string metrics_csv() const;
    /// One breach report per line, each with its event-ring snapshot.
    [[nodiscard]] std::string breaches_jsonl() const;
    [[nodiscard]] std::string manifest_json() const;
    /// Windowed rollup time series (requires rollups on; throws otherwise).
    [[nodiscard]] std::string rollup_json() const;
    /// Fleet health scoreboard, joining the rollup aggregates with the
    /// flight recorder's per-process breach counts (requires rollups on).
    [[nodiscard]] std::string health_json() const;

    /// Write all artifacts into `dir` (created if missing): the five raw
    /// files, plus rollup.json and health.json when rollups are on.
    void write(const std::string& dir) const;

private:
    struct TrackInfo {
        std::string process;
        std::string thread;
        int pid = 0;
        int tid = 0;
        std::vector<std::string> open; // names of open begin() spans
    };
    struct Breach {
        double t_s = 0.0;
        int pid = 0;
        std::string process;
        std::string reason;
        std::uint64_t request_id = 0;
        std::string args;
        std::vector<Event> context; // ring snapshot, oldest first
    };

    void emit(Event e);
    /// Log indices stable-sorted by timestamp (append order breaks ties, so
    /// the result is deterministic and monotonic).
    [[nodiscard]] std::vector<std::size_t> time_order() const;

    RecorderOptions opt_;
    std::unique_ptr<Rollup> rollup_;
    std::vector<Event> log_;
    std::vector<TrackInfo> tracks_;
    std::map<std::pair<std::string, std::string>, int> track_ids_;
    std::map<std::string, int> pids_;
    std::map<int, std::deque<Event>> rings_; // per-pid flight recorder
    std::vector<Breach> breaches_;
    std::string context_ = "sim";
};

// --- thread-local binding ----------------------------------------------------

/// The recorder bound to this thread, or nullptr when recording is off.
/// Instrumentation sites branch on this and pay nothing further when null.
[[nodiscard]] Recorder* current() noexcept;

/// Bind a recorder to the current thread for the scope's lifetime (the
/// harness wraps each episode in one). Binding nullptr records nothing.
class BindScope {
public:
    explicit BindScope(Recorder* recorder) noexcept;
    ~BindScope();
    BindScope(const BindScope&) = delete;
    BindScope& operator=(const BindScope&) = delete;

private:
    Recorder* previous_;
};

/// Temporarily hide the bound recorder. Pre-training phases advance the
/// device clock and then reset it to zero; recording them would break the
/// monotonic-timestamp guarantee of the exports.
class SuspendScope {
public:
    SuspendScope() noexcept;
    ~SuspendScope();
    SuspendScope(const SuspendScope&) = delete;
    SuspendScope& operator=(const SuspendScope&) = delete;

private:
    Recorder* previous_;
};

// --- JSON fragment helpers ---------------------------------------------------
// Instrumentation sites build `args` fragments by hand (the repo takes no
// JSON dependency); these keep escaping and number formatting uniform.

/// `v` as a JSON number; non-finite values degrade to null.
[[nodiscard]] std::string jnum(double v);
/// `s` as a JSON string with RFC 8259 escaping.
[[nodiscard]] std::string jstr(const std::string& s);

} // namespace lotus::telemetry
