#include "fleet/router.hpp"

#include <algorithm>
#include <stdexcept>

namespace lotus::fleet {

namespace {

/// Argmin over available devices of a score functor; ties break on the
/// device index (scan order), so routing is a pure function of the views.
template <typename Score>
std::size_t pick_min(const std::vector<DeviceView>& views, Score&& score) {
    std::size_t best = Router::npos;
    double best_score = 0.0;
    for (const auto& v : views) {
        if (!v.available) continue;
        const double s = score(v);
        if (best == Router::npos || s < best_score) {
            best = v.index;
            best_score = s;
        }
    }
    return best;
}

} // namespace

std::size_t RoundRobinRouter::route(const std::vector<DeviceView>& views,
                                    const serving::Request& request, double now_s) {
    (void)request;
    (void)now_s;
    if (views.empty()) return npos;
    // Rotate regardless of availability so a device rejoining the pool slots
    // back into the same cadence; skip unavailable slots for this pick.
    for (std::size_t probe = 0; probe < views.size(); ++probe) {
        const std::size_t i = (cursor_ + probe) % views.size();
        if (views[i].available) {
            cursor_ = (i + 1) % views.size();
            return views[i].index;
        }
    }
    return npos;
}

std::size_t LeastQueueRouter::route(const std::vector<DeviceView>& views,
                                    const serving::Request& request, double now_s) {
    (void)request;
    (void)now_s;
    // Join-shortest-queue on backlog seconds (not raw depth): in a
    // heterogeneous pool, 3 requests queued on a phone are a longer wait
    // than 5 on an Orin.
    return pick_min(views, [](const DeviceView& v) { return v.backlog_s; });
}

std::size_t ThermalAwareRouter::route(const std::vector<DeviceView>& views,
                                      const serving::Request& request, double now_s) {
    (void)request;
    (void)now_s;
    // Maximise headroom-to-throttle minus the backlog penalty (negated for
    // pick_min). A hot-but-idle device loses to a cool one; a cool device
    // drowning in backlog loses to a warm idle one.
    return pick_min(views, [this](const DeviceView& v) {
        return -(v.headroom_c - backlog_weight_ * v.backlog_s);
    });
}

std::size_t LotusFleetRouter::route(const std::vector<DeviceView>& views,
                                    const serving::Request& request, double now_s) {
    (void)request;
    // Predicted completion of the request on each device, in seconds past
    // the routing instant: the backlog (busy remainder + queue drain at the
    // governor-sustained pace) plus the request's own service. Devices
    // flirting with their trip point pay a thermal penalty -- their *next*
    // frames will be slower than the EWMA admits once the throttler clamps.
    (void)now_s;
    return pick_min(views, [this](const DeviceView& v) {
        const double finish_s = v.backlog_s + v.expected_service_s;
        const double deficit_c =
            std::max(0.0, soft_margin_ - v.headroom_c) + (v.throttled ? soft_margin_ : 0.0);
        return finish_s + penalty_per_c_ * deficit_c;
    });
}

std::unique_ptr<Router> make_router(const std::string& name) {
    if (name == "round_robin" || name == "rr") return std::make_unique<RoundRobinRouter>();
    if (name == "least_queue" || name == "jsq") return std::make_unique<LeastQueueRouter>();
    if (name == "thermal_aware") return std::make_unique<ThermalAwareRouter>();
    if (name == "lotus_fleet") return std::make_unique<LotusFleetRouter>();
    std::string known;
    for (const auto& n : router_names()) known += known.empty() ? n : " | " + n;
    throw std::invalid_argument("unknown router '" + name + "' (" + known + ")");
}

const std::vector<std::string>& router_names() {
    static const std::vector<std::string> names = {"round_robin", "least_queue",
                                                   "thermal_aware", "lotus_fleet"};
    return names;
}

} // namespace lotus::fleet
