#pragma once
// Routing policies: which device of the pool serves the next request.
//
// The router is the fleet-level control knob, the placement analogue of the
// per-device DVFS governor. It sees a snapshot of every device -- local
// clock, temperatures, headroom to the throttle trip, queue depth and the
// governor-informed service-time estimate -- and picks one. Four built-ins:
//
//  * round_robin   -- rotate through the pool; the placement baseline every
//                     load balancer starts at. Blind to queues and heat.
//  * least_queue   -- join-shortest-queue on estimated backlog seconds; the
//                     classic latency-optimal heuristic for homogeneous
//                     pools, blind to heat.
//  * thermal_aware -- route away from hot dies: score each device by its
//                     headroom to the throttle trip minus a backlog
//                     penalty, so load steers toward cool devices without
//                     drowning them ("Play It Cool" at fleet scale:
//                     shifting work prevents throttling before it happens).
//  * lotus_fleet   -- minimise the *predicted completion time* of the
//                     request: busy remainder + backlog + expected service
//                     (the per-device EWMA reflects the pace the device's
//                     LOTUS governor is actually sustaining), plus a
//                     penalty once a device is throttled or inside the
//                     soft thermal margin. Placement informed by the same
//                     signals the per-device agents act on.
//
// Every policy is a deterministic pure function of (its own state, the
// views, the request): ties break on the device index, so a fleet run
// replays byte-identically at any --jobs count.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "serving/request.hpp"

namespace lotus::fleet {

/// Dispatcher-visible snapshot of one device at a routing instant.
struct DeviceView {
    std::size_t index = 0;
    /// Device-local simulated clock [s]; ahead of the routing instant when
    /// the device is busy working through its queue.
    double now_s = 0.0;
    double cpu_temp_c = 0.0;
    double gpu_temp_c = 0.0;
    /// min over domains of (throttle trip - current temperature) [K];
    /// negative once a domain is past its trip.
    double headroom_c = 0.0;
    bool throttled = false;
    /// Requests queued on (or routed to but not yet started by) the device.
    std::size_t queue_depth = 0;
    /// Governor-informed service-time estimate [s]: EWMA of the device's
    /// recent execution latencies, seeded with its calibrated single-frame
    /// pace before the first completion.
    double expected_service_s = 0.0;
    /// Estimated seconds of work in front of a newly routed request: busy
    /// remainder past the routing instant plus queue_depth * expected
    /// service.
    double backlog_s = 0.0;
    /// False when the device must not be picked (failed / held out, or the
    /// source of a migration).
    bool available = true;
};

class Router {
public:
    virtual ~Router() = default;

    [[nodiscard]] virtual std::string name() const = 0;

    /// Pick the device that serves `request`, routed at simulated time
    /// `now_s`. Views cover the whole pool in index order; unavailable
    /// devices must not be picked. Returns npos when no device is
    /// available.
    [[nodiscard]] virtual std::size_t route(const std::vector<DeviceView>& views,
                                            const serving::Request& request,
                                            double now_s) = 0;

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

class RoundRobinRouter final : public Router {
public:
    [[nodiscard]] std::string name() const override { return "round_robin"; }
    [[nodiscard]] std::size_t route(const std::vector<DeviceView>& views,
                                    const serving::Request& request,
                                    double now_s) override;

private:
    std::size_t cursor_ = 0;
};

class LeastQueueRouter final : public Router {
public:
    [[nodiscard]] std::string name() const override { return "least_queue"; }
    [[nodiscard]] std::size_t route(const std::vector<DeviceView>& views,
                                    const serving::Request& request,
                                    double now_s) override;
};

class ThermalAwareRouter final : public Router {
public:
    /// `backlog_weight_c_per_s` converts backlog seconds into equivalent
    /// degrees of headroom: a device with w more degrees of headroom
    /// absorbs 1/w more seconds of backlog before losing the pick.
    explicit ThermalAwareRouter(double backlog_weight_c_per_s = 4.0)
        : backlog_weight_(backlog_weight_c_per_s) {}

    [[nodiscard]] std::string name() const override { return "thermal_aware"; }
    [[nodiscard]] std::size_t route(const std::vector<DeviceView>& views,
                                    const serving::Request& request,
                                    double now_s) override;

private:
    double backlog_weight_;
};

class LotusFleetRouter final : public Router {
public:
    /// Devices inside `soft_margin_c` of their throttle trip (or already
    /// throttled) pay `penalty_s_per_c` seconds of predicted completion per
    /// missing degree.
    explicit LotusFleetRouter(double soft_margin_c = 5.0, double penalty_s_per_c = 0.5)
        : soft_margin_(soft_margin_c), penalty_per_c_(penalty_s_per_c) {}

    [[nodiscard]] std::string name() const override { return "lotus_fleet"; }
    [[nodiscard]] std::size_t route(const std::vector<DeviceView>& views,
                                    const serving::Request& request,
                                    double now_s) override;

private:
    double soft_margin_;
    double penalty_per_c_;
};

/// Factory over the built-in policies: "round_robin" | "least_queue" |
/// "thermal_aware" | "lotus_fleet" (also accepts "rr" and "jsq"). Throws
/// std::invalid_argument on anything else.
[[nodiscard]] std::unique_ptr<Router> make_router(const std::string& name);

/// Canonical policy names, for CLI help and validation messages.
[[nodiscard]] const std::vector<std::string>& router_names();

} // namespace lotus::fleet
