#pragma once
// Fleet-level request ledger and its summaries.
//
// The fleet analogue of serving::ServingTrace: one row per request with the
// device it landed on (and whether it got there by migration), summarised
// three ways -- fleet-wide, per device, per stream. Reuses the
// serving::ServingSummary vocabulary (p50/p95/p99, miss/shed rates,
// throughput, energy/request, peak temperature) so sinks speak one serving
// language, and adds the fleet-only signals: load-balance skew across the
// pool, migration counts, and the fleet peak temperature (max over devices,
// tracked across the whole run -- idle cooling included -- not just at
// request completions).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serving/trace.hpp"

namespace lotus::fleet {

/// Ledger entry for one request: the serving record plus fleet routing
/// facts. device == kNoDevice marks a dispatcher-level shed (no live device
/// was available to take the request).
struct FleetRecord {
    serving::ServingRecord row;
    std::size_t device = 0;
    /// The request was re-routed at least once (off a throttled or failed
    /// device) before this terminal record.
    bool migrated = false;

    static constexpr std::size_t kNoDevice = static_cast<std::size_t>(-1);
};

/// Per-device facts the ledger rows cannot carry (set once by the engine).
struct DeviceStats {
    /// Device-local clock at the end of the run [s].
    double makespan_s = 0.0;
    /// Total device energy, idle included [J].
    double energy_j = 0.0;
    /// Peak device temperature over the whole run [deg C].
    double peak_temp_c = 0.0;
    std::size_t max_queue_depth = 0;
    std::uint64_t thermal_steps = 0;
    /// Requests re-routed *off* this device (throttle migration or failure
    /// drain).
    std::size_t migrations_out = 0;
    /// The device was withdrawn (FleetDevice::fail_at_s) during the run.
    bool failed = false;
};

class FleetTrace {
public:
    FleetTrace() = default;
    /// `capture_rows = false` selects the summary-only fast path: add() feeds
    /// streaming serving::SummaryAccumulators (fleet-wide, per device, per
    /// stream) instead of materialising FleetRecord rows; summaries and
    /// load_skew stay bit-identical while the ledger (records(), write_csv,
    /// chart columns) is unavailable.
    FleetTrace(std::vector<std::string> device_names, std::vector<std::string> stream_names,
               bool capture_rows = true);

    void add(FleetRecord record);
    void reserve(std::size_t n) {
        if (capture_rows_) records_.reserve(n);
    }

    [[nodiscard]] bool capture_rows() const noexcept { return capture_rows_; }
    /// Requests added (counted in both capture modes).
    [[nodiscard]] std::size_t size() const noexcept { return count_; }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
    [[nodiscard]] const FleetRecord& operator[](std::size_t i) const { return records_[i]; }
    [[nodiscard]] const std::vector<FleetRecord>& records() const noexcept {
        return records_;
    }
    [[nodiscard]] const std::vector<std::string>& device_names() const noexcept {
        return device_names_;
    }
    [[nodiscard]] const std::vector<std::string>& stream_names() const noexcept {
        return stream_names_;
    }

    void set_device_stats(std::size_t device, DeviceStats stats);
    [[nodiscard]] const DeviceStats& device_stats(std::size_t device) const;

    /// Wall-clock span of the fleet run (max over device makespans) [s].
    void set_makespan(double seconds) noexcept { makespan_s_ = seconds; }
    [[nodiscard]] double makespan_s() const noexcept { return makespan_s_; }

    /// Total pool energy, idle included [J].
    [[nodiscard]] double total_energy_j() const noexcept;
    /// Max over devices of the run-long peak temperature [deg C].
    [[nodiscard]] double peak_temp_c() const noexcept;
    /// Total requests re-routed off a device (throttle or failure).
    [[nodiscard]] std::size_t migrations() const noexcept;
    /// Load-balance skew: coefficient of variation (stddev / mean) of the
    /// per-device served counts, over devices that were never withdrawn.
    /// 0 = perfectly even; grows as placement concentrates load.
    [[nodiscard]] double load_skew() const;

    /// Fleet-wide summary (stream label "fleet"); energy/request charges the
    /// whole pool's energy, idle burn included.
    [[nodiscard]] serving::ServingSummary aggregate() const;
    /// Summary over one device (labelled with the device id); peak
    /// temperature is the run-long device peak, throughput uses the fleet
    /// makespan.
    [[nodiscard]] serving::ServingSummary device_summary(std::size_t device) const;
    /// Summary over one client stream, across all devices it landed on.
    [[nodiscard]] serving::ServingSummary stream_summary(std::size_t stream) const;
    /// Aggregate, then one summary per device, then one per stream.
    [[nodiscard]] std::vector<serving::ServingSummary> all_summaries() const;

    // Column extraction for charts (request completion order). Empty in
    // summary-only mode.
    [[nodiscard]] std::vector<double> e2e_ms() const;
    [[nodiscard]] std::vector<double> device_temps() const;

    /// Dump the per-request ledger (device + migration columns included).
    /// Throws std::logic_error in summary-only mode.
    void write_csv(const std::string& path) const;

private:
    [[nodiscard]] serving::ServingSummary summarize(
        const std::vector<const FleetRecord*>& rows, std::string label) const;

    std::vector<std::string> device_names_;
    std::vector<std::string> stream_names_;
    std::vector<FleetRecord> records_;
    std::vector<DeviceStats> device_stats_;
    bool capture_rows_ = true;
    std::size_t count_ = 0;
    // Summary-only state (unused when capture_rows_).
    serving::SummaryAccumulator aggregate_acc_;
    std::vector<serving::SummaryAccumulator> device_accs_;
    std::vector<serving::SummaryAccumulator> stream_accs_;
    double makespan_s_ = 0.0;
};

} // namespace lotus::fleet
