#include "fleet/engine.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>

#include "fleet/router.hpp"
#include "platform/presets.hpp"
#include "prof/profiler.hpp"
#include "runtime/engine.hpp"
#include "serving/engine.hpp"
#include "serving/queue.hpp"
#include "serving/scheduler.hpp"
#include "telemetry/recorder.hpp"
#include "trace/record.hpp"
#include "util/rng.hpp"
#include "workload/dataset.hpp"

namespace lotus::fleet {

namespace {

/// EWMA weight of the newest service-time sample in the per-device
/// expected-service estimate (same constant as the serving engine).
constexpr double kServiceEwma = 0.3;

/// Clock-comparison tolerance (see serving/engine.cpp): the idle integrator
/// sums slices, so a device clock can land a few ulps short of the instant
/// it targeted.
constexpr double kTimeEps = 1e-9;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A request staged on a device: routed, but only dispatchable once the
/// device clock reaches `ready_s` (the routing or migration instant) --
/// a migrated request must not execute on its new device at a local time
/// before it logically left the old one.
struct Staged {
    serving::Request request;
    double ready_s = 0.0;
};

/// One device slot at run time: the simulated device, its inference engine,
/// its own governor and queue discipline, and the dispatcher-side bookkeeping
/// the router reads.
struct Worker {
    Worker(const FleetDevice& slot, double ambient, const runtime::EngineConfig& engine_cfg,
           std::unique_ptr<governors::Governor> gov, const std::string& scheduler_name)
        : spec(&slot), device([&] {
              auto s = slot.spec;
              if (slot.ambient_overridden()) s.initial_ambient_celsius = slot.ambient_celsius;
              return s;
          }()),
          engine(device, engine_cfg), governor(std::move(gov)),
          scheduler(serving::make_scheduler(scheduler_name)) {
        // Telemetry processes are named by slot id, not spec name, so
        // identical twins stay distinguishable in a trace.
        device.set_telemetry_label(slot.id);
        device.set_ambient(slot.ambient_overridden() ? slot.ambient_celsius : ambient);
        device.reset(); // start in equilibrium with the (possibly overridden) ambient
        observe_peak();
    }

    void observe_peak() {
        peak_temp_c = std::max(peak_temp_c, std::max(device.cpu_temp(), device.gpu_temp()));
    }

    [[nodiscard]] std::size_t pending() const noexcept {
        return queue.size() + inbox.size();
    }

    /// Earliest device-local time at which this worker can act (dispatch or
    /// failure drain); +infinity when it has nothing pending.
    [[nodiscard]] double next_event_s() const noexcept {
        double t = kInf;
        if (!queue.empty()) t = device.now();
        for (const auto& s : inbox) {
            t = std::min(t, std::max(device.now(), s.ready_s));
        }
        return t;
    }

    [[nodiscard]] bool alive(double now_s) const noexcept {
        return now_s < spec->fail_at_s;
    }

    const FleetDevice* spec;
    platform::EdgeDevice device;
    runtime::InferenceEngine engine;
    std::unique_ptr<governors::Governor> governor;
    std::unique_ptr<serving::Scheduler> scheduler;
    serving::RequestQueue queue;
    std::vector<Staged> inbox;
    double expected_service_s = 0.0;
    std::size_t iteration = 0;
    std::size_t max_depth = 0;
    std::size_t migrations_out = 0;
    double peak_temp_c = 0.0;
    bool drained = false; // failure drain already executed
};

} // namespace

FleetDevice make_device(std::string id, platform::DeviceSpec spec) {
    return FleetDevice(std::move(id), std::move(spec));
}

void resize_pool(FleetConfig& config, std::size_t n) {
    if (config.devices.empty()) {
        throw std::invalid_argument("resize_pool: the pool has no template devices");
    }
    if (n == 0) throw std::invalid_argument("resize_pool: a fleet needs >= 1 device");
    const auto base = config.devices;
    if (config.devices.size() > n) {
        config.devices.erase(config.devices.begin() + static_cast<std::ptrdiff_t>(n),
                             config.devices.end());
    }
    for (std::size_t i = config.devices.size(); i < n; ++i) {
        auto clone = base[i % base.size()];
        clone.id = clone.id + "x" + std::to_string(i);
        config.devices.push_back(std::move(clone));
    }
}

FleetEngine::FleetEngine(FleetConfig config) : config_(std::move(config)) {
    if (config_.devices.empty()) {
        throw std::invalid_argument("FleetEngine: no devices configured");
    }
    std::set<std::string> ids;
    for (const auto& d : config_.devices) {
        if (d.id.empty()) throw std::invalid_argument("FleetEngine: device with empty id");
        if (!ids.insert(d.id).second) {
            throw std::invalid_argument("FleetEngine: duplicate device id '" + d.id + "'");
        }
    }
    if (config_.streams.empty()) {
        throw std::invalid_argument("FleetEngine: no streams configured");
    }
    for (const auto& s : config_.streams) {
        if (s.requests == 0) {
            throw std::invalid_argument("FleetEngine: stream '" + s.name +
                                        "' emits zero requests");
        }
        if (s.slo_s <= 0.0) {
            throw std::invalid_argument("FleetEngine: stream '" + s.name +
                                        "' has a non-positive SLO");
        }
        (void)workload::dataset_by_name(s.dataset); // throws on unknown dataset
    }
    (void)serving::make_scheduler(config_.scheduler); // throws on unknown policy
    (void)make_router(config_.router);                // throws on unknown router
}

std::vector<serving::Request> FleetEngine::build_requests() const {
    if (!config_.replay_trace.empty()) {
        return trace::load_requests(config_.replay_trace, config_.streams);
    }
    return serving::build_request_timeline(config_.streams, config_.seed);
}

std::uint64_t FleetEngine::governor_seed(std::uint64_t governor_seed_root,
                                         std::size_t index) const {
    return util::derive_seed(governor_seed_root,
                             "governor/" + config_.devices.at(index).id, index);
}

FleetTrace FleetEngine::run(const GovernorFactory& make_governor,
                            std::uint64_t governor_seed_root) const {
    LOTUS_PROF_SCOPE("fleet.run");
    const auto model = detector::make_detector(config_.detector);

    // --- build the pool -----------------------------------------------------
    std::vector<std::unique_ptr<Worker>> workers;
    workers.reserve(config_.devices.size());
    for (std::size_t i = 0; i < config_.devices.size(); ++i) {
        const auto& slot = config_.devices[i];
        workers.push_back(std::make_unique<Worker>(
            slot, config_.ambient_celsius, config_.engine,
            make_governor(slot.spec, governor_seed(governor_seed_root, i)),
            config_.scheduler));
    }

    const auto slot_pretrain_constraint = [&](const FleetDevice& slot) {
        if (slot.pretrain_constraint_s > 0.0) return slot.pretrain_constraint_s;
        if (config_.pretrain_constraint_s > 0.0) return config_.pretrain_constraint_s;
        return config_.streams.front().slo_s;
    };

    // --- per-device pre-training (not recorded; device-id-namespaced) ------
    if (config_.pretrain_iterations > 0) {
        // Pretrain advances each device clock then rewinds it via reset();
        // recording it would break the trace's monotonic timeline.
        telemetry::SuspendScope no_telemetry;
        const auto& warm = config_.streams.front();
        for (std::size_t i = 0; i < workers.size(); ++i) {
            auto& w = *workers[i];
            // Non-learning governors need no warm-up (harness rule).
            if (w.governor->decision_overhead_s() == 0.0) continue;
            // Exactly the stream a per-device ServingEngine would draw with
            // ServingConfig::instance = device id (ids are unique, so the
            // namespace alone decorrelates identical twins).
            workload::FrameStream stream(
                workload::dataset_by_name(warm.dataset),
                util::derive_seed(config_.seed,
                                  w.spec->id + "/pretrain/" + warm.dataset, 0));
            const double constraint = slot_pretrain_constraint(*w.spec);
            for (std::size_t k = 0; k < config_.pretrain_iterations; ++k) {
                w.engine.run_frame(model, stream.next(), *w.governor, constraint, k);
            }
            w.device.reset();
            w.engine.reset();
        }
    }

    // Governor-informed service prior: before a device completes its first
    // request, the router estimates its pace from the calibrated single-frame
    // constraint (per-device in heterogeneous pools).
    for (auto& w : workers) {
        w->expected_service_s = slot_pretrain_constraint(*w->spec);
    }

    const auto requests = build_requests();
    std::vector<char> migrated(requests.size(), 0);

    std::vector<std::string> device_names;
    for (const auto& d : config_.devices) device_names.push_back(d.id);
    std::vector<std::string> stream_names;
    for (const auto& s : config_.streams) stream_names.push_back(s.name);
    FleetTrace trace(std::move(device_names), std::move(stream_names),
                     config_.capture_rows);
    trace.reserve(requests.size());

    auto router = make_router(config_.router);

    // Routing decisions live on the "fleet"/"router" track; request spans on
    // their stream tracks; per-device breaches against the device so the
    // flight recorder snapshots what that device was doing.
    auto* tel = telemetry::current();
    auto* rollup = tel ? tel->rollup() : nullptr;
    int tel_router = -1;
    std::vector<int> tel_streams;
    std::vector<std::size_t> tel_depths(workers.size(),
                                        static_cast<std::size_t>(-1));
    if (tel) {
        tel_router = tel->track("fleet", "router");
        tel_streams.reserve(config_.streams.size());
        for (const auto& s : config_.streams) {
            tel_streams.push_back(tel->track("streams", s.name));
        }
    }
    const auto tel_queue_depth = [&](std::size_t index, double t) {
        if (!tel) return;
        auto& w = *workers[index];
        if (w.pending() == tel_depths[index]) return;
        tel_depths[index] = w.pending();
        tel->counter(tel->track(w.spec->id, "queue"), "queue_depth", t,
                     static_cast<double>(w.pending()));
    };

    const auto record_shed = [&](const serving::Request& r, double now,
                                 std::size_t device_index) {
        if (rollup) {
            // Router-level sheds (no live device) roll up under the
            // "fleet" pseudo-device, matching their breach track.
            rollup->record_request(device_index != FleetRecord::kNoDevice
                                       ? workers[device_index]->spec->id
                                       : std::string("fleet"),
                                   config_.streams[r.stream].name, now,
                                   telemetry::Rollup::Outcome::shed, 0.0,
                                   std::max(0.0, now - r.arrival_s) * 1e3);
        }
        if (tel) {
            tel->async_end(tel_streams[r.stream], "request", r.id, now,
                           "\"outcome\":\"shed\",\"queued_ms\":" +
                               telemetry::jnum(std::max(0.0, now - r.arrival_s) * 1e3));
            const bool on_device = device_index != FleetRecord::kNoDevice;
            const int breach_track =
                on_device ? tel->track(workers[device_index]->spec->id, "platform")
                          : tel_router;
            tel->breach(breach_track, "shed", r.id, now,
                        "\"stream\":" + telemetry::jstr(config_.streams[r.stream].name) +
                            ",\"slo_ms\":" + telemetry::jnum(r.slo_s * 1e3) +
                            ",\"device\":" +
                            (on_device ? telemetry::jstr(workers[device_index]->spec->id)
                                       : std::string("null")));
        }
        serving::ServingRecord row;
        row.request_id = r.id;
        row.stream = r.stream;
        row.arrival_s = r.arrival_s;
        row.start_s = now;
        row.queue_wait_s = std::max(0.0, now - r.arrival_s);
        row.e2e_s = row.queue_wait_s;
        row.slo_s = r.slo_s;
        row.shed = true;
        row.missed = true;
        row.proposals = r.frame.proposals;
        if (device_index != FleetRecord::kNoDevice) {
            const auto& w = *workers[device_index];
            row.cpu_temp = w.device.cpu_temp();
            row.gpu_temp = w.device.gpu_temp();
        }
        trace.add(FleetRecord{std::move(row), device_index,
                              migrated[r.id] != 0});
    };

    const auto make_views = [&](double now, std::size_t exclude) {
        std::vector<DeviceView> views;
        views.reserve(workers.size());
        for (std::size_t i = 0; i < workers.size(); ++i) {
            const auto& w = *workers[i];
            DeviceView v;
            v.index = i;
            v.now_s = w.device.now();
            v.cpu_temp_c = w.device.cpu_temp();
            v.gpu_temp_c = w.device.gpu_temp();
            v.headroom_c = std::min(
                w.spec->spec.cpu_throttle.trip_celsius - v.cpu_temp_c,
                w.spec->spec.gpu_throttle.trip_celsius - v.gpu_temp_c);
            v.throttled = w.device.throttled();
            v.queue_depth = w.pending();
            v.expected_service_s = w.expected_service_s;
            v.backlog_s = std::max(0.0, v.now_s - now) +
                          static_cast<double>(v.queue_depth) * v.expected_service_s;
            v.available = i != exclude && w.alive(now);
            views.push_back(v);
        }
        return views;
    };

    /// Route one request at `now`; excluded device (migration source /
    /// failed device) cannot be picked. Dispatcher-level shed when no live
    /// device remains.
    const auto route_request = [&](serving::Request req, double now, std::size_t exclude) {
        LOTUS_PROF_SCOPE("fleet.route");
        LOTUS_PROF_COUNT("fleet.routed", 1);
        const auto views = make_views(now, exclude);
        const auto idx = router->route(views, req, now);
        if (idx == Router::npos) {
            record_shed(req, now, FleetRecord::kNoDevice);
            return;
        }
        if (tel) {
            tel->instant(tel_router, "route", now,
                         "\"request_id\":" + std::to_string(req.id) +
                             ",\"stream\":" +
                             telemetry::jstr(config_.streams[req.stream].name) +
                             ",\"device\":" + telemetry::jstr(workers[idx]->spec->id) +
                             ",\"rerouted\":" + (migrated[req.id] ? "true" : "false"));
        }
        auto& w = *workers[idx];
        w.inbox.push_back(Staged{std::move(req), now});
        w.max_depth = std::max(w.max_depth, w.pending());
        tel_queue_depth(idx, now);
    };

    /// Pull every queued/staged request off `w` and re-route it across the
    /// rest of the pool at time `now` (throttle migration or failure drain).
    const auto migrate_off = [&](std::size_t index, double now) {
        auto& w = *workers[index];
        std::vector<serving::Request> displaced;
        while (!w.queue.empty()) displaced.push_back(w.queue.take(0));
        for (auto& s : w.inbox) displaced.push_back(std::move(s.request));
        w.inbox.clear();
        // Deterministic order: global arrival order, like the dispatcher's
        // own timeline.
        std::sort(displaced.begin(), displaced.end(),
                  [](const serving::Request& a, const serving::Request& b) {
                      return a.id < b.id;
                  });
        w.migrations_out += displaced.size();
        if (tel && !displaced.empty()) {
            tel->instant(tel_router, "migrate_off", now,
                         "\"device\":" + telemetry::jstr(w.spec->id) +
                             ",\"requests\":" + std::to_string(displaced.size()));
        }
        tel_queue_depth(index, now);
        for (auto& r : displaced) {
            migrated[r.id] = 1;
            route_request(std::move(r), now, index);
        }
    };

    /// Serve one scheduling step on `w`: idle up to the event instant, move
    /// ready staged requests into the scheduler-visible queue, pick, run.
    const auto dispatch_one = [&](std::size_t index) {
        LOTUS_PROF_SCOPE("fleet.dispatch");
        auto& w = *workers[index];
        const double target = w.next_event_s();
        if (w.device.now() + kTimeEps < target) {
            w.engine.run_idle(std::max(target - w.device.now(), kTimeEps), *w.governor);
            w.observe_peak();
        }
        const double now = w.device.now();
        for (std::size_t i = 0; i < w.inbox.size();) {
            if (w.inbox[i].ready_s <= now + kTimeEps) {
                w.queue.push(std::move(w.inbox[i].request));
                w.inbox.erase(w.inbox.begin() + static_cast<std::ptrdiff_t>(i));
            } else {
                ++i;
            }
        }

        auto decision = w.scheduler->pick(w.queue, now, w.expected_service_s);
        for (auto& r : decision.shed) record_shed(r, now, index);
        tel_queue_depth(index, now);
        if (!decision.next) return;

        serving::Request req = std::move(*decision.next);
        const double wait = std::max(0.0, now - req.arrival_s);
        if (tel) {
            tel->instant(tel->track(w.spec->id, "queue"), "dispatch", now,
                         "\"request_id\":" + std::to_string(req.id) +
                             ",\"stream\":" +
                             telemetry::jstr(config_.streams[req.stream].name) +
                             ",\"queue_wait_ms\":" + telemetry::jnum(wait * 1e3));
        }
        const auto result = w.engine.run_frame(model, req.frame, *w.governor, req.slo_s,
                                               w.iteration++, wait);
        w.observe_peak();

        serving::ServingRecord row;
        row.request_id = req.id;
        row.stream = req.stream;
        row.arrival_s = req.arrival_s;
        row.start_s = result.start_time_s;
        row.queue_wait_s = wait;
        row.service_s = result.latency_s;
        row.e2e_s = result.e2e_latency_s();
        row.slo_s = req.slo_s;
        row.missed = !serving::slo_satisfied(row.e2e_s, req.slo_s);
        row.throttled = result.throttled;
        row.proposals = result.proposals_used;
        row.cpu_temp = result.cpu_temp;
        row.gpu_temp = result.gpu_temp;
        row.energy_j = result.energy_j;
        if (rollup) {
            rollup->record_request(w.spec->id, config_.streams[req.stream].name,
                                   w.device.now(),
                                   row.missed ? telemetry::Rollup::Outcome::late
                                              : telemetry::Rollup::Outcome::ok,
                                   row.e2e_s * 1e3, wait * 1e3);
        }
        if (tel) {
            const double done = w.device.now();
            tel->async_end(tel_streams[req.stream], "request", req.id, done,
                           std::string("\"outcome\":\"") +
                               (row.missed ? "missed" : "served") +
                               "\",\"device\":" + telemetry::jstr(w.spec->id) +
                               ",\"e2e_ms\":" + telemetry::jnum(row.e2e_s * 1e3));
            if (row.missed) {
                tel->breach(tel->track(w.spec->id, "platform"), "slo_miss", req.id, done,
                            "\"stream\":" +
                                telemetry::jstr(config_.streams[req.stream].name) +
                                ",\"e2e_ms\":" + telemetry::jnum(row.e2e_s * 1e3) +
                                ",\"slo_ms\":" + telemetry::jnum(req.slo_s * 1e3) +
                                ",\"device\":" + telemetry::jstr(w.spec->id));
            }
        }
        trace.add(FleetRecord{std::move(row), index, migrated[req.id] != 0});

        w.expected_service_s = w.expected_service_s <= 0.0
                                   ? result.latency_s
                                   : (1.0 - kServiceEwma) * w.expected_service_s +
                                         kServiceEwma * result.latency_s;

        if (config_.migrate_on_throttle && result.throttled && w.pending() > 0) {
            migrate_off(index, w.device.now());
        }
    };

    // --- the dispatcher loop ------------------------------------------------
    std::size_t next_arrival = 0;
    const auto any_pending = [&] {
        for (const auto& w : workers) {
            if (w->pending() > 0) return true;
        }
        return false;
    };

    while (next_arrival < requests.size() || any_pending()) {
        const double t_arr =
            next_arrival < requests.size() ? requests[next_arrival].arrival_s : kInf;

        // Earliest per-device event (dispatch or failure drain); device
        // index breaks ties.
        std::size_t best = Router::npos;
        double t_evt = kInf;
        for (std::size_t i = 0; i < workers.size(); ++i) {
            const double t = workers[i]->next_event_s();
            if (t < t_evt) {
                t_evt = t;
                best = i;
            }
        }

        // Arrivals at time t are routed before dispatches at time t, the
        // same boundary rule the single-device engine applies.
        if (best != Router::npos && t_evt + kTimeEps < t_arr) {
            auto& w = *workers[best];
            if (!w.alive(std::max(t_evt, w.device.now()))) {
                // The device is past its failure instant: withdraw it and
                // re-route everything it still holds.
                w.drained = true;
                const double t_fail = std::max(w.device.now(), w.spec->fail_at_s);
                if (tel) {
                    tel->instant(tel_router, "device_failed", t_fail,
                                 "\"device\":" + telemetry::jstr(w.spec->id) +
                                     ",\"pending\":" + std::to_string(w.pending()));
                }
                migrate_off(best, t_fail);
            } else {
                dispatch_one(best);
            }
            continue;
        }

        // Route the next arrival. Idle (and cool) every live, empty device
        // up to the routing instant first, so the router reads pool
        // temperatures evaluated at this arrival.
        serving::Request req = requests[next_arrival++];
        for (std::size_t i = 0; i < workers.size(); ++i) {
            auto& w = *workers[i];
            if (w.pending() == 0 && w.alive(t_arr) &&
                w.device.now() + kTimeEps < t_arr) {
                w.engine.run_idle(t_arr - w.device.now(), *w.governor);
                w.observe_peak();
            }
            // A device whose failure instant has passed gives up its queue
            // the moment the dispatcher acts at or after that instant.
            if (!w.drained && !w.alive(t_arr) && w.pending() > 0) {
                w.drained = true;
                const double t_fail = std::max(w.device.now(), w.spec->fail_at_s);
                if (tel) {
                    tel->instant(tel_router, "device_failed", t_fail,
                                 "\"device\":" + telemetry::jstr(w.spec->id) +
                                     ",\"pending\":" + std::to_string(w.pending()));
                }
                migrate_off(i, t_fail);
            }
        }
        if (tel) {
            tel->async_begin(tel_streams[req.stream], "request", req.id, req.arrival_s,
                             "\"slo_ms\":" + telemetry::jnum(req.slo_s * 1e3));
        }
        route_request(std::move(req), t_arr, Router::npos);
    }

    // --- close out ----------------------------------------------------------
    double makespan = 0.0;
    for (const auto& w : workers) makespan = std::max(makespan, w->device.now());
    for (std::size_t i = 0; i < workers.size(); ++i) {
        auto& w = *workers[i];
        DeviceStats stats;
        stats.makespan_s = w.device.now();
        stats.energy_j = w.device.energy_joules();
        stats.peak_temp_c = w.peak_temp_c;
        stats.max_queue_depth = std::max(w.max_depth, w.queue.max_depth());
        stats.thermal_steps = w.device.thermal_steps();
        stats.migrations_out = w.migrations_out;
        // Withdrawn only if the failure instant fell inside the run horizon
        // -- a fail_at_s beyond the makespan never took effect.
        stats.failed = w.drained || w.spec->fail_at_s <= makespan;
        trace.set_device_stats(i, stats);
    }
    trace.set_makespan(makespan);
    return trace;
}

} // namespace lotus::fleet
