#pragma once
// Fleet configuration: a heterogeneous pool of edge devices behind one
// dispatcher.
//
// LOTUS manages thermals and latency on *one* device; a production
// deployment puts many such devices behind a request dispatcher. A
// FleetConfig describes that deployment: N devices (heterogeneous specs
// allowed -- an Orin Nano rack mixed with repurposed phones), the client
// streams whose merged request timeline the dispatcher routes, the
// per-device queueing policy, and the routing policy that decides *which*
// device each request lands on (see fleet/router.hpp). Each device runs its
// own governor instance -- per-device LOTUS agents -- so fleet-level
// placement composes with device-level DVFS control instead of replacing
// it.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "detector/model.hpp"
#include "platform/device.hpp"
#include "runtime/engine.hpp"
#include "serving/request.hpp"

namespace lotus::fleet {

/// One device slot in the pool. (Constructed from its DeviceSpec because
/// DeviceSpec has no empty state, like the other config shells in the repo.)
struct FleetDevice {
    FleetDevice(std::string id_, platform::DeviceSpec spec_)
        : id(std::move(id_)), spec(std::move(spec_)) {}

    /// Unique id within the fleet (namespaces seed derivation, labels
    /// traces); e.g. "orin0".
    std::string id;
    platform::DeviceSpec spec;
    /// Per-device ambient override [deg C]; NaN means the fleet ambient.
    /// (A rack corner with bad airflow, a phone left in the sun.)
    double ambient_celsius = std::numeric_limits<double>::quiet_NaN();
    /// Simulated time at which the device is withdrawn from routing
    /// (failure / maintenance holdout); its still-queued requests are
    /// re-routed to the surviving pool. +infinity = never.
    double fail_at_s = std::numeric_limits<double>::infinity();
    /// Per-device pre-training latency constraint [s]; 0 falls back to the
    /// fleet-level FleetConfig::pretrain_constraint_s. Heterogeneous pools
    /// need this: a phone's single-frame pace is ~4x an Orin's.
    double pretrain_constraint_s = 0.0;

    [[nodiscard]] bool ambient_overridden() const noexcept {
        return !std::isnan(ambient_celsius);
    }
};

/// The full fleet experiment: N devices behind a router, fed by the merged
/// request timeline of the configured streams.
struct FleetConfig {
    std::vector<FleetDevice> devices;
    detector::DetectorKind detector = detector::DetectorKind::faster_rcnn;
    runtime::EngineConfig engine{};
    std::vector<serving::StreamSpec> streams;
    /// Per-device queue policy: "fifo", "edf" or "edf_admit".
    std::string scheduler = "edf";
    /// Routing policy: "round_robin", "least_queue", "thermal_aware" or
    /// "lotus_fleet" (see fleet/router.hpp).
    std::string router = "round_robin";
    /// Re-route the still-queued requests of a device whose frame just
    /// tripped throttle -- the fleet-level analogue of shifting work off a
    /// hot compute resource before it degrades further.
    bool migrate_on_throttle = false;
    /// Unrecorded warm-up frames per learning governor, one independent
    /// (device-id-namespaced) stream per device.
    std::size_t pretrain_iterations = 0;
    /// Fleet-default pre-training constraint [s]; 0 means stream 0's SLO.
    double pretrain_constraint_s = 0.0;
    std::uint64_t seed = 42;
    double ambient_celsius = 25.0;
    /// Materialise the per-request ledger. Turn off for the summary-only
    /// fast path (bit-identical summaries, no per-row storage) when no CSV
    /// dump or chart column extraction is needed.
    bool capture_rows = true;
    /// Path of a recorded .ltrc trace to replay instead of generating the
    /// timeline from the streams' arrival processes (see
    /// serving::ServingConfig::replay_trace). Empty generates analytically.
    std::string replay_trace;
};

/// Convenience builder for a pool slot.
[[nodiscard]] FleetDevice make_device(std::string id, platform::DeviceSpec spec);

/// Resize the pool to n devices: truncates, or grows by cycling the
/// existing slots (clones get fresh unique ids, so seed namespaces stay
/// distinct). Throws std::invalid_argument on an empty pool or n == 0.
void resize_pool(FleetConfig& config, std::size_t n);

} // namespace lotus::fleet
