#pragma once
// FleetEngine: routes the merged request timeline across a pool of devices.
//
// The fleet analogue of serving::ServingEngine. Where the serving engine
// multiplexes N streams onto ONE device, the fleet engine puts a dispatcher
// in front of N devices: every request is routed -- at its arrival instant,
// against a snapshot of the whole pool -- to exactly one device, queues
// there under the per-device scheduling policy, and executes on that
// device's own EdgeDevice + InferenceEngine under that device's own
// governor instance (per-device LOTUS agents; governor seeds are
// device-id-namespaced via util::derive_seed so identical twins diverge).
//
// Time model: each device owns its local clock (the PR 3 single-advance
// authority, EdgeDevice::advance); the dispatcher interleaves per-device
// progress in global event order. Events are processed earliest-first with
// deterministic tie-breaks:
//
//  * an arrival at time t is routed before any dispatch at time t (the
//    same rule the single-device engine applies when it pulls arrivals
//    into the queue before scheduling);
//  * dispatches tie-break on the device index;
//  * a device whose queue is empty idles -- and cools, with kernel
//    governors ticking -- up to the next routing instant, so the router
//    always reads pool temperatures evaluated at the arrival it is
//    placing.
//
// A device past its FleetDevice::fail_at_s is withdrawn: it takes no new
// routes and its still-queued requests are re-routed to the survivors
// (marked migrated). With FleetConfig::migrate_on_throttle, a frame that
// trips throttle likewise drains the device's queue to the rest of the
// pool -- work shifts away from a hot die before the backlog bakes on it.
//
// run() is const and reentrant: every call builds its own devices,
// engines, governors, router and queues, so harness episodes execute from
// concurrent threads byte-identically to a serial run.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fleet/fleet.hpp"
#include "fleet/trace.hpp"
#include "governors/governor.hpp"
#include "serving/request.hpp"

namespace lotus::fleet {

class FleetEngine {
public:
    /// Per-device governor factory: called once per device with THAT
    /// device's spec and a seed derived from (governor root seed, device
    /// id, device index). Heterogeneous pools need the spec -- a governor
    /// sized for an Orin's OPP ladder must not drive a phone (wrong level
    /// counts, wrong thermal thresholds).
    using GovernorFactory = std::function<std::unique_ptr<governors::Governor>(
        const platform::DeviceSpec& spec, std::uint64_t seed)>;

    /// Validates the config (throws std::invalid_argument on an empty pool,
    /// duplicate device ids, empty streams, unknown schedulers/routers or
    /// datasets).
    explicit FleetEngine(FleetConfig config);

    /// Serve the merged timeline to completion; one governor per device.
    [[nodiscard]] FleetTrace run(const GovernorFactory& make_governor,
                                 std::uint64_t governor_seed_root) const;

    /// The merged, arrival-ordered dispatcher timeline (exposed for tests
    /// and load inspection); same derivation as the serving engine's.
    [[nodiscard]] std::vector<serving::Request> build_requests() const;

    /// The seed handed to the governor factory for device `index` -- a pure
    /// function of (root, device id, index), exposed so tests can pin the
    /// per-device namespacing.
    [[nodiscard]] std::uint64_t governor_seed(std::uint64_t governor_seed_root,
                                              std::size_t index) const;

    [[nodiscard]] const FleetConfig& config() const noexcept { return config_; }

private:
    FleetConfig config_;
};

} // namespace lotus::fleet
