#include "fleet/trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/stats.hpp"

namespace lotus::fleet {

FleetTrace::FleetTrace(std::vector<std::string> device_names,
                       std::vector<std::string> stream_names, bool capture_rows)
    : device_names_(std::move(device_names)), stream_names_(std::move(stream_names)),
      device_stats_(device_names_.size()), capture_rows_(capture_rows) {
    if (!capture_rows_) {
        device_accs_.resize(device_names_.size());
        stream_accs_.resize(stream_names_.size());
    }
}

void FleetTrace::add(FleetRecord record) {
    if (record.device != FleetRecord::kNoDevice && record.device >= device_names_.size()) {
        throw std::out_of_range("FleetTrace::add: unknown device index");
    }
    if (record.row.stream >= stream_names_.size()) {
        throw std::out_of_range("FleetTrace::add: unknown stream index");
    }
    ++count_;
    if (capture_rows_) {
        records_.push_back(std::move(record));
        return;
    }
    aggregate_acc_.add(record.row);
    if (record.device != FleetRecord::kNoDevice) {
        device_accs_[record.device].add(record.row);
    }
    stream_accs_[record.row.stream].add(record.row);
}

void FleetTrace::set_device_stats(std::size_t device, DeviceStats stats) {
    device_stats_.at(device) = stats;
}

const DeviceStats& FleetTrace::device_stats(std::size_t device) const {
    return device_stats_.at(device);
}

double FleetTrace::total_energy_j() const noexcept {
    double total = 0.0;
    for (const auto& d : device_stats_) total += d.energy_j;
    return total;
}

double FleetTrace::peak_temp_c() const noexcept {
    double peak = 0.0;
    for (const auto& d : device_stats_) peak = std::max(peak, d.peak_temp_c);
    return peak;
}

std::size_t FleetTrace::migrations() const noexcept {
    std::size_t total = 0;
    for (const auto& d : device_stats_) total += d.migrations_out;
    return total;
}

double FleetTrace::load_skew() const {
    util::RunningStats stats;
    if (!capture_rows_) {
        for (std::size_t d = 0; d < device_accs_.size(); ++d) {
            if (!device_stats_[d].failed) {
                stats.add(static_cast<double>(device_accs_[d].served()));
            }
        }
    } else {
        std::vector<std::size_t> served(device_names_.size(), 0);
        for (const auto& r : records_) {
            if (r.device != FleetRecord::kNoDevice && !r.row.shed) ++served[r.device];
        }
        for (std::size_t d = 0; d < served.size(); ++d) {
            if (!device_stats_[d].failed) stats.add(static_cast<double>(served[d]));
        }
    }
    const double mean = stats.mean();
    return mean > 0.0 ? stats.stddev() / mean : 0.0;
}

serving::ServingSummary FleetTrace::summarize(const std::vector<const FleetRecord*>& rows,
                                              std::string label) const {
    serving::ServingSummary s;
    s.stream = std::move(label);
    s.requests = rows.size();
    if (rows.empty()) return s;

    std::vector<double> served_e2e_ms;
    util::RunningStats wait_ms;
    util::RunningStats device_temp;
    double energy = 0.0;
    for (const auto* r : rows) {
        const double dev = 0.5 * (r->row.cpu_temp + r->row.gpu_temp);
        device_temp.add(dev);
        s.peak_device_temp_c = std::max(s.peak_device_temp_c, dev);
        if (r->row.shed) {
            ++s.shed;
        } else {
            ++s.served;
            served_e2e_ms.push_back(r->row.e2e_s * 1e3);
            wait_ms.add(r->row.queue_wait_s * 1e3);
            energy += r->row.energy_j;
        }
        if (r->row.missed) ++s.missed;
    }
    if (!served_e2e_ms.empty()) {
        const auto pct = util::percentiles(std::move(served_e2e_ms), {50.0, 95.0, 99.0});
        s.p50_ms = pct[0];
        s.p95_ms = pct[1];
        s.p99_ms = pct[2];
    }
    s.mean_wait_ms = wait_ms.mean();
    s.miss_rate = static_cast<double>(s.missed) / static_cast<double>(s.requests);
    s.shed_rate = static_cast<double>(s.shed) / static_cast<double>(s.requests);
    s.throughput_rps =
        makespan_s_ > 0.0 ? static_cast<double>(s.served) / makespan_s_ : 0.0;
    s.energy_per_req_j = s.served > 0 ? energy / static_cast<double>(s.served) : 0.0;
    s.mean_device_temp_c = device_temp.mean();
    return s;
}

serving::ServingSummary FleetTrace::aggregate() const {
    serving::ServingSummary s;
    if (!capture_rows_) {
        s = aggregate_acc_.summarize("fleet", makespan_s_);
    } else {
        std::vector<const FleetRecord*> rows;
        rows.reserve(records_.size());
        for (const auto& r : records_) rows.push_back(&r);
        s = summarize(rows, "fleet");
    }
    // Charge the whole pool's energy (idle included) to the served load,
    // and report the run-long fleet peak rather than the completion-time
    // peak.
    if (s.served > 0 && total_energy_j() > 0.0) {
        s.energy_per_req_j = total_energy_j() / static_cast<double>(s.served);
    }
    s.peak_device_temp_c = std::max(s.peak_device_temp_c, peak_temp_c());
    return s;
}

serving::ServingSummary FleetTrace::device_summary(std::size_t device) const {
    if (device >= device_names_.size()) {
        throw std::out_of_range("FleetTrace::device_summary: unknown device index");
    }
    serving::ServingSummary s;
    if (!capture_rows_) {
        s = device_accs_[device].summarize(device_names_[device], makespan_s_);
    } else {
        std::vector<const FleetRecord*> rows;
        rows.reserve(records_.size());
        for (const auto& r : records_) {
            if (r.device == device) rows.push_back(&r);
        }
        s = summarize(rows, device_names_[device]);
    }
    const auto& stats = device_stats_[device];
    s.peak_device_temp_c = std::max(s.peak_device_temp_c, stats.peak_temp_c);
    if (s.served > 0 && stats.energy_j > 0.0) {
        s.energy_per_req_j = stats.energy_j / static_cast<double>(s.served);
    }
    return s;
}

serving::ServingSummary FleetTrace::stream_summary(std::size_t stream) const {
    if (stream >= stream_names_.size()) {
        throw std::out_of_range("FleetTrace::stream_summary: unknown stream index");
    }
    if (!capture_rows_) {
        return stream_accs_[stream].summarize(stream_names_[stream], makespan_s_);
    }
    std::vector<const FleetRecord*> rows;
    rows.reserve(records_.size());
    for (const auto& r : records_) {
        if (r.row.stream == stream) rows.push_back(&r);
    }
    return summarize(rows, stream_names_[stream]);
}

std::vector<serving::ServingSummary> FleetTrace::all_summaries() const {
    std::vector<serving::ServingSummary> out;
    out.reserve(1 + device_names_.size() + stream_names_.size());
    out.push_back(aggregate());
    for (std::size_t d = 0; d < device_names_.size(); ++d) {
        out.push_back(device_summary(d));
    }
    for (std::size_t s = 0; s < stream_names_.size(); ++s) {
        out.push_back(stream_summary(s));
    }
    return out;
}

std::vector<double> FleetTrace::e2e_ms() const {
    std::vector<double> out;
    out.reserve(records_.size());
    for (const auto& r : records_) out.push_back(r.row.e2e_s * 1e3);
    return out;
}

std::vector<double> FleetTrace::device_temps() const {
    std::vector<double> out;
    out.reserve(records_.size());
    for (const auto& r : records_) out.push_back(0.5 * (r.row.cpu_temp + r.row.gpu_temp));
    return out;
}

void FleetTrace::write_csv(const std::string& path) const {
    if (!capture_rows_) {
        throw std::logic_error(
            "FleetTrace::write_csv: summary-only trace holds no ledger rows");
    }
    util::CsvWriter csv(path, {"request_id", "stream", "device", "migrated", "arrival_s",
                               "start_s", "queue_wait_ms", "service_ms", "e2e_ms", "slo_ms",
                               "shed", "missed", "throttled", "proposals", "cpu_temp",
                               "gpu_temp", "energy_j"});
    for (const auto& r : records_) {
        csv.row(std::vector<std::string>{
            std::to_string(r.row.request_id),
            stream_names_[r.row.stream],
            r.device == FleetRecord::kNoDevice ? "-" : device_names_[r.device],
            r.migrated ? "1" : "0",
            util::format_double(r.row.arrival_s, 4),
            util::format_double(r.row.start_s, 4),
            util::format_double(r.row.queue_wait_s * 1e3, 3),
            util::format_double(r.row.service_s * 1e3, 3),
            util::format_double(r.row.e2e_s * 1e3, 3),
            util::format_double(r.row.slo_s * 1e3, 3),
            r.row.shed ? "1" : "0",
            r.row.missed ? "1" : "0",
            r.row.throttled ? "1" : "0",
            std::to_string(r.row.proposals),
            util::format_double(r.row.cpu_temp, 3),
            util::format_double(r.row.gpu_temp, 3),
            util::format_double(r.row.energy_j, 4),
        });
    }
}

} // namespace lotus::fleet
