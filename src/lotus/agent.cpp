#include "lotus/agent.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "telemetry/recorder.hpp"

namespace lotus::core {

namespace {

rl::MlpConfig make_net_config(const LotusConfig& cfg, std::size_t actions, bool slimmable,
                              std::uint64_t seed) {
    rl::MlpConfig net;
    net.dims.push_back(kStateDim);
    for (const auto h : cfg.hidden) net.dims.push_back(h);
    net.dims.push_back(actions);
    net.slim_input = slimmable;   // width slicing drops the proposal input
    net.slim_output = false;      // all M*N actions scored at every width
    net.seed = seed;
    return net;
}

rl::DqnConfig make_dqn_config(const LotusConfig& cfg) {
    rl::DqnConfig dqn;
    dqn.gamma = cfg.gamma;
    dqn.batch_size = cfg.batch_size;
    dqn.target_sync_every = cfg.target_sync_every;
    dqn.double_dqn = cfg.double_dqn;
    dqn.adam = cfg.adam;
    return dqn;
}

} // namespace

namespace {

LotusConfig resolve_config(LotusConfig config) {
    // Temperature features are encoded relative to the thermal threshold;
    // wire the reward's T_thres through unless the user pinned a reference.
    if (config.encoder.temp_ref_celsius == 0.0) {
        config.encoder.temp_ref_celsius = config.reward.t_thres_celsius;
    }
    return config;
}

} // namespace

LotusAgent::LotusAgent(std::size_t cpu_levels, std::size_t gpu_levels, LotusConfig config)
    : config_(resolve_config(std::move(config))),
      codec_(cpu_levels, gpu_levels),
      encoder_(cpu_levels, gpu_levels, config_.encoder),
      reward_(config_.reward),
      even_buffer_(config_.replay_capacity),
      odd_buffer_(config_.replay_capacity),
      eps_t_(config_.eps_t0, config_.eps_t_floor, config_.eps_t_triggers),
      rng_(config_.seed ^ 0xC0FFEEULL) {
    if (config_.reduced_width <= 0.0 || config_.reduced_width > 1.0) {
        throw std::invalid_argument("LotusAgent: reduced_width out of (0,1]");
    }
    const auto actions = codec_.num_actions();
    dqn_ = std::make_unique<rl::DqnCore>(
        make_net_config(config_, actions, /*slimmable=*/!config_.use_two_networks,
                        config_.seed),
        make_dqn_config(config_));
    if (config_.use_two_networks) {
        dqn_second_ = std::make_unique<rl::DqnCore>(
            make_net_config(config_, actions, /*slimmable=*/false, config_.seed + 1),
            make_dqn_config(config_));
    }
}

std::string LotusAgent::name() const {
    switch (config_.decision_mode) {
        case DecisionMode::frame_start_only: return "Lotus(frame-start-only)";
        case DecisionMode::post_rpn_only: return "Lotus(post-rpn-only)";
        case DecisionMode::both: break;
    }
    if (config_.use_two_networks) return "Lotus(two-networks)";
    if (config_.ztt_style_cooldown) return "Lotus(ztt-cooldown)";
    return "Lotus";
}

double LotusAgent::epsilon() const noexcept {
    return config_.eps_end +
           (config_.eps_start - config_.eps_end) *
               std::pow(config_.eps_decay_rate, static_cast<double>(decisions_));
}

bool LotusAgent::overheated(const governors::Observation& obs) const noexcept {
    return obs.cpu_temp > config_.reward.t_thres_celsius ||
           obs.gpu_temp > config_.reward.t_thres_celsius;
}

int LotusAgent::cooldown_action(const governors::Observation& obs) {
    // Random frequency pair strictly below the current setting (component-
    // wise where possible) -- shared shape with zTT's cool-down; what
    // differs is *when* it fires (probability epsilon_t vs always).
    const auto lower = [&](std::size_t level) {
        if (level == 0) return std::size_t{0};
        return static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(level) - 1));
    };
    return codec_.encode(lower(obs.cpu_level), lower(obs.gpu_level));
}

int LotusAgent::select_action(const std::vector<double>& state, bool odd_step,
                              const governors::Observation& obs) {
    ++decisions_;
    if (overheated(obs)) {
        const double p = config_.ztt_style_cooldown ? 1.0 : eps_t_.value();
        if (rng_.bernoulli(p)) {
            if (!config_.ztt_style_cooldown) eps_t_.trigger();
            ++cooldowns_;
            return cooldown_action(obs);
        }
        // Learned hot-state behaviour: greedy selection (Sec. 4.3.5
        // "Otherwise, the action is selected according to the output of the
        // Q-network").
        auto& net = odd_step ? dqn_odd() : dqn_even();
        return net.greedy_action(state, odd_step ? 1.0 : even_width());
    }
    auto& net = odd_step ? dqn_odd() : dqn_even();
    return net.act(state, odd_step ? 1.0 : even_width(), epsilon(), rng_);
}

governors::LevelRequest LotusAgent::on_frame_start(const governors::Observation& obs) {
    const auto s_even = encoder_.encode_even(obs);

    // Complete the previous odd transition <s_2i-1, a, r, s_2i> now that the
    // successor even state is observed.
    if (pending_odd_ && pending_odd_->reward_ready) {
        rl::Transition t;
        t.state = pending_odd_->state;
        t.action = pending_odd_->action;
        t.reward = pending_odd_->reward;
        t.next_state = s_even;
        t.width_state = 1.0;
        t.width_next = even_width();
        odd_buffer_.push(std::move(t));
        pending_odd_.reset();
    }
    // frame_start_only mode chains even -> even transitions across frames.
    if (config_.decision_mode == DecisionMode::frame_start_only && pending_even_ &&
        pending_even_reward_) {
        rl::Transition t;
        t.state = pending_even_->state;
        t.action = pending_even_->action;
        t.reward = *pending_even_reward_;
        t.next_state = s_even;
        t.width_state = even_width();
        t.width_next = even_width();
        even_buffer_.push(std::move(t));
        pending_even_.reset();
        pending_even_reward_.reset();
    }

    if (config_.decision_mode == DecisionMode::post_rpn_only) {
        return governors::LevelRequest::none();
    }

    const int action = select_action(s_even, /*odd_step=*/false, obs);
    pending_even_ = PendingEven{.state = s_even, .action = action, .next_state = {}, .has_next = false};

    const auto [cpu, gpu] = codec_.decode(action);
    return governors::LevelRequest::set(cpu, gpu);
}

governors::LevelRequest LotusAgent::on_post_rpn(const governors::Observation& obs) {
    if (config_.decision_mode == DecisionMode::frame_start_only) {
        return governors::LevelRequest::none();
    }

    const auto s_odd = encoder_.encode_odd(obs);

    if (config_.decision_mode == DecisionMode::post_rpn_only) {
        // Chain odd -> odd transitions across frames.
        if (pending_odd_ && pending_odd_->reward_ready) {
            rl::Transition t;
            t.state = pending_odd_->state;
            t.action = pending_odd_->action;
            t.reward = pending_odd_->reward;
            t.next_state = s_odd;
            t.width_state = 1.0;
            t.width_next = 1.0;
            odd_buffer_.push(std::move(t));
            pending_odd_.reset();
        }
    } else if (pending_even_) {
        // The even transition's successor state is this odd state; the
        // reward arrives at frame end.
        pending_even_->next_state = s_odd;
        pending_even_->has_next = true;
    }

    const int action = select_action(s_odd, /*odd_step=*/true, obs);
    pending_odd_ =
        PendingOdd{.state = s_odd, .action = action, .reward = 0.0, .reward_ready = false};

    const auto [cpu, gpu] = codec_.decode(action);
    return governors::LevelRequest::set(cpu, gpu);
}

void LotusAgent::on_frame_end(const governors::FrameOutcome& outcome) {
    ++frames_;
    const auto rb = reward_.evaluate(outcome.latency_s, outcome.latency_constraint_s,
                                     outcome.cpu_temp, outcome.gpu_temp);
    last_reward_ = rb.total;

    if (pending_even_) {
        if (config_.decision_mode == DecisionMode::frame_start_only) {
            pending_even_reward_ = rb.total;
        } else if (pending_even_->has_next) {
            rl::Transition t;
            t.state = pending_even_->state;
            t.action = pending_even_->action;
            t.reward = rb.total;
            t.next_state = pending_even_->next_state;
            t.width_state = even_width();
            t.width_next = 1.0;
            even_buffer_.push(std::move(t));
            pending_even_.reset();
        } else {
            // One-stage detector (no post-RPN point): drop the transition.
            pending_even_.reset();
        }
    }
    if (pending_odd_) {
        pending_odd_->reward = rb.total;
        pending_odd_->reward_ready = true;
    }

    if (config_.train_online) train();

    if (auto* tel = telemetry::current()) {
        // Learning-state counters under the owning device's process (the
        // engine set the context before delivering this outcome).
        const int track = tel->context_track("rl");
        tel->counter(track, "reward", outcome.now_s, rb.total);
        tel->counter(track, "epsilon", outcome.now_s, epsilon());
        tel->counter(track, "replay_size", outcome.now_s,
                     static_cast<double>(even_buffer_.size() + odd_buffer_.size()));
        if (last_loss_) tel->counter(track, "loss", outcome.now_s, *last_loss_);
    }
}

void LotusAgent::train() {
    // One batched TD update per buffer per frame: even transitions update
    // the reduced-width slice, odd transitions the full width (Sec. 4.3.4
    // "at time step 2i, the sampled transitions are used to update the
    // Q-network with alpha-x width, while the remaining weights are not
    // updated").
    double loss_sum = 0.0;
    int updates = 0;
    if (even_buffer_.size() >= config_.min_replay) {
        const auto batch = even_buffer_.sample(rng_, config_.batch_size);
        loss_sum += dqn_even().train_batch(batch);
        ++updates;
    }
    if (odd_buffer_.size() >= config_.min_replay) {
        const auto batch = odd_buffer_.sample(rng_, config_.batch_size);
        loss_sum += dqn_odd().train_batch(batch);
        ++updates;
    }
    if (updates > 0) last_loss_ = loss_sum / updates;
}

} // namespace lotus::core
