#include "lotus/state.hpp"

#include <algorithm>
#include <stdexcept>

namespace lotus::core {

ActionCodec::ActionCodec(std::size_t cpu_levels, std::size_t gpu_levels)
    : cpu_levels_(cpu_levels), gpu_levels_(gpu_levels) {
    if (cpu_levels_ == 0 || gpu_levels_ == 0) {
        throw std::invalid_argument("ActionCodec: zero levels");
    }
}

int ActionCodec::encode(std::size_t cpu_level, std::size_t gpu_level) const {
    if (cpu_level >= cpu_levels_ || gpu_level >= gpu_levels_) {
        throw std::out_of_range("ActionCodec::encode: level out of range");
    }
    return static_cast<int>(cpu_level * gpu_levels_ + gpu_level);
}

std::pair<std::size_t, std::size_t> ActionCodec::decode(int action) const {
    if (action < 0 || static_cast<std::size_t>(action) >= num_actions()) {
        throw std::out_of_range("ActionCodec::decode: action out of range");
    }
    const auto a = static_cast<std::size_t>(action);
    return {a / gpu_levels_, a % gpu_levels_};
}

StateEncoder::StateEncoder(std::size_t cpu_levels, std::size_t gpu_levels,
                           StateEncoderConfig config)
    : cpu_levels_(cpu_levels), gpu_levels_(gpu_levels), config_(config) {
    if (cpu_levels_ < 2 || gpu_levels_ < 2) {
        throw std::invalid_argument("StateEncoder: need at least two levels per domain");
    }
    if (config_.proposal_norm <= 0.0 || config_.delta_l_clamp <= 0.0 ||
        config_.temp_scale_k <= 0.0) {
        throw std::invalid_argument("StateEncoder: bad normalisation constants");
    }
}

double StateEncoder::norm_temp(double t_celsius) const noexcept {
    return (t_celsius - config_.temp_ref_celsius) / config_.temp_scale_k;
}

double StateEncoder::norm_delta_l(double delta_l_s, double constraint_s) const noexcept {
    const double n = delta_l_s / constraint_s;
    return std::clamp(n, -config_.delta_l_clamp, config_.delta_l_clamp);
}

std::vector<double> StateEncoder::encode_even(const governors::Observation& obs) const {
    // DeltaL at frame start: previous frame's slack (L when no history, i.e.
    // "entire budget available").
    const double delta_l = obs.last_frame_latency_s > 0.0
                               ? obs.latency_constraint_s - obs.last_frame_latency_s
                               : obs.latency_constraint_s;
    return {
        0.0, // S: stage flag
        norm_temp(obs.cpu_temp),
        norm_temp(obs.gpu_temp),
        static_cast<double>(obs.cpu_level) / static_cast<double>(cpu_levels_ - 1),
        static_cast<double>(obs.gpu_level) / static_cast<double>(gpu_levels_ - 1),
        norm_delta_l(delta_l, obs.latency_constraint_s),
        0.0, // P: unavailable at frame start; dropped by the 0.75x width
    };
}

std::vector<double> StateEncoder::encode_odd(const governors::Observation& obs) const {
    if (obs.proposals < 0) {
        throw std::invalid_argument("encode_odd: proposals not available");
    }
    const double delta_l = obs.latency_constraint_s - obs.elapsed_in_frame_s;
    return {
        1.0,
        norm_temp(obs.cpu_temp),
        norm_temp(obs.gpu_temp),
        static_cast<double>(obs.cpu_level) / static_cast<double>(cpu_levels_ - 1),
        static_cast<double>(obs.gpu_level) / static_cast<double>(gpu_levels_ - 1),
        norm_delta_l(delta_l, obs.latency_constraint_s),
        std::min(static_cast<double>(obs.proposals) / config_.proposal_norm, 2.0),
    };
}

} // namespace lotus::core
