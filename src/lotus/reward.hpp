#pragma once
// LOTUS reward (Sec. 4.3.3, Eqs. (2)-(3)).
//
//   r = r_time + lambda * r_temp
//
//   r_time = tanh(DeltaL) + 1 / (1 + sigma_n(DeltaL))   if DeltaL > 0
//          = p * DeltaL                                  otherwise
//   r_temp = +1  if T_cpu <= T_thres and T_gpu <= T_thres
//          = -p  otherwise
//
// DeltaL = (L - l_i) / L is the *normalised* slack of the completed frame
// (the tanh saturates around |x| ~ 2, so normalising by L keeps the reward
// in its sensitive region across devices whose latencies differ by 4x).
// sigma_n is the standard deviation of the n most recent DeltaL values; the
// 1/(1+sigma_n) term is what rewards *low latency variation* -- the paper's
// headline objective. p > 0 is the penalty multiplier applied both to
// deadline violations (r_time branch) and overheating (r_temp branch).

#include "util/stats.hpp"

namespace lotus::core {

struct RewardConfig {
    /// Penalty multiplier p of Eqs. (2)-(3).
    double penalty_p = 5.0;
    /// Temperature weight lambda.
    double lambda_temp = 0.5;
    /// Window n for sigma_n.
    std::size_t sigma_window = 10;
    /// Temperature threshold T_thres [deg C].
    double t_thres_celsius = 80.0;
};

struct RewardBreakdown {
    double r_time = 0.0;
    double r_temp = 0.0;
    double total = 0.0;
    double delta_l_norm = 0.0;
    double sigma_n = 0.0;
};

/// Stateful reward calculator (owns the sigma_n window).
class LotusReward {
public:
    explicit LotusReward(RewardConfig config);

    /// Evaluate the reward for a completed frame and push its DeltaL into
    /// the sigma_n window.
    [[nodiscard]] RewardBreakdown evaluate(double latency_s, double constraint_s,
                                           double cpu_temp, double gpu_temp);

    /// Pure r_time evaluation against an explicit sigma (unit tests).
    [[nodiscard]] double r_time(double delta_l_norm, double sigma_n) const noexcept;
    [[nodiscard]] double r_temp(double cpu_temp, double gpu_temp) const noexcept;

    void reset();

    [[nodiscard]] const RewardConfig& config() const noexcept { return config_; }
    [[nodiscard]] double current_sigma() const noexcept { return window_.stddev(); }

private:
    RewardConfig config_;
    util::WindowedStats window_;
};

} // namespace lotus::core
