#pragma once
// The LOTUS agent (Sec. 4.3): a DRL governor tailored to two-stage
// detectors.
//
//  * TWO decisions per frame: at frame start (s_2i, width 0.75x -- the
//    proposal count is unknown) and after the RPN (s_2i+1, width 1.0x).
//  * ONE slimmable Q-network shared across both decision kinds, so the two
//    decisions of a frame share parameters and stay correlated
//    (Sec. 4.3.4) -- contrast the two-network ablation below.
//  * TWO experience replay buffers, one per decision kind; TD targets
//    bootstrap across widths (even transitions bootstrap max_a Q at 1.0x,
//    odd transitions at 0.75x).
//  * epsilon_t-greedy cool-down (Sec. 4.3.5): when overheated, a random
//    *lower* frequency pair is forced with probability epsilon_t, which
//    decays sinusoidally per trigger -- early training is protected from
//    thermal runaway, while the converged agent handles hot states itself.
//
// Ablation switches (bench_ablation_design) expose the design space the
// paper argues about: one decision per frame, two separate Q-networks, and
// zTT's non-decaying cool-down.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "governors/governor.hpp"
#include "lotus/reward.hpp"
#include "lotus/state.hpp"
#include "rl/dqn.hpp"
#include "rl/replay.hpp"
#include "rl/schedule.hpp"
#include "util/rng.hpp"

namespace lotus::core {

/// Which decision points the agent uses (ablation).
enum class DecisionMode {
    both,             // LOTUS: frame start + post-RPN
    frame_start_only, // zTT-style timing (but LOTUS reward/net)
    post_rpn_only,    // stage-2-only scaling
};

struct LotusConfig {
    /// Reduced width alpha of the slimmable Q-network.
    double reduced_width = 0.75;
    std::vector<std::size_t> hidden = {128, 128, 128}; // 4-layer MLP (Sec. 4.4.1)

    double gamma = 0.9;
    std::size_t batch_size = 32;
    std::size_t replay_capacity = 10'000;
    std::size_t min_replay = 64;
    std::size_t target_sync_every = 100;
    rl::AdamConfig adam{.lr = 0.01, .lr_min = 1e-4, .lr_total_steps = 10'000};

    // epsilon-greedy exploration (per decision).
    double eps_start = 1.0;
    double eps_end = 0.02;
    double eps_decay_rate = 0.9991;

    // epsilon_t-greedy cool-down (Sec. 4.3.5).
    double eps_t0 = 1.0;
    double eps_t_floor = 0.05;
    std::size_t eps_t_triggers = 200;

    RewardConfig reward{};
    StateEncoderConfig encoder{};

    /// Per-decision agent communication + Q-network overhead (Sec. 4.4.2:
    /// 8.52 ms per inference across the two decisions).
    double decision_overhead_s = 0.00426;

    bool train_online = true;
    std::uint64_t seed = 7;

    // --- ablation / extension switches ---------------------------------------
    DecisionMode decision_mode = DecisionMode::both;
    /// Use two separate full-width Q-networks instead of one slimmable net.
    bool use_two_networks = false;
    /// Replace epsilon_t decay with zTT's always-random cool-down.
    bool ztt_style_cooldown = false;
    /// Double DQN targets (extension; the paper uses vanilla DQN).
    bool double_dqn = false;
};

class LotusAgent final : public governors::Governor {
public:
    LotusAgent(std::size_t cpu_levels, std::size_t gpu_levels, LotusConfig config);

    [[nodiscard]] std::string name() const override;
    governors::LevelRequest on_frame_start(const governors::Observation& obs) override;
    governors::LevelRequest on_post_rpn(const governors::Observation& obs) override;
    void on_frame_end(const governors::FrameOutcome& outcome) override;
    [[nodiscard]] double decision_overhead_s() const override {
        return config_.decision_overhead_s;
    }

    // --- introspection (tests, benches, examples) ---------------------------
    [[nodiscard]] const LotusConfig& config() const noexcept { return config_; }
    [[nodiscard]] const ActionCodec& codec() const noexcept { return codec_; }
    [[nodiscard]] const rl::DqnCore& even_net() const noexcept { return dqn_even(); }
    [[nodiscard]] const rl::DqnCore& odd_net() const noexcept { return dqn_odd(); }
    [[nodiscard]] const rl::ReplayBuffer& even_buffer() const noexcept { return even_buffer_; }
    [[nodiscard]] const rl::ReplayBuffer& odd_buffer() const noexcept { return odd_buffer_; }
    [[nodiscard]] double epsilon() const noexcept;
    [[nodiscard]] double epsilon_t() const noexcept { return eps_t_.value(); }
    [[nodiscard]] std::size_t cooldown_activations() const noexcept { return cooldowns_; }
    [[nodiscard]] std::size_t frames_seen() const noexcept { return frames_; }
    [[nodiscard]] std::size_t decisions_made() const noexcept { return decisions_; }
    [[nodiscard]] double last_reward() const noexcept { return last_reward_; }
    /// Mean TD loss of the most recent train() call; empty before the replay
    /// buffers first reach min_replay.
    [[nodiscard]] std::optional<double> last_loss() const noexcept { return last_loss_; }

private:
    struct PendingEven {
        std::vector<double> state;
        int action = 0;
        std::vector<double> next_state; // s_2i+1, filled at post-RPN
        bool has_next = false;
    };
    struct PendingOdd {
        std::vector<double> state;
        int action = 0;
        double reward = 0.0;
        bool reward_ready = false;
    };

    [[nodiscard]] rl::DqnCore& dqn_even() noexcept { return *dqn_; }
    [[nodiscard]] rl::DqnCore& dqn_odd() noexcept {
        return config_.use_two_networks ? *dqn_second_ : *dqn_;
    }
    [[nodiscard]] const rl::DqnCore& dqn_even() const noexcept { return *dqn_; }
    [[nodiscard]] const rl::DqnCore& dqn_odd() const noexcept {
        return config_.use_two_networks ? *dqn_second_ : *dqn_;
    }
    /// Width used to evaluate even states on the even net.
    [[nodiscard]] double even_width() const noexcept {
        return config_.use_two_networks ? 1.0 : config_.reduced_width;
    }

    [[nodiscard]] bool overheated(const governors::Observation& obs) const noexcept;
    [[nodiscard]] int cooldown_action(const governors::Observation& obs);
    [[nodiscard]] int select_action(const std::vector<double>& state, bool odd_step,
                                    const governors::Observation& obs);
    void train();

    LotusConfig config_;
    ActionCodec codec_;
    StateEncoder encoder_;
    LotusReward reward_;

    std::unique_ptr<rl::DqnCore> dqn_;        // slimmable (or even net in 2-net mode)
    std::unique_ptr<rl::DqnCore> dqn_second_; // odd net in 2-net mode only
    rl::ReplayBuffer even_buffer_;
    rl::ReplayBuffer odd_buffer_;

    rl::SinusoidalTriggerDecay eps_t_;
    util::Rng rng_;

    std::optional<PendingEven> pending_even_;
    std::optional<PendingOdd> pending_odd_;
    /// For frame_start_only mode: reward waiting for the next even state.
    std::optional<double> pending_even_reward_;

    std::size_t frames_ = 0;
    std::size_t decisions_ = 0;
    std::size_t cooldowns_ = 0;
    double last_reward_ = 0.0;
    std::optional<double> last_loss_;
};

} // namespace lotus::core
