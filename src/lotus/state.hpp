#pragma once
// LOTUS state encoding and action codec (Secs. 4.3.1-4.3.2).
//
// State s_2i   (frame start):  {S, T_cpu, T_gpu, f_cpu, f_gpu, DeltaL}
// State s_2i+1 (post-RPN):     {S, T_cpu, T_gpu, f_cpu, f_gpu, DeltaL, P}
//
// Both are materialised as 7-element vectors with the proposal count in the
// LAST slot: running the slimmable Q-network at width 0.75 activates
// ceil(0.75 * 7) = 6 input units, which drops exactly the proposal feature
// -- the design observation of Sec. 4.3.4.
//
// DeltaL semantics (the paper leaves the frame-start instance implicit; see
// DESIGN.md "DRL design notes"):
//   * frame start: DeltaL = L - l_{i-1}   (slack achieved on the previous
//     frame -- the natural "how are we doing" signal available then);
//   * post-RPN:    DeltaL = L - elapsed_i (budget remaining for stage 2).
// Both are normalised by L.

#include <cstddef>
#include <vector>

#include "governors/governor.hpp"

namespace lotus::core {

inline constexpr std::size_t kStateDim = 7;
inline constexpr std::size_t kEvenStateFeatures = 6; // what width 0.75 reads

/// Joint CPU/GPU action codec: a = cpu_level * N_gpu + gpu_level.
class ActionCodec {
public:
    ActionCodec(std::size_t cpu_levels, std::size_t gpu_levels);

    [[nodiscard]] std::size_t num_actions() const noexcept { return cpu_levels_ * gpu_levels_; }
    [[nodiscard]] std::size_t cpu_levels() const noexcept { return cpu_levels_; }
    [[nodiscard]] std::size_t gpu_levels() const noexcept { return gpu_levels_; }

    [[nodiscard]] int encode(std::size_t cpu_level, std::size_t gpu_level) const;
    [[nodiscard]] std::pair<std::size_t, std::size_t> decode(int action) const;

private:
    std::size_t cpu_levels_;
    std::size_t gpu_levels_;
};

struct StateEncoderConfig {
    /// Normalisation constant for the proposal count.
    double proposal_norm = 650.0;
    /// DeltaL / L is clamped to +- this bound before entering the network.
    double delta_l_clamp = 2.0;
    /// Temperatures are encoded relative to the thermal threshold:
    /// (T - temp_ref) / temp_scale. This keeps the decision-relevant band
    /// around T_thres equally resolved on a Jetson (55-85 C envelope) and a
    /// phone (28-43 C skin envelope); a fixed /100 normalisation would
    /// compress the phone's entire usable band into a few percent of input
    /// range. 0 means "taken from the reward threshold" (set by the agent).
    double temp_ref_celsius = 0.0;
    double temp_scale_k = 15.0;
};

/// Normalising encoder from engine observations to network inputs.
class StateEncoder {
public:
    StateEncoder(std::size_t cpu_levels, std::size_t gpu_levels,
                 StateEncoderConfig config = {});

    /// Frame-start state s_2i; `prev_latency_s` may be 0 before any frame.
    [[nodiscard]] std::vector<double> encode_even(const governors::Observation& obs) const;

    /// Post-RPN state s_2i+1.
    [[nodiscard]] std::vector<double> encode_odd(const governors::Observation& obs) const;

    [[nodiscard]] const StateEncoderConfig& config() const noexcept { return config_; }

private:
    [[nodiscard]] double norm_delta_l(double delta_l_s, double constraint_s) const noexcept;
    [[nodiscard]] double norm_temp(double t_celsius) const noexcept;

    std::size_t cpu_levels_;
    std::size_t gpu_levels_;
    StateEncoderConfig config_;
};

} // namespace lotus::core
