#include "lotus/reward.hpp"

#include <cmath>
#include <stdexcept>

namespace lotus::core {

LotusReward::LotusReward(RewardConfig config)
    : config_(config), window_(config.sigma_window) {
    if (config_.penalty_p <= 0.0) {
        throw std::invalid_argument("LotusReward: penalty p must be > 0");
    }
    if (config_.lambda_temp < 0.0) {
        throw std::invalid_argument("LotusReward: negative lambda");
    }
}

double LotusReward::r_time(double delta_l_norm, double sigma_n) const noexcept {
    if (delta_l_norm > 0.0) {
        return std::tanh(delta_l_norm) + 1.0 / (1.0 + sigma_n);
    }
    return config_.penalty_p * delta_l_norm; // negative: violation penalty
}

double LotusReward::r_temp(double cpu_temp, double gpu_temp) const noexcept {
    if (cpu_temp <= config_.t_thres_celsius && gpu_temp <= config_.t_thres_celsius) {
        return 1.0;
    }
    return -config_.penalty_p;
}

RewardBreakdown LotusReward::evaluate(double latency_s, double constraint_s, double cpu_temp,
                                      double gpu_temp) {
    if (constraint_s <= 0.0) {
        throw std::invalid_argument("LotusReward: constraint must be > 0");
    }
    RewardBreakdown out;
    out.delta_l_norm = (constraint_s - latency_s) / constraint_s;

    // sigma_n over the most recent n frames *including* this one, matching
    // "the standard deviation calculated from the n most recent images".
    window_.add(out.delta_l_norm);
    out.sigma_n = window_.stddev();

    out.r_time = r_time(out.delta_l_norm, out.sigma_n);
    out.r_temp = r_temp(cpu_temp, gpu_temp);
    out.total = out.r_time + config_.lambda_temp * out.r_temp;
    return out;
}

void LotusReward::reset() {
    window_.reset();
}

} // namespace lotus::core
