#pragma once
// Slimmable fully-connected layer (Sec. 4.3.4 of the paper).
//
// A SlimmableLinear owns a full (out_features x in_features) weight matrix
// but can execute a forward/backward pass restricted to the leading
// [0:active_out) x [0:active_in) sub-matrix. LOTUS runs its Q-network at
// width 0.75x for the frame-start decision (where the proposal count is not
// yet known) and at 1.0x for the post-RPN decision; both share the leading
// weights, which is exactly what this slicing implements.
//
// Gradients are accumulated into `grad_w` / `grad_b`, and a parallel byte
// mask records which entries were touched so the optimizer can honour the
// paper's "the remaining weights are not updated" rule under Adam (whose
// update is non-zero even for zero gradients).

#include <cstdint>
#include <span>
#include <vector>

#include "rl/matrix.hpp"
#include "util/rng.hpp"

namespace lotus::rl {

class SlimmableLinear {
public:
    SlimmableLinear(std::size_t in_features, std::size_t out_features, util::Rng& rng);

    [[nodiscard]] std::size_t in_features() const noexcept { return in_; }
    [[nodiscard]] std::size_t out_features() const noexcept { return out_; }

    /// y[0:out_active] = W[0:out_active, 0:in_active] x + b. `x` must have at
    /// least in_active elements, `y` at least out_active.
    void forward(std::span<const double> x, std::span<double> y,
                 std::size_t in_active, std::size_t out_active) const noexcept;

    /// Batched forward: Y[k, 0:out_active] = W[0:out_active, 0:in_active]
    /// X[k, 0:in_active] + b for every row k < batch. Bit-identical to
    /// `batch` calls of forward() (see Matrix::slice_matmul).
    void forward_batch(const Matrix& x, Matrix& y, std::size_t in_active,
                       std::size_t out_active, std::size_t batch) const noexcept;

    /// Backprop for the same slice. `x` is the input that produced the
    /// forward pass, `dy` the upstream gradient (length out_active); writes
    /// `dx` (length in_active), accumulates weight/bias grads and marks the
    /// touched mask.
    void backward(std::span<const double> x, std::span<const double> dy,
                  std::span<double> dx, std::size_t in_active,
                  std::size_t out_active) noexcept;

    void zero_grad() noexcept;

    // Parameter/grad/mask access for the optimizer and for tests.
    [[nodiscard]] Matrix& weights() noexcept { return w_; }
    [[nodiscard]] const Matrix& weights() const noexcept { return w_; }
    [[nodiscard]] std::span<double> bias() noexcept { return b_; }
    [[nodiscard]] std::span<const double> bias() const noexcept { return b_; }
    [[nodiscard]] Matrix& grad_weights() noexcept { return gw_; }
    [[nodiscard]] std::span<double> grad_bias() noexcept { return gb_; }
    [[nodiscard]] std::span<const std::uint8_t> weight_mask() const noexcept { return mask_w_; }
    [[nodiscard]] std::span<std::uint8_t> weight_mask() noexcept { return mask_w_; }
    [[nodiscard]] std::span<const std::uint8_t> bias_mask() const noexcept { return mask_b_; }
    [[nodiscard]] std::span<std::uint8_t> bias_mask() noexcept { return mask_b_; }

private:
    std::size_t in_;
    std::size_t out_;
    Matrix w_;
    std::vector<double> b_;
    Matrix gw_;
    std::vector<double> gb_;
    std::vector<std::uint8_t> mask_w_;
    std::vector<std::uint8_t> mask_b_;
    /// Per-row high-water mark over mask_w_: marking always covers the
    /// leading [0, in_active) span of a row, so one length per row lets
    /// backward() skip rows already marked at this width or wider and fill
    /// only the delta span otherwise. Reset by zero_grad().
    std::vector<std::uint32_t> marked_cols_;
};

/// ReLU applied in place over the active prefix.
void relu_inplace(std::span<double> x, std::size_t active) noexcept;

/// dX = dY * 1[pre-activation > 0] over the active prefix.
void relu_backward(std::span<const double> pre_activation, std::span<double> dy,
                   std::size_t active) noexcept;

} // namespace lotus::rl
