#include "rl/dqn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "prof/profiler.hpp"

namespace lotus::rl {

namespace {

/// Huber loss value and derivative at residual r = prediction - target.
struct Huber {
    double value;
    double grad;
};

Huber huber(double residual, double delta) noexcept {
    const double a = std::abs(residual);
    if (a <= delta) {
        return {0.5 * residual * residual, residual};
    }
    return {delta * (a - 0.5 * delta), residual > 0 ? delta : -delta};
}

std::optional<DqnMath> g_forced_math;

} // namespace

void force_dqn_math(std::optional<DqnMath> mode) noexcept { g_forced_math = mode; }

std::optional<DqnMath> forced_dqn_math() noexcept { return g_forced_math; }

DqnCore::DqnCore(MlpConfig net_config, DqnConfig config)
    : config_(config),
      online_(net_config),
      target_(std::move(net_config)),
      optimizer_(online_, config.adam) {
    if (g_forced_math) config_.math = *g_forced_math;
    target_.copy_parameters_from(online_);
}

int DqnCore::greedy_action(std::span<const double> state, double width) const {
    LOTUS_PROF_SCOPE("rl.act");
    act_q_.assign(online_.output_dim(), 0.0);
    online_.forward(state, width, act_q_, act_scratch_);
    const auto it = std::max_element(act_q_.begin(), act_q_.end());
    return static_cast<int>(std::distance(act_q_.begin(), it));
}

int DqnCore::act(std::span<const double> state, double width, double epsilon,
                 util::Rng& rng) const {
    if (rng.bernoulli(epsilon)) {
        return static_cast<int>(
            rng.uniform_int(0, static_cast<std::int64_t>(online_.output_dim()) - 1));
    }
    return greedy_action(state, width);
}

std::vector<double> DqnCore::q_values(std::span<const double> state, double width) const {
    std::vector<double> q(online_.output_dim(), 0.0);
    q_values(state, width, q);
    return q;
}

void DqnCore::q_values(std::span<const double> state, double width,
                       std::span<double> out) const {
    online_.forward(state, width, out, act_scratch_);
}

double DqnCore::train_step(const ReplayBuffer& buffer, util::Rng& rng,
                           std::size_t min_buffer) {
    if (buffer.size() < std::max<std::size_t>(min_buffer, 1)) return -1.0;
    const auto batch = buffer.sample(rng, config_.batch_size);
    return train_batch(batch);
}

double DqnCore::train_batch(std::span<const Transition* const> batch) {
    if (batch.empty()) return -1.0;
    LOTUS_PROF_SCOPE("rl.train_batch");
    LOTUS_PROF_COUNT("rl.train_steps", 1);
    return config_.math == DqnMath::scalar ? train_batch_scalar(batch)
                                           : train_batch_batched(batch);
}

// Per-sample reference implementation: 2 x batch_size scalar forwards for
// the bootstrap (target + double-DQN selection) plus one cached forward per
// sample. Kept in-tree as the byte-identity oracle for the batched path.
double DqnCore::train_batch_scalar(std::span<const Transition* const> batch) {
    double loss_acc = 0.0;
    std::vector<double> dout(online_.output_dim(), 0.0);
    ForwardCache cache;
    const double inv_n = 1.0 / static_cast<double>(batch.size());

    for (const Transition* t : batch) {
        double bootstrap = 0.0;
        if (!t->terminal) {
            const auto qn = target_.forward(t->next_state, t->width_next);
            if (config_.double_dqn) {
                // Decouple selection (online net) from evaluation (target).
                const auto q_online = online_.forward(t->next_state, t->width_next);
                const auto a_star = static_cast<std::size_t>(std::distance(
                    q_online.begin(),
                    std::max_element(q_online.begin(), q_online.end())));
                bootstrap = qn[a_star];
            } else {
                bootstrap = *std::max_element(qn.begin(), qn.end());
            }
        }
        const double target_q = t->reward + config_.gamma * bootstrap;

        online_.forward_cached(t->state, t->width_state, cache);
        const auto a = static_cast<std::size_t>(t->action);
        if (a >= cache.output.size()) {
            throw std::out_of_range("DqnCore: action index out of range");
        }
        const auto [value, grad] = huber(cache.output[a] - target_q, config_.huber_delta);
        loss_acc += value;

        std::fill(dout.begin(), dout.end(), 0.0);
        dout[a] = grad * inv_n;
        online_.backward(cache, dout);
    }

    optimizer_.step(online_);
    ++updates_;
    if (config_.target_sync_every > 0 && updates_ % config_.target_sync_every == 0) {
        sync_target();
    }
    return loss_acc * inv_n;
}

// Blocked implementation: the minibatch is partitioned by width (transitions
// carry per-step widths, alternating 0.75x/1.0x under LOTUS) and each
// width-group's forwards run as one Matrix::slice_matmul pass per layer --
// the target-net bootstrap, the double-DQN a* selection and the online
// current-state pass each cost one batched forward instead of one scalar
// forward per transition. Per-sample backwards then walk the ORIGINAL batch
// order, so gradient, mask and loss accumulation are bit-identical to
// train_batch_scalar (enforced by tests/rl/test_batched_forward.cpp).
double DqnCore::train_batch_batched(std::span<const Transition* const> batch) {
    const std::size_t n = batch.size();
    const double inv_n = 1.0 / static_cast<double>(n);
    auto& ts = train_;

    // Bootstrap values: one batched target (and, for double DQN, online
    // selection) pass per distinct width_next over non-terminal transitions.
    ts.bootstrap.assign(n, 0.0);
    ts.widths.clear();
    for (std::size_t i = 0; i < n; ++i) {
        if (batch[i]->terminal) continue;
        const double w = batch[i]->width_next;
        if (std::find(ts.widths.begin(), ts.widths.end(), w) == ts.widths.end()) {
            ts.widths.push_back(w);
        }
    }
    for (const double w : ts.widths) {
        ts.members.clear();
        for (std::size_t i = 0; i < n; ++i) {
            if (!batch[i]->terminal && batch[i]->width_next == w) ts.members.push_back(i);
        }
        const std::size_t m = ts.members.size();
        const std::size_t in0 = target_.active_units(0, w);
        ts.x.resize(m, in0);
        for (std::size_t row = 0; row < m; ++row) {
            const auto& s = batch[ts.members[row]]->next_state;
            if (s.size() < in0) {
                throw std::invalid_argument("DqnCore: next_state too short for width");
            }
            std::copy(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(in0),
                      ts.x.row(row).begin());
        }
        target_.forward_batch(ts.x, m, w, ts.net_cache);
        if (config_.double_dqn) {
            online_.forward_batch(ts.x, m, w, ts.select_cache);
            for (std::size_t row = 0; row < m; ++row) {
                const auto qo = ts.select_cache.output.row(row);
                const auto a_star = static_cast<std::size_t>(
                    std::distance(qo.begin(), std::max_element(qo.begin(), qo.end())));
                ts.bootstrap[ts.members[row]] = ts.net_cache.output(row, a_star);
            }
        } else {
            for (std::size_t row = 0; row < m; ++row) {
                const auto qn = ts.net_cache.output.row(row);
                ts.bootstrap[ts.members[row]] = *std::max_element(qn.begin(), qn.end());
            }
        }
    }

    // Online forwards on the current states, grouped by width_state; each
    // group keeps its own cache so the per-sample backwards below can read
    // activations regardless of grouping order.
    ts.widths.clear();
    ts.group_of.assign(n, 0);
    ts.row_of.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        const double w = batch[i]->width_state;
        const auto it = std::find(ts.widths.begin(), ts.widths.end(), w);
        if (it == ts.widths.end()) {
            ts.group_of[i] = ts.widths.size();
            ts.widths.push_back(w);
        } else {
            ts.group_of[i] = static_cast<std::size_t>(std::distance(ts.widths.begin(), it));
        }
    }
    if (ts.online_caches.size() < ts.widths.size()) {
        ts.online_caches.resize(ts.widths.size());
    }
    for (std::size_t g = 0; g < ts.widths.size(); ++g) {
        const double w = ts.widths[g];
        ts.members.clear();
        for (std::size_t i = 0; i < n; ++i) {
            if (ts.group_of[i] == g) {
                ts.row_of[i] = ts.members.size();
                ts.members.push_back(i);
            }
        }
        const std::size_t m = ts.members.size();
        const std::size_t in0 = online_.active_units(0, w);
        ts.x.resize(m, in0);
        for (std::size_t row = 0; row < m; ++row) {
            const auto& s = batch[ts.members[row]]->state;
            if (s.size() < in0) {
                throw std::invalid_argument("DqnCore: state too short for width");
            }
            std::copy(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(in0),
                      ts.x.row(row).begin());
        }
        online_.forward_batch(ts.x, m, w, ts.online_caches[g]);
    }

    // Loss and per-sample backward in the original batch order (bit-exact
    // accumulation order).
    double loss_acc = 0.0;
    ts.dout.assign(online_.output_dim(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const Transition* t = batch[i];
        const double target_q = t->reward + config_.gamma * ts.bootstrap[i];
        auto& cache = ts.online_caches[ts.group_of[i]];
        const std::size_t row = ts.row_of[i];
        const auto a = static_cast<std::size_t>(t->action);
        if (a >= online_.output_dim()) {
            throw std::out_of_range("DqnCore: action index out of range");
        }
        const auto [value, grad] = huber(cache.output(row, a) - target_q,
                                         config_.huber_delta);
        loss_acc += value;

        std::fill(ts.dout.begin(), ts.dout.end(), 0.0);
        ts.dout[a] = grad * inv_n;
        online_.backward_row(cache, row, ts.dout, ts.backward);
    }

    optimizer_.step(online_);
    ++updates_;
    if (config_.target_sync_every > 0 && updates_ % config_.target_sync_every == 0) {
        sync_target();
    }
    return loss_acc * inv_n;
}

void DqnCore::sync_target() {
    target_.copy_parameters_from(online_);
}

} // namespace lotus::rl
