#include "rl/dqn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lotus::rl {

namespace {

/// Huber loss value and derivative at residual r = prediction - target.
struct Huber {
    double value;
    double grad;
};

Huber huber(double residual, double delta) noexcept {
    const double a = std::abs(residual);
    if (a <= delta) {
        return {0.5 * residual * residual, residual};
    }
    return {delta * (a - 0.5 * delta), residual > 0 ? delta : -delta};
}

} // namespace

DqnCore::DqnCore(MlpConfig net_config, DqnConfig config)
    : config_(config),
      online_(net_config),
      target_(std::move(net_config)),
      optimizer_(online_, config.adam) {
    target_.copy_parameters_from(online_);
}

int DqnCore::greedy_action(std::span<const double> state, double width) const {
    const auto q = online_.forward(state, width);
    const auto it = std::max_element(q.begin(), q.end());
    return static_cast<int>(std::distance(q.begin(), it));
}

int DqnCore::act(std::span<const double> state, double width, double epsilon,
                 util::Rng& rng) const {
    if (rng.bernoulli(epsilon)) {
        return static_cast<int>(
            rng.uniform_int(0, static_cast<std::int64_t>(online_.output_dim()) - 1));
    }
    return greedy_action(state, width);
}

std::vector<double> DqnCore::q_values(std::span<const double> state, double width) const {
    return online_.forward(state, width);
}

double DqnCore::train_step(const ReplayBuffer& buffer, util::Rng& rng,
                           std::size_t min_buffer) {
    if (buffer.size() < std::max<std::size_t>(min_buffer, 1)) return -1.0;
    const auto batch = buffer.sample(rng, config_.batch_size);
    return train_batch(batch);
}

double DqnCore::train_batch(std::span<const Transition* const> batch) {
    if (batch.empty()) return -1.0;

    double loss_acc = 0.0;
    std::vector<double> dout(online_.output_dim(), 0.0);
    ForwardCache cache;
    const double inv_n = 1.0 / static_cast<double>(batch.size());

    for (const Transition* t : batch) {
        double bootstrap = 0.0;
        if (!t->terminal) {
            const auto qn = target_.forward(t->next_state, t->width_next);
            if (config_.double_dqn) {
                // Decouple selection (online net) from evaluation (target).
                const auto q_online = online_.forward(t->next_state, t->width_next);
                const auto a_star = static_cast<std::size_t>(std::distance(
                    q_online.begin(),
                    std::max_element(q_online.begin(), q_online.end())));
                bootstrap = qn[a_star];
            } else {
                bootstrap = *std::max_element(qn.begin(), qn.end());
            }
        }
        const double target_q = t->reward + config_.gamma * bootstrap;

        online_.forward_cached(t->state, t->width_state, cache);
        const auto a = static_cast<std::size_t>(t->action);
        if (a >= cache.output.size()) {
            throw std::out_of_range("DqnCore: action index out of range");
        }
        const auto [value, grad] = huber(cache.output[a] - target_q, config_.huber_delta);
        loss_acc += value;

        std::fill(dout.begin(), dout.end(), 0.0);
        dout[a] = grad * inv_n;
        online_.backward(cache, dout);
    }

    optimizer_.step(online_);
    ++updates_;
    if (config_.target_sync_every > 0 && updates_ % config_.target_sync_every == 0) {
        sync_target();
    }
    return loss_acc * inv_n;
}

void DqnCore::sync_target() {
    target_.copy_parameters_from(online_);
}

} // namespace lotus::rl
