#include "rl/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace lotus::rl {

LinearDecay::LinearDecay(double start, double end, std::size_t steps)
    : start_(start), end_(end), steps_(steps) {
    if (start < end) throw std::invalid_argument("LinearDecay: start < end");
    if (steps == 0) throw std::invalid_argument("LinearDecay: zero steps");
}

double LinearDecay::at(std::size_t step) const noexcept {
    const double frac = std::min(1.0, static_cast<double>(step) / static_cast<double>(steps_));
    return start_ - (start_ - end_) * frac;
}

ExponentialDecay::ExponentialDecay(double start, double end, double rate)
    : start_(start), end_(end), rate_(rate) {
    if (start < end) throw std::invalid_argument("ExponentialDecay: start < end");
    if (rate <= 0.0 || rate >= 1.0) throw std::invalid_argument("ExponentialDecay: rate out of (0,1)");
}

double ExponentialDecay::at(std::size_t step) const noexcept {
    return end_ + (start_ - end_) * std::pow(rate_, static_cast<double>(step));
}

SinusoidalTriggerDecay::SinusoidalTriggerDecay(double eps0, double floor,
                                               std::size_t total_triggers)
    : eps0_(eps0), floor_(floor), total_(total_triggers) {
    if (eps0 < 0.0 || eps0 > 1.0) throw std::invalid_argument("eps0 out of [0,1]");
    if (floor < 0.0 || floor > eps0) throw std::invalid_argument("floor out of [0,eps0]");
    if (total_triggers == 0) throw std::invalid_argument("total_triggers must be > 0");
}

double SinusoidalTriggerDecay::value() const noexcept {
    const double k = static_cast<double>(std::min(triggers_, total_));
    const double frac = k / static_cast<double>(total_);
    return floor_ + (eps0_ - floor_) * std::cos(std::numbers::pi / 2.0 * frac);
}

void SinusoidalTriggerDecay::trigger() noexcept {
    if (triggers_ < total_) ++triggers_;
}

} // namespace lotus::rl
