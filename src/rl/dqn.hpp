#pragma once
// Generic Deep Q-Network core (Mnih et al. 2015) over a slimmable network.
//
// Shared by the zTT baseline (single width, one replay buffer) and the LOTUS
// agent (two widths, two replay buffers). The core provides epsilon-greedy
// acting at a given width and batched TD(0) updates with a periodically
// synchronised target network; transitions carry the widths to use for the
// online evaluation and the bootstrap, implementing the paper's cross-width
// targets (even step bootstraps at 1.0x, odd step at 0.75x).

#include <cstddef>
#include <span>
#include <vector>

#include "rl/mlp.hpp"
#include "rl/optimizer.hpp"
#include "rl/replay.hpp"
#include "util/rng.hpp"

namespace lotus::rl {

struct DqnConfig {
    double gamma = 0.9;
    std::size_t batch_size = 32;
    /// Hard-sync the target network every this many optimizer steps.
    std::size_t target_sync_every = 100;
    /// Huber (smooth-L1) transition point.
    double huber_delta = 1.0;
    /// Double DQN (van Hasselt et al. 2016): the online network selects the
    /// bootstrap action, the target network evaluates it. Off by default --
    /// the paper uses the vanilla DQN of Mnih et al. 2015 -- but exposed as
    /// an extension (see bench_ablation_design).
    bool double_dqn = false;
    AdamConfig adam;
};

class DqnCore {
public:
    DqnCore(MlpConfig net_config, DqnConfig config);

    /// Greedy action at the given width: argmax_a Q(s, a).
    [[nodiscard]] int greedy_action(std::span<const double> state, double width) const;

    /// Epsilon-greedy action.
    [[nodiscard]] int act(std::span<const double> state, double width, double epsilon,
                          util::Rng& rng) const;

    /// Q-values of the online network (full action dimension).
    [[nodiscard]] std::vector<double> q_values(std::span<const double> state,
                                               double width) const;

    /// One batched TD update from the given buffer. Returns the mean Huber
    /// loss, or a negative value when the buffer held fewer than
    /// `min_buffer` transitions (no update performed).
    double train_step(const ReplayBuffer& buffer, util::Rng& rng,
                      std::size_t min_buffer = 1);

    /// TD update over an explicit batch (used by LOTUS to alternate buffers).
    double train_batch(std::span<const Transition* const> batch);

    void sync_target();

    [[nodiscard]] const SlimmableMlp& online() const noexcept { return online_; }
    [[nodiscard]] SlimmableMlp& online() noexcept { return online_; }
    [[nodiscard]] const SlimmableMlp& target() const noexcept { return target_; }
    [[nodiscard]] std::size_t updates() const noexcept { return updates_; }
    [[nodiscard]] const DqnConfig& config() const noexcept { return config_; }

private:
    DqnConfig config_;
    SlimmableMlp online_;
    SlimmableMlp target_;
    Adam optimizer_;
    std::size_t updates_ = 0;
};

} // namespace lotus::rl
