#pragma once
// Generic Deep Q-Network core (Mnih et al. 2015) over a slimmable network.
//
// Shared by the zTT baseline (single width, one replay buffer) and the LOTUS
// agent (two widths, two replay buffers). The core provides epsilon-greedy
// acting at a given width and batched TD(0) updates with a periodically
// synchronised target network; transitions carry the widths to use for the
// online evaluation and the bootstrap, implementing the paper's cross-width
// targets (even step bootstraps at 1.0x, odd step at 0.75x).

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "rl/mlp.hpp"
#include "rl/optimizer.hpp"
#include "rl/replay.hpp"
#include "util/rng.hpp"

namespace lotus::rl {

/// Which train_batch implementation a DqnCore uses. Both are bit-identical
/// (enforced by tests/rl/test_batched_forward.cpp): `batched` runs the
/// target-net / double-DQN / online forwards as width-grouped blocked
/// matrix-matrix passes; `scalar` is the per-sample reference kept in-tree
/// for byte-identity tests and perf A/B (mirroring the thermal stepper's
/// euler_slice reference).
enum class DqnMath { batched, scalar };

/// Process-wide override of DqnConfig::math, applied at DqnCore
/// construction (lets benches A/B whole scenarios without plumbing a flag
/// through every governor factory). Not thread-safe against concurrently
/// constructing cores -- set it while episodes are quiescent. std::nullopt
/// restores per-config behaviour.
void force_dqn_math(std::optional<DqnMath> mode) noexcept;
[[nodiscard]] std::optional<DqnMath> forced_dqn_math() noexcept;

struct DqnConfig {
    double gamma = 0.9;
    std::size_t batch_size = 32;
    /// Hard-sync the target network every this many optimizer steps.
    std::size_t target_sync_every = 100;
    /// Huber (smooth-L1) transition point.
    double huber_delta = 1.0;
    /// Double DQN (van Hasselt et al. 2016): the online network selects the
    /// bootstrap action, the target network evaluates it. Off by default --
    /// the paper uses the vanilla DQN of Mnih et al. 2015 -- but exposed as
    /// an extension (see bench_ablation_design).
    bool double_dqn = false;
    /// train_batch implementation (see DqnMath; bit-identical either way).
    DqnMath math = DqnMath::batched;
    AdamConfig adam;
};

class DqnCore {
public:
    DqnCore(MlpConfig net_config, DqnConfig config);

    /// Greedy action at the given width: argmax_a Q(s, a).
    [[nodiscard]] int greedy_action(std::span<const double> state, double width) const;

    /// Epsilon-greedy action.
    [[nodiscard]] int act(std::span<const double> state, double width, double epsilon,
                          util::Rng& rng) const;

    /// Q-values of the online network (full action dimension).
    [[nodiscard]] std::vector<double> q_values(std::span<const double> state,
                                               double width) const;

    /// Allocation-free Q-values: writes into `out` (size = output_dim).
    void q_values(std::span<const double> state, double width,
                  std::span<double> out) const;

    /// One batched TD update from the given buffer. Returns the mean Huber
    /// loss, or a negative value when the buffer held fewer than
    /// `min_buffer` transitions (no update performed).
    double train_step(const ReplayBuffer& buffer, util::Rng& rng,
                      std::size_t min_buffer = 1);

    /// TD update over an explicit batch (used by LOTUS to alternate buffers).
    double train_batch(std::span<const Transition* const> batch);

    void sync_target();

    [[nodiscard]] const SlimmableMlp& online() const noexcept { return online_; }
    [[nodiscard]] SlimmableMlp& online() noexcept { return online_; }
    [[nodiscard]] const SlimmableMlp& target() const noexcept { return target_; }
    [[nodiscard]] std::size_t updates() const noexcept { return updates_; }
    [[nodiscard]] const DqnConfig& config() const noexcept { return config_; }

private:
    double train_batch_scalar(std::span<const Transition* const> batch);
    double train_batch_batched(std::span<const Transition* const> batch);

    DqnConfig config_;
    SlimmableMlp online_;
    SlimmableMlp target_;
    Adam optimizer_;
    std::size_t updates_ = 0;

    // Scratch reused across calls to keep the hot path allocation-free once
    // warm. A DqnCore is owned by one governor and each harness episode owns
    // its governor (thread-per-episode, never shared), so mutable scratch
    // behind the const acting API is safe.
    mutable MlpScratch act_scratch_;
    mutable std::vector<double> act_q_;
    struct TrainScratch {
        Matrix x;                           ///< packed states of one width group
        BatchCache net_cache;               ///< target / double-DQN bootstrap pass
        BatchCache select_cache;            ///< online a*-selection pass (double DQN)
        std::vector<BatchCache> online_caches; ///< one per distinct width_state
        std::vector<double> bootstrap;      ///< per batch index
        std::vector<double> widths;         ///< distinct widths, first-seen order
        std::vector<std::size_t> members;   ///< member indices of current group
        std::vector<std::size_t> group_of;  ///< batch index -> width-group index
        std::vector<std::size_t> row_of;    ///< batch index -> row within its group
        std::vector<double> dout;
        MlpScratch backward;
    };
    TrainScratch train_;
};

} // namespace lotus::rl
