#pragma once
// Exploration schedules.
//
// * LinearDecay / ExponentialDecay: conventional epsilon-greedy schedules
//   (used for the main exploration of both zTT and LOTUS).
// * SinusoidalTriggerDecay: the paper's epsilon_t-greedy cool-down
//   (Sec. 4.3.5). epsilon_t starts in [0, 1] and decays sinusoidally *per
//   cool-down trigger*, so the agent is forced into random lower frequencies
//   when overheated early in training but gradually takes over hot-state
//   action selection as it accumulates experience.

#include <cstddef>

namespace lotus::rl {

/// epsilon(t) = max(end, start - (start - end) * t / steps).
class LinearDecay {
public:
    LinearDecay(double start, double end, std::size_t steps);

    [[nodiscard]] double at(std::size_t step) const noexcept;

private:
    double start_;
    double end_;
    std::size_t steps_;
};

/// epsilon(t) = end + (start - end) * rate^t.
class ExponentialDecay {
public:
    ExponentialDecay(double start, double end, double rate);

    [[nodiscard]] double at(std::size_t step) const noexcept;

private:
    double start_;
    double end_;
    double rate_;
};

/// epsilon_t = floor + (eps0 - floor) * cos(pi/2 * min(k, K) / K), where k is
/// the number of cool-down triggers so far. value() reads the current
/// probability; trigger() advances k (call it each time the cool-down fires).
class SinusoidalTriggerDecay {
public:
    SinusoidalTriggerDecay(double eps0, double floor, std::size_t total_triggers);

    [[nodiscard]] double value() const noexcept;
    void trigger() noexcept;
    void reset() noexcept { triggers_ = 0; }

    [[nodiscard]] std::size_t triggers() const noexcept { return triggers_; }

private:
    double eps0_;
    double floor_;
    std::size_t total_;
    std::size_t triggers_ = 0;
};

} // namespace lotus::rl
