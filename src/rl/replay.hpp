#pragma once
// Experience replay buffer (Mnih et al. 2015), used once by zTT and twice by
// LOTUS (Sec. 4.3.4 keeps two separate buffers: one for the even-step
// transitions <s_2i, a_2i, r_2i, s_2i+1>, one for the odd-step transitions
// <s_2i+1, a_2i+1, r_2i+1, s_2i+2>).

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace lotus::rl {

/// One DQN transition. States are stored padded to the full network input
/// dimension; `width_state` / `width_next` record which slimmable width
/// evaluates Q(s, .) and the bootstrap max_a Q(s', .) respectively (for a
/// single-width agent both are 1.0).
struct Transition {
    std::vector<double> state;
    int action = 0;
    double reward = 0.0;
    std::vector<double> next_state;
    bool terminal = false;
    double width_state = 1.0;
    double width_next = 1.0;
};

/// Fixed-capacity uniform-sampling ring buffer.
class ReplayBuffer {
public:
    explicit ReplayBuffer(std::size_t capacity);

    void push(Transition t);

    /// Sample `k` transitions uniformly without replacement (k is clamped to
    /// size()). Returned pointers remain valid until the next push().
    [[nodiscard]] std::vector<const Transition*> sample(util::Rng& rng, std::size_t k) const;

    [[nodiscard]] std::size_t size() const noexcept { return store_.size(); }
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] bool empty() const noexcept { return store_.empty(); }
    [[nodiscard]] std::size_t total_pushed() const noexcept { return pushed_; }

    [[nodiscard]] const Transition& operator[](std::size_t i) const { return store_[i]; }

    void clear() noexcept;

private:
    std::size_t capacity_;
    std::size_t head_ = 0;
    std::size_t pushed_ = 0;
    std::vector<Transition> store_;
};

} // namespace lotus::rl
