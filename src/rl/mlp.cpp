#include "rl/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lotus::rl {

SlimmableMlp::SlimmableMlp(MlpConfig config) : config_(std::move(config)) {
    if (config_.dims.size() < 2) {
        throw std::invalid_argument("SlimmableMlp: need at least input and output dims");
    }
    for (const auto d : config_.dims) {
        if (d == 0) throw std::invalid_argument("SlimmableMlp: zero-sized layer");
    }
    util::Rng rng(config_.seed);
    layers_.reserve(config_.dims.size() - 1);
    for (std::size_t l = 0; l + 1 < config_.dims.size(); ++l) {
        layers_.emplace_back(config_.dims[l], config_.dims[l + 1], rng);
    }
}

std::size_t SlimmableMlp::active_units(std::size_t boundary, double width) const {
    if (boundary >= config_.dims.size()) {
        throw std::out_of_range("SlimmableMlp::active_units");
    }
    if (width <= 0.0 || width > 1.0) {
        throw std::invalid_argument("SlimmableMlp: width must be in (0, 1]");
    }
    const std::size_t full = config_.dims[boundary];
    const bool is_input = boundary == 0;
    const bool is_output = boundary + 1 == config_.dims.size();
    if ((is_input && !config_.slim_input) || (is_output && !config_.slim_output)) {
        return full;
    }
    const auto active = static_cast<std::size_t>(
        std::ceil(width * static_cast<double>(full)));
    return std::clamp<std::size_t>(active, 1, full);
}

std::vector<double> SlimmableMlp::forward(std::span<const double> x, double width) const {
    std::vector<double> out(output_dim(), 0.0);
    MlpScratch scratch;
    forward(x, width, out, scratch);
    return out;
}

void SlimmableMlp::forward(std::span<const double> x, double width,
                           std::span<double> out, MlpScratch& scratch) const {
    const std::size_t in0 = active_units(0, width);
    if (x.size() < in0) {
        throw std::invalid_argument("SlimmableMlp: input too short for active width");
    }
    if (out.size() != output_dim()) {
        throw std::invalid_argument("SlimmableMlp::forward: output size mismatch");
    }
    scratch.a.assign(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(in0));
    auto* cur = &scratch.a;
    auto* next = &scratch.b;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const std::size_t in_active = active_units(l, width);
        const std::size_t out_active = active_units(l + 1, width);
        next->assign(out_active, 0.0);
        layers_[l].forward(*cur, *next, in_active, out_active);
        if (l + 1 < layers_.size()) {
            relu_inplace(*next, out_active);
        }
        std::swap(cur, next);
    }
    std::fill(out.begin(), out.end(), 0.0);
    std::copy(cur->begin(), cur->end(), out.begin());
}

void SlimmableMlp::forward_batch(const Matrix& x, std::size_t batch, double width,
                                 BatchCache& cache) const {
    const std::size_t in0 = active_units(0, width);
    if (x.cols() < in0 || x.rows() < batch || batch == 0) {
        throw std::invalid_argument("SlimmableMlp::forward_batch: bad input shape");
    }
    cache.width = width;
    cache.batch = batch;
    cache.inputs.resize(layers_.size());
    cache.pre.resize(layers_.size());

    cache.inputs[0].resize(batch, in0);
    for (std::size_t k = 0; k < batch; ++k) {
        const auto src = x.row(k);
        std::copy(src.begin(), src.begin() + static_cast<std::ptrdiff_t>(in0),
                  cache.inputs[0].row(k).begin());
    }
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const std::size_t in_active = active_units(l, width);
        const std::size_t out_active = active_units(l + 1, width);
        cache.pre[l].resize(batch, out_active);
        layers_[l].forward_batch(cache.inputs[l], cache.pre[l], in_active, out_active,
                                 batch);
        if (l + 1 < layers_.size()) {
            auto& next_in = cache.inputs[l + 1];
            next_in.resize(batch, out_active);
            auto src = cache.pre[l].flat();
            auto dst = next_in.flat();
            std::copy(src.begin(), src.end(), dst.begin());
            relu_inplace(dst, dst.size());
        }
    }

    // Expand to the full output dimension per row; at full (or non-slim)
    // output width this is the identity.
    const std::size_t out_last = active_units(layers_.size(), width);
    cache.output.resize(batch, output_dim(), 0.0);
    for (std::size_t k = 0; k < batch; ++k) {
        const auto src = cache.pre.back().row(k);
        std::copy(src.begin(), src.begin() + static_cast<std::ptrdiff_t>(out_last),
                  cache.output.row(k).begin());
    }
}

void SlimmableMlp::forward_cached(std::span<const double> x, double width,
                                  ForwardCache& cache) const {
    const std::size_t in0 = active_units(0, width);
    if (x.size() < in0) {
        throw std::invalid_argument("SlimmableMlp: input too short for active width");
    }
    cache.width = width;
    cache.inputs.assign(layers_.size(), {});
    cache.pre.assign(layers_.size(), {});

    std::vector<double> cur(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(in0));
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const std::size_t in_active = active_units(l, width);
        const std::size_t out_active = active_units(l + 1, width);
        cache.inputs[l] = cur;
        std::vector<double> next(out_active, 0.0);
        layers_[l].forward(cur, next, in_active, out_active);
        cache.pre[l] = next;
        if (l + 1 < layers_.size()) {
            relu_inplace(next, out_active);
        }
        cur = std::move(next);
    }

    // Expand to the full output dimension; at full (or non-slim) output width
    // this is the identity.
    cache.output.assign(output_dim(), 0.0);
    std::copy(cur.begin(), cur.end(), cache.output.begin());
}

void SlimmableMlp::backward(const ForwardCache& cache, std::span<const double> dout) {
    if (dout.size() != output_dim()) {
        throw std::invalid_argument("SlimmableMlp::backward: dout size mismatch");
    }
    const double width = cache.width;
    const std::size_t last = layers_.size() - 1;

    std::vector<double> dy(dout.begin(),
                           dout.begin() + static_cast<std::ptrdiff_t>(
                               active_units(last + 1, width)));
    for (std::size_t li = layers_.size(); li-- > 0;) {
        const std::size_t in_active = active_units(li, width);
        const std::size_t out_active = active_units(li + 1, width);
        if (li != last) {
            relu_backward(cache.pre[li], dy, out_active);
        }
        std::vector<double> dx(in_active, 0.0);
        layers_[li].backward(cache.inputs[li], dy, dx, in_active, out_active);
        dy = std::move(dx);
    }
}

void SlimmableMlp::backward_row(const BatchCache& cache, std::size_t row,
                                std::span<const double> dout, MlpScratch& scratch) {
    if (dout.size() != output_dim()) {
        throw std::invalid_argument("SlimmableMlp::backward_row: dout size mismatch");
    }
    if (row >= cache.batch) {
        throw std::out_of_range("SlimmableMlp::backward_row: row out of range");
    }
    const double width = cache.width;
    const std::size_t last = layers_.size() - 1;

    scratch.a.assign(dout.begin(), dout.begin() + static_cast<std::ptrdiff_t>(
                                       active_units(last + 1, width)));
    auto* dy = &scratch.a;
    auto* dx = &scratch.b;
    for (std::size_t li = layers_.size(); li-- > 0;) {
        const std::size_t in_active = active_units(li, width);
        const std::size_t out_active = active_units(li + 1, width);
        if (li != last) {
            relu_backward(cache.pre[li].row(row), *dy, out_active);
        }
        dx->assign(in_active, 0.0);
        layers_[li].backward(cache.inputs[li].row(row), *dy, *dx, in_active, out_active);
        std::swap(dy, dx);
    }
}

void SlimmableMlp::zero_grad() noexcept {
    for (auto& layer : layers_) layer.zero_grad();
}

std::size_t SlimmableMlp::parameter_count() const noexcept {
    std::size_t n = 0;
    for (const auto& layer : layers_) {
        n += layer.weights().size() + layer.bias().size();
    }
    return n;
}

void SlimmableMlp::copy_parameters_from(const SlimmableMlp& src) {
    if (src.layers_.size() != layers_.size()) {
        throw std::invalid_argument("copy_parameters_from: topology mismatch");
    }
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        auto& dst_layer = layers_[l];
        const auto& src_layer = src.layers_[l];
        if (dst_layer.weights().size() != src_layer.weights().size()) {
            throw std::invalid_argument("copy_parameters_from: layer shape mismatch");
        }
        std::copy(src_layer.weights().flat().begin(), src_layer.weights().flat().end(),
                  dst_layer.weights().flat().begin());
        std::copy(src_layer.bias().begin(), src_layer.bias().end(),
                  dst_layer.bias().begin());
    }
}

} // namespace lotus::rl
