#pragma once
// Q-network checkpointing: train once (the paper's 10,000-iteration budget),
// deploy many times. The format is a small line-oriented text file:
//
//   lotus-mlp v1
//   dims <n> d0 d1 ... dn-1
//   slim_input <0|1>
//   slim_output <0|1>
//   layer <index>
//   w <out*in doubles, row-major, max-precision>
//   b <out doubles>
//   ...
//
// Text keeps checkpoints diffable and platform-independent; the networks are
// a few thousand parameters, so file size is irrelevant.

#include <iosfwd>
#include <string>

#include "rl/mlp.hpp"

namespace lotus::rl {

/// Write the network (topology + parameters) to a stream/file.
void save_mlp(const SlimmableMlp& net, std::ostream& out);
void save_mlp(const SlimmableMlp& net, const std::string& path);

/// Load a network saved by save_mlp. The returned network reproduces the
/// saved forward function exactly (bit-identical doubles).
[[nodiscard]] SlimmableMlp load_mlp(std::istream& in);
[[nodiscard]] SlimmableMlp load_mlp(const std::string& path);

/// Load parameters into an existing network; throws on topology mismatch.
void load_mlp_into(SlimmableMlp& net, std::istream& in);

} // namespace lotus::rl
