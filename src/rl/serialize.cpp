#include "rl/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace lotus::rl {

namespace {

constexpr const char* kMagic = "lotus-mlp v1";

void expect_token(std::istream& in, const std::string& expected) {
    std::string token;
    if (!(in >> token) || token != expected) {
        throw std::runtime_error("load_mlp: expected token '" + expected + "', got '" +
                                 token + "'");
    }
}

MlpConfig read_header(std::istream& in) {
    std::string line;
    std::getline(in, line);
    if (line != kMagic) {
        throw std::runtime_error("load_mlp: bad magic line '" + line + "'");
    }
    MlpConfig cfg;
    expect_token(in, "dims");
    std::size_t n = 0;
    if (!(in >> n) || n < 2 || n > 64) throw std::runtime_error("load_mlp: bad dims count");
    cfg.dims.resize(n);
    for (auto& d : cfg.dims) {
        if (!(in >> d) || d == 0) throw std::runtime_error("load_mlp: bad dim");
    }
    int flag = 0;
    expect_token(in, "slim_input");
    if (!(in >> flag)) throw std::runtime_error("load_mlp: bad slim_input");
    cfg.slim_input = flag != 0;
    expect_token(in, "slim_output");
    if (!(in >> flag)) throw std::runtime_error("load_mlp: bad slim_output");
    cfg.slim_output = flag != 0;
    return cfg;
}

} // namespace

void save_mlp(const SlimmableMlp& net, std::ostream& out) {
    const auto& cfg = net.config();
    out << kMagic << '\n';
    out << "dims " << cfg.dims.size();
    for (const auto d : cfg.dims) out << ' ' << d;
    out << '\n';
    out << "slim_input " << (cfg.slim_input ? 1 : 0) << '\n';
    out << "slim_output " << (cfg.slim_output ? 1 : 0) << '\n';

    out << std::setprecision(17);
    for (std::size_t li = 0; li < net.layers().size(); ++li) {
        const auto& layer = net.layers()[li];
        out << "layer " << li << '\n';
        out << "w";
        for (const double v : layer.weights().flat()) out << ' ' << v;
        out << '\n';
        out << "b";
        for (const double v : layer.bias()) out << ' ' << v;
        out << '\n';
    }
    if (!out) throw std::runtime_error("save_mlp: stream write failed");
}

void save_mlp(const SlimmableMlp& net, const std::string& path) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("save_mlp: cannot open " + path);
    save_mlp(net, out);
}

void load_mlp_into(SlimmableMlp& net, std::istream& in) {
    const auto cfg = read_header(in);
    if (cfg.dims != net.config().dims || cfg.slim_input != net.config().slim_input ||
        cfg.slim_output != net.config().slim_output) {
        throw std::runtime_error("load_mlp_into: topology mismatch");
    }
    for (std::size_t li = 0; li < net.layers().size(); ++li) {
        expect_token(in, "layer");
        std::size_t index = 0;
        if (!(in >> index) || index != li) {
            throw std::runtime_error("load_mlp: layer index mismatch");
        }
        auto& layer = net.layers()[li];
        expect_token(in, "w");
        for (auto& v : layer.weights().flat()) {
            if (!(in >> v)) throw std::runtime_error("load_mlp: truncated weights");
        }
        expect_token(in, "b");
        for (auto& v : layer.bias()) {
            if (!(in >> v)) throw std::runtime_error("load_mlp: truncated bias");
        }
    }
}

SlimmableMlp load_mlp(std::istream& in) {
    // Peek the header to build the topology, then rewind and fill.
    const auto pos = in.tellg();
    const auto cfg = read_header(in);
    in.seekg(pos);
    SlimmableMlp net(cfg);
    load_mlp_into(net, in);
    return net;
}

SlimmableMlp load_mlp(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("load_mlp: cannot open " + path);
    return load_mlp(in);
}

} // namespace lotus::rl
