#pragma once
// Dense row-major matrix used by the neural-network substrate.
//
// The Q-networks in this reproduction are small MLPs (thousands of weights),
// so a straightforward double-precision implementation is both fast enough
// (micro-benchmarked in bench_overhead) and makes the finite-difference
// gradient tests in tests/rl exact to ~1e-7.

#include <cstddef>
#include <span>
#include <vector>

namespace lotus::rl {

class Matrix {
public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
    [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

    [[nodiscard]] double& at(std::size_t r, std::size_t c);
    [[nodiscard]] double at(std::size_t r, std::size_t c) const;

    /// Unchecked element access (hot paths).
    [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
        return data_[r * cols_ + c];
    }
    [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
        return data_[r * cols_ + c];
    }

    [[nodiscard]] std::span<double> flat() noexcept { return data_; }
    [[nodiscard]] std::span<const double> flat() const noexcept { return data_; }

    [[nodiscard]] std::span<double> row(std::size_t r) noexcept;
    [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept;

    void fill(double v) noexcept;

    /// Reshape in place to rows x cols, filling every element; reuses the
    /// underlying capacity (hot-path scratch matrices reallocate only to
    /// grow). Throws like the constructor on a zero dimension.
    void resize(std::size_t rows, std::size_t cols, double fill = 0.0);

    /// y = A[0:out, 0:in] * x[0:in] + b[0:out]; the slicing is what makes the
    /// layer "slimmable" (only the leading sub-matrix participates).
    static void slice_matvec(const Matrix& a, std::span<const double> x,
                             std::span<const double> b, std::span<double> y,
                             std::size_t out, std::size_t in) noexcept;

    /// Y[k, 0:out] = A[0:out, 0:in] * X[k, 0:in] + b[0:out] for every row
    /// k < batch. Register-blocked over (batch rows x output rows) with
    /// contiguous-row accesses, but every output element's reduction runs
    /// over c in ascending order starting from b[r] -- each result is
    /// bit-identical to `batch` separate slice_matvec calls. X and Y may
    /// have more columns than in/out; only the leading slices are touched.
    static void slice_matmul(const Matrix& a, const Matrix& x, std::span<const double> b,
                             Matrix& y, std::size_t out, std::size_t in,
                             std::size_t batch) noexcept;

    /// x_grad[0:in] = A[0:out, 0:in]^T * y_grad[0:out].
    static void slice_matvec_transposed(const Matrix& a, std::span<const double> y_grad,
                                        std::span<double> x_grad,
                                        std::size_t out, std::size_t in) noexcept;

    /// grad[0:out, 0:in] += y_grad[0:out] (outer) x[0:in].
    static void slice_outer_accumulate(Matrix& grad, std::span<const double> y_grad,
                                       std::span<const double> x,
                                       std::size_t out, std::size_t in) noexcept;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

} // namespace lotus::rl
