#include "rl/replay.hpp"

#include <stdexcept>

namespace lotus::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
    if (capacity_ == 0) throw std::invalid_argument("ReplayBuffer: zero capacity");
    store_.reserve(capacity_);
}

void ReplayBuffer::push(Transition t) {
    if (store_.size() < capacity_) {
        store_.push_back(std::move(t));
    } else {
        store_[head_] = std::move(t);
        head_ = (head_ + 1) % capacity_;
    }
    ++pushed_;
}

std::vector<const Transition*> ReplayBuffer::sample(util::Rng& rng, std::size_t k) const {
    if (store_.empty()) return {};
    k = std::min(k, store_.size());
    const auto idx = rng.sample_indices(store_.size(), k);
    std::vector<const Transition*> out;
    out.reserve(k);
    for (const auto i : idx) out.push_back(&store_[i]);
    return out;
}

void ReplayBuffer::clear() noexcept {
    store_.clear();
    head_ = 0;
}

} // namespace lotus::rl
