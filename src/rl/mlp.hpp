#pragma once
// Slimmable multi-layer perceptron: the Q-network of Sec. 4.3.4.
//
// The paper's Q-network is a 4-layer MLP executable at widths [0.75x, 1.0x].
// Width w activates ceil(w * n) units in each slimmable layer; the output
// layer always stays at full width so that every action in the M x N joint
// frequency space has a Q-value at both widths. The input layer is sliced
// too: with the paper's 7-feature post-RPN state, ceil(0.75 * 7) = 6 inputs,
// which drops exactly the proposal-count feature that is unavailable at the
// frame-start decision.

#include <cstddef>
#include <span>
#include <vector>

#include "rl/layers.hpp"
#include "util/rng.hpp"

namespace lotus::rl {

struct MlpConfig {
    /// Layer sizes including input and output, e.g. {7, 128, 128, 128, 48}.
    std::vector<std::size_t> dims;
    /// Slice the input layer with the width multiplier (LOTUS: true).
    bool slim_input = true;
    /// Slice the output layer (LOTUS: false -- all actions always scored).
    bool slim_output = false;
    std::uint64_t seed = 1;
};

/// Activations captured during forward_cached, needed for backward.
struct ForwardCache {
    double width = 1.0;
    /// inputs[l] is the input vector fed to layer l (active prefix valid).
    std::vector<std::vector<double>> inputs;
    /// pre[l] is layer l's pre-activation output (active prefix valid).
    std::vector<std::vector<double>> pre;
    /// Final output (full output dimension).
    std::vector<double> output;
};

/// Two reusable ping-pong buffers for the allocation-free forward() and
/// backward_row() overloads; reallocation stops once warm.
struct MlpScratch {
    std::vector<double> a;
    std::vector<double> b;
};

/// Activations for a whole minibatch (row k = sample k), captured by
/// forward_batch for per-row backward_row() calls. Matrices are resized in
/// place, so a reused cache is allocation-free once warm.
struct BatchCache {
    double width = 1.0;
    std::size_t batch = 0;
    /// inputs[l]: batch x active_units(l) inputs fed to layer l.
    std::vector<Matrix> inputs;
    /// pre[l]: batch x active_units(l+1) pre-activation outputs of layer l.
    std::vector<Matrix> pre;
    /// batch x output_dim final outputs (expanded like ForwardCache::output).
    Matrix output;
};

class SlimmableMlp {
public:
    explicit SlimmableMlp(MlpConfig config);

    [[nodiscard]] std::size_t input_dim() const noexcept { return config_.dims.front(); }
    [[nodiscard]] std::size_t output_dim() const noexcept { return config_.dims.back(); }
    [[nodiscard]] std::size_t num_layers() const noexcept { return layers_.size(); }
    [[nodiscard]] const MlpConfig& config() const noexcept { return config_; }

    /// Number of active units of the given layer boundary (0 = network
    /// input, i = output of layer i-1) when run at `width`.
    [[nodiscard]] std::size_t active_units(std::size_t boundary, double width) const;

    /// Inference-only forward at the given width. `x` must supply at least
    /// active_units(0, width) elements; the full input vector may be passed
    /// (extra features are simply not read at reduced width).
    [[nodiscard]] std::vector<double> forward(std::span<const double> x, double width) const;

    /// Allocation-free forward: writes the full-output-dim result into `out`
    /// (size output_dim) using caller-owned scratch. Bit-identical to the
    /// vector-returning overload.
    void forward(std::span<const double> x, double width, std::span<double> out,
                 MlpScratch& scratch) const;

    /// Forward pass that records activations for a subsequent backward().
    void forward_cached(std::span<const double> x, double width, ForwardCache& cache) const;

    /// Batched forward over the leading `batch` rows of X (each row one
    /// sample; X must have at least active_units(0, width) columns). Records
    /// per-layer activations for backward_row(); every row of cache.output
    /// is bit-identical to forward() on that sample.
    void forward_batch(const Matrix& x, std::size_t batch, double width,
                       BatchCache& cache) const;

    /// Accumulate parameter gradients for dL/d(output) = `dout` (full output
    /// dimension; entries for actions you do not want to train must be 0).
    void backward(const ForwardCache& cache, std::span<const double> dout);

    /// Backward for one sample of a BatchCache. Gradient accumulation order
    /// is the caller's row order; walking rows in original batch order makes
    /// the accumulated grads bit-identical to per-sample backward() calls.
    void backward_row(const BatchCache& cache, std::size_t row,
                      std::span<const double> dout, MlpScratch& scratch);

    void zero_grad() noexcept;

    [[nodiscard]] std::vector<SlimmableLinear>& layers() noexcept { return layers_; }
    [[nodiscard]] const std::vector<SlimmableLinear>& layers() const noexcept { return layers_; }

    /// Total parameter count (weights + biases), for overhead reporting.
    [[nodiscard]] std::size_t parameter_count() const noexcept;

    /// Hard-copy the parameters of `src` (used for target-network sync).
    void copy_parameters_from(const SlimmableMlp& src);

private:
    MlpConfig config_;
    std::vector<SlimmableLinear> layers_;
};

} // namespace lotus::rl
