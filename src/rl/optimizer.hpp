#pragma once
// Adam optimizer with cosine learning-rate decay (Sec. 4.4.1: Adam with
// beta1 = 0.9, beta2 = 0.99, lr = 0.01 with cosine decay).
//
// The step() honours the per-parameter "touched" masks produced by the
// slimmable backward pass: untouched parameters keep their exact values, as
// the paper requires for reduced-width updates ("the remaining weights are
// not updated").

#include <cstddef>
#include <vector>

#include "rl/mlp.hpp"

namespace lotus::rl {

/// lr(t) = lr_min + 0.5 (lr0 - lr_min) (1 + cos(pi * t / T)), clamped at T.
class CosineLrSchedule {
public:
    CosineLrSchedule(double lr0, double lr_min, std::size_t total_steps);

    [[nodiscard]] double at(std::size_t step) const noexcept;

    [[nodiscard]] double initial() const noexcept { return lr0_; }
    [[nodiscard]] double floor() const noexcept { return lr_min_; }

private:
    double lr0_;
    double lr_min_;
    std::size_t total_steps_;
};

struct AdamConfig {
    double lr = 0.01;
    double lr_min = 1e-4;
    std::size_t lr_total_steps = 10'000; // paper trains 10,000 iterations
    double beta1 = 0.9;
    double beta2 = 0.99;
    double epsilon = 1e-8;
    /// Global-norm gradient clip; <= 0 disables.
    double grad_clip = 10.0;
};

class Adam {
public:
    /// The optimizer sizes its moment buffers from the network topology.
    Adam(const SlimmableMlp& net, AdamConfig config);

    /// Apply one update using the gradients (and touched masks) accumulated
    /// in `net`, then clear them. Returns the learning rate used.
    double step(SlimmableMlp& net);

    [[nodiscard]] std::size_t steps_taken() const noexcept { return t_; }
    [[nodiscard]] const AdamConfig& config() const noexcept { return config_; }

private:
    struct Moments {
        std::vector<double> m_w, v_w, m_b, v_b;
    };

    AdamConfig config_;
    CosineLrSchedule lr_;
    std::vector<Moments> moments_;
    std::size_t t_ = 0;
};

} // namespace lotus::rl
