#include "rl/layers.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lotus::rl {

SlimmableLinear::SlimmableLinear(std::size_t in_features, std::size_t out_features,
                                 util::Rng& rng)
    : in_(in_features),
      out_(out_features),
      w_(out_features, in_features),
      b_(out_features, 0.0),
      gw_(out_features, in_features),
      gb_(out_features, 0.0),
      mask_w_(out_features * in_features, 0),
      mask_b_(out_features, 0),
      marked_cols_(out_features, 0) {
    // Kaiming-uniform init over the *full* fan-in, matching common slimmable
    // network practice (the shared leading weights see both widths).
    const double bound = std::sqrt(6.0 / static_cast<double>(in_features));
    for (auto& v : w_.flat()) v = rng.uniform(-bound, bound);
}

void SlimmableLinear::forward(std::span<const double> x, std::span<double> y,
                              std::size_t in_active, std::size_t out_active) const noexcept {
    Matrix::slice_matvec(w_, x, b_, y, out_active, in_active);
}

void SlimmableLinear::forward_batch(const Matrix& x, Matrix& y, std::size_t in_active,
                                    std::size_t out_active,
                                    std::size_t batch) const noexcept {
    Matrix::slice_matmul(w_, x, b_, y, out_active, in_active, batch);
}

void SlimmableLinear::backward(std::span<const double> x, std::span<const double> dy,
                               std::span<double> dx, std::size_t in_active,
                               std::size_t out_active) noexcept {
    Matrix::slice_matvec_transposed(w_, dy, dx, out_active, in_active);
    Matrix::slice_outer_accumulate(gw_, dy, x, out_active, in_active);
    for (std::size_t r = 0; r < out_active; ++r) gb_[r] += dy[r];
    // Marking always covers the leading [0, in_active) span of each row, so
    // the per-row high-water mark lets every backward call after the first
    // (per batch, per width) skip the byte stores entirely.
    for (std::size_t r = 0; r < out_active; ++r) {
        if (marked_cols_[r] >= in_active) continue;
        std::uint8_t* mrow = mask_w_.data() + r * in_;
        std::fill(mrow + marked_cols_[r], mrow + in_active, std::uint8_t{1});
        marked_cols_[r] = static_cast<std::uint32_t>(in_active);
        mask_b_[r] = 1;
    }
}

void SlimmableLinear::zero_grad() noexcept {
    auto gw = gw_.flat();
    std::fill(gw.begin(), gw.end(), 0.0);
    std::fill(gb_.begin(), gb_.end(), 0.0);
    std::fill(mask_w_.begin(), mask_w_.end(), std::uint8_t{0});
    std::fill(mask_b_.begin(), mask_b_.end(), std::uint8_t{0});
    std::fill(marked_cols_.begin(), marked_cols_.end(), 0U);
}

void relu_inplace(std::span<double> x, std::size_t active) noexcept {
    for (std::size_t i = 0; i < active; ++i) {
        if (x[i] < 0.0) x[i] = 0.0;
    }
}

void relu_backward(std::span<const double> pre_activation, std::span<double> dy,
                   std::size_t active) noexcept {
    for (std::size_t i = 0; i < active; ++i) {
        if (pre_activation[i] <= 0.0) dy[i] = 0.0;
    }
}

} // namespace lotus::rl
