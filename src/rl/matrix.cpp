#include "rl/matrix.hpp"

#include <stdexcept>

#include "prof/profiler.hpp"

namespace lotus::rl {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
    if (rows == 0 || cols == 0) {
        throw std::invalid_argument("Matrix: zero dimension");
    }
}

double& Matrix::at(std::size_t r, std::size_t c) {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
    return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
    return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
}

void Matrix::fill(double v) noexcept {
    for (auto& x : data_) x = v;
}

void Matrix::resize(std::size_t rows, std::size_t cols, double fill) {
    if (rows == 0 || cols == 0) {
        throw std::invalid_argument("Matrix::resize: zero dimension");
    }
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
}

void Matrix::slice_matvec(const Matrix& a, std::span<const double> x,
                          std::span<const double> b, std::span<double> y,
                          std::size_t out, std::size_t in) noexcept {
    LOTUS_PROF_COUNT("rl.matvec_calls", 1);
    for (std::size_t r = 0; r < out; ++r) {
        const double* wrow = a.data_.data() + r * a.cols_;
        double acc = b[r];
        for (std::size_t c = 0; c < in; ++c) acc += wrow[c] * x[c];
        y[r] = acc;
    }
}

void Matrix::slice_matmul(const Matrix& a, const Matrix& x, std::span<const double> b,
                          Matrix& y, std::size_t out, std::size_t in,
                          std::size_t batch) noexcept {
    LOTUS_PROF_COUNT("rl.matmul_calls", 1);
    LOTUS_PROF_COUNT("rl.matmul_rows", batch);
    // 2 batch rows x 4 output rows of accumulators live in registers; the
    // reduction over c stays a single sequential chain per element, so no
    // floating-point reassociation happens relative to slice_matvec.
    std::size_t k = 0;
    for (; k + 2 <= batch; k += 2) {
        const double* x0 = x.data_.data() + k * x.cols_;
        const double* x1 = x0 + x.cols_;
        double* y0 = y.data_.data() + k * y.cols_;
        double* y1 = y0 + y.cols_;
        std::size_t r = 0;
        for (; r + 4 <= out; r += 4) {
            const double* w0 = a.data_.data() + r * a.cols_;
            const double* w1 = w0 + a.cols_;
            const double* w2 = w1 + a.cols_;
            const double* w3 = w2 + a.cols_;
            double a00 = b[r], a01 = b[r + 1], a02 = b[r + 2], a03 = b[r + 3];
            double a10 = b[r], a11 = b[r + 1], a12 = b[r + 2], a13 = b[r + 3];
            for (std::size_t c = 0; c < in; ++c) {
                const double xv0 = x0[c];
                const double xv1 = x1[c];
                a00 += w0[c] * xv0;
                a01 += w1[c] * xv0;
                a02 += w2[c] * xv0;
                a03 += w3[c] * xv0;
                a10 += w0[c] * xv1;
                a11 += w1[c] * xv1;
                a12 += w2[c] * xv1;
                a13 += w3[c] * xv1;
            }
            y0[r] = a00;
            y0[r + 1] = a01;
            y0[r + 2] = a02;
            y0[r + 3] = a03;
            y1[r] = a10;
            y1[r + 1] = a11;
            y1[r + 2] = a12;
            y1[r + 3] = a13;
        }
        for (; r < out; ++r) {
            const double* wrow = a.data_.data() + r * a.cols_;
            double t0 = b[r];
            double t1 = b[r];
            for (std::size_t c = 0; c < in; ++c) {
                t0 += wrow[c] * x0[c];
                t1 += wrow[c] * x1[c];
            }
            y0[r] = t0;
            y1[r] = t1;
        }
    }
    for (; k < batch; ++k) {
        const double* xrow = x.data_.data() + k * x.cols_;
        double* yrow = y.data_.data() + k * y.cols_;
        for (std::size_t r = 0; r < out; ++r) {
            const double* wrow = a.data_.data() + r * a.cols_;
            double acc = b[r];
            for (std::size_t c = 0; c < in; ++c) acc += wrow[c] * xrow[c];
            yrow[r] = acc;
        }
    }
}

void Matrix::slice_matvec_transposed(const Matrix& a, std::span<const double> y_grad,
                                     std::span<double> x_grad,
                                     std::size_t out, std::size_t in) noexcept {
    for (std::size_t c = 0; c < in; ++c) x_grad[c] = 0.0;
    for (std::size_t r = 0; r < out; ++r) {
        const double g = y_grad[r];
        if (g == 0.0) continue;
        const double* wrow = a.data_.data() + r * a.cols_;
        for (std::size_t c = 0; c < in; ++c) x_grad[c] += g * wrow[c];
    }
}

void Matrix::slice_outer_accumulate(Matrix& grad, std::span<const double> y_grad,
                                    std::span<const double> x,
                                    std::size_t out, std::size_t in) noexcept {
    for (std::size_t r = 0; r < out; ++r) {
        const double g = y_grad[r];
        if (g == 0.0) continue;
        double* grow = grad.data_.data() + r * grad.cols_;
        for (std::size_t c = 0; c < in; ++c) grow[c] += g * x[c];
    }
}

} // namespace lotus::rl
