#include "rl/matrix.hpp"

#include <stdexcept>

namespace lotus::rl {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
    if (rows == 0 || cols == 0) {
        throw std::invalid_argument("Matrix: zero dimension");
    }
}

double& Matrix::at(std::size_t r, std::size_t c) {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
    return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
    return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
}

void Matrix::fill(double v) noexcept {
    for (auto& x : data_) x = v;
}

void Matrix::slice_matvec(const Matrix& a, std::span<const double> x,
                          std::span<const double> b, std::span<double> y,
                          std::size_t out, std::size_t in) noexcept {
    for (std::size_t r = 0; r < out; ++r) {
        const double* wrow = a.data_.data() + r * a.cols_;
        double acc = b[r];
        for (std::size_t c = 0; c < in; ++c) acc += wrow[c] * x[c];
        y[r] = acc;
    }
}

void Matrix::slice_matvec_transposed(const Matrix& a, std::span<const double> y_grad,
                                     std::span<double> x_grad,
                                     std::size_t out, std::size_t in) noexcept {
    for (std::size_t c = 0; c < in; ++c) x_grad[c] = 0.0;
    for (std::size_t r = 0; r < out; ++r) {
        const double g = y_grad[r];
        if (g == 0.0) continue;
        const double* wrow = a.data_.data() + r * a.cols_;
        for (std::size_t c = 0; c < in; ++c) x_grad[c] += g * wrow[c];
    }
}

void Matrix::slice_outer_accumulate(Matrix& grad, std::span<const double> y_grad,
                                    std::span<const double> x,
                                    std::size_t out, std::size_t in) noexcept {
    for (std::size_t r = 0; r < out; ++r) {
        const double g = y_grad[r];
        if (g == 0.0) continue;
        double* grow = grad.data_.data() + r * grad.cols_;
        for (std::size_t c = 0; c < in; ++c) grow[c] += g * x[c];
    }
}

} // namespace lotus::rl
