#include "rl/optimizer.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace lotus::rl {

CosineLrSchedule::CosineLrSchedule(double lr0, double lr_min, std::size_t total_steps)
    : lr0_(lr0), lr_min_(lr_min), total_steps_(total_steps) {
    if (lr0 <= 0.0 || lr_min < 0.0 || lr_min > lr0) {
        throw std::invalid_argument("CosineLrSchedule: bad rates");
    }
    if (total_steps == 0) throw std::invalid_argument("CosineLrSchedule: zero steps");
}

double CosineLrSchedule::at(std::size_t step) const noexcept {
    const double t = std::min(static_cast<double>(step), static_cast<double>(total_steps_));
    const double frac = t / static_cast<double>(total_steps_);
    return lr_min_ + 0.5 * (lr0_ - lr_min_) * (1.0 + std::cos(std::numbers::pi * frac));
}

Adam::Adam(const SlimmableMlp& net, AdamConfig config)
    : config_(config), lr_(config.lr, config.lr_min, config.lr_total_steps) {
    moments_.reserve(net.layers().size());
    for (const auto& layer : net.layers()) {
        Moments m;
        m.m_w.assign(layer.weights().size(), 0.0);
        m.v_w.assign(layer.weights().size(), 0.0);
        m.m_b.assign(layer.bias().size(), 0.0);
        m.v_b.assign(layer.bias().size(), 0.0);
        moments_.push_back(std::move(m));
    }
}

double Adam::step(SlimmableMlp& net) {
    if (net.layers().size() != moments_.size()) {
        throw std::invalid_argument("Adam::step: network topology changed");
    }

    // Optional global-norm gradient clipping over touched entries.
    double scale = 1.0;
    if (config_.grad_clip > 0.0) {
        double sq = 0.0;
        for (auto& layer : net.layers()) {
            const auto gw = layer.grad_weights().flat();
            const auto mw = layer.weight_mask();
            for (std::size_t i = 0; i < gw.size(); ++i) {
                if (mw[i]) sq += gw[i] * gw[i];
            }
            const auto gb = layer.grad_bias();
            const auto mb = layer.bias_mask();
            for (std::size_t i = 0; i < gb.size(); ++i) {
                if (mb[i]) sq += gb[i] * gb[i];
            }
        }
        const double norm = std::sqrt(sq);
        if (norm > config_.grad_clip) scale = config_.grad_clip / norm;
    }

    ++t_;
    const double lr = lr_.at(t_);
    const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
    const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));

    for (std::size_t li = 0; li < net.layers().size(); ++li) {
        auto& layer = net.layers()[li];
        auto& mom = moments_[li];

        auto w = layer.weights().flat();
        auto gw = layer.grad_weights().flat();
        const auto mw = layer.weight_mask();
        for (std::size_t i = 0; i < w.size(); ++i) {
            if (!mw[i]) continue;
            const double g = gw[i] * scale;
            mom.m_w[i] = config_.beta1 * mom.m_w[i] + (1.0 - config_.beta1) * g;
            mom.v_w[i] = config_.beta2 * mom.v_w[i] + (1.0 - config_.beta2) * g * g;
            const double mhat = mom.m_w[i] / bc1;
            const double vhat = mom.v_w[i] / bc2;
            w[i] -= lr * mhat / (std::sqrt(vhat) + config_.epsilon);
        }

        auto b = layer.bias();
        auto gb = layer.grad_bias();
        const auto mb = layer.bias_mask();
        for (std::size_t i = 0; i < b.size(); ++i) {
            if (!mb[i]) continue;
            const double g = gb[i] * scale;
            mom.m_b[i] = config_.beta1 * mom.m_b[i] + (1.0 - config_.beta1) * g;
            mom.v_b[i] = config_.beta2 * mom.v_b[i] + (1.0 - config_.beta2) * g * g;
            const double mhat = mom.m_b[i] / bc1;
            const double vhat = mom.v_b[i] / bc2;
            b[i] -= lr * mhat / (std::sqrt(vhat) + config_.epsilon);
        }
    }

    net.zero_grad();
    return lr;
}

} // namespace lotus::rl
