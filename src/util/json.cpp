#include "util/json.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

namespace lotus::util {

namespace {

[[noreturn]] void type_error(const char* want, JsonValue::Type got) {
    throw std::runtime_error(std::string("JsonValue: expected ") + want +
                             ", held type " +
                             std::to_string(static_cast<int>(got)));
}

} // namespace

bool JsonValue::as_bool() const {
    if (type_ != Type::boolean) type_error("boolean", type_);
    return bool_;
}

double JsonValue::as_number() const {
    if (type_ != Type::number) type_error("number", type_);
    return number_;
}

const std::string& JsonValue::as_string() const {
    if (type_ != Type::string) type_error("string", type_);
    return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
    if (type_ != Type::array) type_error("array", type_);
    return items_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
    if (type_ != Type::object) type_error("object", type_);
    return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
    if (type_ != Type::object) return nullptr;
    for (const auto& [k, v] : members_) {
        if (k == key) return &v;
    }
    return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
    const auto* v = find(key);
    if (!v) throw std::runtime_error("JsonValue: missing key '" + key + "'");
    return *v;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
    const auto* v = find(key);
    if (!v || v->is_null()) return fallback;
    return v->as_number();
}

// --- parser ------------------------------------------------------------------

class JsonParser {
public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    JsonValue parse_document() {
        auto v = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters after document");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw std::runtime_error("json: " + what + " at byte " +
                                 std::to_string(pos_));
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    void expect_literal(const char* lit) {
        for (const char* p = lit; *p != '\0'; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p) {
                fail(std::string("expected literal '") + lit + "'");
            }
            ++pos_;
        }
    }

    JsonValue parse_value() {
        skip_ws();
        switch (peek()) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': {
                JsonValue v;
                v.type_ = JsonValue::Type::string;
                v.string_ = parse_string();
                return v;
            }
            case 't': {
                expect_literal("true");
                JsonValue v;
                v.type_ = JsonValue::Type::boolean;
                v.bool_ = true;
                return v;
            }
            case 'f': {
                expect_literal("false");
                JsonValue v;
                v.type_ = JsonValue::Type::boolean;
                v.bool_ = false;
                return v;
            }
            case 'n': {
                expect_literal("null");
                return JsonValue{};
            }
            default: return parse_number();
        }
    }

    JsonValue parse_object() {
        expect('{');
        JsonValue v;
        v.type_ = JsonValue::Type::object;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skip_ws();
            auto key = parse_string();
            skip_ws();
            expect(':');
            v.members_.emplace_back(std::move(key), parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue parse_array() {
        expect('[');
        JsonValue v;
        v.type_ = JsonValue::Type::array;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.items_.push_back(parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': append_unicode_escape(out); break;
                default: fail("bad escape");
            }
        }
    }

    unsigned parse_hex4() {
        if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
        unsigned value = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            value <<= 4U;
            if (c >= '0' && c <= '9') {
                value |= static_cast<unsigned>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                value |= static_cast<unsigned>(c - 'a') + 10U;
            } else if (c >= 'A' && c <= 'F') {
                value |= static_cast<unsigned>(c - 'A') + 10U;
            } else {
                fail("bad \\u escape");
            }
        }
        return value;
    }

    void append_unicode_escape(std::string& out) {
        unsigned cp = parse_hex4();
        if (cp >= 0xD800U && cp <= 0xDBFFU) {
            // High surrogate: consume the paired low surrogate.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
                fail("unpaired surrogate");
            }
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xDC00U || low > 0xDFFFU) fail("unpaired surrogate");
            cp = 0x10000U + ((cp - 0xD800U) << 10U) + (low - 0xDC00U);
        } else if (cp >= 0xDC00U && cp <= 0xDFFFU) {
            fail("unpaired surrogate");
        }
        // UTF-8 encode.
        if (cp < 0x80U) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800U) {
            out.push_back(static_cast<char>(0xC0U | (cp >> 6U)));
            out.push_back(static_cast<char>(0x80U | (cp & 0x3FU)));
        } else if (cp < 0x10000U) {
            out.push_back(static_cast<char>(0xE0U | (cp >> 12U)));
            out.push_back(static_cast<char>(0x80U | ((cp >> 6U) & 0x3FU)));
            out.push_back(static_cast<char>(0x80U | (cp & 0x3FU)));
        } else {
            out.push_back(static_cast<char>(0xF0U | (cp >> 18U)));
            out.push_back(static_cast<char>(0x80U | ((cp >> 12U) & 0x3FU)));
            out.push_back(static_cast<char>(0x80U | ((cp >> 6U) & 0x3FU)));
            out.push_back(static_cast<char>(0x80U | (cp & 0x3FU)));
        }
    }

    JsonValue parse_number() {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
                c == '+' || c == '-') {
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start) fail("expected value");
        double value = 0.0;
        // Locale-free parse; from_chars accepts exactly the JSON grammar's
        // number productions (plus a few more we never emit).
        const auto* first = text_.data() + start;
        const auto* last = text_.data() + pos_;
        const auto [end, ec] = std::from_chars(first, last, value);
        if (ec != std::errc{} || end != last) {
            pos_ = start;
            fail("bad number");
        }
        JsonValue v;
        v.type_ = JsonValue::Type::number;
        v.number_ = value;
        return v;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

JsonValue json_parse(const std::string& text) {
    return JsonParser(text).parse_document();
}

JsonValue json_parse_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("json: cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return json_parse(buf.str());
}

} // namespace lotus::util
