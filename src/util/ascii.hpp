#pragma once
// Console rendering: aligned tables (for the paper's Tables 1-2) and braille-
// free ASCII line charts (for the paper's figure time series). The benches
// are argument-free binaries whose stdout should read like the paper's
// figures/tables, so this is part of the deliverable rather than debug aid.

#include <string>
#include <vector>

namespace lotus::util {

/// Simple column-aligned table with a header row and optional title.
class TextTable {
public:
    explicit TextTable(std::vector<std::string> header);

    void add_row(std::vector<std::string> row);

    /// Render with box-drawing-free ASCII (pipes and dashes).
    [[nodiscard]] std::string render(const std::string& title = "") const;

    [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// One named series for an AsciiChart.
struct Series {
    std::string name;
    std::vector<double> values;
};

/// Fixed-grid ASCII line chart. Multiple series are overlaid with distinct
/// glyphs; a horizontal reference line (e.g. a latency constraint or
/// throttling bound) can be drawn with '-'.
class AsciiChart {
public:
    AsciiChart(int width, int height);

    void add_series(Series s);

    /// Optional dashed horizontal reference (the red dashed lines in the
    /// paper's figures).
    void add_reference_line(double y, std::string label);

    /// Explicit y-range; otherwise auto-fit to data and reference lines.
    void set_y_range(double lo, double hi);

    [[nodiscard]] std::string render(const std::string& title = "",
                                     const std::string& y_label = "") const;

private:
    int width_;
    int height_;
    bool explicit_range_ = false;
    double y_lo_ = 0.0;
    double y_hi_ = 1.0;
    std::vector<Series> series_;
    std::vector<std::pair<double, std::string>> refs_;
};

/// Downsample a long trace to `buckets` points by bucket-averaging; keeps the
/// figure-shaped charts readable for 3,000-iteration traces.
[[nodiscard]] std::vector<double> downsample(const std::vector<double>& data,
                                             std::size_t buckets);

} // namespace lotus::util
