#pragma once
// Build identity shared by every JSON emitter in the repo.
//
// scenario_json, BENCH_overhead.json and the telemetry exporters all stamp
// their documents with the same schema version and the git-describe build
// id, so artifacts can be attributed to the commit that produced them and
// diffed across PRs without guessing which emitter wrote what.

#include <string>

namespace lotus::util {

/// Version of the repo's JSON document family. Bump when any emitter
/// changes shape (renamed/removed fields, changed units); additive fields
/// do not require a bump.
inline constexpr int kSchemaVersion = 2;

/// git-describe --always --dirty of the tree this library was configured
/// from; "unknown" when the build ran outside a git checkout.
[[nodiscard]] const char* build_id() noexcept;

/// Pre-rendered object fragment `"schema_version":N,"build":"<id>"` for the
/// repo's hand-rolled JSON emitters (no surrounding braces, no trailing
/// comma).
[[nodiscard]] std::string build_info_json_fields();

} // namespace lotus::util
