#pragma once
// Deterministic pseudo-random number generation for simulation and RL.
//
// All stochastic components of the reproduction (workload streams, epsilon
// exploration, replay sampling, weight init) draw from a lotus::util::Rng so
// that every experiment is exactly reproducible from a single seed. The
// engine is SplitMix64 feeding xoshiro256++, which is fast, high quality and
// trivially seedable -- we deliberately avoid std::mt19937 so that streams
// can be forked cheaply (`fork()` derives an independent child stream).

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace lotus::util {

/// Counter-based seeding helper (SplitMix64). Used to expand a single
/// user-provided seed into full xoshiro state and to derive child seeds.
class SplitMix64 {
public:
    explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// Derive a child seed from (root seed, stream id, index) with a
/// splitmix-style avalanche over an FNV-1a hash of the id. The result
/// depends only on the three inputs -- never on call order or thread
/// schedule -- which is what makes parallel episode execution reproduce the
/// serial run exactly: every (scenario, arm) episode owns a seed that is a
/// pure function of its identity.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t root, std::string_view stream_id,
                                        std::uint64_t index) noexcept;

/// xoshiro256++ PRNG with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator so it can also be plugged into
/// <random> distributions if ever needed, but the member helpers below are
/// what the codebase uses (they are reproducible across platforms, unlike
/// libstdc++/libc++ distribution implementations).
class Rng {
public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x10705ULL) noexcept;

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~0ULL; }

    result_type operator()() noexcept { return next_u64(); }

    std::uint64_t next_u64() noexcept;

    /// Uniform double in [0, 1).
    double uniform() noexcept;

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept;

    /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

    /// Bernoulli trial with success probability p (clamped to [0,1]).
    bool bernoulli(double p) noexcept;

    /// Standard normal via Box-Muller (cached second deviate).
    double normal() noexcept;

    /// Normal with the given mean and standard deviation.
    double normal(double mean, double stddev) noexcept;

    /// Log-normal: exp(N(mu, sigma)). Parameters are of the underlying normal.
    double lognormal(double mu, double sigma) noexcept;

    /// Derive an independent child stream (stable given call order).
    Rng fork() noexcept;

    /// Sample k distinct indices from [0, n) (k <= n), for replay sampling.
    std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

private:
    std::array<std::uint64_t, 4> s_{};
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

} // namespace lotus::util
