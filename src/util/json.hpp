#pragma once
// Minimal JSON reader for the repo's own artifacts (health.json,
// rollup.json, manifest.json). The repo takes no JSON dependency: emission
// is hand-rolled fragments (telemetry::jnum/jstr), and this is the
// matching hand-rolled recursive-descent parser for the tools that read
// the artifacts back (lotus_inspect).
//
// Deliberately small: doubles for all numbers (every number the emitters
// write fits), objects as insertion-ordered key/value vectors (iteration
// order is the document order, deterministic by construction), errors as
// std::runtime_error with a byte offset. Not a general-purpose validator
// -- it accepts exactly RFC 8259 JSON and nothing more.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace lotus::util {

class JsonValue {
public:
    enum class Type { null, boolean, number, string, array, object };

    using Member = std::pair<std::string, JsonValue>;

    JsonValue() = default;

    [[nodiscard]] Type type() const noexcept { return type_; }
    [[nodiscard]] bool is_null() const noexcept { return type_ == Type::null; }
    [[nodiscard]] bool is_number() const noexcept { return type_ == Type::number; }
    [[nodiscard]] bool is_string() const noexcept { return type_ == Type::string; }
    [[nodiscard]] bool is_array() const noexcept { return type_ == Type::array; }
    [[nodiscard]] bool is_object() const noexcept { return type_ == Type::object; }

    /// Typed accessors throw std::runtime_error on a type mismatch.
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] double as_number() const;
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const std::vector<JsonValue>& items() const;
    [[nodiscard]] const std::vector<Member>& members() const;

    /// Object lookup: nullptr when absent (or not an object).
    [[nodiscard]] const JsonValue* find(const std::string& key) const;
    /// Object lookup that throws std::runtime_error when absent.
    [[nodiscard]] const JsonValue& at(const std::string& key) const;
    /// `at(key).as_number()`, but null (how the emitters spell NaN/inf)
    /// and absence degrade to `fallback`.
    [[nodiscard]] double number_or(const std::string& key, double fallback) const;

private:
    friend class JsonParser;

    Type type_ = Type::null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<Member> members_;
};

/// Parse one JSON document (throws std::runtime_error with a byte offset
/// on malformed input, including trailing garbage).
[[nodiscard]] JsonValue json_parse(const std::string& text);

/// json_parse over a whole file (throws on unreadable path).
[[nodiscard]] JsonValue json_parse_file(const std::string& path);

} // namespace lotus::util
