#include "util/build_info.hpp"

#ifndef LOTUS_BUILD_ID
#define LOTUS_BUILD_ID "unknown"
#endif

namespace lotus::util {

const char* build_id() noexcept { return LOTUS_BUILD_ID; }

std::string build_info_json_fields() {
    // The build id is a git describe string (alnum, '.', '-', 'g' prefix);
    // no JSON escaping is ever needed, but quote defensively anyway.
    std::string id;
    for (const char c : std::string(build_id())) {
        if (c == '"' || c == '\\') id.push_back('\\');
        id.push_back(c);
    }
    return "\"schema_version\":" + std::to_string(kSchemaVersion) + ",\"build\":\"" + id +
           "\"";
}

} // namespace lotus::util
