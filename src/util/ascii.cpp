#include "util/ascii.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace lotus::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
    if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
    if (row.size() != header_.size()) {
        throw std::invalid_argument("TextTable: row arity mismatch");
    }
    rows_.push_back(std::move(row));
}

std::string TextTable::render(const std::string& title) const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    const auto rule = [&] {
        std::string s = "+";
        for (const auto w : widths) {
            s += std::string(w + 2, '-');
            s += "+";
        }
        s += "\n";
        return s;
    }();

    const auto emit_row = [&](const std::vector<std::string>& row) {
        std::string s = "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            s += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
        }
        s += "\n";
        return s;
    };

    std::string out;
    if (!title.empty()) out += title + "\n";
    out += rule;
    out += emit_row(header_);
    out += rule;
    for (const auto& row : rows_) out += emit_row(row);
    out += rule;
    return out;
}

AsciiChart::AsciiChart(int width, int height) : width_(width), height_(height) {
    if (width_ < 16 || height_ < 4) {
        throw std::invalid_argument("AsciiChart: grid too small");
    }
}

void AsciiChart::add_series(Series s) {
    if (!s.values.empty()) series_.push_back(std::move(s));
}

void AsciiChart::add_reference_line(double y, std::string label) {
    refs_.emplace_back(y, std::move(label));
}

void AsciiChart::set_y_range(double lo, double hi) {
    if (!(lo < hi)) throw std::invalid_argument("AsciiChart: invalid y range");
    y_lo_ = lo;
    y_hi_ = hi;
    explicit_range_ = true;
}

std::string AsciiChart::render(const std::string& title, const std::string& y_label) const {
    static constexpr char kGlyphs[] = {'*', 'o', '#', '%', '@', '+'};

    double lo = y_lo_;
    double hi = y_hi_;
    if (!explicit_range_) {
        lo = 1e300;
        hi = -1e300;
        for (const auto& s : series_) {
            for (const double v : s.values) {
                lo = std::min(lo, v);
                hi = std::max(hi, v);
            }
        }
        for (const auto& [y, name] : refs_) {
            lo = std::min(lo, y);
            hi = std::max(hi, y);
        }
        if (lo > hi) { lo = 0.0; hi = 1.0; }
        const double pad = (hi - lo) * 0.05 + 1e-9;
        lo -= pad;
        hi += pad;
    }

    std::vector<std::string> grid(static_cast<std::size_t>(height_),
                                  std::string(static_cast<std::size_t>(width_), ' '));

    const auto row_of = [&](double y) -> int {
        const double t = (y - lo) / (hi - lo);
        const int r = static_cast<int>(std::lround((1.0 - t) * (height_ - 1)));
        return std::clamp(r, 0, height_ - 1);
    };

    for (const auto& [y, name] : refs_) {
        const int r = row_of(y);
        auto& line = grid[static_cast<std::size_t>(r)];
        for (int c = 0; c < width_; c += 2) line[static_cast<std::size_t>(c)] = '-';
    }

    for (std::size_t si = 0; si < series_.size(); ++si) {
        const auto& vals = series_[si].values;
        const char glyph = kGlyphs[si % sizeof(kGlyphs)];
        const std::size_t n = vals.size();
        for (int c = 0; c < width_; ++c) {
            const auto idx = static_cast<std::size_t>(
                static_cast<double>(c) / std::max(1, width_ - 1) *
                static_cast<double>(n - 1));
            const int r = row_of(vals[std::min(idx, n - 1)]);
            grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = glyph;
        }
    }

    std::ostringstream out;
    if (!title.empty()) out << title << "\n";
    if (!y_label.empty()) out << "  [" << y_label << "]\n";
    for (int r = 0; r < height_; ++r) {
        const double y = hi - (hi - lo) * static_cast<double>(r) / (height_ - 1);
        std::ostringstream axis;
        axis.setf(std::ios::fixed);
        axis.precision(1);
        axis << y;
        std::string ax = axis.str();
        if (ax.size() < 9) ax = std::string(9 - ax.size(), ' ') + ax;
        out << ax << " |" << grid[static_cast<std::size_t>(r)] << "\n";
    }
    out << std::string(10, ' ') << '+' << std::string(static_cast<std::size_t>(width_), '-') << "\n";
    out << std::string(10, ' ') << " legend:";
    for (std::size_t si = 0; si < series_.size(); ++si) {
        out << "  " << kGlyphs[si % sizeof(kGlyphs)] << "=" << series_[si].name;
    }
    for (const auto& [y, name] : refs_) out << "  -=" << name;
    out << "\n";
    return out.str();
}

std::vector<double> downsample(const std::vector<double>& data, std::size_t buckets) {
    if (buckets == 0) throw std::invalid_argument("downsample: zero buckets");
    if (data.empty()) return {};
    if (data.size() <= buckets) return data;
    std::vector<double> out;
    out.reserve(buckets);
    const double step = static_cast<double>(data.size()) / static_cast<double>(buckets);
    for (std::size_t b = 0; b < buckets; ++b) {
        const auto begin = static_cast<std::size_t>(std::floor(static_cast<double>(b) * step));
        auto end = static_cast<std::size_t>(std::floor(static_cast<double>(b + 1) * step));
        end = std::min(std::max(end, begin + 1), data.size());
        double sum = 0.0;
        for (std::size_t i = begin; i < end; ++i) sum += data[i];
        out.push_back(sum / static_cast<double>(end - begin));
    }
    return out;
}

} // namespace lotus::util
