#include "util/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace lotus::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}
} // namespace

std::uint64_t derive_seed(std::uint64_t root, std::string_view stream_id,
                          std::uint64_t index) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL; // FNV-1a over the stream id
    for (const char c : stream_id) {
        h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    }
    // Two splitmix rounds: the first folds (root, id), the second folds the
    // index so that neighbouring indices land in unrelated states.
    SplitMix64 first(root ^ rotl(h, 17));
    SplitMix64 second(first.next() ^ (index * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL));
    return second.next();
}

Rng::Rng(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next_u64() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double Rng::uniform() noexcept {
    // 53 high bits -> double in [0,1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    if (lo >= hi) return lo;
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1ULL;
    // Unbiased rejection sampling (Lemire-style threshold).
    const std::uint64_t threshold = (~span + 1ULL) % span; // (2^64 - span) mod span
    for (;;) {
        const std::uint64_t r = next_u64();
        if (r >= threshold) return lo + static_cast<std::int64_t>(r % span);
    }
}

bool Rng::bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
}

double Rng::normal() noexcept {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Box-Muller; u1 in (0,1] to avoid log(0).
    double u1 = 1.0 - uniform();
    double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_normal_ = radius * std::sin(theta);
    has_cached_normal_ = true;
    return radius * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
}

Rng Rng::fork() noexcept {
    return Rng(next_u64());
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
    if (k > n) throw std::invalid_argument("sample_indices: k > n");
    // Floyd's algorithm: O(k) expected, no O(n) scratch.
    std::vector<std::size_t> out;
    out.reserve(k);
    for (std::size_t j = n - k; j < n; ++j) {
        const auto t = static_cast<std::size_t>(
            uniform_int(0, static_cast<std::int64_t>(j)));
        bool seen = false;
        for (const auto v : out) {
            if (v == t) { seen = true; break; }
        }
        out.push_back(seen ? j : t);
    }
    return out;
}

} // namespace lotus::util
