#pragma once
// Streaming and windowed statistics.
//
// Two primitives back the whole evaluation pipeline:
//  * RunningStats  -- Welford-style single-pass mean/variance/min/max, used
//    for the l̄ and sigma_l columns of Tables 1-2.
//  * WindowedStats -- mean/std over the most recent n samples, used for the
//    sigma_n(Delta-L) term in the latency reward of Eq. (2).

#include <cstddef>
#include <vector>

namespace lotus::util {

/// Single-pass mean / variance / extrema accumulator (Welford's algorithm).
/// Numerically stable for the long (3,000+ sample) latency traces the
/// benches produce.
class RunningStats {
public:
    void add(double x) noexcept;
    void merge(const RunningStats& other) noexcept;
    void reset() noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
    [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Mean/std over a sliding window of the most recent `capacity` samples.
/// Implements sigma_n(.) from Eq. (2) of the paper. Uses exact recomputation
/// over the (small) window to avoid the drift of incremental sum updates.
class WindowedStats {
public:
    explicit WindowedStats(std::size_t capacity);

    void add(double x);
    void reset() noexcept;

    [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] bool full() const noexcept { return buf_.size() == capacity_; }
    [[nodiscard]] double mean() const noexcept;
    /// Population std over the window (n denominator); 0 for empty/singleton.
    [[nodiscard]] double stddev() const noexcept;

private:
    std::size_t capacity_;
    std::size_t head_ = 0; // next slot to overwrite once full
    std::vector<double> buf_;
};

/// Percentile over a copy of the data (exact, nearest-rank with linear
/// interpolation). p in [0, 100].
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Several percentiles over ONE sort of the data: returns one value per
/// entry of `ps` (each clamped to [0, 100]), in the same order, each equal
/// to what percentile(values, p) would return. Use this instead of repeated
/// percentile() calls when extracting p50/p95/p99 from the same series.
[[nodiscard]] std::vector<double> percentiles(std::vector<double> values,
                                              const std::vector<double>& ps);

/// Fraction of samples satisfying x <= limit; the satisfaction rate R_L of
/// Tables 1-2. A sample exactly on the limit is satisfied -- the same
/// boundary rule as the serving layer's SLO accounting (missed means
/// e2e > slo). Returns 0 for an empty range.
[[nodiscard]] double satisfaction_rate(const std::vector<double>& values, double limit) noexcept;

/// Pearson correlation of two equal-length series (0 if degenerate).
[[nodiscard]] double pearson(const std::vector<double>& a, const std::vector<double>& b);

} // namespace lotus::util
