#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lotus::util {

void RunningStats::add(double x) noexcept {
    ++n_;
    if (n_ == 1) {
        mean_ = x;
        m2_ = 0.0;
        min_ = x;
        max_ = x;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void RunningStats::reset() noexcept {
    *this = RunningStats{};
}

double RunningStats::variance() const noexcept {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept {
    return std::sqrt(variance());
}

WindowedStats::WindowedStats(std::size_t capacity) : capacity_(capacity) {
    if (capacity_ == 0) throw std::invalid_argument("WindowedStats: capacity must be > 0");
    buf_.reserve(capacity_);
}

void WindowedStats::add(double x) {
    if (buf_.size() < capacity_) {
        buf_.push_back(x);
    } else {
        buf_[head_] = x;
        head_ = (head_ + 1) % capacity_;
    }
}

void WindowedStats::reset() noexcept {
    buf_.clear();
    head_ = 0;
}

double WindowedStats::mean() const noexcept {
    if (buf_.empty()) return 0.0;
    double sum = 0.0;
    for (const double v : buf_) sum += v;
    return sum / static_cast<double>(buf_.size());
}

double WindowedStats::stddev() const noexcept {
    const std::size_t n = buf_.size();
    if (n < 2) return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (const double v : buf_) acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(n));
}

namespace {

/// Interpolated percentile over an already-sorted series.
double sorted_percentile(const std::vector<double>& sorted, double p) {
    p = std::clamp(p, 0.0, 100.0);
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

} // namespace

double percentile(std::vector<double> values, double p) {
    if (values.empty()) throw std::invalid_argument("percentile: empty input");
    std::sort(values.begin(), values.end());
    return sorted_percentile(values, p);
}

std::vector<double> percentiles(std::vector<double> values, const std::vector<double>& ps) {
    if (values.empty()) throw std::invalid_argument("percentiles: empty input");
    std::sort(values.begin(), values.end());
    std::vector<double> out;
    out.reserve(ps.size());
    for (const double p : ps) out.push_back(sorted_percentile(values, p));
    return out;
}

double satisfaction_rate(const std::vector<double>& values, double limit) noexcept {
    if (values.empty()) return 0.0;
    std::size_t ok = 0;
    for (const double v : values) {
        if (v <= limit) ++ok;
    }
    return static_cast<double>(ok) / static_cast<double>(values.size());
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
    if (a.size() != b.size()) throw std::invalid_argument("pearson: size mismatch");
    const std::size_t n = a.size();
    if (n < 2) return 0.0;
    double ma = 0.0;
    double mb = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        ma += a[i];
        mb += b[i];
    }
    ma /= static_cast<double>(n);
    mb /= static_cast<double>(n);
    double cov = 0.0;
    double va = 0.0;
    double vb = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double da = a[i] - ma;
        const double db = b[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if (va <= 0.0 || vb <= 0.0) return 0.0;
    return cov / std::sqrt(va * vb);
}

} // namespace lotus::util
