#pragma once
// Minimal CSV emission for bench/experiment traces.
//
// Benches print human-readable tables to stdout; when the LOTUS_BENCH_CSV
// environment variable is set they additionally dump raw per-iteration
// traces with this writer so figures can be re-plotted externally.

#include <fstream>
#include <string>
#include <vector>

namespace lotus::util {

/// Streaming CSV writer. Quotes fields only when needed (comma, quote,
/// newline). The header is written on construction.
class CsvWriter {
public:
    CsvWriter(const std::string& path, std::vector<std::string> header);

    CsvWriter(const CsvWriter&) = delete;
    CsvWriter& operator=(const CsvWriter&) = delete;

    /// Append one row; must match the header arity.
    void row(const std::vector<std::string>& fields);

    /// Convenience overload for all-numeric rows.
    void row(const std::vector<double>& fields);

    [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

    /// True when the underlying stream is healthy.
    [[nodiscard]] bool good() const { return out_.good(); }

private:
    void write_fields(const std::vector<std::string>& fields);

    std::ofstream out_;
    std::size_t arity_;
    std::size_t rows_ = 0;
};

/// Escape a single CSV field per RFC 4180 (quote iff necessary).
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Format a double with fixed precision, trimming trailing zeros.
[[nodiscard]] std::string format_double(double v, int precision = 4);

} // namespace lotus::util
