#include "util/csv.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace lotus::util {

std::string csv_escape(const std::string& field) {
    const bool needs_quote =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quote) return field;
    std::string out;
    out.reserve(field.size() + 2);
    out.push_back('"');
    for (const char c : field) {
        if (c == '"') out.push_back('"');
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

std::string format_double(double v, int precision) {
    if (std::isnan(v)) return "nan";
    if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
    std::ostringstream ss;
    ss.setf(std::ios::fixed);
    ss.precision(precision);
    ss << v;
    std::string s = ss.str();
    if (s.find('.') != std::string::npos) {
        while (!s.empty() && s.back() == '0') s.pop_back();
        if (!s.empty() && s.back() == '.') s.pop_back();
    }
    if (s == "-0") s = "0";
    return s;
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), arity_(header.size()) {
    if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
    if (arity_ == 0) throw std::invalid_argument("CsvWriter: empty header");
    write_fields(header);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
    if (fields.size() != arity_) {
        throw std::invalid_argument("CsvWriter: row arity mismatch");
    }
    write_fields(fields);
    ++rows_;
}

void CsvWriter::row(const std::vector<double>& fields) {
    std::vector<std::string> text;
    text.reserve(fields.size());
    for (const double v : fields) text.push_back(format_double(v, 6));
    row(text);
}

void CsvWriter::write_fields(const std::vector<std::string>& fields) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i != 0) out_ << ',';
        out_ << csv_escape(fields[i]);
    }
    out_ << '\n';
}

} // namespace lotus::util
