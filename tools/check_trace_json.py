#!/usr/bin/env python3
"""Validate Chrome trace-event JSON written by the sim-time telemetry layer.

Usage:
    check_trace_json.py TRACE.json [TRACE.json ...]

Checks, per file:

  * the document is well-formed JSON with a "traceEvents" list and the
    microsecond "displayTimeUnit" the exporter promises;
  * every event carries name/ph/pid/tid, and every non-metadata event a
    numeric ts;
  * sim timestamps are globally non-decreasing across non-metadata events
    (the recorder sorts stably by time, so any inversion is an exporter
    bug, not interleaving);
  * duration events pair up: each "E" closes the most recent open "B" on
    the same (pid, tid) stack with the same name, and no stack is left
    open at the end;
  * async request spans pair up: each "e" matches an open "b" with the
    same (cat, id), every "b" is eventually closed, and ends never
    precede their begins;
  * counter ("C") events carry at least one numeric series in args;
  * metadata ("M") process_name/thread_name events carry args.name.

Stdlib only; exit 0 when every file passes, 1 on validation failure,
2 on unreadable/malformed input. Run by CI on the telemetry smoke step.
"""

import json
import sys


def fail(path, message, errors):
    errors.append(f"{path}: {message}")


def check_file(path, errors):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"check_trace_json: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)

    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        print(f"check_trace_json: {path} has no traceEvents list", file=sys.stderr)
        sys.exit(2)
    if doc.get("displayTimeUnit") != "ms":
        fail(path, f"displayTimeUnit is {doc.get('displayTimeUnit')!r}, expected 'ms'",
             errors)

    events = doc["traceEvents"]
    last_ts = None
    sync_stacks = {}   # (pid, tid) -> [open "B" names]
    async_open = {}    # (cat, id) -> (begin name, begin ts)
    counters = 0

    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(path, f"{where} is not an object", errors)
            continue
        ph = ev.get("ph")
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            fail(path, f"{where} has no name", errors)
            continue
        if "pid" not in ev or "tid" not in ev:
            fail(path, f"{where} ({ph} {name!r}) lacks pid/tid", errors)
            continue

        if ph == "M":
            if name in ("process_name", "thread_name"):
                args = ev.get("args")
                if not isinstance(args, dict) or not args.get("name"):
                    fail(path, f"{where} metadata {name} lacks args.name", errors)
            continue

        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            fail(path, f"{where} ({ph} {name!r}) has non-numeric ts", errors)
            continue
        if last_ts is not None and ts < last_ts:
            fail(path, f"{where} ({ph} {name!r}) ts {ts} precedes previous {last_ts}",
                 errors)
        last_ts = ts

        key = (ev["pid"], ev["tid"])
        if ph == "B":
            sync_stacks.setdefault(key, []).append(name)
        elif ph == "E":
            stack = sync_stacks.get(key)
            if not stack:
                fail(path, f"{where} 'E' {name!r} on {key} closes nothing", errors)
            elif stack[-1] != name:
                fail(path, f"{where} 'E' {name!r} on {key} mismatches open "
                           f"'B' {stack[-1]!r}", errors)
            else:
                stack.pop()
        elif ph == "b":
            akey = (ev.get("cat"), ev.get("id"))
            if akey[1] is None:
                fail(path, f"{where} async 'b' {name!r} has no id", errors)
            elif akey in async_open:
                fail(path, f"{where} async 'b' {name!r} reuses open id {akey}", errors)
            else:
                async_open[akey] = (name, ts)
        elif ph == "e":
            akey = (ev.get("cat"), ev.get("id"))
            begin = async_open.pop(akey, None)
            if begin is None:
                fail(path, f"{where} async 'e' {name!r} has no open 'b' for {akey}",
                     errors)
            elif ts < begin[1]:
                fail(path, f"{where} async 'e' {name!r} at {ts} precedes its 'b' "
                           f"at {begin[1]}", errors)
        elif ph == "C":
            counters += 1
            args = ev.get("args")
            series = [v for v in (args or {}).values()
                      if isinstance(v, (int, float)) and not isinstance(v, bool)]
            if not series:
                fail(path, f"{where} counter {name!r} has no numeric args", errors)
        elif ph == "i":
            pass
        else:
            fail(path, f"{where} has unknown phase {ph!r}", errors)

    for key, stack in sync_stacks.items():
        if stack:
            fail(path, f"unclosed 'B' frames on {key}: {stack}", errors)
    for akey, (name, _) in async_open.items():
        fail(path, f"async span {name!r} {akey} never ends", errors)

    return len(events), counters


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print("usage: check_trace_json.py TRACE.json [TRACE.json ...]", file=sys.stderr)
        return 2

    errors = []
    for path in sys.argv[1:]:
        n, counters = check_file(path, errors)
        status = "FAIL" if any(e.startswith(path + ":") for e in errors) else "ok"
        print(f"{path}: {n} events ({counters} counter samples) [{status}]")

    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        return 1
    print("all traces valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
